package evogame

// BENCH_5.json is the committed machine-readable baseline of the kernel
// table (`benchtables -table kernel -json`).  The numbers are a snapshot of
// the machine that produced them, so this test does not re-measure; it pins
// the schema the tooling consumes and the claim the baseline exists to
// document — the cycle-closing and cached pipeline levels beat the
// full-replay kernel by at least 5x on the S=512 memory-one workload, and
// the cached path runs allocation-free.

import (
	"encoding/json"
	"os"
	"testing"
)

// benchBaselineRow mirrors the row schema emitted by benchtables -json.
// The kernel table (BENCH_5.json) leaves the batch-table-only fields
// (noise, workers, batch_lane_occupancy) at their zero values.
type benchBaselineRow struct {
	SSets               int     `json:"ssets"`
	Mode                string  `json:"mode"`
	Noise               float64 `json:"noise"`
	Workers             int     `json:"workers"`
	Sweeps              int     `json:"sweeps"`
	Games               int64   `json:"games"`
	Seconds             float64 `json:"seconds"`
	NsPerGame           float64 `json:"ns_per_game"`
	SpeedupVsFullReplay float64 `json:"speedup_vs_full_replay"`
	AllocsPerOp         float64 `json:"allocs_per_op"`
	BatchLaneOccupancy  float64 `json:"batch_lane_occupancy"`
}

type benchBaselineDoc struct {
	Table       string             `json:"table"`
	Seed        uint64             `json:"seed"`
	Rounds      int                `json:"rounds"`
	MemorySteps int                `json:"memory_steps"`
	GoMaxProcs  int                `json:"go_max_procs"`
	Metrics     benchBaselineMet   `json:"metrics"`
	Rows        []benchBaselineRow `json:"rows"`
}

// benchBaselineMet mirrors the aggregate Metrics envelope the batch table
// emits (absent, and therefore zero, in the kernel table).
type benchBaselineMet struct {
	ScalarGames        int64   `json:"scalar_games"`
	CycleGames         int64   `json:"cycle_games"`
	BatchGames         int64   `json:"batch_games"`
	BatchCalls         int64   `json:"batch_calls"`
	BatchLaneOccupancy float64 `json:"batch_lane_occupancy"`
}

func TestBenchBaselineSchemaAndClaims(t *testing.T) {
	raw, err := os.ReadFile("BENCH_5.json")
	if err != nil {
		t.Fatalf("reading committed baseline: %v", err)
	}
	var doc benchBaselineDoc
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("BENCH_5.json is not valid JSON for the kernel-table schema: %v", err)
	}
	if doc.Table != "kernel" || doc.Rounds != DefaultRounds || doc.MemorySteps != 1 {
		t.Fatalf("baseline header = (%q, rounds=%d, memory=%d), want (kernel, %d, 1)",
			doc.Table, doc.Rounds, doc.MemorySteps, DefaultRounds)
	}
	seen := make(map[[2]interface{}]benchBaselineRow)
	for _, row := range doc.Rows {
		if row.Games <= 0 || row.Seconds <= 0 || row.NsPerGame <= 0 {
			t.Errorf("row %+v has non-positive measurements", row)
		}
		seen[[2]interface{}{row.SSets, row.Mode}] = row
	}
	for _, ssets := range []int{32, 128, 512} {
		for _, mode := range []string{"full-replay", "cycle-closing", "cached"} {
			if _, ok := seen[[2]interface{}{ssets, mode}]; !ok {
				t.Errorf("baseline is missing the (S=%d, %s) row", ssets, mode)
			}
		}
	}
	// The acceptance claim the baseline documents: >=5x at S=512 for both
	// fast paths, with the cached path allocation-free.
	for _, mode := range []string{"cycle-closing", "cached"} {
		row, ok := seen[[2]interface{}{512, mode}]
		if !ok {
			continue
		}
		if row.SpeedupVsFullReplay < 5 {
			t.Errorf("baseline records %.1fx for (S=512, %s), want >= 5x", row.SpeedupVsFullReplay, mode)
		}
		if row.AllocsPerOp >= 0.01 {
			t.Errorf("baseline records %.3f allocs/game for (S=512, %s), want ~0", row.AllocsPerOp, mode)
		}
	}
}

// TestBenchBatchBaselineSchemaAndClaims pins BENCH_6.json, the committed
// baseline of the batch table (`benchtables -table batch -json`): the
// bit-sliced SWAR kernel against the scalar full-replay loop on the
// block-of-opponents fitness workload, noiseless and noisy.  Like the
// kernel baseline it pins schema and claims, not absolute numbers.
func TestBenchBatchBaselineSchemaAndClaims(t *testing.T) {
	raw, err := os.ReadFile("BENCH_6.json")
	if err != nil {
		t.Fatalf("reading committed baseline: %v", err)
	}
	var doc benchBaselineDoc
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("BENCH_6.json is not valid JSON for the batch-table schema: %v", err)
	}
	if doc.Table != "batch" || doc.Rounds != DefaultRounds || doc.MemorySteps != 1 {
		t.Fatalf("baseline header = (%q, rounds=%d, memory=%d), want (batch, %d, 1)",
			doc.Table, doc.Rounds, doc.MemorySteps, DefaultRounds)
	}
	if doc.Metrics.BatchGames <= 0 || doc.Metrics.BatchCalls <= 0 ||
		doc.Metrics.ScalarGames <= 0 || doc.Metrics.BatchLaneOccupancy <= 0 {
		t.Errorf("aggregate metrics envelope is empty: %+v", doc.Metrics)
	}
	// The workers dimension covers 1 and GOMAXPROCS of the recording
	// machine; on a single-CPU recorder the two collapse into one column.
	workerCounts := []int{1}
	if doc.GoMaxProcs > 1 {
		workerCounts = append(workerCounts, doc.GoMaxProcs)
	}
	type key struct {
		ssets   int
		mode    string
		noise   float64
		workers int
	}
	seen := make(map[key]benchBaselineRow)
	for _, row := range doc.Rows {
		if row.Games <= 0 || row.Seconds <= 0 || row.NsPerGame <= 0 {
			t.Errorf("row %+v has non-positive measurements", row)
		}
		if row.Mode == "batch" && row.BatchLaneOccupancy <= 0 {
			t.Errorf("batch row %+v never filled a SWAR lane", row)
		}
		seen[key{row.SSets, row.Mode, row.Noise, row.Workers}] = row
	}
	for _, ssets := range []int{32, 128, 512} {
		for _, noise := range []float64{0, 0.05} {
			for _, workers := range workerCounts {
				for _, mode := range []string{"full-replay", "batch"} {
					if _, ok := seen[key{ssets, mode, noise, workers}]; !ok {
						t.Errorf("baseline is missing the (S=%d, %s, noise=%v, workers=%d) row",
							ssets, mode, noise, workers)
					}
				}
			}
		}
	}
	// The acceptance claim the baseline documents: the SWAR kernel beats
	// scalar full replay by >=5x on the noiseless S=512 workload, without
	// allocating in the steady state.
	for _, workers := range workerCounts {
		row, ok := seen[key{512, "batch", 0, workers}]
		if !ok {
			continue
		}
		if row.SpeedupVsFullReplay < 5 {
			t.Errorf("baseline records %.1fx for (S=512, batch, noiseless, workers=%d), want >= 5x",
				row.SpeedupVsFullReplay, workers)
		}
		if row.AllocsPerOp >= 0.01 {
			t.Errorf("baseline records %.3f allocs/game for (S=512, batch, noiseless, workers=%d), want ~0",
				row.AllocsPerOp, workers)
		}
	}
}

// benchEnsembleRow mirrors the row schema of the ensemble table
// (`benchtables -table ensemble -json`).
type benchEnsembleRow struct {
	EnsembleWorkers int     `json:"ensemble_workers"`
	Cache           string  `json:"cache"`
	Replicates      int     `json:"replicates"`
	Seconds         float64 `json:"seconds"`
	SpeedupVsSerial float64 `json:"speedup_vs_serial"`
	Games           int64   `json:"games"`
	CacheHits       int64   `json:"cache_hits"`
	CacheMisses     int64   `json:"cache_misses"`
	WarmHits        int64   `json:"warm_hits"`
	WarmMisses      int64   `json:"warm_misses"`
	WarmHitRate     float64 `json:"warm_hit_rate"`
}

// benchEnsembleDoc mirrors the ensemble table's envelope.
type benchEnsembleDoc struct {
	Table       string             `json:"table"`
	Seed        uint64             `json:"seed"`
	Rounds      int                `json:"rounds"`
	MemorySteps int                `json:"memory_steps"`
	SSets       int                `json:"ssets"`
	Replicates  int                `json:"replicates"`
	Generations int                `json:"generations"`
	GoMaxProcs  int                `json:"go_max_procs"`
	Rows        []benchEnsembleRow `json:"rows"`
}

// TestBenchEnsembleBaselineSchemaAndClaims pins BENCH_7.json, the committed
// baseline of the ensemble table: 8 replicates of a noiseless cached S=128
// run under the ensemble tier, shared vs private pair-cache store at every
// ensemble worker count in {1, 2, 4, 8}.  Like the other baselines it pins
// schema and claims, not absolute numbers: sharing the store makes the
// 8-replicate ensemble at 8 workers at least 3x faster than running the
// replicates serially with private caches, with cross-run cache hits from
// replicate 1 onward doing the work (the recording machine may have a
// single core, so the win must come from miss elimination, not
// parallelism).
func TestBenchEnsembleBaselineSchemaAndClaims(t *testing.T) {
	raw, err := os.ReadFile("BENCH_7.json")
	if err != nil {
		t.Fatalf("reading committed baseline: %v", err)
	}
	var doc benchEnsembleDoc
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("BENCH_7.json is not valid JSON for the ensemble-table schema: %v", err)
	}
	if doc.Table != "ensemble" || doc.Rounds != DefaultRounds || doc.SSets != 128 || doc.Replicates != 8 {
		t.Fatalf("baseline header = (%q, rounds=%d, ssets=%d, replicates=%d), want (ensemble, %d, 128, 8)",
			doc.Table, doc.Rounds, doc.SSets, doc.Replicates, DefaultRounds)
	}
	if doc.MemorySteps <= 0 || doc.Generations <= 0 || doc.GoMaxProcs <= 0 {
		t.Fatalf("baseline header has non-positive dimensions: %+v", doc)
	}
	type key struct {
		workers int
		cache   string
	}
	seen := make(map[key]benchEnsembleRow)
	for _, row := range doc.Rows {
		if row.Seconds <= 0 || row.Games <= 0 || row.Replicates != doc.Replicates {
			t.Errorf("row %+v has non-positive measurements or a replicate mismatch", row)
		}
		if row.Cache == "shared" && row.WarmHits <= 0 {
			t.Errorf("shared row %+v records no cross-run cache hits", row)
		}
		seen[key{row.EnsembleWorkers, row.Cache}] = row
	}
	for _, workers := range []int{1, 2, 4, 8} {
		for _, cache := range []string{"shared", "private"} {
			if _, ok := seen[key{workers, cache}]; !ok {
				t.Errorf("baseline is missing the (workers=%d, %s) row", workers, cache)
			}
		}
	}
	// The acceptance claim the baseline documents: >=3x over serial
	// replicates at 8 ensemble workers with the shared store, which must be
	// eliminating misses the private runs pay for.
	shared8, okS := seen[key{8, "shared"}]
	private8, okP := seen[key{8, "private"}]
	if okS {
		if shared8.SpeedupVsSerial < 3 {
			t.Errorf("baseline records %.2fx for (workers=8, shared), want >= 3x over serial private replicates",
				shared8.SpeedupVsSerial)
		}
		if okP && shared8.WarmMisses >= private8.WarmMisses {
			t.Errorf("shared store eliminated no warm misses: shared=%d, private=%d",
				shared8.WarmMisses, private8.WarmMisses)
		}
	}
}

// benchArtifactRow mirrors the row schema of the artifact table
// (`benchtables -table artifact -json`).
type benchArtifactRow struct {
	Phase        string  `json:"phase"`
	RunsExecuted int     `json:"runs_executed"`
	RunsSkipped  int     `json:"runs_skipped"`
	Seconds      float64 `json:"seconds"`
}

// benchArtifactDoc mirrors the artifact table's envelope.
type benchArtifactDoc struct {
	Table                string             `json:"table"`
	Artifact             string             `json:"artifact"`
	Grid                 string             `json:"grid"`
	TotalRuns            int                `json:"total_runs"`
	GoMaxProcs           int                `json:"go_max_procs"`
	RegeneratedIdentical bool               `json:"regenerated_identical"`
	Rows                 []benchArtifactRow `json:"rows"`
}

// TestBenchArtifactBaselineSchemaAndClaims pins BENCH_8.json, the committed
// baseline of the artifact table: the paperkit incremental runner
// regenerating one quick-grid artifact cold, warm and after deleting a
// single envelope.  The claims are structural, not timing thresholds: the
// cold phase executes every run, the warm phase executes none, the deletion
// re-executes exactly one, and the regenerated envelope is byte-identical
// to the deleted one — the property that makes the committed artifact
// tables regenerable.
func TestBenchArtifactBaselineSchemaAndClaims(t *testing.T) {
	raw, err := os.ReadFile("BENCH_8.json")
	if err != nil {
		t.Fatalf("reading committed baseline: %v", err)
	}
	var doc benchArtifactDoc
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("BENCH_8.json is not valid JSON for the artifact-table schema: %v", err)
	}
	if doc.Table != "artifact" || doc.Grid != "quick" || doc.Artifact == "" {
		t.Fatalf("baseline header = (%q, artifact=%q, grid=%q), want (artifact, <name>, quick)",
			doc.Table, doc.Artifact, doc.Grid)
	}
	if doc.TotalRuns <= 0 || doc.GoMaxProcs <= 0 {
		t.Fatalf("baseline header has non-positive dimensions: %+v", doc)
	}
	if !doc.RegeneratedIdentical {
		t.Error("baseline records a regenerated envelope that differs from the deleted one")
	}
	rows := make(map[string]benchArtifactRow, len(doc.Rows))
	for _, row := range doc.Rows {
		if row.Seconds <= 0 || row.RunsExecuted+row.RunsSkipped != doc.TotalRuns {
			t.Errorf("row %+v has non-positive time or does not cover all %d runs", row, doc.TotalRuns)
		}
		rows[row.Phase] = row
	}
	for _, phase := range []string{"cold", "warm", "delete_one"} {
		if _, ok := rows[phase]; !ok {
			t.Fatalf("baseline is missing the %q phase", phase)
		}
	}
	if cold := rows["cold"]; cold.RunsExecuted != doc.TotalRuns {
		t.Errorf("cold phase executed %d of %d runs, want all", cold.RunsExecuted, doc.TotalRuns)
	}
	if warm := rows["warm"]; warm.RunsExecuted != 0 {
		t.Errorf("warm phase executed %d runs, want 0 (everything fresh)", warm.RunsExecuted)
	}
	if del := rows["delete_one"]; del.RunsExecuted != 1 {
		t.Errorf("delete_one phase executed %d runs, want exactly the deleted one", del.RunsExecuted)
	}
}

// benchFaultsDoc mirrors the faults table's envelope
// (`benchtables -table faults -json`, committed as BENCH_9.json).
type benchFaultsDoc struct {
	Table       string `json:"table"`
	Seed        uint64 `json:"seed"`
	Ranks       int    `json:"ranks"`
	SSets       int    `json:"ssets"`
	Generations int    `json:"generations"`
	GoMaxProcs  int    `json:"go_max_procs"`
	Overhead    struct {
		BaselineSeconds  float64 `json:"baseline_seconds"`
		ArmedIdleSeconds float64 `json:"armed_idle_seconds"`
		OverheadRatio    float64 `json:"overhead_ratio"`
		Repeats          int     `json:"repeats"`
	} `json:"overhead"`
	Recovery []struct {
		Engine           string  `json:"engine"`
		Spec             string  `json:"spec"`
		SegmentEvery     int     `json:"segment_every"`
		Restarts         int     `json:"restarts"`
		FaultFreeSeconds float64 `json:"fault_free_seconds"`
		RecoveredSeconds float64 `json:"recovered_seconds"`
		RecoverySeconds  float64 `json:"recovery_seconds"`
	} `json:"recovery"`
}

// TestBenchFaultsBaselineSchemaAndClaims pins BENCH_9.json, the committed
// baseline of the faults table.  Like the other baselines it pins schema
// and claims, not absolute numbers: consulting an armed-but-idle fault
// injector on every send and fault-point costs at most 2% over the nil
// injector, and a supervised mid-run crash recovers on both engines with
// exactly one restart and non-zero recovery accounting.
func TestBenchFaultsBaselineSchemaAndClaims(t *testing.T) {
	raw, err := os.ReadFile("BENCH_9.json")
	if err != nil {
		t.Fatalf("reading committed baseline: %v", err)
	}
	var doc benchFaultsDoc
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("BENCH_9.json is not valid JSON for the faults-table schema: %v", err)
	}
	if doc.Table != "faults" || doc.Ranks < 2 || doc.SSets <= 0 || doc.Generations <= 0 || doc.GoMaxProcs <= 0 {
		t.Fatalf("baseline header = %+v, want table=faults with positive dimensions", doc)
	}
	ov := doc.Overhead
	if ov.BaselineSeconds <= 0 || ov.ArmedIdleSeconds <= 0 || ov.Repeats < 3 {
		t.Fatalf("overhead block %+v has non-positive measurements or too few repeats", ov)
	}
	if ov.OverheadRatio <= 0 || ov.OverheadRatio > 1.02 {
		t.Errorf("injector-off overhead ratio = %.4f, claim is <= 1.02 (2%%)", ov.OverheadRatio)
	}
	engines := map[string]bool{}
	for _, row := range doc.Recovery {
		engines[row.Engine] = true
		if row.Spec == "" || row.SegmentEvery <= 0 {
			t.Errorf("recovery row %+v is missing its fault spec or cadence", row)
		}
		if row.Restarts != 1 {
			t.Errorf("recovery row %q: %d restarts, want exactly 1 (one-shot crash)", row.Engine, row.Restarts)
		}
		if row.FaultFreeSeconds <= 0 || row.RecoveredSeconds <= 0 || row.RecoverySeconds <= 0 {
			t.Errorf("recovery row %q has non-positive timings: %+v", row.Engine, row)
		}
		if row.RecoverySeconds >= row.RecoveredSeconds {
			t.Errorf("recovery row %q: recovery accounting %.4fs exceeds the whole run %.4fs",
				row.Engine, row.RecoverySeconds, row.RecoveredSeconds)
		}
	}
	for _, engine := range []string{"serial", "parallel"} {
		if !engines[engine] {
			t.Errorf("baseline is missing the %q recovery row", engine)
		}
	}
}
