package evogame

// BENCH_5.json is the committed machine-readable baseline of the kernel
// table (`benchtables -table kernel -json`).  The numbers are a snapshot of
// the machine that produced them, so this test does not re-measure; it pins
// the schema the tooling consumes and the claim the baseline exists to
// document — the cycle-closing and cached pipeline levels beat the
// full-replay kernel by at least 5x on the S=512 memory-one workload, and
// the cached path runs allocation-free.

import (
	"encoding/json"
	"os"
	"testing"
)

// benchBaselineRow mirrors the row schema emitted by benchtables -json.
type benchBaselineRow struct {
	SSets               int     `json:"ssets"`
	Mode                string  `json:"mode"`
	Sweeps              int     `json:"sweeps"`
	Games               int64   `json:"games"`
	Seconds             float64 `json:"seconds"`
	NsPerGame           float64 `json:"ns_per_game"`
	SpeedupVsFullReplay float64 `json:"speedup_vs_full_replay"`
	AllocsPerOp         float64 `json:"allocs_per_op"`
}

type benchBaselineDoc struct {
	Table       string             `json:"table"`
	Seed        uint64             `json:"seed"`
	Rounds      int                `json:"rounds"`
	MemorySteps int                `json:"memory_steps"`
	GoMaxProcs  int                `json:"go_max_procs"`
	Rows        []benchBaselineRow `json:"rows"`
}

func TestBenchBaselineSchemaAndClaims(t *testing.T) {
	raw, err := os.ReadFile("BENCH_5.json")
	if err != nil {
		t.Fatalf("reading committed baseline: %v", err)
	}
	var doc benchBaselineDoc
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("BENCH_5.json is not valid JSON for the kernel-table schema: %v", err)
	}
	if doc.Table != "kernel" || doc.Rounds != DefaultRounds || doc.MemorySteps != 1 {
		t.Fatalf("baseline header = (%q, rounds=%d, memory=%d), want (kernel, %d, 1)",
			doc.Table, doc.Rounds, doc.MemorySteps, DefaultRounds)
	}
	seen := make(map[[2]interface{}]benchBaselineRow)
	for _, row := range doc.Rows {
		if row.Games <= 0 || row.Seconds <= 0 || row.NsPerGame <= 0 {
			t.Errorf("row %+v has non-positive measurements", row)
		}
		seen[[2]interface{}{row.SSets, row.Mode}] = row
	}
	for _, ssets := range []int{32, 128, 512} {
		for _, mode := range []string{"full-replay", "cycle-closing", "cached"} {
			if _, ok := seen[[2]interface{}{ssets, mode}]; !ok {
				t.Errorf("baseline is missing the (S=%d, %s) row", ssets, mode)
			}
		}
	}
	// The acceptance claim the baseline documents: >=5x at S=512 for both
	// fast paths, with the cached path allocation-free.
	for _, mode := range []string{"cycle-closing", "cached"} {
		row, ok := seen[[2]interface{}{512, mode}]
		if !ok {
			continue
		}
		if row.SpeedupVsFullReplay < 5 {
			t.Errorf("baseline records %.1fx for (S=512, %s), want >= 5x", row.SpeedupVsFullReplay, mode)
		}
		if row.AllocsPerOp >= 0.01 {
			t.Errorf("baseline records %.3f allocs/game for (S=512, %s), want ~0", row.AllocsPerOp, mode)
		}
	}
}
