package evogame

import (
	"fmt"
	"sort"

	"evogame/internal/analysis"
	"evogame/internal/game"
	"evogame/internal/strategy"
	"evogame/internal/tournament"
)

// This file exposes the analytical toolkit that complements the simulation
// engines: exact expected payoffs of strategy pairs (the classical analysis
// that remains tractable at low memory depth), invasion analysis, strategy
// trait classification, and Axelrod-style round-robin tournaments.

// ExactPayoffs returns the exact expected total payoffs of two pure
// strategies (move-table strings) over the given number of rounds with the
// given per-move error probability, computed from the joint Markov chain
// over game states rather than by sampling.
func ExactPayoffs(strategyA, strategyB string, memSteps, rounds int, noise float64) (payoffA, payoffB float64, err error) {
	a, err := strategy.ParsePure(memSteps, strategyA)
	if err != nil {
		return 0, 0, err
	}
	b, err := strategy.ParsePure(memSteps, strategyB)
	if err != nil {
		return 0, 0, err
	}
	return analysis.ExpectedPayoffs(a, b, game.Standard(), rounds, noise)
}

// CanInvade reports whether a single mutant Strategy Set can invade a
// resident population of populationSize-1 Strategy Sets under the
// framework's fitness definition, using exact expected payoffs.
func CanInvade(resident, mutant string, memSteps, rounds, populationSize int, noise float64) (bool, error) {
	r, err := strategy.ParsePure(memSteps, resident)
	if err != nil {
		return false, err
	}
	m, err := strategy.ParsePure(memSteps, mutant)
	if err != nil {
		return false, err
	}
	rep, err := analysis.Invasion(r, m, game.Standard(), rounds, populationSize, noise)
	if err != nil {
		return false, err
	}
	return rep.CanInvade, nil
}

// StrategyTraits describes the structural properties of a pure strategy.
type StrategyTraits struct {
	// Nice strategies cooperate in every state whose visible history
	// contains no opponent defection.
	Nice bool
	// Retaliatory strategies defect in at least one state whose most recent
	// opponent move was a defection.
	Retaliatory bool
	// Forgiving strategies cooperate in at least one state whose visible
	// history contains an opponent defection.
	Forgiving bool
	// DefectionRate is the fraction of states in which the strategy defects.
	DefectionRate float64
}

// ClassifyStrategy computes the structural traits of a pure strategy given
// as a move-table string.
func ClassifyStrategy(moveTable string, memSteps int) (StrategyTraits, error) {
	p, err := strategy.ParsePure(memSteps, moveTable)
	if err != nil {
		return StrategyTraits{}, err
	}
	t := analysis.Classify(p)
	return StrategyTraits{
		Nice:          t.Nice,
		Retaliatory:   t.Retaliatory,
		Forgiving:     t.Forgiving,
		DefectionRate: t.DefectionRate,
	}, nil
}

// CooperationIndex returns the average probability that strategyA cooperates
// over a game against strategyB under the given noise.
func CooperationIndex(strategyA, strategyB string, memSteps, rounds int, noise float64) (float64, error) {
	a, err := strategy.ParsePure(memSteps, strategyA)
	if err != nil {
		return 0, err
	}
	b, err := strategy.ParsePure(memSteps, strategyB)
	if err != nil {
		return 0, err
	}
	return analysis.CooperationIndex(a, b, rounds, noise)
}

// TournamentConfig configures a round-robin tournament.
type TournamentConfig struct {
	// MemorySteps is the memory depth shared by all entrants (0 selects 1).
	MemorySteps int
	// Rounds per game (0 selects the paper's 200).
	Rounds int
	// Repetitions of each pairing (0 selects 1; Axelrod used 5).
	Repetitions int
	// Noise is the per-move error probability.
	Noise float64
	// IncludeSelfPlay also plays each entrant against itself.
	IncludeSelfPlay bool
	// Seed drives noisy games.
	Seed uint64
}

// TournamentStanding is one row of a tournament ranking.
type TournamentStanding struct {
	Name        string
	TotalScore  float64
	MeanPerGame float64
	Games       int
	Wins        int
	Draws       int
}

// RunTournament plays an Axelrod-style round-robin tournament between named
// pure strategies given as move-table strings, returning the standings
// sorted from best to worst.
func RunTournament(entrants map[string]string, cfg TournamentConfig) ([]TournamentStanding, error) {
	if len(entrants) < 2 {
		return nil, fmt.Errorf("evogame: a tournament needs at least 2 entrants")
	}
	mem := cfg.MemorySteps
	if mem == 0 {
		mem = 1
	}
	// Deterministic entrant order: sort names.
	names := make([]string, 0, len(entrants))
	for name := range entrants {
		names = append(names, name)
	}
	sort.Strings(names)
	list := make([]tournament.Entrant, 0, len(names))
	for _, name := range names {
		p, err := strategy.ParsePure(mem, entrants[name])
		if err != nil {
			return nil, fmt.Errorf("evogame: entrant %q: %w", name, err)
		}
		list = append(list, tournament.Entrant{Name: name, Strategy: p})
	}
	res, err := tournament.Run(list, tournament.Config{
		Rounds:          cfg.Rounds,
		Repetitions:     cfg.Repetitions,
		Noise:           cfg.Noise,
		IncludeSelfPlay: cfg.IncludeSelfPlay,
		MemorySteps:     mem,
		Seed:            cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	out := make([]TournamentStanding, len(res.Standings))
	for i, s := range res.Standings {
		out[i] = TournamentStanding{
			Name: s.Name, TotalScore: s.TotalScore, MeanPerGame: s.MeanPerGame,
			Games: s.Games, Wins: s.Wins, Draws: s.Draws,
		}
	}
	return out, nil
}

// ClassicTournamentEntrants returns the classic field (ALLC, ALLD, TFT,
// GRIM, WSLS, Alternator) as move-table strings for the given memory depth,
// ready to pass to RunTournament.
func ClassicTournamentEntrants(memSteps int) (map[string]string, error) {
	if memSteps < 1 || memSteps > MaxMemorySteps {
		return nil, fmt.Errorf("evogame: memory steps %d out of range [1,%d]", memSteps, MaxMemorySteps)
	}
	out := map[string]string{}
	for _, e := range tournament.ClassicField(memSteps) {
		p, ok := e.Strategy.(*strategy.Pure)
		if !ok {
			continue
		}
		out[e.Name] = p.String()
	}
	return out, nil
}
