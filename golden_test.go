package evogame

// Golden-trajectory regression tests pinning the engines to the exact
// output of the pre-topology implementation (commit "PR 2", captured by
// running these configurations before the topology layer existed).  The
// structured-population work promises that the default well-mixed topology
// is bit-identical per seed to the engines it replaced; these literals
// make that promise falsifiable instead of merely asserted — any change to
// the random-stream layout, the opponent iteration order or the Nature
// Agent's pair selection shows up here as a diff against history, not just
// as self-consistency.

import (
	"context"
	"strings"
	"testing"
)

const (
	goldenSerialFinal = "1111,1111,0111,1111,0010,0001,1110,1111,0111,0101," +
		"1111,1111,0111,1110,1111,0011,0111,1111,0001,0101,0111,1111,0111,1111"
	goldenSerialNoisyFinal = "0100,0111,0101,0110,0100,0111,1111,0111,0100," +
		"0111,0101,0111,1011,0111,0001,0110"
)

// TestWellMixedBitIdenticalToPreTopologyEngines replays the captured
// configurations through both engines — with the topology knob left at its
// zero value and set to "wellmixed" explicitly — and compares against the
// recorded pre-topology trajectories.
func TestWellMixedBitIdenticalToPreTopologyEngines(t *testing.T) {
	for _, topo := range []string{"", "wellmixed"} {
		res, err := Simulate(context.Background(), SimulationConfig{
			NumSSets: 24, AgentsPerSSet: 2, MemorySteps: 1, Rounds: 40,
			PCRate: 1, MutationRate: 0.25, Beta: 1, Generations: 120, Seed: 777,
			Topology: topo,
		})
		if err != nil {
			t.Fatal(err)
		}
		if got := strings.Join(res.FinalStrategies, ","); got != goldenSerialFinal {
			t.Errorf("serial topology=%q diverged from the pre-topology engine:\ngot  %s\nwant %s", topo, got, goldenSerialFinal)
		}
		if res.PCEvents != 120 || res.Adoptions != 57 || res.Mutations != 34 || res.GamesPlayed != 1722 {
			t.Errorf("serial topology=%q events = %d/%d/%d games %d, want 120/57/34 games 1722",
				topo, res.PCEvents, res.Adoptions, res.Mutations, res.GamesPlayed)
		}

		pres, err := SimulateParallel(ParallelConfig{
			Ranks: 4, OptimizationLevel: 3, NumSSets: 24, AgentsPerSSet: 2, MemorySteps: 1,
			Rounds: 40, PCRate: 1, MutationRate: 0.25, Beta: 1, Generations: 120, Seed: 777,
			Topology: topo,
		})
		if err != nil {
			t.Fatal(err)
		}
		if got := strings.Join(pres.FinalStrategies, ","); got != goldenSerialFinal {
			t.Errorf("parallel topology=%q diverged from the pre-topology engine:\ngot  %s\nwant %s", topo, got, goldenSerialFinal)
		}
		if pres.PCEvents != 120 || pres.Adoptions != 57 || pres.Mutations != 34 {
			t.Errorf("parallel topology=%q events = %d/%d/%d, want 120/57/34",
				topo, pres.PCEvents, pres.Adoptions, pres.Mutations)
		}
	}
}

// TestWellMixedNoisyBitIdentical covers the noise > 0 path, which bypasses
// the fitness cache and exercises the per-game randomness plumbing.
func TestWellMixedNoisyBitIdentical(t *testing.T) {
	res, err := Simulate(context.Background(), SimulationConfig{
		NumSSets: 16, AgentsPerSSet: 2, MemorySteps: 1, Rounds: 30, Noise: 0.05,
		PCRate: 1, MutationRate: 0.25, Beta: 1, Generations: 80, Seed: 99,
		Topology: "wellmixed",
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.Join(res.FinalStrategies, ","); got != goldenSerialNoisyFinal {
		t.Errorf("noisy serial run diverged from the pre-topology engine:\ngot  %s\nwant %s", got, goldenSerialNoisyFinal)
	}
	if res.PCEvents != 80 || res.Adoptions != 45 || res.Mutations != 22 {
		t.Errorf("noisy serial events = %d/%d/%d, want 80/45/22", res.PCEvents, res.Adoptions, res.Mutations)
	}
}
