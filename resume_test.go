package evogame

// Resume-equivalence tests for the checkpoint/resume subsystem: for every
// engine, topology and eval mode in the matrix, a run of 2N generations
// must be bit-identical — same final strategy table, same cumulative event
// counts — to running N generations, checkpointing, and resuming N more
// from the file.  Pre-v4 (final-only) checkpoints must still restore as a
// warm start, and identity mismatches must be rejected instead of silently
// producing a diverged run.

import (
	"bytes"
	"context"
	"encoding/gob"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"evogame/internal/checkpoint"
	"evogame/internal/strategy"
)

// TestResumeBitIdentical is the resume guarantee of the checkpoint
// subsystem, pinned across the scenario matrix: for each engine × topology
// × eval mode (plus a noisy case that keeps the game-play streams hot), a
// run of 2N generations is bit-identical — same final strategy table, same
// cumulative event counts — to run-N → checkpoint → resume-N.  The configs
// use a PC event every generation and frequent mutations so any unrestored
// RNG stream diverges within a few generations.
func TestResumeBitIdentical(t *testing.T) {
	const n = 40
	cases := []struct {
		topo  string
		eval  EvalMode
		noise float64
	}{
		{"wellmixed", EvalFull, 0},
		{"wellmixed", EvalIncremental, 0},
		{"ring:4", EvalFull, 0},
		{"ring:4", EvalIncremental, 0},
		{"wellmixed", EvalFull, 0.05},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(fmt.Sprintf("serial/%s/%v/noise=%v", tc.topo, tc.eval, tc.noise), func(t *testing.T) {
			ckpt := filepath.Join(t.TempDir(), "run.ckpt")

			full, err := Simulate(context.Background(), serialResumeConfig(2*n, tc.noise, tc.topo, tc.eval, ""))
			if err != nil {
				t.Fatal(err)
			}
			if _, err := Simulate(context.Background(), serialResumeConfig(n, tc.noise, tc.topo, tc.eval, ckpt)); err != nil {
				t.Fatal(err)
			}
			resumed, err := ResumeSimulation(context.Background(), ckpt, serialResumeConfig(n, tc.noise, tc.topo, tc.eval, ""))
			if err != nil {
				t.Fatal(err)
			}
			if resumed.Generations != 2*n {
				t.Fatalf("resumed run reports %d generations, want %d", resumed.Generations, 2*n)
			}
			compareRuns(t, full.FinalStrategies, resumed.FinalStrategies,
				[3]int{full.PCEvents, full.Adoptions, full.Mutations},
				[3]int{resumed.PCEvents, resumed.Adoptions, resumed.Mutations})
		})
		t.Run(fmt.Sprintf("parallel/%s/%v/noise=%v", tc.topo, tc.eval, tc.noise), func(t *testing.T) {
			ckpt := filepath.Join(t.TempDir(), "run.ckpt")

			full, err := SimulateParallel(parallelResumeConfig(2*n, tc.noise, tc.topo, tc.eval, ""))
			if err != nil {
				t.Fatal(err)
			}
			if _, err := SimulateParallel(parallelResumeConfig(n, tc.noise, tc.topo, tc.eval, ckpt)); err != nil {
				t.Fatal(err)
			}
			resumed, err := ResumeParallelSimulation(ckpt, parallelResumeConfig(n, tc.noise, tc.topo, tc.eval, ""))
			if err != nil {
				t.Fatal(err)
			}
			if resumed.Generations != 2*n {
				t.Fatalf("resumed run reports %d generations, want %d", resumed.Generations, 2*n)
			}
			compareRuns(t, full.FinalStrategies, resumed.FinalStrategies,
				[3]int{full.PCEvents, full.Adoptions, full.Mutations},
				[3]int{resumed.PCEvents, resumed.Adoptions, resumed.Mutations})
		})
	}
}

func serialResumeConfig(gens int, noise float64, topo string, eval EvalMode, ckpt string) SimulationConfig {
	return SimulationConfig{
		NumSSets: 12, AgentsPerSSet: 2, MemorySteps: 1, Rounds: 20,
		Noise: noise, PCRate: 1, MutationRate: 0.25, Beta: 1,
		Generations: gens, Seed: 2013, Topology: topo, EvalMode: eval,
		CheckpointPath: ckpt,
	}
}

func parallelResumeConfig(gens int, noise float64, topo string, eval EvalMode, ckpt string) ParallelConfig {
	return ParallelConfig{
		Ranks: 3, NumSSets: 12, AgentsPerSSet: 2, MemorySteps: 1, Rounds: 20,
		Noise: noise, PCRate: 1, MutationRate: 0.25, Beta: 1,
		Generations: gens, Seed: 2013, Topology: topo, EvalMode: eval,
		CheckpointPath: ckpt,
	}
}

func compareRuns(t *testing.T, fullStrats, resumedStrats []string, fullEvents, resumedEvents [3]int) {
	t.Helper()
	if len(fullStrats) != len(resumedStrats) {
		t.Fatalf("strategy table length %d vs %d", len(resumedStrats), len(fullStrats))
	}
	for i := range fullStrats {
		if fullStrats[i] != resumedStrats[i] {
			t.Fatalf("strategy %d diverged after resume: %q vs %q", i, resumedStrats[i], fullStrats[i])
		}
	}
	if fullEvents != resumedEvents {
		t.Fatalf("event trace diverged after resume: [pc adopt mut] = %v vs %v", resumedEvents, fullEvents)
	}
}

// TestResumePeriodicCheckpoint exercises the CheckpointEvery cadence at
// the facade level: a run that stops at N with a periodic cadence leaves a
// resumable file that continues to exactly the uninterrupted 2N state.
// (The genuinely-killed-mid-Run variant, where the file holds an arbitrary
// cadence generation, lives in internal/population's
// TestInterruptedRunResumes.)
func TestResumePeriodicCheckpoint(t *testing.T) {
	const n = 30
	dir := t.TempDir()
	mid := filepath.Join(dir, "mid.ckpt")

	// Interrupted run: stop at n with a cadence that fired at 10, 20 and
	// (coinciding with the final write) at n.
	cfg := serialResumeConfig(n, 0.05, "ring:4", EvalFull, mid)
	cfg.CheckpointEvery = 10
	if _, err := Simulate(context.Background(), cfg); err != nil {
		t.Fatal(err)
	}
	snap, err := checkpoint.Load(mid)
	if err != nil {
		t.Fatal(err)
	}
	if !snap.Resume || snap.Generation != n {
		t.Fatalf("periodic checkpoint: Resume=%v Generation=%d, want resumable at %d", snap.Resume, snap.Generation, n)
	}

	full, err := Simulate(context.Background(), serialResumeConfig(2*n, 0.05, "ring:4", EvalFull, ""))
	if err != nil {
		t.Fatal(err)
	}
	resumed, err := ResumeSimulation(context.Background(), mid, serialResumeConfig(n, 0.05, "ring:4", EvalFull, ""))
	if err != nil {
		t.Fatal(err)
	}
	compareRuns(t, full.FinalStrategies, resumed.FinalStrategies,
		[3]int{full.PCEvents, full.Adoptions, full.Mutations},
		[3]int{resumed.PCEvents, resumed.Adoptions, resumed.Mutations})
}

// envelopeV3 mirrors the gob envelope exactly as the topology era wrote it
// (format version 3: no resume state).
type envelopeV3 struct {
	Version     int
	Generation  int
	Seed        uint64
	MemorySteps int
	Game        string
	Payoff      [4]float64
	UpdateRule  string
	Topology    string
	Label       string
	Strategies  [][]byte
}

// TestResumeV3FinalSnapshotOnly pins the pre-v4 compatibility contract: a
// version-3 checkpoint still loads, comes back marked non-resumable, and
// ResumeSimulation restores it as a warm start — the typed strategy table
// and the generation counter carry over and the run continues from there.
func TestResumeV3FinalSnapshotOnly(t *testing.T) {
	const ssets = 12
	old := envelopeV3{
		Version:     3,
		Generation:  500,
		Seed:        2013,
		MemorySteps: 1,
		Game:        "ipd",
		Payoff:      [4]float64{3, 0, 4, 1},
		UpdateRule:  "fermi",
		Topology:    "wellmixed",
		Label:       "topology-era run",
		Strategies:  make([][]byte, ssets),
	}
	for i := range old.Strategies {
		enc, err := strategy.Encode(strategy.WSLS(1))
		if err != nil {
			t.Fatal(err)
		}
		old.Strategies[i] = enc
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(old); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "v3.ckpt")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}

	snap, err := checkpoint.Load(path)
	if err != nil {
		t.Fatalf("v3 checkpoint failed to load: %v", err)
	}
	if snap.Resume {
		t.Fatal("v3 checkpoint claims to be resumable")
	}

	cfg := serialResumeConfig(40, 0.05, "wellmixed", EvalFull, "")
	res, err := ResumeSimulation(context.Background(), path, cfg)
	if err != nil {
		t.Fatalf("v3 warm-start restore failed: %v", err)
	}
	if res.Generations != 540 {
		t.Fatalf("warm start reports %d generations, want 540 (500 restored + 40 run)", res.Generations)
	}
	if len(res.FinalStrategies) != ssets {
		t.Fatalf("warm start lost the table: %d strategies", len(res.FinalStrategies))
	}
}

// TestResumeRejectsMismatch ensures a checkpoint cannot silently resume
// into a run it does not describe: wrong seed, wrong topology, wrong
// engine, or a caller-supplied initial table.
func TestResumeRejectsMismatch(t *testing.T) {
	ckpt := filepath.Join(t.TempDir(), "run.ckpt")
	if _, err := Simulate(context.Background(), serialResumeConfig(20, 0, "ring:4", EvalFull, ckpt)); err != nil {
		t.Fatal(err)
	}

	bad := serialResumeConfig(10, 0, "ring:4", EvalFull, "")
	bad.Seed = 999
	if _, err := ResumeSimulation(context.Background(), ckpt, bad); err == nil {
		t.Error("resume accepted a mismatched seed")
	}
	bad = serialResumeConfig(10, 0, "torus:moore", EvalFull, "")
	bad.NumSSets = 16
	if _, err := ResumeSimulation(context.Background(), ckpt, bad); err == nil {
		t.Error("resume accepted a mismatched topology and shape")
	}
	withTable := serialResumeConfig(10, 0, "ring:4", EvalFull, "")
	withTable.InitialStrategies = make([]string, 12)
	for i := range withTable.InitialStrategies {
		withTable.InitialStrategies[i] = "0110"
	}
	if _, err := ResumeSimulation(context.Background(), ckpt, withTable); err == nil {
		t.Error("resume accepted caller-supplied InitialStrategies")
	}
	// A serial resume snapshot must not restore into the parallel engine.
	if _, err := ResumeParallelSimulation(ckpt, parallelResumeConfig(10, 0, "ring:4", EvalFull, "")); err == nil {
		t.Error("parallel engine accepted a serial-engine resume snapshot")
	}
}
