// Command evogame runs an evolutionary game dynamics simulation from the
// command line, using either the serial reference engine or the distributed
// (goroutine-rank) engine that reproduces the paper's MPI/OpenMP
// decomposition.
//
// Examples:
//
//	evogame -ssets 256 -memory 1 -generations 50000 -noise 0.05
//	evogame -parallel -ranks 9 -ssets 256 -memory 6 -generations 100
//	evogame -ssets 128 -generations 20000 -ckpt-every 5000 -checkpoint run.ckpt
//	evogame -resume run.ckpt -generations 20000 -checkpoint run.ckpt
//	evogame -game snowdrift -rule moran -ssets 128 -noise 0 -eval incremental
//	evogame -game generic -payoff 5,1,6,2 -generations 10000
//	evogame -topology torus:moore -ssets 256 -noise 0 -generations 50000
//	evogame -topology smallworld:6:0.2 -ssets 512 -eval incremental
//	evogame -replicates 8 -ensemble-workers 4 -ssets 128 -noise 0 -eval cached
//	evogame -parallel -ranks 5 -generations 100 -fault-spec crash@40:r1 -max-restarts 3 -segment-every 20
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"evogame"

	"evogame/internal/checkpoint"
	"evogame/internal/stats"
)

func main() {
	var (
		useParallel = flag.Bool("parallel", false, "use the distributed engine (goroutine ranks)")
		ranks       = flag.Int("ranks", 5, "total ranks for the distributed engine (Nature + SSet ranks)")
		workers     = flag.Int("workers", 0, "worker goroutines for game play, per rank in parallel mode (0 = GOMAXPROCS)")
		optLevel    = flag.Int("opt", 3, "optimization level 0..3 (Figure 3)")

		ssets       = flag.Int("ssets", 128, "number of Strategy Sets")
		agents      = flag.Int("agents", 4, "agents per Strategy Set")
		memory      = flag.Int("memory", 1, "memory steps (1..6)")
		rounds      = flag.Int("rounds", evogame.DefaultRounds, "IPD rounds per game")
		noise       = flag.Float64("noise", 0.05, "per-move error probability")
		pcRate      = flag.Float64("pc-rate", 0.1, "pairwise comparison rate per generation")
		muRate      = flag.Float64("mutation-rate", 0.05, "mutation rate per generation")
		beta        = flag.Float64("beta", 1.0, "Fermi selection intensity")
		generations = flag.Int("generations", 10000, "generations to simulate")
		seed        = flag.Uint64("seed", 2013, "random seed")
		sampleEvery = flag.Int("sample-every", 0, "record an abundance sample every N generations (0 = final only)")
		ckptPath    = flag.String("checkpoint", "", "write a resumable checkpoint of the final population to this file")
		ckptEvery   = flag.Int("ckpt-every", 0, "also write a mid-run checkpoint to the -checkpoint file every N generations (0 = final only)")
		resumePath  = flag.String("resume", "", "resume a run from this checkpoint file; -generations counts additional generations and the recorded seed/population/scenario replace the corresponding flags")
		clusters    = flag.Int("clusters", 0, "cluster the final population into K groups (0 = skip)")
		evalName    = flag.String("eval", "full", "fitness evaluation mode: full, cached or incremental (noiseless runs only; noisy runs fall back to full)")
		gameName    = flag.String("game", "ipd", "game scenario: "+strings.Join(evogame.Games(), ", "))
		ruleName    = flag.String("rule", "fermi", "update rule: "+strings.Join(evogame.UpdateRules(), ", "))
		payoffCSV   = flag.String("payoff", "", "payoff override as R,S,T,P (must satisfy the scenario's constraints)")
		topoName    = flag.String("topology", "wellmixed", "interaction topology: wellmixed, ring[:degree], torus[:vonneumann|moore], smallworld[:degree[:rewire-prob]]")
		kernelName  = flag.String("kernel", "auto", "deterministic-game kernel: "+strings.Join(evogame.KernelModes(), ", ")+" (bit-identical; auto closes joint-state cycles in closed form)")

		replicates    = flag.Int("replicates", 1, "run this many independent replicates with derived seeds through the ensemble engine (1 = single run)")
		ensWorkers    = flag.Int("ensemble-workers", 0, "replicates in flight at once (0 = min(replicates, GOMAXPROCS); splits GOMAXPROCS with per-run -workers)")
		privateCaches = flag.Bool("private-caches", false, "give every replicate its own pair cache instead of sharing one store across the ensemble")

		faultSpec    = flag.String("fault-spec", "", "deterministic fault-injection plan, e.g. crash@40:r1 or drop@10:r2:x3 or rand:3 (see docs/FAULT_TOLERANCE.md; events derive from -seed)")
		maxRestarts  = flag.Int("max-restarts", 0, "recover transiently-failed runs from checkpoints up to this many times (0 = no recovery; recovered runs are bit-identical to fault-free ones)")
		segmentEvery = flag.Int("segment-every", 0, "supervisor checkpoint cadence in generations (0 = keep -ckpt-every; only with -max-restarts)")
	)
	flag.Parse()

	evalMode, err := evogame.ParseEvalMode(*evalName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "evogame:", err)
		os.Exit(1)
	}
	payoff, err := parsePayoff(*payoffCSV)
	if err != nil {
		fmt.Fprintln(os.Stderr, "evogame:", err)
		os.Exit(1)
	}
	if err := run(runOptions{
		parallel: *useParallel, ranks: *ranks, workers: *workers, optLevel: *optLevel,
		ssets: *ssets, agents: *agents, memory: *memory, rounds: *rounds, noise: *noise,
		pcRate: *pcRate, muRate: *muRate, beta: *beta, generations: *generations,
		seed: *seed, sampleEvery: *sampleEvery, ckptPath: *ckptPath, ckptEvery: *ckptEvery,
		resumePath: *resumePath, clusters: *clusters,
		evalMode: evalMode, game: *gameName, rule: *ruleName, payoff: payoff,
		topology: *topoName, kernel: *kernelName,
		replicates: *replicates, ensWorkers: *ensWorkers, privateCaches: *privateCaches,
		faultSpec: *faultSpec, maxRestarts: *maxRestarts, segmentEvery: *segmentEvery,
	}); err != nil {
		fmt.Fprintln(os.Stderr, "evogame:", err)
		os.Exit(1)
	}
}

// parsePayoff parses the -payoff flag's "R,S,T,P" value; an empty string
// means "use the scenario's canonical payoff".
func parsePayoff(csv string) ([]float64, error) {
	if csv == "" {
		return nil, nil
	}
	parts := strings.Split(csv, ",")
	if len(parts) != 4 {
		return nil, fmt.Errorf("-payoff wants 4 comma-separated values R,S,T,P, got %q", csv)
	}
	out := make([]float64, 4)
	for i, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, fmt.Errorf("-payoff value %q: %w", p, err)
		}
		out[i] = v
	}
	return out, nil
}

type runOptions struct {
	parallel                    bool
	ranks, workers, optLevel    int
	ssets, agents, memory       int
	rounds                      int
	noise, pcRate, muRate, beta float64
	generations                 int
	seed                        uint64
	sampleEvery                 int
	ckptPath                    string
	ckptEvery                   int
	resumePath                  string
	clusters                    int
	evalMode                    evogame.EvalMode
	game, rule                  string
	payoff                      []float64
	topology                    string
	kernel                      string
	replicates, ensWorkers      int
	privateCaches               bool
	faultSpec                   string
	maxRestarts, segmentEvery   int
}

// adoptCheckpointIdentity replaces the identity-bearing options with the
// values the checkpoint records, so a resume needs no flag archaeology:
// seed, population size, memory depth, game, payoff, update rule and
// topology all come from the file.  Parameters a checkpoint does not record
// (noise, rounds, rates, engine selection) keep their flag values and must
// match the original run for a bit-identical continuation.
func (o *runOptions) adoptCheckpointIdentity(snap checkpoint.Snapshot) {
	o.seed = snap.Seed
	o.ssets = len(snap.Strategies)
	o.memory = snap.MemorySteps
	o.game = snap.Game
	o.rule = snap.UpdateRule
	o.topology = snap.Topology
	o.payoff = append([]float64(nil), snap.Payoff[:]...)
}

func run(o runOptions) error {
	//lint:allow randsource wall-clock elapsed time for the CLI summary line; never feeds simulation state
	start := time.Now()
	var finalStrategies []string

	if o.ckptEvery > 0 && o.ckptPath == "" {
		return fmt.Errorf("-ckpt-every requires -checkpoint")
	}
	if o.replicates != 1 {
		if o.replicates < 1 {
			return fmt.Errorf("-replicates must be at least 1, got %d", o.replicates)
		}
		if o.resumePath != "" || o.ckptPath != "" {
			return fmt.Errorf("-replicates runs an ensemble; checkpoint/resume are per-run, so run seeds individually to use them")
		}
		return runEnsemble(o)
	}
	if o.resumePath != "" {
		snap, err := checkpoint.Load(o.resumePath)
		if err != nil {
			return err
		}
		o.adoptCheckpointIdentity(snap)
		kind := "resumable"
		if !snap.Resume {
			kind = "final-only (warm start)"
		}
		fmt.Printf("resuming %s checkpoint %s: generation %d, %d SSets, memory-%d, game %s, rule %s, topology %s\n",
			kind, o.resumePath, snap.Generation, o.ssets, o.memory, o.game, o.rule, o.topology)
	}

	topo, err := evogame.DescribeTopology(o.topology)
	if err != nil {
		return err
	}

	if o.parallel {
		cfg := evogame.ParallelConfig{
			Ranks: o.ranks, WorkersPerRank: o.workers, OptimizationLevel: o.optLevel,
			NumSSets: o.ssets, AgentsPerSSet: o.agents, MemorySteps: o.memory,
			Rounds: o.rounds, Noise: o.noise, PCRate: o.pcRate, MutationRate: o.muRate,
			Beta: o.beta, Generations: o.generations, Seed: o.seed, EvalMode: o.evalMode,
			Kernel: o.kernel,
			Game:   o.game, Payoff: o.payoff, UpdateRule: o.rule, Topology: o.topology,
			CheckpointPath: o.ckptPath, CheckpointEvery: o.ckptEvery,
			CheckpointLabel: "evogame CLI run",
			FaultPlan:       o.faultSpec, MaxRestarts: o.maxRestarts, SegmentEvery: o.segmentEvery,
		}
		var res evogame.ParallelResult
		if o.resumePath != "" {
			res, err = evogame.ResumeParallelSimulation(o.resumePath, cfg)
		} else {
			res, err = evogame.SimulateParallel(cfg)
		}
		if err != nil {
			return err
		}
		finalStrategies = res.FinalStrategies
		fmt.Printf("distributed run: %d generations, %d ranks, %d SSets, memory-%d, game %s, rule %s, topology %s\n",
			res.Generations, o.ranks, o.ssets, o.memory, o.game, o.rule, topo.Canonical)
		fmt.Printf("wallclock %.2fs  mean rank compute %.2fs  mean rank comm %.2fs  games %d\n",
			res.WallClockSeconds, res.ComputeSeconds, res.CommSeconds, res.TotalGames)
		fmt.Printf("events: %d pairwise comparisons, %d adoptions, %d mutations\n",
			res.PCEvents, res.Adoptions, res.Mutations)
		printFaultSummary(res.Metrics)
		t := stats.NewTable("Rank", "Local SSets", "Games", "Compute (s)", "Comm (s)", "Msgs sent")
		for _, r := range res.Ranks {
			t.AddRow(r.Rank, r.LocalSSets, r.GamesPlayed, r.ComputeSeconds, r.CommSeconds, r.MessagesSent)
		}
		fmt.Print(t.String())
	} else {
		cfg := evogame.SimulationConfig{
			NumSSets: o.ssets, AgentsPerSSet: o.agents, MemorySteps: o.memory,
			Rounds: o.rounds, Noise: o.noise, PCRate: o.pcRate, MutationRate: o.muRate,
			Beta: o.beta, Generations: o.generations, Seed: o.seed, SampleEvery: o.sampleEvery,
			EvalMode: o.evalMode, Kernel: o.kernel, Workers: o.workers,
			Game: o.game, Payoff: o.payoff, UpdateRule: o.rule,
			Topology:       o.topology,
			CheckpointPath: o.ckptPath, CheckpointEvery: o.ckptEvery,
			CheckpointLabel: "evogame CLI run",
			FaultPlan:       o.faultSpec, MaxRestarts: o.maxRestarts, SegmentEvery: o.segmentEvery,
		}
		var res evogame.SimulationResult
		if o.resumePath != "" {
			res, err = evogame.ResumeSimulation(context.Background(), o.resumePath, cfg)
		} else {
			res, err = evogame.Simulate(context.Background(), cfg)
		}
		if err != nil {
			return err
		}
		finalStrategies = res.FinalStrategies
		fmt.Printf("serial run: %d generations, %d SSets x %d agents, memory-%d, game %s, rule %s, topology %s (%.2fs)\n",
			res.Generations, o.ssets, o.agents, o.memory, o.game, o.rule, topo.Canonical, time.Since(start).Seconds())
		fmt.Printf("events: %d pairwise comparisons, %d adoptions, %d mutations, %d games\n",
			res.PCEvents, res.Adoptions, res.Mutations, res.GamesPlayed)
		printFaultSummary(res.Metrics)
		t := stats.NewTable("Generation", "Distinct", "Top strategy", "Top %", "WSLS %", "ALLD %")
		for _, s := range res.Samples {
			t.AddRow(s.Generation, s.DistinctStrategies, s.TopStrategy, 100*s.TopFraction, 100*s.WSLSFraction, 100*s.AllDFraction)
		}
		fmt.Print(t.String())
	}

	if o.clusters > 0 {
		groups, err := evogame.ClusterStrategies(finalStrategies, o.clusters, o.seed)
		if err != nil {
			return err
		}
		fmt.Printf("\nk-means clusters (k=%d):\n", o.clusters)
		ct := stats.NewTable("Cluster", "Size", "Fraction", "Representative")
		for i, c := range groups {
			ct.AddRow(i, c.Size, c.Fraction, c.Representative)
		}
		fmt.Print(ct.String())
	}

	// The engines write the checkpoint themselves: the typed strategy table
	// (mixed strategies survive, unlike the old re-parse of the rendered
	// strings), the generation counter actually reached, and the RNG stream
	// states that make -resume bit-identical.
	if o.ckptPath != "" {
		fmt.Printf("\ncheckpoint written to %s\n", o.ckptPath)
	}
	return nil
}

// printFaultSummary prints the fault-tolerance counters when the run saw
// any injected faults or supervised recovery; fault-free runs print nothing.
func printFaultSummary(m evogame.Metrics) {
	if m.Restarts == 0 && m.RetriedSends == 0 && m.DroppedMessages == 0 && m.DelayedMessages == 0 {
		return
	}
	fmt.Printf("faults: %d supervised restarts, %d retried sends, %d dropped, %d delayed messages (recovery %.3fs)\n",
		m.Restarts, m.RetriedSends, m.DroppedMessages, m.DelayedMessages, float64(m.RecoveryNanos)/1e9)
}

// runEnsemble runs -replicates independent replicates through the ensemble
// engine and prints per-replicate summaries plus the deterministic
// aggregates (mean ± std cooperation trajectory, merged metrics).
func runEnsemble(o runOptions) error {
	topo, err := evogame.DescribeTopology(o.topology)
	if err != nil {
		return err
	}
	ecfg := evogame.EnsembleConfig{
		Replicates:      o.replicates,
		EnsembleWorkers: o.ensWorkers,
		PrivateCaches:   o.privateCaches,
		FaultPlan:       o.faultSpec,
		MaxRestarts:     o.maxRestarts,
		SegmentEvery:    o.segmentEvery,
	}
	if o.parallel {
		ecfg.Parallel = &evogame.ParallelConfig{
			Ranks: o.ranks, WorkersPerRank: o.workers, OptimizationLevel: o.optLevel,
			NumSSets: o.ssets, AgentsPerSSet: o.agents, MemorySteps: o.memory,
			Rounds: o.rounds, Noise: o.noise, PCRate: o.pcRate, MutationRate: o.muRate,
			Beta: o.beta, Generations: o.generations, Seed: o.seed, EvalMode: o.evalMode,
			Kernel: o.kernel,
			Game:   o.game, Payoff: o.payoff, UpdateRule: o.rule, Topology: o.topology,
		}
	} else {
		ecfg.Simulation = &evogame.SimulationConfig{
			NumSSets: o.ssets, AgentsPerSSet: o.agents, MemorySteps: o.memory,
			Rounds: o.rounds, Noise: o.noise, PCRate: o.pcRate, MutationRate: o.muRate,
			Beta: o.beta, Generations: o.generations, Seed: o.seed, SampleEvery: o.sampleEvery,
			EvalMode: o.evalMode, Kernel: o.kernel, Workers: o.workers,
			Game: o.game, Payoff: o.payoff, UpdateRule: o.rule, Topology: o.topology,
		}
	}
	res, err := evogame.RunEnsemble(context.Background(), ecfg)
	if err != nil {
		return err
	}
	engine := "serial"
	if o.parallel {
		engine = "distributed"
	}
	cache := "shared"
	if o.privateCaches {
		cache = "private"
	}
	fmt.Printf("ensemble: %d replicates (%s engine, %d ensemble workers x %d run workers, %s caches), %d SSets, memory-%d, game %s, rule %s, topology %s (%.2fs)\n",
		o.replicates, engine, res.EnsembleWorkers, res.RunWorkers, cache,
		o.ssets, o.memory, o.game, o.rule, topo.Canonical, res.WallClockSeconds)

	t := stats.NewTable("Replicate", "Seed", "PC events", "Adoptions", "Mutations", "WSLS %")
	for k := range res.Seeds {
		switch {
		case res.Serial != nil:
			r := res.Serial[k]
			t.AddRow(k, res.Seeds[k], r.PCEvents, r.Adoptions, r.Mutations, 100*r.WSLSFraction())
		case res.Parallel != nil:
			r := res.Parallel[k]
			t.AddRow(k, res.Seeds[k], r.PCEvents, r.Adoptions, r.Mutations, "-")
		}
	}
	fmt.Print(t.String())

	if len(res.Trajectory) > 0 {
		fmt.Println("\naggregate trajectory (mean ± std over replicates):")
		tt := stats.NewTable("Generation", "Cooperation", "±", "WSLS", "±")
		for _, p := range res.Trajectory {
			tt.AddRow(p.Generation, p.CooperationMean, p.CooperationStd, p.WSLSMean, p.WSLSStd)
		}
		fmt.Print(tt.String())
	}
	m := res.Metrics
	fmt.Printf("\nmerged metrics: %d cache hits, %d misses, %d bypassed, %d games executed\n",
		m.CacheHits, m.CacheMisses, m.CacheBypassed, m.ScalarGames+m.CycleGames+m.BatchGames)
	printFaultSummary(m)
	for k, rerr := range res.Errors {
		if rerr != nil {
			fmt.Printf("replicate %d failed permanently: %v\n", k, rerr)
		}
	}
	return nil
}
