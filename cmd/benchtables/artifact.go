package main

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"evogame/internal/artifact"
	"evogame/internal/stats"
)

// The artifact table measures the paperkit pipeline's incremental runner:
// one quick-grid artifact is regenerated into a scratch directory cold
// (every envelope missing), warm (every envelope fresh) and after deleting
// a single envelope.  The claims BENCH_8.json pins are structural, not
// timing thresholds: cold executes every run, warm executes none, the
// deletion re-executes exactly one, and the re-executed envelope is
// byte-identical to the one that was deleted — the property that makes the
// committed artifact tables regenerable.
//
// The committed BENCH_8.json is this table's -json output; see
// docs/REPRODUCTION.md.

// artifactRow is one phase of the artifact table (and one row of the
// BENCH_8.json baseline).
type artifactRow struct {
	// Phase is "cold", "warm" or "delete_one".
	Phase string `json:"phase"`
	// RunsExecuted and RunsSkipped count the (cell, replicate) runs the
	// phase executed and found fresh.
	RunsExecuted int `json:"runs_executed"`
	RunsSkipped  int `json:"runs_skipped"`
	// Seconds is the phase's end-to-end Execute wall-clock.
	Seconds float64 `json:"seconds"`
}

// artifactDoc is the machine-readable envelope of the artifact table.
type artifactDoc struct {
	Table      string `json:"table"`
	Artifact   string `json:"artifact"`
	Grid       string `json:"grid"`
	TotalRuns  int    `json:"total_runs"`
	GoMaxProcs int    `json:"go_max_procs"`
	// RegeneratedIdentical reports whether the envelope re-executed in the
	// delete_one phase came back with the exact bytes of the deleted one.
	RegeneratedIdentical bool          `json:"regenerated_identical"`
	Rows                 []artifactRow `json:"rows"`
}

// tableArtifact measures the paperkit runner's cold/warm/delete-one phases
// on the figure3_ablation quick grid in a scratch directory.
func tableArtifact(opts options) error {
	const name = "figure3_ablation"
	a, err := artifact.Lookup(name)
	if err != nil {
		return err
	}
	dir, err := os.MkdirTemp("", "benchtables-artifact-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	doc := artifactDoc{
		Table:      "artifact",
		Artifact:   name,
		Grid:       artifact.GridName(true),
		GoMaxProcs: runtime.GOMAXPROCS(0),
	}
	cells := a.Grid(true)
	for _, cell := range cells {
		doc.TotalRuns += cell.Replicates
	}
	if !opts.jsonOut {
		header("Artifact table — paperkit incremental regeneration (quick grid, scratch directory)")
		fmt.Printf("workload: artifact %q, %d cells, %d runs\n", name, len(cells), doc.TotalRuns)
	}

	execute := func(phase string) (artifactRow, error) {
		start := time.Now()
		reports, err := artifact.Execute(context.Background(), dir, artifact.ExecuteOptions{
			Quick:     true,
			Artifacts: []string{name},
		})
		if err != nil {
			return artifactRow{}, err
		}
		row := artifactRow{Phase: phase, Seconds: time.Since(start).Seconds()}
		for _, r := range reports {
			row.RunsExecuted += len(r.Executed)
			row.RunsSkipped += len(r.Skipped)
		}
		return row, nil
	}

	t := stats.NewTable("Phase", "Executed", "Skipped", "Seconds")
	for _, phase := range []string{"cold", "warm", "delete_one"} {
		if phase == "delete_one" {
			victim := artifact.EnvelopePath(dir, true, name, cells[0], 0)
			before, err := os.ReadFile(victim)
			if err != nil {
				return err
			}
			if err := os.Remove(victim); err != nil {
				return err
			}
			row, err := execute(phase)
			if err != nil {
				return err
			}
			after, err := os.ReadFile(victim)
			if err != nil {
				return err
			}
			doc.RegeneratedIdentical = hash(before) == hash(after)
			doc.Rows = append(doc.Rows, row)
			t.AddRow(row.Phase, row.RunsExecuted, row.RunsSkipped, fmt.Sprintf("%.3f", row.Seconds))
			continue
		}
		row, err := execute(phase)
		if err != nil {
			return err
		}
		doc.Rows = append(doc.Rows, row)
		t.AddRow(row.Phase, row.RunsExecuted, row.RunsSkipped, fmt.Sprintf("%.3f", row.Seconds))
	}

	if opts.jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(doc)
	}
	fmt.Print(t.String())
	fmt.Printf("regenerated envelope byte-identical to the deleted one: %v\n", doc.RegeneratedIdentical)
	fmt.Println("note: freshness is decided per envelope (config fingerprint + generation count), so a")
	fmt.Println("partial regeneration executes exactly the missing runs and reproduces identical bytes.")
	fmt.Println("BENCH_8.json is this table's -json output; see docs/REPRODUCTION.md")
	return nil
}

func hash(b []byte) string {
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}
