package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"evogame/internal/faults"
	"evogame/internal/parallel"
	"evogame/internal/population"
	"evogame/internal/stats"
	"evogame/internal/supervise"
)

// The faults table measures the cost of the fault-tolerant tier
// (docs/FAULT_TOLERANCE.md) from two angles:
//
//   - Injector-off overhead: the hardened mpi fabric consults its
//     FaultInjector on every send and generation fault-point.  The
//     "armed-idle" row runs the identical workload with a plan whose only
//     event can never fire, so every hook takes the injector-consultation
//     path; the ratio against the nil-injector baseline is the price of
//     the hooks themselves, pinned at <= 2%.
//   - Recovery cost: supervised runs with a mid-run injected crash, on
//     both engines, reporting restarts and the recovery wall-clock the
//     supervisor adds on top of the fault-free run.
//
// Wall-clock rows take the best of several repeats so one scheduling
// hiccup cannot fake an overhead.  The committed BENCH_9.json is this
// table's -json output; bench_baseline_test.go guards its schema and the
// overhead claim.

// faultsOverhead is the injector-off overhead measurement of the faults
// table (one per BENCH_9.json).
type faultsOverhead struct {
	// BaselineSeconds is the best-of-N wall-clock with a nil injector;
	// ArmedIdleSeconds the same workload with an armed plan that never
	// fires.  OverheadRatio = armed / baseline.
	BaselineSeconds  float64 `json:"baseline_seconds"`
	ArmedIdleSeconds float64 `json:"armed_idle_seconds"`
	OverheadRatio    float64 `json:"overhead_ratio"`
	Repeats          int     `json:"repeats"`
}

// faultsRecoveryRow is one supervised-recovery measurement.
type faultsRecoveryRow struct {
	Engine string `json:"engine"`
	// Spec is the injected fault plan; SegmentEvery the supervisor's
	// checkpoint cadence.
	Spec         string `json:"spec"`
	SegmentEvery int    `json:"segment_every"`
	Restarts     int    `json:"restarts"`
	// FaultFreeSeconds is the same workload without faults;
	// RecoveredSeconds the supervised faulty run end to end;
	// RecoverySeconds the supervisor's own recovery accounting
	// (backoff + checkpoint reload), a component of the difference.
	FaultFreeSeconds float64 `json:"fault_free_seconds"`
	RecoveredSeconds float64 `json:"recovered_seconds"`
	RecoverySeconds  float64 `json:"recovery_seconds"`
}

// faultsDoc is the machine-readable envelope of the faults table.
type faultsDoc struct {
	Table       string              `json:"table"`
	Seed        uint64              `json:"seed"`
	Ranks       int                 `json:"ranks"`
	SSets       int                 `json:"ssets"`
	Generations int                 `json:"generations"`
	GoMaxProcs  int                 `json:"go_max_procs"`
	Overhead    faultsOverhead      `json:"overhead"`
	Recovery    []faultsRecoveryRow `json:"recovery"`
}

// faultsWorkload is the common distributed workload of the faults table.
func faultsWorkload(opts options, generations int) parallel.Config {
	return parallel.Config{
		Ranks:         5,
		NumSSets:      128,
		AgentsPerSSet: 2,
		MemorySteps:   1,
		Rounds:        200,
		PCRate:        0.1,
		MutationRate:  0.05,
		Beta:          1,
		Generations:   generations,
		Seed:          opts.seed,
		OptLevel:      parallel.OptFusedFitness,
	}
}

// serialFaultsWorkload is the serial twin of the distributed workload.
func serialFaultsWorkload(opts options) population.Config {
	return population.Config{
		NumSSets:      128,
		AgentsPerSSet: 2,
		MemorySteps:   1,
		Rounds:        200,
		PCRate:        0.1,
		MutationRate:  0.05,
		Beta:          1,
		Seed:          opts.seed,
	}
}

// bestOf runs fn repeats times and returns the minimum wall-clock.
func bestOf(repeats int, fn func() error) (float64, error) {
	best := 0.0
	for i := 0; i < repeats; i++ {
		start := time.Now()
		if err := fn(); err != nil {
			return 0, err
		}
		if sec := time.Since(start).Seconds(); i == 0 || sec < best {
			best = sec
		}
	}
	return best, nil
}

// tableFaults measures injector-off overhead and supervised recovery cost.
func tableFaults(opts options) error {
	generations, repeats := 20, 5
	if opts.full {
		generations, repeats = 60, 7
	}
	doc := faultsDoc{
		Table:       "faults",
		Seed:        opts.seed,
		Ranks:       5,
		SSets:       128,
		Generations: generations,
		GoMaxProcs:  runtime.GOMAXPROCS(0),
		Overhead:    faultsOverhead{Repeats: repeats},
	}
	if !opts.jsonOut {
		header("Faults table — injector-off overhead and supervised recovery cost")
		fmt.Printf("workload: 5 ranks, S=%d, memory-one, %d generations, opt level 3; best of %d repeats\n",
			doc.SSets, generations, repeats)
	}

	// Injector-off overhead: nil injector vs an armed plan whose single
	// event sits far past the horizon, so it arms the hooks but never
	// fires.  One warm-up run of each variant precedes measurement.
	base := faultsWorkload(opts, generations)
	idle := faultsWorkload(opts, generations)
	idle.Faults = faults.NewPlan(faults.Event{Kind: faults.Crash, Gen: 1 << 30, Rank: 1})
	for _, cfg := range []parallel.Config{base, idle} {
		if _, err := parallel.Run(cfg); err != nil {
			return err
		}
	}
	var err error
	if doc.Overhead.BaselineSeconds, err = bestOf(repeats, func() error {
		_, err := parallel.Run(base)
		return err
	}); err != nil {
		return err
	}
	if doc.Overhead.ArmedIdleSeconds, err = bestOf(repeats, func() error {
		_, err := parallel.Run(idle)
		return err
	}); err != nil {
		return err
	}
	if doc.Overhead.BaselineSeconds > 0 {
		doc.Overhead.OverheadRatio = doc.Overhead.ArmedIdleSeconds / doc.Overhead.BaselineSeconds
	}

	// Supervised recovery: a mid-run crash on each engine, recovered from
	// the newest checkpoint segment.
	const segmentEvery = 8
	crashGen := generations / 2
	pol := supervise.Policy{MaxRestarts: 3, SegmentEvery: segmentEvery}

	pFree, err := bestOf(1, func() error {
		_, err := parallel.Run(faultsWorkload(opts, generations))
		return err
	})
	if err != nil {
		return err
	}
	pSpec := fmt.Sprintf("crash@%d:r2", crashGen)
	pCfg := faultsWorkload(opts, generations)
	if pCfg.Faults, err = faults.Parse(pSpec, opts.seed, pCfg.Ranks); err != nil {
		return err
	}
	pStart := time.Now()
	_, pRep, err := supervise.RunParallel(pCfg, pol)
	if err != nil {
		return err
	}
	doc.Recovery = append(doc.Recovery, faultsRecoveryRow{
		Engine:           "parallel",
		Spec:             pSpec,
		SegmentEvery:     segmentEvery,
		Restarts:         pRep.Restarts,
		FaultFreeSeconds: pFree,
		RecoveredSeconds: time.Since(pStart).Seconds(),
		RecoverySeconds:  pRep.Recovery.Seconds(),
	})

	sBase := serialFaultsWorkload(opts)
	sFree, err := bestOf(1, func() error {
		model, err := population.New(sBase)
		if err != nil {
			return err
		}
		_, err = model.Run(context.Background(), generations)
		return err
	})
	if err != nil {
		return err
	}
	sSpec := fmt.Sprintf("crash@%d:r0", crashGen)
	sCfg := serialFaultsWorkload(opts)
	if sCfg.Faults, err = faults.Parse(sSpec, opts.seed, 1); err != nil {
		return err
	}
	sStart := time.Now()
	_, sRep, err := supervise.RunSerial(context.Background(), sCfg, generations, pol)
	if err != nil {
		return err
	}
	doc.Recovery = append(doc.Recovery, faultsRecoveryRow{
		Engine:           "serial",
		Spec:             sSpec,
		SegmentEvery:     segmentEvery,
		Restarts:         sRep.Restarts,
		FaultFreeSeconds: sFree,
		RecoveredSeconds: time.Since(sStart).Seconds(),
		RecoverySeconds:  sRep.Recovery.Seconds(),
	})

	if opts.jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(doc)
	}
	fmt.Printf("injector-off overhead: baseline %.3fs, armed-idle %.3fs, ratio %.4f (claim: <= 1.02)\n",
		doc.Overhead.BaselineSeconds, doc.Overhead.ArmedIdleSeconds, doc.Overhead.OverheadRatio)
	t := stats.NewTable("Engine", "Spec", "SegmentEvery", "Restarts", "FaultFree (s)", "Recovered (s)", "Recovery (s)")
	for _, r := range doc.Recovery {
		t.AddRow(r.Engine, r.Spec, r.SegmentEvery, r.Restarts,
			fmt.Sprintf("%.3f", r.FaultFreeSeconds),
			fmt.Sprintf("%.3f", r.RecoveredSeconds),
			fmt.Sprintf("%.3f", r.RecoverySeconds))
	}
	fmt.Print(t.String())
	fmt.Println("note: the recovered run is bit-identical to the fault-free one; restarts, retries and")
	fmt.Println("recovery wall-clock are the only observable differences.  BENCH_9.json is this table's")
	fmt.Println("-json output; see docs/FAULT_TOLERANCE.md")
	return nil
}
