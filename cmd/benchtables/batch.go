package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"evogame/internal/fitness"
	"evogame/internal/game"
	"evogame/internal/rng"
	"evogame/internal/sset"
	"evogame/internal/stats"
	"evogame/internal/strategy"
)

// The batch table measures the bit-sliced SWAR kernel on the full-replay
// hot path: an SSet evaluating its fitness against S opponents, the block
// of games the paper's SSet ranks replay every generation when no fast
// path applies (noise, or the Figure 3 ablation's original kernel).  Two
// modes are compared at each population size, noise level and worker
// count:
//
//   - full-replay: game.KernelFullReplay, every game replayed one round at
//     a time by the scalar reference loop.
//   - batch: game.KernelBatch, up to 64 opponents played simultaneously as
//     uint64 bit lanes (branchless move multiplexing + vertical outcome
//     counters), bit-identical per seed to the scalar rows.
//
// The committed BENCH_6.json is this table's -json output; see
// docs/PERFORMANCE.md for the lane layout and the bypass matrix.

// batchRow is one measurement of the batch table (and one row of the
// BENCH_6.json baseline).
type batchRow struct {
	SSets   int     `json:"ssets"`
	Mode    string  `json:"mode"`
	Noise   float64 `json:"noise"`
	Workers int     `json:"workers"`
	Sweeps  int     `json:"sweeps"`
	Games   int64   `json:"games"`
	Seconds float64 `json:"seconds"`
	// NsPerGame is the mean wall-clock cost of one game.
	NsPerGame float64 `json:"ns_per_game"`
	// SpeedupVsFullReplay is this row's throughput relative to the
	// full-replay row with the same population size, noise and workers.
	SpeedupVsFullReplay float64 `json:"speedup_vs_full_replay"`
	// AllocsPerOp is the measured heap allocations per game.
	AllocsPerOp float64 `json:"allocs_per_op"`
	// BatchLaneOccupancy is the mean fraction of the 64 SWAR lanes filled
	// per batch kernel call (0 for the full-replay rows).
	BatchLaneOccupancy float64 `json:"batch_lane_occupancy"`
}

// batchMetrics is the JSON shape of the flat Metrics export (see
// fitness.Metrics), summed over every engine the batch table measured.
type batchMetrics struct {
	CachePlays    int64 `json:"cache_plays"`
	CacheHits     int64 `json:"cache_hits"`
	CacheMisses   int64 `json:"cache_misses"`
	CacheBypassed int64 `json:"cache_bypassed"`
	CacheEvicted  int64 `json:"cache_evicted"`
	ScalarGames   int64 `json:"scalar_games"`
	CycleGames    int64 `json:"cycle_games"`
	BatchGames    int64 `json:"batch_games"`
	BatchCalls    int64 `json:"batch_calls"`
	// BatchLaneOccupancy is the mean fraction of the 64 SWAR lanes filled
	// per batch call over the whole table.
	BatchLaneOccupancy float64 `json:"batch_lane_occupancy"`
}

// batchDoc is the machine-readable envelope of the batch table.
type batchDoc struct {
	Table       string       `json:"table"`
	Seed        uint64       `json:"seed"`
	Rounds      int          `json:"rounds"`
	MemorySteps int          `json:"memory_steps"`
	GoMaxProcs  int          `json:"go_max_procs"`
	Metrics     batchMetrics `json:"metrics"`
	Rows        []batchRow   `json:"rows"`
}

// tableBatch builds random strategy tables at S in {32, 128, 512} and
// measures a full fitness sweep (every SSet against all S opponents) per
// kernel mode, noise level and worker count.
func tableBatch(opts options) error {
	const memSteps = 1
	rounds := game.DefaultRounds
	doc := batchDoc{
		Table:       "batch",
		Seed:        opts.seed,
		Rounds:      rounds,
		MemorySteps: memSteps,
		GoMaxProcs:  runtime.GOMAXPROCS(0),
	}
	workerCounts := []int{1}
	if p := runtime.GOMAXPROCS(0); p > 1 {
		workerCounts = append(workerCounts, p)
	}
	if !opts.jsonOut {
		header("Batch table — scalar full replay vs bit-sliced SWAR kernel (full fitness sweep, memory-one)")
		fmt.Printf("workload: S x S games per sweep, %d rounds/game, random pure strategies\n", rounds)
	}
	t := stats.NewTable("SSets", "Kernel", "Noise", "Workers", "Games", "Seconds", "ns/game", "Allocs/game", "Lanes", "Speedup")
	var agg fitness.Metrics
	for _, ssets := range []int{32, 128, 512} {
		src := rng.New(opts.seed)
		table := make([]strategy.Strategy, ssets)
		for i := range table {
			table[i] = strategy.RandomPure(memSteps, src)
		}
		// Repeat small sweeps so every measurement covers comparable work.
		sweeps := 512 / ssets
		if opts.full {
			sweeps *= 4
		}
		for _, noise := range []float64{0, 0.05} {
			for _, workers := range workerCounts {
				var baseNs float64
				for _, mode := range []string{"full-replay", "batch"} {
					row, kstats, err := measureBatch(mode, table, rounds, memSteps, sweeps, noise, workers, opts.seed)
					if err != nil {
						return err
					}
					agg.AddEngine(kstats)
					if mode == "full-replay" {
						baseNs = row.NsPerGame
					}
					if row.NsPerGame > 0 {
						row.SpeedupVsFullReplay = baseNs / row.NsPerGame
					}
					doc.Rows = append(doc.Rows, row)
					t.AddRow(row.SSets, row.Mode, row.Noise, row.Workers, row.Games,
						fmt.Sprintf("%.4f", row.Seconds),
						fmt.Sprintf("%.0f", row.NsPerGame),
						fmt.Sprintf("%.2f", row.AllocsPerOp),
						fmt.Sprintf("%.2f", row.BatchLaneOccupancy),
						fmt.Sprintf("%.1fx", row.SpeedupVsFullReplay))
				}
			}
		}
	}
	doc.Metrics = batchMetrics{
		CachePlays:         agg.CachePlays,
		CacheHits:          agg.CacheHits,
		CacheMisses:        agg.CacheMisses,
		CacheBypassed:      agg.CacheBypassed,
		CacheEvicted:       agg.CacheEvicted,
		ScalarGames:        agg.ScalarGames,
		CycleGames:         agg.CycleGames,
		BatchGames:         agg.BatchGames,
		BatchCalls:         agg.BatchCalls,
		BatchLaneOccupancy: agg.BatchLaneOccupancy(),
	}
	if opts.jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(doc)
	}
	fmt.Print(t.String())
	fmt.Println("note: batch plays up to 64 opponents per call as uint64 bit lanes; noisy rows pre-draw")
	fmt.Println("the per-round error flips in scalar order, so every row is bit-identical per seed.")
	fmt.Println("BENCH_6.json is this table's -json output; see docs/PERFORMANCE.md")
	return nil
}

// measureBatch runs `sweeps` full fitness sweeps (every SSet in the table
// against all S opponents through sset.Fitness) under the requested kernel
// mode and reports per-game cost, allocations and SWAR lane occupancy,
// plus the engine's kernel-mix counters for the aggregate Metrics export.
func measureBatch(mode string, table []strategy.Strategy, rounds, memSteps, sweeps int, noise float64, workers int, seed uint64) (batchRow, game.KernelStats, error) {
	kernel := game.KernelBatch
	if mode == "full-replay" {
		kernel = game.KernelFullReplay
	}
	eng, err := game.NewEngine(game.EngineConfig{
		Rounds:      rounds,
		MemorySteps: memSteps,
		Noise:       noise,
		StateMode:   game.StateRolling,
		AccumMode:   game.AccumLookup,
		Kernel:      kernel,
	})
	if err != nil {
		return batchRow{}, game.KernelStats{}, err
	}
	ssets := make([]*sset.SSet, len(table))
	for i, s := range table {
		if ssets[i], err = sset.New(i, 1, s); err != nil {
			return batchRow{}, game.KernelStats{}, err
		}
	}

	sweep := func(sweepSrc *rng.Source) (int64, error) {
		games := int64(0)
		sink := 0.0
		for _, s := range ssets {
			opts := sset.FitnessOptions{Workers: workers}
			if sweepSrc != nil {
				opts.Source = sweepSrc.Split()
			}
			f, err := s.Fitness(eng, table, opts)
			if err != nil {
				return 0, err
			}
			sink += f
			games += int64(len(table))
		}
		_ = sink
		return games, nil
	}
	newSweepSrc := func() *rng.Source {
		if noise > 0 {
			return rng.New(seed + 1)
		}
		return nil
	}
	// Warm the engine's pooled SWAR buffers so the measured sweeps see the
	// steady state.
	if _, err := sweep(newSweepSrc()); err != nil {
		return batchRow{}, game.KernelStats{}, err
	}

	stats0 := eng.KernelStats()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	start := time.Now()
	totalGames := int64(0)
	for s := 0; s < sweeps; s++ {
		games, err := sweep(newSweepSrc())
		if err != nil {
			return batchRow{}, game.KernelStats{}, err
		}
		totalGames += games
	}
	secs := time.Since(start).Seconds()
	runtime.ReadMemStats(&m1)
	stats1 := eng.KernelStats()
	row := batchRow{
		SSets:   len(table),
		Mode:    mode,
		Noise:   noise,
		Workers: workers,
		Sweeps:  sweeps,
		Games:   totalGames,
		Seconds: secs,
	}
	if totalGames > 0 {
		row.NsPerGame = secs * 1e9 / float64(totalGames)
		row.AllocsPerOp = float64(m1.Mallocs-m0.Mallocs) / float64(totalGames)
	}
	delta := game.KernelStats{
		ScalarGames: stats1.ScalarGames - stats0.ScalarGames,
		CycleGames:  stats1.CycleGames - stats0.CycleGames,
		BatchGames:  stats1.BatchGames - stats0.BatchGames,
		BatchCalls:  stats1.BatchCalls - stats0.BatchCalls,
	}
	row.BatchLaneOccupancy = delta.BatchLaneOccupancy()
	return row, delta, nil
}
