package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"

	"evogame/internal/ensemble"
	"evogame/internal/fitness"
	"evogame/internal/game"
	"evogame/internal/population"
	"evogame/internal/rng"
	"evogame/internal/stats"
	"evogame/internal/strategy"
)

// The ensemble table measures cross-run pair-cache sharing: N replicates of
// one noiseless cached configuration run under internal/ensemble with the
// replicates either sharing one PairCache store ("shared") or each building
// a private cache exactly as a solo run would ("private").  The baseline is
// the private one-worker row — N replicates run strictly back to back, the
// way every averaged figure in the paper was produced before the ensemble
// tier existed.
//
// The workload pins the initial strategy table (drawn once from the bench
// seed, shared by every replicate) while the per-replicate seeds still
// derive distinct nature streams, so replicates diverge through adoption
// and mutation but start from the same pair table.  Replicate 0 pays the
// warm-up misses; under sharing, later replicates are served those pairs as
// hits, which is where the wall-clock win on a single core comes from.  The
// warm_* columns report the cache traffic of replicates 1..N-1 only — the
// cross-run hit-rate evidence.
//
// The committed BENCH_7.json is this table's -json output; see
// docs/PERFORMANCE.md ("Layer 5").

// ensembleRow is one measurement of the ensemble table (and one row of the
// BENCH_7.json baseline).
type ensembleRow struct {
	EnsembleWorkers int `json:"ensemble_workers"`
	// Cache is "shared" (one store, per-replicate views) or "private".
	Cache      string `json:"cache"`
	Replicates int    `json:"replicates"`
	// Seconds is the end-to-end ensemble wall-clock.
	Seconds float64 `json:"seconds"`
	// SpeedupVsSerial is the baseline (private caches, one ensemble worker)
	// wall-clock divided by this row's.
	SpeedupVsSerial float64 `json:"speedup_vs_serial"`
	// Games is the number of games actually executed by the kernels, summed
	// over replicates; sharing shrinks it, never the per-replicate results.
	Games       int64 `json:"games"`
	CacheHits   int64 `json:"cache_hits"`
	CacheMisses int64 `json:"cache_misses"`
	// WarmHits / WarmMisses restrict the cache counters to replicates
	// 1..N-1, the ones that can benefit from earlier replicates' work.
	WarmHits    int64   `json:"warm_hits"`
	WarmMisses  int64   `json:"warm_misses"`
	WarmHitRate float64 `json:"warm_hit_rate"`
}

// ensembleDoc is the machine-readable envelope of the ensemble table.
type ensembleDoc struct {
	Table       string        `json:"table"`
	Seed        uint64        `json:"seed"`
	Rounds      int           `json:"rounds"`
	MemorySteps int           `json:"memory_steps"`
	SSets       int           `json:"ssets"`
	Replicates  int           `json:"replicates"`
	Generations int           `json:"generations"`
	GoMaxProcs  int           `json:"go_max_procs"`
	Rows        []ensembleRow `json:"rows"`
}

// tableEnsemble measures an 8-replicate noiseless serial-engine ensemble at
// every ensemble worker count in {1, 2, 4, 8}, shared vs private caches.
func tableEnsemble(opts options) error {
	const (
		memSteps   = 6
		ssets      = 128
		replicates = 8
	)
	generations := 96
	if opts.full {
		generations *= 4
	}
	src := rng.New(opts.seed)
	initial := make([]strategy.Strategy, ssets)
	for i := range initial {
		initial[i] = strategy.RandomPure(memSteps, src)
	}
	base := population.Config{
		NumSSets:          ssets,
		AgentsPerSSet:     2,
		MemorySteps:       memSteps,
		Rounds:            game.DefaultRounds,
		Noise:             0,
		PCRate:            1,
		MutationRate:      0.05,
		Beta:              1,
		Seed:              opts.seed,
		EvalMode:          fitness.EvalCached,
		InitialStrategies: initial,
	}
	doc := ensembleDoc{
		Table:       "ensemble",
		Seed:        opts.seed,
		Rounds:      base.Rounds,
		MemorySteps: memSteps,
		SSets:       ssets,
		Replicates:  replicates,
		Generations: generations,
		GoMaxProcs:  runtime.GOMAXPROCS(0),
	}
	if !opts.jsonOut {
		header("Ensemble table — cross-run pair-cache sharing vs serial replicates (noiseless, cached)")
		fmt.Printf("workload: %d replicates, S=%d, memory-%d, %d generations, fixed initial table\n",
			replicates, ssets, memSteps, generations)
	}
	t := stats.NewTable("Workers", "Cache", "Seconds", "Speedup", "Games", "Hits", "Misses", "WarmHits", "WarmHitRate")
	var baseline float64
	for _, workers := range []int{1, 2, 4, 8} {
		for _, cache := range []string{"private", "shared"} {
			res, err := ensemble.RunSerial(context.Background(), base, generations, ensemble.Config{
				Replicates:    replicates,
				Workers:       workers,
				PrivateCaches: cache == "private",
			})
			if err != nil {
				return err
			}
			row := ensembleRow{
				EnsembleWorkers: workers,
				Cache:           cache,
				Replicates:      replicates,
				Seconds:         res.WallClock.Seconds(),
				Games:           res.Metrics.ScalarGames + res.Metrics.CycleGames + res.Metrics.BatchGames,
				CacheHits:       res.Metrics.CacheHits,
				CacheMisses:     res.Metrics.CacheMisses,
			}
			for _, r := range res.Runs[1:] {
				row.WarmHits += r.Metrics.CacheHits
				row.WarmMisses += r.Metrics.CacheMisses
			}
			if lookups := row.WarmHits + row.WarmMisses; lookups > 0 {
				row.WarmHitRate = float64(row.WarmHits) / float64(lookups)
			}
			if workers == 1 && cache == "private" {
				baseline = row.Seconds
			}
			if row.Seconds > 0 {
				row.SpeedupVsSerial = baseline / row.Seconds
			}
			doc.Rows = append(doc.Rows, row)
			t.AddRow(row.EnsembleWorkers, row.Cache,
				fmt.Sprintf("%.3f", row.Seconds),
				fmt.Sprintf("%.2fx", row.SpeedupVsSerial),
				row.Games, row.CacheHits, row.CacheMisses, row.WarmHits,
				fmt.Sprintf("%.3f", row.WarmHitRate))
		}
	}
	if opts.jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(doc)
	}
	fmt.Print(t.String())
	fmt.Println("note: every replicate is bit-identical to running its seed solo; sharing only changes")
	fmt.Println("which lookups hit.  warm_* columns cover replicates 1..N-1 (the cross-run evidence).")
	fmt.Println("BENCH_7.json is this table's -json output; see docs/PERFORMANCE.md")
	return nil
}
