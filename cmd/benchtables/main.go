// Command benchtables regenerates every table and figure of the paper's
// evaluation section (Randles et al., IPDPS 2013).  Each experiment prints
// the same rows or series the paper reports: the strategy-space tables
// (Tables I-V), the SSet-per-processor ratio table (Table VI), the WSLS
// validation (Figure 2), the optimization-level ablation (Figure 3), strong
// scaling versus population size (Figure 4), the memory-step runtime
// breakdown (Figure 5), and the weak/strong scaling studies (Figure 6a/6b).
//
// Experiments that the paper ran on hundreds of thousands of Blue Gene
// cores are reproduced at two levels: a real run of the distributed engine
// on goroutine ranks (small scale), and the analytic performance model
// extrapolated to the paper's processor counts.  EXPERIMENTS.md records the
// paper-versus-measured comparison for each one.
//
// Usage:
//
//	benchtables -all            # every table and figure (quick settings)
//	benchtables -table 4        # a single table (1,2,3,4,5,6,capacity)
//	benchtables -fig 6a         # a single figure (2,3,4,5,6a,6b)
//	benchtables -full           # larger real runs (slower, closer to paper)
//	benchtables -calibrate      # measure the game kernel before modelling
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"evogame"

	"evogame/internal/game"
	"evogame/internal/parallel"
	"evogame/internal/stats"
	"evogame/internal/strategy"
)

type options struct {
	table     string
	fig       string
	all       bool
	full      bool
	calibrate bool
	jsonOut   bool
	seed      uint64
}

func main() {
	var opts options
	flag.StringVar(&opts.table, "table", "", "regenerate one table: 1, 2, 3, 4, 5, 6, capacity, scenarios, eval, topology, kernel, batch, ensemble, artifact, faults")
	flag.StringVar(&opts.fig, "fig", "", "regenerate one figure: 2, 3, 4, 5, 6a, 6b")
	flag.BoolVar(&opts.all, "all", false, "regenerate every table and figure")
	flag.BoolVar(&opts.full, "full", false, "use larger real runs (slower)")
	flag.BoolVar(&opts.calibrate, "calibrate", false, "measure the game kernel cost before running the performance model")
	flag.BoolVar(&opts.jsonOut, "json", false, "emit machine-readable JSON instead of a table (supported for -table kernel, batch, ensemble, artifact and faults; BENCH_5.json, BENCH_6.json, BENCH_7.json, BENCH_8.json and BENCH_9.json are their committed baselines)")
	seed := flag.Uint64("seed", 2013, "experiment seed")
	flag.Parse()
	opts.seed = *seed

	if !opts.all && opts.table == "" && opts.fig == "" {
		opts.all = true
	}
	if opts.jsonOut && opts.table != "kernel" && opts.table != "batch" && opts.table != "ensemble" && opts.table != "artifact" && opts.table != "faults" {
		fmt.Fprintln(os.Stderr, "benchtables: -json is supported for -table kernel, batch, ensemble, artifact and faults only")
		os.Exit(1)
	}
	if err := run(opts); err != nil {
		fmt.Fprintln(os.Stderr, "benchtables:", err)
		os.Exit(1)
	}
}

func run(opts options) error {
	scaling := evogame.ScalingOptions{CalibrateKernel: opts.calibrate}
	type job struct {
		name string
		fn   func() error
	}
	jobs := []job{
		{"table 1", table1},
		{"table 2", table2},
		{"table 3", table3},
		{"table 4", table4},
		{"table 5", table5},
		{"table 6", func() error { return table6(scaling) }},
		{"table capacity", tableCapacity},
		{"table scenarios", func() error { return tableScenarios(opts) }},
		{"table topology", func() error { return tableTopology(opts) }},
		{"table kernel", func() error { return tableKernel(opts) }},
		{"table batch", func() error { return tableBatch(opts) }},
		{"table ensemble", func() error { return tableEnsemble(opts) }},
		{"table artifact", func() error { return tableArtifact(opts) }},
		{"table faults", func() error { return tableFaults(opts) }},
		{"fig 2", func() error { return figure2(opts) }},
		{"fig 3", func() error { return figure3(opts) }},
		{"table eval", func() error { return evalModes(opts) }},
		{"fig 4", func() error { return figure4(opts, scaling) }},
		{"fig 5", func() error { return figure5(opts, scaling) }},
		{"fig 6a", func() error { return figure6a(opts, scaling) }},
		{"fig 6b", func() error { return figure6b(opts, scaling) }},
	}
	selected := func(name string) bool {
		if opts.all {
			return true
		}
		if opts.table != "" && name == "table "+opts.table {
			return true
		}
		if opts.fig != "" && name == "fig "+strings.ToLower(opts.fig) {
			return true
		}
		return false
	}
	ran := 0
	for _, j := range jobs {
		if !selected(j.name) {
			continue
		}
		if err := j.fn(); err != nil {
			return fmt.Errorf("%s: %w", j.name, err)
		}
		ran++
	}
	if ran == 0 {
		return fmt.Errorf("nothing selected (table=%q fig=%q)", opts.table, opts.fig)
	}
	return nil
}

func header(title string) {
	fmt.Println()
	fmt.Println("=== " + title + " ===")
}

// table1 prints the Prisoner's Dilemma payoff matrix (Table I).
func table1() error {
	header("Table I — Prisoner's Dilemma payoff matrix f[R,S,T,P] = [3,0,4,1]")
	m := game.Standard()
	t := stats.NewTable("", "Opponent C", "Opponent D")
	t.AddRow("Agent C", fmt.Sprintf("R=%.0f", m.Reward), fmt.Sprintf("S=%.0f", m.Sucker))
	t.AddRow("Agent D", fmt.Sprintf("T=%.0f", m.Temptation), fmt.Sprintf("P=%.0f", m.Punishment))
	fmt.Print(t.String())
	return m.Validate()
}

// table2 prints the memory-one game states (Table II).
func table2() error {
	header("Table II — potential game states for a memory-one strategy")
	t := stats.NewTable("State", "Agent", "Opponent")
	for s := 0; s < game.NumStates(1); s++ {
		t.AddRow(s+1, game.Move((s>>1)&1).String(), game.Move(s&1).String())
	}
	fmt.Print(t.String())
	return nil
}

// table3 prints all sixteen pure memory-one strategies (Table III).
func table3() error {
	header("Table III — all potential memory-one strategies")
	t := stats.NewTable("Strategy", "State CC", "State CD", "State DC", "State DD", "Name")
	names := map[string]string{"0000": "ALLC", "1111": "ALLD", "0101": "TFT/GRIM", "0110": "WSLS", "1100": "Alternator"}
	for i, p := range strategy.AllMemoryOne() {
		row := []interface{}{i + 1}
		for s := 0; s < 4; s++ {
			row = append(row, p.Move(s, nil).String())
		}
		row = append(row, names[p.String()])
		t.AddRow(row...)
	}
	fmt.Print(t.String())
	return nil
}

// table4 prints the strategy-space growth (Table IV).
func table4() error {
	header("Table IV — number of pure strategies for different memory steps")
	t := stats.NewTable("Memory Steps", "Game States (4^n)", "Pure Strategies")
	for mem := 1; mem <= evogame.MaxMemorySteps; mem++ {
		states, log2, err := evogame.StrategySpaceSize(mem)
		if err != nil {
			return err
		}
		t.AddRow(mem, states, fmt.Sprintf("2^%d", log2))
	}
	fmt.Print(t.String())
	return nil
}

// table5 prints the WSLS state table (Table V).
func table5() error {
	header("Table V — WSLS moves for memory-one games")
	wsls := strategy.WSLS(1)
	t := stats.NewTable("State", "Previous round (agent,opponent)", "Strategy move")
	for s := 0; s < 4; s++ {
		t.AddRow(s, game.StateString(s, 1), wsls.Move(s, nil).String())
	}
	fmt.Print(t.String())
	return nil
}

// table6 prints the SSets-per-processor efficiency table (Table VI).
func table6(scaling evogame.ScalingOptions) error {
	header("Table VI — parallel efficiency vs. SSets per processor (model, Blue Gene/P)")
	ratios := []float64{0.5, 1, 2, 3, 4, 5, 6, 7, 8}
	rows, err := evogame.RatioTable(scaling, ratios, 2048, 6, 2048)
	if err != nil {
		return err
	}
	paper := map[float64]float64{0.5: 50, 1: 55, 2: 99.7, 3: 99.7, 4: 99.9, 5: 99.9, 6: 99.9, 7: 100, 8: 100}
	t := stats.NewTable("R (SSets/processor)", "Modelled P.E. (%)", "Paper P.E. (%)")
	for _, r := range rows {
		t.AddRow(r.Ratio, r.EfficiencyPercent, paper[r.Ratio])
	}
	fmt.Print(t.String())
	return nil
}

// tableCapacity prints the memory-capacity check (the paper's claim that
// memory-six is the largest depth that fits).
func tableCapacity() error {
	header("Memory capacity — largest memory depth / population that fits (Section V-C)")
	t := stats.NewTable("Machine", "Processors", "Population (SSets)", "Max memory steps", "Max SSets at memory-six")
	for _, tc := range []struct {
		machine evogame.MachineName
		procs   int
		ssets   int
	}{
		{evogame.MachineBlueGeneP, 1024, 32768},
		{evogame.MachineBlueGeneP, 16384, 32768},
		{evogame.MachineBlueGeneQ, 16384, 32768},
	} {
		cap, err := evogame.CheckMemoryCapacity(tc.machine, tc.ssets, tc.procs)
		if err != nil {
			return err
		}
		t.AddRow(string(tc.machine), tc.procs, tc.ssets, cap.MaxMemorySteps, cap.MaxTotalSSets)
	}
	fmt.Print(t.String())
	return nil
}

// tableScenarios sweeps the scenario registry: every registered game is run
// under every registered update rule on the serial engine (incremental
// evaluation, noiseless) and the resulting cooperativity is reported.  This
// is the registry counterpart of Table I: the paper fixes IPD + Fermi, the
// registry opens the rest of the matrix.
func tableScenarios(opts options) error {
	header("Scenario registry — cooperativity per (game, update rule) pair")
	ssets, gens := 48, 4000
	if opts.full {
		ssets, gens = 128, 20000
	}
	fmt.Printf("serial runs: %d SSets x 4 agents, memory-one, %d generations, noiseless, eval incremental\n", ssets, gens)
	t := stats.NewTable("Game", "Payoff [R,S,T,P]", "Rule", "Distinct", "Top strategy", "Top %", "Defecting states %")
	for _, gameName := range evogame.Games() {
		if gameName == "generic" {
			// The generic spec's canonical payoff is the PD matrix, so its
			// rows would duplicate the ipd ones bit for bit.
			continue
		}
		info, err := evogame.DescribeGame(gameName)
		if err != nil {
			return err
		}
		for _, ruleName := range evogame.UpdateRules() {
			res, err := evogame.Simulate(context.Background(), evogame.SimulationConfig{
				NumSSets: ssets, AgentsPerSSet: 4, MemorySteps: 1,
				Rounds: evogame.DefaultRounds, PCRate: 1, MutationRate: 0.05, Beta: 1,
				Generations: gens, Seed: opts.seed,
				EvalMode: evogame.EvalIncremental, Game: gameName, UpdateRule: ruleName,
			})
			if err != nil {
				return fmt.Errorf("game %s rule %s: %w", gameName, ruleName, err)
			}
			last := res.Samples[len(res.Samples)-1]
			t.AddRow(gameName, fmt.Sprintf("%v", info.Payoff), ruleName,
				last.DistinctStrategies, last.TopStrategy,
				fmt.Sprintf("%.0f", 100*last.TopFraction),
				fmt.Sprintf("%.0f", 100*last.MeanDefectingStates))
		}
	}
	fmt.Print(t.String())
	fmt.Println("note: IPD tends toward defection-heavy strategies; snowdrift keeps cooperation at")
	fmt.Println("equilibrium (best reply to a defector is to cooperate); stag hunt coordinates on one")
	fmt.Println("of its equilibria.  The generic game (canonical payoff = ipd's) is omitted: pass a")
	fmt.Println("custom matrix via cmd/evogame -game generic -payoff R,S,T,P instead")
	return nil
}

// tableTopology measures the structured-population layer on the heavy
// path: the distributed engine evaluates every SSet's fitness every
// generation under full replay (the paper's workload), so restricting
// interaction to a sparse neighbor graph cuts the games per generation
// from S*(S-1) to S*k by construction — no caching involved.  The sweep
// runs the identical workload per topology at S = 512 and reports games
// per generation and wallclock against the well-mixed baseline.
func tableTopology(opts options) error {
	header("Topology registry — games/generation and wallclock vs. well-mixed (S = 512, full evaluation)")
	ssets, gens, ranks := 512, 5, 5
	if opts.full {
		gens = 20
	}
	fmt.Printf("distributed runs: %d SSets x 4 agents, memory-one, %d generations, %d ranks, opt level 3, eval full\n",
		ssets, gens, ranks)
	t := stats.NewTable("Topology", "Mean degree", "Games/gen", "Wallclock (s)", "Speedup vs wellmixed")
	var baseWall float64
	for _, topo := range []string{"wellmixed", "ring:8", "torus:moore", "smallworld:8:0.1"} {
		res, err := evogame.SimulateParallel(evogame.ParallelConfig{
			Ranks:             ranks,
			NumSSets:          ssets,
			AgentsPerSSet:     4,
			MemorySteps:       1,
			Rounds:            evogame.DefaultRounds,
			PCRate:            0.1,
			MutationRate:      0.05,
			Generations:       gens,
			Seed:              opts.seed,
			OptimizationLevel: 3,
			Topology:          topo,
		})
		if err != nil {
			return fmt.Errorf("topology %s: %w", topo, err)
		}
		neigh, err := evogame.TopologyNeighbors(topo, ssets, opts.seed)
		if err != nil {
			return err
		}
		totalDeg := 0
		for _, row := range neigh {
			totalDeg += len(row)
		}
		speedup := "1.00x"
		if topo == "wellmixed" {
			baseWall = res.WallClockSeconds
		} else if res.WallClockSeconds > 0 {
			speedup = fmt.Sprintf("%.2fx", baseWall/res.WallClockSeconds)
		}
		t.AddRow(topo,
			fmt.Sprintf("%.1f", float64(totalDeg)/float64(ssets)),
			fmt.Sprintf("%.0f", float64(res.TotalGames)/float64(gens)),
			fmt.Sprintf("%.3f", res.WallClockSeconds),
			speedup)
	}
	fmt.Print(t.String())
	fmt.Println("note: a sparse topology makes the full evaluation O(S*k) games by construction,")
	fmt.Println("orthogonal to (and composable with) the cached/incremental eval modes")
	return nil
}

// figure2 runs the scaled-down WSLS validation (Figure 2).
func figure2(opts options) error {
	header("Figure 2 — validation: emergence of Win-Stay Lose-Shift (scaled-down run)")
	ssets, gens := 128, 60000
	if opts.full {
		ssets, gens = 256, 300000
	}
	cfg := evogame.SimulationConfig{
		NumSSets:      ssets,
		AgentsPerSSet: 4,
		MemorySteps:   1,
		Rounds:        evogame.DefaultRounds,
		Noise:         0.05,
		PCRate:        1,
		MutationRate:  0.05,
		Beta:          1,
		Generations:   gens,
		Seed:          opts.seed,
		SampleEvery:   gens / 10,
	}
	start := time.Now()
	res, err := evogame.Simulate(context.Background(), cfg)
	if err != nil {
		return err
	}
	fmt.Printf("population: %d SSets x %d agents, memory-one, %d generations (%.1fs)\n",
		cfg.NumSSets, cfg.AgentsPerSSet, res.Generations, time.Since(start).Seconds())
	t := stats.NewTable("Generation", "Distinct", "Top strategy", "Top fraction", "WSLS fraction", "ALLD fraction")
	for _, s := range res.Samples {
		t.AddRow(s.Generation, s.DistinctStrategies, s.TopStrategy, s.TopFraction, s.WSLSFraction, s.AllDFraction)
	}
	fmt.Print(t.String())

	clusters, err := evogame.ClusterStrategies(res.FinalStrategies, 4, opts.seed)
	if err != nil {
		return err
	}
	fmt.Println("k-means clusters of the final population (Lloyd, k=4):")
	ct := stats.NewTable("Cluster", "Size", "Fraction", "Representative strategy")
	for i, c := range clusters {
		ct.AddRow(i, c.Size, c.Fraction, c.Representative)
	}
	fmt.Print(ct.String())
	fmt.Printf("paper reports 85%% of SSets adopting WSLS after 10^7 generations; measured WSLS fraction: %.0f%%\n",
		100*res.WSLSFraction())
	return nil
}

// figure3 runs the optimization-level ablation (Figure 3).
func figure3(opts options) error {
	header("Figure 3 — optimization levels (real distributed runs, goroutine ranks)")
	ssets, ranks, gens := 64, 5, 20
	if opts.full {
		ssets, ranks, gens = 256, 9, 40
	}
	fmt.Printf("workload: %d SSets, memory-one, %d generations, %d ranks, 200 rounds/game\n", ssets, gens, ranks)
	t := stats.NewTable("Optimization level", "Wallclock (s)", "Mean rank compute (s)", "Mean rank comm (s)")
	for lvl := 0; lvl <= 3; lvl++ {
		res, err := evogame.SimulateParallel(evogame.ParallelConfig{
			Ranks:             ranks,
			NumSSets:          ssets,
			AgentsPerSSet:     4,
			MemorySteps:       1,
			Rounds:            evogame.DefaultRounds,
			PCRate:            0.1,
			MutationRate:      0.05,
			Generations:       gens,
			Seed:              opts.seed,
			OptimizationLevel: lvl,
		})
		if err != nil {
			return err
		}
		t.AddRow(parallel.OptLevel(lvl).String(), res.WallClockSeconds, res.ComputeSeconds, res.CommSeconds)
	}
	fmt.Print(t.String())
	fmt.Println("paper: each cumulative optimization reduces wallclock; comm stays a small share")
	return nil
}

// evalModes reports the shared incremental-fitness subsystem's speedup
// alongside the Figure 3 optimization levels: the same distributed workload
// is repeated under full replay, pair-cached and incremental fitness
// evaluation at S in {32, 128, 512} SSets.  All modes produce identical
// dynamics for a given seed; only the number of games actually played (and
// therefore the wallclock) changes.
func evalModes(opts options) error {
	header("Eval modes — incremental fitness vs. full replay (real distributed runs)")
	gens := 10
	if opts.full {
		gens = 40
	}
	fmt.Printf("workload: memory-one, %d generations, 5 ranks, opt level 3, 200 rounds/game\n", gens)
	t := stats.NewTable("SSets", "Eval mode", "Wallclock (s)", "Games/gen", "Speedup")
	for _, ssets := range []int{32, 128, 512} {
		var baseWall float64
		for _, mode := range []evogame.EvalMode{evogame.EvalFull, evogame.EvalCached, evogame.EvalIncremental} {
			res, err := evogame.SimulateParallel(evogame.ParallelConfig{
				Ranks:             5,
				NumSSets:          ssets,
				AgentsPerSSet:     4,
				MemorySteps:       1,
				Rounds:            evogame.DefaultRounds,
				PCRate:            0.1,
				MutationRate:      0.05,
				Generations:       gens,
				Seed:              opts.seed,
				OptimizationLevel: 3,
				EvalMode:          mode,
			})
			if err != nil {
				return err
			}
			if mode == evogame.EvalFull {
				baseWall = res.WallClockSeconds
			}
			speedup := "1.00x"
			if res.WallClockSeconds > 0 && mode != evogame.EvalFull {
				speedup = fmt.Sprintf("%.2fx", baseWall/res.WallClockSeconds)
			}
			t.AddRow(ssets, mode.String(),
				fmt.Sprintf("%.3f", res.WallClockSeconds),
				fmt.Sprintf("%.1f", float64(res.TotalGames)/float64(gens)),
				speedup)
		}
	}
	fmt.Print(t.String())
	fmt.Println("note: noiseless deterministic games are pure functions of the strategy pair;")
	fmt.Println("incremental evaluation replays only pairs never seen before")
	return nil
}

// figure4 reports strong scaling as the number of SSets grows (Figure 4).
func figure4(opts options, scaling evogame.ScalingOptions) error {
	header("Figure 4 — strong scaling vs. population size (model, Blue Gene/P)")
	procs := []int{64, 128, 256, 512, 1024, 2048}
	t := stats.NewTable(append([]string{"SSets"}, procsHeader(procs)...)...)
	for _, ssets := range []int{1024, 2048, 4096, 8192, 16384, 32768} {
		points, err := evogame.PredictStrongScaling(scaling, ssets, 6, procs)
		if err != nil {
			return err
		}
		row := []interface{}{ssets}
		for _, p := range points {
			row = append(row, fmt.Sprintf("%.1f%%", p.EfficiencyPercent))
		}
		t.AddRow(row...)
	}
	fmt.Print(t.String())
	fmt.Println("paper: efficiency collapses once SSets/processor < 1; larger populations scale further")

	// Small real-rank confirmation of the same trend.
	ssets := 48
	ranks := []int{2, 3, 5, 9}
	gens := 10
	if opts.full {
		ssets, gens = 96, 20
	}
	fmt.Printf("\nreal goroutine-rank confirmation (%d SSets, memory-one, %d generations):\n", ssets, gens)
	rt := stats.NewTable("SSet ranks", "Wallclock (s)", "Speedup", "Efficiency (%)")
	var base float64
	for i, r := range ranks {
		res, err := evogame.SimulateParallel(evogame.ParallelConfig{
			Ranks: r + 1, NumSSets: ssets, AgentsPerSSet: 4, MemorySteps: 1,
			Rounds: evogame.DefaultRounds, PCRate: 0.1, MutationRate: 0.05,
			Generations: gens, Seed: opts.seed, OptimizationLevel: 3,
		})
		if err != nil {
			return err
		}
		if i == 0 {
			base = res.WallClockSeconds
		}
		speedup := stats.Speedup(base, res.WallClockSeconds) * float64(ranks[0])
		eff := stats.StrongEfficiency(base, ranks[0], res.WallClockSeconds, r)
		rt.AddRow(r, res.WallClockSeconds, speedup, eff)
	}
	fmt.Print(rt.String())
	return nil
}

func procsHeader(procs []int) []string {
	out := make([]string, len(procs))
	for i, p := range procs {
		out[i] = fmt.Sprintf("P=%d", p)
	}
	return out
}

// figure5 reports the runtime breakdown across memory steps (Figure 5).
func figure5(opts options, scaling evogame.ScalingOptions) error {
	header("Figure 5 — runtime breakdown vs. memory steps")
	// Real runs, scaled down from the paper's 2,048 SSets / 2,048 processors.
	ssets, ranks, gens := 32, 5, 5
	if opts.full {
		ssets, gens = 64, 10
	}
	fmt.Printf("real distributed runs: %d SSets, %d generations, %d ranks\n", ssets, gens, ranks)
	t := stats.NewTable("Memory steps", "Compute (s)", "Comm (s)", "Wallclock (s)")
	for mem := 1; mem <= evogame.MaxMemorySteps; mem++ {
		res, err := evogame.SimulateParallel(evogame.ParallelConfig{
			Ranks: ranks, NumSSets: ssets, AgentsPerSSet: 4, MemorySteps: mem,
			Rounds: evogame.DefaultRounds, PCRate: 0.1, MutationRate: 0.05,
			Generations: gens, Seed: opts.seed, OptimizationLevel: 3,
		})
		if err != nil {
			return err
		}
		t.AddRow(mem, res.ComputeSeconds, res.CommSeconds, res.WallClockSeconds)
	}
	fmt.Print(t.String())

	// The paper attributes the runtime growth to identifying the current
	// state; the optimized rolling-code kernel flattens it, so replay the
	// low memory depths with the original linear search to expose the
	// effect (memory five and six are skipped: a 4,096-row search per round
	// is impractically slow, which is the paper's point).
	fmt.Println("\nsame sweep with the original linear state search (optimization level 1), memory 1..4:")
	lt := stats.NewTable("Memory steps", "Compute (s)", "Comm (s)", "Wallclock (s)")
	for mem := 1; mem <= 4; mem++ {
		res, err := evogame.SimulateParallel(evogame.ParallelConfig{
			Ranks: ranks, NumSSets: ssets, AgentsPerSSet: 4, MemorySteps: mem,
			Rounds: evogame.DefaultRounds, PCRate: 0.1, MutationRate: 0.05,
			Generations: gens, Seed: opts.seed, OptimizationLevel: 1,
		})
		if err != nil {
			return err
		}
		lt.AddRow(mem, res.ComputeSeconds, res.CommSeconds, res.WallClockSeconds)
	}
	fmt.Print(lt.String())

	fmt.Println("\nmodel prediction for the paper's workload (2,048 SSets, 20 generations, 2,048 BG/P processors):")
	points, err := evogame.MemorySweep(scaling, 2048, 20, 2048)
	if err != nil {
		return err
	}
	mt := stats.NewTable("Memory steps", "Compute (s)", "Comm (s)")
	for _, p := range points {
		mt.AddRow(p.MemorySteps, p.ComputeSeconds, p.CommSeconds)
	}
	fmt.Print(mt.String())
	fmt.Println("paper: runtime rises with memory depth (state identification), computation dominates communication")
	return nil
}

// figure6a reports weak scaling (Figure 6a).
func figure6a(opts options, scaling evogame.ScalingOptions) error {
	header("Figure 6(a) — weak scaling, 4,096 SSets per processor, memory-six (model)")
	procsP := []int{1024, 4096, 16384, 65536, 294912}
	pointsP, err := evogame.PredictWeakScaling(scaling, 4096, 4096, 6, procsP)
	if err != nil {
		return err
	}
	scalingQ := scaling
	scalingQ.Machine = evogame.MachineBlueGeneQ
	procsQ := []int{1024, 4096, 16384}
	pointsQ, err := evogame.PredictWeakScaling(scalingQ, 4096, 4096, 6, procsQ)
	if err != nil {
		return err
	}
	t := stats.NewTable("Machine", "Processors", "Seconds/generation", "Efficiency (%)")
	for _, p := range pointsP {
		t.AddRow("BG/P", p.Processors, p.SecondsPerGeneration, p.EfficiencyPercent)
	}
	for _, p := range pointsQ {
		t.AddRow("BG/Q", p.Processors, p.SecondsPerGeneration, p.EfficiencyPercent)
	}
	fmt.Print(t.String())
	fmt.Println("paper: >=99% weak scaling efficiency to 294,912 BG/P processors and 16,384 BG/Q tasks")

	// Real weak scaling on goroutine ranks: constant SSets per rank.
	perRank := 8
	gens := 10
	rankCounts := []int{2, 4, 8}
	if opts.full {
		perRank, gens = 16, 20
		rankCounts = []int{2, 4, 8, 16}
	}
	fmt.Printf("\nreal goroutine-rank weak scaling (%d SSets per rank, memory-one, %d generations):\n", perRank, gens)
	rt := stats.NewTable("SSet ranks", "Total SSets", "Wallclock (s)", "Efficiency (%)")
	var base float64
	for i, r := range rankCounts {
		total := perRank * r
		res, err := evogame.SimulateParallel(evogame.ParallelConfig{
			Ranks: r + 1, NumSSets: total, AgentsPerSSet: 4, MemorySteps: 1,
			Rounds: evogame.DefaultRounds, PCRate: 0.1, MutationRate: 0.05,
			Generations: gens, Seed: opts.seed, OptimizationLevel: 3, SkipFitnessWhenIdle: true,
		})
		if err != nil {
			return err
		}
		if i == 0 {
			base = res.WallClockSeconds
		}
		rt.AddRow(r, total, res.WallClockSeconds, stats.WeakEfficiency(base, res.WallClockSeconds))
	}
	fmt.Print(rt.String())
	fmt.Println("note: real weak scaling on a single host is limited by the physical core count; the")
	fmt.Println("model rows above carry the Blue Gene extrapolation")
	return nil
}

// figure6b reports strong scaling (Figure 6b).
func figure6b(opts options, scaling evogame.ScalingOptions) error {
	header("Figure 6(b) — strong scaling, 32,768 SSets, memory-six (model, Blue Gene/P)")
	procs := []int{1024, 2048, 8192, 16384, 262144}
	points, err := evogame.PredictStrongScaling(scaling, 32768, 6, procs)
	if err != nil {
		return err
	}
	paper := map[int]float64{1024: 100, 2048: 99, 8192: 99, 16384: 99, 262144: 82}
	t := stats.NewTable("Processors", "Speedup", "Efficiency (%)", "Paper efficiency (%)")
	for _, p := range points {
		t.AddRow(p.Processors, p.Speedup, p.EfficiencyPercent, paper[p.Processors])
	}
	fmt.Print(t.String())

	// Real strong scaling on goroutine ranks.
	ssets, gens := 64, 10
	rankCounts := []int{1, 2, 4, 8}
	if opts.full {
		ssets, gens = 128, 20
	}
	fmt.Printf("\nreal goroutine-rank strong scaling (%d SSets, memory-one, %d generations):\n", ssets, gens)
	rt := stats.NewTable("SSet ranks", "Wallclock (s)", "Speedup", "Efficiency (%)")
	var base float64
	for i, r := range rankCounts {
		res, err := evogame.SimulateParallel(evogame.ParallelConfig{
			Ranks: r + 1, NumSSets: ssets, AgentsPerSSet: 4, MemorySteps: 1,
			Rounds: evogame.DefaultRounds, PCRate: 0.1, MutationRate: 0.05,
			Generations: gens, Seed: opts.seed, OptimizationLevel: 3,
		})
		if err != nil {
			return err
		}
		if i == 0 {
			base = res.WallClockSeconds
		}
		rt.AddRow(r, res.WallClockSeconds,
			stats.Speedup(base, res.WallClockSeconds)*float64(rankCounts[0]),
			stats.StrongEfficiency(base, rankCounts[0], res.WallClockSeconds, r))
	}
	fmt.Print(rt.String())
	return nil
}
