package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"evogame/internal/fitness"
	"evogame/internal/game"
	"evogame/internal/rng"
	"evogame/internal/stats"
	"evogame/internal/strategy"
)

// The kernel table measures the evaluation pipeline's fast paths on the
// workload the paper scales: a full all-pairs fitness evaluation of S
// memory-one strategies at 200 rounds per game.  Three pipeline levels are
// compared:
//
//   - full-replay: the pre-optimization reference kernel (game.KernelFullReplay),
//     every round of every game replayed.
//   - cycle-closing: game.KernelAuto closes the periodic joint-state
//     trajectory in closed form (prefix + k*cycle + tail), bit-identical for
//     integer payoff matrices.
//   - cached: the interned, sharded PairCache in steady state — every
//     lookup is an ID-pair hit, no game kernel runs at all.
//
// The committed BENCH_5.json is this table's -json output; see
// docs/PERFORMANCE.md for how each level triggers inside the engines.

// kernelRow is one measurement of the kernel table (and one row of the
// BENCH_5.json baseline).
type kernelRow struct {
	SSets   int     `json:"ssets"`
	Mode    string  `json:"mode"`
	Sweeps  int     `json:"sweeps"`
	Games   int64   `json:"games"`
	Seconds float64 `json:"seconds"`
	// NsPerGame is the mean wall-clock cost of one pair evaluation.
	NsPerGame float64 `json:"ns_per_game"`
	// SpeedupVsFullReplay is this row's throughput relative to the
	// full-replay row of the same population size.
	SpeedupVsFullReplay float64 `json:"speedup_vs_full_replay"`
	// AllocsPerOp is the measured heap allocations per pair evaluation
	// (the cached path is required to be 0).
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// kernelDoc is the machine-readable envelope of the kernel table.
type kernelDoc struct {
	Table       string      `json:"table"`
	Seed        uint64      `json:"seed"`
	Rounds      int         `json:"rounds"`
	MemorySteps int         `json:"memory_steps"`
	GoMaxProcs  int         `json:"go_max_procs"`
	Rows        []kernelRow `json:"rows"`
}

// kernelTable builds random strategy tables at S in {32, 128, 512} and
// measures a full all-pairs evaluation per pipeline level.
func tableKernel(opts options) error {
	const memSteps = 1
	rounds := game.DefaultRounds
	doc := kernelDoc{
		Table:       "kernel",
		Seed:        opts.seed,
		Rounds:      rounds,
		MemorySteps: memSteps,
		GoMaxProcs:  runtime.GOMAXPROCS(0),
	}
	if !opts.jsonOut {
		header("Kernel table — full replay vs cycle-closing vs cached (all-pairs evaluation, memory-one)")
		fmt.Printf("workload: S x (S-1) ordered-pair games, %d rounds/game, noiseless random pure strategies\n", rounds)
	}
	t := stats.NewTable("SSets", "Pipeline level", "Games", "Seconds", "ns/game", "Allocs/game", "Speedup")
	for _, ssets := range []int{32, 128, 512} {
		src := rng.New(opts.seed)
		table := make([]strategy.Strategy, ssets)
		for i := range table {
			table[i] = strategy.RandomPure(memSteps, src)
		}
		// Repeat small sweeps so every measurement covers comparable work.
		sweeps := 512 / ssets
		if opts.full {
			sweeps *= 4
		}
		var baseNs float64
		for _, mode := range []string{"full-replay", "cycle-closing", "cached"} {
			row, err := measureKernel(mode, table, rounds, memSteps, sweeps)
			if err != nil {
				return err
			}
			if mode == "full-replay" {
				baseNs = row.NsPerGame
			}
			if row.NsPerGame > 0 {
				row.SpeedupVsFullReplay = baseNs / row.NsPerGame
			}
			doc.Rows = append(doc.Rows, row)
			t.AddRow(row.SSets, row.Mode, row.Games,
				fmt.Sprintf("%.4f", row.Seconds),
				fmt.Sprintf("%.0f", row.NsPerGame),
				fmt.Sprintf("%.1f", row.AllocsPerOp),
				fmt.Sprintf("%.1fx", row.SpeedupVsFullReplay))
		}
	}
	if opts.jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(doc)
	}
	fmt.Print(t.String())
	fmt.Println("note: cycle-closing computes fitness as prefix + k*cycle + tail over the periodic")
	fmt.Println("joint-state walk; cached is the steady-state interned pair cache (every lookup a hit).")
	fmt.Println("BENCH_5.json is this table's -json output; see docs/PERFORMANCE.md")
	return nil
}

// measureKernel runs the requested pipeline level over `sweeps` full
// all-pairs evaluations and reports per-game cost and allocations.
func measureKernel(mode string, table []strategy.Strategy, rounds, memSteps, sweeps int) (kernelRow, error) {
	kernel := game.KernelAuto
	if mode == "full-replay" {
		kernel = game.KernelFullReplay
	}
	eng, err := game.NewEngine(game.EngineConfig{
		Rounds:      rounds,
		MemorySteps: memSteps,
		StateMode:   game.StateRolling,
		AccumMode:   game.AccumLookup,
		Kernel:      kernel,
	})
	if err != nil {
		return kernelRow{}, err
	}

	var sweep func() (int64, error)
	switch mode {
	case "full-replay", "cycle-closing":
		sweep = func() (int64, error) {
			games := int64(0)
			sink := 0.0
			for i := range table {
				for j := range table {
					if i == j {
						continue
					}
					res, err := eng.Play(table[i], table[j], nil)
					if err != nil {
						return 0, err
					}
					sink += res.FitnessA
					games++
				}
			}
			_ = sink
			return games, nil
		}
	case "cached":
		cache, err := fitness.NewPairCache(eng)
		if err != nil {
			return kernelRow{}, err
		}
		ids := make([]uint32, len(table))
		for i, s := range table {
			if ids[i], err = cache.Interner().Intern(s); err != nil {
				return kernelRow{}, err
			}
		}
		sweep = func() (int64, error) {
			games := int64(0)
			sink := 0.0
			for i := range ids {
				for j := range ids {
					if i == j {
						continue
					}
					res, err := cache.PlayID(ids[i], ids[j])
					if err != nil {
						return 0, err
					}
					sink += res.FitnessA
					games++
				}
			}
			_ = sink
			return games, nil
		}
		// Warm the cache so the measured sweeps are the steady state the
		// engines see after generation one.
		if _, err := sweep(); err != nil {
			return kernelRow{}, err
		}
	default:
		return kernelRow{}, fmt.Errorf("unknown kernel mode %q", mode)
	}

	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	start := time.Now()
	totalGames := int64(0)
	for s := 0; s < sweeps; s++ {
		games, err := sweep()
		if err != nil {
			return kernelRow{}, err
		}
		totalGames += games
	}
	secs := time.Since(start).Seconds()
	runtime.ReadMemStats(&m1)
	row := kernelRow{
		SSets:   len(table),
		Mode:    mode,
		Sweeps:  sweeps,
		Games:   totalGames,
		Seconds: secs,
	}
	if totalGames > 0 {
		row.NsPerGame = secs * 1e9 / float64(totalGames)
		row.AllocsPerOp = float64(m1.Mallocs-m0.Mallocs) / float64(totalGames)
	}
	return row, nil
}
