// Command validate reproduces the paper's validation study (Figure 2): a
// population of Strategy Sets with random memory-one strategies evolves
// under pairwise-comparison learning and mutation, and the final population
// is clustered with Lloyd k-means.  The paper reports that 85% of SSets
// adopt Win-Stay Lose-Shift ([0101] in the paper's state ordering, "0110" in
// this library's canonical ordering) after 10^7 generations of a 5,000-SSet
// population; this command runs a configurable, scaled-down version of the
// same experiment and reports the measured WSLS share.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"evogame"

	"evogame/internal/stats"
)

func main() {
	var (
		ssets       = flag.Int("ssets", 200, "number of Strategy Sets (paper: 5000)")
		agents      = flag.Int("agents", 4, "agents per Strategy Set (paper: 4)")
		generations = flag.Int("generations", 100000, "generations to simulate (paper: 10^7)")
		noise       = flag.Float64("noise", 0.05, "per-move error probability")
		pcRate      = flag.Float64("pc-rate", 1.0, "pairwise comparison rate (raised from the paper's 0.1 so shorter runs reach fixation)")
		muRate      = flag.Float64("mutation-rate", 0.05, "mutation rate")
		beta        = flag.Float64("beta", 1.0, "Fermi selection intensity")
		seed        = flag.Uint64("seed", 1993, "random seed")
		k           = flag.Int("k", 4, "k-means cluster count for the final population")
	)
	flag.Parse()

	cfg := evogame.SimulationConfig{
		NumSSets:      *ssets,
		AgentsPerSSet: *agents,
		MemorySteps:   1,
		Rounds:        evogame.DefaultRounds,
		Noise:         *noise,
		PCRate:        *pcRate,
		MutationRate:  *muRate,
		Beta:          *beta,
		Generations:   *generations,
		Seed:          *seed,
		SampleEvery:   *generations / 20,
	}

	fmt.Printf("validation run: %d SSets x %d agents, memory-one, %d generations, noise %.2f\n",
		cfg.NumSSets, cfg.AgentsPerSSet, cfg.Generations, cfg.Noise)
	//lint:allow randsource wall-clock elapsed time for the validation report; never feeds simulation state
	start := time.Now()
	res, err := evogame.Simulate(context.Background(), cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "validate:", err)
		os.Exit(1)
	}
	fmt.Printf("completed in %.1fs (%d games, %d adoptions, %d mutations)\n",
		time.Since(start).Seconds(), res.GamesPlayed, res.Adoptions, res.Mutations)

	t := stats.NewTable("Generation", "Distinct", "Top strategy", "Top %", "WSLS %", "TFT %", "ALLD %")
	for _, s := range res.Samples {
		t.AddRow(s.Generation, s.DistinctStrategies, s.TopStrategy,
			100*s.TopFraction, 100*s.WSLSFraction, 100*s.TFTFraction, 100*s.AllDFraction)
	}
	fmt.Print(t.String())

	clusters, err := evogame.ClusterStrategies(res.FinalStrategies, *k, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "validate:", err)
		os.Exit(1)
	}
	fmt.Printf("\nLloyd k-means clustering of the final population (k=%d):\n", *k)
	ct := stats.NewTable("Cluster", "Size", "Fraction", "Representative strategy")
	for i, c := range clusters {
		ct.AddRow(i, c.Size, c.Fraction, c.Representative)
	}
	fmt.Print(ct.String())

	wsls, _ := evogame.NamedStrategy("wsls", 1)
	fmt.Printf("\ncanonical WSLS move table: %s\n", wsls)
	fmt.Printf("paper: 85%% of SSets hold WSLS after 10^7 generations; this run: %.1f%%\n", 100*res.WSLSFraction())
}
