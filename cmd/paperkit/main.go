// Command paperkit regenerates every paper artifact on demand.
//
// The registry in internal/artifact describes each figure-backing
// experiment of the paper as a deterministic sweep grid; paperkit executes
// the grids through the ensemble tier with one resumable checkpoint
// envelope per run, renders Markdown + CSV tables from the envelopes, and
// verifies the committed tables against regeneration:
//
//	paperkit list                 # name every artifact
//	paperkit describe <artifact>  # print its figure, claim and grid
//	paperkit status  [-quick]     # classify every run: fresh/missing/stale
//	paperkit run     [-quick]     # execute only missing/stale runs
//	paperkit tables  [-quick]     # render tables from the envelopes
//	paperkit verify  [-quick]     # re-render and diff against committed tables
//
// The -quick grids are small and committed to the repository as golden
// files; CI runs `paperkit verify -quick` on every push, so the committed
// tables are guaranteed regenerable bit for bit.  The full grids approach
// the paper's scales and write under the same tree next to them.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"evogame/internal/artifact"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd, args := os.Args[1], os.Args[2:]
	var err error
	switch cmd {
	case "list":
		err = runList()
	case "describe":
		err = runDescribe(args)
	case "status":
		err = runStatus(args)
	case "run":
		err = runRun(args)
	case "tables":
		err = runTables(args)
	case "verify":
		err = runVerify(args)
	case "-h", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "paperkit: unknown command %q\n\n", cmd)
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "paperkit:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `usage: paperkit <command> [flags]

commands:
  list       name every registered artifact
  describe   print one artifact's figure, claim and grid
  status     classify every run envelope: fresh, missing or stale
  run        execute only the missing/stale runs of the selected grids
  tables     render Markdown + CSV tables from the run envelopes
  verify     re-render the tables and fail on any diff vs the committed ones

common flags (status/run/tables/verify):
  -quick           use the small committed grids instead of the full ones
  -dir string      artifact tree root (default "artifacts")
  -artifact name   restrict to one artifact (repeatable via comma list)
`)
}

// gridFlags declares the flags shared by the grid-touching subcommands.
func gridFlags(fs *flag.FlagSet) (quick *bool, dir *string, arts *string) {
	quick = fs.Bool("quick", false, "use the small committed grids")
	dir = fs.String("dir", "artifacts", "artifact tree root")
	arts = fs.String("artifact", "", "comma-separated artifact names (default all)")
	return
}

func splitArtifacts(s string) []string {
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	out := parts[:0]
	for _, p := range parts {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func runList() error {
	for _, name := range artifact.Names() {
		a, err := artifact.Lookup(name)
		if err != nil {
			return err
		}
		fmt.Printf("%-18s %s (%s)\n", a.Name, a.Title, a.Figure)
	}
	return nil
}

func runDescribe(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("describe takes exactly one artifact name")
	}
	a, err := artifact.Lookup(args[0])
	if err != nil {
		return err
	}
	fmt.Printf("%s — %s\n%s\n\n%s\n\nClaim: %s\n", a.Name, a.Title, a.Figure, a.Description, a.Claim)
	for _, grid := range []bool{true, false} {
		cells := a.Grid(grid)
		fmt.Printf("\n%s grid (%d cells):\n", artifact.GridName(grid), len(cells))
		for _, c := range cells {
			engine := "parallel"
			if c.Serial != nil {
				engine = "serial"
			}
			fmt.Printf("  %-24s %s, %d generations, %d replicates\n", c.Key, engine, c.Generations, c.Replicates)
		}
	}
	return nil
}

func runStatus(args []string) error {
	fs := flag.NewFlagSet("status", flag.ExitOnError)
	quick, dir, arts := gridFlags(fs)
	fs.Parse(args)
	plan, err := artifact.Plan(*dir, *quick, splitArtifacts(*arts))
	if err != nil {
		return err
	}
	counts := map[artifact.RunState]int{}
	for _, r := range plan {
		counts[r.State]++
		if r.State != artifact.StateFresh {
			fmt.Printf("%-8s %s/%s#r%d\n", r.State, r.Artifact, r.Cell, r.Replicate)
		}
	}
	fmt.Printf("%d runs: %d fresh, %d missing, %d stale\n",
		len(plan), counts[artifact.StateFresh], counts[artifact.StateMissing], counts[artifact.StateStale])
	return nil
}

func runRun(args []string) error {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	quick, dir, arts := gridFlags(fs)
	force := fs.Bool("force", false, "re-run fresh envelopes too")
	workers := fs.Int("workers", 0, "concurrent replicates per cell (0 = default)")
	fs.Parse(args)
	reports, err := artifact.Execute(context.Background(), *dir, artifact.ExecuteOptions{
		Quick:           *quick,
		Artifacts:       splitArtifacts(*arts),
		Force:           *force,
		EnsembleWorkers: *workers,
	})
	if err != nil {
		return err
	}
	executed, skipped := 0, 0
	for _, r := range reports {
		executed += len(r.Executed)
		skipped += len(r.Skipped)
		if len(r.Executed) > 0 {
			fmt.Printf("ran      %s/%s: %d of %d replicates\n",
				r.Artifact, r.Cell, len(r.Executed), len(r.Executed)+len(r.Skipped))
		}
	}
	fmt.Printf("%d runs executed, %d already fresh\n", executed, skipped)
	return nil
}

func runTables(args []string) error {
	fs := flag.NewFlagSet("tables", flag.ExitOnError)
	quick, dir, arts := gridFlags(fs)
	fs.Parse(args)
	paths, err := artifact.WriteTables(*dir, *quick, splitArtifacts(*arts))
	if err != nil {
		return err
	}
	for _, p := range paths {
		fmt.Printf("wrote %s\n", artifact.TableDir(*dir, *quick)+"/"+p)
	}
	return nil
}

func runVerify(args []string) error {
	fs := flag.NewFlagSet("verify", flag.ExitOnError)
	quick, dir, arts := gridFlags(fs)
	fs.Parse(args)
	problems, err := artifact.VerifyTables(*dir, *quick, splitArtifacts(*arts))
	if err != nil {
		return err
	}
	if len(problems) > 0 {
		for _, p := range problems {
			fmt.Fprintln(os.Stderr, p)
		}
		return fmt.Errorf("%d table(s) do not match regeneration", len(problems))
	}
	fmt.Printf("all %s-grid tables match regeneration\n", artifact.GridName(*quick))
	return nil
}
