// Command evolint runs the repository's zero-dependency determinism and
// concurrency analyzer suite (internal/lint) over the module and reports
// findings in the conventional file:line:col form (or JSON with -json).
//
// Usage:
//
//	evolint [flags] [patterns]
//
// Patterns select which packages' findings are reported: "./..." (the
// default) reports everything; "./internal/fitness" one package;
// "./internal/..." a subtree.  Analysis always covers the whole module —
// cross-package analyzers such as atomicmix need the full picture — only
// the reporting is filtered.
//
// Flags:
//
//	-json                  emit findings as a JSON array
//	-list                  list the analyzers and exit
//	-run a,b               run only the named analyzers
//	-envelope-fingerprint  print the checkpoint envelope fingerprint (for
//	                       updating the envelopelock pin) and exit
//
// Exit status: 0 clean, 1 findings, 2 usage or load failure.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"evogame/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("evolint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit findings as a JSON array")
	list := fs.Bool("list", false, "list the analyzers and exit")
	only := fs.String("run", "", "comma-separated analyzer names to run (default: all)")
	fingerprint := fs.Bool("envelope-fingerprint", false, "print the current checkpoint envelope fingerprint and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		for _, a := range lint.All() {
			fmt.Fprintf(stdout, "%-14s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	analyzers := lint.All()
	if *only != "" {
		var err error
		analyzers, err = lint.ByName(*only)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
	}

	root, module, err := findModule()
	if err != nil {
		fmt.Fprintln(stderr, "evolint:", err)
		return 2
	}
	ctx, err := lint.Load(root, module)
	if err != nil {
		fmt.Fprintln(stderr, "evolint:", err)
		return 2
	}

	if *fingerprint {
		return printFingerprint(ctx, stdout, stderr)
	}

	diags := lint.Run(ctx, analyzers)
	diags = filterPatterns(diags, fs.Args())

	if *jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if diags == nil {
			diags = []lint.Diagnostic{}
		}
		if err := enc.Encode(diags); err != nil {
			fmt.Fprintln(stderr, "evolint:", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Fprintln(stdout, d)
		}
	}
	if len(diags) > 0 {
		if !*jsonOut {
			fmt.Fprintf(stderr, "evolint: %d finding(s)\n", len(diags))
		}
		return 1
	}
	return 0
}

// findModule walks up from the working directory to the enclosing go.mod
// and returns its directory and module path.
func findModule() (root, module string, err error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", "", err
	}
	for {
		data, err := os.ReadFile(filepath.Join(dir, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return dir, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("%s has no module line", filepath.Join(dir, "go.mod"))
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", "", fmt.Errorf("no go.mod found above the working directory")
		}
		dir = parent
	}
}

// pattern is one parsed package pattern: a module-relative directory and
// whether it covers the whole subtree ("/..." suffix).
type pattern struct {
	dir       string
	recursive bool
}

// filterPatterns keeps the diagnostics whose file falls under one of the
// package patterns.  No patterns (or "./...") means everything.
func filterPatterns(diags []lint.Diagnostic, args []string) []lint.Diagnostic {
	if len(args) == 0 {
		return diags
	}
	var pats []pattern
	for _, p := range args {
		p = strings.TrimPrefix(filepath.ToSlash(p), "./")
		p = strings.TrimSuffix(p, "/")
		pat := pattern{dir: p}
		if rest, ok := strings.CutSuffix(p, "/..."); ok {
			pat = pattern{dir: rest, recursive: true}
		} else if p == "..." {
			pat = pattern{dir: "", recursive: true}
		}
		if pat.dir == "" || pat.dir == "." {
			if pat.recursive {
				return diags // ./... covers the whole tree
			}
			pat.dir = "."
		}
		pats = append(pats, pat)
	}
	var out []lint.Diagnostic
	for _, d := range diags {
		dir := filepath.ToSlash(filepath.Dir(d.File))
		for _, p := range pats {
			if dir == p.dir || p.recursive && strings.HasPrefix(dir+"/", p.dir+"/") {
				out = append(out, d)
				break
			}
		}
	}
	return out
}

// printFingerprint prints the live checkpoint-envelope fingerprint so the
// envelopelock pin can be updated deliberately after a format change.
func printFingerprint(ctx *lint.Context, stdout, stderr *os.File) int {
	pkg := ctx.PackageAt("internal/checkpoint")
	if pkg == nil {
		fmt.Fprintln(stderr, "evolint: no internal/checkpoint package in this tree")
		return 2
	}
	st, _ := lint.FindStruct(pkg, "envelope")
	if st == nil {
		fmt.Fprintln(stderr, "evolint: internal/checkpoint declares no envelope struct")
		return 2
	}
	fmt.Fprintf(stdout, "%#x\n", lint.EnvelopeFingerprint(ctx.Fset, st))
	return 0
}
