package sset

import (
	"testing"
	"testing/quick"

	"evogame/internal/game"
	"evogame/internal/rng"
	"evogame/internal/strategy"
)

func newEngine(t *testing.T, mem int, noise float64) *game.Engine {
	t.Helper()
	e, err := game.NewEngine(game.EngineConfig{Rounds: 50, MemorySteps: mem, Noise: noise})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestPartitionOpponentsEven(t *testing.T) {
	agents := PartitionOpponents(12, 4)
	if len(agents) != 4 {
		t.Fatalf("got %d agents", len(agents))
	}
	for i, a := range agents {
		if a.Index != i {
			t.Fatalf("agent %d has index %d", i, a.Index)
		}
		if a.Games() != 3 {
			t.Fatalf("agent %d has %d games, want 3", i, a.Games())
		}
	}
}

func TestPartitionOpponentsUneven(t *testing.T) {
	agents := PartitionOpponents(10, 4)
	sizes := []int{3, 3, 2, 2}
	total := 0
	prevHi := 0
	for i, a := range agents {
		if a.Games() != sizes[i] {
			t.Fatalf("agent %d has %d games, want %d", i, a.Games(), sizes[i])
		}
		if a.Lo != prevHi {
			t.Fatalf("agent %d range does not start where the previous ended", i)
		}
		prevHi = a.Hi
		total += a.Games()
	}
	if total != 10 {
		t.Fatalf("partition covers %d games, want 10", total)
	}
}

func TestPartitionOpponentsMoreAgentsThanGames(t *testing.T) {
	agents := PartitionOpponents(2, 5)
	total := 0
	for _, a := range agents {
		if a.Games() < 0 || a.Games() > 1 {
			t.Fatalf("agent %d has %d games", a.Index, a.Games())
		}
		total += a.Games()
	}
	if total != 2 {
		t.Fatalf("partition covers %d games, want 2", total)
	}
}

func TestPartitionOpponentsZeroGames(t *testing.T) {
	for _, a := range PartitionOpponents(0, 3) {
		if a.Games() != 0 {
			t.Fatal("zero opponents should give zero games per agent")
		}
	}
}

func TestPartitionOpponentsPanics(t *testing.T) {
	cases := []func(){
		func() { PartitionOpponents(5, 0) },
		func() { PartitionOpponents(5, -1) },
		func() { PartitionOpponents(-1, 2) },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(0, 0, strategy.AllC(1)); err == nil {
		t.Fatal("accepted zero agents")
	}
	if _, err := New(0, 4, nil); err == nil {
		t.Fatal("accepted nil strategy")
	}
	if _, err := New(-1, 4, strategy.AllC(1)); err == nil {
		t.Fatal("accepted negative id")
	}
	s, err := New(3, 4, strategy.WSLS(1))
	if err != nil {
		t.Fatal(err)
	}
	if s.ID() != 3 || s.NumAgents() != 4 {
		t.Fatal("accessors do not reflect construction")
	}
	if s.Strategy().String() != strategy.WSLS(1).String() {
		t.Fatal("strategy accessor wrong")
	}
}

func TestSetStrategy(t *testing.T) {
	s, _ := New(0, 2, strategy.AllC(1))
	if err := s.SetStrategy(nil); err == nil {
		t.Fatal("SetStrategy accepted nil")
	}
	if err := s.SetStrategy(strategy.AllD(1)); err != nil {
		t.Fatal(err)
	}
	if s.Strategy().String() != "1111" {
		t.Fatal("SetStrategy did not replace the strategy")
	}
}

func TestAgentsPartition(t *testing.T) {
	s, _ := New(0, 4, strategy.AllC(1))
	agents := s.Agents(9)
	if len(agents) != 4 {
		t.Fatalf("got %d agents", len(agents))
	}
	total := 0
	for _, a := range agents {
		total += a.Games()
	}
	if total != 9 {
		t.Fatalf("agents cover %d games, want 9", total)
	}
}

func TestFitnessDeterministicKnownValues(t *testing.T) {
	// AllD against [AllC, AllD]: 50 rounds.
	//   vs AllC: T every round = 200; vs AllD: P every round = 50.  Total 250.
	eng := newEngine(t, 1, 0)
	s, _ := New(0, 3, strategy.AllD(1))
	opponents := []strategy.Strategy{strategy.AllC(1), strategy.AllD(1)}
	fit, err := s.Fitness(eng, opponents, FitnessOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if fit != 250 {
		t.Fatalf("AllD fitness = %v, want 250", fit)
	}

	// AllC against the same opponents: R*50 + S*50 = 150.
	c, _ := New(1, 3, strategy.AllC(1))
	fit, err = c.Fitness(eng, opponents, FitnessOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if fit != 150 {
		t.Fatalf("AllC fitness = %v, want 150", fit)
	}
}

func TestFitnessEmptyOpponents(t *testing.T) {
	eng := newEngine(t, 1, 0)
	s, _ := New(0, 2, strategy.TFT(1))
	fit, err := s.Fitness(eng, nil, FitnessOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if fit != 0 {
		t.Fatalf("fitness with no opponents = %v", fit)
	}
}

func TestFitnessNilEngine(t *testing.T) {
	s, _ := New(0, 2, strategy.TFT(1))
	if _, err := s.Fitness(nil, []strategy.Strategy{strategy.AllC(1)}, FitnessOptions{}); err == nil {
		t.Fatal("accepted nil engine")
	}
}

func TestFitnessNilOpponent(t *testing.T) {
	eng := newEngine(t, 1, 0)
	s, _ := New(0, 2, strategy.TFT(1))
	if _, err := s.Fitness(eng, []strategy.Strategy{nil}, FitnessOptions{Workers: 1}); err == nil {
		t.Fatal("accepted nil opponent (serial path)")
	}
	opps := []strategy.Strategy{strategy.AllC(1), nil, strategy.AllC(1), strategy.AllC(1)}
	if _, err := s.Fitness(eng, opps, FitnessOptions{Workers: 2}); err == nil {
		t.Fatal("accepted nil opponent (parallel path)")
	}
}

func TestFitnessRequiresSourceWhenNoisy(t *testing.T) {
	eng := newEngine(t, 1, 0.1)
	s, _ := New(0, 2, strategy.TFT(1))
	if _, err := s.Fitness(eng, []strategy.Strategy{strategy.AllC(1)}, FitnessOptions{}); err == nil {
		t.Fatal("noisy fitness accepted a nil source")
	}
}

func TestFitnessRequiresSourceWhenMixedOpponent(t *testing.T) {
	eng := newEngine(t, 1, 0)
	s, _ := New(0, 2, strategy.TFT(1))
	gtft, _ := strategy.GTFT(1, 0.3)
	if _, err := s.Fitness(eng, []strategy.Strategy{gtft}, FitnessOptions{}); err == nil {
		t.Fatal("fitness against a mixed opponent accepted a nil source")
	}
}

func TestFitnessWorkerCountDoesNotChangeResult(t *testing.T) {
	eng := newEngine(t, 1, 0)
	src := rng.New(7)
	// Build a varied opponent pool.
	var opponents []strategy.Strategy
	for i := 0; i < 37; i++ {
		opponents = append(opponents, strategy.RandomPure(1, src))
	}
	s, _ := New(0, 8, strategy.WSLS(1))
	want, err := s.Fitness(eng, opponents, FitnessOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 3, 4, 8, 64} {
		got, err := s.Fitness(eng, opponents, FitnessOptions{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("workers=%d fitness %v differs from serial %v", workers, got, want)
		}
	}
}

func TestFitnessNoisyDeterministicAcrossWorkerCounts(t *testing.T) {
	eng := newEngine(t, 1, 0.05)
	var opponents []strategy.Strategy
	src := rng.New(3)
	for i := 0; i < 21; i++ {
		opponents = append(opponents, strategy.RandomPure(1, src))
	}
	s, _ := New(0, 4, strategy.WSLS(1))
	want, err := s.Fitness(eng, opponents, FitnessOptions{Workers: 1, Source: rng.New(42)})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 5, 16} {
		got, err := s.Fitness(eng, opponents, FitnessOptions{Workers: workers, Source: rng.New(42)})
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("noisy fitness with workers=%d is %v, want %v (same seed)", workers, got, want)
		}
	}
}

func TestFitnessDefaultWorkers(t *testing.T) {
	eng := newEngine(t, 1, 0)
	s, _ := New(0, 2, strategy.TFT(1))
	opponents := []strategy.Strategy{strategy.AllC(1), strategy.AllD(1), strategy.WSLS(1)}
	if _, err := s.Fitness(eng, opponents, FitnessOptions{Workers: 0}); err != nil {
		t.Fatal(err)
	}
}

func TestFitnessTable(t *testing.T) {
	eng := newEngine(t, 1, 0)
	strats := []strategy.Strategy{strategy.AllC(1), strategy.AllD(1), strategy.WSLS(1)}
	var ssets []*SSet
	for i, s := range strats {
		ss, err := New(i, 2, s)
		if err != nil {
			t.Fatal(err)
		}
		ssets = append(ssets, ss)
	}
	fitness, err := FitnessTable(eng, ssets, strats, FitnessOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(fitness) != 3 {
		t.Fatalf("fitness table has %d entries", len(fitness))
	}
	// Against this pool, AllD exploits AllC and WSLS's first-round
	// cooperation while WSLS still sustains cooperation with itself and
	// AllC; AllC is exploited by AllD.  The defining qualitative check from
	// the paper's dynamics is that WSLS beats AllC in a mixed pool and AllD
	// earns more than AllC but cannot beat WSLS's cooperative cluster by a
	// large margin.
	allc, alld, wsls := fitness[0], fitness[1], fitness[2]
	if !(wsls > allc) {
		t.Fatalf("expected WSLS (%v) to out-earn AllC (%v) in this pool", wsls, allc)
	}
	if alld <= 0 || allc <= 0 || wsls <= 0 {
		t.Fatal("fitness values must be positive with the standard payoff matrix")
	}
}

func TestFitnessTablePropagatesErrors(t *testing.T) {
	eng := newEngine(t, 1, 0)
	ss, _ := New(0, 2, strategy.TFT(1))
	if _, err := FitnessTable(eng, []*SSet{ss}, []strategy.Strategy{nil}, FitnessOptions{Workers: 1}); err == nil {
		t.Fatal("FitnessTable swallowed an error")
	}
}

// Property: any partition covers every opponent exactly once, in order, with
// sizes differing by at most one.
func TestQuickPartitionCoversAll(t *testing.T) {
	f := func(oppSel, agentSel uint16) bool {
		numOpp := int(oppSel % 2000)
		numAgents := int(agentSel%200) + 1
		agents := PartitionOpponents(numOpp, numAgents)
		if len(agents) != numAgents {
			return false
		}
		prevHi := 0
		minSize, maxSize := 1<<30, 0
		for _, a := range agents {
			if a.Lo != prevHi || a.Games() < 0 {
				return false
			}
			prevHi = a.Hi
			if a.Games() < minSize {
				minSize = a.Games()
			}
			if a.Games() > maxSize {
				maxSize = a.Games()
			}
		}
		return prevHi == numOpp && maxSize-minSize <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkFitness64OpponentsMemorySix(b *testing.B) {
	eng, _ := game.NewEngine(game.EngineConfig{Rounds: game.DefaultRounds, MemorySteps: 6})
	src := rng.New(1)
	var opponents []strategy.Strategy
	for i := 0; i < 64; i++ {
		opponents = append(opponents, strategy.RandomPure(6, src))
	}
	s, _ := New(0, 4, strategy.RandomPure(6, src))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Fitness(eng, opponents, FitnessOptions{Workers: 4}); err != nil {
			b.Fatal(err)
		}
	}
}
