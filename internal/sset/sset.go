// Package sset implements Strategy Sets, the central abstraction of the
// paper (Section IV): a Strategy Set (SSet) is a group of agents that all
// play the same strategy.  The fitness of an SSet against the rest of the
// population is the sum of the payoffs its agents collect in Iterated
// Prisoner's Dilemma games against every other strategy in the population;
// the agents of an SSet partition those opponent games among themselves,
// which is the thread-level ("OpenMP") tier of the paper's two-level
// decomposition.  In this reproduction the thread tier is a pool of worker
// goroutines.
package sset

import (
	"fmt"
	"runtime"
	"sync"

	"evogame/internal/fitness"
	"evogame/internal/game"
	"evogame/internal/rng"
	"evogame/internal/strategy"
)

// Agent identifies one agent within an SSet and the slice of opponent
// indices it is responsible for playing (the "determine opponents to play
// based on rank" step of the paper's pseudo code).
type Agent struct {
	// Index is the agent's position within its SSet.
	Index int
	// Lo and Hi bound the half-open range [Lo, Hi) of opponent indices this
	// agent plays.
	Lo, Hi int
}

// Games returns the number of games the agent is responsible for.
func (a Agent) Games() int { return a.Hi - a.Lo }

// PartitionOpponents splits numOpponents games across numAgents agents as
// evenly as possible (the first numOpponents mod numAgents agents receive
// one extra game).  It panics if numAgents <= 0 or numOpponents < 0.
func PartitionOpponents(numOpponents, numAgents int) []Agent {
	if numAgents <= 0 {
		panic(fmt.Sprintf("sset: numAgents must be positive, got %d", numAgents))
	}
	if numOpponents < 0 {
		panic(fmt.Sprintf("sset: numOpponents must be non-negative, got %d", numOpponents))
	}
	agents := make([]Agent, numAgents)
	base := numOpponents / numAgents
	extra := numOpponents % numAgents
	lo := 0
	for i := range agents {
		size := base
		if i < extra {
			size++
		}
		agents[i] = Agent{Index: i, Lo: lo, Hi: lo + size}
		lo += size
	}
	return agents
}

// SSet is a Strategy Set: an identifier, the strategy its agents share, and
// the number of agents in the set.
type SSet struct {
	id        int
	numAgents int
	strat     strategy.Strategy
}

// New returns an SSet with the given id, agent count and strategy.  It
// returns an error if numAgents is not positive or the strategy is nil.
func New(id, numAgents int, strat strategy.Strategy) (*SSet, error) {
	if numAgents <= 0 {
		return nil, fmt.Errorf("sset: numAgents must be positive, got %d", numAgents)
	}
	if strat == nil {
		return nil, fmt.Errorf("sset: nil strategy")
	}
	if id < 0 {
		return nil, fmt.Errorf("sset: id must be non-negative, got %d", id)
	}
	return &SSet{id: id, numAgents: numAgents, strat: strat}, nil
}

// ID returns the SSet's identifier within the population.
func (s *SSet) ID() int { return s.id }

// NumAgents returns the number of agents in the set.
func (s *SSet) NumAgents() int { return s.numAgents }

// Strategy returns the strategy currently shared by every agent in the set.
func (s *SSet) Strategy() strategy.Strategy { return s.strat }

// SetStrategy replaces the SSet's strategy; this is how the learning and
// mutation phases of the population dynamics take effect.
func (s *SSet) SetStrategy(strat strategy.Strategy) error {
	if strat == nil {
		return fmt.Errorf("sset: nil strategy")
	}
	s.strat = strat
	return nil
}

// Agents returns the opponent partition for this SSet against numOpponents
// opponent strategies.
func (s *SSet) Agents(numOpponents int) []Agent {
	return PartitionOpponents(numOpponents, s.numAgents)
}

// FitnessOptions controls how an SSet evaluates its fitness.
type FitnessOptions struct {
	// Workers is the number of worker goroutines used to fan out the games
	// (the thread-level tier).  Zero selects GOMAXPROCS — this is the single
	// point where that default resolves; the facade and both engines pass
	// their worker knobs through unchanged.  Negative values are rejected.
	Workers int
	// Source provides randomness for noisy or mixed games.  It may be nil
	// for fully deterministic games.  The source is split per opponent in a
	// fixed order, so results are independent of the worker count.
	Source *rng.Source
	// Cache, when non-nil, routes every game of the batch through the shared
	// pair cache: distinct noiseless deterministic pairs are played at most
	// once per cache lifetime, while non-cacheable games bypass the cache
	// transparently.  The cache is safe for the worker fan-out.
	Cache *fitness.PairCache
	// SelfID and OpponentIDs, when OpponentIDs is non-nil, carry the
	// interned IDs (from Cache.Interner()) of the SSet's strategy and of
	// each opponent, letting the batch go through the cache's allocation-free
	// ID-pair path instead of re-encoding strategies per game.  OpponentIDs
	// must align with the opponents slice; callers only set it when the
	// whole-run cache-validity gate (fitness.CacheUsable) holds.
	SelfID      uint32
	OpponentIDs []uint32
}

// sumRange plays the SSet's strategy against opponents[lo:hi) in index
// order and returns the summed focal payoff.  Games go through the engine's
// bit-sliced batch kernel (or the cache's batched ID path) one
// game.BatchLanes-sized block at a time; the result buffers live on the
// stack, so the steady state allocates nothing.
func (s *SSet) sumRange(eng *game.Engine, opponents []strategy.Strategy, opts FitnessOptions, perGame []*rng.Source, lo, hi int) (float64, error) {
	var (
		players [game.BatchLanes]game.Player
		srcs    [game.BatchLanes]*rng.Source
		results [game.BatchLanes]game.Result
	)
	total := 0.0
	for c0 := lo; c0 < hi; c0 += game.BatchLanes {
		c1 := c0 + game.BatchLanes
		if c1 > hi {
			c1 = hi
		}
		n := c1 - c0
		for i := c0; i < c1; i++ {
			if opponents[i] == nil {
				return 0, fmt.Errorf("sset: nil opponent strategy at index %d", i)
			}
		}
		switch {
		case opts.Cache != nil && opts.OpponentIDs != nil:
			// The allocation-free interned-ID path; misses fill in batches.
			if err := opts.Cache.PlayIDBatch(opts.SelfID, opts.OpponentIDs[c0:c1], results[:n]); err != nil {
				return 0, fmt.Errorf("sset %d vs opponents [%d,%d): %w", s.id, c0, c1, err)
			}
		case opts.Cache != nil:
			// Strategy-keyed cache routing stays per game: it re-interns each
			// pair anyway, so there is no batch to exploit.
			for i := c0; i < c1; i++ {
				var src *rng.Source
				if perGame != nil {
					src = perGame[i]
				}
				res, err := opts.Cache.Play(s.strat, opponents[i], src)
				if err != nil {
					return 0, fmt.Errorf("sset %d vs opponent %d: %w", s.id, i, err)
				}
				results[i-c0] = res
			}
		default:
			for k := 0; k < n; k++ {
				players[k] = opponents[c0+k]
				if perGame != nil {
					srcs[k] = perGame[c0+k]
				}
			}
			var chunkSrcs []*rng.Source
			if perGame != nil {
				chunkSrcs = srcs[:n]
			}
			if err := eng.PlayBatch(s.strat, players[:n], chunkSrcs, results[:n]); err != nil {
				return 0, fmt.Errorf("sset %d vs opponents [%d,%d): %w", s.id, c0, c1, err)
			}
		}
		for k := 0; k < n; k++ {
			total += results[k].FitnessA
		}
	}
	return total, nil
}

// Fitness plays the SSet's strategy against every opponent strategy and
// returns the summed focal payoff — the "relative fitness" the Nature Agent
// compares during pairwise learning.  Games are distributed across worker
// goroutines; the result is deterministic for a given Source seed regardless
// of Workers.
func (s *SSet) Fitness(eng *game.Engine, opponents []strategy.Strategy, opts FitnessOptions) (float64, error) {
	if eng == nil {
		return 0, fmt.Errorf("sset: nil engine")
	}
	if opts.Workers < 0 {
		return 0, fmt.Errorf("sset: Workers must be non-negative, got %d (0 selects GOMAXPROCS)", opts.Workers)
	}
	workers := opts.Workers
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(opponents) {
		workers = len(opponents)
	}
	if len(opponents) == 0 {
		return 0, nil
	}
	if opts.OpponentIDs != nil {
		if opts.Cache == nil {
			return 0, fmt.Errorf("sset: OpponentIDs require a Cache")
		}
		if len(opts.OpponentIDs) != len(opponents) {
			return 0, fmt.Errorf("sset: %d opponent IDs for %d opponents", len(opts.OpponentIDs), len(opponents))
		}
	}

	// Pre-derive one source per opponent so that the schedule (which worker
	// plays which game) cannot change the stream a game sees.
	needRandom := eng.Noise() > 0 || !s.strat.Deterministic()
	if !needRandom {
		for _, o := range opponents {
			if o == nil {
				return 0, fmt.Errorf("sset: nil opponent strategy")
			}
			if !o.Deterministic() {
				needRandom = true
				break
			}
		}
	}
	var perGame []*rng.Source
	if needRandom {
		if opts.Source == nil {
			return 0, fmt.Errorf("sset: randomness required (noise or mixed strategies) but no Source provided")
		}
		perGame = opts.Source.SplitN(len(opponents))
	}

	if workers == 1 {
		return s.sumRange(eng, opponents, opts, perGame, 0, len(opponents))
	}

	agents := PartitionOpponents(len(opponents), workers)
	partial := make([]float64, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w, agent := range agents {
		if agent.Games() == 0 {
			continue
		}
		wg.Add(1)
		go func(w int, agent Agent) {
			defer wg.Done()
			partial[w], errs[w] = s.sumRange(eng, opponents, opts, perGame, agent.Lo, agent.Hi)
		}(w, agent)
	}
	wg.Wait()
	total := 0.0
	for w := range partial {
		if errs[w] != nil {
			return 0, errs[w]
		}
		total += partial[w]
	}
	return total, nil
}

// FitnessTable evaluates the fitness of every SSet in ssets against the full
// list of strategies (each SSet plays every entry of strategies, including
// its own strategy, exactly as in the paper where every SSet measures itself
// against all strategies held in the population).  It returns one fitness
// value per SSet.  Games for different SSets run sequentially; parallelism
// within an SSet is controlled by opts.Workers.
func FitnessTable(eng *game.Engine, ssets []*SSet, strategies []strategy.Strategy, opts FitnessOptions) ([]float64, error) {
	fitness := make([]float64, len(ssets))
	for i, s := range ssets {
		var localOpts FitnessOptions
		localOpts.Workers = opts.Workers
		if opts.Source != nil {
			localOpts.Source = opts.Source.Split()
		}
		f, err := s.Fitness(eng, strategies, localOpts)
		if err != nil {
			return nil, err
		}
		fitness[i] = f
	}
	return fitness, nil
}
