package sset

import (
	"testing"

	"evogame/internal/game"
	"evogame/internal/rng"
	"evogame/internal/strategy"
)

func newKernelEngine(t *testing.T, noise float64, kernel game.KernelMode) *game.Engine {
	t.Helper()
	eng, err := game.NewEngine(game.EngineConfig{
		Rounds:      game.DefaultRounds,
		MemorySteps: 1,
		Noise:       noise,
		AccumMode:   game.AccumLookup,
		Kernel:      kernel,
	})
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

func TestFitnessNegativeWorkersRejected(t *testing.T) {
	eng := newKernelEngine(t, 0, game.KernelAuto)
	s, _ := New(0, 2, strategy.TFT(1))
	opponents := []strategy.Strategy{strategy.AllC(1)}
	if _, err := s.Fitness(eng, opponents, FitnessOptions{Workers: -1}); err == nil {
		t.Fatal("negative Workers accepted")
	}
}

// TestFitnessBatchedMatchesScalarAcrossWorkers is the worker-count
// independence gate for the batched fitness path: with opponent pools that
// span several 64-lane chunks, every worker count (whose partitions slice
// the pool at arbitrary, non-chunk-aligned offsets) must reproduce the
// scalar full-replay total bit for bit, noiseless and noisy.
func TestFitnessBatchedMatchesScalarAcrossWorkers(t *testing.T) {
	for _, noise := range []float64{0, 0.05} {
		batchEng := newKernelEngine(t, noise, game.KernelBatch)
		scalarEng := newKernelEngine(t, noise, game.KernelFullReplay)
		src := rng.New(12)
		var opponents []strategy.Strategy
		for i := 0; i < 171; i++ { // 2 full chunks + ragged tail
			opponents = append(opponents, strategy.RandomPure(1, src))
		}
		s, _ := New(0, 4, strategy.WSLS(1))
		newSrc := func() *rng.Source {
			if noise > 0 {
				return rng.New(77)
			}
			return nil
		}
		want, err := s.Fitness(scalarEng, opponents, FitnessOptions{Workers: 1, Source: newSrc()})
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{1, 2, 3, 7, 16, 64} {
			got, err := s.Fitness(batchEng, opponents, FitnessOptions{Workers: workers, Source: newSrc()})
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("noise=%v workers=%d: batched fitness %v, scalar %v", noise, workers, got, want)
			}
		}
		if stats := batchEng.KernelStats(); stats.BatchGames == 0 {
			t.Fatalf("noise=%v: batched engine never used the SWAR kernel: %+v", noise, stats)
		}
	}
}
