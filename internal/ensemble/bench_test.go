package ensemble

import (
	"context"
	"fmt"
	"testing"

	"evogame/internal/fitness"
	"evogame/internal/game"
	"evogame/internal/population"
	"evogame/internal/rng"
	"evogame/internal/strategy"
)

// benchBase builds the benchmark workload: a small noiseless cached
// configuration with a fixed initial strategy table, so replicates overlap
// on the warm-up pairs and the shared/private gap is the cross-run sharing
// itself (the same shape as `benchtables -table ensemble`, scaled down to
// benchmark size).
func benchBase(b *testing.B) population.Config {
	b.Helper()
	const ssets, memSteps = 32, 2
	src := rng.New(7)
	initial := make([]strategy.Strategy, ssets)
	for i := range initial {
		initial[i] = strategy.RandomPure(memSteps, src)
	}
	return population.Config{
		NumSSets:          ssets,
		AgentsPerSSet:     2,
		MemorySteps:       memSteps,
		Rounds:            game.DefaultRounds,
		PCRate:            1,
		MutationRate:      0.05,
		Beta:              1,
		Seed:              7,
		EvalMode:          fitness.EvalCached,
		InitialStrategies: initial,
	}
}

// BenchmarkEnsembleSharedCache measures a 4-replicate serial ensemble with
// the cross-run shared pair-cache store, at one and at four ensemble
// workers.
func BenchmarkEnsembleSharedCache(b *testing.B) {
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			base := benchBase(b)
			for i := 0; i < b.N; i++ {
				if _, err := RunSerial(context.Background(), base, 24, Config{
					Replicates: 4, Workers: workers,
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkEnsemblePrivateCaches is the same workload with per-replicate
// private caches — the baseline the shared store is measured against.
func BenchmarkEnsemblePrivateCaches(b *testing.B) {
	base := benchBase(b)
	for i := 0; i < b.N; i++ {
		if _, err := RunSerial(context.Background(), base, 24, Config{
			Replicates: 4, Workers: 1, PrivateCaches: true,
		}); err != nil {
			b.Fatal(err)
		}
	}
}
