// Package ensemble runs many independent replicates of one simulation
// configuration — the shape of every headline result in the paper (the
// Figure 5 memory sweep, the Figure 6 scaling study, every averaged
// trajectory) — concurrently under a bounded worker pool, and aggregates
// them deterministically.
//
// Each replicate k runs the underlying engine (serial or distributed)
// unchanged with a seed derived by ReplicateSeed, so its trajectory is
// bit-identical to running that seed solo.  The throughput win is
// cross-run sharing: for noiseless deterministic configurations all
// replicates evaluate fitness through per-run views over one shared
// fitness.PairCache store (one interning registry, one 64-shard memoized
// pair table), so replicate k starts with every pair any earlier replicate
// already played served as a cache hit.  Noisy or mixed configurations
// keep the engines' existing bypass — the shared store is simply never
// consulted — so RNG streams never move.
//
// Worker budget: ensemble-level concurrency and per-run worker fan-out
// multiply, so by default the two tiers split GOMAXPROCS instead of
// oversubscribing it — EnsembleWorkers resolves to min(Replicates,
// GOMAXPROCS) and an unset per-run Workers/WorkersPerRank resolves to
// GOMAXPROCS divided by the ensemble workers (floor 1).  Explicitly set
// values win on both tiers.
package ensemble

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"

	"evogame/internal/faults"
	"evogame/internal/fitness"
	"evogame/internal/game"
	"evogame/internal/parallel"
	"evogame/internal/population"
	"evogame/internal/stats"
	"evogame/internal/supervise"
)

// Config controls the ensemble tier: how many replicates to run and how
// many of them may be in flight at once.  The per-run configuration (and
// the base seed the replicate seeds derive from) comes from the engine
// config passed to RunSerial / RunParallel.
type Config struct {
	// Replicates is the number of independent runs; it must be at least 1.
	// Replicate k runs with seed ReplicateSeed(base.Seed, k).
	Replicates int
	// Workers bounds how many replicates run concurrently.  Zero selects
	// min(Replicates, GOMAXPROCS); negative values are rejected.
	Workers int
	// PrivateCaches disables cross-run sharing: every replicate builds its
	// own PairCache exactly as a solo run would.  Results are identical
	// either way (the shared store only changes which lookups hit); the
	// flag exists for benchmarking the sharing itself and for keeping
	// memory bounded per run.
	PrivateCaches bool
	// ReplicateCheckpoint, when non-nil, gives every replicate its own
	// checkpoint destination: replicate k writes its final resumable (v4)
	// snapshot to the returned path with the returned label.  This is the
	// supported way to checkpoint an ensemble — the base config's single
	// CheckpointPath stays rejected because replicates would race on one
	// file — and it is what makes the paper-artifact pipeline incremental:
	// each (cell, replicate) run persists its own envelope, so a collector
	// can re-render tables from whatever snapshots exist.  Checkpoints are
	// final-state only; for periodic mid-run checkpoints run the replicate
	// solo.
	ReplicateCheckpoint func(k int) (path, label string)
	// Skip, when non-nil, excludes replicate k from execution when it
	// returns true.  Seeds are still derived by index, so the replicates
	// that do run are bit-identical to a full ensemble (cross-run cache
	// sharing only changes which lookups hit).  Skipped slots are left as
	// zero values in Runs and contribute nothing to the merged metrics or
	// the aggregated trajectory (both fold over completed replicates only).
	Skip func(k int) bool
	// MaxRestarts, when positive, runs every replicate under the
	// supervisor (internal/supervise): a replicate that fails transiently
	// — an injected fault, a dead rank, an expired communication deadline —
	// is relaunched from its newest checkpoint segment up to MaxRestarts
	// times before being declared permanently failed.  Zero disables
	// supervision: the first failure of a replicate is final.
	MaxRestarts int
	// SegmentEvery is the supervisor's checkpoint cadence in generations
	// (supervise.Policy.SegmentEvery); it only matters when MaxRestarts is
	// positive.
	SegmentEvery int
	// ReplicateFaults, when non-nil, installs the returned fault plan in
	// replicate k (nil plans inject nothing).  Plans must be per-replicate:
	// a faults.Plan consumes its events as they fire, so sharing one plan
	// across concurrent replicates would race on the arming state.
	ReplicateFaults func(k int) *faults.Plan
}

// resolveWorkers applies the worker-budget rule to the ensemble tier.
func (c Config) resolveWorkers() (int, error) {
	if c.Replicates < 1 {
		return 0, fmt.Errorf("ensemble: Replicates must be at least 1, got %d", c.Replicates)
	}
	if c.Workers < 0 {
		return 0, fmt.Errorf("ensemble: Workers must be non-negative, got %d (0 selects min(Replicates, GOMAXPROCS))", c.Workers)
	}
	w := c.Workers
	if w == 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > c.Replicates {
		w = c.Replicates
	}
	return w, nil
}

// perRunWorkers returns the default per-run worker budget when the engine
// config leaves it unset: the share of GOMAXPROCS left to each of the
// ensembleWorkers concurrent runs, never below 1.
func perRunWorkers(ensembleWorkers int) int {
	w := runtime.GOMAXPROCS(0) / ensembleWorkers
	if w < 1 {
		w = 1
	}
	return w
}

// ReplicateSeed derives the seed of replicate k from the base seed.
// Replicate 0 runs the base seed itself, so a one-replicate ensemble is the
// solo run; later replicates mix k through a splitmix64-style finalizer so
// the derived seeds are uncorrelated but reproducible.
func ReplicateSeed(base uint64, k int) uint64 {
	if k == 0 {
		return base
	}
	x := base + uint64(k)*0x9E3779B97F4A7C15
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

// TrajectoryPoint is one generation of the ensemble-aggregated trajectory:
// mean and standard deviation (over replicates) of the population's
// cooperativity and WSLS abundance at that sampled generation.
type TrajectoryPoint struct {
	// Generation is the sampled generation (identical across replicates).
	Generation int
	// Cooperation is 1 - MeanDefectingStates averaged over replicates, and
	// CooperationStd its sample standard deviation.
	Cooperation    float64
	CooperationStd float64
	// WSLS is the mean fraction of SSets holding the canonical
	// win-stay-lose-shift strategy, WSLSStd its standard deviation.
	WSLS    float64
	WSLSStd float64
}

// SerialResult is the outcome of an ensemble of serial-engine runs.
type SerialResult struct {
	// Seeds[k] is the seed replicate k ran with.
	Seeds []uint64
	// Runs[k] is replicate k's full result, bit-identical to running
	// Seeds[k] solo with a private cache.
	Runs []population.Result
	// Errors[k] is non-nil when replicate k failed permanently (after any
	// supervised restarts were exhausted); its slot in Runs is then at best
	// a partial result and is excluded from Trajectory and Metrics.  The
	// slice always has one entry per replicate.
	Errors []error
	// Trajectory is the mean/std cooperation trajectory over the
	// completed replicates, one point per sampled generation.
	Trajectory []TrajectoryPoint
	// Metrics merges every replicate's flat metrics (counters summed,
	// batch-lane occupancy re-weighted by calls; see fitness.Metrics.Merge).
	Metrics fitness.Metrics
	// EnsembleWorkers and RunWorkers record the resolved worker budget.
	EnsembleWorkers int
	RunWorkers      int
	// WallClock is the end-to-end ensemble time.
	WallClock time.Duration
}

// RunSerial runs cfg.Replicates serial-engine replicates of base
// concurrently and aggregates them.  Replicate k runs base with
// Seed=ReplicateSeed(base.Seed, k); for noiseless cached configurations all
// replicates share one PairCache store unless cfg.PrivateCaches is set.
// Checkpointing must be disabled in base — replicates would race on one
// file — and base.SharedCache must be unset (the ensemble owns the store).
//
// Failure degrades gracefully: a permanently-failed replicate is reported
// in SerialResult.Errors at its index while the other replicates complete
// and aggregate, and the returned error is the lowest-index failure (nil
// when all completed).  With cfg.MaxRestarts > 0 each replicate runs
// supervised and transient failures are recovered before they count.
func RunSerial(ctx context.Context, base population.Config, generations int, cfg Config) (SerialResult, error) {
	workers, err := cfg.resolveWorkers()
	if err != nil {
		return SerialResult{}, err
	}
	if base.CheckpointPath != "" || base.CheckpointEvery != 0 {
		return SerialResult{}, fmt.Errorf("ensemble: checkpointing is per-run (replicates would race on %q); use Config.ReplicateCheckpoint for per-replicate snapshots", base.CheckpointPath)
	}
	if base.SharedCache != nil {
		return SerialResult{}, fmt.Errorf("ensemble: base.SharedCache must be unset; the ensemble manages the shared store")
	}
	if base.Workers == 0 {
		base.Workers = perRunWorkers(workers)
	}
	if !cfg.PrivateCaches && base.EvalMode != fitness.EvalFull && base.Noise == 0 {
		// Build the shared store from an engine configured exactly as the
		// runs configure theirs, so the store identity (game ID + memory
		// depth) matches every replicate's view.  The master engine itself
		// never plays a game: misses go through each replicate's own engine.
		eng, err := game.NewEngine(game.EngineConfig{
			Game:        base.Game,
			Rounds:      base.Rounds,
			MemorySteps: base.MemorySteps,
			Noise:       base.Noise,
			StateMode:   base.StateMode,
			AccumMode:   base.AccumMode,
			Kernel:      base.Kernel,
		})
		if err != nil {
			return SerialResult{}, err
		}
		if base.SharedCache, err = fitness.NewPairCache(eng); err != nil {
			return SerialResult{}, err
		}
	}

	n := cfg.Replicates
	res := SerialResult{
		Seeds:           make([]uint64, n),
		Runs:            make([]population.Result, n),
		EnsembleWorkers: workers,
		RunWorkers:      base.Workers,
	}
	for k := 0; k < n; k++ {
		res.Seeds[k] = ReplicateSeed(base.Seed, k)
	}
	res.Errors = make([]error, n)
	start := time.Now()
	runReplicates(workers, n, func(k int) {
		if cfg.Skip != nil && cfg.Skip(k) {
			return
		}
		rcfg := base
		rcfg.Seed = res.Seeds[k]
		if cfg.ReplicateCheckpoint != nil {
			rcfg.CheckpointPath, rcfg.CheckpointLabel = cfg.ReplicateCheckpoint(k)
		}
		if cfg.ReplicateFaults != nil {
			rcfg.Faults = cfg.ReplicateFaults(k)
		}
		if cfg.MaxRestarts > 0 {
			pol := supervise.Policy{MaxRestarts: cfg.MaxRestarts, SegmentEvery: cfg.SegmentEvery}
			res.Runs[k], _, res.Errors[k] = supervise.RunSerial(ctx, rcfg, generations, pol)
			return
		}
		model, err := population.New(rcfg)
		if err != nil {
			res.Errors[k] = err
			return
		}
		res.Runs[k], res.Errors[k] = model.Run(ctx, generations)
	})
	res.WallClock = time.Since(start)
	ok := completedSerial(res.Runs, res.Errors, cfg.Skip)
	res.Trajectory = aggregateTrajectory(ok)
	res.Metrics = mergeMetrics(serialMetrics(ok))
	return res, firstReplicateError(res.Errors, res.Seeds)
}

// ParallelResult is the outcome of an ensemble of distributed-engine runs.
type ParallelResult struct {
	// Seeds[k] is the seed replicate k ran with.
	Seeds []uint64
	// Runs[k] is replicate k's full result, bit-identical to running
	// Seeds[k] solo with private caches.
	Runs []parallel.Result
	// Errors[k] is non-nil when replicate k failed permanently (after any
	// supervised restarts were exhausted); its slot is then excluded from
	// Metrics.  The slice always has one entry per replicate.
	Errors []error
	// Metrics merges every completed replicate's flat metrics.
	Metrics fitness.Metrics
	// EnsembleWorkers and RunWorkers record the resolved worker budget.
	EnsembleWorkers int
	RunWorkers      int
	// WallClock is the end-to-end ensemble time.  Because replicates run
	// concurrently it is less than the sum of the per-run WallClock fields.
	WallClock time.Duration
}

// RunParallel runs cfg.Replicates distributed-engine replicates of base
// concurrently and aggregates them; the sharing, seed-derivation and
// worker-budget rules match RunSerial (each replicate's ranks additionally
// share that store among themselves, as they already shared one rank-set
// cache's worth of results in spirit — every rank gets its own view), as
// do the graceful-degradation and supervision rules (see RunSerial).
func RunParallel(base parallel.Config, cfg Config) (ParallelResult, error) {
	workers, err := cfg.resolveWorkers()
	if err != nil {
		return ParallelResult{}, err
	}
	if base.CheckpointPath != "" || base.CheckpointEvery != 0 {
		return ParallelResult{}, fmt.Errorf("ensemble: checkpointing is per-run (replicates would race on %q); use Config.ReplicateCheckpoint for per-replicate snapshots", base.CheckpointPath)
	}
	if base.Resume != nil {
		return ParallelResult{}, fmt.Errorf("ensemble: Resume is per-run; resume the single run it belongs to")
	}
	if base.SharedCache != nil {
		return ParallelResult{}, fmt.Errorf("ensemble: base.SharedCache must be unset; the ensemble manages the shared store")
	}
	if base.WorkersPerRank == 0 {
		base.WorkersPerRank = perRunWorkers(workers)
	}
	if !cfg.PrivateCaches && base.EvalMode != fitness.EvalFull && base.Noise == 0 {
		eng, err := game.NewEngine(game.EngineConfig{
			Game:        base.Game,
			Rounds:      base.Rounds,
			MemorySteps: base.MemorySteps,
			Noise:       base.Noise,
			Kernel:      base.Kernel,
		})
		if err != nil {
			return ParallelResult{}, err
		}
		if base.SharedCache, err = fitness.NewPairCache(eng); err != nil {
			return ParallelResult{}, err
		}
	}

	n := cfg.Replicates
	res := ParallelResult{
		Seeds:           make([]uint64, n),
		Runs:            make([]parallel.Result, n),
		EnsembleWorkers: workers,
		RunWorkers:      base.WorkersPerRank,
	}
	for k := 0; k < n; k++ {
		res.Seeds[k] = ReplicateSeed(base.Seed, k)
	}
	res.Errors = make([]error, n)
	start := time.Now()
	runReplicates(workers, n, func(k int) {
		if cfg.Skip != nil && cfg.Skip(k) {
			return
		}
		rcfg := base
		rcfg.Seed = res.Seeds[k]
		if cfg.ReplicateCheckpoint != nil {
			rcfg.CheckpointPath, rcfg.CheckpointLabel = cfg.ReplicateCheckpoint(k)
		}
		if cfg.ReplicateFaults != nil {
			if plan := cfg.ReplicateFaults(k); plan != nil {
				rcfg.Faults = plan
			}
		}
		if cfg.MaxRestarts > 0 {
			pol := supervise.Policy{MaxRestarts: cfg.MaxRestarts, SegmentEvery: cfg.SegmentEvery}
			res.Runs[k], _, res.Errors[k] = supervise.RunParallel(rcfg, pol)
			return
		}
		res.Runs[k], res.Errors[k] = parallel.Run(rcfg)
	})
	res.WallClock = time.Since(start)
	var mets []fitness.Metrics
	for k, r := range res.Runs {
		if res.Errors[k] != nil || (cfg.Skip != nil && cfg.Skip(k)) {
			continue
		}
		mets = append(mets, r.Metrics)
	}
	res.Metrics = mergeMetrics(mets)
	return res, firstReplicateError(res.Errors, res.Seeds)
}

// runReplicates executes fn(0..n-1) on a pool of `workers` goroutines.
// Replicate indices are handed out in order; results land in
// index-addressed slices, so aggregation order never depends on scheduling.
func runReplicates(workers, n int, fn func(k int)) {
	if workers > n {
		workers = n
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for k := range idx {
				fn(k)
			}
		}()
	}
	for k := 0; k < n; k++ {
		idx <- k
	}
	close(idx)
	wg.Wait()
}

// completedSerial filters the serial results down to the replicates that
// ran and finished: not skipped, no permanent error.
func completedSerial(runs []population.Result, errs []error, skip func(int) bool) []population.Result {
	ok := make([]population.Result, 0, len(runs))
	for k, r := range runs {
		if errs[k] != nil || (skip != nil && skip(k)) {
			continue
		}
		ok = append(ok, r)
	}
	return ok
}

// firstReplicateError preserves the pre-degradation error contract: the
// returned error is the failure of the lowest-index failed replicate, or
// nil when every replicate completed.  Callers that want the partial
// ensemble inspect Errors on the (always returned) result instead.
func firstReplicateError(errs []error, seeds []uint64) error {
	for k, err := range errs {
		if err != nil {
			return fmt.Errorf("ensemble: replicate %d (seed %d): %w", k, seeds[k], err)
		}
	}
	return nil
}

// serialMetrics projects the per-run metrics out of serial results.
func serialMetrics(runs []population.Result) []fitness.Metrics {
	mets := make([]fitness.Metrics, len(runs))
	for k, r := range runs {
		mets[k] = r.Metrics
	}
	return mets
}

// mergeMetrics folds per-replicate metrics in replicate order.
func mergeMetrics(mets []fitness.Metrics) fitness.Metrics {
	var merged fitness.Metrics
	for k, m := range mets {
		if k == 0 {
			merged = m
			continue
		}
		merged.Merge(m)
	}
	return merged
}

// aggregateTrajectory folds the replicates' abundance samples into mean/std
// points.  Replicates of one configuration sample the same generations; a
// point is emitted only for sample indices where every replicate agrees on
// the generation, so a ragged edge degrades to a shorter trajectory rather
// than mixing generations.
func aggregateTrajectory(runs []population.Result) []TrajectoryPoint {
	if len(runs) == 0 {
		return nil
	}
	minLen := len(runs[0].Samples)
	for _, r := range runs[1:] {
		if len(r.Samples) < minLen {
			minLen = len(r.Samples)
		}
	}
	traj := make([]TrajectoryPoint, 0, minLen)
	for j := 0; j < minLen; j++ {
		gen := runs[0].Samples[j].Generation
		aligned := true
		var coop, wsls stats.Welford
		for _, r := range runs {
			s := r.Samples[j]
			if s.Generation != gen {
				aligned = false
				break
			}
			coop.Add(1 - s.MeanDefectingStates)
			wsls.Add(s.WSLSFraction)
		}
		if !aligned {
			break
		}
		traj = append(traj, TrajectoryPoint{
			Generation:     gen,
			Cooperation:    coop.Mean(),
			CooperationStd: coop.StdDev(),
			WSLS:           wsls.Mean(),
			WSLSStd:        wsls.StdDev(),
		})
	}
	return traj
}
