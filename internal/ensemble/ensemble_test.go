package ensemble

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"evogame/internal/faults"
	"evogame/internal/fitness"
	"evogame/internal/parallel"
	"evogame/internal/population"
	"evogame/internal/topology"
)

func TestReplicateSeed(t *testing.T) {
	const base = 2013
	if got := ReplicateSeed(base, 0); got != base {
		t.Fatalf("ReplicateSeed(base, 0) = %d, want the base seed %d", got, base)
	}
	seen := make(map[uint64]int)
	for k := 0; k < 64; k++ {
		s := ReplicateSeed(base, k)
		if prev, dup := seen[s]; dup {
			t.Fatalf("replicates %d and %d derived the same seed %d", prev, k, s)
		}
		seen[s] = k
	}
	// Deterministic: the same (base, k) always derives the same seed.
	if ReplicateSeed(base, 7) != ReplicateSeed(base, 7) {
		t.Fatal("ReplicateSeed is not deterministic")
	}
}

func TestResolveWorkers(t *testing.T) {
	if _, err := (Config{Replicates: 4, Workers: -1}).resolveWorkers(); err == nil {
		t.Fatal("negative Workers accepted")
	} else if !strings.Contains(err.Error(), "non-negative") {
		t.Fatalf("negative-Workers error %q does not explain the rule", err)
	}
	if _, err := (Config{Replicates: 0}).resolveWorkers(); err == nil {
		t.Fatal("zero Replicates accepted")
	}
	// Zero resolves to min(Replicates, GOMAXPROCS): never above Replicates.
	w, err := (Config{Replicates: 2}).resolveWorkers()
	if err != nil {
		t.Fatal(err)
	}
	if w < 1 || w > 2 {
		t.Fatalf("resolved workers = %d, want within [1, Replicates=2]", w)
	}
	// Explicit values win (clamped to Replicates, where extras would idle).
	w, err = (Config{Replicates: 8, Workers: 3}).resolveWorkers()
	if err != nil {
		t.Fatal(err)
	}
	if w != 3 {
		t.Fatalf("explicit Workers=3 resolved to %d", w)
	}
}

func testTopology(t *testing.T, sel string) topology.Spec {
	t.Helper()
	spec, err := topology.Parse(sel)
	if err != nil {
		t.Fatal(err)
	}
	return spec
}

// TestSerialSharedMatchesPrivateAndSolo is the core correctness claim of
// cross-run sharing: every replicate's trajectory is bit-identical whether
// the ensemble shares one cache store, keeps private caches, or the seed is
// run entirely solo — across noiseless and noisy runs and across
// topologies.  For noiseless runs the shared ensemble must also do strictly
// less game work (fewer misses) than the private one.
func TestSerialSharedMatchesPrivateAndSolo(t *testing.T) {
	const generations = 60
	for _, noise := range []float64{0, 0.05} {
		for _, topo := range []string{"wellmixed", "ring:4"} {
			noise, topo := noise, topo
			t.Run(fmt.Sprintf("noise%v/%s", noise, topo), func(t *testing.T) {
				base := population.Config{
					NumSSets: 16, AgentsPerSSet: 2, MemorySteps: 1, Rounds: 20,
					PCRate: 1, MutationRate: 0.25, Beta: 1, Seed: 59, Noise: noise,
					Topology: testTopology(t, topo), EvalMode: fitness.EvalCached,
					SampleEvery: 10,
				}
				cfg := Config{Replicates: 4, Workers: 2}
				shared, err := RunSerial(context.Background(), base, generations, cfg)
				if err != nil {
					t.Fatal(err)
				}
				cfg.PrivateCaches = true
				private, err := RunSerial(context.Background(), base, generations, cfg)
				if err != nil {
					t.Fatal(err)
				}
				for k := range shared.Runs {
					if shared.Seeds[k] != private.Seeds[k] {
						t.Fatalf("replicate %d: seed differs between shared and private ensembles", k)
					}
					solo := base
					solo.Seed = shared.Seeds[k]
					model, err := population.New(solo)
					if err != nil {
						t.Fatal(err)
					}
					want, err := model.Run(context.Background(), generations)
					if err != nil {
						t.Fatal(err)
					}
					// Ordered slice, not a map literal: comparison order (and
					// therefore which failure fires first) must be stable
					// under -shuffle=on.
					for _, c := range []struct {
						name string
						got  population.Result
					}{{"shared", shared.Runs[k]}, {"private", private.Runs[k]}} {
						name, got := c.name, c.got
						if fmt.Sprint(got.FinalStrategies) != fmt.Sprint(want.FinalStrategies) {
							t.Fatalf("replicate %d (%s cache): final strategies diverge from the solo run", k, name)
						}
						if fmt.Sprint(got.Samples) != fmt.Sprint(want.Samples) {
							t.Fatalf("replicate %d (%s cache): sampled trajectory diverges from the solo run", k, name)
						}
						if got.NatureStats != want.NatureStats {
							t.Fatalf("replicate %d (%s cache): event counts diverge from the solo run", k, name)
						}
					}
				}
				if fmt.Sprint(shared.Trajectory) != fmt.Sprint(private.Trajectory) {
					t.Fatal("aggregate trajectory depends on cache sharing")
				}
				if noise == 0 {
					if shared.Metrics.CacheMisses >= private.Metrics.CacheMisses {
						t.Fatalf("shared store saved no work: %d misses shared vs %d private",
							shared.Metrics.CacheMisses, private.Metrics.CacheMisses)
					}
					warm := int64(0)
					for _, r := range shared.Runs[1:] {
						warm += r.Metrics.CacheHits
					}
					if warm == 0 {
						t.Fatal("replicates after the first recorded zero cache hits against the warm store")
					}
				} else if shared.Metrics.CacheMisses != private.Metrics.CacheMisses {
					t.Fatal("noisy runs must bypass the shared store entirely")
				}
			})
		}
	}
}

// TestParallelSharedMatchesPrivateAndSolo mirrors the serial test for the
// distributed engine: replicate trajectories are bit-identical shared vs
// private vs solo, noiseless and noisy, well-mixed and ring.
func TestParallelSharedMatchesPrivateAndSolo(t *testing.T) {
	for _, noise := range []float64{0, 0.05} {
		for _, topo := range []string{"wellmixed", "ring:4"} {
			noise, topo := noise, topo
			t.Run(fmt.Sprintf("noise%v/%s", noise, topo), func(t *testing.T) {
				base := parallel.Config{
					Ranks: 3, NumSSets: 12, AgentsPerSSet: 2, MemorySteps: 1, Rounds: 20,
					PCRate: 1, MutationRate: 0.25, Beta: 1, Generations: 40, Seed: 59,
					Noise: noise, Topology: testTopology(t, topo),
					OptLevel: parallel.OptFusedFitness, EvalMode: fitness.EvalCached,
				}
				cfg := Config{Replicates: 3, Workers: 2}
				shared, err := RunParallel(base, cfg)
				if err != nil {
					t.Fatal(err)
				}
				cfg.PrivateCaches = true
				private, err := RunParallel(base, cfg)
				if err != nil {
					t.Fatal(err)
				}
				for k := range shared.Runs {
					solo := base
					solo.Seed = shared.Seeds[k]
					want, err := parallel.Run(solo)
					if err != nil {
						t.Fatal(err)
					}
					// Ordered slice, not a map literal: comparison order (and
					// therefore which failure fires first) must be stable
					// under -shuffle=on.
					for _, c := range []struct {
						name string
						got  parallel.Result
					}{{"shared", shared.Runs[k]}, {"private", private.Runs[k]}} {
						name, got := c.name, c.got
						if fmt.Sprint(got.FinalStrategies) != fmt.Sprint(want.FinalStrategies) {
							t.Fatalf("replicate %d (%s cache): final strategies diverge from the solo run", k, name)
						}
						if got.NatureStats != want.NatureStats {
							t.Fatalf("replicate %d (%s cache): event counts diverge from the solo run", k, name)
						}
					}
				}
				if noise == 0 && shared.Metrics.CacheMisses >= private.Metrics.CacheMisses {
					t.Fatalf("shared store saved no work: %d misses shared vs %d private",
						shared.Metrics.CacheMisses, private.Metrics.CacheMisses)
				}
			})
		}
	}
}

// TestEnsembleDeterministicAcrossWorkerCounts pins that the ensemble's
// results and aggregates do not depend on how many replicates run
// concurrently.
func TestEnsembleDeterministicAcrossWorkerCounts(t *testing.T) {
	base := population.Config{
		NumSSets: 16, AgentsPerSSet: 2, MemorySteps: 2, Rounds: 20,
		PCRate: 1, MutationRate: 0.25, Beta: 1, Seed: 7,
		EvalMode: fitness.EvalCached, SampleEvery: 10,
	}
	var first SerialResult
	for i, workers := range []int{1, 3} {
		res, err := RunSerial(context.Background(), base, 50, Config{Replicates: 5, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			first = res
			continue
		}
		for k := range res.Runs {
			if fmt.Sprint(res.Runs[k].FinalStrategies) != fmt.Sprint(first.Runs[k].FinalStrategies) {
				t.Fatalf("replicate %d differs between 1 and %d ensemble workers", k, workers)
			}
		}
		if fmt.Sprint(res.Trajectory) != fmt.Sprint(first.Trajectory) {
			t.Fatalf("aggregate trajectory differs between 1 and %d ensemble workers", workers)
		}
		if res.Metrics.PCEvents != first.Metrics.PCEvents || res.Metrics.Adoptions != first.Metrics.Adoptions ||
			res.Metrics.Mutations != first.Metrics.Mutations {
			t.Fatalf("merged event counts differ between 1 and %d ensemble workers", workers)
		}
	}
}

// TestSharedCacheHammer runs 8 full replicates concurrently against one
// shared PairCache store — the -race hammer of the ensemble layer — and
// checks every replicate still reproduces its solo trajectory.
func TestSharedCacheHammer(t *testing.T) {
	base := population.Config{
		NumSSets: 24, AgentsPerSSet: 2, MemorySteps: 2, Rounds: 20,
		PCRate: 1, MutationRate: 0.25, Beta: 1, Seed: 2013,
		EvalMode: fitness.EvalCached, SampleEvery: 0,
	}
	const generations = 30
	res, err := RunSerial(context.Background(), base, generations, Config{Replicates: 8, Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if res.EnsembleWorkers != 8 {
		t.Fatalf("resolved %d ensemble workers, want the explicit 8", res.EnsembleWorkers)
	}
	for k := range res.Runs {
		solo := base
		solo.Seed = res.Seeds[k]
		model, err := population.New(solo)
		if err != nil {
			t.Fatal(err)
		}
		want, err := model.Run(context.Background(), generations)
		if err != nil {
			t.Fatal(err)
		}
		if fmt.Sprint(res.Runs[k].FinalStrategies) != fmt.Sprint(want.FinalStrategies) {
			t.Fatalf("replicate %d diverged from its solo run under the concurrent hammer", k)
		}
		if res.Runs[k].NatureStats != want.NatureStats {
			t.Fatalf("replicate %d event counts diverged under the concurrent hammer", k)
		}
	}
}

// TestEnsembleRejectsInvalidConfigs covers the error paths: negative
// workers, checkpointing inside an ensemble, and a pre-set SharedCache.
func TestEnsembleRejectsInvalidConfigs(t *testing.T) {
	base := population.Config{
		NumSSets: 8, AgentsPerSSet: 2, MemorySteps: 1, Rounds: 10,
		PCRate: 1, Beta: 1, Seed: 1, EvalMode: fitness.EvalCached,
	}
	if _, err := RunSerial(context.Background(), base, 5, Config{Replicates: 2, Workers: -3}); err == nil {
		t.Fatal("negative ensemble Workers accepted")
	}
	ckpt := base
	ckpt.CheckpointPath = t.TempDir() + "/c.ckpt"
	if _, err := RunSerial(context.Background(), ckpt, 5, Config{Replicates: 2}); err == nil {
		t.Fatal("checkpointing inside an ensemble accepted")
	} else if !strings.Contains(err.Error(), "checkpoint") {
		t.Fatalf("checkpoint rejection %q does not name the problem", err)
	}
	pcfg := parallel.Config{
		Ranks: 3, NumSSets: 8, AgentsPerSSet: 2, MemorySteps: 1, Rounds: 10,
		PCRate: 1, Beta: 1, Generations: 5, Seed: 1, OptLevel: parallel.OptFusedFitness,
	}
	if _, err := RunParallel(pcfg, Config{Replicates: 2, Workers: -1}); err == nil {
		t.Fatal("negative ensemble Workers accepted by RunParallel")
	}
	bad := pcfg
	bad.CheckpointPath = t.TempDir() + "/c.ckpt"
	if _, err := RunParallel(bad, Config{Replicates: 2}); err == nil {
		t.Fatal("checkpointing inside a parallel ensemble accepted")
	}
}

// TestEnsembleChaosHammer is the fault-injection -race hammer: 8 serial
// replicates run concurrently against one shared pair-cache store while
// half of them take an injected mid-run crash and recover under the
// supervisor.  Every replicate — crashed or not — must still reproduce its
// solo, fault-free trajectory bit-identically.
func TestEnsembleChaosHammer(t *testing.T) {
	base := population.Config{
		NumSSets: 24, AgentsPerSSet: 2, MemorySteps: 2, Rounds: 20,
		PCRate: 1, MutationRate: 0.25, Beta: 1, Seed: 2013,
		EvalMode: fitness.EvalCached,
	}
	const generations = 30
	cfg := Config{
		Replicates:   8,
		Workers:      8,
		MaxRestarts:  2,
		SegmentEvery: 10,
		ReplicateFaults: func(k int) *faults.Plan {
			if k%2 != 0 {
				return nil
			}
			return faults.NewPlan(faults.Event{Kind: faults.Crash, Gen: 11 + k, Rank: 0})
		},
	}
	res, err := RunSerial(context.Background(), base, generations, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for k, rerr := range res.Errors {
		if rerr != nil {
			t.Fatalf("replicate %d failed permanently: %v", k, rerr)
		}
	}
	if res.Metrics.Restarts < 4 {
		t.Fatalf("merged Restarts = %d, want >= 4 (one per crashed replicate)", res.Metrics.Restarts)
	}
	for k := range res.Runs {
		solo := base
		solo.Seed = res.Seeds[k]
		model, err := population.New(solo)
		if err != nil {
			t.Fatal(err)
		}
		want, err := model.Run(context.Background(), generations)
		if err != nil {
			t.Fatal(err)
		}
		if fmt.Sprint(res.Runs[k].FinalStrategies) != fmt.Sprint(want.FinalStrategies) {
			t.Fatalf("replicate %d diverged from its solo run under the chaos hammer", k)
		}
		if res.Runs[k].NatureStats != want.NatureStats {
			t.Fatalf("replicate %d event counts diverged under the chaos hammer", k)
		}
	}
}

// TestEnsembleGracefulDegradationSerial pins the degradation contract: a
// permanently-failed replicate is reported at its index while the rest
// complete, aggregate, and still match their solo runs.
func TestEnsembleGracefulDegradationSerial(t *testing.T) {
	base := population.Config{
		NumSSets: 16, AgentsPerSSet: 2, MemorySteps: 1, Rounds: 20,
		PCRate: 1, MutationRate: 0.25, Beta: 1, Seed: 7,
		EvalMode: fitness.EvalCached, SampleEvery: 10,
	}
	const generations = 30
	const doomed = 1
	cfg := Config{
		Replicates:  4,
		MaxRestarts: 1,
		ReplicateFaults: func(k int) *faults.Plan {
			if k != doomed {
				return nil
			}
			// Count -1 = permanent: re-fires on every supervised relaunch,
			// so the replicate can never converge and must be given up on.
			return faults.NewPlan(faults.Event{Kind: faults.Crash, Gen: 5, Rank: 0, Count: -1})
		},
	}
	res, err := RunSerial(context.Background(), base, generations, cfg)
	if err == nil {
		t.Fatal("ensemble with a permanently-failed replicate returned nil error")
	}
	if !strings.Contains(err.Error(), "replicate 1") {
		t.Fatalf("error %q does not name the failed replicate", err)
	}
	if len(res.Errors) != 4 {
		t.Fatalf("Errors has %d slots, want one per replicate (4)", len(res.Errors))
	}
	for k, rerr := range res.Errors {
		if (rerr != nil) != (k == doomed) {
			t.Fatalf("Errors[%d] = %v", k, rerr)
		}
	}
	if len(res.Trajectory) == 0 {
		t.Fatal("survivors produced no aggregate trajectory")
	}
	for k := range res.Runs {
		if k == doomed {
			continue
		}
		solo := base
		solo.Seed = res.Seeds[k]
		model, err := population.New(solo)
		if err != nil {
			t.Fatal(err)
		}
		want, err := model.Run(context.Background(), generations)
		if err != nil {
			t.Fatal(err)
		}
		if fmt.Sprint(res.Runs[k].FinalStrategies) != fmt.Sprint(want.FinalStrategies) {
			t.Fatalf("surviving replicate %d diverged from its solo run", k)
		}
	}
	// The doomed replicate must not leak into the merged counters: merged
	// PCEvents equals the sum over survivors alone.
	var wantPC int
	for k := range res.Runs {
		if k != doomed {
			wantPC += res.Runs[k].Metrics.PCEvents
		}
	}
	if res.Metrics.PCEvents != wantPC {
		t.Fatalf("merged PCEvents = %d, want survivors-only sum %d", res.Metrics.PCEvents, wantPC)
	}
}

// TestEnsembleGracefulDegradationParallel mirrors the degradation contract
// on the distributed engine, with supervision disabled (MaxRestarts 0) so
// the injected crash is immediately permanent.
func TestEnsembleGracefulDegradationParallel(t *testing.T) {
	base := parallel.Config{
		Ranks: 3, NumSSets: 12, AgentsPerSSet: 2, MemorySteps: 1, Rounds: 20,
		PCRate: 1, MutationRate: 0.25, Beta: 1, Generations: 30, Seed: 59,
		OptLevel: parallel.OptFusedFitness,
	}
	const doomed = 2
	cfg := Config{
		Replicates: 4,
		ReplicateFaults: func(k int) *faults.Plan {
			if k != doomed {
				return nil
			}
			return faults.NewPlan(faults.Event{Kind: faults.Crash, Gen: 9, Rank: 1})
		},
	}
	res, err := RunParallel(base, cfg)
	if err == nil {
		t.Fatal("ensemble with a crashed, unsupervised replicate returned nil error")
	}
	if !strings.Contains(err.Error(), "replicate 2") {
		t.Fatalf("error %q does not name the failed replicate", err)
	}
	for k, rerr := range res.Errors {
		if (rerr != nil) != (k == doomed) {
			t.Fatalf("Errors[%d] = %v", k, rerr)
		}
	}
	for k := range res.Runs {
		if k == doomed {
			continue
		}
		solo := base
		solo.Seed = res.Seeds[k]
		want, err := parallel.Run(solo)
		if err != nil {
			t.Fatal(err)
		}
		if fmt.Sprint(res.Runs[k].FinalStrategies) != fmt.Sprint(want.FinalStrategies) {
			t.Fatalf("surviving replicate %d diverged from its solo run", k)
		}
		if res.Runs[k].NatureStats != want.NatureStats {
			t.Fatalf("surviving replicate %d event counts diverged", k)
		}
	}
}

// TestEnsembleSupervisedParallelRecovery pins supervised recovery on the
// distributed engine inside an ensemble: the crashed replicate recovers
// and every replicate matches its solo run.
func TestEnsembleSupervisedParallelRecovery(t *testing.T) {
	base := parallel.Config{
		Ranks: 3, NumSSets: 12, AgentsPerSSet: 2, MemorySteps: 1, Rounds: 20,
		PCRate: 1, MutationRate: 0.25, Beta: 1, Generations: 30, Seed: 59,
		OptLevel: parallel.OptFusedFitness,
	}
	cfg := Config{
		Replicates:   3,
		MaxRestarts:  2,
		SegmentEvery: 8,
		ReplicateFaults: func(k int) *faults.Plan {
			if k != 1 {
				return nil
			}
			return faults.NewPlan(faults.Event{Kind: faults.Crash, Gen: 13, Rank: 2})
		},
	}
	res, err := RunParallel(base, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.Restarts != 1 {
		t.Fatalf("merged Restarts = %d, want 1", res.Metrics.Restarts)
	}
	for k := range res.Runs {
		solo := base
		solo.Seed = res.Seeds[k]
		want, err := parallel.Run(solo)
		if err != nil {
			t.Fatal(err)
		}
		if fmt.Sprint(res.Runs[k].FinalStrategies) != fmt.Sprint(want.FinalStrategies) {
			t.Fatalf("replicate %d diverged from its solo run", k)
		}
		if res.Runs[k].NatureStats != want.NatureStats {
			t.Fatalf("replicate %d event counts diverged", k)
		}
	}
}
