// Package perfmodel implements the analytic performance model that
// extrapolates the framework's measured costs to Blue Gene scale.
//
// The paper's scaling studies run on up to 294,912 Blue Gene/P cores; this
// reproduction can execute the real distributed engine only up to a few
// thousand goroutine ranks on one host.  The performance model bridges the
// gap: it combines (a) the per-round game-kernel cost measured on the real
// Go implementation (via Calibrate) with (b) the communication cost model of
// the target machine (internal/cluster) and (c) the algorithm's per-
// generation communication pattern (two broadcasts, two point-to-point
// fitness returns on learning generations, and a strategy-payload broadcast
// on update generations) to predict per-generation time, and from it the
// weak-scaling efficiency (Figure 6a), strong-scaling speedup and efficiency
// (Figure 6b and Figure 4), and the SSets-per-processor ratio table
// (Table VI).
//
// The model reproduces the *shape* of the paper's results — near-perfect
// weak scaling, strong scaling that holds through ~16K processors and dips
// when processors out-number SSets, and the efficiency cliff when the
// SSet/processor ratio drops below ~2 — not the absolute Blue Gene wall
// clock numbers.
package perfmodel

import (
	"fmt"
	"math"
	"time"

	"evogame/internal/cluster"
	"evogame/internal/game"
	"evogame/internal/rng"
	"evogame/internal/strategy"
)

// Calibration holds the measured single-core game-kernel costs.
type Calibration struct {
	// SecondsPerRound maps memory depth to the measured cost of one IPD
	// round (one state lookup, two strategy lookups, one payoff
	// accumulation) on the host CPU.
	SecondsPerRound map[int]float64
}

// DefaultCalibration returns representative single-core round costs for the
// optimized kernel, useful when deterministic model output is needed without
// running the measurement (tests, documentation).  Values are in seconds per
// round and grow mildly with memory depth, mirroring the paper's Figure 5
// observation that deeper memory costs more per round (state identification)
// even though the move itself is a table lookup.
func DefaultCalibration() Calibration {
	return Calibration{SecondsPerRound: map[int]float64{
		1: 9e-9,
		2: 10e-9,
		3: 11e-9,
		4: 13e-9,
		5: 16e-9,
		6: 20e-9,
	}}
}

// Calibrate measures the real per-round cost of the optimized game kernel
// for every memory depth by timing games between random pure strategies.
// gamesPerDepth controls how many games are timed per depth (more games,
// less noise).
func Calibrate(gamesPerDepth int) (Calibration, error) {
	if gamesPerDepth < 1 {
		gamesPerDepth = 1
	}
	cal := Calibration{SecondsPerRound: make(map[int]float64, game.MaxMemorySteps)}
	src := rng.New(0xCA11B8A7E)
	for mem := 1; mem <= game.MaxMemorySteps; mem++ {
		eng, err := game.NewEngine(game.EngineConfig{
			Rounds:      game.DefaultRounds,
			MemorySteps: mem,
			StateMode:   game.StateRolling,
			AccumMode:   game.AccumLookup,
			// The model prices per-round kernel work, so the calibration must
			// replay every round; the cycle-closing kernel would execute only
			// a fraction of them and understate SecondsPerRound.
			Kernel: game.KernelFullReplay,
		})
		if err != nil {
			return Calibration{}, err
		}
		players := make([]*strategy.Pure, 8)
		for i := range players {
			players[i] = strategy.RandomPure(mem, src)
		}
		start := time.Now()
		rounds := 0
		for g := 0; g < gamesPerDepth; g++ {
			a := players[g%len(players)]
			b := players[(g*3+1)%len(players)]
			if _, err := eng.Play(a, b, nil); err != nil {
				return Calibration{}, err
			}
			rounds += eng.Rounds()
		}
		elapsed := time.Since(start).Seconds()
		if rounds == 0 || elapsed <= 0 {
			return Calibration{}, fmt.Errorf("perfmodel: calibration produced no measurable work for memory-%d", mem)
		}
		cal.SecondsPerRound[mem] = elapsed / float64(rounds)
	}
	return cal, nil
}

// secondsPerRound returns the calibrated per-round cost for the memory
// depth, falling back to the default calibration when missing.
func (c Calibration) secondsPerRound(mem int) float64 {
	if v, ok := c.SecondsPerRound[mem]; ok && v > 0 {
		return v
	}
	return DefaultCalibration().SecondsPerRound[mem]
}

// Model predicts per-generation run time for a given machine.
type Model struct {
	// Machine is the target system (BlueGeneP(), BlueGeneQ(), or a custom
	// configuration).
	Machine cluster.Machine
	// Calibration supplies the measured game-kernel cost.
	Calibration Calibration
	// RoundsPerGame is the number of IPD rounds per game (paper: 200).
	RoundsPerGame int
	// PCRate is the pairwise-comparison rate (paper: 0.1); it determines how
	// often the fitness returns and strategy-update payloads are exchanged.
	PCRate float64
	// MutationRate is the mutation rate (paper: 0.05); it determines how
	// often a strategy payload rides on the update broadcast.
	MutationRate float64
	// TasksPerNode is the MPI task density (4 in virtual-node mode on Blue
	// Gene/P, 32 on Blue Gene/Q as in the paper's runs).
	TasksPerNode int
	// ThreadsPerTask is the number of worker threads per task sharing its
	// game play (the hybrid OpenMP tier); 1 for flat MPI.
	ThreadsPerTask int
	// SplitOverhead is the fractional compute overhead incurred when an SSet
	// must be split across processors (R < 1): duplicated opponent-view
	// bookkeeping plus the extra partial-fitness reduction.
	SplitOverhead float64
	// SyncFraction is the per-generation synchronisation overhead of the
	// population-dynamics phase, expressed as a fraction of one SSet's game
	// play: while the Nature Agent waits for the selected SSets' fitness and
	// broadcasts the update, ranks with no additional local SSet to compute
	// sit idle.  With two or more SSets per processor this wait is hidden
	// behind the game play of the next SSet; below that it is exposed, which
	// is the efficiency cliff of Table VI.
	SyncFraction float64
}

// NewModel returns a Model with the paper's standard parameters for the
// given machine and calibration.
func NewModel(m cluster.Machine, cal Calibration) *Model {
	tasksPerNode := m.CoresPerNode
	if m.Name == "BlueGene/Q" {
		tasksPerNode = 32
	}
	return &Model{
		Machine:        m,
		Calibration:    cal,
		RoundsPerGame:  game.DefaultRounds,
		PCRate:         0.1,
		MutationRate:   0.05,
		TasksPerNode:   tasksPerNode,
		ThreadsPerTask: 1,
		SplitOverhead:  0.25,
		SyncFraction:   0.8,
	}
}

// GenerationTime returns the predicted compute and communication seconds of
// one generation on procs processors for a population of totalSSets, where
// every SSet plays opponentsPerSSet games of roundsPerGame rounds.
func (m *Model) GenerationTime(totalSSets, opponentsPerSSet, procs, memSteps int) (compute, comm float64, err error) {
	if procs < 2 {
		return 0, 0, fmt.Errorf("perfmodel: need at least 2 processors (Nature + SSets), got %d", procs)
	}
	if totalSSets < 1 || opponentsPerSSet < 0 {
		return 0, 0, fmt.Errorf("perfmodel: invalid population (%d SSets, %d opponents)", totalSSets, opponentsPerSSet)
	}
	if memSteps < 1 || memSteps > game.MaxMemorySteps {
		return 0, 0, fmt.Errorf("perfmodel: memory steps %d out of range", memSteps)
	}
	// The Nature Agent shares rank 0's processor; its bookkeeping is
	// negligible next to the game play, so every processor is modelled as an
	// SSet processor.
	ssetRanks := procs
	nodes, err := m.Machine.Nodes(procs, m.TasksPerNode)
	if err != nil {
		return 0, 0, err
	}

	// Compute: the games of the most loaded rank.
	perRound := m.Calibration.secondsPerRound(memSteps)
	gameSeconds := float64(m.RoundsPerGame) * perRound
	localSSets := float64(totalSSets) / float64(ssetRanks)
	maxLocal := math.Ceil(localSSets)
	threads := float64(m.ThreadsPerTask)
	if threads < 1 {
		threads = 1
	}
	ratio := float64(totalSSets) / float64(ssetRanks)
	if ratio >= 1 {
		compute = maxLocal * float64(opponentsPerSSet) * gameSeconds / threads
	} else {
		// Processors out-number SSets: the games of each SSet are split
		// across ~1/ratio processors, at the cost of SplitOverhead extra
		// work (duplicated setup, partial-fitness combination).
		compute = ratio * float64(opponentsPerSSet) * gameSeconds * (1 + m.SplitOverhead) / threads
	}

	// Communication per generation (the pattern of Figure 1(b)):
	//   - one broadcast of the PC selection (9 bytes)
	//   - on PC generations, two point-to-point fitness returns and a
	//     strategy payload in the update broadcast
	//   - one broadcast of the update (1 byte empty, or the strategy payload)
	//   - on mutation generations, a strategy payload in the update broadcast
	//   - when an SSet spans processors, an extra reduction combines the
	//     partial fitness values.
	net := m.Machine.Network
	stratBytes := strategy.EncodedSize(memSteps)
	comm = net.BroadcastTime(nodes, 9)
	comm += net.BroadcastTime(nodes, 1)
	comm += m.PCRate * (2*net.PointToPointTime(nodes, 8) + net.BroadcastTime(nodes, stratBytes))
	comm += m.MutationRate * net.BroadcastTime(nodes, stratBytes)
	if ratio < 1 {
		comm += m.PCRate * net.ReduceTime(nodes, 8)
	}
	return compute, comm, nil
}

// ScalingPoint is one entry of a scaling curve.
type ScalingPoint struct {
	Processors int
	// SecondsPerGeneration is the predicted wall-clock time of one
	// generation (compute + communication of the critical path).
	SecondsPerGeneration float64
	ComputeSeconds       float64
	CommSeconds          float64
	// Speedup is relative to the first point of the sweep (strong scaling
	// only; 0 for weak scaling).
	Speedup float64
	// Efficiency is the parallel efficiency in percent relative to the first
	// point of the sweep.
	Efficiency float64
}

// StrongScaling predicts the strong-scaling curve for a fixed population of
// totalSSets (every SSet playing every other SSet, as in the paper's strong
// scaling runs) over the given processor counts.  The first processor count
// is the baseline.
func (m *Model) StrongScaling(totalSSets, memSteps int, procs []int) ([]ScalingPoint, error) {
	if len(procs) == 0 {
		return nil, fmt.Errorf("perfmodel: empty processor list")
	}
	points := make([]ScalingPoint, 0, len(procs))
	var baseTime float64
	var baseProcs int
	for i, p := range procs {
		compute, comm, err := m.GenerationTime(totalSSets, totalSSets-1, p, memSteps)
		if err != nil {
			return nil, err
		}
		total := compute + comm
		pt := ScalingPoint{
			Processors:           p,
			SecondsPerGeneration: total,
			ComputeSeconds:       compute,
			CommSeconds:          comm,
		}
		// Speedup is normalised so the baseline point's speedup equals its
		// processor count, matching the paper's Figure 6(b) log-log axes
		// where the ideal line passes through (P, P).
		if i == 0 {
			baseTime, baseProcs = total, p
			pt.Speedup = float64(p)
			pt.Efficiency = 100
		} else {
			pt.Speedup = float64(baseProcs) * baseTime / total
			pt.Efficiency = 100 * baseTime * float64(baseProcs) / (total * float64(p))
		}
		points = append(points, pt)
	}
	return points, nil
}

// WeakScaling predicts the weak-scaling curve: every processor keeps
// ssetsPerProc SSets and the per-processor game workload is held constant at
// ssetsPerProc*opponentsPerSSet games per generation, as in the paper's weak
// scaling runs (4,096 SSets per processor).  Efficiency is relative to the
// first processor count.
func (m *Model) WeakScaling(ssetsPerProc, opponentsPerSSet, memSteps int, procs []int) ([]ScalingPoint, error) {
	if len(procs) == 0 {
		return nil, fmt.Errorf("perfmodel: empty processor list")
	}
	if ssetsPerProc < 1 {
		return nil, fmt.Errorf("perfmodel: ssetsPerProc must be positive")
	}
	points := make([]ScalingPoint, 0, len(procs))
	var baseTime float64
	for i, p := range procs {
		totalSSets := ssetsPerProc * (p - 1)
		compute, comm, err := m.GenerationTime(totalSSets, opponentsPerSSet, p, memSteps)
		if err != nil {
			return nil, err
		}
		total := compute + comm
		pt := ScalingPoint{
			Processors:           p,
			SecondsPerGeneration: total,
			ComputeSeconds:       compute,
			CommSeconds:          comm,
		}
		if i == 0 {
			baseTime = total
			pt.Efficiency = 100
		} else {
			pt.Efficiency = 100 * baseTime / total
		}
		points = append(points, pt)
	}
	return points, nil
}

// RatioPoint is one row of the SSets-per-processor table (Table VI).
type RatioPoint struct {
	Ratio      float64
	Efficiency float64
}

// RatioTable predicts the parallel efficiency as a function of the
// SSet-to-processor ratio R, at a fixed per-SSet workload.  The model
// captures the two effects the paper describes: with R < 1 processors idle
// or share split SSets, and with R < 2 the per-generation global
// synchronisation can no longer be overlapped with the game play of another
// local SSet.
func (m *Model) RatioTable(ratios []float64, opponentsPerSSet, memSteps, procs int) ([]RatioPoint, error) {
	if procs < 2 {
		return nil, fmt.Errorf("perfmodel: need at least 2 processors")
	}
	perRound := m.Calibration.secondsPerRound(memSteps)
	perSSet := float64(opponentsPerSSet) * float64(m.RoundsPerGame) * perRound
	nodes, err := m.Machine.Nodes(procs, m.TasksPerNode)
	if err != nil {
		return nil, err
	}
	net := m.Machine.Network
	stratBytes := strategy.EncodedSize(memSteps)
	commPerGen := net.BroadcastTime(nodes, 9) + net.BroadcastTime(nodes, 1) +
		m.PCRate*(2*net.PointToPointTime(nodes, 8)+net.BroadcastTime(nodes, stratBytes)) +
		m.MutationRate*net.BroadcastTime(nodes, stratBytes)

	out := make([]RatioPoint, 0, len(ratios))
	syncCost := m.SyncFraction * perSSet
	for _, r := range ratios {
		if r <= 0 {
			return nil, fmt.Errorf("perfmodel: ratio must be positive, got %v", r)
		}
		ideal := r * perSSet
		// Work is assigned in whole SSets, so the most loaded processor
		// carries ceil(R) of them...
		makespan := math.Ceil(r) * perSSet
		// ...and the population-dynamics synchronisation can be hidden
		// behind the game play of additional local SSets beyond the first.
		hidden := math.Max(0, (r-1)*perSSet)
		exposedComm := math.Max(0, syncCost+commPerGen-hidden)
		eff := 100 * ideal / (makespan + exposedComm)
		if eff > 100 {
			eff = 100
		}
		out = append(out, RatioPoint{Ratio: r, Efficiency: eff})
	}
	return out, nil
}

// MemorySweepPoint is one bar of the Figure 5 runtime breakdown.
type MemorySweepPoint struct {
	MemorySteps    int
	ComputeSeconds float64
	CommSeconds    float64
}

// MemorySweep predicts the per-run compute and communication seconds for
// memory depths 1..6 with the Figure 5 workload (a fixed population run for
// a fixed number of generations on a fixed processor count).
func (m *Model) MemorySweep(totalSSets, generations, procs int) ([]MemorySweepPoint, error) {
	out := make([]MemorySweepPoint, 0, game.MaxMemorySteps)
	for mem := 1; mem <= game.MaxMemorySteps; mem++ {
		compute, comm, err := m.GenerationTime(totalSSets, totalSSets-1, procs, mem)
		if err != nil {
			return nil, err
		}
		out = append(out, MemorySweepPoint{
			MemorySteps:    mem,
			ComputeSeconds: compute * float64(generations),
			CommSeconds:    comm * float64(generations),
		})
	}
	return out, nil
}
