package perfmodel

import (
	"testing"

	"evogame/internal/cluster"
)

func bgpModel() *Model {
	return NewModel(cluster.BlueGeneP(), DefaultCalibration())
}

func bgqModel() *Model {
	return NewModel(cluster.BlueGeneQ(), DefaultCalibration())
}

func TestDefaultCalibrationCoversAllDepths(t *testing.T) {
	cal := DefaultCalibration()
	prev := 0.0
	for mem := 1; mem <= 6; mem++ {
		v, ok := cal.SecondsPerRound[mem]
		if !ok || v <= 0 {
			t.Fatalf("missing calibration for memory-%d", mem)
		}
		if v < prev {
			t.Fatalf("per-round cost should not decrease with memory depth (mem %d)", mem)
		}
		prev = v
	}
}

func TestCalibrateMeasuresPositiveCosts(t *testing.T) {
	cal, err := Calibrate(3)
	if err != nil {
		t.Fatal(err)
	}
	for mem := 1; mem <= 6; mem++ {
		v := cal.SecondsPerRound[mem]
		if v <= 0 || v > 1e-3 {
			t.Fatalf("implausible calibrated per-round cost for memory-%d: %v s", mem, v)
		}
	}
	// Memory-six rounds must not be cheaper than memory-one rounds by more
	// than measurement noise (state handling only grows with depth).
	if cal.SecondsPerRound[6] < cal.SecondsPerRound[1]*0.5 {
		t.Fatalf("memory-six rounds (%v) implausibly cheaper than memory-one (%v)",
			cal.SecondsPerRound[6], cal.SecondsPerRound[1])
	}
}

func TestCalibrationFallback(t *testing.T) {
	empty := Calibration{}
	if empty.secondsPerRound(3) != DefaultCalibration().SecondsPerRound[3] {
		t.Fatal("missing calibration should fall back to the default")
	}
}

func TestGenerationTimeValidation(t *testing.T) {
	m := bgpModel()
	if _, _, err := m.GenerationTime(100, 99, 1, 1); err == nil {
		t.Fatal("accepted a single processor")
	}
	if _, _, err := m.GenerationTime(0, 10, 16, 1); err == nil {
		t.Fatal("accepted an empty population")
	}
	if _, _, err := m.GenerationTime(100, 99, 16, 9); err == nil {
		t.Fatal("accepted an invalid memory depth")
	}
	if _, _, err := m.GenerationTime(100, 99, 10_000_000, 1); err == nil {
		t.Fatal("accepted more processors than the machine has")
	}
}

func TestGenerationTimeScalesDown(t *testing.T) {
	m := bgpModel()
	c1, _, err := m.GenerationTime(4096, 4095, 1024, 6)
	if err != nil {
		t.Fatal(err)
	}
	c2, _, err := m.GenerationTime(4096, 4095, 2048, 6)
	if err != nil {
		t.Fatal(err)
	}
	if c2 >= c1 {
		t.Fatalf("compute did not shrink with more processors: %v -> %v", c1, c2)
	}
}

func TestStrongScalingShapeMatchesFigure6b(t *testing.T) {
	// The paper: 32,768 SSets, memory-six, 99% efficiency through 16,384
	// processors, 82% at 262,144.
	m := bgpModel()
	procs := []int{1024, 2048, 8192, 16384, 262144}
	points, err := m.StrongScaling(32768, 6, procs)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != len(procs) {
		t.Fatalf("got %d points", len(points))
	}
	if points[0].Efficiency != 100 {
		t.Fatalf("baseline efficiency = %v", points[0].Efficiency)
	}
	for _, pt := range points[:4] {
		if pt.Efficiency < 98 {
			t.Fatalf("efficiency at %d processors = %.1f%%, want ~99%% (paper: linear scaling through 16K)",
				pt.Processors, pt.Efficiency)
		}
	}
	last := points[len(points)-1]
	if last.Efficiency < 70 || last.Efficiency > 92 {
		t.Fatalf("efficiency at 262,144 processors = %.1f%%, want a dip near the paper's 82%%", last.Efficiency)
	}
	// Speedup must be monotone and the last point sub-linear.
	for i := 1; i < len(points); i++ {
		if points[i].Speedup <= points[i-1].Speedup {
			t.Fatalf("speedup not monotone at %d processors", points[i].Processors)
		}
	}
	if last.Speedup >= float64(last.Processors) {
		t.Fatalf("speedup at the largest scale should be sub-linear: %v", last.Speedup)
	}
	if points[0].Speedup != float64(procs[0]) {
		t.Fatalf("baseline speedup should equal its processor count, got %v", points[0].Speedup)
	}
}

func TestStrongScalingTimeDecreases(t *testing.T) {
	m := bgpModel()
	points, err := m.StrongScaling(32768, 6, []int{1024, 4096, 16384})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(points); i++ {
		if points[i].SecondsPerGeneration >= points[i-1].SecondsPerGeneration {
			t.Fatalf("per-generation time did not decrease at %d processors", points[i].Processors)
		}
	}
}

func TestWeakScalingShapeMatchesFigure6a(t *testing.T) {
	// The paper: 4,096 SSets per processor, memory-six, >=99% efficiency up
	// to 294,912 Blue Gene/P processors.
	m := bgpModel()
	procs := []int{1024, 4096, 16384, 65536, 294912}
	points, err := m.WeakScaling(4096, 4096, 6, procs)
	if err != nil {
		t.Fatal(err)
	}
	for _, pt := range points {
		if pt.Efficiency < 99 {
			t.Fatalf("weak scaling efficiency at %d processors = %.2f%%, want >= 99%%", pt.Processors, pt.Efficiency)
		}
		if pt.Efficiency > 100.0001 {
			t.Fatalf("weak scaling efficiency exceeds 100%%: %v", pt.Efficiency)
		}
	}
	// Per-generation time should stay essentially flat (the paper reports a
	// fluctuation of at most one second over the full sweep).
	base := points[0].SecondsPerGeneration
	last := points[len(points)-1].SecondsPerGeneration
	if last > base*1.01 {
		t.Fatalf("weak scaling time grew by more than 1%%: %v -> %v", base, last)
	}
}

func TestWeakScalingOnBlueGeneQ(t *testing.T) {
	// The paper's BG/Q runs reach 16,384 tasks (512 nodes x 32 tasks).
	m := bgqModel()
	points, err := m.WeakScaling(4096, 4096, 6, []int{1024, 4096, 16384})
	if err != nil {
		t.Fatal(err)
	}
	for _, pt := range points {
		if pt.Efficiency < 99 {
			t.Fatalf("BG/Q weak scaling efficiency at %d = %.2f%%", pt.Processors, pt.Efficiency)
		}
	}
}

func TestWeakScalingValidation(t *testing.T) {
	m := bgpModel()
	if _, err := m.WeakScaling(0, 10, 1, []int{16}); err == nil {
		t.Fatal("accepted zero SSets per processor")
	}
	if _, err := m.WeakScaling(10, 10, 1, nil); err == nil {
		t.Fatal("accepted an empty processor list")
	}
	if _, err := m.StrongScaling(100, 1, nil); err == nil {
		t.Fatal("accepted an empty processor list")
	}
}

func TestRatioTableShapeMatchesTableVI(t *testing.T) {
	// Table VI: parallel efficiency is poor when processors out-number SSets
	// (R <= 1) and essentially perfect once each processor has at least two
	// SSets to overlap the global synchronisation with.
	m := bgpModel()
	ratios := []float64{0.5, 1, 2, 3, 4, 5, 6, 7, 8}
	points, err := m.RatioTable(ratios, 2048, 6, 2048)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != len(ratios) {
		t.Fatalf("got %d points", len(points))
	}
	byRatio := map[float64]float64{}
	for _, p := range points {
		byRatio[p.Ratio] = p.Efficiency
		if p.Efficiency <= 0 || p.Efficiency > 100 {
			t.Fatalf("efficiency out of range at R=%v: %v", p.Ratio, p.Efficiency)
		}
	}
	if byRatio[0.5] > 65 {
		t.Fatalf("R=0.5 efficiency = %.1f%%, want a severe drop (paper: 50%%)", byRatio[0.5])
	}
	if byRatio[1] > 75 {
		t.Fatalf("R=1 efficiency = %.1f%%, want a drop (paper: 55%%)", byRatio[1])
	}
	if byRatio[2] < 95 {
		t.Fatalf("R=2 efficiency = %.1f%%, want ~99.7%%", byRatio[2])
	}
	if byRatio[8] < 99 {
		t.Fatalf("R=8 efficiency = %.1f%%, want ~100%%", byRatio[8])
	}
	// Efficiency must be non-decreasing in R.
	for i := 1; i < len(points); i++ {
		if points[i].Efficiency+1e-9 < points[i-1].Efficiency {
			t.Fatalf("efficiency decreased from R=%v to R=%v", points[i-1].Ratio, points[i].Ratio)
		}
	}
}

func TestRatioTableValidation(t *testing.T) {
	m := bgpModel()
	if _, err := m.RatioTable([]float64{-1}, 100, 1, 64); err == nil {
		t.Fatal("accepted a negative ratio")
	}
	if _, err := m.RatioTable([]float64{1}, 100, 1, 1); err == nil {
		t.Fatal("accepted a single processor")
	}
}

func TestMemorySweepShapeMatchesFigure5(t *testing.T) {
	// Figure 5: 2,048 SSets, 20 generations, 2,048 processors; runtime rises
	// with memory depth and is dominated by computation, with communication
	// a small and roughly constant share.
	m := bgpModel()
	points, err := m.MemorySweep(2048, 20, 2048)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 6 {
		t.Fatalf("got %d memory depths", len(points))
	}
	for i := 1; i < len(points); i++ {
		if points[i].ComputeSeconds < points[i-1].ComputeSeconds {
			t.Fatalf("compute time decreased from memory-%d to memory-%d", points[i-1].MemorySteps, points[i].MemorySteps)
		}
	}
	for _, p := range points {
		if p.ComputeSeconds <= 0 || p.CommSeconds <= 0 {
			t.Fatalf("memory-%d has non-positive times: %+v", p.MemorySteps, p)
		}
		if p.CommSeconds > p.ComputeSeconds {
			t.Fatalf("memory-%d communication exceeds computation; Figure 5 shows compute-dominated runs", p.MemorySteps)
		}
	}
	// Memory-six must be visibly more expensive than memory-one.
	if points[5].ComputeSeconds < points[0].ComputeSeconds*1.5 {
		t.Fatalf("memory-six compute (%v) not sufficiently larger than memory-one (%v)",
			points[5].ComputeSeconds, points[0].ComputeSeconds)
	}
}

func TestThreadsReduceComputeTime(t *testing.T) {
	m := bgqModel()
	serial, _, err := m.GenerationTime(4096, 4095, 1024, 6)
	if err != nil {
		t.Fatal(err)
	}
	m.ThreadsPerTask = 2
	threaded, _, err := m.GenerationTime(4096, 4095, 1024, 6)
	if err != nil {
		t.Fatal(err)
	}
	if threaded >= serial {
		t.Fatalf("2 threads per task did not reduce compute: %v vs %v", threaded, serial)
	}
}

func TestSplitOverheadAppliesBelowOneSSetPerProc(t *testing.T) {
	m := bgpModel()
	// 1,024 SSets on 4,096 processors: R = 0.25.
	compute, _, err := m.GenerationTime(1024, 1023, 4096, 6)
	if err != nil {
		t.Fatal(err)
	}
	ideal := 1024.0 / 4096.0 * 1023 * 200 * DefaultCalibration().SecondsPerRound[6]
	if compute <= ideal {
		t.Fatalf("split SSets should cost more than the ideal division: %v vs %v", compute, ideal)
	}
}

func BenchmarkStrongScalingSweep(b *testing.B) {
	m := bgpModel()
	procs := []int{1024, 2048, 4096, 8192, 16384, 32768, 65536, 131072, 262144}
	for i := 0; i < b.N; i++ {
		if _, err := m.StrongScaling(32768, 6, procs); err != nil {
			b.Fatal(err)
		}
	}
}
