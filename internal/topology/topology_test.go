package topology

import (
	"fmt"
	"reflect"
	"testing"
)

// buildAll returns one built graph per registered family at the given size,
// using parameters that exercise the non-default paths.
func buildAll(t *testing.T, n int, seed uint64) map[string]Graph {
	t.Helper()
	out := make(map[string]Graph)
	for _, sel := range []string{"wellmixed", "ring:4", "torus:vonneumann", "torus:moore", "smallworld:4:0.3"} {
		spec, err := Parse(sel)
		if err != nil {
			t.Fatalf("Parse(%q): %v", sel, err)
		}
		g, err := spec.Build(n, seed)
		if err != nil {
			t.Fatalf("Build(%q, n=%d): %v", sel, n, err)
		}
		out[sel] = g
	}
	return out
}

func TestGraphInvariants(t *testing.T) {
	for _, n := range []int{8, 32, 100, 127} {
		for sel, g := range buildAll(t, n, 2013) {
			if g.Len() != n {
				t.Fatalf("%s: Len() = %d, want %d", sel, g.Len(), n)
			}
			for i := 0; i < n; i++ {
				deg := g.Degree(i)
				if deg < 1 {
					t.Fatalf("%s n=%d: SSet %d has degree %d", sel, n, i, deg)
				}
				prev := -1
				for k := 0; k < deg; k++ {
					j := g.Neighbor(i, k)
					if j <= prev {
						t.Fatalf("%s n=%d: neighbors of %d not strictly ascending", sel, n, i)
					}
					prev = j
					if j == i {
						t.Fatalf("%s n=%d: self-loop at %d", sel, n, i)
					}
					if j < 0 || j >= n {
						t.Fatalf("%s n=%d: neighbor %d of %d out of range", sel, n, j, i)
					}
					if !g.Adjacent(i, j) || !g.Adjacent(j, i) {
						t.Fatalf("%s n=%d: edge (%d,%d) not symmetric under Adjacent", sel, n, i, j)
					}
				}
			}
		}
	}
}

// TestDeterministicPerSeed is the reproducibility contract: the same
// (spec, n, seed) triple must always yield the identical graph — that is
// what lets every rank of the distributed engine rebuild it independently.
func TestDeterministicPerSeed(t *testing.T) {
	for sel, g1 := range buildAll(t, 64, 42) {
		g2 := buildAll(t, 64, 42)[sel]
		for i := 0; i < 64; i++ {
			if !reflect.DeepEqual(Neighbors(g1, i), Neighbors(g2, i)) {
				t.Fatalf("%s: neighbors of %d differ between two builds with the same seed", sel, i)
			}
		}
	}
	// Different seeds must change the randomized family (small-world) and
	// must not change the deterministic lattices.
	a, err := must(Parse("smallworld:4:0.5")).Build(128, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := must(Parse("smallworld:4:0.5")).Build(128, 2)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := 0; i < 128 && same; i++ {
		same = reflect.DeepEqual(Neighbors(a, i), Neighbors(b, i))
	}
	if same {
		t.Error("smallworld: two different seeds produced the identical graph")
	}
	r1, _ := must(Parse("ring:4")).Build(64, 1)
	r2, _ := must(Parse("ring:4")).Build(64, 99)
	for i := 0; i < 64; i++ {
		if !reflect.DeepEqual(Neighbors(r1, i), Neighbors(r2, i)) {
			t.Fatalf("ring: seed changed a deterministic lattice at %d", i)
		}
	}
}

func must(s Spec, err error) Spec {
	if err != nil {
		panic(err)
	}
	return s
}

func TestCompleteGraph(t *testing.T) {
	g, err := Spec{}.Build(10, 7)
	if err != nil {
		t.Fatal(err)
	}
	if !g.Complete() || g.Name() != "wellmixed" {
		t.Fatalf("zero spec built %q complete=%v, want the well-mixed graph", g.Name(), g.Complete())
	}
	for i := 0; i < 10; i++ {
		if g.Degree(i) != 9 {
			t.Fatalf("complete: degree of %d = %d, want 9", i, g.Degree(i))
		}
		want := make([]int, 0, 9)
		for j := 0; j < 10; j++ {
			if j != i {
				want = append(want, j)
			}
		}
		if got := Neighbors(g, i); !reflect.DeepEqual(got, want) {
			t.Fatalf("complete: neighbors of %d = %v, want %v", i, got, want)
		}
	}
	if g.Adjacent(3, 3) {
		t.Error("complete: Adjacent(3,3) = true")
	}
}

func TestRingStructure(t *testing.T) {
	g, err := must(Parse("ring:4")).Build(10, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := Neighbors(g, 0); !reflect.DeepEqual(got, []int{1, 2, 8, 9}) {
		t.Fatalf("ring:4 neighbors of 0 = %v, want [1 2 8 9]", got)
	}
	if Edges(g) != 10*4/2 {
		t.Fatalf("ring:4 over 10 SSets has %d edges, want 20", Edges(g))
	}
}

func TestTorusStructure(t *testing.T) {
	// 12 = 3x4 torus.
	g, err := must(Parse("torus")).Build(12, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Cell 0 = (row 0, col 0): up (2,0)=8, down (1,0)=4, left (0,3)=3, right (0,1)=1.
	if got := Neighbors(g, 0); !reflect.DeepEqual(got, []int{1, 3, 4, 8}) {
		t.Fatalf("torus vonneumann neighbors of 0 = %v, want [1 3 4 8]", got)
	}
	m, err := must(Parse("torus:moore")).Build(12, 0)
	if err != nil {
		t.Fatal(err)
	}
	if m.Degree(0) != 8 {
		t.Fatalf("torus moore degree = %d, want 8", m.Degree(0))
	}
	// A prime size degenerates to a 1xN torus and must still be a valid graph.
	p, err := must(Parse("torus")).Build(13, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 13; i++ {
		if p.Degree(i) != 2 {
			t.Fatalf("1x13 torus degree of %d = %d, want 2 (ring)", i, p.Degree(i))
		}
	}
}

func TestSmallWorldKeepsDegreeFloor(t *testing.T) {
	g, err := must(Parse("smallworld:6:1")).Build(200, 3)
	if err != nil {
		t.Fatal(err)
	}
	minDeg, total := 200, 0
	for i := 0; i < 200; i++ {
		d := g.Degree(i)
		total += d
		if d < minDeg {
			minDeg = d
		}
	}
	// Every node originates degree/2 edges that rewiring never detaches
	// from it, so the minimum degree is at least 3 even at p=1.
	if minDeg < 3 {
		t.Fatalf("smallworld p=1: minimum degree %d < 3", minDeg)
	}
	if total != 200*6 {
		t.Fatalf("smallworld rewiring changed the edge count: total degree %d, want %d", total, 200*6)
	}
}

func TestParseAndCanonicalString(t *testing.T) {
	for sel, want := range map[string]string{
		"":                 "wellmixed",
		"wellmixed":        "wellmixed",
		"ring":             "ring:4",
		"ring:8":           "ring:8",
		"torus":            "torus:vonneumann",
		"torus:moore":      "torus:moore",
		"smallworld":       "smallworld:4:0.1",
		"smallworld:6:0.2": "smallworld:6:0.2",
	} {
		spec, err := Parse(sel)
		if err != nil {
			t.Fatalf("Parse(%q): %v", sel, err)
		}
		if spec.String() != want {
			t.Errorf("Parse(%q).String() = %q, want %q", sel, spec.String(), want)
		}
		// The canonical rendering must round-trip (it is the checkpoint identity).
		again, err := Parse(spec.String())
		if err != nil || again.String() != want {
			t.Errorf("canonical %q did not round-trip: %q, %v", want, again.String(), err)
		}
	}
	for _, bad := range []string{
		"hypercube", "ring:3", "ring:0", "ring:x", "torus:hex", "smallworld:4:2",
		"wellmixed:2", "ring:4:4", "smallworld:4:0.1:9",
	} {
		spec, err := Parse(bad)
		if err == nil {
			if _, berr := spec.Build(16, 0); berr == nil {
				t.Errorf("Parse(%q) and Build both accepted an invalid selection", bad)
			}
		}
	}
	if got := Names(); len(got) < 4 {
		t.Fatalf("Names() = %v, want at least the 4 built-ins", got)
	}
	if _, err := Lookup("wellmixed"); err != nil {
		t.Fatal(err)
	}
	if Syntax("ring") == "" || Syntax("smallworld") == "" {
		t.Error("Syntax returned an empty help string")
	}
}

func TestDegreeTooLargeRejected(t *testing.T) {
	if _, err := must(Parse("ring:8")).Build(6, 0); err == nil {
		t.Error("ring:8 over 6 SSets accepted (max degree is n-1)")
	}
	if _, err := (Spec{}).Build(1, 0); err == nil {
		t.Error("Build accepted n=1")
	}
}

func ExampleParse() {
	spec, _ := Parse("ring:6")
	g, _ := spec.Build(12, 2013)
	fmt.Println(g.Name(), g.Degree(0), Neighbors(g, 0))
	// Output: ring:6 6 [1 2 3 9 10 11]
}
