package topology

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"

	"evogame/internal/rng"
)

// Torus neighborhood names accepted by the "torus" spec.
const (
	// NeighborhoodVonNeumann links each lattice cell to its four orthogonal
	// neighbors (up, down, left, right), the default torus neighborhood.
	NeighborhoodVonNeumann = "vonneumann"
	// NeighborhoodMoore additionally links the four diagonal neighbors.
	NeighborhoodMoore = "moore"
)

// Default parameter values filled in when a spec string omits them.
const (
	// DefaultDegree is the lattice degree of "ring" and "smallworld" when
	// the spec string does not name one.
	DefaultDegree = 4
	// DefaultRewire is the Watts–Strogatz rewiring probability of
	// "smallworld" when the spec string does not name one.
	DefaultRewire = 0.1
)

// buildFunc constructs a graph over n SSets from a fully resolved spec,
// drawing any randomness (only the small-world rewiring uses it) from src.
type buildFunc func(spec Spec, n int, src *rng.Source) (Graph, error)

// Spec is a resolved topology selection: a registry name plus the
// parameters the named family takes.  The zero value selects the
// well-mixed population, which keeps zero-valued engine configurations
// bit-identical to the pre-topology engines.
type Spec struct {
	// Name is the registry key ("wellmixed", "ring", "torus", "smallworld").
	// Empty selects "wellmixed".
	Name string
	// Title is a short human description of the family.
	Title string
	// Degree is the lattice degree of "ring" and "smallworld" (even, >= 2).
	// Ignored by the other families.
	Degree int
	// Neighborhood selects the "torus" neighborhood, NeighborhoodVonNeumann
	// or NeighborhoodMoore.  Ignored by the other families.
	Neighborhood string
	// Rewire is the "smallworld" Watts–Strogatz rewiring probability in
	// [0, 1].  Ignored by the other families.
	Rewire float64

	build buildFunc
}

// String returns the canonical spec string ("wellmixed", "ring:4",
// "torus:moore", "smallworld:4:0.1").  Parse(s.String()) reproduces the
// spec, and the rendering is the topology identity recorded in checkpoints.
func (s Spec) String() string {
	switch s.Name {
	case "", "wellmixed":
		return "wellmixed"
	case "ring":
		return fmt.Sprintf("ring:%d", s.Degree)
	case "torus":
		return "torus:" + s.Neighborhood
	case "smallworld":
		return fmt.Sprintf("smallworld:%d:%s", s.Degree, strconv.FormatFloat(s.Rewire, 'g', -1, 64))
	default:
		return s.Name
	}
}

// seedSalt decorrelates the topology construction stream from the engine
// streams derived from the same run seed (splitmix64's gamma constant).
const seedSalt = 0x9E3779B97F4A7C15

// Build constructs the spec's graph over n SSets, deterministically from
// the run seed: the same (spec, n, seed) triple always yields the same
// graph, so the serial engine, every rank of the distributed engine and any
// analysis tooling can each rebuild it independently.  A zero-valued spec
// builds the well-mixed (complete) graph.
func (s Spec) Build(n int, seed uint64) (Graph, error) {
	if n < 2 {
		return nil, fmt.Errorf("topology: need at least 2 SSets, got %d", n)
	}
	if s.Name == "" || s.Name == "wellmixed" {
		return complete{n: n}, nil
	}
	if s.build == nil {
		// A Spec assembled by hand rather than through Lookup/Parse: resolve
		// the builder from the registry by name.
		reg, err := Lookup(s.Name)
		if err != nil {
			return nil, err
		}
		s.build = reg.build
	}
	return s.build(s, n, rng.New(seed^seedSalt))
}

func buildWellMixed(_ Spec, n int, _ *rng.Source) (Graph, error) {
	return complete{n: n}, nil
}

var (
	specMu sync.RWMutex
	specs  = map[string]Spec{
		"wellmixed": {
			Name:  "wellmixed",
			Title: "complete graph: every SSet interacts with every other (the paper's model)",
			build: buildWellMixed,
		},
		"ring": {
			Name:   "ring",
			Title:  "one-dimensional ring lattice, k/2 nearest neighbors per side",
			Degree: DefaultDegree,
			build:  buildRing,
		},
		"torus": {
			Name:         "torus",
			Title:        "two-dimensional periodic lattice (near-square rows x cols factorization)",
			Neighborhood: NeighborhoodVonNeumann,
			build:        buildTorus,
		},
		"smallworld": {
			Name:   "smallworld",
			Title:  "Watts-Strogatz ring with random edge rewiring",
			Degree: DefaultDegree,
			Rewire: DefaultRewire,
			build:  buildSmallWorld,
		},
	}
)

// Register adds a topology family to the registry so it becomes addressable
// by name from the facade, the CLI and checkpoints.  The name must be
// unused and the spec must carry a builder registered via RegisterFunc.
func Register(s Spec, build func(Spec, int, *rng.Source) (Graph, error)) error {
	if s.Name == "" || build == nil {
		return fmt.Errorf("topology: cannot register an unnamed spec or nil builder")
	}
	if strings.Contains(s.Name, ":") {
		return fmt.Errorf("topology: spec name %q must not contain ':'", s.Name)
	}
	specMu.Lock()
	defer specMu.Unlock()
	if _, ok := specs[s.Name]; ok {
		return fmt.Errorf("topology: spec %q already registered", s.Name)
	}
	s.build = build
	specs[s.Name] = s
	return nil
}

// Lookup returns the registered topology family with the given name (no
// parameter suffix) carrying its default parameters.
func Lookup(name string) (Spec, error) {
	specMu.RLock()
	s, ok := specs[name]
	specMu.RUnlock()
	if !ok {
		return Spec{}, fmt.Errorf("topology: unknown topology %q (want one of %v)", name, Names())
	}
	return s, nil
}

// Names returns the sorted names of all registered topology families.
func Names() []string {
	specMu.RLock()
	defer specMu.RUnlock()
	names := make([]string, 0, len(specs))
	for name := range specs {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Syntax returns the parameter syntax accepted by Parse for the named
// family, for help texts ("ring[:degree]" and so on).
func Syntax(name string) string {
	switch name {
	case "ring":
		return "ring[:degree]"
	case "torus":
		return "torus[:vonneumann|moore]"
	case "smallworld":
		return "smallworld[:degree[:rewire-prob]]"
	default:
		return name
	}
}

// Parse resolves a topology selection string — a registry name with
// optional colon-separated parameters — to a Spec:
//
//	"" or "wellmixed"     the complete graph (the default)
//	"ring" or "ring:8"    ring lattice, optional even degree
//	"torus:moore"         torus, optional neighborhood name
//	"smallworld:6:0.2"    Watts-Strogatz, optional degree and rewire prob
func Parse(sel string) (Spec, error) {
	if sel == "" {
		sel = "wellmixed"
	}
	parts := strings.Split(sel, ":")
	spec, err := Lookup(parts[0])
	if err != nil {
		return Spec{}, err
	}
	args := parts[1:]
	switch spec.Name {
	case "wellmixed":
		if len(args) > 0 {
			return Spec{}, fmt.Errorf("topology: wellmixed takes no parameters, got %q", sel)
		}
	case "ring":
		if len(args) > 1 {
			return Spec{}, fmt.Errorf("topology: want %s, got %q", Syntax("ring"), sel)
		}
		if len(args) == 1 {
			deg, err := strconv.Atoi(args[0])
			if err != nil {
				return Spec{}, fmt.Errorf("topology: ring degree %q: %w", args[0], err)
			}
			spec.Degree = deg
		}
	case "torus":
		if len(args) > 1 {
			return Spec{}, fmt.Errorf("topology: want %s, got %q", Syntax("torus"), sel)
		}
		if len(args) == 1 {
			spec.Neighborhood = args[0]
		}
		if spec.Neighborhood != NeighborhoodVonNeumann && spec.Neighborhood != NeighborhoodMoore {
			return Spec{}, fmt.Errorf("topology: unknown torus neighborhood %q (want %s or %s)",
				spec.Neighborhood, NeighborhoodVonNeumann, NeighborhoodMoore)
		}
	case "smallworld":
		if len(args) > 2 {
			return Spec{}, fmt.Errorf("topology: want %s, got %q", Syntax("smallworld"), sel)
		}
		if len(args) >= 1 {
			deg, err := strconv.Atoi(args[0])
			if err != nil {
				return Spec{}, fmt.Errorf("topology: smallworld degree %q: %w", args[0], err)
			}
			spec.Degree = deg
		}
		if len(args) == 2 {
			p, err := strconv.ParseFloat(args[1], 64)
			if err != nil {
				return Spec{}, fmt.Errorf("topology: smallworld rewire probability %q: %w", args[1], err)
			}
			spec.Rewire = p
		}
	default:
		if len(args) > 0 {
			return Spec{}, fmt.Errorf("topology: %s takes no Parse parameters, got %q", spec.Name, sel)
		}
	}
	return spec, nil
}
