// Package topology provides the structured-population layer of the
// evolutionary dynamics: a registry of interaction graphs that restrict
// which Strategy Sets meet in game play and learning.
//
// The paper's model is well-mixed — every SSet plays every other SSet, and
// the Nature Agent draws comparison partners uniformly from the whole
// population.  That is the O(S²) wall the shared fitness subsystem
// (internal/fitness) attacks by caching; this package removes the wall by
// construction: an SSet's fitness is its summed payoff against its graph
// neighbors only, so a sparse topology makes every full evaluation O(S·k)
// games for degree k, and the Nature Agent draws the learner of a
// pairwise-comparison event from the teacher's neighborhood.  Structured
// populations also open a new family of dynamics — network reciprocity,
// where cooperators survive in games that eliminate them under well-mixed
// interaction by clustering into mutually supporting neighborhoods (see
// examples/lattice_cooperation).
//
// Built-in topologies (see Names, Lookup, Parse):
//
//   - "wellmixed" (default): the complete graph, bit-identical per seed to
//     the pre-topology engines.  It is represented virtually (no adjacency
//     storage), so the default costs nothing at any population size.
//   - "ring": a one-dimensional ring lattice where each SSet is linked to
//     the k/2 nearest SSets on each side ("ring:k", default k = 4).
//   - "torus": a two-dimensional periodic lattice over a near-square
//     rows×cols factorization of S, with the von Neumann (4-neighbor) or
//     Moore (8-neighbor) neighborhood ("torus:vonneumann" (default) or
//     "torus:moore").
//   - "smallworld": a Watts–Strogatz graph — the ring lattice of degree k
//     with each clockwise edge rewired to a uniform random target with
//     probability p ("smallworld:k:p", default k = 4, p = 0.1).
//
// Graphs are built deterministically from the run seed (the small-world
// rewiring consumes a dedicated stream derived from it), so every engine
// and every rank of the distributed engine reconstructs the identical graph
// independently, with no graph ever crossing the wire.  All built-in graphs
// are undirected (the neighbor relation is symmetric) with no self-loops
// and minimum degree one, which the topology tests enforce.
package topology

import (
	"fmt"
	"sort"

	"evogame/internal/rng"
)

// Graph is an interaction graph over SSet indices 0..Len()-1.  Neighbor
// lists are sorted ascending so that iteration order — and therefore the
// game-play and random-number-consumption order of the engines — is
// deterministic.  Implementations must be safe for concurrent readers; the
// engines never mutate a built graph.
type Graph interface {
	// Name returns the canonical spec string that built the graph (for
	// example "ring:4"), the identity recorded in checkpoints.
	Name() string
	// Len returns the number of SSets the graph spans.
	Len() int
	// Degree returns the number of neighbors of SSet i.
	Degree(i int) int
	// Neighbor returns the k-th neighbor of SSet i in ascending index
	// order, 0 <= k < Degree(i).
	Neighbor(i, k int) int
	// Adjacent reports whether SSets i and j are linked.  The relation is
	// symmetric and irreflexive for all built-in graphs.
	Adjacent(i, j int) bool
	// Complete reports whether the graph is the complete graph (the
	// well-mixed population).  The engines use it to keep the default
	// topology on the exact pre-topology code paths.
	Complete() bool
}

// Neighbors returns the neighbor indices of SSet i in ascending order.
func Neighbors(g Graph, i int) []int {
	deg := g.Degree(i)
	out := make([]int, deg)
	for k := 0; k < deg; k++ {
		out[k] = g.Neighbor(i, k)
	}
	return out
}

// Edges returns the number of undirected edges in the graph.
func Edges(g Graph) int {
	total := 0
	for i := 0; i < g.Len(); i++ {
		total += g.Degree(i)
	}
	return total / 2
}

// complete is the well-mixed population: every SSet is adjacent to every
// other.  It is virtual — Neighbor maps k directly to the k-th index of
// {0..n-1}\{i} — so the default topology stores nothing.
type complete struct{ n int }

func (c complete) Name() string   { return "wellmixed" }
func (c complete) Len() int       { return c.n }
func (c complete) Complete() bool { return true }

func (c complete) Degree(i int) int { return c.n - 1 }

func (c complete) Neighbor(i, k int) int {
	if k < i {
		return k
	}
	return k + 1
}

func (c complete) Adjacent(i, j int) bool {
	return i != j && i >= 0 && j >= 0 && i < c.n && j < c.n
}

// adjacency is a stored undirected graph with sorted neighbor lists.
type adjacency struct {
	name  string
	neigh [][]int
}

func (a *adjacency) Name() string   { return a.name }
func (a *adjacency) Len() int       { return len(a.neigh) }
func (a *adjacency) Complete() bool { return false }

func (a *adjacency) Degree(i int) int      { return len(a.neigh[i]) }
func (a *adjacency) Neighbor(i, k int) int { return a.neigh[i][k] }

func (a *adjacency) Adjacent(i, j int) bool {
	if i < 0 || i >= len(a.neigh) {
		return false
	}
	row := a.neigh[i]
	idx := sort.SearchInts(row, j)
	return idx < len(row) && row[idx] == j
}

// newAdjacency freezes an edge-set representation into an adjacency graph
// with sorted neighbor lists, verifying the structural invariants every
// engine relies on (symmetry, no self-loops, minimum degree one).
func newAdjacency(name string, n int, edges []map[int]bool) (*adjacency, error) {
	a := &adjacency{name: name, neigh: make([][]int, n)}
	for i := 0; i < n; i++ {
		row := make([]int, 0, len(edges[i]))
		for j := range edges[i] {
			if j == i {
				return nil, fmt.Errorf("topology: %s: self-loop at %d", name, i)
			}
			if !edges[j][i] {
				return nil, fmt.Errorf("topology: %s: asymmetric edge %d->%d", name, i, j)
			}
			row = append(row, j)
		}
		if len(row) == 0 {
			return nil, fmt.Errorf("topology: %s: SSet %d has no neighbors", name, i)
		}
		sort.Ints(row)
		a.neigh[i] = row
	}
	return a, nil
}

// buildRingEdges links each node to the deg/2 nearest nodes on each side of
// a ring of n nodes, deduplicating wrap-around overlaps for small n.
func buildRingEdges(n, deg int) []map[int]bool {
	edges := make([]map[int]bool, n)
	for i := range edges {
		edges[i] = make(map[int]bool, deg)
	}
	for i := 0; i < n; i++ {
		for d := 1; d <= deg/2; d++ {
			j := (i + d) % n
			if j == i {
				continue
			}
			edges[i][j] = true
			edges[j][i] = true
		}
	}
	return edges
}

func buildRing(spec Spec, n int, _ *rng.Source) (Graph, error) {
	if err := validateRingDegree(spec.Degree, n); err != nil {
		return nil, err
	}
	return newAdjacency(spec.String(), n, buildRingEdges(n, spec.Degree))
}

func validateRingDegree(deg, n int) error {
	if deg < 2 || deg%2 != 0 {
		return fmt.Errorf("topology: ring degree must be a positive even number, got %d", deg)
	}
	if deg > n-1 {
		return fmt.Errorf("topology: ring degree %d too large for %d SSets (max %d)", deg, n, n-1)
	}
	return nil
}

// torusDims returns the near-square rows×cols factorization of n used by
// the torus topology: rows is the largest divisor of n not exceeding
// sqrt(n).  A prime n degenerates to a 1×n torus, which the neighborhood
// construction collapses to a ring.
func torusDims(n int) (rows, cols int) {
	rows = 1
	for d := 1; d*d <= n; d++ {
		if n%d == 0 {
			rows = d
		}
	}
	return rows, n / rows
}

func buildTorus(spec Spec, n int, _ *rng.Source) (Graph, error) {
	moore := spec.Neighborhood == NeighborhoodMoore
	if !moore && spec.Neighborhood != NeighborhoodVonNeumann {
		return nil, fmt.Errorf("topology: unknown torus neighborhood %q (want %s or %s)",
			spec.Neighborhood, NeighborhoodVonNeumann, NeighborhoodMoore)
	}
	if n < 3 {
		return nil, fmt.Errorf("topology: torus needs at least 3 SSets, got %d", n)
	}
	rows, cols := torusDims(n)
	offsets := [][2]int{{-1, 0}, {1, 0}, {0, -1}, {0, 1}}
	if moore {
		offsets = append(offsets, [2]int{-1, -1}, [2]int{-1, 1}, [2]int{1, -1}, [2]int{1, 1})
	}
	edges := make([]map[int]bool, n)
	for i := range edges {
		edges[i] = make(map[int]bool, len(offsets))
	}
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			i := r*cols + c
			for _, off := range offsets {
				nr := ((r+off[0])%rows + rows) % rows
				nc := ((c+off[1])%cols + cols) % cols
				j := nr*cols + nc
				if j == i {
					// Wrap-around on a dimension of length 1 (or a diagonal
					// on a 1×n torus) can point back at the cell itself.
					continue
				}
				edges[i][j] = true
				edges[j][i] = true
			}
		}
	}
	return newAdjacency(spec.String(), n, edges)
}

// buildSmallWorld is the Watts–Strogatz construction: a ring lattice of
// degree k whose clockwise edges are each rewired with probability p to a
// uniform random non-adjacent target.  The edge keeps its origin node, so
// every node retains at least its k/2 clockwise stubs and the graph stays
// connected in practice for p well below 1.
func buildSmallWorld(spec Spec, n int, src *rng.Source) (Graph, error) {
	if err := validateRingDegree(spec.Degree, n); err != nil {
		return nil, err
	}
	if spec.Rewire < 0 || spec.Rewire > 1 {
		return nil, fmt.Errorf("topology: small-world rewiring probability %v outside [0,1]", spec.Rewire)
	}
	edges := buildRingEdges(n, spec.Degree)
	for i := 0; i < n; i++ {
		for d := 1; d <= spec.Degree/2; d++ {
			j := (i + d) % n
			if j == i || !edges[i][j] || !src.Bool(spec.Rewire) {
				continue
			}
			// A node adjacent to everyone else has no rewiring target.
			if len(edges[i]) >= n-1 {
				continue
			}
			target := src.Intn(n)
			for target == i || edges[i][target] {
				target = src.Intn(n)
			}
			delete(edges[i], j)
			delete(edges[j], i)
			edges[i][target] = true
			edges[target][i] = true
		}
	}
	return newAdjacency(spec.String(), n, edges)
}
