package game

import (
	"fmt"
	"math"
	"sort"
	"sync"
)

// Constraint is one inequality a payoff matrix must satisfy to be a valid
// instance of a game scenario.  Name renders the inequality in the canonical
// R/S/T/P terms (for example "T > R") so that validation failures can tell
// the user exactly which condition broke and with which values.
type Constraint struct {
	// Name is the inequality in R/S/T/P notation, e.g. "2R > T+S".
	Name string
	// Holds reports whether the matrix satisfies the inequality.
	Holds func(Matrix) bool
}

// Spec is a named two-player symmetric 2x2 game scenario: a canonical payoff
// matrix plus the ordering constraints that define the scenario's dilemma.
// The paper fixes one Spec — the Iterated Prisoner's Dilemma with
// f[R,S,T,P] = [3,0,4,1] — but every layer of the framework accepts any
// registered Spec, which is what opens non-PD workloads (Snowdrift,
// Stag Hunt, arbitrary 2x2 games) to both engines.
type Spec struct {
	// Name is the registry key and the stable identity recorded in
	// checkpoints and fitness-cache keys ("ipd", "snowdrift", ...).
	Name string
	// Title is a short human description of the scenario.
	Title string
	// Payoff is the scenario's canonical payoff matrix; callers may swap it
	// for any matrix that still satisfies Constraints via WithPayoff.
	Payoff Matrix
	// Constraints are the ordering conditions a matrix must satisfy to count
	// as an instance of this scenario; empty means any matrix is accepted
	// (the generic 2x2 game).
	Constraints []Constraint
}

// Validate checks m against the spec's constraints and, on failure, names
// the violated inequality together with the offending values.  Every spec —
// including the constraint-free generic game — rejects non-finite payoffs,
// which would silently poison fitness sums and adoption probabilities.
func (s Spec) Validate(m Matrix) error {
	for _, v := range []struct {
		name  string
		value float64
	}{{"R", m.Reward}, {"S", m.Sucker}, {"T", m.Temptation}, {"P", m.Punishment}} {
		if math.IsNaN(v.value) || math.IsInf(v.value, 0) {
			return fmt.Errorf("game: %s: payoff %s=%v is not finite", s.Name, v.name, v.value)
		}
	}
	for _, c := range s.Constraints {
		if !c.Holds(m) {
			return fmt.Errorf("game: %s: constraint %s violated by R=%v S=%v T=%v P=%v",
				s.Name, c.Name, m.Reward, m.Sucker, m.Temptation, m.Punishment)
		}
	}
	return nil
}

// WithPayoff returns a copy of the spec carrying the given payoff matrix,
// after checking that the matrix still satisfies the spec's constraints.
func (s Spec) WithPayoff(m Matrix) (Spec, error) {
	if err := s.Validate(m); err != nil {
		return Spec{}, err
	}
	s.Payoff = m
	return s, nil
}

// ID returns the canonical identity string of the spec instance: the
// scenario name plus the effective payoff values.  Two Specs with the same
// ID describe the same game, which is what the fitness subsystem keys its
// memoized results by.
func (s Spec) ID() string {
	return fmt.Sprintf("%s[R=%v S=%v T=%v P=%v]",
		s.Name, s.Payoff.Reward, s.Payoff.Sucker, s.Payoff.Temptation, s.Payoff.Punishment)
}

// IPD returns the paper's scenario: the Iterated Prisoner's Dilemma with
// f[R,S,T,P] = [3,0,4,1], requiring T > R > P > S (defection dominates a
// single shot) and 2R > T+S (mutual cooperation is collectively optimal in
// the repeated game).  This is the default game everywhere a Spec is left
// unset, keeping zero-value configurations identical to the pre-registry
// engines.
func IPD() Spec {
	return Spec{
		Name:   "ipd",
		Title:  "Iterated Prisoner's Dilemma",
		Payoff: Standard(),
		Constraints: []Constraint{
			{"T > R", func(m Matrix) bool { return m.Temptation > m.Reward }},
			{"R > P", func(m Matrix) bool { return m.Reward > m.Punishment }},
			{"P > S", func(m Matrix) bool { return m.Punishment > m.Sucker }},
			{"2R > T+S", func(m Matrix) bool { return 2*m.Reward > m.Temptation+m.Sucker }},
		},
	}
}

// Snowdrift returns the Snowdrift (Hawk-Dove / Chicken) scenario: T > R >
// S > P, so the best reply to a defector is to cooperate anyway and
// cooperation survives at equilibrium instead of collapsing as in the PD.
// The canonical matrix uses benefit b=4 and cost c=2: R = b - c/2, S = b - c,
// T = b, P = 0.
func Snowdrift() Spec {
	return Spec{
		Name:   "snowdrift",
		Title:  "Snowdrift (Hawk-Dove)",
		Payoff: Matrix{Reward: 3, Sucker: 2, Temptation: 4, Punishment: 0},
		Constraints: []Constraint{
			{"T > R", func(m Matrix) bool { return m.Temptation > m.Reward }},
			{"R > S", func(m Matrix) bool { return m.Reward > m.Sucker }},
			{"S > P", func(m Matrix) bool { return m.Sucker > m.Punishment }},
		},
	}
}

// StagHunt returns the Stag Hunt coordination scenario: R > T >= P > S, so
// mutual cooperation is the payoff-dominant equilibrium while defection is
// the risk-dominant one.
func StagHunt() Spec {
	return Spec{
		Name:   "staghunt",
		Title:  "Stag Hunt",
		Payoff: Matrix{Reward: 4, Sucker: 0, Temptation: 3, Punishment: 2},
		Constraints: []Constraint{
			{"R > T", func(m Matrix) bool { return m.Reward > m.Temptation }},
			{"T >= P", func(m Matrix) bool { return m.Temptation >= m.Punishment }},
			{"P > S", func(m Matrix) bool { return m.Punishment > m.Sucker }},
		},
	}
}

// Generic returns the unconstrained 2x2 scenario: any payoff matrix is
// accepted.  Its canonical payoff is the paper's PD matrix; callers are
// expected to swap in their own values with WithPayoff (or the facade's
// Payoff override).
func Generic() Spec {
	return Spec{
		Name:   "generic",
		Title:  "Generic 2x2 game",
		Payoff: Standard(),
	}
}

var (
	specMu    sync.RWMutex
	specsByID = map[string]Spec{
		"ipd":       IPD(),
		"snowdrift": Snowdrift(),
		"staghunt":  StagHunt(),
		"generic":   Generic(),
	}
)

// RegisterSpec adds a scenario to the registry so it becomes addressable by
// name from the facade, the CLI and checkpoints.  The spec's canonical
// payoff must satisfy its own constraints and the name must be unused.
func RegisterSpec(s Spec) error {
	if s.Name == "" {
		return fmt.Errorf("game: cannot register a spec with an empty name")
	}
	if err := s.Validate(s.Payoff); err != nil {
		return fmt.Errorf("game: spec %q has an invalid canonical payoff: %w", s.Name, err)
	}
	specMu.Lock()
	defer specMu.Unlock()
	if _, ok := specsByID[s.Name]; ok {
		return fmt.Errorf("game: spec %q already registered", s.Name)
	}
	specsByID[s.Name] = s
	return nil
}

// LookupSpec returns the registered scenario with the given name.
func LookupSpec(name string) (Spec, error) {
	specMu.RLock()
	s, ok := specsByID[name]
	specMu.RUnlock()
	if !ok {
		return Spec{}, fmt.Errorf("game: unknown game %q (want one of %v)", name, SpecNames())
	}
	return s, nil
}

// SpecNames returns the sorted names of all registered scenarios.
func SpecNames() []string {
	specMu.RLock()
	defer specMu.RUnlock()
	names := make([]string, 0, len(specsByID))
	for name := range specsByID {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
