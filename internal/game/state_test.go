package game

import (
	"testing"
	"testing/quick"

	"evogame/internal/rng"
)

func TestNumStates(t *testing.T) {
	want := map[int]int{1: 4, 2: 16, 3: 64, 4: 256, 5: 1024, 6: 4096}
	for mem, n := range want {
		if got := NumStates(mem); got != n {
			t.Errorf("NumStates(%d) = %d, want %d", mem, got, n)
		}
	}
}

func TestNumStatesPanicsOutOfRange(t *testing.T) {
	for _, mem := range []int{0, -1, 7} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NumStates(%d) did not panic", mem)
				}
			}()
			NumStates(mem)
		}()
	}
}

func TestRoundCode(t *testing.T) {
	cases := []struct {
		my, opp Move
		want    int
	}{
		{Cooperate, Cooperate, 0},
		{Cooperate, Defect, 1},
		{Defect, Cooperate, 2},
		{Defect, Defect, 3},
	}
	for _, tc := range cases {
		if got := RoundCode(tc.my, tc.opp); got != tc.want {
			t.Errorf("RoundCode(%s,%s) = %d, want %d", tc.my, tc.opp, got, tc.want)
		}
	}
}

func TestStateTableMemoryOne(t *testing.T) {
	// Table II of the paper: memory-one has exactly 4 states covering CC,
	// CD, DC, DD.
	tab := NewStateTable(1)
	if tab.NumStates() != 4 {
		t.Fatalf("memory-one table has %d states, want 4", tab.NumStates())
	}
	for i := 0; i < 4; i++ {
		row := tab.Row(i)
		if len(row) != 1 || int(row[0]) != i {
			t.Errorf("row %d = %v, want single code %d", i, row, i)
		}
	}
}

func TestStateTableRowsMatchPackedCodes(t *testing.T) {
	for mem := 1; mem <= 3; mem++ {
		tab := NewStateTable(mem)
		for i := 0; i < tab.NumStates(); i++ {
			row := tab.Row(i)
			packed := 0
			for r, code := range row {
				packed |= int(code) << (2 * uint(r))
			}
			if packed != i {
				t.Fatalf("memory-%d row %d packs to %d", mem, i, packed)
			}
		}
	}
}

func TestFindStateFindsEveryRow(t *testing.T) {
	tab := NewStateTable(2)
	for i := 0; i < tab.NumStates(); i++ {
		view := make([]uint8, 2)
		copy(view, tab.Row(i))
		if got := tab.FindState(view); got != i {
			t.Fatalf("FindState(row %d) = %d", i, got)
		}
	}
}

func TestFindStateBadViewLength(t *testing.T) {
	tab := NewStateTable(2)
	if got := tab.FindState([]uint8{0}); got != -1 {
		t.Fatalf("FindState with wrong view length returned %d, want -1", got)
	}
}

func TestHistoryInitialState(t *testing.T) {
	for mem := 1; mem <= MaxMemorySteps; mem++ {
		h := NewHistory(mem)
		if h.State() != InitialState {
			t.Errorf("memory-%d initial state = %d, want 0", mem, h.State())
		}
	}
}

func TestHistoryPushMemoryOne(t *testing.T) {
	h := NewHistory(1)
	h.Push(Defect, Cooperate)
	if h.State() != RoundCode(Defect, Cooperate) {
		t.Fatalf("state after (D,C) = %d, want %d", h.State(), RoundCode(Defect, Cooperate))
	}
	h.Push(Cooperate, Defect)
	if h.State() != RoundCode(Cooperate, Defect) {
		t.Fatalf("memory-one state did not forget older round: %d", h.State())
	}
}

func TestHistoryPushMemoryTwo(t *testing.T) {
	h := NewHistory(2)
	h.Push(Defect, Defect)    // round code 3
	h.Push(Cooperate, Defect) // round code 1, most recent
	// Most recent round occupies the low bits: state = 3<<2 | 1 = 13.
	if h.State() != 13 {
		t.Fatalf("state = %d, want 13", h.State())
	}
	view := h.View()
	if view[0] != 1 || view[1] != 3 {
		t.Fatalf("view = %v, want [1 3]", view)
	}
}

func TestHistoryReset(t *testing.T) {
	h := NewHistory(3)
	h.Push(Defect, Defect)
	h.Push(Defect, Cooperate)
	h.Reset()
	if h.State() != InitialState {
		t.Fatalf("state after Reset = %d", h.State())
	}
	for _, v := range h.View() {
		if v != 0 {
			t.Fatalf("view after Reset = %v", h.View())
		}
	}
}

func TestStateViaModesAgree(t *testing.T) {
	src := rng.New(42)
	for mem := 1; mem <= 4; mem++ {
		tab := NewStateTable(mem)
		h := NewHistory(mem)
		for step := 0; step < 200; step++ {
			rolling := h.StateVia(StateRolling, nil)
			linear := h.StateVia(StateLinearSearch, tab)
			if rolling != linear {
				t.Fatalf("memory-%d step %d: rolling=%d linear=%d", mem, step, rolling, linear)
			}
			h.Push(Move(src.Intn(2)), Move(src.Intn(2)))
		}
	}
}

func TestOpponentState(t *testing.T) {
	// Memory-one: my=D, opp=C (code 2) becomes my=C, opp=D (code 1) for the
	// opponent.
	if got := OpponentState(2, 1); got != 1 {
		t.Fatalf("OpponentState(2,1) = %d, want 1", got)
	}
	// Symmetric codes are fixed points.
	if got := OpponentState(0, 1); got != 0 {
		t.Fatalf("OpponentState(0,1) = %d, want 0", got)
	}
	if got := OpponentState(3, 1); got != 3 {
		t.Fatalf("OpponentState(3,1) = %d, want 3", got)
	}
}

func TestOpponentStateInvolution(t *testing.T) {
	for mem := 1; mem <= 3; mem++ {
		for s := 0; s < NumStates(mem); s++ {
			if got := OpponentState(OpponentState(s, mem), mem); got != s {
				t.Fatalf("memory-%d: OpponentState is not an involution at state %d", mem, s)
			}
		}
	}
}

func TestHistoriesStayMirrored(t *testing.T) {
	// If A's history is pushed with (a,b) and B's with (b,a) every round,
	// then B's state must always equal OpponentState(A's state).
	src := rng.New(7)
	for mem := 1; mem <= 4; mem++ {
		ha, hb := NewHistory(mem), NewHistory(mem)
		for step := 0; step < 100; step++ {
			if hb.State() != OpponentState(ha.State(), mem) {
				t.Fatalf("memory-%d step %d: views not mirrored", mem, step)
			}
			a, b := Move(src.Intn(2)), Move(src.Intn(2))
			ha.Push(a, b)
			hb.Push(b, a)
		}
	}
}

func TestStateString(t *testing.T) {
	// Memory-two state 13 = rounds [1,3]: older round DD then most recent CD.
	if got := StateString(13, 2); got != "DD|CD" {
		t.Fatalf("StateString(13,2) = %q, want \"DD|CD\"", got)
	}
	if got := StateString(0, 1); got != "CC" {
		t.Fatalf("StateString(0,1) = %q, want \"CC\"", got)
	}
}

func TestStateTableString(t *testing.T) {
	s := NewStateTable(1).String()
	if len(s) == 0 {
		t.Fatal("empty state table rendering")
	}
}

func TestStateModeAccumModeStrings(t *testing.T) {
	if StateLinearSearch.String() != "linear-search" || StateRolling.String() != "rolling" {
		t.Fatal("StateMode.String incorrect")
	}
	if StateMode(99).String() == "" {
		t.Fatal("unknown StateMode should still render")
	}
	if AccumBranching.String() != "branching" || AccumLookup.String() != "lookup" {
		t.Fatal("AccumMode.String incorrect")
	}
	if AccumMode(99).String() == "" {
		t.Fatal("unknown AccumMode should still render")
	}
}

// Property: for any random play sequence the rolling state always equals the
// linear-search state (the optimization of Figure 3 does not change results).
func TestQuickRollingEqualsLinear(t *testing.T) {
	tables := map[int]*StateTable{}
	for mem := 1; mem <= 4; mem++ {
		tables[mem] = NewStateTable(mem)
	}
	f := func(seed uint64, memSel uint8, steps uint8) bool {
		mem := int(memSel%4) + 1
		src := rng.New(seed)
		h := NewHistory(mem)
		for i := 0; i < int(steps); i++ {
			h.Push(Move(src.Intn(2)), Move(src.Intn(2)))
			if h.StateVia(StateRolling, nil) != h.StateVia(StateLinearSearch, tables[mem]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: OpponentState is an involution and preserves the state range.
func TestQuickOpponentStateInvolution(t *testing.T) {
	f := func(stateSel uint16, memSel uint8) bool {
		mem := int(memSel%MaxMemorySteps) + 1
		s := int(stateSel) % NumStates(mem)
		o := OpponentState(s, mem)
		return o >= 0 && o < NumStates(mem) && OpponentState(o, mem) == s
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkHistoryPushRolling(b *testing.B) {
	h := NewHistory(6)
	for i := 0; i < b.N; i++ {
		h.Push(Move(i&1), Move((i>>1)&1))
		_ = h.StateVia(StateRolling, nil)
	}
}

func BenchmarkFindStateLinearMemorySix(b *testing.B) {
	tab := NewStateTable(6)
	h := NewHistory(6)
	h.Push(Defect, Cooperate)
	h.Push(Cooperate, Defect)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = h.StateVia(StateLinearSearch, tab)
	}
}
