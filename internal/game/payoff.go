// Package game implements the two-player Iterated Prisoner's Dilemma (IPD)
// kernel at the heart of the framework: moves, the payoff matrix, memory-n
// game-state encoding, execution errors (noise), and the round loop that
// plays one strategy against another and returns the accumulated fitness.
//
// The package corresponds to the IPD() function of the paper's Section IV-C
// and the optimization levels of Figure 3: the state of the game after each
// round can be identified either with the paper's original linear search over
// a global state table or with an O(1) rolling state code, and the fitness
// can be accumulated either with a branching switch or with a fused payoff
// look-up table.
package game

import (
	"errors"
	"fmt"
	"math"
)

// Move is a single play in one round of the Prisoner's Dilemma.
type Move uint8

const (
	// Cooperate is the cooperative move, encoded as 0 as in the paper.
	Cooperate Move = 0
	// Defect is the defecting move, encoded as 1.
	Defect Move = 1
)

// String returns "C" or "D".
func (m Move) String() string {
	if m == Cooperate {
		return "C"
	}
	return "D"
}

// Flip returns the opposite move; it models an execution error.
func (m Move) Flip() Move {
	return m ^ 1
}

// Matrix is the Prisoner's Dilemma payoff matrix, expressed through the four
// canonical values Reward, Sucker, Temptation and Punishment (Table I of the
// paper).
type Matrix struct {
	Reward     float64 // both cooperate
	Sucker     float64 // I cooperate, opponent defects
	Temptation float64 // I defect, opponent cooperates
	Punishment float64 // both defect
}

// Standard returns the payoff matrix used throughout the paper's
// experiments: f[R,S,T,P] = [3,0,4,1].
func Standard() Matrix {
	return Matrix{Reward: 3, Sucker: 0, Temptation: 4, Punishment: 1}
}

// Validate checks the Prisoner's Dilemma conditions: T > R > P > S, which
// makes defection the dominant single-shot strategy, and 2R > T + S, which
// makes mutual cooperation collectively optimal in the repeated game.
// Validation of non-PD matrices is per-scenario: use Spec.Validate with the
// spec the matrix is meant to instantiate.
func (m Matrix) Validate() error {
	if err := IPD().Validate(m); err != nil {
		return fmt.Errorf("%w: %w", ErrNonPD, err)
	}
	return nil
}

// Payoff returns the payoff received by a player that plays my against an
// opponent that plays opp.
func (m Matrix) Payoff(my, opp Move) float64 {
	switch {
	case my == Cooperate && opp == Cooperate:
		return m.Reward
	case my == Cooperate && opp == Defect:
		return m.Sucker
	case my == Defect && opp == Cooperate:
		return m.Temptation
	default:
		return m.Punishment
	}
}

// Table returns the payoff indexed by the 2-bit outcome code my<<1|opp.
// This is the fused look-up representation used by the highest optimization
// level (the analogue of the paper's hand-coded fitness kernel).
func (m Matrix) Table() [4]float64 {
	return [4]float64{
		m.Reward,     // 00: C vs C
		m.Sucker,     // 01: C vs D
		m.Temptation, // 10: D vs C
		m.Punishment, // 11: D vs D
	}
}

// MaxPerRound returns the largest payoff a single player can earn in one
// round; used for normalising fitness and sizing accumulators.
func (m Matrix) MaxPerRound() float64 {
	max := m.Reward
	for _, v := range []float64{m.Sucker, m.Temptation, m.Punishment} {
		if v > max {
			max = v
		}
	}
	return max
}

// MinPerRound returns the smallest payoff a single player can earn in one
// round.
func (m Matrix) MinPerRound() float64 {
	min := m.Reward
	for _, v := range []float64{m.Sucker, m.Temptation, m.Punishment} {
		if v < min {
			min = v
		}
	}
	return min
}

// IntegerValued reports whether every payoff is an exact integer.  Integer
// matrices make every accumulated fitness sum an exactly-representable
// float64, which is what lets the incremental fitness mode's delta updates
// stay bit-identical to full re-evaluation; non-integer matrices fall back
// to the pair-cached mode.
func (m Matrix) IntegerValued() bool {
	for _, v := range []float64{m.Reward, m.Sucker, m.Temptation, m.Punishment} {
		if v != math.Trunc(v) {
			return false
		}
	}
	return true
}

// ErrNonPD is returned by helpers that require a valid Prisoner's Dilemma
// matrix when given one that violates the PD conditions.
var ErrNonPD = errors.New("game: matrix does not satisfy the Prisoner's Dilemma conditions")
