package game

import (
	"fmt"
	"strings"
)

// MaxMemorySteps is the largest memory depth supported by the framework.
// The paper shows memory-six (4096 states) is the largest that fits in the
// memory of a Blue Gene node; we keep the same ceiling so that strategy and
// state encodings stay within a comfortable integer range.
const MaxMemorySteps = 6

// NumStates returns the number of distinct game states for a memory-n
// strategy: 2^(2n) = 4^n (Section III-E).  It panics if memSteps is outside
// [1, MaxMemorySteps].
func NumStates(memSteps int) int {
	CheckMemorySteps(memSteps)
	return 1 << (2 * uint(memSteps))
}

// CheckMemorySteps panics if memSteps is outside the supported range.  The
// framework treats an invalid memory depth as a programming error rather
// than a runtime condition, mirroring how slice bounds are handled.
func CheckMemorySteps(memSteps int) {
	if memSteps < 1 || memSteps > MaxMemorySteps {
		panic(fmt.Sprintf("game: memory steps %d out of range [1,%d]", memSteps, MaxMemorySteps))
	}
}

// A game state for memory-n encodes the last n rounds of play from one
// player's perspective.  Round 0 (the most recent round) occupies the two
// least-significant bits; within a round the player's own move is the high
// bit and the opponent's move is the low bit:
//
//	state = Σ_{i=0}^{n-1} (my_i<<1 | opp_i) << (2*i)
//
// The all-cooperate history is therefore state 0, which is the initial state
// of every game (the paper arbitrarily seeds the first plays with
// cooperation).

// InitialState is the state corresponding to an all-cooperate history.
const InitialState = 0

// RoundCode packs one round of play into its 2-bit code.
func RoundCode(my, opp Move) int {
	return int(my)<<1 | int(opp)
}

// StateMode selects how the engine identifies the current game state after
// each round.  It is the axis of the paper's "Compiler"-level optimization
// in Figure 3: the original implementation searched a global table of
// states, the optimized one uses an O(1) rolling code.
type StateMode int

const (
	// StateLinearSearch reproduces the paper's original find_state: the
	// current view is compared against every row of the global state table.
	StateLinearSearch StateMode = iota
	// StateRolling updates the state code in O(1) per round.
	StateRolling
)

// String implements fmt.Stringer.
func (m StateMode) String() string {
	switch m {
	case StateLinearSearch:
		return "linear-search"
	case StateRolling:
		return "rolling"
	default:
		return fmt.Sprintf("StateMode(%d)", int(m))
	}
}

// StateTable is the globally defined list of potential game states for a
// given memory depth (the "global states" array of the paper's pseudo code).
// Row i of the table is the history whose packed code is i, stored as
// explicit per-round move pairs so that the linear-search path really does
// the work the paper's original implementation did.
type StateTable struct {
	memSteps int
	// rows[i][r] = RoundCode for round r (0 = most recent) of state i.
	rows [][]uint8
}

// NewStateTable builds the state table for the given memory depth.
func NewStateTable(memSteps int) *StateTable {
	CheckMemorySteps(memSteps)
	n := NumStates(memSteps)
	rows := make([][]uint8, n)
	backing := make([]uint8, n*memSteps)
	for i := 0; i < n; i++ {
		rows[i] = backing[i*memSteps : (i+1)*memSteps]
		for r := 0; r < memSteps; r++ {
			rows[i][r] = uint8((i >> (2 * uint(r))) & 3)
		}
	}
	return &StateTable{memSteps: memSteps, rows: rows}
}

// MemorySteps returns the memory depth of the table.
func (t *StateTable) MemorySteps() int { return t.memSteps }

// NumStates returns the number of rows.
func (t *StateTable) NumStates() int { return len(t.rows) }

// Row returns the per-round codes (most recent first) of state i.
func (t *StateTable) Row(i int) []uint8 { return t.rows[i] }

// FindState performs the paper's linear search: it scans the table for the
// row matching the supplied view (most recent round first) and returns its
// index.  The view must have exactly memSteps entries; FindState returns -1
// if no row matches, which cannot happen for well-formed views.
func (t *StateTable) FindState(view []uint8) int {
	if len(view) != t.memSteps {
		return -1
	}
search:
	for i, row := range t.rows {
		for r := range row {
			if row[r] != view[r] {
				continue search
			}
		}
		return i
	}
	return -1
}

// String renders the table in the style of the paper's Table II, mostly for
// debugging and the benchtables tool.
func (t *StateTable) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "memory-%d state table (%d states)\n", t.memSteps, len(t.rows))
	for i, row := range t.rows {
		fmt.Fprintf(&sb, "%4d:", i)
		for r := len(row) - 1; r >= 0; r-- {
			fmt.Fprintf(&sb, " %s%s", Move(row[r]>>1), Move(row[r]&1))
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// History tracks one player's view of the game: the packed state code, and,
// for the linear-search path, the explicit per-round view array.
type History struct {
	memSteps int
	mask     int
	state    int
	view     []uint8 // view[r] = RoundCode of round r, 0 = most recent
}

// NewHistory returns a History seeded with the all-cooperate initial state.
func NewHistory(memSteps int) *History {
	CheckMemorySteps(memSteps)
	return &History{
		memSteps: memSteps,
		mask:     NumStates(memSteps) - 1,
		state:    InitialState,
		view:     make([]uint8, memSteps),
	}
}

// Reset returns the history to the all-cooperate initial state.
func (h *History) Reset() {
	h.state = InitialState
	for i := range h.view {
		h.view[i] = 0
	}
}

// MemorySteps returns the memory depth.
func (h *History) MemorySteps() int { return h.memSteps }

// State returns the packed state code maintained by the rolling encoder.
func (h *History) State() int { return h.state }

// View returns the explicit per-round view (most recent round first).  The
// returned slice aliases internal state and must not be modified.
func (h *History) View() []uint8 { return h.view }

// Push records one more round of play (my own move and the opponent's move)
// into the history, updating both the rolling code and the explicit view.
func (h *History) Push(my, opp Move) {
	code := uint8(RoundCode(my, opp))
	h.state = ((h.state << 2) | int(code)) & h.mask
	// Shift the explicit view: round r becomes round r+1.
	copy(h.view[1:], h.view[:h.memSteps-1])
	h.view[0] = code
}

// StateVia returns the current state index using the requested mode,
// consulting table for the linear-search path.  The two modes always agree;
// the distinction exists so the Figure 3 ablation can measure the cost of
// the original search.
func (h *History) StateVia(mode StateMode, table *StateTable) int {
	if mode == StateRolling {
		return h.state
	}
	return table.FindState(h.view)
}

// OpponentState returns the packed state as seen from the opponent's
// perspective: within every round the two move bits are swapped.
func OpponentState(state, memSteps int) int {
	CheckMemorySteps(memSteps)
	out := 0
	for r := 0; r < memSteps; r++ {
		code := (state >> (2 * uint(r))) & 3
		swapped := ((code & 1) << 1) | (code >> 1)
		out |= swapped << (2 * uint(r))
	}
	return out
}

// StateString renders a packed state as the plays of the last n rounds, most
// recent round last, e.g. "CD|DC" — useful in tables and error messages.
func StateString(state, memSteps int) string {
	CheckMemorySteps(memSteps)
	parts := make([]string, memSteps)
	for r := 0; r < memSteps; r++ {
		code := (state >> (2 * uint(r))) & 3
		parts[memSteps-1-r] = Move(code>>1).String() + Move(code&1).String()
	}
	return strings.Join(parts, "|")
}
