package game

import (
	"fmt"
	"sync/atomic"

	"evogame/internal/bitvec"
	"evogame/internal/rng"
)

// This file implements the bit-sliced (SWAR) batch kernel: one focal
// strategy playing up to 64 opponents simultaneously, one game per bit lane
// of a uint64 word (see internal/bitvec).  It targets the full-replay
// workload the scaling studies measure — every round of every game is
// played, but 64 games advance per word operation instead of one.
//
// Layout.  The focal player's joint history against all 64 opponents is
// kept as 2n bit planes: plane j holds bit j of the focal's packed game
// state in every lane.  The opponents' own states need no storage at all —
// an opponent's state is the focal state with each round's (my, opp) bit
// pair swapped, so plane j of the opponents' view is focal plane j^1.  Next
// moves come from a multiplexer tree over the 4^n-entry move tables
// (bitvec.MuxSelect): the focal's table broadcasts to 0/^0 leaf words, the
// opponents' tables are transposed once per batch so bit L of leaf s is
// lane L's move in state s.  Per-round outcomes accumulate in vertical
// ripple-carry counters; the per-lane totals are reconstructed once at the
// end of the batch.
//
// Exactness.  With an integer-valued payoff matrix the scalar loop's
// running fitness sum is an exactly representable integer after every
// round, and the batch kernel's count*payoff closed form produces the same
// integer, so the two are bit-identical; the kernel is therefore gated on
// Matrix.IntegerValued exactly like the cycle-closing kernel.  Noise is
// handled by pre-drawing each lane's per-round flips from that game's own
// rng.Source in canonical scalar order (two draws per round, focal player
// first), so the RNG streams — and therefore the trajectory of any caller —
// are unchanged.  Games the kernel cannot replay exactly (mixed strategies,
// fractional payoff matrices, players without packed move tables) fall back
// to the scalar Play path lane by lane.

// BatchLanes is the number of games one bit-sliced batch plays at once: one
// lane per bit of a uint64 word.  Engine.PlayBatch accepts any number of
// opponents and chunks internally, so callers only need the constant to
// size reusable result buffers.
const BatchLanes = bitvec.Lanes

// batchAutoMaxMemory is the largest memory depth at which KernelAuto routes
// eligible batches through the SWAR kernel.  The multiplexer tree costs
// ~4^n word operations per round, so past memory-3 the scalar loop (and the
// cycle-closing kernel) win; KernelBatch overrides the bound for
// measurement.
const batchAutoMaxMemory = 3

// KernelStats is a snapshot of how many games each kernel implementation
// has played since the engine was built.  Engines update the counters
// atomically, so snapshots are safe to take while games are in flight.
type KernelStats struct {
	// ScalarGames counts games replayed round by round by Engine.Play.
	ScalarGames int64
	// CycleGames counts games resolved by the cycle-closing closed form.
	CycleGames int64
	// BatchGames counts games played inside SWAR batches, and BatchCalls the
	// number of batches; together they give the mean lane occupancy.
	BatchGames int64
	BatchCalls int64
}

// BatchLaneOccupancy returns the mean fraction of the 64 lanes occupied per
// SWAR batch, or 0 if no batches ran.
func (s KernelStats) BatchLaneOccupancy() float64 {
	if s.BatchCalls == 0 {
		return 0
	}
	return float64(s.BatchGames) / float64(s.BatchCalls*BatchLanes)
}

// kernelCounters is the engine-internal mutable form of KernelStats.
type kernelCounters struct {
	scalarGames atomic.Int64
	cycleGames  atomic.Int64
	batchGames  atomic.Int64
	batchCalls  atomic.Int64
}

// KernelStats returns a snapshot of the engine's kernel-mix counters.
func (e *Engine) KernelStats() KernelStats {
	return KernelStats{
		ScalarGames: e.stats.scalarGames.Load(),
		CycleGames:  e.stats.cycleGames.Load(),
		BatchGames:  e.stats.batchGames.Load(),
		BatchCalls:  e.stats.batchCalls.Load(),
	}
}

// batchBuffers is the scratch state of one SWAR batch.  Engines keep them
// in a sync.Pool so the steady-state batch path allocates nothing; sizes
// depend only on the engine's memory depth and round count, which are fixed
// at construction.
type batchBuffers struct {
	focalT   []uint64    // focal move table broadcast to 0/^0 leaves, 4^n words
	oppT     []uint64    // transposed opponent tables: bit L of word s = lane L's move in state s
	scratch  []uint64    // multiplexer scratch, 4^n words (MuxSelect destroys its leaves)
	planes   []uint64    // focal joint-history planes: plane j = state bit j of every lane
	oppView  []uint64    // planes pair-swapped into the opponents' perspective
	counts   [3][]uint64 // vertical counters for outcome codes CC, CD, DC
	flipA    []uint64    // pre-drawn noise masks, one word per round (nil when noiseless)
	flipB    []uint64
	words    [BatchLanes][]uint64 // packed move table of each occupied lane
	lane2idx [BatchLanes]int      // occupied lane -> index into the opponents slice
}

func (e *Engine) getBatchBuffers() *batchBuffers {
	if buf, ok := e.batchPool.Get().(*batchBuffers); ok {
		return buf
	}
	numStates := NumStates(e.memSteps)
	buf := &batchBuffers{
		focalT:  make([]uint64, numStates),
		oppT:    make([]uint64, numStates),
		scratch: make([]uint64, numStates),
		planes:  make([]uint64, 2*e.memSteps),
		oppView: make([]uint64, 2*e.memSteps),
	}
	width := bitvec.CounterWidth(e.rounds)
	for c := range buf.counts {
		buf.counts[c] = make([]uint64, width)
	}
	if e.noise > 0 {
		buf.flipA = make([]uint64, e.rounds)
		buf.flipB = make([]uint64, e.rounds)
	}
	return buf
}

func (e *Engine) putBatchBuffers(buf *batchBuffers) {
	for l := range buf.words {
		buf.words[l] = nil // do not pin strategy tables in the pool
	}
	e.batchPool.Put(buf)
}

// batchFocalWords returns the focal player's packed move table when the
// engine's kernel mode and the game's parameters allow the SWAR path, and
// nil when every game of the batch must take the scalar fallback.
func (e *Engine) batchFocalWords(a Player) []uint64 {
	if !e.intPayoff || !a.Deterministic() || a.MemorySteps() != e.memSteps {
		return nil
	}
	mt, ok := a.(MoveTable)
	if !ok {
		return nil
	}
	switch e.kernel {
	case KernelFullReplay:
		// The reference mode measures the original scalar loop; the batch API
		// stays available but plays every lane through Engine.Play.
		return nil
	case KernelAuto:
		if e.memSteps > batchAutoMaxMemory {
			return nil
		}
	}
	return mt.Words()
}

// PlayBatch plays one game between a and every opponent, writing game i's
// outcome to out[i].  It is observably identical to calling Play(a,
// opponents[i], srcs[i]) in index order — same results bit for bit, same
// consumption of each source — but routes eligible games through the
// bit-sliced batch kernel, 64 lanes at a time, when the kernel mode allows
// it (see KernelMode).  srcs may be nil for fully deterministic noiseless
// batches; otherwise it must hold one source per opponent (entries for
// deterministic games may be nil when noise is off).  Opponent counts that
// are not a multiple of 64 are fine; the ragged tail simply occupies fewer
// lanes.
func (e *Engine) PlayBatch(a Player, opponents []Player, srcs []*rng.Source, out []Result) error {
	if a == nil {
		return fmt.Errorf("game: PlayBatch requires a focal player")
	}
	if len(out) != len(opponents) {
		return fmt.Errorf("game: PlayBatch result slice has %d entries for %d opponents", len(out), len(opponents))
	}
	if srcs != nil && len(srcs) != len(opponents) {
		return fmt.Errorf("game: PlayBatch source slice has %d entries for %d opponents", len(srcs), len(opponents))
	}
	aw := e.batchFocalWords(a)
	for lo := 0; lo < len(opponents); lo += BatchLanes {
		hi := lo + BatchLanes
		if hi > len(opponents) {
			hi = len(opponents)
		}
		var chunkSrcs []*rng.Source
		if srcs != nil {
			chunkSrcs = srcs[lo:hi]
		}
		if err := e.playBatchChunk(a, aw, opponents[lo:hi], chunkSrcs, out[lo:hi]); err != nil {
			return err
		}
	}
	return nil
}

// playBatchChunk plays one chunk of at most BatchLanes opponents.  Lanes
// the SWAR kernel cannot replay exactly fall back to the scalar Play path
// individually; aw == nil forces the fallback for the whole chunk.
func (e *Engine) playBatchChunk(a Player, aw []uint64, opps []Player, srcs []*rng.Source, out []Result) error {
	var buf *batchBuffers
	lanes := 0
	for i, b := range opps {
		if b == nil {
			if buf != nil {
				e.putBatchBuffers(buf)
			}
			return fmt.Errorf("game: PlayBatch got a nil opponent")
		}
		eligible := aw != nil && b.Deterministic() && b.MemorySteps() == e.memSteps
		var mt MoveTable
		if eligible {
			mt, eligible = b.(MoveTable)
		}
		if eligible && e.noise > 0 && (srcs == nil || srcs[i] == nil) {
			if buf != nil {
				e.putBatchBuffers(buf)
			}
			return fmt.Errorf("game: rng source required (noise=%v, deterministic=%v/%v)",
				e.noise, a.Deterministic(), b.Deterministic())
		}
		if !eligible {
			var src *rng.Source
			if srcs != nil {
				src = srcs[i]
			}
			res, err := e.Play(a, b, src)
			if err != nil {
				if buf != nil {
					e.putBatchBuffers(buf)
				}
				return err
			}
			out[i] = res
			continue
		}
		if buf == nil {
			buf = e.getBatchBuffers()
		}
		buf.words[lanes] = mt.Words()
		buf.lane2idx[lanes] = i
		lanes++
	}
	if buf == nil {
		return nil
	}
	defer e.putBatchBuffers(buf)

	numStates := NumStates(e.memSteps)
	focalT := buf.focalT[:numStates]
	oppT := buf.oppT[:numStates]
	for s := 0; s < numStates; s++ {
		focalT[s] = bitvec.Broadcast(aw[s>>6]>>(uint(s)&63)&1 == 1)
		oppT[s] = 0
	}
	for l := 0; l < lanes; l++ {
		w := buf.words[l]
		for s := 0; s < numStates; s++ {
			oppT[s] |= (w[s>>6] >> (uint(s) & 63) & 1) << uint(l)
		}
	}

	// Pre-draw the noise flips in canonical scalar order: each lane consumes
	// its own source exactly as the scalar loop would — two draws per round,
	// focal player's flip first — so the streams stay aligned with full
	// replay.
	noisy := e.noise > 0
	if noisy {
		flipA, flipB := buf.flipA, buf.flipB
		for r := 0; r < e.rounds; r++ {
			flipA[r], flipB[r] = 0, 0
		}
		for l := 0; l < lanes; l++ {
			src := srcs[buf.lane2idx[l]]
			bit := uint64(1) << uint(l)
			for r := 0; r < e.rounds; r++ {
				if src.Bool(e.noise) {
					flipA[r] |= bit
				}
				if src.Bool(e.noise) {
					flipB[r] |= bit
				}
			}
		}
	}

	planes := buf.planes
	for j := range planes {
		planes[j] = 0 // InitialState: empty history in every lane
	}
	for c := range buf.counts {
		cnt := buf.counts[c]
		for i := range cnt {
			cnt[i] = 0
		}
	}
	scratch := buf.scratch[:numStates]
	oppView := buf.oppView
	for r := 0; r < e.rounds; r++ {
		copy(scratch, focalT)
		moveA := bitvec.MuxSelect(scratch, planes)
		// An opponent's own state is the focal state with each round's
		// (my, opp) bit pair swapped, so its selector planes are the focal
		// planes at index j^1.
		for j := range oppView {
			oppView[j] = planes[j^1]
		}
		copy(scratch, oppT)
		moveB := bitvec.MuxSelect(scratch, oppView)
		if noisy {
			moveA ^= buf.flipA[r]
			moveB ^= buf.flipB[r]
		}
		// Count outcome codes CC, CD, DC per lane; DD follows from the round
		// count at extraction time.
		bitvec.CounterAdd(buf.counts[0], ^(moveA | moveB))
		bitvec.CounterAdd(buf.counts[1], ^moveA&moveB)
		bitvec.CounterAdd(buf.counts[2], moveA&^moveB)
		// state = ((state << 2) | my<<1 | opp) & mask, sliced: shift the
		// planes up a round and insert the new pair; the oldest round falls
		// off the end of the slice.
		for j := len(planes) - 1; j >= 2; j-- {
			planes[j] = planes[j-2]
		}
		planes[1] = moveA
		planes[0] = moveB
	}

	t := e.table
	rounds := e.rounds
	for l := 0; l < lanes; l++ {
		cc := bitvec.CounterLane(buf.counts[0], l)
		cd := bitvec.CounterLane(buf.counts[1], l)
		dc := bitvec.CounterLane(buf.counts[2], l)
		dd := rounds - cc - cd - dc
		out[buf.lane2idx[l]] = Result{
			FitnessA:      float64(cc)*t[0] + float64(cd)*t[1] + float64(dc)*t[2] + float64(dd)*t[3],
			FitnessB:      float64(cc)*t[0] + float64(cd)*t[2] + float64(dc)*t[1] + float64(dd)*t[3],
			CooperationsA: cc + cd,
			CooperationsB: cc + dc,
			Rounds:        rounds,
		}
	}
	e.stats.batchGames.Add(int64(lanes))
	e.stats.batchCalls.Add(1)
	return nil
}
