package game

import (
	"fmt"
	"sync"

	"evogame/internal/rng"
)

// Player is one side of an Iterated Prisoner's Dilemma game.  The strategy
// package provides the pure (bit-vector) and mixed (probabilistic)
// implementations; the game package only needs to ask the player for its
// move in a given state.
type Player interface {
	// MemorySteps returns the memory depth n of the strategy.
	MemorySteps() int
	// Move returns the player's move in the given packed state.  src may be
	// nil when Deterministic() is true.
	Move(state int, src *rng.Source) Move
	// Deterministic reports whether the strategy needs randomness to choose
	// its move (mixed strategies do, pure strategies do not).
	Deterministic() bool
}

// AccumMode selects how the engine accumulates fitness each round.  It is
// the axis of the paper's "Instruction"-level optimization in Figure 3 (the
// hand-coded fused multiply-add fitness kernel).
type AccumMode int

const (
	// AccumBranching resolves each round's payoff through the four-way
	// comparison of Matrix.Payoff.
	AccumBranching AccumMode = iota
	// AccumLookup resolves each round's payoff through the fused 4-entry
	// look-up table (Matrix.Table) indexed by the round outcome code.
	AccumLookup
)

// String implements fmt.Stringer.
func (m AccumMode) String() string {
	switch m {
	case AccumBranching:
		return "branching"
	case AccumLookup:
		return "lookup"
	default:
		return fmt.Sprintf("AccumMode(%d)", int(m))
	}
}

// Engine plays Iterated Prisoner's Dilemma games.  An Engine's
// configuration is immutable after construction and it is safe for
// concurrent use by multiple goroutines as long as each call supplies its
// own rng.Source; the only mutable state is the atomic kernel-mix counters
// (KernelStats) and the pooled batch scratch buffers.
type Engine struct {
	spec      Spec
	payoff    Matrix
	table     [4]float64
	rounds    int
	noise     float64
	memSteps  int
	stateMode StateMode
	accumMode AccumMode
	kernel    KernelMode
	intPayoff bool
	states    *StateTable

	stats     kernelCounters
	batchPool sync.Pool // of *batchBuffers
}

// EngineConfig collects the knobs of the IPD kernel.  The zero value is not
// valid; use the documented defaults below.
type EngineConfig struct {
	// Game is the scenario the engine plays (see Spec and the registry).
	// The zero value selects the paper's IPD spec, so legacy configurations
	// behave exactly as before the scenario registry existed.
	Game Spec
	// Payoff overrides the spec's canonical payoff matrix; it must satisfy
	// the spec's constraints.  The zero value selects Game.Payoff (which for
	// the default IPD spec is Standard()).
	Payoff Matrix
	// Rounds is the number of rounds per game (the paper uses 200).
	Rounds int
	// Noise is the probability, per move, that a player's intended move is
	// flipped (the execution errors of Section III-F).  0 disables noise.
	Noise float64
	// MemorySteps is the memory depth n shared by both players.
	MemorySteps int
	// StateMode selects linear-search or rolling state identification.
	StateMode StateMode
	// AccumMode selects branching or look-up fitness accumulation.
	AccumMode AccumMode
	// Kernel selects the deterministic-game inner loop: the zero value,
	// KernelAuto, closes the joint-state cycle in closed form whenever that
	// is bit-exact (see KernelMode); KernelFullReplay forces the
	// round-by-round reference loop.
	Kernel KernelMode
}

// DefaultRounds is the number of IPD rounds per generation used throughout
// the paper's experiments.
const DefaultRounds = 200

// NewEngine validates the configuration and returns an Engine.
func NewEngine(cfg EngineConfig) (*Engine, error) {
	if cfg.Game.Name == "" {
		cfg.Game = IPD()
	}
	if cfg.Payoff == (Matrix{}) {
		cfg.Payoff = cfg.Game.Payoff
	}
	if err := cfg.Game.Validate(cfg.Payoff); err != nil {
		return nil, err
	}
	cfg.Game.Payoff = cfg.Payoff
	if cfg.Rounds <= 0 {
		return nil, fmt.Errorf("game: rounds must be positive, got %d", cfg.Rounds)
	}
	if cfg.Noise < 0 || cfg.Noise > 1 {
		return nil, fmt.Errorf("game: noise must be in [0,1], got %v", cfg.Noise)
	}
	if cfg.MemorySteps < 1 || cfg.MemorySteps > MaxMemorySteps {
		return nil, fmt.Errorf("game: memory steps must be in [1,%d], got %d", MaxMemorySteps, cfg.MemorySteps)
	}
	if !cfg.Kernel.Valid() {
		return nil, fmt.Errorf("game: invalid kernel mode %v", cfg.Kernel)
	}
	e := &Engine{
		spec:      cfg.Game,
		payoff:    cfg.Payoff,
		table:     cfg.Payoff.Table(),
		rounds:    cfg.Rounds,
		noise:     cfg.Noise,
		memSteps:  cfg.MemorySteps,
		stateMode: cfg.StateMode,
		accumMode: cfg.AccumMode,
		kernel:    cfg.Kernel,
		intPayoff: cfg.Payoff.IntegerValued(),
	}
	if cfg.StateMode == StateLinearSearch {
		e.states = NewStateTable(cfg.MemorySteps)
	}
	return e, nil
}

// MemorySteps returns the memory depth of games this engine plays.
func (e *Engine) MemorySteps() int { return e.memSteps }

// Rounds returns the number of rounds per game.
func (e *Engine) Rounds() int { return e.rounds }

// Noise returns the per-move error probability.
func (e *Engine) Noise() float64 { return e.noise }

// Payoff returns the engine's payoff matrix.
func (e *Engine) Payoff() Matrix { return e.payoff }

// Kernel returns the engine's kernel mode.
func (e *Engine) Kernel() KernelMode { return e.kernel }

// Game returns the scenario spec the engine plays (with the effective
// payoff matrix installed).
func (e *Engine) Game() Spec { return e.spec }

// GameID returns the canonical identity of the game this engine plays:
// scenario, effective payoff values and rounds per game.  The fitness
// subsystem incorporates it into cache keys so memoized results can never
// leak between scenarios.
func (e *Engine) GameID() string {
	return fmt.Sprintf("%s|rounds=%d", e.spec.ID(), e.rounds)
}

// Result holds the outcome of one Iterated Prisoner's Dilemma game.
type Result struct {
	// FitnessA and FitnessB are the total payoffs accumulated by each player
	// over all rounds.
	FitnessA float64
	FitnessB float64
	// CooperationsA and CooperationsB count how many rounds each player
	// cooperated; used by validation studies and tests.
	CooperationsA int
	CooperationsB int
	// Rounds is the number of rounds actually played.
	Rounds int
}

func (r Result) averageFitness() (float64, float64) {
	if r.Rounds == 0 {
		return 0, 0
	}
	return r.FitnessA / float64(r.Rounds), r.FitnessB / float64(r.Rounds)
}

// AverageFitnessA returns player A's mean per-round payoff.
func (r Result) AverageFitnessA() float64 { a, _ := r.averageFitness(); return a }

// AverageFitnessB returns player B's mean per-round payoff.
func (r Result) AverageFitnessB() float64 { _, b := r.averageFitness(); return b }

// Play runs one game between a and b and returns both players' accumulated
// fitness.  src is required when noise > 0 or either strategy is mixed; it
// may be nil for a fully deterministic game.  Play returns an error if the
// players' memory depths do not match the engine's.
func (e *Engine) Play(a, b Player, src *rng.Source) (Result, error) {
	if a.MemorySteps() != e.memSteps || b.MemorySteps() != e.memSteps {
		return Result{}, fmt.Errorf("game: player memory (%d, %d) does not match engine memory %d",
			a.MemorySteps(), b.MemorySteps(), e.memSteps)
	}
	needRand := e.noise > 0 || !a.Deterministic() || !b.Deterministic()
	if needRand && src == nil {
		return Result{}, fmt.Errorf("game: rng source required (noise=%v, deterministic=%v/%v)",
			e.noise, a.Deterministic(), b.Deterministic())
	}
	if !needRand && e.kernel != KernelFullReplay && e.intPayoff {
		// Deterministic noiseless game over an integer-valued payoff matrix:
		// the joint-state walk is periodic and the closed-form totals are
		// bit-identical to a full replay (see KernelMode).  KernelBatch only
		// changes batch routing, so single games keep the KernelAuto fast
		// path.
		if res, ok := e.playCycleClosing(a, b); ok {
			e.stats.cycleGames.Add(1)
			return res, nil
		}
	}

	histA := NewHistory(e.memSteps)
	histB := NewHistory(e.memSteps)
	res := Result{Rounds: e.rounds}

	for r := 0; r < e.rounds; r++ {
		stateA := histA.StateVia(e.stateMode, e.states)
		stateB := histB.StateVia(e.stateMode, e.states)

		moveA := a.Move(stateA, src)
		moveB := b.Move(stateB, src)
		if e.noise > 0 {
			if src.Bool(e.noise) {
				moveA = moveA.Flip()
			}
			if src.Bool(e.noise) {
				moveB = moveB.Flip()
			}
		}

		if moveA == Cooperate {
			res.CooperationsA++
		}
		if moveB == Cooperate {
			res.CooperationsB++
		}

		if e.accumMode == AccumLookup {
			res.FitnessA += e.table[RoundCode(moveA, moveB)]
			res.FitnessB += e.table[RoundCode(moveB, moveA)]
		} else {
			res.FitnessA += e.payoff.Payoff(moveA, moveB)
			res.FitnessB += e.payoff.Payoff(moveB, moveA)
		}

		histA.Push(moveA, moveB)
		histB.Push(moveB, moveA)
	}
	e.stats.scalarGames.Add(1)
	return res, nil
}

// PlayFitness is a convenience wrapper around Play that returns only the
// focal player's fitness, matching the IPD() pseudo code of the paper which
// returns the fitness accumulated by the agent calling it.
func (e *Engine) PlayFitness(my, opp Player, src *rng.Source) (float64, error) {
	res, err := e.Play(my, opp, src)
	if err != nil {
		return 0, err
	}
	return res.FitnessA, nil
}
