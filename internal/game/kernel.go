package game

import "fmt"

// KernelMode selects the inner-loop implementation Engine.Play uses for a
// fully deterministic, noiseless game.
//
// The joint (stateA, stateB) trajectory of two deterministic memory-n
// automata is itself a deterministic walk over at most 4^n x 4^n joint
// states, so it must enter a cycle within that many rounds (16 joint states
// at the paper's memory-one).  Once the cycle is known, the totals of a
// rounds-long game follow in closed form — prefix + k*cycle + tail — instead
// of replaying every round.  With an integer-valued payoff matrix every
// partial sum is an exactly representable integer, so the closed form is
// bit-identical to the replayed sum; engines therefore keep their
// per-seed trajectories unchanged whichever mode runs.
type KernelMode int

const (
	// KernelAuto (the default) closes the joint-state cycle whenever the
	// game qualifies: noiseless, both players deterministic with packed move
	// tables (see MoveTable), and an integer-valued payoff matrix.  Games
	// that do not qualify replay every round exactly as KernelFullReplay.
	KernelAuto KernelMode = iota
	// KernelFullReplay always replays all rounds; it is the pre-optimization
	// reference kernel and the baseline the perf tables compare against.
	KernelFullReplay
	// KernelBatch behaves like KernelAuto for single games but forces
	// Engine.PlayBatch to use the bit-sliced SWAR kernel at every memory
	// depth for eligible lanes (KernelAuto only batches up to memory-3,
	// where the multiplexer tree is cheaper than the scalar loop).  Like the
	// other fast paths it is bit-identical per seed, so the mode exists for
	// forcing the batch path in measurements and tests rather than for
	// changing outcomes.
	KernelBatch
)

// String implements fmt.Stringer.
func (m KernelMode) String() string {
	switch m {
	case KernelAuto:
		return "auto"
	case KernelFullReplay:
		return "full-replay"
	case KernelBatch:
		return "batch"
	default:
		return fmt.Sprintf("KernelMode(%d)", int(m))
	}
}

// Valid reports whether m is one of the defined kernel modes.
func (m KernelMode) Valid() bool {
	return m == KernelAuto || m == KernelFullReplay || m == KernelBatch
}

// ParseKernelMode maps the names accepted by command-line flags ("auto",
// "full-replay", "batch") to a KernelMode; the empty string selects
// KernelAuto.
func ParseKernelMode(s string) (KernelMode, error) {
	switch s {
	case "", "auto":
		return KernelAuto, nil
	case "full-replay":
		return KernelFullReplay, nil
	case "batch":
		return KernelBatch, nil
	default:
		return KernelAuto, fmt.Errorf("game: unknown kernel mode %q (want auto, full-replay or batch)", s)
	}
}

// MoveTable is implemented by deterministic players whose per-state moves
// are available as a packed bit vector: bit s of the word slice is 1 when
// the player defects in state s.  strategy.Pure implements it.  The
// cycle-closing kernel requires it so the per-round inner loop is plain
// word arithmetic with no interface dispatch; deterministic players without
// it simply take the full-replay path.
type MoveTable interface {
	// Words returns the packed move table, least-significant bit first.  The
	// slice must not be modified and must cover all 4^n states.
	Words() []uint64
}

// cycleKernel is the state of one cycle-closing game: both players' packed
// move tables, the per-round payoff lookup table and the state geometry.
// It lives entirely on the caller's stack, keeping the fast path free of
// heap allocations.
type cycleKernel struct {
	wa, wb []uint64
	table  [4]float64
	mask   int
	shift  uint
}

// next advances the joint state one round without accumulating anything;
// used by the cycle-detection phase.
func (k *cycleKernel) next(s int) int {
	sA := s >> k.shift
	sB := s & k.mask
	ma := int(k.wa[sA>>6]>>(uint(sA)&63)) & 1
	mb := int(k.wb[sB>>6]>>(uint(sB)&63)) & 1
	sA = ((sA << 2) | ma<<1 | mb) & k.mask
	sB = ((sB << 2) | mb<<1 | ma) & k.mask
	return sA<<k.shift | sB
}

// accum collects the per-phase totals of the closed form.
type accum struct {
	fitA, fitB   float64
	coopA, coopB int
}

// round plays one round from joint state s, adds its payoffs and
// cooperation counts to a, and returns the next joint state.
func (k *cycleKernel) round(s int, a *accum) int {
	sA := s >> k.shift
	sB := s & k.mask
	ma := int(k.wa[sA>>6]>>(uint(sA)&63)) & 1
	mb := int(k.wb[sB>>6]>>(uint(sB)&63)) & 1
	a.fitA += k.table[ma<<1|mb]
	a.fitB += k.table[mb<<1|ma]
	a.coopA += 1 - ma
	a.coopB += 1 - mb
	sA = ((sA << 2) | ma<<1 | mb) & k.mask
	sB = ((sB << 2) | mb<<1 | ma) & k.mask
	return sA<<k.shift | sB
}

// playCycleClosing runs the cycle-closing fast path: Brent's cycle
// detection over the joint-state walk, then the game totals as
// prefix + k*cycle + tail.  It reports ok=false when the fast path does not
// apply (a player without a packed move table, or a trajectory whose cycle
// closes too late to save work), in which case the caller must replay the
// game in full.  Callers guarantee the game is noiseless, both players are
// deterministic, and the payoff matrix is integer-valued.
func (e *Engine) playCycleClosing(a, b Player) (Result, bool) {
	wta, ok := a.(MoveTable)
	if !ok {
		return Result{}, false
	}
	wtb, ok := b.(MoveTable)
	if !ok {
		return Result{}, false
	}
	k := cycleKernel{
		wa:    wta.Words(),
		wb:    wtb.Words(),
		table: e.table,
		mask:  (1 << (2 * uint(e.memSteps))) - 1,
		shift: 2 * uint(e.memSteps),
	}
	rounds := e.rounds

	// Brent's algorithm: find the cycle length lam, bounding the search so a
	// cycle that closes beyond the game's horizon falls back to full replay
	// (which is no more work than the search already did).
	power, lam := 1, 1
	tortoise := InitialState<<k.shift | InitialState
	hare := k.next(tortoise)
	steps := 1
	for tortoise != hare {
		if steps >= 2*rounds {
			return Result{}, false
		}
		if power == lam {
			tortoise = hare
			power <<= 1
			lam = 0
		}
		hare = k.next(hare)
		lam++
		steps++
	}
	// Find the cycle start mu with two pointers lam apart.
	mu := 0
	tortoise = InitialState<<k.shift | InitialState
	hare = tortoise
	for i := 0; i < lam; i++ {
		hare = k.next(hare)
	}
	for tortoise != hare {
		tortoise = k.next(tortoise)
		hare = k.next(hare)
		mu++
	}
	if mu+lam >= rounds {
		// The game ends before completing one full cycle beyond the prefix;
		// the closed form degenerates to a replay, so let the caller do it.
		return Result{}, false
	}

	// Accumulate the prefix (mu rounds), one full cycle (lam rounds) and the
	// tail ((rounds-mu) mod lam rounds from the cycle start).
	var pre, cyc, tail accum
	s := InitialState<<k.shift | InitialState
	for i := 0; i < mu; i++ {
		s = k.round(s, &pre)
	}
	for i := 0; i < lam; i++ {
		s = k.round(s, &cyc)
	}
	reps := (rounds - mu) / lam
	rem := (rounds - mu) % lam
	for i := 0; i < rem; i++ {
		s = k.round(s, &tail)
	}
	// Integer-valued payoffs make every term an exact integer, so the closed
	// form reproduces the sequential sum bit for bit.
	return Result{
		FitnessA:      pre.fitA + float64(reps)*cyc.fitA + tail.fitA,
		FitnessB:      pre.fitB + float64(reps)*cyc.fitB + tail.fitB,
		CooperationsA: pre.coopA + reps*cyc.coopA + tail.coopA,
		CooperationsB: pre.coopB + reps*cyc.coopB + tail.coopB,
		Rounds:        rounds,
	}, true
}
