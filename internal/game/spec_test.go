package game

import (
	"math"
	"strings"
	"testing"
)

func TestBuiltinSpecsValidateOwnPayoff(t *testing.T) {
	for _, name := range SpecNames() {
		s, err := LookupSpec(name)
		if err != nil {
			t.Fatalf("LookupSpec(%q): %v", name, err)
		}
		if err := s.Validate(s.Payoff); err != nil {
			t.Errorf("spec %q rejects its own canonical payoff: %v", name, err)
		}
	}
}

func TestSpecRegistryNames(t *testing.T) {
	names := SpecNames()
	for _, want := range []string{"ipd", "snowdrift", "staghunt", "generic"} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Errorf("SpecNames() = %v, missing %q", names, want)
		}
	}
	if _, err := LookupSpec("calvinball"); err == nil {
		t.Error("LookupSpec accepted an unknown game")
	}
}

func TestSpecValidateNamesViolatedConstraint(t *testing.T) {
	// Snowdrift requires S > P; hand it a PD matrix (P > S) and the error
	// must name the broken inequality and carry the offending values.
	err := Snowdrift().Validate(Standard())
	if err == nil {
		t.Fatal("Snowdrift().Validate accepted a PD matrix")
	}
	for _, want := range []string{"S > P", "S=0", "P=1", "snowdrift"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q does not mention %q", err, want)
		}
	}
	// The PD validation likewise names the first violated inequality.
	err = Matrix{Reward: 3, Sucker: 0, Temptation: 2, Punishment: 1}.Validate()
	if err == nil || !strings.Contains(err.Error(), "T > R") {
		t.Errorf("Matrix.Validate() = %v, want a T > R violation", err)
	}
}

func TestSpecWithPayoff(t *testing.T) {
	custom := Matrix{Reward: 5, Sucker: 1, Temptation: 6, Punishment: 2}
	s, err := IPD().WithPayoff(custom)
	if err != nil {
		t.Fatalf("WithPayoff(valid PD matrix): %v", err)
	}
	if s.Payoff != custom {
		t.Fatalf("WithPayoff kept payoff %+v", s.Payoff)
	}
	if _, err := StagHunt().WithPayoff(Standard()); err == nil {
		t.Fatal("StagHunt().WithPayoff accepted a PD matrix (T > R)")
	}
	if _, err := Generic().WithPayoff(Matrix{Reward: -1, Sucker: -2, Temptation: -3, Punishment: -4}); err != nil {
		t.Fatalf("Generic().WithPayoff rejected an arbitrary matrix: %v", err)
	}
	// Non-finite payoffs are rejected by every spec, the constraint-free
	// generic one included: they would silently poison the dynamics.
	for _, bad := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		if _, err := Generic().WithPayoff(Matrix{Reward: bad, Sucker: 0, Temptation: 1, Punishment: 2}); err == nil {
			t.Errorf("Generic().WithPayoff accepted a %v payoff", bad)
		}
	}
}

func TestSpecIDDistinguishesGames(t *testing.T) {
	seen := map[string]string{}
	for _, name := range SpecNames() {
		s, _ := LookupSpec(name)
		id := s.ID()
		if prev, ok := seen[id]; ok {
			t.Errorf("specs %q and %q share ID %q", prev, name, id)
		}
		seen[id] = name
	}
	a, _ := IPD().WithPayoff(Matrix{Reward: 5, Sucker: 1, Temptation: 6, Punishment: 2})
	if a.ID() == IPD().ID() {
		t.Error("same spec with different payoff must have a different ID")
	}
}

func TestRegisterSpec(t *testing.T) {
	if err := RegisterSpec(Spec{Name: "ipd"}); err == nil {
		t.Fatal("RegisterSpec accepted a duplicate name")
	}
	if err := RegisterSpec(Spec{}); err == nil {
		t.Fatal("RegisterSpec accepted an empty name")
	}
	bad := Spec{
		Name:        "bad-canon",
		Payoff:      Standard(),
		Constraints: []Constraint{{"R > T", func(m Matrix) bool { return m.Reward > m.Temptation }}},
	}
	if err := RegisterSpec(bad); err == nil {
		t.Fatal("RegisterSpec accepted a spec whose canonical payoff violates its constraints")
	}
	ok := Spec{Name: "test-harmony", Title: "test", Payoff: Matrix{Reward: 2, Sucker: 1, Temptation: 1, Punishment: 0}}
	if err := RegisterSpec(ok); err != nil {
		t.Fatalf("RegisterSpec(valid): %v", err)
	}
	if _, err := LookupSpec("test-harmony"); err != nil {
		t.Fatalf("registered spec not found: %v", err)
	}
}

func TestMatrixIntegerValued(t *testing.T) {
	if !Standard().IntegerValued() {
		t.Error("Standard() should be integer-valued")
	}
	m := Matrix{Reward: 1.25, Sucker: 0.5, Temptation: 2, Punishment: 0}
	if m.IntegerValued() {
		t.Errorf("%+v should not be integer-valued", m)
	}
}

func TestEngineCarriesSpec(t *testing.T) {
	e, err := NewEngine(EngineConfig{Game: Snowdrift(), Rounds: 10, MemorySteps: 1})
	if err != nil {
		t.Fatalf("NewEngine(snowdrift): %v", err)
	}
	if e.Game().Name != "snowdrift" || e.Payoff() != Snowdrift().Payoff {
		t.Fatalf("engine game = %q payoff %+v", e.Game().Name, e.Payoff())
	}
	if e2, _ := NewEngine(EngineConfig{Rounds: 10, MemorySteps: 1}); e2.Game().Name != "ipd" {
		t.Fatalf("zero-value EngineConfig.Game = %q, want ipd", e2.Game().Name)
	}
	// A payoff override must satisfy the spec's constraints.
	if _, err := NewEngine(EngineConfig{Game: StagHunt(), Payoff: Standard(), Rounds: 10, MemorySteps: 1}); err == nil {
		t.Fatal("NewEngine accepted a PD payoff for the stag hunt spec")
	}
	custom := Matrix{Reward: 6, Sucker: 0, Temptation: 5, Punishment: 1}
	e3, err := NewEngine(EngineConfig{Game: StagHunt(), Payoff: custom, Rounds: 10, MemorySteps: 1})
	if err != nil {
		t.Fatalf("NewEngine(staghunt, custom): %v", err)
	}
	if e3.Game().Payoff != custom {
		t.Fatalf("engine spec payoff %+v, want the override %+v", e3.Game().Payoff, custom)
	}
	if e3.GameID() == e.GameID() {
		t.Error("different games must have different GameIDs")
	}
}
