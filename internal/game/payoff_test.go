package game

import (
	"testing"
	"testing/quick"
)

func TestStandardMatrixValues(t *testing.T) {
	m := Standard()
	if m.Reward != 3 || m.Sucker != 0 || m.Temptation != 4 || m.Punishment != 1 {
		t.Fatalf("Standard() = %+v, want [R,S,T,P]=[3,0,4,1]", m)
	}
}

func TestStandardMatrixIsValidPD(t *testing.T) {
	if err := Standard().Validate(); err != nil {
		t.Fatalf("Standard matrix failed validation: %v", err)
	}
}

func TestValidateRejectsNonPD(t *testing.T) {
	cases := []struct {
		name string
		m    Matrix
	}{
		{"ordering violated (R>T)", Matrix{Reward: 5, Sucker: 0, Temptation: 4, Punishment: 1}},
		{"ordering violated (S>P)", Matrix{Reward: 3, Sucker: 2, Temptation: 4, Punishment: 1}},
		{"2R <= T+S", Matrix{Reward: 3, Sucker: 2.5, Temptation: 4, Punishment: 2.6}},
		{"zero matrix", Matrix{}},
	}
	for _, tc := range cases {
		if err := tc.m.Validate(); err == nil {
			t.Errorf("%s: Validate accepted %+v", tc.name, tc.m)
		}
	}
}

func TestPayoffOutcomes(t *testing.T) {
	m := Standard()
	cases := []struct {
		my, opp Move
		want    float64
	}{
		{Cooperate, Cooperate, 3},
		{Cooperate, Defect, 0},
		{Defect, Cooperate, 4},
		{Defect, Defect, 1},
	}
	for _, tc := range cases {
		if got := m.Payoff(tc.my, tc.opp); got != tc.want {
			t.Errorf("Payoff(%s,%s) = %v, want %v", tc.my, tc.opp, got, tc.want)
		}
	}
}

func TestTableMatchesPayoff(t *testing.T) {
	m := Standard()
	tab := m.Table()
	for _, my := range []Move{Cooperate, Defect} {
		for _, opp := range []Move{Cooperate, Defect} {
			if tab[RoundCode(my, opp)] != m.Payoff(my, opp) {
				t.Errorf("Table[%d] = %v, Payoff(%s,%s) = %v",
					RoundCode(my, opp), tab[RoundCode(my, opp)], my, opp, m.Payoff(my, opp))
			}
		}
	}
}

func TestMaxMinPerRound(t *testing.T) {
	m := Standard()
	if m.MaxPerRound() != 4 {
		t.Fatalf("MaxPerRound = %v, want 4 (Temptation)", m.MaxPerRound())
	}
	if m.MinPerRound() != 0 {
		t.Fatalf("MinPerRound = %v, want 0 (Sucker)", m.MinPerRound())
	}
}

func TestMoveStringAndFlip(t *testing.T) {
	if Cooperate.String() != "C" || Defect.String() != "D" {
		t.Fatalf("Move.String incorrect: %s %s", Cooperate, Defect)
	}
	if Cooperate.Flip() != Defect || Defect.Flip() != Cooperate {
		t.Fatal("Flip does not invert moves")
	}
	if Cooperate.Flip().Flip() != Cooperate {
		t.Fatal("double Flip is not identity")
	}
}

// Property: the payoff table always matches the branching payoff for any
// matrix (the two accumulation modes of the engine must be interchangeable).
func TestQuickTableEquivalence(t *testing.T) {
	f := func(r, s, tt, p float64) bool {
		m := Matrix{Reward: r, Sucker: s, Temptation: tt, Punishment: p}
		tab := m.Table()
		for _, my := range []Move{Cooperate, Defect} {
			for _, opp := range []Move{Cooperate, Defect} {
				if tab[RoundCode(my, opp)] != m.Payoff(my, opp) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
