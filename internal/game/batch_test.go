package game

import (
	"fmt"
	"testing"

	"evogame/internal/rng"
)

func wordPlayerFromBits(mem int, bits uint64) *wordPlayer {
	p := newWordPlayer(mem)
	p.words[0] = bits
	return p
}

func newTestEngines(t *testing.T, mem int, noise float64) (batch, scalar *Engine) {
	t.Helper()
	mk := func(k KernelMode) *Engine {
		e, err := NewEngine(EngineConfig{
			Rounds: DefaultRounds, MemorySteps: mem, Noise: noise,
			AccumMode: AccumLookup, Kernel: k,
		})
		if err != nil {
			t.Fatal(err)
		}
		return e
	}
	return mk(KernelBatch), mk(KernelFullReplay)
}

func checkBatchMatchesScalar(t *testing.T, batch, scalar *Engine, a Player, opps []Player, seed uint64) {
	t.Helper()
	noisy := scalar.Noise() > 0 || !a.Deterministic()
	for _, b := range opps {
		if !b.Deterministic() {
			noisy = true
		}
	}
	var batchSrcs []*rng.Source
	if noisy {
		batchSrcs = make([]*rng.Source, len(opps))
		for i := range batchSrcs {
			batchSrcs[i] = rng.New(seed + uint64(i))
		}
	}
	got := make([]Result, len(opps))
	if err := batch.PlayBatch(a, opps, batchSrcs, got); err != nil {
		t.Fatal(err)
	}
	for i, b := range opps {
		var src *rng.Source
		if noisy || !b.Deterministic() {
			src = rng.New(seed + uint64(i))
		}
		want, err := scalar.Play(a, b, src)
		if err != nil {
			t.Fatal(err)
		}
		if got[i] != want {
			t.Fatalf("opponent %d: batch %+v, scalar full replay %+v", i, got[i], want)
		}
		// The batch kernel must also leave each game's RNG stream exactly
		// where the scalar loop does.
		if src != nil {
			if g, w := batchSrcs[i].Uint64(), src.Uint64(); g != w {
				t.Fatalf("opponent %d: RNG stream diverged after the game (%#x vs %#x)", i, g, w)
			}
		}
	}
}

// TestPlayBatchExhaustiveMemoryOne pins batch-vs-scalar equivalence for
// every ordered pair of the 16 memory-one pure strategies, the paper's core
// strategy space.
func TestPlayBatchExhaustiveMemoryOne(t *testing.T) {
	batch, scalar := newTestEngines(t, 1, 0)
	opps := make([]Player, 16)
	for b := 0; b < 16; b++ {
		opps[b] = wordPlayerFromBits(1, uint64(b))
	}
	for a := 0; a < 16; a++ {
		checkBatchMatchesScalar(t, batch, scalar, wordPlayerFromBits(1, uint64(a)), opps, 0)
	}
}

// TestPlayBatchRandomDeeperMemory spot-checks equivalence with random move
// tables at memory 2..4, noiseless and noisy.  KernelBatch forces the SWAR
// path even at memory-4, where KernelAuto would prefer the scalar loop.
func TestPlayBatchRandomDeeperMemory(t *testing.T) {
	for mem := 2; mem <= 4; mem++ {
		for _, noise := range []float64{0, 0.05} {
			t.Run(fmt.Sprintf("mem%d-noise%v", mem, noise), func(t *testing.T) {
				batch, scalar := newTestEngines(t, mem, noise)
				src := rng.New(uint64(90 + mem))
				opps := make([]Player, 80) // > one chunk, ragged second chunk
				for i := range opps {
					opps[i] = randomWordPlayer(mem, src)
				}
				for trial := 0; trial < 4; trial++ {
					focal := randomWordPlayer(mem, src)
					checkBatchMatchesScalar(t, batch, scalar, focal, opps, uint64(1000*mem+trial))
				}
			})
		}
	}
}

// TestPlayBatchRaggedTail covers opponent counts that do not fill whole
// 64-lane chunks.
func TestPlayBatchRaggedTail(t *testing.T) {
	batch, scalar := newTestEngines(t, 1, 0)
	src := rng.New(17)
	for _, n := range []int{0, 1, 63, 64, 65, 130} {
		opps := make([]Player, n)
		for i := range opps {
			opps[i] = randomWordPlayer(1, src)
		}
		checkBatchMatchesScalar(t, batch, scalar, randomWordPlayer(1, src), opps, 5)
	}
}

// TestPlayBatchMixedLanesFallBack mixes SWAR-ineligible opponents (mixed
// strategies) into the batch; those lanes must take the scalar path with
// their own sources while the rest stay bit-sliced.
func TestPlayBatchMixedLanesFallBack(t *testing.T) {
	for _, noise := range []float64{0, 0.02} {
		batch, scalar := newTestEngines(t, 1, noise)
		src := rng.New(23)
		opps := make([]Player, 70)
		for i := range opps {
			if i%7 == 3 {
				opps[i] = &randPlayer{p: 0.4}
			} else {
				opps[i] = randomWordPlayer(1, src)
			}
		}
		checkBatchMatchesScalar(t, batch, scalar, randomWordPlayer(1, src), opps, 31)
		// A mixed focal player forces the scalar path for the whole batch.
		checkBatchMatchesScalar(t, batch, scalar, &randPlayer{p: 0.6}, opps, 37)
	}
}

// TestPlayBatchKernelRouting pins which kernel each mode uses, via the
// engine's kernel-mix counters.
func TestPlayBatchKernelRouting(t *testing.T) {
	mkEngine := func(mem int, k KernelMode) *Engine {
		e, err := NewEngine(EngineConfig{
			Rounds: DefaultRounds, MemorySteps: mem, AccumMode: AccumLookup, Kernel: k,
		})
		if err != nil {
			t.Fatal(err)
		}
		return e
	}
	src := rng.New(3)
	play := func(e *Engine, mem int) KernelStats {
		opps := make([]Player, 10)
		for i := range opps {
			opps[i] = randomWordPlayer(mem, src)
		}
		out := make([]Result, len(opps))
		if err := e.PlayBatch(randomWordPlayer(mem, src), opps, nil, out); err != nil {
			t.Fatal(err)
		}
		return e.KernelStats()
	}

	if s := play(mkEngine(1, KernelFullReplay), 1); s.BatchCalls != 0 || s.CycleGames != 0 || s.ScalarGames != 10 {
		t.Fatalf("full-replay mode used a fast path: %+v", s)
	}
	if s := play(mkEngine(1, KernelAuto), 1); s.BatchGames != 10 || s.BatchCalls != 1 {
		t.Fatalf("auto mode at memory-1 did not batch: %+v", s)
	}
	if s := play(mkEngine(4, KernelAuto), 4); s.BatchCalls != 0 || s.CycleGames+s.ScalarGames != 10 {
		t.Fatalf("auto mode at memory-4 batched anyway: %+v", s)
	}
	if s := play(mkEngine(4, KernelBatch), 4); s.BatchGames != 10 || s.BatchCalls != 1 {
		t.Fatalf("batch mode at memory-4 did not batch: %+v", s)
	}
	occ := KernelStats{BatchGames: 10, BatchCalls: 1}.BatchLaneOccupancy()
	if occ != 10.0/64 {
		t.Fatalf("BatchLaneOccupancy = %v, want %v", occ, 10.0/64)
	}
}

func TestPlayBatchValidation(t *testing.T) {
	batch, _ := newTestEngines(t, 1, 0)
	opps := []Player{randomWordPlayer(1, rng.New(1))}
	if err := batch.PlayBatch(randomWordPlayer(1, rng.New(2)), opps, nil, make([]Result, 2)); err == nil {
		t.Fatal("mismatched out length accepted")
	}
	if err := batch.PlayBatch(randomWordPlayer(1, rng.New(2)), opps, make([]*rng.Source, 2), make([]Result, 1)); err == nil {
		t.Fatal("mismatched srcs length accepted")
	}
	if err := batch.PlayBatch(nil, opps, nil, make([]Result, 1)); err == nil {
		t.Fatal("nil focal player accepted")
	}
	if err := batch.PlayBatch(randomWordPlayer(1, rng.New(2)), []Player{nil}, nil, make([]Result, 1)); err == nil {
		t.Fatal("nil opponent accepted")
	}
	noisy, _ := newTestEngines(t, 1, 0.05)
	if err := noisy.PlayBatch(randomWordPlayer(1, rng.New(2)), opps, nil, make([]Result, 1)); err == nil {
		t.Fatal("noisy batch without sources accepted")
	}
	if err := noisy.PlayBatch(randomWordPlayer(1, rng.New(2)), opps, make([]*rng.Source, 1), make([]Result, 1)); err == nil {
		t.Fatal("noisy batch with a nil per-game source accepted")
	}
	mismatched := randomWordPlayer(2, rng.New(3))
	if err := batch.PlayBatch(randomWordPlayer(1, rng.New(2)), []Player{mismatched}, nil, make([]Result, 1)); err == nil {
		t.Fatal("opponent with mismatched memory accepted")
	}
	if err := batch.PlayBatch(mismatched, opps, nil, make([]Result, 1)); err == nil {
		t.Fatal("focal player with mismatched memory accepted")
	}
}

// TestPlayBatchSteadyStateZeroAllocs is the alloc gate on the batch hot
// path: once the engine's buffer pool is warm, a full-occupancy noiseless
// batch must not allocate.
func TestPlayBatchSteadyStateZeroAllocs(t *testing.T) {
	batch, _ := newTestEngines(t, 1, 0)
	src := rng.New(11)
	opps := make([]Player, BatchLanes)
	for i := range opps {
		opps[i] = randomWordPlayer(1, src)
	}
	focal := randomWordPlayer(1, src)
	out := make([]Result, len(opps))
	if err := batch.PlayBatch(focal, opps, nil, out); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if err := batch.PlayBatch(focal, opps, nil, out); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state PlayBatch allocates %v times per call, want 0", allocs)
	}
}

func benchmarkPlayBatch(b *testing.B, mem int, noise float64, kernel KernelMode) {
	e, err := NewEngine(EngineConfig{
		Rounds: DefaultRounds, MemorySteps: mem, Noise: noise,
		AccumMode: AccumLookup, Kernel: kernel,
	})
	if err != nil {
		b.Fatal(err)
	}
	src := rng.New(2013)
	opps := make([]Player, BatchLanes)
	for i := range opps {
		opps[i] = randomWordPlayer(mem, src)
	}
	focal := randomWordPlayer(mem, src)
	var srcs []*rng.Source
	if noise > 0 {
		srcs = make([]*rng.Source, len(opps))
		for i := range srcs {
			srcs[i] = rng.New(uint64(i))
		}
	}
	out := make([]Result, len(opps))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := e.PlayBatch(focal, opps, srcs, out); err != nil {
			b.Fatal(err)
		}
	}
	games := float64(b.N) * float64(len(opps))
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/games, "ns/game")
}

func BenchmarkPlayBatchMemoryOne(b *testing.B)      { benchmarkPlayBatch(b, 1, 0, KernelBatch) }
func BenchmarkPlayBatchMemoryOneNoisy(b *testing.B) { benchmarkPlayBatch(b, 1, 0.05, KernelBatch) }
func BenchmarkPlayBatchMemoryThree(b *testing.B)    { benchmarkPlayBatch(b, 3, 0, KernelBatch) }
func BenchmarkPlayBatchScalarRef(b *testing.B)      { benchmarkPlayBatch(b, 1, 0, KernelFullReplay) }
