package game

import (
	"fmt"
	"testing"

	"evogame/internal/rng"
)

// wordPlayer is a deterministic player backed by a packed move table, the
// shape the cycle-closing kernel requires (strategy.Pure has the same shape;
// the game package cannot import it without a cycle).
type wordPlayer struct {
	mem   int
	words []uint64
}

func newWordPlayer(mem int) *wordPlayer {
	n := NumStates(mem)
	return &wordPlayer{mem: mem, words: make([]uint64, (n+63)/64)}
}

func randomWordPlayer(mem int, src *rng.Source) *wordPlayer {
	p := newWordPlayer(mem)
	src.FillUint64(p.words)
	if rem := NumStates(mem) % 64; rem != 0 {
		p.words[len(p.words)-1] &= (1 << uint(rem)) - 1
	}
	return p
}

func (p *wordPlayer) MemorySteps() int { return p.mem }

func (p *wordPlayer) Deterministic() bool { return true }

func (p *wordPlayer) Words() []uint64 { return p.words }

func (p *wordPlayer) Move(state int, _ *rng.Source) Move {
	return Move(p.words[state>>6] >> (uint(state) & 63) & 1)
}

func (p *wordPlayer) set(state int, m Move) {
	if m == Defect {
		p.words[state>>6] |= 1 << (uint(state) & 63)
	} else {
		p.words[state>>6] &^= 1 << (uint(state) & 63)
	}
}

func TestKernelModeStringAndParse(t *testing.T) {
	for _, tc := range []struct {
		mode KernelMode
		name string
	}{{KernelAuto, "auto"}, {KernelFullReplay, "full-replay"}} {
		if tc.mode.String() != tc.name {
			t.Errorf("%d.String() = %q, want %q", tc.mode, tc.mode.String(), tc.name)
		}
		got, err := ParseKernelMode(tc.name)
		if err != nil || got != tc.mode {
			t.Errorf("ParseKernelMode(%q) = %v, %v", tc.name, got, err)
		}
		if !tc.mode.Valid() {
			t.Errorf("%v should be valid", tc.mode)
		}
	}
	if m, err := ParseKernelMode(""); err != nil || m != KernelAuto {
		t.Errorf("empty selection = %v, %v; want KernelAuto", m, err)
	}
	if _, err := ParseKernelMode("bogus"); err == nil {
		t.Error("ParseKernelMode accepted an unknown mode")
	}
	if KernelMode(9).Valid() {
		t.Error("out-of-range mode should be invalid")
	}
	if KernelMode(9).String() == "" {
		t.Error("unknown mode should still render")
	}
	if _, err := NewEngine(EngineConfig{Rounds: 10, MemorySteps: 1, Kernel: KernelMode(9)}); err == nil {
		t.Error("NewEngine accepted an invalid kernel mode")
	}
}

// kernelEnginePair builds one engine per kernel mode with otherwise
// identical configuration.
func kernelEnginePair(t *testing.T, cfg EngineConfig) (auto, full *Engine) {
	t.Helper()
	cfg.Kernel = KernelAuto
	a, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Kernel = KernelFullReplay
	f, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return a, f
}

// TestCycleClosingExhaustiveMemoryOne pins the cycle-closing kernel to the
// full-replay reference over every ordered pair of the 16 memory-one
// deterministic strategies and a spread of round counts (including counts
// small enough that the fast path must fall back).
func TestCycleClosingExhaustiveMemoryOne(t *testing.T) {
	players := make([]*wordPlayer, 16)
	for code := 0; code < 16; code++ {
		p := newWordPlayer(1)
		for s := 0; s < 4; s++ {
			if code&(1<<uint(s)) != 0 {
				p.set(s, Defect)
			}
		}
		players[code] = p
	}
	for _, rounds := range []int{1, 2, 3, 5, 17, 50, 200} {
		auto, full := kernelEnginePair(t, EngineConfig{Rounds: rounds, MemorySteps: 1,
			StateMode: StateRolling, AccumMode: AccumLookup})
		for i, a := range players {
			for j, b := range players {
				want, err := full.Play(a, b, nil)
				if err != nil {
					t.Fatal(err)
				}
				got, err := auto.Play(a, b, nil)
				if err != nil {
					t.Fatal(err)
				}
				if got != want {
					t.Fatalf("rounds=%d pair (%d,%d): cycle-closing %+v, full replay %+v",
						rounds, i, j, got, want)
				}
			}
		}
	}
}

// TestCycleClosingRandomDeeperMemory cross-checks random strategy pairs at
// memory depths two through four, where the joint-state space is too large
// to enumerate but cycles still close quickly.
func TestCycleClosingRandomDeeperMemory(t *testing.T) {
	src := rng.New(99)
	for mem := 2; mem <= 4; mem++ {
		auto, full := kernelEnginePair(t, EngineConfig{Rounds: DefaultRounds, MemorySteps: mem,
			StateMode: StateRolling, AccumMode: AccumLookup})
		for trial := 0; trial < 40; trial++ {
			a := randomWordPlayer(mem, src)
			b := randomWordPlayer(mem, src)
			want, err := full.Play(a, b, nil)
			if err != nil {
				t.Fatal(err)
			}
			got, err := auto.Play(a, b, nil)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("memory-%d trial %d: cycle-closing %+v, full replay %+v", mem, trial, got, want)
			}
		}
	}
}

// TestCycleClosingGates verifies the bit-exactness gates: a fractional
// payoff matrix and players without packed move tables both run full replay
// (observable as the replay path's History allocations), while the
// qualifying configuration runs allocation-free.
func TestCycleClosingGates(t *testing.T) {
	a := newWordPlayer(1)
	b := newWordPlayer(1)
	b.set(0, Defect)
	b.set(2, Defect)

	auto, _ := kernelEnginePair(t, EngineConfig{Rounds: DefaultRounds, MemorySteps: 1,
		StateMode: StateRolling, AccumMode: AccumLookup})
	if n := testing.AllocsPerRun(50, func() {
		if _, err := auto.Play(a, b, nil); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Errorf("deterministic fast path allocates %v objects/op, want 0", n)
	}

	// Fractional payoffs: KernelAuto must not take the closed form.
	frac, err := Generic().WithPayoff(Matrix{Reward: 3.25, Sucker: 0.5, Temptation: 4.75, Punishment: 1.5})
	if err != nil {
		t.Fatal(err)
	}
	fracAuto, err := NewEngine(EngineConfig{Game: frac, Rounds: DefaultRounds, MemorySteps: 1,
		StateMode: StateRolling, AccumMode: AccumLookup})
	if err != nil {
		t.Fatal(err)
	}
	if n := testing.AllocsPerRun(10, func() {
		if _, err := fracAuto.Play(a, b, nil); err != nil {
			t.Fatal(err)
		}
	}); n == 0 {
		t.Error("fractional payoff matrix still took the cycle-closing path")
	}

	// Deterministic players without packed move tables fall back too.
	plain := makeMemOne(Cooperate, Defect, Cooperate, Defect)
	if n := testing.AllocsPerRun(10, func() {
		if _, err := auto.Play(plain, plain, nil); err != nil {
			t.Fatal(err)
		}
	}); n == 0 {
		t.Error("player without a move table still took the cycle-closing path")
	}
}

// TestCycleClosingSelfPlay covers the symmetric self-play diagonal, whose
// mirror key equals its own key.
func TestCycleClosingSelfPlay(t *testing.T) {
	src := rng.New(3)
	auto, full := kernelEnginePair(t, EngineConfig{Rounds: DefaultRounds, MemorySteps: 1,
		StateMode: StateRolling, AccumMode: AccumLookup})
	for trial := 0; trial < 16; trial++ {
		p := randomWordPlayer(1, src)
		want, err := full.Play(p, p, nil)
		if err != nil {
			t.Fatal(err)
		}
		got, err := auto.Play(p, p, nil)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("self-play trial %d: %+v vs %+v", trial, got, want)
		}
		if got.FitnessA != got.FitnessB || got.CooperationsA != got.CooperationsB {
			t.Fatalf("self-play must be symmetric: %+v", got)
		}
	}
}

func BenchmarkKernelMemoryOne(b *testing.B) {
	src := rng.New(11)
	a := randomWordPlayer(1, src)
	p := randomWordPlayer(1, src)
	for _, mode := range []KernelMode{KernelFullReplay, KernelAuto} {
		eng, err := NewEngine(EngineConfig{Rounds: DefaultRounds, MemorySteps: 1,
			StateMode: StateRolling, AccumMode: AccumLookup, Kernel: mode})
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("kernel-%s", mode), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := eng.Play(a, p, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
