package game

import (
	"math"
	"testing"
	"testing/quick"

	"evogame/internal/rng"
)

// testPlayer is a minimal Player implementation driven by a move table; the
// real strategy types live in the strategy package, which depends on this
// one, so tests here use a local stand-in.
type testPlayer struct {
	mem   int
	moves []Move // indexed by state
}

func (p *testPlayer) MemorySteps() int                   { return p.mem }
func (p *testPlayer) Deterministic() bool                { return true }
func (p *testPlayer) Move(state int, _ *rng.Source) Move { return p.moves[state] }

// makeMemOne returns a memory-one test player from the four moves for states
// CC, CD, DC, DD.
func makeMemOne(cc, cd, dc, dd Move) *testPlayer {
	return &testPlayer{mem: 1, moves: []Move{cc, cd, dc, dd}}
}

func allC() *testPlayer { return makeMemOne(Cooperate, Cooperate, Cooperate, Cooperate) }
func allD() *testPlayer { return makeMemOne(Defect, Defect, Defect, Defect) }
func tft() *testPlayer  { return makeMemOne(Cooperate, Defect, Cooperate, Defect) }
func wsls() *testPlayer { return makeMemOne(Cooperate, Defect, Defect, Cooperate) }

// randPlayer is a mixed test player that cooperates with probability p.
type randPlayer struct{ p float64 }

func (r *randPlayer) MemorySteps() int    { return 1 }
func (r *randPlayer) Deterministic() bool { return false }
func (r *randPlayer) Move(_ int, src *rng.Source) Move {
	if src.Bool(r.p) {
		return Cooperate
	}
	return Defect
}

func mustEngine(t *testing.T, cfg EngineConfig) *Engine {
	t.Helper()
	e, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestNewEngineDefaults(t *testing.T) {
	e := mustEngine(t, EngineConfig{Rounds: 10, MemorySteps: 1})
	if e.Payoff() != Standard() {
		t.Fatal("zero payoff matrix should default to Standard()")
	}
	if e.Rounds() != 10 || e.MemorySteps() != 1 || e.Noise() != 0 {
		t.Fatal("engine does not reflect its configuration")
	}
}

func TestNewEngineValidation(t *testing.T) {
	cases := []EngineConfig{
		{Rounds: 0, MemorySteps: 1},
		{Rounds: -5, MemorySteps: 1},
		{Rounds: 10, MemorySteps: 0},
		{Rounds: 10, MemorySteps: 7},
		{Rounds: 10, MemorySteps: 1, Noise: -0.1},
		{Rounds: 10, MemorySteps: 1, Noise: 1.5},
		{Rounds: 10, MemorySteps: 1, Payoff: Matrix{Reward: 1, Sucker: 2, Temptation: 3, Punishment: 4}},
	}
	for i, cfg := range cases {
		if _, err := NewEngine(cfg); err == nil {
			t.Errorf("case %d: NewEngine accepted invalid config %+v", i, cfg)
		}
	}
}

func TestPlayMemoryMismatch(t *testing.T) {
	e := mustEngine(t, EngineConfig{Rounds: 10, MemorySteps: 2})
	if _, err := e.Play(allC(), allC(), nil); err == nil {
		t.Fatal("Play accepted players whose memory does not match the engine")
	}
}

func TestPlayRequiresSourceWhenRandom(t *testing.T) {
	e := mustEngine(t, EngineConfig{Rounds: 10, MemorySteps: 1, Noise: 0.1})
	if _, err := e.Play(allC(), allC(), nil); err == nil {
		t.Fatal("Play with noise accepted a nil rng source")
	}
	e2 := mustEngine(t, EngineConfig{Rounds: 10, MemorySteps: 1})
	if _, err := e2.Play(&randPlayer{p: 0.5}, allC(), nil); err == nil {
		t.Fatal("Play with a mixed strategy accepted a nil rng source")
	}
}

func TestAllCvsAllC(t *testing.T) {
	e := mustEngine(t, EngineConfig{Rounds: 200, MemorySteps: 1})
	res, err := e.Play(allC(), allC(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.FitnessA != 600 || res.FitnessB != 600 {
		t.Fatalf("AllC vs AllC fitness = %v/%v, want 600/600", res.FitnessA, res.FitnessB)
	}
	if res.CooperationsA != 200 || res.CooperationsB != 200 {
		t.Fatalf("cooperation counts = %d/%d, want 200/200", res.CooperationsA, res.CooperationsB)
	}
}

func TestAllDvsAllC(t *testing.T) {
	e := mustEngine(t, EngineConfig{Rounds: 200, MemorySteps: 1})
	res, err := e.Play(allD(), allC(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.FitnessA != 800 {
		t.Fatalf("AllD vs AllC exploiter fitness = %v, want 800 (T each round)", res.FitnessA)
	}
	if res.FitnessB != 0 {
		t.Fatalf("AllC vs AllD sucker fitness = %v, want 0", res.FitnessB)
	}
}

func TestAllDvsAllD(t *testing.T) {
	e := mustEngine(t, EngineConfig{Rounds: 100, MemorySteps: 1})
	res, err := e.Play(allD(), allD(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.FitnessA != 100 || res.FitnessB != 100 {
		t.Fatalf("AllD vs AllD fitness = %v/%v, want 100/100 (P each round)", res.FitnessA, res.FitnessB)
	}
}

func TestTFTvsAllD(t *testing.T) {
	// TFT cooperates in round one (state CC from the seeded history) and is
	// exploited once, then defects forever: fitness = S + (n-1)*P.
	e := mustEngine(t, EngineConfig{Rounds: 200, MemorySteps: 1})
	res, err := e.Play(tft(), allD(), nil)
	if err != nil {
		t.Fatal(err)
	}
	wantTFT := 0.0 + 199*1
	wantAllD := 4.0 + 199*1
	if res.FitnessA != wantTFT || res.FitnessB != wantAllD {
		t.Fatalf("TFT vs AllD fitness = %v/%v, want %v/%v", res.FitnessA, res.FitnessB, wantTFT, wantAllD)
	}
}

func TestTFTvsTFTSustainsCooperation(t *testing.T) {
	e := mustEngine(t, EngineConfig{Rounds: 200, MemorySteps: 1})
	res, err := e.Play(tft(), tft(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.FitnessA != 600 || res.FitnessB != 600 {
		t.Fatalf("TFT vs TFT fitness = %v/%v, want mutual cooperation (600/600)", res.FitnessA, res.FitnessB)
	}
}

func TestWSLSvsWSLSSustainsCooperation(t *testing.T) {
	e := mustEngine(t, EngineConfig{Rounds: 100, MemorySteps: 1})
	res, err := e.Play(wsls(), wsls(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.FitnessA != 300 || res.FitnessB != 300 {
		t.Fatalf("WSLS vs WSLS fitness = %v/%v, want 300/300", res.FitnessA, res.FitnessB)
	}
}

func TestWSLSRecoversFromSingleError(t *testing.T) {
	// The defining property of WSLS (Nowak & Sigmund 1993): after a single
	// accidental defection between two WSLS players, both players defect the
	// next round (both were "punished"/"tempted"... the defector won so it
	// stays with defect, the sucker shifts to defect), then both switch back
	// to cooperation together.  TFT instead locks into alternating
	// defection.  We simulate the error by starting from the post-error
	// state rather than injecting noise, keeping the test deterministic.
	e := mustEngine(t, EngineConfig{Rounds: 3, MemorySteps: 1})

	// Build explicit histories: round 0, A defected (error), B cooperated.
	// For WSLS: A is in state DC -> defect again; B is in state CD -> defect.
	// Round 2: both in DD -> both cooperate.  So within two rounds mutual
	// cooperation is restored.
	a, b := wsls(), wsls()
	histA, histB := NewHistory(1), NewHistory(1)
	histA.Push(Defect, Cooperate)
	histB.Push(Cooperate, Defect)

	moveA := a.Move(histA.State(), nil)
	moveB := b.Move(histB.State(), nil)
	if moveA != Defect || moveB != Defect {
		t.Fatalf("round 1 after error: moves %s/%s, want D/D", moveA, moveB)
	}
	histA.Push(moveA, moveB)
	histB.Push(moveB, moveA)
	moveA = a.Move(histA.State(), nil)
	moveB = b.Move(histB.State(), nil)
	if moveA != Cooperate || moveB != Cooperate {
		t.Fatalf("round 2 after error: moves %s/%s, want C/C (WSLS recovers)", moveA, moveB)
	}

	_ = e // engine not needed beyond construction; kept for symmetry with other tests
}

func TestTFTDeathSpiralAfterError(t *testing.T) {
	// Contrast with WSLS: two TFT players never recover from a single
	// error — they alternate defections forever.
	a, b := tft(), tft()
	histA, histB := NewHistory(1), NewHistory(1)
	histA.Push(Defect, Cooperate)
	histB.Push(Cooperate, Defect)
	mutualCooperation := false
	for round := 0; round < 10; round++ {
		moveA := a.Move(histA.State(), nil)
		moveB := b.Move(histB.State(), nil)
		if moveA == Cooperate && moveB == Cooperate {
			mutualCooperation = true
		}
		histA.Push(moveA, moveB)
		histB.Push(moveB, moveA)
	}
	if mutualCooperation {
		t.Fatal("TFT vs TFT recovered mutual cooperation after an error; it should not")
	}
}

func TestAccumModesAgree(t *testing.T) {
	for _, players := range [][2]*testPlayer{{allC(), allD()}, {tft(), wsls()}, {wsls(), allD()}} {
		branch := mustEngine(t, EngineConfig{Rounds: 50, MemorySteps: 1, AccumMode: AccumBranching})
		lookup := mustEngine(t, EngineConfig{Rounds: 50, MemorySteps: 1, AccumMode: AccumLookup})
		r1, err := branch.Play(players[0], players[1], nil)
		if err != nil {
			t.Fatal(err)
		}
		r2, err := lookup.Play(players[0], players[1], nil)
		if err != nil {
			t.Fatal(err)
		}
		if r1 != r2 {
			t.Fatalf("accumulation modes disagree: %+v vs %+v", r1, r2)
		}
	}
}

func TestStateModesAgree(t *testing.T) {
	for mem := 1; mem <= 3; mem++ {
		// Use memory-n WSLS-like players: cooperate when the most recent
		// round was symmetric.
		n := NumStates(mem)
		moves := make([]Move, n)
		for s := 0; s < n; s++ {
			if (s&3) == 0 || (s&3) == 3 {
				moves[s] = Cooperate
			} else {
				moves[s] = Defect
			}
		}
		p := &testPlayer{mem: mem, moves: moves}
		q := &testPlayer{mem: mem, moves: append([]Move(nil), moves...)}
		linear := mustEngine(t, EngineConfig{Rounds: 80, MemorySteps: mem, StateMode: StateLinearSearch})
		rolling := mustEngine(t, EngineConfig{Rounds: 80, MemorySteps: mem, StateMode: StateRolling})
		r1, err := linear.Play(p, q, nil)
		if err != nil {
			t.Fatal(err)
		}
		r2, err := rolling.Play(p, q, nil)
		if err != nil {
			t.Fatal(err)
		}
		if r1 != r2 {
			t.Fatalf("memory-%d: state modes disagree: %+v vs %+v", mem, r1, r2)
		}
	}
}

func TestGameSymmetry(t *testing.T) {
	// Swapping the players swaps the results.
	e := mustEngine(t, EngineConfig{Rounds: 64, MemorySteps: 1})
	r1, err := e.Play(tft(), allD(), nil)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := e.Play(allD(), tft(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if r1.FitnessA != r2.FitnessB || r1.FitnessB != r2.FitnessA {
		t.Fatalf("game is not symmetric: %+v vs %+v", r1, r2)
	}
}

func TestNoiseReducesAllCFitnessAgainstItself(t *testing.T) {
	// With noise, two AllC players occasionally defect, so total fitness
	// drops below the noiseless 2*R*rounds while staying above 2*P*rounds.
	src := rng.New(123)
	e := mustEngine(t, EngineConfig{Rounds: 200, MemorySteps: 1, Noise: 0.1})
	res, err := e.Play(allC(), allC(), src)
	if err != nil {
		t.Fatal(err)
	}
	total := res.FitnessA + res.FitnessB
	if total >= 1200 {
		t.Fatalf("noisy AllC vs AllC total fitness %v, want < 1200", total)
	}
	if total <= 400 {
		t.Fatalf("noisy AllC vs AllC total fitness %v is implausibly low", total)
	}
	if res.CooperationsA == 200 && res.CooperationsB == 200 {
		t.Fatal("noise at 10% produced no defections in 400 moves")
	}
}

func TestNoiseIsDeterministicGivenSeed(t *testing.T) {
	e := mustEngine(t, EngineConfig{Rounds: 100, MemorySteps: 1, Noise: 0.05})
	r1, err := e.Play(tft(), wsls(), rng.New(99))
	if err != nil {
		t.Fatal(err)
	}
	r2, err := e.Play(tft(), wsls(), rng.New(99))
	if err != nil {
		t.Fatal(err)
	}
	if r1 != r2 {
		t.Fatalf("same seed produced different noisy games: %+v vs %+v", r1, r2)
	}
}

func TestMixedStrategyFullyRandom(t *testing.T) {
	src := rng.New(7)
	e := mustEngine(t, EngineConfig{Rounds: 2000, MemorySteps: 1})
	res, err := e.Play(&randPlayer{p: 0.5}, &randPlayer{p: 0.5}, src)
	if err != nil {
		t.Fatal(err)
	}
	// Expected per-round payoff for random vs random is (3+0+4+1)/4 = 2.
	avg := (res.FitnessA + res.FitnessB) / (2 * 2000)
	if math.Abs(avg-2) > 0.15 {
		t.Fatalf("random vs random mean per-round payoff %v, want ~2", avg)
	}
}

func TestPlayFitness(t *testing.T) {
	e := mustEngine(t, EngineConfig{Rounds: 10, MemorySteps: 1})
	fit, err := e.PlayFitness(allD(), allC(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if fit != 40 {
		t.Fatalf("PlayFitness = %v, want 40", fit)
	}
	if _, err := e.PlayFitness(&testPlayer{mem: 2, moves: make([]Move, 16)}, allC(), nil); err == nil {
		t.Fatal("PlayFitness accepted mismatched memory")
	}
}

func TestResultAverages(t *testing.T) {
	r := Result{FitnessA: 600, FitnessB: 300, Rounds: 200}
	if r.AverageFitnessA() != 3 || r.AverageFitnessB() != 1.5 {
		t.Fatalf("averages = %v/%v", r.AverageFitnessA(), r.AverageFitnessB())
	}
	empty := Result{}
	if empty.AverageFitnessA() != 0 || empty.AverageFitnessB() != 0 {
		t.Fatal("zero-round result should have zero averages")
	}
}

// Property: total fitness of any deterministic memory-one game is bounded by
// the number of rounds times the extreme payoffs, and fitness is never
// negative for the standard matrix.
func TestQuickFitnessBounds(t *testing.T) {
	e := mustEngine(t, EngineConfig{Rounds: 50, MemorySteps: 1})
	f := func(bitsA, bitsB uint8) bool {
		a := makeMemOne(Move(bitsA&1), Move((bitsA>>1)&1), Move((bitsA>>2)&1), Move((bitsA>>3)&1))
		b := makeMemOne(Move(bitsB&1), Move((bitsB>>1)&1), Move((bitsB>>2)&1), Move((bitsB>>3)&1))
		res, err := e.Play(a, b, nil)
		if err != nil {
			return false
		}
		maxTotal := 50 * (Standard().Temptation + Standard().Sucker) // exploit rounds
		_ = maxTotal
		perPlayerMax := 50 * Standard().MaxPerRound()
		return res.FitnessA >= 0 && res.FitnessB >= 0 &&
			res.FitnessA <= perPlayerMax && res.FitnessB <= perPlayerMax &&
			res.CooperationsA >= 0 && res.CooperationsA <= 50 &&
			res.CooperationsB >= 0 && res.CooperationsB <= 50
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: deterministic games are reproducible — playing the same pair
// twice gives identical results.
func TestQuickDeterministicReproducible(t *testing.T) {
	e := mustEngine(t, EngineConfig{Rounds: 30, MemorySteps: 1})
	f := func(bitsA, bitsB uint8) bool {
		a := makeMemOne(Move(bitsA&1), Move((bitsA>>1)&1), Move((bitsA>>2)&1), Move((bitsA>>3)&1))
		b := makeMemOne(Move(bitsB&1), Move((bitsB>>1)&1), Move((bitsB>>2)&1), Move((bitsB>>3)&1))
		r1, err1 := e.Play(a, b, nil)
		r2, err2 := e.Play(a, b, nil)
		return err1 == nil && err2 == nil && r1 == r2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkPlayMemoryOneRolling(b *testing.B) {
	e, _ := NewEngine(EngineConfig{Rounds: DefaultRounds, MemorySteps: 1, StateMode: StateRolling, AccumMode: AccumLookup})
	a, c := wsls(), tft()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, _ = e.Play(a, c, nil)
	}
}

func BenchmarkPlayMemoryOneLinearSearch(b *testing.B) {
	e, _ := NewEngine(EngineConfig{Rounds: DefaultRounds, MemorySteps: 1, StateMode: StateLinearSearch, AccumMode: AccumBranching})
	a, c := wsls(), tft()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, _ = e.Play(a, c, nil)
	}
}
