// Package faults provides deterministic, replayable fault plans for
// chaos-testing the distributed engine.  A Plan is a finite schedule of
// rank crashes, message drops and message delays keyed on (generation,
// rank) points; it satisfies the mpi.FaultInjector contract structurally
// (this package deliberately does not import internal/mpi, so the serial
// engine can consume plans without pulling in the fabric).
//
// Determinism contract: a Plan holds no hidden clock or ambient
// randomness.  Random plans are derived from an explicit seed through the
// internal/rng discipline, so a chaos run is exactly replayable from
// (seed, spec).  Every event is consumed as it fires (a bounded Count,
// -1 = unlimited), which is what makes supervised recovery converge: a
// crash that already fired is not re-armed when the supervisor resumes
// the run from a checkpoint.
package faults

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"time"

	"evogame/internal/rng"
)

// Kind enumerates the fault classes a Plan can inject.
type Kind int

// The fault classes: a rank crash (the rank exits with a *CrashError at
// its next fault point), a message drop (the sender's next send at or
// after the event generation is lost in transit), and a message delay
// (extra in-transit latency on the sender's next send).
const (
	Crash Kind = iota
	Drop
	Delay
)

// String names the fault kind as it appears in the spec grammar.
func (k Kind) String() string {
	switch k {
	case Crash:
		return "crash"
	case Drop:
		return "drop"
	case Delay:
		return "delay"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// DefaultDelay is the injected latency of a delay event that does not
// specify its own duration.
const DefaultDelay = time.Millisecond

// ErrInjected is the sentinel matched (via errors.Is) by every error this
// package injects; the supervisor classifies such failures as transient.
var ErrInjected = errors.New("faults: injected fault")

// CrashError is the error a rank exits with when its fault plan schedules
// a crash.  errors.Is(err, ErrInjected) matches it.
type CrashError struct {
	Rank int // the crashed rank
	Gen  int // the generation at which the crash fired
}

func (e *CrashError) Error() string {
	return fmt.Sprintf("faults: injected crash of rank %d at generation %d", e.Rank, e.Gen)
}

// Is matches the ErrInjected sentinel.
func (e *CrashError) Is(target error) bool { return target == ErrInjected }

// Event is one scheduled fault.  An event is armed from generation Gen
// onward and fires at the first matching opportunity (the rank's next
// fault point for crashes, the rank's next send for drops and delays), at
// most Count times.
type Event struct {
	// Kind is the fault class.
	Kind Kind
	// Gen is the first generation (epoch) at which the event is armed.
	Gen int
	// Rank is the crashing rank (Crash) or the sending rank (Drop, Delay).
	Rank int
	// Count is how many times the event fires: 0 means once, a negative
	// value means every time (a permanent fault).
	Count int
	// Delay is the injected latency of a Delay event (DefaultDelay if 0).
	Delay time.Duration
}

func (e Event) String() string {
	s := fmt.Sprintf("%s@%d:r%d", e.Kind, e.Gen, e.Rank)
	if e.Kind == Delay && e.Delay > 0 && e.Delay != DefaultDelay {
		s += ":" + e.Delay.String()
	}
	if e.Count < 0 {
		s += ":x*"
	} else if e.Count > 1 {
		s += fmt.Sprintf(":x%d", e.Count)
	}
	return s
}

// armed is an Event plus its remaining-firings counter.
type armed struct {
	Event
	remaining int // < 0 = unlimited
}

// Plan is a consumable schedule of fault events, safe for concurrent use
// by every rank of a communicator.  The zero value (and a nil *Plan) is a
// no-op injector.
type Plan struct {
	mu      sync.Mutex
	events  []armed
	crashes int64
	drops   int64
	delays  int64
}

// NewPlan builds a Plan from explicit events.  Passing no events yields a
// no-op plan.
func NewPlan(events ...Event) *Plan {
	p := &Plan{events: make([]armed, 0, len(events))}
	for _, e := range events {
		n := e.Count
		if n == 0 {
			n = 1
		}
		if e.Kind == Delay && e.Delay <= 0 {
			e.Delay = DefaultDelay
		}
		p.events = append(p.events, armed{Event: e, remaining: n})
	}
	return p
}

// consume fires and decrements the first armed event matching (kind, rank)
// at or after gen, returning the event and whether one fired.
func (p *Plan) consume(kind Kind, rank, gen int) (Event, bool) {
	for i := range p.events {
		ev := &p.events[i]
		if ev.Kind != kind || ev.Rank != rank || gen < ev.Gen || ev.remaining == 0 {
			continue
		}
		if ev.remaining > 0 {
			ev.remaining--
		}
		return ev.Event, true
	}
	return Event{}, false
}

// Crash implements the injector contract: it returns a *CrashError when a
// crash event is armed for (rank, epoch), consuming the event.
func (p *Plan) Crash(rank, epoch int) error {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if _, ok := p.consume(Crash, rank, epoch); ok {
		p.crashes++
		return &CrashError{Rank: rank, Gen: epoch}
	}
	return nil
}

// Drop implements the injector contract: it reports whether the next
// message sent by src at the given epoch is lost, consuming one drop
// event per affirmative answer.  The destination is accepted for
// interface compatibility; events are keyed on the sender.
func (p *Plan) Drop(src, _, epoch int) bool {
	if p == nil {
		return false
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if _, ok := p.consume(Drop, src, epoch); ok {
		p.drops++
		return true
	}
	return false
}

// Delay implements the injector contract: it returns the extra in-transit
// latency of the next message sent by src at the given epoch (0 = none),
// consuming one delay event per non-zero answer.
func (p *Plan) Delay(src, _, epoch int) time.Duration {
	if p == nil {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if ev, ok := p.consume(Delay, src, epoch); ok {
		p.delays++
		return ev.Delay
	}
	return 0
}

// Fired returns how many events of each class have fired so far.
func (p *Plan) Fired() (crashes, drops, delays int64) {
	if p == nil {
		return 0, 0, 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.crashes, p.drops, p.delays
}

// Events returns a copy of the plan's schedule (original counts, not the
// remaining ones).
func (p *Plan) Events() []Event {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]Event, len(p.events))
	for i, ev := range p.events {
		out[i] = ev.Event
	}
	return out
}

// String renders the plan in the spec grammar accepted by Parse.
func (p *Plan) String() string {
	if p == nil {
		return ""
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	parts := make([]string, len(p.events))
	for i, ev := range p.events {
		parts[i] = ev.Event.String()
	}
	return strings.Join(parts, ",")
}

// Parse builds a Plan from a comma-separated spec.  Each event is
//
//	crash@GEN:rRANK[:xCOUNT]
//	drop@GEN:rRANK[:xCOUNT]
//	delay@GEN:rRANK[:DURATION][:xCOUNT]
//
// where COUNT is a positive firing count or * for a permanent fault, and
// DURATION is a Go duration ("2ms").  The pseudo-event
//
//	rand:N[:MAXGEN]
//
// expands to N events drawn deterministically from seed (see Random) over
// generations [1, MAXGEN) — MAXGEN defaults to 64 — and ranks [0, ranks).
// An empty spec yields a nil plan.  seed and ranks are only consulted by
// rand events.
func Parse(spec string, seed uint64, ranks int) (*Plan, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, nil
	}
	if ranks <= 0 {
		return nil, fmt.Errorf("faults: ranks must be positive to parse spec %q, got %d", spec, ranks)
	}
	var events []Event
	for _, raw := range strings.Split(spec, ",") {
		part := strings.TrimSpace(raw)
		if part == "" {
			return nil, fmt.Errorf("faults: spec %q has an empty event", spec)
		}
		if rest, ok := strings.CutPrefix(part, "rand:"); ok {
			evs, err := parseRand(rest, seed, ranks)
			if err != nil {
				return nil, fmt.Errorf("faults: spec event %q: %w", part, err)
			}
			events = append(events, evs...)
			continue
		}
		ev, err := parseEvent(part, ranks)
		if err != nil {
			return nil, fmt.Errorf("faults: spec event %q: %w", part, err)
		}
		events = append(events, ev)
	}
	return NewPlan(events...), nil
}

// parseEvent parses one crash/drop/delay event of the spec grammar.
func parseEvent(part string, ranks int) (Event, error) {
	kindStr, rest, ok := strings.Cut(part, "@")
	if !ok {
		return Event{}, errors.New("missing @GEN")
	}
	var ev Event
	switch kindStr {
	case "crash":
		ev.Kind = Crash
	case "drop":
		ev.Kind = Drop
	case "delay":
		ev.Kind = Delay
	default:
		return Event{}, fmt.Errorf("unknown fault kind %q (want crash, drop or delay)", kindStr)
	}
	fields := strings.Split(rest, ":")
	if len(fields) < 2 {
		return Event{}, errors.New("missing :rRANK")
	}
	gen, err := strconv.Atoi(fields[0])
	if err != nil || gen < 0 {
		return Event{}, fmt.Errorf("generation %q must be a non-negative integer", fields[0])
	}
	ev.Gen = gen
	rankStr, ok := strings.CutPrefix(fields[1], "r")
	if !ok {
		return Event{}, fmt.Errorf("rank %q must be rN", fields[1])
	}
	rank, err := strconv.Atoi(rankStr)
	if err != nil || rank < 0 || rank >= ranks {
		return Event{}, fmt.Errorf("rank %q must name a rank in [0,%d)", fields[1], ranks)
	}
	ev.Rank = rank
	for _, f := range fields[2:] {
		if f == "x*" {
			ev.Count = -1
			continue
		}
		if nStr, ok := strings.CutPrefix(f, "x"); ok {
			n, err := strconv.Atoi(nStr)
			if err != nil || n <= 0 {
				return Event{}, fmt.Errorf("count %q must be a positive integer or x*", f)
			}
			ev.Count = n
			continue
		}
		if ev.Kind != Delay {
			return Event{}, fmt.Errorf("unexpected field %q (only delay events take a duration)", f)
		}
		d, err := time.ParseDuration(f)
		if err != nil || d <= 0 {
			return Event{}, fmt.Errorf("duration %q must be a positive Go duration", f)
		}
		ev.Delay = d
	}
	return ev, nil
}

// parseRand parses the N[:MAXGEN] tail of a rand pseudo-event.
func parseRand(rest string, seed uint64, ranks int) ([]Event, error) {
	fields := strings.Split(rest, ":")
	n, err := strconv.Atoi(fields[0])
	if err != nil || n <= 0 {
		return nil, fmt.Errorf("rand count %q must be a positive integer", fields[0])
	}
	maxGen := 64
	if len(fields) > 1 {
		maxGen, err = strconv.Atoi(fields[1])
		if err != nil || maxGen <= 1 {
			return nil, fmt.Errorf("rand MAXGEN %q must be an integer > 1", fields[1])
		}
	}
	if len(fields) > 2 {
		return nil, fmt.Errorf("rand takes at most N:MAXGEN, got %d fields", len(fields))
	}
	return RandomEvents(seed, n, maxGen, ranks), nil
}

// RandomEvents derives n fault events deterministically from seed: kinds
// cycle crash/drop/delay, generations are uniform in [1, maxGen), ranks
// uniform in [0, ranks).  The same (seed, n, maxGen, ranks) always yields
// the same schedule, which is what makes a chaos run replayable.
func RandomEvents(seed uint64, n, maxGen, ranks int) []Event {
	// Offset the seed so a random fault plan never shares a stream with
	// the simulation's own rng tree for the same run seed.
	src := rng.New(seed ^ 0x9e3779b97f4a7c15)
	events := make([]Event, n)
	for i := range events {
		events[i] = Event{
			Kind: Kind(i % 3),
			Gen:  1 + int(src.Uint64n(uint64(maxGen-1))),
			Rank: int(src.Uint64n(uint64(ranks))),
		}
	}
	return events
}
