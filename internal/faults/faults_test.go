package faults

import (
	"errors"
	"testing"
	"time"
)

func TestParseGrammar(t *testing.T) {
	cases := []struct {
		spec string
		want []Event
	}{
		{"crash@40:r1", []Event{{Kind: Crash, Gen: 40, Rank: 1}}},
		{"drop@10:r2:x3", []Event{{Kind: Drop, Gen: 10, Rank: 2, Count: 3}}},
		{"drop@10:r2:x*", []Event{{Kind: Drop, Gen: 10, Rank: 2, Count: -1}}},
		{"delay@5:r0", []Event{{Kind: Delay, Gen: 5, Rank: 0, Delay: DefaultDelay}}},
		{"delay@5:r0:2ms:x2", []Event{{Kind: Delay, Gen: 5, Rank: 0, Delay: 2 * time.Millisecond, Count: 2}}},
		{"crash@1:r0,drop@2:r1", []Event{{Kind: Crash, Gen: 1, Rank: 0}, {Kind: Drop, Gen: 2, Rank: 1}}},
		{" crash@0:r3 ", []Event{{Kind: Crash, Gen: 0, Rank: 3}}},
	}
	for _, tc := range cases {
		plan, err := Parse(tc.spec, 7, 4)
		if err != nil {
			t.Errorf("Parse(%q): %v", tc.spec, err)
			continue
		}
		got := plan.Events()
		if len(got) != len(tc.want) {
			t.Errorf("Parse(%q): %d events, want %d", tc.spec, len(got), len(tc.want))
			continue
		}
		for i := range got {
			w := tc.want[i]
			// NewPlan normalizes Count 0 -> fires once but Events() returns
			// the original Count, so compare fields directly.
			if got[i].Kind != w.Kind || got[i].Gen != w.Gen || got[i].Rank != w.Rank ||
				got[i].Count != w.Count || got[i].Delay != w.Delay {
				t.Errorf("Parse(%q) event %d = %+v, want %+v", tc.spec, i, got[i], w)
			}
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"crash",           // missing @GEN
		"crash@x:r0",      // bad generation
		"crash@-1:r0",     // negative generation
		"crash@1:x0",      // bad rank syntax
		"crash@1:r9",      // rank out of range
		"crash@1:r0:x0",   // non-positive count
		"crash@1:r0:2ms",  // duration on a non-delay event
		"delay@1:r0:-2ms", // negative duration
		"boom@1:r0",       // unknown kind
		"crash@1:r0,,",    // empty event
		"rand:0",          // non-positive rand count
		"rand:3:1",        // MAXGEN too small
		"rand:3:10:zz",    // too many rand fields
	}
	for _, spec := range bad {
		if _, err := Parse(spec, 7, 4); err == nil {
			t.Errorf("Parse(%q): want error, got nil", spec)
		}
	}
	if _, err := Parse("crash@1:r0", 7, 0); err == nil {
		t.Errorf("Parse with 0 ranks: want error, got nil")
	}
}

func TestParseEmptySpecIsNilPlan(t *testing.T) {
	plan, err := Parse("", 7, 4)
	if err != nil || plan != nil {
		t.Fatalf("Parse(\"\") = (%v, %v), want (nil, nil)", plan, err)
	}
	// A nil plan is a usable no-op injector.
	if err := plan.Crash(0, 10); err != nil {
		t.Errorf("nil plan Crash = %v, want nil", err)
	}
	if plan.Drop(0, 1, 10) {
		t.Errorf("nil plan Drop = true, want false")
	}
	if d := plan.Delay(0, 1, 10); d != 0 {
		t.Errorf("nil plan Delay = %v, want 0", d)
	}
	if c, d, l := plan.Fired(); c != 0 || d != 0 || l != 0 {
		t.Errorf("nil plan Fired = (%d,%d,%d), want zeros", c, d, l)
	}
	if s := plan.String(); s != "" {
		t.Errorf("nil plan String = %q, want empty", s)
	}
	if evs := plan.Events(); evs != nil {
		t.Errorf("nil plan Events = %v, want nil", evs)
	}
}

func TestCrashFiresOnceAtOrAfterGen(t *testing.T) {
	plan := NewPlan(Event{Kind: Crash, Gen: 5, Rank: 1})
	if err := plan.Crash(1, 4); err != nil {
		t.Fatalf("crash fired before its generation: %v", err)
	}
	if err := plan.Crash(0, 5); err != nil {
		t.Fatalf("crash fired for the wrong rank: %v", err)
	}
	err := plan.Crash(1, 7) // matches at gen >= 5
	if err == nil {
		t.Fatal("crash did not fire at gen 7 >= 5")
	}
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("crash error %v does not match ErrInjected", err)
	}
	var ce *CrashError
	if !errors.As(err, &ce) || ce.Rank != 1 || ce.Gen != 7 {
		t.Fatalf("crash error %v, want CrashError{Rank:1, Gen:7}", err)
	}
	// One-shot: the event is consumed and never re-fires, which is what
	// lets supervised recovery converge.
	if err := plan.Crash(1, 8); err != nil {
		t.Fatalf("consumed crash re-fired: %v", err)
	}
	if c, _, _ := plan.Fired(); c != 1 {
		t.Fatalf("Fired crashes = %d, want 1", c)
	}
}

func TestDropCountAndPermanent(t *testing.T) {
	plan := NewPlan(
		Event{Kind: Drop, Gen: 2, Rank: 0, Count: 2},
		Event{Kind: Drop, Gen: 10, Rank: 1, Count: -1},
	)
	fired := 0
	for i := 0; i < 5; i++ {
		if plan.Drop(0, 3, 2) {
			fired++
		}
	}
	if fired != 2 {
		t.Fatalf("count-2 drop fired %d times, want 2", fired)
	}
	for i := 0; i < 100; i++ {
		if !plan.Drop(1, 0, 10+i) {
			t.Fatalf("permanent drop stopped firing at i=%d", i)
		}
	}
}

func TestDelayReturnsConfiguredDuration(t *testing.T) {
	plan := NewPlan(Event{Kind: Delay, Gen: 1, Rank: 2, Delay: 3 * time.Millisecond})
	if d := plan.Delay(2, 0, 1); d != 3*time.Millisecond {
		t.Fatalf("Delay = %v, want 3ms", d)
	}
	if d := plan.Delay(2, 0, 2); d != 0 {
		t.Fatalf("consumed delay re-fired with %v", d)
	}
	// Zero-delay events are normalized to DefaultDelay.
	plan = NewPlan(Event{Kind: Delay, Gen: 0, Rank: 0})
	if d := plan.Delay(0, 1, 0); d != DefaultDelay {
		t.Fatalf("defaulted Delay = %v, want %v", d, DefaultDelay)
	}
}

func TestRandomEventsDeterministic(t *testing.T) {
	a := RandomEvents(42, 9, 64, 5)
	b := RandomEvents(42, 9, 64, 5)
	if len(a) != 9 {
		t.Fatalf("RandomEvents returned %d events, want 9", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("RandomEvents not deterministic at %d: %+v vs %+v", i, a[i], b[i])
		}
		if a[i].Gen < 1 || a[i].Gen >= 64 {
			t.Errorf("event %d generation %d out of [1,64)", i, a[i].Gen)
		}
		if a[i].Rank < 0 || a[i].Rank >= 5 {
			t.Errorf("event %d rank %d out of [0,5)", i, a[i].Rank)
		}
	}
	c := RandomEvents(43, 9, 64, 5)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical schedules")
	}
}

func TestPlanStringRoundTrips(t *testing.T) {
	spec := "crash@40:r1,drop@10:r2:x3,delay@5:r0:2ms,drop@7:r3:x*"
	plan, err := Parse(spec, 7, 4)
	if err != nil {
		t.Fatal(err)
	}
	rendered := plan.String()
	again, err := Parse(rendered, 7, 4)
	if err != nil {
		t.Fatalf("re-parsing rendered plan %q: %v", rendered, err)
	}
	a, b := plan.Events(), again.Events()
	if len(a) != len(b) {
		t.Fatalf("round trip changed event count: %d vs %d", len(a), len(b))
	}
	for i := range a {
		// Count 0 and 1 both mean "fires once"; String renders neither.
		na, nb := a[i], b[i]
		if na.Count == 1 {
			na.Count = 0
		}
		if nb.Count == 1 {
			nb.Count = 0
		}
		if na != nb {
			t.Errorf("round trip event %d: %+v vs %+v", i, a[i], b[i])
		}
	}
}
