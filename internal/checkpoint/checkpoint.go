// Package checkpoint persists and restores the state of a long evolutionary
// run: the generation counter, the configuration fingerprint, and the full
// strategy table.  The paper's production runs span 10^7 generations; a
// checkpoint lets such runs be resumed after an interruption and lets the
// validation tooling post-process a finished population (for example the
// k-means clustering of Figure 2) without re-running the simulation.
//
// The format is a small gob-encoded envelope around the strategy codec of
// internal/strategy, so it remains readable as the internal strategy types
// evolve.  Since format version 4 a snapshot can carry full resume state —
// the named RNG stream states and the Nature Agent's event counters — from
// which either engine continues a run bit-identically; Save is atomic and
// durable (unique temp file, fsync, rename, directory fsync), so a crash
// mid-write never corrupts the previous checkpoint.  See docs/CHECKPOINT.md
// for the field-by-field format and the compatibility matrix.
package checkpoint

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"evogame/internal/game"
	"evogame/internal/strategy"
)

// Snapshot is the state captured by a checkpoint.
type Snapshot struct {
	// Generation is the number of generations completed when the snapshot
	// was taken.
	Generation int
	// Seed is the run's seed, recorded so a restored run can be identified.
	Seed uint64
	// MemorySteps is the memory depth of the strategies.
	MemorySteps int
	// Game is the name of the scenario the run played ("ipd", "snowdrift",
	// ...) and Payoff its effective payoff values as [R, S, T, P].
	// Checkpoints written before the scenario registry (format version 1)
	// restore with the paper's IPD defaults.
	Game   string
	Payoff [4]float64
	// UpdateRule is the name of the adoption rule the run used ("fermi",
	// "imitation", "moran"); version-1 checkpoints restore as "fermi".
	UpdateRule string
	// Topology is the canonical spec string of the interaction graph the
	// run evolved on ("wellmixed", "ring:4", "torus:moore",
	// "smallworld:4:0.1"); checkpoints written before the topology layer
	// (format versions 1 and 2) restore as "wellmixed", which is what those
	// runs played by construction.
	Topology string
	// Strategies is the strategy table, one entry per SSet.
	Strategies []strategy.Strategy
	// Label is free-form metadata (experiment name, parameters).
	Label string

	// Resume reports whether the snapshot carries the mid-run resume state
	// below (format version 4).  Final-only snapshots — and every envelope
	// written before version 4 — leave it false; such snapshots can still
	// seed a warm start from their strategy table, but not a bit-identical
	// continuation.
	Resume bool
	// Engine records which engine exported the resume state, EngineSerial
	// or EngineParallel.  The two engines consume different stream sets, so
	// a resume snapshot only restores into the engine that wrote it.
	Engine string
	// Streams holds the named RNG stream states captured at Generation.
	// The serial engine records StreamNature and StreamGame; the parallel
	// engine records only StreamNature, because its per-(generation, SSet)
	// noise streams are derived statelessly from (Seed, generation, SSet id)
	// and Generation re-derives them exactly.
	Streams []Stream
	// PCEvents, Adoptions and Mutations are the Nature Agent's cumulative
	// event counters at Generation, restored so a resumed run's event trace
	// continues instead of restarting from zero.
	PCEvents  int
	Adoptions int
	Mutations int
	// GamesPlayed is the engine's cumulative game counter at Generation
	// where the engine tracks one (the serial engine's full evaluation
	// path); zero otherwise.
	GamesPlayed int64
}

// Stream records the state of one named RNG stream inside a resume
// snapshot.
type Stream struct {
	// Name identifies the stream (StreamNature, StreamGame).
	Name string
	// State is the xoshiro256** state exported by rng.Source.State.
	State [4]uint64
}

// Engine identities recorded in resume snapshots.
const (
	EngineSerial   = "serial"
	EngineParallel = "parallel"
)

// Stream names recorded in resume snapshots.
const (
	// StreamNature is the Nature Agent's event stream (both engines).
	StreamNature = "nature"
	// StreamGame is the serial engine's game-play stream, split per noisy or
	// mixed-strategy fitness evaluation.
	StreamGame = "game"
)

// Stream returns the state of the named RNG stream and whether the snapshot
// carries it.
func (s Snapshot) Stream(name string) ([4]uint64, bool) {
	for _, st := range s.Streams {
		if st.Name == name {
			return st.State, true
		}
	}
	return [4]uint64{}, false
}

// Identity is the run identity an engine resolves from its configuration:
// everything a snapshot records about the run that produced it.  Parameters
// a snapshot does not record (noise, rounds, rates) are the caller's
// responsibility to pass unchanged.
type Identity struct {
	NumSSets    int
	MemorySteps int
	Seed        uint64
	Game        string
	Payoff      [4]float64
	UpdateRule  string
	Topology    string
}

// CheckIdentity verifies field by field that the snapshot was produced by a
// run with the given identity, so a checkpoint cannot silently resume into
// a run it does not describe.  Both engines route their resume validation
// through here; pkg prefixes the error messages ("population", "parallel").
func (s Snapshot) CheckIdentity(pkg string, id Identity) error {
	if len(s.Strategies) != id.NumSSets {
		return fmt.Errorf("%s: checkpoint holds %d strategies, config has %d SSets", pkg, len(s.Strategies), id.NumSSets)
	}
	if s.MemorySteps != id.MemorySteps {
		return fmt.Errorf("%s: checkpoint memory depth %d, config has %d", pkg, s.MemorySteps, id.MemorySteps)
	}
	if s.Seed != id.Seed {
		return fmt.Errorf("%s: checkpoint seed %d, config has %d", pkg, s.Seed, id.Seed)
	}
	if s.Game != id.Game {
		return fmt.Errorf("%s: checkpoint game %q, config plays %q", pkg, s.Game, id.Game)
	}
	if s.Payoff != id.Payoff {
		return fmt.Errorf("%s: checkpoint payoff %v, config uses %v", pkg, s.Payoff, id.Payoff)
	}
	if s.UpdateRule != id.UpdateRule {
		return fmt.Errorf("%s: checkpoint update rule %q, config uses %q", pkg, s.UpdateRule, id.UpdateRule)
	}
	if s.Topology != id.Topology {
		return fmt.Errorf("%s: checkpoint topology %q, config uses %q", pkg, s.Topology, id.Topology)
	}
	return nil
}

// envelope is the gob-encoded on-disk representation.  Version 2 added the
// Game, Payoff and UpdateRule fields; version 3 added Topology; version 4
// added the mid-run resume state (Resume, Engine, Streams, the event
// counters and GamesPlayed).  Gob's name-based decoding leaves newer fields
// zero when reading an older stream, and Read fills in the pre-registry /
// pre-topology defaults — for the version-4 fields the zero values already
// mean the right thing: an older envelope is a final-only snapshot
// (Resume == false).  See docs/CHECKPOINT.md for the field-by-field format
// and the compatibility matrix.
type envelope struct {
	Version     int
	Generation  int
	Seed        uint64
	MemorySteps int
	Game        string
	Payoff      [4]float64
	UpdateRule  string
	Topology    string
	Label       string
	Strategies  [][]byte
	Resume      bool
	Engine      string
	Streams     []Stream
	PCEvents    int
	Adoptions   int
	Mutations   int
	GamesPlayed int64
}

const formatVersion = 4

// defaultGame / defaultRule / defaultTopology are the identities every
// pre-registry, pre-topology run had.
const (
	defaultGame     = "ipd"
	defaultRule     = "fermi"
	defaultTopology = "wellmixed"
)

func standardPayoff() [4]float64 {
	return game.Standard().Table()
}

// Write serialises the snapshot to w.
func Write(w io.Writer, s Snapshot) error {
	if len(s.Strategies) == 0 {
		return fmt.Errorf("checkpoint: empty strategy table")
	}
	if s.Game == "" {
		s.Game = defaultGame
	}
	if s.UpdateRule == "" {
		s.UpdateRule = defaultRule
	}
	if s.Topology == "" {
		s.Topology = defaultTopology
	}
	if s.Payoff == ([4]float64{}) {
		// An all-zero payoff means "the scenario's canonical matrix"; record
		// the actual values so the checkpoint is self-describing even if the
		// registry's canonical payoff ever changes.  (A run that genuinely
		// played the all-zero generic matrix cannot be distinguished from an
		// unset field; its payoffs carry no information either way.)
		if spec, err := game.LookupSpec(s.Game); err == nil {
			s.Payoff = spec.Payoff.Table()
		}
	}
	if s.Resume {
		if s.Engine != EngineSerial && s.Engine != EngineParallel {
			return fmt.Errorf("checkpoint: resume snapshot has unknown engine %q", s.Engine)
		}
		if _, ok := s.Stream(StreamNature); !ok {
			return fmt.Errorf("checkpoint: resume snapshot is missing the %q stream", StreamNature)
		}
		for _, st := range s.Streams {
			if st.State == ([4]uint64{}) {
				return fmt.Errorf("checkpoint: stream %q has an all-zero RNG state", st.Name)
			}
		}
	}
	env := envelope{
		Version:     formatVersion,
		Generation:  s.Generation,
		Seed:        s.Seed,
		MemorySteps: s.MemorySteps,
		Game:        s.Game,
		Payoff:      s.Payoff,
		UpdateRule:  s.UpdateRule,
		Topology:    s.Topology,
		Label:       s.Label,
		Strategies:  make([][]byte, len(s.Strategies)),
		Resume:      s.Resume,
		Engine:      s.Engine,
		Streams:     s.Streams,
		PCEvents:    s.PCEvents,
		Adoptions:   s.Adoptions,
		Mutations:   s.Mutations,
		GamesPlayed: s.GamesPlayed,
	}
	for i, strat := range s.Strategies {
		if strat == nil {
			return fmt.Errorf("checkpoint: nil strategy at index %d", i)
		}
		enc, err := strategy.Encode(strat)
		if err != nil {
			return fmt.Errorf("checkpoint: encoding strategy %d: %w", i, err)
		}
		env.Strategies[i] = enc
	}
	return gob.NewEncoder(w).Encode(env)
}

// Read deserialises a snapshot from r.
func Read(r io.Reader) (Snapshot, error) {
	var env envelope
	if err := gob.NewDecoder(r).Decode(&env); err != nil {
		return Snapshot{}, fmt.Errorf("checkpoint: decoding: %w", err)
	}
	if env.Version < 1 || env.Version > formatVersion {
		return Snapshot{}, fmt.Errorf("checkpoint: unsupported format version %d", env.Version)
	}
	if env.Version == 1 {
		// Pre-registry checkpoints are IPD + Fermi by construction.
		env.Game = defaultGame
		env.Payoff = standardPayoff()
		env.UpdateRule = defaultRule
	}
	if env.Version <= 2 {
		// Pre-topology checkpoints (v1 and v2) are well-mixed by
		// construction.
		env.Topology = defaultTopology
	}
	if len(env.Strategies) == 0 {
		return Snapshot{}, fmt.Errorf("checkpoint: empty strategy table")
	}
	// Reject envelopes no writer can produce (Write enforces the same
	// invariants), so a corrupt or hand-crafted file fails here with a clean
	// error instead of surfacing as an inconsistent snapshot downstream.
	if env.Generation < 0 {
		return Snapshot{}, fmt.Errorf("checkpoint: negative generation %d", env.Generation)
	}
	if env.MemorySteps < 1 || env.MemorySteps > game.MaxMemorySteps {
		return Snapshot{}, fmt.Errorf("checkpoint: memory steps %d out of range", env.MemorySteps)
	}
	if env.PCEvents < 0 || env.Adoptions < 0 || env.Mutations < 0 || env.GamesPlayed < 0 {
		return Snapshot{}, fmt.Errorf("checkpoint: negative event counter (pc=%d adoptions=%d mutations=%d games=%d)",
			env.PCEvents, env.Adoptions, env.Mutations, env.GamesPlayed)
	}
	// Every writer since the named era fills these identity fields (Write
	// maps empty ones onto the defaults before encoding), so an envelope of
	// that era with an empty field cannot be a writer's output.
	if env.Game == "" || env.UpdateRule == "" {
		return Snapshot{}, fmt.Errorf("checkpoint: version-%d envelope is missing its game/update-rule identity", env.Version)
	}
	if env.Topology == "" {
		return Snapshot{}, fmt.Errorf("checkpoint: version-%d envelope is missing its topology identity", env.Version)
	}
	if env.Payoff == ([4]float64{}) {
		// Write resolves an all-zero payoff to the scenario's canonical
		// matrix before encoding; resolve it the same way here so the
		// snapshot is identical to what re-encoding would produce.
		if spec, err := game.LookupSpec(env.Game); err == nil {
			env.Payoff = spec.Payoff.Table()
		}
	}
	s := Snapshot{
		Generation:  env.Generation,
		Seed:        env.Seed,
		MemorySteps: env.MemorySteps,
		Game:        env.Game,
		Payoff:      env.Payoff,
		UpdateRule:  env.UpdateRule,
		Topology:    env.Topology,
		Label:       env.Label,
		Strategies:  make([]strategy.Strategy, len(env.Strategies)),
		Resume:      env.Resume,
		Engine:      env.Engine,
		Streams:     env.Streams,
		PCEvents:    env.PCEvents,
		Adoptions:   env.Adoptions,
		Mutations:   env.Mutations,
		GamesPlayed: env.GamesPlayed,
	}
	if env.Resume {
		if env.Engine != EngineSerial && env.Engine != EngineParallel {
			return Snapshot{}, fmt.Errorf("checkpoint: resume snapshot has unknown engine %q", env.Engine)
		}
		if _, ok := s.Stream(StreamNature); !ok {
			return Snapshot{}, fmt.Errorf("checkpoint: resume snapshot is missing the %q stream", StreamNature)
		}
		for _, st := range env.Streams {
			if st.State == ([4]uint64{}) {
				return Snapshot{}, fmt.Errorf("checkpoint: stream %q has an all-zero RNG state", st.Name)
			}
		}
	}
	for i, enc := range env.Strategies {
		strat, err := strategy.Decode(enc)
		if err != nil {
			return Snapshot{}, fmt.Errorf("checkpoint: decoding strategy %d: %w", i, err)
		}
		if got := strategyDepth(strat); got != env.MemorySteps {
			return Snapshot{}, fmt.Errorf("checkpoint: strategy %d has memory depth %d, envelope declares %d",
				i, got, env.MemorySteps)
		}
		s.Strategies[i] = strat
	}
	return s, nil
}

// strategyDepth returns the memory depth of a decoded strategy (every type
// the codec produces reports one).
func strategyDepth(s strategy.Strategy) int {
	if d, ok := s.(interface{ MemorySteps() int }); ok {
		return d.MemorySteps()
	}
	return -1
}

// Save writes the snapshot atomically and durably to the given path: the
// envelope goes to a uniquely named temporary file in the target directory
// (so two runs sharing a checkpoint path cannot clobber each other's
// in-flight writes), is fsynced, renamed into place, and the directory is
// fsynced so the rename itself survives a crash.  A reader therefore sees
// either the previous checkpoint or the new one, never a torn or empty
// file.
func Save(path string, s Snapshot) error {
	var buf bytes.Buffer
	if err := Write(&buf, s); err != nil {
		return err
	}
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("checkpoint: creating temporary file in %s: %w", dir, err)
	}
	tmp := f.Name()
	cleanup := func(err error) error {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if _, err := f.Write(buf.Bytes()); err != nil {
		return cleanup(fmt.Errorf("checkpoint: writing %s: %w", tmp, err))
	}
	// Flush the file contents before the rename: without this a crash
	// shortly after the rename can leave a zero-length "checkpoint" under
	// the final name.
	if err := f.Sync(); err != nil {
		return cleanup(fmt.Errorf("checkpoint: syncing %s: %w", tmp, err))
	}
	if err := f.Close(); err != nil {
		return cleanup(fmt.Errorf("checkpoint: closing %s: %w", tmp, err))
	}
	// CreateTemp creates the file 0600; widen to the conventional 0644.
	if err := os.Chmod(tmp, 0o644); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("checkpoint: setting permissions on %s: %w", tmp, err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("checkpoint: renaming into place: %w", err)
	}
	// Make the rename durable.  Directory fsync is unsupported on some
	// platforms; a failure there does not undo the atomic rename, so it is
	// deliberately non-fatal.
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
	return nil
}

// RemoveStaleTemps deletes leftover "<path>.tmp-*" files that a crash
// between Save's temporary write and its rename can strand next to the
// checkpoint.  Supervised recovery calls it before every relaunch so an
// injected mid-Save crash cannot accumulate partial artifacts; it never
// touches the checkpoint itself, so the newest complete snapshot always
// survives.  It returns the paths removed.
func RemoveStaleTemps(path string) ([]string, error) {
	matches, err := filepath.Glob(path + ".tmp-*")
	if err != nil {
		return nil, fmt.Errorf("checkpoint: globbing stale temporaries of %s: %w", path, err)
	}
	var removed []string
	for _, m := range matches {
		if err := os.Remove(m); err != nil {
			if os.IsNotExist(err) {
				continue
			}
			return removed, fmt.Errorf("checkpoint: removing stale temporary %s: %w", m, err)
		}
		removed = append(removed, m)
	}
	return removed, nil
}

// Load reads a snapshot from the given path.
func Load(path string) (Snapshot, error) {
	f, err := os.Open(path)
	if err != nil {
		return Snapshot{}, fmt.Errorf("checkpoint: opening %s: %w", path, err)
	}
	defer f.Close()
	return Read(f)
}
