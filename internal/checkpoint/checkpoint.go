// Package checkpoint persists and restores the state of a long evolutionary
// run: the generation counter, the configuration fingerprint, and the full
// strategy table.  The paper's production runs span 10^7 generations; a
// checkpoint lets such runs be resumed after an interruption and lets the
// validation tooling post-process a finished population (for example the
// k-means clustering of Figure 2) without re-running the simulation.
//
// The format is a small gob-encoded envelope around the strategy codec of
// internal/strategy, so it remains readable as the internal strategy types
// evolve.
package checkpoint

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"io"
	"os"

	"evogame/internal/game"
	"evogame/internal/strategy"
)

// Snapshot is the state captured by a checkpoint.
type Snapshot struct {
	// Generation is the number of generations completed when the snapshot
	// was taken.
	Generation int
	// Seed is the run's seed, recorded so a restored run can be identified.
	Seed uint64
	// MemorySteps is the memory depth of the strategies.
	MemorySteps int
	// Game is the name of the scenario the run played ("ipd", "snowdrift",
	// ...) and Payoff its effective payoff values as [R, S, T, P].
	// Checkpoints written before the scenario registry (format version 1)
	// restore with the paper's IPD defaults.
	Game   string
	Payoff [4]float64
	// UpdateRule is the name of the adoption rule the run used ("fermi",
	// "imitation", "moran"); version-1 checkpoints restore as "fermi".
	UpdateRule string
	// Topology is the canonical spec string of the interaction graph the
	// run evolved on ("wellmixed", "ring:4", "torus:moore",
	// "smallworld:4:0.1"); checkpoints written before the topology layer
	// (format versions 1 and 2) restore as "wellmixed", which is what those
	// runs played by construction.
	Topology string
	// Strategies is the strategy table, one entry per SSet.
	Strategies []strategy.Strategy
	// Label is free-form metadata (experiment name, parameters).
	Label string
}

// envelope is the gob-encoded on-disk representation.  Version 2 added the
// Game, Payoff and UpdateRule fields; version 3 added Topology.  Gob's
// name-based decoding leaves newer fields zero when reading an older
// stream, and Read fills in the pre-registry / pre-topology defaults.  See
// docs/CHECKPOINT.md for the field-by-field format and the compatibility
// matrix.
type envelope struct {
	Version     int
	Generation  int
	Seed        uint64
	MemorySteps int
	Game        string
	Payoff      [4]float64
	UpdateRule  string
	Topology    string
	Label       string
	Strategies  [][]byte
}

const formatVersion = 3

// defaultGame / defaultRule / defaultTopology are the identities every
// pre-registry, pre-topology run had.
const (
	defaultGame     = "ipd"
	defaultRule     = "fermi"
	defaultTopology = "wellmixed"
)

func standardPayoff() [4]float64 {
	return game.Standard().Table()
}

// Write serialises the snapshot to w.
func Write(w io.Writer, s Snapshot) error {
	if len(s.Strategies) == 0 {
		return fmt.Errorf("checkpoint: empty strategy table")
	}
	if s.Game == "" {
		s.Game = defaultGame
	}
	if s.UpdateRule == "" {
		s.UpdateRule = defaultRule
	}
	if s.Topology == "" {
		s.Topology = defaultTopology
	}
	if s.Payoff == ([4]float64{}) {
		// An all-zero payoff means "the scenario's canonical matrix"; record
		// the actual values so the checkpoint is self-describing even if the
		// registry's canonical payoff ever changes.  (A run that genuinely
		// played the all-zero generic matrix cannot be distinguished from an
		// unset field; its payoffs carry no information either way.)
		if spec, err := game.LookupSpec(s.Game); err == nil {
			s.Payoff = spec.Payoff.Table()
		}
	}
	env := envelope{
		Version:     formatVersion,
		Generation:  s.Generation,
		Seed:        s.Seed,
		MemorySteps: s.MemorySteps,
		Game:        s.Game,
		Payoff:      s.Payoff,
		UpdateRule:  s.UpdateRule,
		Topology:    s.Topology,
		Label:       s.Label,
		Strategies:  make([][]byte, len(s.Strategies)),
	}
	for i, strat := range s.Strategies {
		if strat == nil {
			return fmt.Errorf("checkpoint: nil strategy at index %d", i)
		}
		enc, err := strategy.Encode(strat)
		if err != nil {
			return fmt.Errorf("checkpoint: encoding strategy %d: %w", i, err)
		}
		env.Strategies[i] = enc
	}
	return gob.NewEncoder(w).Encode(env)
}

// Read deserialises a snapshot from r.
func Read(r io.Reader) (Snapshot, error) {
	var env envelope
	if err := gob.NewDecoder(r).Decode(&env); err != nil {
		return Snapshot{}, fmt.Errorf("checkpoint: decoding: %w", err)
	}
	if env.Version < 1 || env.Version > formatVersion {
		return Snapshot{}, fmt.Errorf("checkpoint: unsupported format version %d", env.Version)
	}
	if env.Version == 1 {
		// Pre-registry checkpoints are IPD + Fermi by construction.
		env.Game = defaultGame
		env.Payoff = standardPayoff()
		env.UpdateRule = defaultRule
	}
	if env.Version <= 2 {
		// Pre-topology checkpoints (v1 and v2) are well-mixed by
		// construction.
		env.Topology = defaultTopology
	}
	if len(env.Strategies) == 0 {
		return Snapshot{}, fmt.Errorf("checkpoint: empty strategy table")
	}
	s := Snapshot{
		Generation:  env.Generation,
		Seed:        env.Seed,
		MemorySteps: env.MemorySteps,
		Game:        env.Game,
		Payoff:      env.Payoff,
		UpdateRule:  env.UpdateRule,
		Topology:    env.Topology,
		Label:       env.Label,
		Strategies:  make([]strategy.Strategy, len(env.Strategies)),
	}
	for i, enc := range env.Strategies {
		strat, err := strategy.Decode(enc)
		if err != nil {
			return Snapshot{}, fmt.Errorf("checkpoint: decoding strategy %d: %w", i, err)
		}
		s.Strategies[i] = strat
	}
	return s, nil
}

// Save writes the snapshot atomically to the given path (write to a
// temporary file in the same directory, then rename).
func Save(path string, s Snapshot) error {
	var buf bytes.Buffer
	if err := Write(&buf, s); err != nil {
		return err
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, buf.Bytes(), 0o644); err != nil {
		return fmt.Errorf("checkpoint: writing %s: %w", tmp, err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("checkpoint: renaming into place: %w", err)
	}
	return nil
}

// Load reads a snapshot from the given path.
func Load(path string) (Snapshot, error) {
	f, err := os.Open(path)
	if err != nil {
		return Snapshot{}, fmt.Errorf("checkpoint: opening %s: %w", path, err)
	}
	defer f.Close()
	return Read(f)
}
