package checkpoint

// FuzzLoadEnvelope drives Read over arbitrary bytes — the attack surface a
// checkpoint file on disk presents — seeded with well-formed envelopes of
// every format version plus characteristic corruptions.  The properties
// are: Read never panics, it returns either a snapshot or an error (never
// both halves of an inconsistent state), and any snapshot it accepts
// round-trips through Write and Read unchanged — i.e. Read only admits
// states the writer could have produced.  The white-box seeds use the
// unexported envelope struct to craft version 1-3 streams the way the
// historical writers did (older fields only, newer fields absent from the
// gob stream).

import (
	"bytes"
	"encoding/gob"
	"reflect"
	"testing"

	"evogame/internal/rng"
	"evogame/internal/strategy"
)

// fuzzSeedEnvelopes builds one well-formed byte stream per format era.
func fuzzSeedEnvelopes(t testing.TB) [][]byte {
	t.Helper()
	src := rng.New(99)
	table := func(n, mem int) []strategy.Strategy {
		out := make([]strategy.Strategy, n)
		for i := range out {
			out[i] = strategy.RandomPure(mem, src)
		}
		return out
	}
	encodeTable := func(strats []strategy.Strategy) [][]byte {
		out := make([][]byte, len(strats))
		for i, s := range strats {
			enc, err := strategy.Encode(s)
			if err != nil {
				t.Fatal(err)
			}
			out[i] = enc
		}
		return out
	}
	gobBytes := func(env envelope) []byte {
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(env); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}

	var seeds [][]byte

	// Version 4, final-only and resumable, via the real writer.
	var v4 bytes.Buffer
	if err := Write(&v4, Snapshot{
		Generation: 12, Seed: 7, MemorySteps: 2,
		Strategies: table(4, 2), Label: "fuzz seed",
	}); err != nil {
		t.Fatal(err)
	}
	seeds = append(seeds, v4.Bytes())

	var v4resume bytes.Buffer
	if err := Write(&v4resume, Snapshot{
		Generation: 3, Seed: 11, MemorySteps: 1,
		Strategies: table(3, 1),
		Resume:     true, Engine: EngineSerial,
		Streams: []Stream{
			{Name: StreamNature, State: [4]uint64{1, 2, 3, 4}},
			{Name: StreamGame, State: [4]uint64{5, 6, 7, 8}},
		},
		PCEvents: 3, Adoptions: 2, Mutations: 1, GamesPlayed: 42,
	}); err != nil {
		t.Fatal(err)
	}
	seeds = append(seeds, v4resume.Bytes())

	// Versions 1-3 the way the historical writers produced them: older
	// fields only (gob omits zero-valued fields, so leaving the newer ones
	// zero reproduces the old streams).
	seeds = append(seeds, gobBytes(envelope{
		Version: 1, Generation: 5, Seed: 2013, MemorySteps: 1,
		Strategies: encodeTable(table(2, 1)),
	}))
	seeds = append(seeds, gobBytes(envelope{
		Version: 2, Generation: 6, Seed: 2013, MemorySteps: 3,
		Game: "snowdrift", Payoff: [4]float64{3, 1, 4, 0}, UpdateRule: "moran",
		Strategies: encodeTable(table(2, 3)),
	}))
	seeds = append(seeds, gobBytes(envelope{
		Version: 3, Generation: 7, Seed: 2013, MemorySteps: 1,
		Game: "ipd", Payoff: [4]float64{3, 0, 4, 1}, UpdateRule: "fermi",
		Topology: "ring:4", Label: "v3 era",
		Strategies: encodeTable(table(4, 1)),
	}))

	// Characteristic corruptions: unsupported versions, empty tables,
	// truncated strategy bytes, depth mismatch, bogus resume state.
	seeds = append(seeds, gobBytes(envelope{Version: 99, MemorySteps: 1, Strategies: [][]byte{{1}}}))
	seeds = append(seeds, gobBytes(envelope{Version: 4, MemorySteps: 1}))
	seeds = append(seeds, gobBytes(envelope{
		Version: 4, MemorySteps: 1, Strategies: [][]byte{{1, 1}},
	}))
	seeds = append(seeds, gobBytes(envelope{
		Version: 4, MemorySteps: 4, Strategies: encodeTable(table(1, 2)),
	}))
	seeds = append(seeds, gobBytes(envelope{
		Version: 4, MemorySteps: 1, Strategies: encodeTable(table(1, 1)),
		Resume: true, Engine: "quantum",
		Streams: []Stream{{Name: StreamNature, State: [4]uint64{1, 0, 0, 0}}},
	}))
	seeds = append(seeds, []byte{})
	seeds = append(seeds, []byte("not a gob stream"))
	if full := v4.Bytes(); len(full) > 10 {
		seeds = append(seeds, full[:len(full)/2])
	}
	return seeds
}

func FuzzLoadEnvelope(f *testing.F) {
	for _, seed := range fuzzSeedEnvelopes(f) {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		snap, err := Read(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Whatever Read admits must be a state the writer could have
		// produced: re-encoding must succeed and decode back unchanged.
		var buf bytes.Buffer
		if err := Write(&buf, snap); err != nil {
			t.Fatalf("Read accepted a snapshot Write rejects: %v", err)
		}
		again, err := Read(&buf)
		if err != nil {
			t.Fatalf("re-reading a re-encoded snapshot: %v", err)
		}
		if !reflect.DeepEqual(snap, again) {
			t.Fatalf("round trip changed the snapshot:\nfirst:  %+v\nsecond: %+v", snap, again)
		}
	})
}
