package checkpoint

import (
	"bytes"
	"encoding/gob"
	"os"
	"path/filepath"
	"testing"

	"evogame/internal/game"
	"evogame/internal/rng"
	"evogame/internal/strategy"
)

func sampleSnapshot() Snapshot {
	src := rng.New(1)
	strategies := []strategy.Strategy{
		strategy.WSLS(2), strategy.AllD(2), strategy.RandomPure(2, src), strategy.TFT(2),
	}
	return Snapshot{
		Generation:  12345,
		Seed:        42,
		MemorySteps: 2,
		Strategies:  strategies,
		Label:       "unit-test",
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	snap := sampleSnapshot()
	var buf bytes.Buffer
	if err := Write(&buf, snap); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Generation != snap.Generation || got.Seed != snap.Seed ||
		got.MemorySteps != snap.MemorySteps || got.Label != snap.Label {
		t.Fatalf("metadata did not round trip: %+v", got)
	}
	if len(got.Strategies) != len(snap.Strategies) {
		t.Fatalf("strategy count = %d", len(got.Strategies))
	}
	for i := range snap.Strategies {
		if !snap.Strategies[i].Equal(got.Strategies[i]) {
			t.Fatalf("strategy %d did not round trip", i)
		}
	}
}

func TestScenarioIdentityRoundTrip(t *testing.T) {
	snap := sampleSnapshot()
	snap.Game = "snowdrift"
	snap.Payoff = [4]float64{3, 2, 4, 0}
	snap.UpdateRule = "moran"
	var buf bytes.Buffer
	if err := Write(&buf, snap); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Game != "snowdrift" || got.Payoff != snap.Payoff || got.UpdateRule != "moran" {
		t.Fatalf("scenario identity did not round trip: %+v", got)
	}
	// Unset identity defaults to the paper's scenario on write.
	var buf2 bytes.Buffer
	if err := Write(&buf2, sampleSnapshot()); err != nil {
		t.Fatal(err)
	}
	got, err = Read(&buf2)
	if err != nil {
		t.Fatal(err)
	}
	if got.Game != "ipd" || got.UpdateRule != "fermi" || got.Payoff != standardPayoff() {
		t.Fatalf("unset scenario identity = %q/%q/%v, want ipd/fermi defaults", got.Game, got.UpdateRule, got.Payoff)
	}
	// A named game with an unset payoff records the scenario's canonical
	// matrix, not zeros; a custom payoff with an unset game is preserved.
	named := sampleSnapshot()
	named.Game = "snowdrift"
	var buf3 bytes.Buffer
	if err := Write(&buf3, named); err != nil {
		t.Fatal(err)
	}
	got, err = Read(&buf3)
	if err != nil {
		t.Fatal(err)
	}
	if got.Payoff != [4]float64{3, 2, 4, 0} {
		t.Fatalf("snowdrift payoff = %v, want the canonical [3 2 4 0]", got.Payoff)
	}
	custom := sampleSnapshot()
	custom.Payoff = [4]float64{5, 1, 6, 2}
	var buf4 bytes.Buffer
	if err := Write(&buf4, custom); err != nil {
		t.Fatal(err)
	}
	got, err = Read(&buf4)
	if err != nil {
		t.Fatal(err)
	}
	if got.Payoff != [4]float64{5, 1, 6, 2} {
		t.Fatalf("custom payoff clobbered: %v", got.Payoff)
	}
}

func TestTopologyIdentityRoundTrip(t *testing.T) {
	snap := sampleSnapshot()
	snap.Topology = "torus:moore"
	var buf bytes.Buffer
	if err := Write(&buf, snap); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Topology != "torus:moore" {
		t.Fatalf("topology identity did not round trip: %q", got.Topology)
	}
	// Unset topology defaults to the paper's well-mixed population on write.
	var buf2 bytes.Buffer
	if err := Write(&buf2, sampleSnapshot()); err != nil {
		t.Fatal(err)
	}
	got, err = Read(&buf2)
	if err != nil {
		t.Fatal(err)
	}
	if got.Topology != "wellmixed" {
		t.Fatalf("unset topology = %q, want wellmixed", got.Topology)
	}
}

// envelopeV2 mirrors the gob envelope exactly as it was written by the
// scenario-registry era (format version 2, no Topology field).
type envelopeV2 struct {
	Version     int
	Generation  int
	Seed        uint64
	MemorySteps int
	Game        string
	Payoff      [4]float64
	UpdateRule  string
	Label       string
	Strategies  [][]byte
}

// TestVersion2CheckpointRestoresWellMixed is the pre-topology compatibility
// regression test: a version-2 stream must load with its scenario identity
// intact and come back identified as a well-mixed run.
func TestVersion2CheckpointRestoresWellMixed(t *testing.T) {
	enc, err := strategy.Encode(strategy.WSLS(1))
	if err != nil {
		t.Fatal(err)
	}
	old := envelopeV2{
		Version:     2,
		Generation:  31337,
		Seed:        7,
		MemorySteps: 1,
		Game:        "snowdrift",
		Payoff:      [4]float64{3, 2, 4, 0},
		UpdateRule:  "moran",
		Label:       "pre-topology run",
		Strategies:  [][]byte{enc},
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(old); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatalf("version-2 checkpoint failed to restore: %v", err)
	}
	if got.Game != "snowdrift" || got.UpdateRule != "moran" || got.Payoff != old.Payoff {
		t.Fatalf("version-2 scenario identity lost: %+v", got)
	}
	if got.Topology != "wellmixed" {
		t.Fatalf("version-2 topology = %q, want wellmixed", got.Topology)
	}
}

// envelopeV1 mirrors the gob envelope exactly as it was written before the
// scenario registry existed (format version 1, no Game/Payoff/UpdateRule
// fields).  Gob matches fields by name, so encoding this struct reproduces
// the bytes an old checkpoint file holds.
type envelopeV1 struct {
	Version     int
	Generation  int
	Seed        uint64
	MemorySteps int
	Label       string
	Strategies  [][]byte
}

// TestVersion1CheckpointStillRestores is the pre-registry compatibility
// regression test: a version-1 stream must load and come back identified as
// an IPD + Fermi run with the standard payoff matrix.
func TestVersion1CheckpointStillRestores(t *testing.T) {
	strategies := []strategy.Strategy{strategy.WSLS(1), strategy.AllD(1)}
	old := envelopeV1{
		Version:     1,
		Generation:  777,
		Seed:        2013,
		MemorySteps: 1,
		Label:       "pre-registry run",
		Strategies:  make([][]byte, len(strategies)),
	}
	for i, s := range strategies {
		enc, err := strategy.Encode(s)
		if err != nil {
			t.Fatal(err)
		}
		old.Strategies[i] = enc
	}
	var buf bytes.Buffer
	// The gob stream carries the encoder-side type name; name it like the
	// writer did so the bytes match a real v1 file.
	if err := gob.NewEncoder(&buf).Encode(old); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatalf("version-1 checkpoint failed to restore: %v", err)
	}
	if got.Generation != 777 || got.Seed != 2013 || got.MemorySteps != 1 || got.Label != "pre-registry run" {
		t.Fatalf("version-1 metadata lost: %+v", got)
	}
	if got.Game != "ipd" || got.UpdateRule != "fermi" {
		t.Fatalf("version-1 scenario identity = %q/%q, want ipd/fermi", got.Game, got.UpdateRule)
	}
	if got.Topology != "wellmixed" {
		t.Fatalf("version-1 topology = %q, want wellmixed", got.Topology)
	}
	std := game.Standard()
	if got.Payoff != [4]float64{std.Reward, std.Sucker, std.Temptation, std.Punishment} {
		t.Fatalf("version-1 payoff = %v, want the standard PD matrix", got.Payoff)
	}
	for i := range strategies {
		if !got.Strategies[i].Equal(strategies[i]) {
			t.Fatalf("strategy %d did not survive the v1 restore", i)
		}
	}
	// Future versions must still be rejected.
	future := envelopeV1{Version: 99, Strategies: old.Strategies}
	buf.Reset()
	if err := gob.NewEncoder(&buf).Encode(future); err != nil {
		t.Fatal(err)
	}
	if _, err := Read(&buf); err == nil {
		t.Fatal("accepted a checkpoint from the future")
	}
}

func TestWriteValidation(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, Snapshot{}); err == nil {
		t.Fatal("accepted an empty strategy table")
	}
	if err := Write(&buf, Snapshot{Strategies: []strategy.Strategy{nil}}); err == nil {
		t.Fatal("accepted a nil strategy")
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := Read(bytes.NewReader([]byte("not a checkpoint"))); err == nil {
		t.Fatal("accepted garbage input")
	}
	if _, err := Read(bytes.NewReader(nil)); err == nil {
		t.Fatal("accepted empty input")
	}
}

func TestSaveLoad(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "run.ckpt")
	snap := sampleSnapshot()
	if err := Save(path, snap); err != nil {
		t.Fatal(err)
	}
	// The temporary file must not linger.
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Fatal("temporary file left behind")
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Generation != snap.Generation || len(got.Strategies) != len(snap.Strategies) {
		t.Fatalf("loaded snapshot differs: %+v", got)
	}
}

func TestLoadMissingFile(t *testing.T) {
	if _, err := Load(filepath.Join(t.TempDir(), "missing.ckpt")); err == nil {
		t.Fatal("accepted a missing file")
	}
}

func TestSaveOverwritesExisting(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "run.ckpt")
	first := sampleSnapshot()
	if err := Save(path, first); err != nil {
		t.Fatal(err)
	}
	second := sampleSnapshot()
	second.Generation = 99999
	if err := Save(path, second); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Generation != 99999 {
		t.Fatalf("overwrite failed, generation = %d", got.Generation)
	}
}

// TestResumeStateRoundTrip covers the version-4 resume envelope: the named
// RNG streams, engine identity and cumulative event counters must survive
// the write/read cycle exactly.
func TestResumeStateRoundTrip(t *testing.T) {
	snap := sampleSnapshot()
	snap.Resume = true
	snap.Engine = EngineSerial
	snap.Streams = []Stream{
		{Name: StreamNature, State: [4]uint64{1, 2, 3, 4}},
		{Name: StreamGame, State: [4]uint64{5, 6, 7, 8}},
	}
	snap.PCEvents = 111
	snap.Adoptions = 42
	snap.Mutations = 7
	snap.GamesPlayed = 123456
	var buf bytes.Buffer
	if err := Write(&buf, snap); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Resume || got.Engine != EngineSerial {
		t.Fatalf("resume identity lost: Resume=%v Engine=%q", got.Resume, got.Engine)
	}
	if st, ok := got.Stream(StreamNature); !ok || st != [4]uint64{1, 2, 3, 4} {
		t.Fatalf("nature stream = %v, %v", st, ok)
	}
	if st, ok := got.Stream(StreamGame); !ok || st != [4]uint64{5, 6, 7, 8} {
		t.Fatalf("game stream = %v, %v", st, ok)
	}
	if got.PCEvents != 111 || got.Adoptions != 42 || got.Mutations != 7 || got.GamesPlayed != 123456 {
		t.Fatalf("counters lost: %+v", got)
	}
	if _, ok := got.Stream("nonexistent"); ok {
		t.Fatal("Stream returned a stream that was never recorded")
	}
}

// TestResumeWriteValidation holds Write to the resume-state invariants: a
// resume snapshot needs a known engine, the nature stream, and no all-zero
// (xoshiro-invalid) stream states.
func TestResumeWriteValidation(t *testing.T) {
	base := sampleSnapshot()
	base.Resume = true
	base.Engine = EngineSerial
	base.Streams = []Stream{{Name: StreamNature, State: [4]uint64{1, 2, 3, 4}}}

	var buf bytes.Buffer
	noEngine := base
	noEngine.Engine = "hybrid"
	if err := Write(&buf, noEngine); err == nil {
		t.Error("accepted an unknown engine")
	}
	noNature := base
	noNature.Streams = []Stream{{Name: StreamGame, State: [4]uint64{1, 2, 3, 4}}}
	if err := Write(&buf, noNature); err == nil {
		t.Error("accepted a resume snapshot without the nature stream")
	}
	zeroState := base
	zeroState.Streams = []Stream{{Name: StreamNature, State: [4]uint64{}}}
	if err := Write(&buf, zeroState); err == nil {
		t.Error("accepted an all-zero RNG stream state")
	}
}

// envelopeV3 mirrors the gob envelope exactly as the topology era wrote it
// (format version 3, no resume state).
type envelopeV3 struct {
	Version     int
	Generation  int
	Seed        uint64
	MemorySteps int
	Game        string
	Payoff      [4]float64
	UpdateRule  string
	Topology    string
	Label       string
	Strategies  [][]byte
}

// TestVersion3CheckpointLoadsAsFinalOnly extends the compatibility matrix
// to v3 streams read by the v4 reader: everything v3 recorded survives, and
// the snapshot comes back marked non-resumable with zero resume state.
func TestVersion3CheckpointLoadsAsFinalOnly(t *testing.T) {
	enc, err := strategy.Encode(strategy.WSLS(1))
	if err != nil {
		t.Fatal(err)
	}
	old := envelopeV3{
		Version:     3,
		Generation:  424242,
		Seed:        99,
		MemorySteps: 1,
		Game:        "staghunt",
		Payoff:      [4]float64{4, 0, 3, 2},
		UpdateRule:  "imitation",
		Topology:    "ring:6",
		Label:       "topology-era run",
		Strategies:  [][]byte{enc},
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(old); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatalf("version-3 checkpoint failed to restore: %v", err)
	}
	if got.Game != "staghunt" || got.UpdateRule != "imitation" || got.Topology != "ring:6" || got.Payoff != old.Payoff {
		t.Fatalf("version-3 identity lost: %+v", got)
	}
	if got.Resume || got.Engine != "" || got.Streams != nil {
		t.Fatalf("version-3 checkpoint gained resume state: Resume=%v Engine=%q Streams=%v", got.Resume, got.Engine, got.Streams)
	}
	if got.PCEvents != 0 || got.Adoptions != 0 || got.Mutations != 0 || got.GamesPlayed != 0 {
		t.Fatalf("version-3 checkpoint gained event counters: %+v", got)
	}
}

// TestLoadTruncatedAndCorrupt asserts that a torn or bit-rotted file fails
// with a clean error instead of decoding into a zero-value Snapshot.
func TestLoadTruncatedAndCorrupt(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "run.ckpt")
	if err := Save(path, sampleSnapshot()); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for name, mutate := range map[string]func() []byte{
		"truncated-half":  func() []byte { return raw[:len(raw)/2] },
		"truncated-tail":  func() []byte { return raw[:len(raw)-1] },
		"truncated-empty": func() []byte { return nil },
		"corrupt-strategy": func() []byte {
			// Flip the codec-version byte of an embedded strategy encoding.
			// (A flip inside the move table itself would decode fine — every
			// bit pattern is a valid pure strategy — so the codec header is
			// the detectable place.)
			enc, err := strategy.Encode(strategy.WSLS(2))
			if err != nil {
				t.Fatal(err)
			}
			idx := bytes.Index(raw, enc)
			if idx < 0 {
				t.Fatal("could not locate the embedded strategy encoding")
			}
			cp := append([]byte(nil), raw...)
			cp[idx] ^= 0xFF
			return cp
		},
	} {
		bad := filepath.Join(dir, name+".ckpt")
		if err := os.WriteFile(bad, mutate(), 0o644); err != nil {
			t.Fatal(err)
		}
		snap, err := Load(bad)
		if err == nil {
			t.Errorf("%s: loaded without error (snapshot: %+v)", name, snap)
		}
	}
}

// TestSaveIsDurableAndCollisionFree exercises the Save rewrite: no
// fixed-suffix temp file is used (two runs sharing a path cannot clobber
// each other's in-flight writes), and nothing lingers after success.
func TestSaveIsDurableAndCollisionFree(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "shared.ckpt")
	// A file squatting on the old fixed temp name must not be touched.
	squatter := path + ".tmp"
	if err := os.WriteFile(squatter, []byte("other run's in-flight write"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := Save(path, sampleSnapshot()); err != nil {
		t.Fatal(err)
	}
	if got, err := os.ReadFile(squatter); err != nil || string(got) != "other run's in-flight write" {
		t.Fatalf("Save disturbed an unrelated file at the fixed temp suffix: %q, %v", got, err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.Name() != filepath.Base(path) && e.Name() != filepath.Base(squatter) {
			t.Errorf("Save left a stray file behind: %s", e.Name())
		}
	}
	if fi, err := os.Stat(path); err != nil || fi.Mode().Perm() != 0o644 {
		t.Fatalf("checkpoint permissions: %v, %v", fi.Mode(), err)
	}
}

func TestMixedStrategiesRoundTrip(t *testing.T) {
	gtft, err := strategy.GTFT(1, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	snap := Snapshot{
		Generation:  1,
		MemorySteps: 1,
		Strategies:  []strategy.Strategy{gtft, strategy.WSLS(1)},
	}
	var buf bytes.Buffer
	if err := Write(&buf, snap); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Strategies[0].Equal(gtft) {
		t.Fatal("mixed strategy did not round trip")
	}
}

func TestRemoveStaleTemps(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "run.ckpt")
	if err := Save(path, sampleSnapshot()); err != nil {
		t.Fatal(err)
	}
	// Simulate an injected crash striking between Save's temp-file write
	// and its rename: stranded partial envelopes next to the checkpoint.
	stale1 := path + ".tmp-123456"
	stale2 := path + ".tmp-crashed"
	for _, p := range []string{stale1, stale2} {
		if err := os.WriteFile(p, []byte("partial envelope"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	// An unrelated sibling file must survive the sweep.
	other := filepath.Join(dir, "other.ckpt.tmp-1")
	if err := os.WriteFile(other, []byte("not ours"), 0o644); err != nil {
		t.Fatal(err)
	}
	removed, err := RemoveStaleTemps(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(removed) != 2 {
		t.Fatalf("removed %v, want the 2 stale temporaries", removed)
	}
	for _, p := range []string{stale1, stale2} {
		if _, err := os.Stat(p); !os.IsNotExist(err) {
			t.Errorf("stale temporary %s still present", p)
		}
	}
	if _, err := os.Stat(other); err != nil {
		t.Errorf("unrelated file was removed: %v", err)
	}
	// The checkpoint itself is untouched and still loads.
	if _, err := Load(path); err != nil {
		t.Errorf("checkpoint no longer loads after sweep: %v", err)
	}
	// A second sweep (and a sweep against a path with no checkpoint at
	// all) is a clean no-op.
	if removed, err := RemoveStaleTemps(path); err != nil || len(removed) != 0 {
		t.Errorf("second sweep = (%v, %v), want empty", removed, err)
	}
	if removed, err := RemoveStaleTemps(filepath.Join(dir, "absent.ckpt")); err != nil || len(removed) != 0 {
		t.Errorf("sweep of absent checkpoint = (%v, %v), want empty", removed, err)
	}
}
