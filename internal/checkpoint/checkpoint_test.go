package checkpoint

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"evogame/internal/rng"
	"evogame/internal/strategy"
)

func sampleSnapshot() Snapshot {
	src := rng.New(1)
	strategies := []strategy.Strategy{
		strategy.WSLS(2), strategy.AllD(2), strategy.RandomPure(2, src), strategy.TFT(2),
	}
	return Snapshot{
		Generation:  12345,
		Seed:        42,
		MemorySteps: 2,
		Strategies:  strategies,
		Label:       "unit-test",
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	snap := sampleSnapshot()
	var buf bytes.Buffer
	if err := Write(&buf, snap); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Generation != snap.Generation || got.Seed != snap.Seed ||
		got.MemorySteps != snap.MemorySteps || got.Label != snap.Label {
		t.Fatalf("metadata did not round trip: %+v", got)
	}
	if len(got.Strategies) != len(snap.Strategies) {
		t.Fatalf("strategy count = %d", len(got.Strategies))
	}
	for i := range snap.Strategies {
		if !snap.Strategies[i].Equal(got.Strategies[i]) {
			t.Fatalf("strategy %d did not round trip", i)
		}
	}
}

func TestWriteValidation(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, Snapshot{}); err == nil {
		t.Fatal("accepted an empty strategy table")
	}
	if err := Write(&buf, Snapshot{Strategies: []strategy.Strategy{nil}}); err == nil {
		t.Fatal("accepted a nil strategy")
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := Read(bytes.NewReader([]byte("not a checkpoint"))); err == nil {
		t.Fatal("accepted garbage input")
	}
	if _, err := Read(bytes.NewReader(nil)); err == nil {
		t.Fatal("accepted empty input")
	}
}

func TestSaveLoad(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "run.ckpt")
	snap := sampleSnapshot()
	if err := Save(path, snap); err != nil {
		t.Fatal(err)
	}
	// The temporary file must not linger.
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Fatal("temporary file left behind")
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Generation != snap.Generation || len(got.Strategies) != len(snap.Strategies) {
		t.Fatalf("loaded snapshot differs: %+v", got)
	}
}

func TestLoadMissingFile(t *testing.T) {
	if _, err := Load(filepath.Join(t.TempDir(), "missing.ckpt")); err == nil {
		t.Fatal("accepted a missing file")
	}
}

func TestSaveOverwritesExisting(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "run.ckpt")
	first := sampleSnapshot()
	if err := Save(path, first); err != nil {
		t.Fatal(err)
	}
	second := sampleSnapshot()
	second.Generation = 99999
	if err := Save(path, second); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Generation != 99999 {
		t.Fatalf("overwrite failed, generation = %d", got.Generation)
	}
}

func TestMixedStrategiesRoundTrip(t *testing.T) {
	gtft, err := strategy.GTFT(1, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	snap := Snapshot{
		Generation:  1,
		MemorySteps: 1,
		Strategies:  []strategy.Strategy{gtft, strategy.WSLS(1)},
	}
	var buf bytes.Buffer
	if err := Write(&buf, snap); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Strategies[0].Equal(gtft) {
		t.Fatal("mixed strategy did not round trip")
	}
}
