// Package stats provides the small statistical and reporting helpers shared
// by the benchmark harness and the scaling studies: online mean/variance
// accumulation, parallel-efficiency and speedup computations, and fixed-width
// table rendering for the rows the paper's tables and figures report.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"
)

// Welford accumulates mean and variance online (Welford's algorithm); it is
// numerically stable for long benchmark series.
type Welford struct {
	n    int
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add incorporates one observation.
func (w *Welford) Add(x float64) {
	if w.n == 0 {
		w.min, w.max = x, x
	} else {
		if x < w.min {
			w.min = x
		}
		if x > w.max {
			w.max = x
		}
	}
	w.n++
	delta := x - w.mean
	w.mean += delta / float64(w.n)
	w.m2 += delta * (x - w.mean)
}

// N returns the number of observations.
func (w *Welford) N() int { return w.n }

// Mean returns the sample mean (0 with no observations).
func (w *Welford) Mean() float64 { return w.mean }

// Variance returns the unbiased sample variance (0 with fewer than two
// observations).
func (w *Welford) Variance() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// StdDev returns the sample standard deviation.
func (w *Welford) StdDev() float64 { return math.Sqrt(w.Variance()) }

// Min returns the smallest observation (0 with no observations).
func (w *Welford) Min() float64 { return w.min }

// Max returns the largest observation (0 with no observations).
func (w *Welford) Max() float64 { return w.max }

// Speedup returns the classic strong-scaling speedup t_base / t_parallel.
// It returns 0 if the parallel time is not positive.
func Speedup(baseTime, parallelTime float64) float64 {
	if parallelTime <= 0 || baseTime <= 0 {
		return 0
	}
	return baseTime / parallelTime
}

// StrongEfficiency returns the strong-scaling parallel efficiency in percent:
// 100 * (t_base * p_base) / (t_parallel * p_parallel).
func StrongEfficiency(baseTime float64, baseProcs int, parallelTime float64, procs int) float64 {
	if parallelTime <= 0 || baseTime <= 0 || procs <= 0 || baseProcs <= 0 {
		return 0
	}
	ideal := baseTime * float64(baseProcs) / float64(procs)
	return 100 * ideal / parallelTime
}

// WeakEfficiency returns the weak-scaling parallel efficiency in percent:
// 100 * t_base / t_parallel, with the per-processor workload held constant.
func WeakEfficiency(baseTime, parallelTime float64) float64 {
	if parallelTime <= 0 || baseTime <= 0 {
		return 0
	}
	return 100 * baseTime / parallelTime
}

// Percentile returns the p-th percentile (0..100) of the data using linear
// interpolation; the input is not modified.
func Percentile(data []float64, p float64) float64 {
	if len(data) == 0 {
		return 0
	}
	sorted := append([]float64(nil), data...)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	pos := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Table renders aligned rows of values, in the spirit of the paper's result
// tables, without any external dependencies.
type Table struct {
	headers []string
	rows    [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(headers ...string) *Table {
	return &Table{headers: headers}
}

// AddRow appends a row; values are formatted with %v, floats with four
// significant digits.
func (t *Table) AddRow(values ...interface{}) {
	row := make([]string, len(values))
	for i, v := range values {
		switch x := v.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.4g", x)
		case float32:
			row[i] = fmt.Sprintf("%.4g", x)
		case time.Duration:
			row[i] = x.Round(time.Microsecond).String()
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.rows = append(t.rows, row)
}

// NumRows returns the number of data rows added so far.
func (t *Table) NumRows() int { return len(t.rows) }

// String renders the table with aligned columns.
func (t *Table) String() string {
	cols := len(t.headers)
	for _, r := range t.rows {
		if len(r) > cols {
			cols = len(r)
		}
	}
	widths := make([]int, cols)
	measure := func(row []string) {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	measure(t.headers)
	for _, r := range t.rows {
		measure(r)
	}
	var sb strings.Builder
	writeRow := func(row []string) {
		for i := 0; i < cols; i++ {
			cell := ""
			if i < len(row) {
				cell = row[i]
			}
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], cell)
		}
		sb.WriteByte('\n')
	}
	writeRow(t.headers)
	sep := make([]string, cols)
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, r := range t.rows {
		writeRow(r)
	}
	return sb.String()
}
