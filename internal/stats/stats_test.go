package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestWelfordBasics(t *testing.T) {
	var w Welford
	if w.N() != 0 || w.Mean() != 0 || w.Variance() != 0 {
		t.Fatal("zero-value Welford should report zeros")
	}
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		w.Add(x)
	}
	if w.N() != 8 {
		t.Fatalf("N = %d", w.N())
	}
	if w.Mean() != 5 {
		t.Fatalf("Mean = %v, want 5", w.Mean())
	}
	// Sample variance of this classic data set is 32/7.
	if math.Abs(w.Variance()-32.0/7.0) > 1e-12 {
		t.Fatalf("Variance = %v, want %v", w.Variance(), 32.0/7.0)
	}
	if math.Abs(w.StdDev()-math.Sqrt(32.0/7.0)) > 1e-12 {
		t.Fatalf("StdDev = %v", w.StdDev())
	}
	if w.Min() != 2 || w.Max() != 9 {
		t.Fatalf("Min/Max = %v/%v", w.Min(), w.Max())
	}
}

func TestWelfordSingleObservation(t *testing.T) {
	var w Welford
	w.Add(3.5)
	if w.Mean() != 3.5 || w.Variance() != 0 || w.Min() != 3.5 || w.Max() != 3.5 {
		t.Fatal("single observation statistics wrong")
	}
}

func TestSpeedup(t *testing.T) {
	if Speedup(100, 25) != 4 {
		t.Fatalf("Speedup = %v", Speedup(100, 25))
	}
	if Speedup(100, 0) != 0 || Speedup(0, 10) != 0 {
		t.Fatal("degenerate speedups should be 0")
	}
}

func TestStrongEfficiency(t *testing.T) {
	// Perfect scaling: 4x the processors, 1/4 the time.
	if got := StrongEfficiency(100, 1024, 25, 4096); math.Abs(got-100) > 1e-9 {
		t.Fatalf("perfect strong efficiency = %v", got)
	}
	// Half-efficient: 4x processors, only 2x faster.
	if got := StrongEfficiency(100, 1024, 50, 4096); math.Abs(got-50) > 1e-9 {
		t.Fatalf("half strong efficiency = %v", got)
	}
	if StrongEfficiency(0, 1, 1, 1) != 0 || StrongEfficiency(1, 1, 0, 1) != 0 || StrongEfficiency(1, 0, 1, 1) != 0 {
		t.Fatal("degenerate efficiency should be 0")
	}
}

func TestWeakEfficiency(t *testing.T) {
	if got := WeakEfficiency(10, 10); got != 100 {
		t.Fatalf("constant-time weak scaling efficiency = %v", got)
	}
	if got := WeakEfficiency(10, 12.5); got != 80 {
		t.Fatalf("weak efficiency = %v, want 80", got)
	}
	if WeakEfficiency(0, 1) != 0 || WeakEfficiency(1, 0) != 0 {
		t.Fatal("degenerate weak efficiency should be 0")
	}
}

func TestPercentile(t *testing.T) {
	data := []float64{5, 1, 3, 2, 4}
	if Percentile(data, 0) != 1 || Percentile(data, 100) != 5 {
		t.Fatal("extreme percentiles wrong")
	}
	if Percentile(data, 50) != 3 {
		t.Fatalf("median = %v", Percentile(data, 50))
	}
	if got := Percentile(data, 25); got != 2 {
		t.Fatalf("25th percentile = %v", got)
	}
	if Percentile(nil, 50) != 0 {
		t.Fatal("empty data percentile should be 0")
	}
	// Input must not be reordered.
	if data[0] != 5 {
		t.Fatal("Percentile modified its input")
	}
}

func TestTableRendering(t *testing.T) {
	tab := NewTable("Processors", "Time", "Efficiency")
	tab.AddRow(1024, 12.5, 99.9)
	tab.AddRow(262144, time.Duration(1500)*time.Millisecond, 82.0)
	if tab.NumRows() != 2 {
		t.Fatalf("NumRows = %d", tab.NumRows())
	}
	out := tab.String()
	if !strings.Contains(out, "Processors") || !strings.Contains(out, "262144") {
		t.Fatalf("table rendering missing content:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("table has %d lines, want header+separator+2 rows", len(lines))
	}
	if !strings.Contains(lines[1], "---") {
		t.Fatal("missing separator line")
	}
	if !strings.Contains(out, "1.5s") {
		t.Fatalf("duration cell not rendered: %s", out)
	}
}

// Property: Welford's mean matches the naive mean and stays within the
// observed min/max for arbitrary data.
func TestQuickWelfordMatchesNaiveMean(t *testing.T) {
	f := func(xs []float64) bool {
		var w Welford
		sum := 0.0
		count := 0
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e9 {
				continue
			}
			w.Add(x)
			sum += x
			count++
		}
		if count == 0 {
			return w.N() == 0
		}
		naive := sum / float64(count)
		return math.Abs(w.Mean()-naive) < 1e-6*(1+math.Abs(naive)) &&
			w.Min() <= w.Mean()+1e-9 && w.Mean() <= w.Max()+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: strong efficiency at the baseline configuration is always 100%.
func TestQuickStrongEfficiencyBaseline(t *testing.T) {
	f := func(timeSel uint32, procSel uint16) bool {
		tm := float64(timeSel%100000) + 1
		procs := int(procSel) + 1
		return math.Abs(StrongEfficiency(tm, procs, tm, procs)-100) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
