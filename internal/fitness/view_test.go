package fitness

import (
	"strings"
	"testing"

	"evogame/internal/game"
	"evogame/internal/rng"
	"evogame/internal/strategy"
)

func testEngine(t *testing.T, cfg game.EngineConfig) *game.Engine {
	t.Helper()
	eng, err := game.NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

// TestNewViewSharesStoreButNotCounters pins the view contract: results and
// IDs warmed through one view are served to every other view of the store,
// while hit/miss counters stay attributed to the view that incurred them.
func TestNewViewSharesStoreButNotCounters(t *testing.T) {
	base := game.EngineConfig{
		Rounds: 30, MemorySteps: 2, StateMode: game.StateRolling, AccumMode: game.AccumLookup,
	}
	engA := testEngine(t, base)
	engB := testEngine(t, base)
	cacheA, err := NewPairCache(engA)
	if err != nil {
		t.Fatal(err)
	}
	cacheB, err := cacheA.NewView(engB)
	if err != nil {
		t.Fatal(err)
	}
	if cacheA.Interner() != cacheB.Interner() {
		t.Fatal("views over one store must share one interning registry")
	}
	if cacheA.GameID() != cacheB.GameID() {
		t.Fatal("views over one store must report one game identity")
	}
	if cacheA.Engine() == cacheB.Engine() {
		t.Fatal("each view must keep its own engine")
	}

	src := rng.New(11)
	ids := make([]uint32, 12)
	for i := range ids {
		id, err := cacheA.Interner().Intern(strategy.RandomPure(2, src))
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = id
	}
	// Warm every pair through view A.
	for _, a := range ids {
		for _, b := range ids {
			if _, err := cacheA.PlayID(a, b); err != nil {
				t.Fatal(err)
			}
		}
	}
	if cacheA.Misses() == 0 || cacheA.Hits() == 0 {
		t.Fatalf("warming view recorded hits=%d misses=%d, want both positive", cacheA.Hits(), cacheA.Misses())
	}
	if cacheB.Hits() != 0 || cacheB.Misses() != 0 {
		t.Fatalf("cold view already carries hits=%d misses=%d", cacheB.Hits(), cacheB.Misses())
	}
	// Every probe through view B is now a hit played by nobody: identical
	// results, zero misses, engine B untouched.
	for _, a := range ids {
		for _, b := range ids {
			ra, err := cacheA.PlayID(a, b)
			if err != nil {
				t.Fatal(err)
			}
			rb, err := cacheB.PlayID(a, b)
			if err != nil {
				t.Fatal(err)
			}
			if ra != rb {
				t.Fatalf("views disagree on pair (%d,%d): %+v vs %+v", a, b, ra, rb)
			}
		}
	}
	if cacheB.Misses() != 0 {
		t.Fatalf("warm store still cost the second view %d misses", cacheB.Misses())
	}
	if got, want := cacheB.Hits(), int64(len(ids)*len(ids)); got != want {
		t.Fatalf("second view hits = %d, want %d", got, want)
	}
	if ks := cacheB.Engine().KernelStats(); ks.ScalarGames+ks.CycleGames+ks.BatchGames != 0 {
		t.Fatal("an all-hits view must not have played games through its engine")
	}
	if cacheA.Len() != cacheB.Len() {
		t.Fatalf("views report different store sizes: %d vs %d", cacheA.Len(), cacheB.Len())
	}
}

// TestNewViewRejectsIncompatibleEngines checks that a view can only be bound
// to an engine playing the identical deterministic game.
func TestNewViewRejectsIncompatibleEngines(t *testing.T) {
	base := game.EngineConfig{
		Rounds: 30, MemorySteps: 2, StateMode: game.StateRolling, AccumMode: game.AccumLookup,
	}
	cache, err := NewPairCache(testEngine(t, base))
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		cfg  game.EngineConfig
		want string
	}{
		{"rounds", game.EngineConfig{Rounds: 31, MemorySteps: 2, StateMode: game.StateRolling, AccumMode: game.AccumLookup}, "bound to game"},
		{"memory", game.EngineConfig{Rounds: 30, MemorySteps: 3, StateMode: game.StateRolling, AccumMode: game.AccumLookup}, "memory"},
		{"noise", game.EngineConfig{Rounds: 30, MemorySteps: 2, Noise: 0.05, StateMode: game.StateRolling, AccumMode: game.AccumLookup}, "noiseless"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := cache.NewView(testEngine(t, tc.cfg)); err == nil {
				t.Fatalf("NewView accepted an engine with a different %s", tc.name)
			} else if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
	if _, err := cache.NewView(nil); err == nil {
		t.Fatal("NewView accepted a nil engine")
	}
}
