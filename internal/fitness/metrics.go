package fitness

import "evogame/internal/game"

// Metrics is the flat observability export shared by both engines: one
// struct of counters a run (or one rank of a run) accumulated, with no
// nesting so it can be dumped straight into logs, JSON benchmark tables or
// dashboards.  All counters are totals over the run; divide by Generations
// for per-generation rates.  Metrics from several ranks combine with Merge.
type Metrics struct {
	// Generations is the number of generations the counters cover.
	Generations int

	// PairCache counters (zero when the run had no cache, e.g. EvalFull or a
	// noisy population).  CachePlays = CacheMisses + CacheBypassed is the
	// number of games the engine actually executed through the cache.
	CachePlays    int64
	CacheHits     int64
	CacheMisses   int64
	CacheBypassed int64
	CacheEvicted  int64

	// Kernel-mode mix: how many games each inner-loop implementation played
	// (see game.KernelStats).  BatchGames/BatchCalls give the mean SWAR lane
	// occupancy via BatchLaneOccupancy.
	ScalarGames int64
	CycleGames  int64
	BatchGames  int64
	BatchCalls  int64

	// Nature events.
	PCEvents  int
	Adoptions int
	Mutations int

	// Fault-tolerance counters (zero on a fault-free run).  Restarts is the
	// number of supervised relaunches from a checkpoint; RetriedSends,
	// DroppedMessages and DelayedMessages mirror the fabric's injected-fault
	// accounting (mpi.Stats) summed over ranks; RecoveryNanos is the wall
	// time the supervisor spent reloading checkpoints and backing off.
	Restarts        int
	RetriedSends    int64
	DroppedMessages int64
	DelayedMessages int64
	RecoveryNanos   int64
}

// AddEngine folds an engine's kernel-mix counters into m.
func (m *Metrics) AddEngine(s game.KernelStats) {
	m.ScalarGames += s.ScalarGames
	m.CycleGames += s.CycleGames
	m.BatchGames += s.BatchGames
	m.BatchCalls += s.BatchCalls
}

// AddCache folds a pair cache's counters into m.  A nil cache adds nothing,
// so engines can call it unconditionally.
func (m *Metrics) AddCache(c *PairCache) {
	if c == nil {
		return
	}
	m.CachePlays += c.Plays()
	m.CacheHits += c.Hits()
	m.CacheMisses += c.Misses()
	m.CacheBypassed += c.Bypassed()
	m.CacheEvicted += c.Evicted()
}

// Merge folds another rank's metrics into m.  Generations is taken as the
// maximum rather than summed: ranks of one run advance in lockstep.
func (m *Metrics) Merge(o Metrics) {
	if o.Generations > m.Generations {
		m.Generations = o.Generations
	}
	m.CachePlays += o.CachePlays
	m.CacheHits += o.CacheHits
	m.CacheMisses += o.CacheMisses
	m.CacheBypassed += o.CacheBypassed
	m.CacheEvicted += o.CacheEvicted
	m.ScalarGames += o.ScalarGames
	m.CycleGames += o.CycleGames
	m.BatchGames += o.BatchGames
	m.BatchCalls += o.BatchCalls
	m.PCEvents += o.PCEvents
	m.Adoptions += o.Adoptions
	m.Mutations += o.Mutations
	m.Restarts += o.Restarts
	m.RetriedSends += o.RetriedSends
	m.DroppedMessages += o.DroppedMessages
	m.DelayedMessages += o.DelayedMessages
	m.RecoveryNanos += o.RecoveryNanos
}

// BatchLaneOccupancy returns the mean fraction of the 64 SWAR lanes
// occupied per batch call, or 0 if no batches ran.
func (m Metrics) BatchLaneOccupancy() float64 {
	return game.KernelStats{BatchGames: m.BatchGames, BatchCalls: m.BatchCalls}.BatchLaneOccupancy()
}
