package fitness

import (
	"fmt"

	"evogame/internal/strategy"
)

// IncrementalMatrix maintains the per-SSet fitness of the all-pairs
// evaluation across generations.  Row i holds the focal payoff of SSet i's
// strategy against every other SSet's strategy; the row sum is the
// "relative fitness" the Nature Agent compares during pairwise learning.
//
// Rows are built lazily through a PairCache on the first Fitness request
// and kept current thereafter: when the strategy of SSet t changes, row t
// is invalidated (rebuilt on next request) while every other built row
// receives an O(1) delta update — subtract the stale payoff against t, add
// the payoff against t's new strategy.  Only the range [lo, hi) of rows is
// materialised, so a distributed rank pays memory only for the block of
// SSets it owns while still tracking the full strategy table.
//
// IncrementalMatrix is only used for noiseless populations of deterministic
// strategies (the engines bypass it otherwise), so every pair payoff is a
// pure function of the pair and the delta updates are exact; see the
// package documentation for the cache-validity conditions.
//
// The type is not safe for concurrent use; each engine (or rank) owns one.
type IncrementalMatrix struct {
	cache      *PairCache
	strategies []strategy.Strategy
	lo, hi     int

	pay   [][]float64 // pay[r][j]: payoff of SSet lo+r's strategy vs SSet j's
	sums  []float64   // sums[r]: sum of pay[r][j] over j != lo+r
	built []bool
}

// NewIncrementalMatrix returns a matrix tracking the given strategy table
// and materialising the rows [lo, hi).  The table is copied; keep it
// current with Update.
func NewIncrementalMatrix(cache *PairCache, table []strategy.Strategy, lo, hi int) (*IncrementalMatrix, error) {
	if cache == nil {
		return nil, fmt.Errorf("fitness: nil pair cache")
	}
	if lo < 0 || hi < lo || hi > len(table) {
		return nil, fmt.Errorf("fitness: row range [%d,%d) invalid for %d strategies", lo, hi, len(table))
	}
	for i, s := range table {
		if s == nil {
			return nil, fmt.Errorf("fitness: nil strategy at index %d", i)
		}
	}
	m := &IncrementalMatrix{
		cache:      cache,
		strategies: append([]strategy.Strategy(nil), table...),
		lo:         lo,
		hi:         hi,
		pay:        make([][]float64, hi-lo),
		sums:       make([]float64, hi-lo),
		built:      make([]bool, hi-lo),
	}
	for r := range m.pay {
		m.pay[r] = make([]float64, len(table))
	}
	return m, nil
}

// Len returns the number of SSets tracked.
func (m *IncrementalMatrix) Len() int { return len(m.strategies) }

// Rows returns the half-open range of rows this matrix materialises.
func (m *IncrementalMatrix) Rows() (lo, hi int) { return m.lo, m.hi }

// GamesPlayed returns the games executed through the underlying cache.
func (m *IncrementalMatrix) GamesPlayed() int64 { return m.cache.Plays() }

func (m *IncrementalMatrix) buildRow(i int) error {
	r := i - m.lo
	my := m.strategies[i]
	sum := 0.0
	for j := range m.strategies {
		if j == i {
			m.pay[r][j] = 0
			continue
		}
		res, err := m.cache.Play(my, m.strategies[j], nil)
		if err != nil {
			return fmt.Errorf("fitness: row %d vs %d: %w", i, j, err)
		}
		m.pay[r][j] = res.FitnessA
		sum += res.FitnessA
	}
	m.sums[r] = sum
	m.built[r] = true
	return nil
}

// Fitness returns the all-pairs fitness of SSet i (the summed focal payoff
// against every other SSet), building the row through the cache if it has
// not been materialised yet.  i must lie in [lo, hi).
func (m *IncrementalMatrix) Fitness(i int) (float64, error) {
	if i < m.lo || i >= m.hi {
		return 0, fmt.Errorf("fitness: row %d outside materialised range [%d,%d)", i, m.lo, m.hi)
	}
	if !m.built[i-m.lo] {
		if err := m.buildRow(i); err != nil {
			return 0, err
		}
	}
	return m.sums[i-m.lo], nil
}

// Update records that SSet idx now holds strategy s (an adoption or
// mutation event).  Row idx is invalidated; every other built row gets a
// delta update of its column idx, costing one cache lookup each — O(S)
// work, with new game kernels only for pairs never seen before.
func (m *IncrementalMatrix) Update(idx int, s strategy.Strategy) error {
	if idx < 0 || idx >= len(m.strategies) {
		return fmt.Errorf("fitness: update index %d outside table of %d strategies", idx, len(m.strategies))
	}
	if s == nil {
		return fmt.Errorf("fitness: nil strategy in update")
	}
	m.strategies[idx] = s
	for r := range m.built {
		i := m.lo + r
		if i == idx || !m.built[r] {
			continue
		}
		res, err := m.cache.Play(m.strategies[i], s, nil)
		if err != nil {
			return fmt.Errorf("fitness: delta update row %d vs %d: %w", i, idx, err)
		}
		m.sums[r] += res.FitnessA - m.pay[r][idx]
		m.pay[r][idx] = res.FitnessA
	}
	if idx >= m.lo && idx < m.hi {
		m.built[idx-m.lo] = false
	}
	return nil
}
