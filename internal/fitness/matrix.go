package fitness

import (
	"fmt"

	"evogame/internal/strategy"
	"evogame/internal/topology"
)

// IncrementalMatrix maintains the per-SSet fitness of the pairwise
// evaluation across generations.  Row i holds the focal payoff of SSet i's
// strategy against every SSet it interacts with; the row sum is the
// "relative fitness" the Nature Agent compares during pairwise learning.
// In a well-mixed population (nil graph) every SSet interacts with every
// other; under a structured topology only graph edges are evaluated, so a
// row costs the SSet's degree in cache lookups instead of S-1.
//
// Strategies are tracked as the dense interned IDs of the cache's registry,
// so row rebuilds and delta updates go through PairCache.PlayID — integer
// pair lookups with no per-game encoding or string keys.  Interning happens
// once per strategy-change event in Update, which is O(events) over a run,
// not O(games).
//
// Rows are built lazily through the PairCache on the first Fitness request
// and kept current thereafter: when the strategy of SSet t changes, row t
// is invalidated (rebuilt on next request) while every other built row
// adjacent to t receives an O(1) delta update to its sum — subtract the
// stale payoff against t, add the payoff against t's new strategy.  Only
// the range [lo, hi) of rows is materialised, so a distributed rank pays
// memory only for the block of SSets it owns while still tracking the full
// strategy table.
//
// IncrementalMatrix is only used for noiseless populations of deterministic
// strategies (the engines bypass it otherwise), so every pair payoff is a
// pure function of the pair and the delta updates are exact; see the
// package documentation for the cache-validity conditions.
//
// The type is not safe for concurrent use; each engine (or rank) owns one.
type IncrementalMatrix struct {
	cache  *PairCache
	graph  topology.Graph // nil means well-mixed (all pairs interact)
	ids    []uint32       // interned strategy ID per SSet
	lo, hi int

	// pay[r] holds the focal payoffs of SSet lo+r.  Well-mixed (nil graph)
	// rows are dense: pay[r][j] is the payoff against SSet j.  Graph rows
	// are degree-indexed: pay[r][k] is the payoff against the row's k-th
	// neighbor, so memory is O(rows × degree) rather than O(rows × S).
	pay   [][]float64
	sums  []float64 // sums[r]: sum of pay[r] entries (self excluded)
	built []bool
}

// NewIncrementalMatrix returns a matrix tracking the given strategy table
// and materialising the rows [lo, hi).  A nil graph selects the well-mixed
// population (every pair interacts); a non-nil graph restricts evaluation
// to its edges and must span exactly len(table) SSets.  Every table entry
// is interned into the cache's registry; keep the table current with
// Update.
func NewIncrementalMatrix(cache *PairCache, g topology.Graph, table []strategy.Strategy, lo, hi int) (*IncrementalMatrix, error) {
	if cache == nil {
		return nil, fmt.Errorf("fitness: nil pair cache")
	}
	if lo < 0 || hi < lo || hi > len(table) {
		return nil, fmt.Errorf("fitness: row range [%d,%d) invalid for %d strategies", lo, hi, len(table))
	}
	if g != nil && g.Len() != len(table) {
		return nil, fmt.Errorf("fitness: graph spans %d SSets but the table has %d", g.Len(), len(table))
	}
	ids := make([]uint32, len(table))
	for i, s := range table {
		if s == nil {
			return nil, fmt.Errorf("fitness: nil strategy at index %d", i)
		}
		id, err := cache.Interner().Intern(s)
		if err != nil {
			return nil, fmt.Errorf("fitness: interning strategy %d: %w", i, err)
		}
		ids[i] = id
	}
	if g != nil && g.Complete() {
		// The complete graph is the well-mixed population; drop it so the
		// hot loops below stay on the branch-free all-pairs path.
		g = nil
	}
	m := &IncrementalMatrix{
		cache: cache,
		graph: g,
		ids:   ids,
		lo:    lo,
		hi:    hi,
		pay:   make([][]float64, hi-lo),
		sums:  make([]float64, hi-lo),
		built: make([]bool, hi-lo),
	}
	for r := range m.pay {
		if g != nil {
			m.pay[r] = make([]float64, g.Degree(lo+r))
		} else {
			m.pay[r] = make([]float64, len(table))
		}
	}
	return m, nil
}

// neighborPos returns the position of j in i's ascending neighbor list, or
// -1 if the two are not adjacent (binary search, O(log degree)).
func neighborPos(g topology.Graph, i, j int) int {
	lo, hi := 0, g.Degree(i)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if g.Neighbor(i, mid) < j {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < g.Degree(i) && g.Neighbor(i, lo) == j {
		return lo
	}
	return -1
}

// Len returns the number of SSets tracked.
func (m *IncrementalMatrix) Len() int { return len(m.ids) }

// Rows returns the half-open range of rows this matrix materialises.
func (m *IncrementalMatrix) Rows() (lo, hi int) { return m.lo, m.hi }

// GamesPlayed returns the games executed through the underlying cache.
func (m *IncrementalMatrix) GamesPlayed() int64 { return m.cache.Plays() }

func (m *IncrementalMatrix) buildRow(i int) error {
	r := i - m.lo
	my := m.ids[i]
	sum := 0.0
	if m.graph != nil {
		// Degree-indexed row: entry k is the payoff against the k-th
		// neighbor, so the rebuild is O(degree) work and memory.
		deg := m.graph.Degree(i)
		for k := 0; k < deg; k++ {
			j := m.graph.Neighbor(i, k)
			res, err := m.cache.PlayID(my, m.ids[j])
			if err != nil {
				return fmt.Errorf("fitness: row %d vs %d: %w", i, j, err)
			}
			m.pay[r][k] = res.FitnessA
			sum += res.FitnessA
		}
		m.sums[r] = sum
		m.built[r] = true
		return nil
	}
	for j := range m.ids {
		if j == i {
			m.pay[r][j] = 0
			continue
		}
		res, err := m.cache.PlayID(my, m.ids[j])
		if err != nil {
			return fmt.Errorf("fitness: row %d vs %d: %w", i, j, err)
		}
		m.pay[r][j] = res.FitnessA
		sum += res.FitnessA
	}
	m.sums[r] = sum
	m.built[r] = true
	return nil
}

// Fitness returns the pairwise fitness of SSet i (the summed focal payoff
// against every SSet it interacts with), building the row through the cache
// if it has not been materialised yet.  i must lie in [lo, hi).
func (m *IncrementalMatrix) Fitness(i int) (float64, error) {
	if i < m.lo || i >= m.hi {
		return 0, fmt.Errorf("fitness: row %d outside materialised range [%d,%d)", i, m.lo, m.hi)
	}
	if !m.built[i-m.lo] {
		if err := m.buildRow(i); err != nil {
			return 0, err
		}
	}
	return m.sums[i-m.lo], nil
}

// Update records that SSet idx now holds strategy s (an adoption or
// mutation event).  The new strategy is interned once; row idx is
// invalidated and every other built row that interacts with idx gets a
// delta update of its column idx, costing one ID-pair cache lookup each —
// O(S) work well-mixed, O(degree) under a sparse topology, with new game
// kernels only for pairs never seen before.
func (m *IncrementalMatrix) Update(idx int, s strategy.Strategy) error {
	if idx < 0 || idx >= len(m.ids) {
		return fmt.Errorf("fitness: update index %d outside table of %d strategies", idx, len(m.ids))
	}
	if s == nil {
		return fmt.Errorf("fitness: nil strategy in update")
	}
	id, err := m.cache.Interner().Intern(s)
	if err != nil {
		return fmt.Errorf("fitness: interning update: %w", err)
	}
	m.ids[idx] = id
	if m.graph != nil {
		// Only idx's neighbors interact with it: walk the neighbor list
		// (ascending, like the row scan below) instead of scanning and
		// adjacency-testing every materialised row.
		deg := m.graph.Degree(idx)
		for k := 0; k < deg; k++ {
			i := m.graph.Neighbor(idx, k)
			if i < m.lo || i >= m.hi || !m.built[i-m.lo] {
				continue
			}
			col := neighborPos(m.graph, i, idx)
			if col < 0 {
				return fmt.Errorf("fitness: graph edge %d->%d has no reverse edge", idx, i)
			}
			if err := m.deltaUpdate(i, idx, col, id); err != nil {
				return err
			}
		}
	} else {
		for r := range m.built {
			i := m.lo + r
			if i == idx || !m.built[r] {
				continue
			}
			if err := m.deltaUpdate(i, idx, idx, id); err != nil {
				return err
			}
		}
	}
	if idx >= m.lo && idx < m.hi {
		m.built[idx-m.lo] = false
	}
	return nil
}

// deltaUpdate refreshes built row i after idx's strategy changed to the
// strategy behind id: subtract the stale pair payoff from the row sum, add
// the new one.  col is the row-local payoff index of idx (idx itself for
// dense well-mixed rows, idx's neighbor position for degree-indexed graph
// rows).
func (m *IncrementalMatrix) deltaUpdate(i, idx, col int, id uint32) error {
	r := i - m.lo
	res, err := m.cache.PlayID(m.ids[i], id)
	if err != nil {
		return fmt.Errorf("fitness: delta update row %d vs %d: %w", i, idx, err)
	}
	m.sums[r] += res.FitnessA - m.pay[r][col]
	m.pay[r][col] = res.FitnessA
	return nil
}
