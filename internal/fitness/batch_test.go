package fitness

import (
	"testing"

	"evogame/internal/game"
	"evogame/internal/rng"
	"evogame/internal/strategy"
)

// TestPlayIDBatchMatchesPlayID checks that the batched miss-fill path is
// observably identical to serial PlayID calls: same results, same
// hit/miss accounting, mirrors stored.
func TestPlayIDBatchMatchesPlayID(t *testing.T) {
	eng := newEngine(t, 0)
	batched, err := NewPairCache(eng)
	if err != nil {
		t.Fatal(err)
	}
	serial, err := NewPairCache(newEngine(t, 0))
	if err != nil {
		t.Fatal(err)
	}

	src := rng.New(99)
	const n = 150 // spans multiple 64-lane chunks, with duplicates below
	ids := make([]uint32, 0, n)
	serialIDs := make([]uint32, 0, n)
	for i := 0; i < n; i++ {
		s := strategy.RandomPure(1, src)
		id, err := batched.Interner().Intern(s)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
		sid, err := serial.Interner().Intern(s)
		if err != nil {
			t.Fatal(err)
		}
		serialIDs = append(serialIDs, sid)
	}
	// Duplicate some opponents so the dedup path is exercised.
	ids = append(ids, ids[3], ids[3], ids[70])
	serialIDs = append(serialIDs, serialIDs[3], serialIDs[3], serialIDs[70])

	self := ids[0]
	out := make([]game.Result, len(ids))
	if err := batched.PlayIDBatch(self, ids, out); err != nil {
		t.Fatal(err)
	}
	for i, id := range serialIDs {
		want, err := serial.PlayID(serialIDs[0], id)
		if err != nil {
			t.Fatal(err)
		}
		if out[i] != want {
			t.Fatalf("opponent %d: batch %+v, serial %+v", i, out[i], want)
		}
	}
	if batched.Misses() != serial.Misses() {
		t.Fatalf("miss counts diverged: batch %d, serial %d", batched.Misses(), serial.Misses())
	}
	if batched.Plays() != serial.Plays() {
		t.Fatalf("play counts diverged: batch %d, serial %d", batched.Plays(), serial.Plays())
	}
	if batched.Len() != serial.Len() {
		t.Fatalf("stored pair counts diverged: batch %d, serial %d", batched.Len(), serial.Len())
	}

	// A second pass is all hits and must not allocate.
	hitsBefore := batched.Hits()
	allocs := testing.AllocsPerRun(50, func() {
		if err := batched.PlayIDBatch(self, ids, out); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("all-hit PlayIDBatch allocates %v times per call, want 0", allocs)
	}
	if batched.Hits() == hitsBefore {
		t.Fatal("second pass recorded no hits")
	}
	if err := batched.PlayIDBatch(self, ids, out[:1]); err == nil {
		t.Fatal("mismatched result slice length accepted")
	}
	if err := batched.PlayIDBatch(self, []uint32{9999}, out[:1]); err == nil {
		t.Fatal("unknown interned ID accepted")
	}
}
