package fitness

import (
	"sync"
	"testing"

	"evogame/internal/game"
	"evogame/internal/rng"
	"evogame/internal/strategy"
)

// TestPlayIDHitZeroAllocs pins the cache-hit path to zero heap allocations:
// the whole point of interning is that steady-state evaluation is integer
// arithmetic on ID pairs.
func TestPlayIDHitZeroAllocs(t *testing.T) {
	cache, err := NewPairCache(newEngine(t, 0))
	if err != nil {
		t.Fatal(err)
	}
	ida, err := cache.Interner().Intern(strategy.TFT(1))
	if err != nil {
		t.Fatal(err)
	}
	idb, err := cache.Interner().Intern(strategy.AllD(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cache.PlayID(ida, idb); err != nil {
		t.Fatal(err)
	}
	if n := testing.AllocsPerRun(100, func() {
		if _, err := cache.PlayID(ida, idb); err != nil {
			t.Fatal(err)
		}
		if _, err := cache.PlayID(idb, ida); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Errorf("cache-hit path allocates %v objects/op, want 0", n)
	}
}

// TestPairCacheShardedConcurrentHammer drives the sharded store from many
// goroutines mixing PlayID hits, misses and legacy Play calls; run with
// -race in CI it doubles as the data-race gate for the lock-free-ish hit
// path and the atomic counters.
func TestPairCacheShardedConcurrentHammer(t *testing.T) {
	eng, err := game.NewEngine(game.EngineConfig{
		Rounds: 20, MemorySteps: 2, StateMode: game.StateRolling, AccumMode: game.AccumLookup,
	})
	if err != nil {
		t.Fatal(err)
	}
	cache, err := NewPairCache(eng)
	if err != nil {
		t.Fatal(err)
	}
	src := rng.New(42)
	table := make([]strategy.Strategy, 48)
	ids := make([]uint32, len(table))
	for i := range table {
		table[i] = strategy.RandomPure(2, src)
		id, err := cache.Interner().Intern(table[i])
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = id
	}

	const workers = 16
	var wg sync.WaitGroup
	results := make([]map[uint64]game.Result, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			seen := make(map[uint64]game.Result)
			// Walk the pair space in a worker-specific order so shards see
			// overlapping misses and hits concurrently.
			for step := 0; step < 3*len(table)*len(table); step++ {
				i := (step*7 + w*13) % len(table)
				j := (step*11 + w*5) % len(table)
				var res game.Result
				var err error
				if step%4 == 0 {
					res, err = cache.Play(table[i], table[j], nil)
				} else {
					res, err = cache.PlayID(ids[i], ids[j])
				}
				if err != nil {
					t.Error(err)
					return
				}
				key := uint64(ids[i])<<32 | uint64(ids[j])
				if prev, ok := seen[key]; ok && prev != res {
					t.Errorf("worker %d saw two results for pair (%d,%d)", w, i, j)
					return
				}
				seen[key] = res
			}
			results[w] = seen
		}(w)
	}
	wg.Wait()
	for w := 1; w < workers; w++ {
		for key, res := range results[w] {
			if base, ok := results[0][key]; ok && base != res {
				t.Fatalf("workers 0 and %d disagree on pair key %#x", w, key)
			}
		}
	}
	// Every distinct unordered pair was played exactly once.
	if plays, max := cache.Plays(), int64(len(table)*(len(table)+1)/2); plays > max {
		t.Fatalf("cache played %d games for %d distinct unordered pairs", plays, max)
	}
	if cache.Hits() == 0 || cache.Bypassed() != 0 {
		t.Fatalf("hammer stats: hits=%d bypassed=%d", cache.Hits(), cache.Bypassed())
	}
}

// testCacheSmallShards returns a cache whose shard budget is tiny so
// eviction triggers quickly.
func testCacheSmallShards(t *testing.T, maxPerShard int) *PairCache {
	t.Helper()
	eng, err := game.NewEngine(game.EngineConfig{
		Rounds: 20, MemorySteps: 2, StateMode: game.StateRolling, AccumMode: game.AccumLookup,
	})
	if err != nil {
		t.Fatal(err)
	}
	cache, err := NewPairCache(eng)
	if err != nil {
		t.Fatal(err)
	}
	cache.store.maxPerShard = maxPerShard
	return cache
}

// TestBoundedEvictionKeepsMirrorInvariant fills the cache far past a tiny
// shard budget and checks that (a) eviction drops a bounded fraction rather
// than the whole store and (b) for every surviving ordered pair the
// mirrored pair survived with it, carrying the swapped result.
func TestBoundedEvictionKeepsMirrorInvariant(t *testing.T) {
	cache := testCacheSmallShards(t, 8)
	src := rng.New(7)
	ids := make([]uint32, 48)
	for i := range ids {
		id, err := cache.Interner().Intern(strategy.RandomPure(2, src))
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = id
	}
	for _, a := range ids {
		for _, b := range ids {
			if _, err := cache.PlayID(a, b); err != nil {
				t.Fatal(err)
			}
		}
	}
	if cache.Evicted() == 0 {
		t.Fatal("tiny shard budget never triggered eviction")
	}
	if cache.Len() == 0 {
		t.Fatal("eviction emptied the cache; it must drop a bounded fraction only")
	}
	// Mirror invariant: scan every shard under its read lock.
	for si := range cache.store.shards {
		sh := &cache.store.shards[si]
		sh.mu.RLock()
		for k, res := range sh.entries {
			mk := mirrorKey(k)
			mres, ok := sh.entries[mk]
			if !ok {
				sh.mu.RUnlock()
				t.Fatalf("shard %d: pair %#x survived eviction without its mirror", si, k)
			}
			if mres != swap(res) {
				sh.mu.RUnlock()
				t.Fatalf("shard %d: mirror of %#x carries %+v, want %+v", si, k, mres, swap(res))
			}
		}
		sh.mu.RUnlock()
	}
	// Evicted pairs are replayed on demand with identical results.
	res, err := cache.PlayID(ids[0], ids[1])
	if err != nil {
		t.Fatal(err)
	}
	again, err := cache.PlayID(ids[0], ids[1])
	if err != nil {
		t.Fatal(err)
	}
	if res != again {
		t.Fatal("replay after eviction changed the result")
	}
}

// TestBypassSkipsLocks checks the non-cacheable path counts through the
// atomic bypass counter and stores nothing.
func TestBypassCountsAtomically(t *testing.T) {
	cache, err := NewPairCache(newEngine(t, 0.2))
	if err != nil {
		t.Fatal(err)
	}
	src := rng.New(5)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		srcW := src.Split()
		go func(srcW *rng.Source) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if _, err := cache.Play(strategy.TFT(1), strategy.AllD(1), srcW); err != nil {
					t.Error(err)
					return
				}
			}
		}(srcW)
	}
	wg.Wait()
	if cache.Bypassed() != 400 || cache.Plays() != 400 || cache.Len() != 0 || cache.Misses() != 0 {
		t.Fatalf("bypass stats: bypassed=%d plays=%d len=%d misses=%d",
			cache.Bypassed(), cache.Plays(), cache.Len(), cache.Misses())
	}
}
