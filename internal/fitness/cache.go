package fitness

import (
	"fmt"
	"sync"

	"evogame/internal/game"
	"evogame/internal/rng"
	"evogame/internal/strategy"
)

// pairKey is the canonical encoding of an ordered (focal, opponent)
// strategy pair under one game.  Each strategy side is the codec's
// self-describing byte encoding, so two strategies with identical move
// tables share one key regardless of which Strategy value holds them; the
// game component is the engine's canonical game identity (scenario name,
// payoff values, rounds), so memoized results can never leak between
// scenarios.  Every entry of one cache shares the same game string value,
// so the extra field costs one string header per entry, not a copy.
type pairKey struct {
	game       string
	focal, opp string
}

// maxCacheBytes bounds the approximate memory a PairCache retains for
// memoized results.  Long runs with high mutation rates generate an
// unbounded stream of distinct strategies; once the cache reaches the
// budget it is reset and repopulated on demand, which at worst replays
// pairs that are still live — results are pure functions of the pair, so
// correctness is unaffected.
const maxCacheBytes = 64 << 20

// PairCache memoizes game results per distinct strategy pair.  It is safe
// for concurrent use by the worker goroutines of one rank; results are pure
// functions of the pair, so racing workers at worst replay a pair once each
// and store the identical result (counted once, keeping the play counter
// deterministic for a given seed).
type PairCache struct {
	eng        *game.Engine
	gameID     string
	maxEntries int

	mu      sync.Mutex
	entries map[pairKey]game.Result
	plays   int64
	hits    int64
}

// NewPairCache returns an empty cache bound to the given engine; the
// engine's game identity becomes part of every cache key.
func NewPairCache(eng *game.Engine) (*PairCache, error) {
	if eng == nil {
		return nil, fmt.Errorf("fitness: nil engine")
	}
	// Size the entry budget from the per-entry footprint: two encoded
	// strategies per key plus the stored result.
	entryBytes := 2*strategy.EncodedSize(eng.MemorySteps()) + 64
	maxEntries := maxCacheBytes / entryBytes
	if maxEntries < 4096 {
		maxEntries = 4096
	}
	return &PairCache{eng: eng, gameID: eng.GameID(), maxEntries: maxEntries, entries: make(map[pairKey]game.Result)}, nil
}

// CacheUsable reports whether the cache-validity conditions hold for a
// whole run over the given strategy table: a noiseless engine and an
// all-deterministic table.  Learning only copies strategies and the
// mutation operator only generates pure ones, so a table that starts
// deterministic stays deterministic; both engines use this single gate to
// decide whether to route evaluation through the subsystem or fall back to
// their full paths.
func CacheUsable(eng *game.Engine, table []strategy.Strategy) bool {
	if eng == nil || eng.Noise() > 0 {
		return false
	}
	for _, s := range table {
		if s == nil || !s.Deterministic() {
			return false
		}
	}
	return true
}

// Engine returns the engine the cache plays games with.
func (c *PairCache) Engine() *game.Engine { return c.eng }

// GameID returns the canonical game identity incorporated into every cache
// key.
func (c *PairCache) GameID() string { return c.gameID }

// DeltaExact reports whether the IncrementalMatrix's delta updates are
// bit-exact for the engine's game: with an integer-valued payoff matrix
// every fitness sum is an exactly-representable integer, so subtracting and
// re-adding pair payoffs reproduces a fresh evaluation bit for bit.  The
// engines downgrade EvalIncremental to EvalCached when this fails (for
// example a generic 2x2 game with fractional payoffs), preserving the
// all-modes-identical guarantee.
func DeltaExact(eng *game.Engine) bool {
	return eng != nil && eng.Payoff().IntegerValued()
}

// EffectiveMode returns the evaluation mode an engine should actually run
// for the requested mode: EvalIncremental downgrades to EvalCached when the
// engine's game cannot guarantee bit-exact delta updates (see DeltaExact).
// Both engines route their mode selection through this single gate so a new
// cache-validity condition cannot be applied to one engine and missed in
// the other.
func EffectiveMode(eng *game.Engine, mode EvalMode) EvalMode {
	if mode == EvalIncremental && !DeltaExact(eng) {
		return EvalCached
	}
	return mode
}

// Cacheable reports whether a game between a and b is a pure function of
// the pair and may therefore be memoized: the engine must be noiseless and
// both strategies deterministic.
func (c *PairCache) Cacheable(a, b strategy.Strategy) bool {
	return c.eng.Noise() == 0 && a.Deterministic() && b.Deterministic()
}

// keyOf returns the canonical encoding of s, or ok=false for strategy
// implementations the codec does not know.
func keyOf(s strategy.Strategy) (string, bool) {
	buf, err := strategy.Encode(s)
	if err != nil {
		return "", false
	}
	return string(buf), true
}

// swap returns the result seen from the opposite side of the board.
func swap(r game.Result) game.Result {
	return game.Result{
		FitnessA:      r.FitnessB,
		FitnessB:      r.FitnessA,
		CooperationsA: r.CooperationsB,
		CooperationsB: r.CooperationsA,
		Rounds:        r.Rounds,
	}
}

// Play returns the result of a game between focal strategy a and opponent
// b.  Cacheable pairs (see Cacheable) are played at most once and served
// from memory afterwards; non-cacheable pairs — the noise > 0 or mixed
// strategy bypass — are played fresh every call with the supplied source,
// exactly as the engine would without the cache.
func (c *PairCache) Play(a, b strategy.Strategy, src *rng.Source) (game.Result, error) {
	if !c.Cacheable(a, b) {
		res, err := c.eng.Play(a, b, src)
		if err != nil {
			return game.Result{}, err
		}
		c.mu.Lock()
		c.plays++
		c.mu.Unlock()
		return res, nil
	}
	ka, okA := keyOf(a)
	kb, okB := keyOf(b)
	if !okA || !okB {
		// Unknown strategy implementation: play without memoizing.
		res, err := c.eng.Play(a, b, src)
		if err != nil {
			return game.Result{}, err
		}
		c.mu.Lock()
		c.plays++
		c.mu.Unlock()
		return res, nil
	}
	key := pairKey{game: c.gameID, focal: ka, opp: kb}

	c.mu.Lock()
	if res, ok := c.entries[key]; ok {
		c.hits++
		c.mu.Unlock()
		return res, nil
	}
	c.mu.Unlock()

	// Deterministic, noiseless game: no source needed.  Played outside the
	// lock so concurrent workers are not serialised on the kernel.
	res, err := c.eng.Play(a, b, nil)
	if err != nil {
		return game.Result{}, err
	}
	c.mu.Lock()
	// Count the play only when this call actually stores the entry: two
	// workers racing on the same uncached pair replay the identical game,
	// and counting it once keeps the reported game totals deterministic for
	// a given seed regardless of scheduling.
	if _, ok := c.entries[key]; !ok {
		c.plays++
		if len(c.entries) >= c.maxEntries {
			c.entries = make(map[pairKey]game.Result)
		}
		c.entries[key] = res
		c.entries[pairKey{game: c.gameID, focal: kb, opp: ka}] = swap(res)
	}
	c.mu.Unlock()
	return res, nil
}

// Plays returns the number of games actually executed by the engine through
// this cache (cache misses plus bypassed games).  This is the quantity the
// engines report as "games played".
func (c *PairCache) Plays() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.plays
}

// Hits returns the number of Play calls served from memory.
func (c *PairCache) Hits() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits
}

// Len returns the number of memoized ordered pairs.
func (c *PairCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}
