package fitness

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"evogame/internal/game"
	"evogame/internal/intern"
	"evogame/internal/rng"
	"evogame/internal/strategy"
)

// maxCacheBytes bounds the approximate memory a PairCache retains for
// memoized results.  Long runs with high mutation rates generate an
// unbounded stream of distinct strategies; once a shard reaches its slice
// of the budget, a bounded fraction of its entries is evicted (see
// cacheShard.evict), which at worst replays pairs that are still live —
// results are pure functions of the pair, so correctness is unaffected.
const maxCacheBytes = 64 << 20

// numShards is the number of independently locked segments of the pair
// store.  Mirrored keys (a,b) and (b,a) hash to the same shard, so the
// mirrored-pair invariant is maintained under one lock.
const numShards = 64

// evictDivisor is the fraction of a full shard evicted in one pass (one
// quarter), so an overflow sheds bounded weight instead of discarding every
// hot pair at once.
const evictDivisor = 4

// cacheShard is one lock-scoped segment of the pair store.  Reads take the
// read lock only, so cache hits from concurrent worker goroutines do not
// serialise on each other.
type cacheShard struct {
	mu      sync.RWMutex
	entries map[uint64]game.Result
}

// evict removes roughly a quarter of the shard's entries, always deleting a
// key together with its mirror so the mirrored-pair invariant survives
// eviction.  Victims are the numerically smallest keys — interned IDs are
// dense and issued in first-seen order, so low keys belong to the oldest
// strategies, the ones most likely extinct — selected by sorting rather
// than map iteration so that which pairs later replay (and therefore the
// reported play counts) stays deterministic for a given seed.  Called with
// the shard's write lock held.
func (sh *cacheShard) evict() int {
	quota := len(sh.entries) / evictDivisor
	if quota < 1 {
		quota = 1
	}
	keys := make([]uint64, 0, len(sh.entries))
	for k := range sh.entries {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	removed := 0
	for _, k := range keys {
		if _, ok := sh.entries[k]; !ok {
			continue // already removed as an earlier victim's mirror
		}
		delete(sh.entries, k)
		removed++
		if m := mirrorKey(k); m != k {
			if _, ok := sh.entries[m]; ok {
				delete(sh.entries, m)
				removed++
			}
		}
		if removed >= quota {
			break
		}
	}
	return removed
}

// pairKey packs an ordered ID pair into the store's map key.
func pairKey(a, b uint32) uint64 { return uint64(a)<<32 | uint64(b) }

// mirrorKey returns the key of the reversed pair.
func mirrorKey(k uint64) uint64 { return k<<32 | k>>32 }

// shardIndex maps an ID pair to its shard.  The hash is computed over the
// unordered pair so (a,b) and (b,a) — whose results mirror each other and
// are stored together — land in the same shard.
func shardIndex(a, b uint32) int {
	lo, hi := a, b
	if lo > hi {
		lo, hi = hi, lo
	}
	h := uint64(lo)<<32 | uint64(hi)
	h ^= h >> 33
	h *= 0xFF51AFD7ED558CCD
	h ^= h >> 33
	return int(h & (numShards - 1))
}

// pairStore is the shareable state behind one or more PairCache views: the
// sharded result table, the interning registry issuing the dense IDs the
// table is keyed by, and the game identity every memoized result belongs
// to.  All of it is safe for concurrent use — shards are RWMutex-locked and
// the registry locks internally — so independent runs (ensemble replicates)
// may warm a single store concurrently through their own views.
type pairStore struct {
	gameID      string
	memorySteps int
	maxPerShard int
	reg         *intern.Registry

	shards [numShards]cacheShard
}

// compatible reports whether results memoized in this store are valid for
// games played by eng.  The game ID covers the payoff spec and round count;
// memory depth is checked separately because the ID does not encode it, and
// noise must be zero because noisy results are not pure functions of the
// pair.  Kernel mode deliberately does not participate: every kernel is
// bit-identical on the deterministic noiseless path, so views over the same
// store may mix them.
func (st *pairStore) compatible(eng *game.Engine) error {
	if eng == nil {
		return fmt.Errorf("fitness: nil engine")
	}
	if eng.Noise() > 0 {
		return fmt.Errorf("fitness: shared cache requires a noiseless engine, got noise=%v", eng.Noise())
	}
	if got := eng.GameID(); got != st.gameID {
		return fmt.Errorf("fitness: shared cache is bound to game %q, engine plays %q", st.gameID, got)
	}
	if got := eng.MemorySteps(); got != st.memorySteps {
		return fmt.Errorf("fitness: shared cache is bound to memory-%d strategies, engine expects memory-%d", st.memorySteps, got)
	}
	return nil
}

// PairCache memoizes game results per distinct strategy pair, keyed by the
// dense IDs of an intern.Registry rather than encoded strategy strings, so
// the hot lookup path is integer arithmetic with no allocations.  The store
// is sharded by unordered ID pair: hits take only a shard read lock and the
// counters are atomics, so the worker goroutines of one rank do not
// serialise on each other.  Results are pure functions of the pair; racing
// workers at worst replay a pair once each and store the identical result
// (counted once, keeping the play counter deterministic for a given seed).
//
// A PairCache is a view: the result table and registry live in a pairStore
// that additional views may share (see NewView), while the engine used to
// play misses and the hit/miss/bypass counters are per view.  A solo run
// owns a private store; ensemble replicates each hold their own view over
// one shared store, so kernel statistics and cache counters stay attributed
// to the run that incurred them while results warmed by any replicate serve
// all of them.
type PairCache struct {
	eng   *game.Engine
	store *pairStore

	hits     atomic.Int64
	misses   atomic.Int64
	bypassed atomic.Int64
	evicted  atomic.Int64
}

// NewPairCache returns an empty cache bound to the given engine, with a
// fresh strategy-interning registry (see Interner) and a private store.
func NewPairCache(eng *game.Engine) (*PairCache, error) {
	if eng == nil {
		return nil, fmt.Errorf("fitness: nil engine")
	}
	// Size the per-shard entry budget from the per-entry footprint: the
	// uint64 key, the stored result and map overhead.
	const entryBytes = 64
	maxPerShard := maxCacheBytes / entryBytes / numShards
	if maxPerShard < 64 {
		maxPerShard = 64
	}
	st := &pairStore{
		gameID:      eng.GameID(),
		memorySteps: eng.MemorySteps(),
		maxPerShard: maxPerShard,
		reg:         intern.NewRegistry(),
	}
	for i := range st.shards {
		st.shards[i].entries = make(map[uint64]game.Result)
	}
	return &PairCache{eng: eng, store: st}, nil
}

// NewView returns a fresh view over this cache's underlying store, bound to
// the given engine: lookups hit the same memoized results and the same
// interning registry, but misses are played through eng (so its kernel
// statistics account for them) and the new view's counters start at zero.
// The engine must play the identical deterministic game — same game ID,
// same memory depth, noiseless — or an error is returned; results from a
// different game must never be served across views.
func (c *PairCache) NewView(eng *game.Engine) (*PairCache, error) {
	if err := c.store.compatible(eng); err != nil {
		return nil, err
	}
	return &PairCache{eng: eng, store: c.store}, nil
}

// CacheUsable reports whether the cache-validity conditions hold for a
// whole run over the given strategy table: a noiseless engine and an
// all-deterministic table of codec-encodable strategies (so every entry can
// be interned).  Learning only copies strategies and the mutation operator
// only generates pure ones, so a table that starts deterministic stays
// deterministic; both engines use this single gate to decide whether to
// route evaluation through the subsystem or fall back to their full paths.
func CacheUsable(eng *game.Engine, table []strategy.Strategy) bool {
	if eng == nil || eng.Noise() > 0 {
		return false
	}
	for _, s := range table {
		if s == nil || !s.Deterministic() || !strategy.Encodable(s) {
			return false
		}
	}
	return true
}

// Engine returns the engine the cache plays games with.
func (c *PairCache) Engine() *game.Engine { return c.eng }

// GameID returns the canonical identity of the game every memoized result
// belongs to.  A store is bound to one game (and every view's engine is
// checked against it), so results cannot leak between scenarios by
// construction.
func (c *PairCache) GameID() string { return c.store.gameID }

// Interner returns the registry issuing the dense strategy IDs PlayID
// accepts.  Engines intern their strategy tables through it once per
// strategy-change event, so the per-game path never touches the codec.
// Views over one store share one registry, so an ID issued to any view is
// valid in all of them.
func (c *PairCache) Interner() *intern.Registry { return c.store.reg }

// DeltaExact reports whether the IncrementalMatrix's delta updates are
// bit-exact for the engine's game: with an integer-valued payoff matrix
// every fitness sum is an exactly-representable integer, so subtracting and
// re-adding pair payoffs reproduces a fresh evaluation bit for bit.  The
// engines downgrade EvalIncremental to EvalCached when this fails (for
// example a generic 2x2 game with fractional payoffs), preserving the
// all-modes-identical guarantee.
func DeltaExact(eng *game.Engine) bool {
	return eng != nil && eng.Payoff().IntegerValued()
}

// EffectiveMode returns the evaluation mode an engine should actually run
// for the requested mode: EvalIncremental downgrades to EvalCached when the
// engine's game cannot guarantee bit-exact delta updates (see DeltaExact).
// Both engines route their mode selection through this single gate so a new
// cache-validity condition cannot be applied to one engine and missed in
// the other.
func EffectiveMode(eng *game.Engine, mode EvalMode) EvalMode {
	if mode == EvalIncremental && !DeltaExact(eng) {
		return EvalCached
	}
	return mode
}

// Cacheable reports whether a game between a and b is a pure function of
// the pair and may therefore be memoized: the engine must be noiseless and
// both strategies deterministic.
func (c *PairCache) Cacheable(a, b strategy.Strategy) bool {
	return c.eng.Noise() == 0 && a.Deterministic() && b.Deterministic()
}

// swap returns the result seen from the opposite side of the board.
func swap(r game.Result) game.Result {
	return game.Result{
		FitnessA:      r.FitnessB,
		FitnessB:      r.FitnessA,
		CooperationsA: r.CooperationsB,
		CooperationsB: r.CooperationsA,
		Rounds:        r.Rounds,
	}
}

// PlayID returns the result of a game between the strategies behind the
// given interned IDs (issued by this cache's Interner).  The pair is played
// at most once and served from memory afterwards; storing a result also
// stores the mirrored result for the reversed pair.  The hit path performs
// no allocations and takes only a shard read lock.
func (c *PairCache) PlayID(a, b uint32) (game.Result, error) {
	key := pairKey(a, b)
	sh := &c.store.shards[shardIndex(a, b)]
	sh.mu.RLock()
	res, ok := sh.entries[key]
	sh.mu.RUnlock()
	if ok {
		c.hits.Add(1)
		return res, nil
	}

	sa, err := c.store.reg.Strategy(a)
	if err != nil {
		return game.Result{}, fmt.Errorf("fitness: %w", err)
	}
	sb, err := c.store.reg.Strategy(b)
	if err != nil {
		return game.Result{}, fmt.Errorf("fitness: %w", err)
	}
	// Deterministic, noiseless game: no source needed.  Played outside the
	// lock so concurrent workers are not serialised on the kernel.
	res, err = c.eng.Play(sa, sb, nil)
	if err != nil {
		return game.Result{}, err
	}

	sh.mu.Lock()
	// Count the play only when this call actually stores the entry: two
	// workers racing on the same uncached pair replay the identical game,
	// and counting it once keeps the reported game totals deterministic for
	// a given seed regardless of scheduling.
	if _, ok := sh.entries[key]; !ok {
		c.misses.Add(1)
		if len(sh.entries) >= c.store.maxPerShard {
			c.evicted.Add(int64(sh.evict()))
		}
		sh.entries[key] = res
		if mk := mirrorKey(key); mk != key {
			sh.entries[mk] = swap(res)
		}
	}
	sh.mu.Unlock()
	return res, nil
}

// PlayIDBatch fills out[i] with the result of the game between the
// strategies behind IDs a and bs[i], for every i.  Results, the games
// actually executed and the stored entries are identical to calling
// PlayID(a, bs[i]) in index order, but the misses are deduplicated (in
// first-encounter order) and played through the engine's batch kernel, 64
// games per focal strategy at a time, instead of one by one.  (A duplicate
// of an uncached ID within one call joins the batch probe instead of
// counting as a hit, so only the hit counter can differ from the serial
// sequence.)  The all-hits steady state allocates nothing.
func (c *PairCache) PlayIDBatch(a uint32, bs []uint32, out []game.Result) error {
	if len(out) != len(bs) {
		return fmt.Errorf("fitness: PlayIDBatch result slice has %d entries for %d opponents", len(out), len(bs))
	}
	var missIdx []int
	for i, b := range bs {
		key := pairKey(a, b)
		sh := &c.store.shards[shardIndex(a, b)]
		sh.mu.RLock()
		res, ok := sh.entries[key]
		sh.mu.RUnlock()
		if ok {
			out[i] = res
		} else {
			missIdx = append(missIdx, i)
		}
	}
	c.hits.Add(int64(len(bs) - len(missIdx)))
	if len(missIdx) == 0 {
		return nil
	}

	sa, err := c.store.reg.Strategy(a)
	if err != nil {
		return fmt.Errorf("fitness: %w", err)
	}
	pos := make(map[uint32]int, len(missIdx))
	order := make([]uint32, 0, len(missIdx))
	players := make([]game.Player, 0, len(missIdx))
	for _, i := range missIdx {
		b := bs[i]
		if _, ok := pos[b]; ok {
			continue
		}
		sb, err := c.store.reg.Strategy(b)
		if err != nil {
			return fmt.Errorf("fitness: %w", err)
		}
		pos[b] = len(order)
		order = append(order, b)
		players = append(players, sb)
	}
	// Deterministic, noiseless games: no sources needed.  Played outside the
	// locks so concurrent workers are not serialised on the kernel.
	results := make([]game.Result, len(order))
	if err := c.eng.PlayBatch(sa, players, nil, results); err != nil {
		return err
	}
	for k, b := range order {
		key := pairKey(a, b)
		sh := &c.store.shards[shardIndex(a, b)]
		sh.mu.Lock()
		// Count-once semantics as in PlayID: a racing worker that stored the
		// pair first wins, and its (identical) result is what callers see.
		if stored, ok := sh.entries[key]; ok {
			results[k] = stored
		} else {
			c.misses.Add(1)
			if len(sh.entries) >= c.store.maxPerShard {
				c.evicted.Add(int64(sh.evict()))
			}
			sh.entries[key] = results[k]
			if mk := mirrorKey(key); mk != key {
				sh.entries[mk] = swap(results[k])
			}
		}
		sh.mu.Unlock()
	}
	for _, i := range missIdx {
		out[i] = results[pos[bs[i]]]
	}
	return nil
}

// Play returns the result of a game between focal strategy a and opponent
// b.  Cacheable pairs (see Cacheable) are interned and served through
// PlayID; non-cacheable pairs — the noise > 0 or mixed strategy bypass —
// are played fresh every call with the supplied source, exactly as the
// engine would without the cache, touching no locks beyond the atomic play
// counter.  Engines that track IDs themselves should prefer PlayID, which
// skips the per-call interning.
func (c *PairCache) Play(a, b strategy.Strategy, src *rng.Source) (game.Result, error) {
	if !c.Cacheable(a, b) {
		return c.playBypass(a, b, src)
	}
	ida, errA := c.store.reg.Intern(a)
	idb, errB := c.store.reg.Intern(b)
	if errA != nil || errB != nil {
		// Unknown strategy implementation: play without memoizing.
		return c.playBypass(a, b, src)
	}
	return c.PlayID(ida, idb)
}

// playBypass plays a game the cache must not memoize, counting it without
// taking any lock.
func (c *PairCache) playBypass(a, b strategy.Strategy, src *rng.Source) (game.Result, error) {
	res, err := c.eng.Play(a, b, src)
	if err != nil {
		return game.Result{}, err
	}
	c.bypassed.Add(1)
	return res, nil
}

// Plays returns the number of games actually executed by the engine through
// this cache (cache misses plus bypassed games).  This is the quantity the
// engines report as "games played".
func (c *PairCache) Plays() int64 { return c.misses.Load() + c.bypassed.Load() }

// Hits returns the number of lookups served from memory.
func (c *PairCache) Hits() int64 { return c.hits.Load() }

// Misses returns the number of cacheable lookups that executed the game
// kernel and stored its result.
func (c *PairCache) Misses() int64 { return c.misses.Load() }

// Bypassed returns the number of non-cacheable games (noise, mixed or
// non-codec strategies) played through the cache without being memoized.
func (c *PairCache) Bypassed() int64 { return c.bypassed.Load() }

// Evicted returns the number of memoized entries this view dropped by
// bounded eviction after a shard reached its memory budget.
func (c *PairCache) Evicted() int64 { return c.evicted.Load() }

// Len returns the number of memoized ordered pairs in the underlying store
// (shared across views).
func (c *PairCache) Len() int {
	total := 0
	for i := range c.store.shards {
		sh := &c.store.shards[i]
		sh.mu.RLock()
		total += len(sh.entries)
		sh.mu.RUnlock()
	}
	return total
}
