package fitness

import (
	"sync"
	"testing"

	"evogame/internal/game"
	"evogame/internal/rng"
	"evogame/internal/strategy"
	"evogame/internal/topology"
)

func newEngine(t testing.TB, noise float64) *game.Engine {
	t.Helper()
	eng, err := game.NewEngine(game.EngineConfig{
		Rounds:      50,
		MemorySteps: 1,
		Noise:       noise,
		StateMode:   game.StateRolling,
		AccumMode:   game.AccumLookup,
	})
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

func TestEvalModeStringAndParse(t *testing.T) {
	for _, tc := range []struct {
		mode EvalMode
		name string
	}{{EvalFull, "full"}, {EvalCached, "cached"}, {EvalIncremental, "incremental"}} {
		if tc.mode.String() != tc.name {
			t.Errorf("%d.String() = %q, want %q", tc.mode, tc.mode.String(), tc.name)
		}
		got, err := ParseEvalMode(tc.name)
		if err != nil || got != tc.mode {
			t.Errorf("ParseEvalMode(%q) = %v, %v", tc.name, got, err)
		}
		if !tc.mode.Valid() {
			t.Errorf("%v should be valid", tc.mode)
		}
	}
	if _, err := ParseEvalMode("bogus"); err == nil {
		t.Error("ParseEvalMode accepted an unknown mode")
	}
	if EvalMode(7).Valid() || EvalMode(-1).Valid() {
		t.Error("out-of-range modes should be invalid")
	}
	if EvalMode(7).String() == "" {
		t.Error("unknown mode should still render")
	}
}

func TestPairCacheMemoizesAndMirrors(t *testing.T) {
	cache, err := NewPairCache(newEngine(t, 0))
	if err != nil {
		t.Fatal(err)
	}
	tft, alld := strategy.TFT(1), strategy.AllD(1)

	first, err := cache.Play(tft, alld, nil)
	if err != nil {
		t.Fatal(err)
	}
	if cache.Plays() != 1 || cache.Hits() != 0 {
		t.Fatalf("after first play: plays=%d hits=%d", cache.Plays(), cache.Hits())
	}
	// Same ordered pair: a hit with the identical result.
	again, err := cache.Play(tft, alld, nil)
	if err != nil {
		t.Fatal(err)
	}
	if again != first {
		t.Fatalf("cached result differs: %+v vs %+v", again, first)
	}
	// Reversed pair: also a hit, with the mirrored result.
	rev, err := cache.Play(alld, tft, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rev.FitnessA != first.FitnessB || rev.FitnessB != first.FitnessA ||
		rev.CooperationsA != first.CooperationsB || rev.Rounds != first.Rounds {
		t.Fatalf("mirrored result wrong: %+v vs %+v", rev, first)
	}
	if cache.Plays() != 1 || cache.Hits() != 2 {
		t.Fatalf("after mirror hit: plays=%d hits=%d", cache.Plays(), cache.Hits())
	}
	if cache.Len() != 2 {
		t.Fatalf("cache holds %d ordered pairs, want 2", cache.Len())
	}
	// A strategy with the same move table but a different value must share
	// the canonical key.
	tft2, err := strategy.ParsePure(1, tft.String())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cache.Play(tft2, alld, nil); err != nil {
		t.Fatal(err)
	}
	if cache.Plays() != 1 {
		t.Fatal("equal move tables should share one cache entry")
	}
}

func TestPairCacheMatchesEngine(t *testing.T) {
	eng := newEngine(t, 0)
	cache, err := NewPairCache(eng)
	if err != nil {
		t.Fatal(err)
	}
	all := strategy.AllMemoryOne()
	for _, a := range all {
		for _, b := range all {
			want, err := eng.Play(a, b, nil)
			if err != nil {
				t.Fatal(err)
			}
			got, err := cache.Play(a, b, nil)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("%s vs %s: cache %+v, engine %+v", a, b, got, want)
			}
		}
	}
	if cache.Hits() == 0 {
		t.Fatal("mirrored storage should produce hits during an all-pairs sweep")
	}
}

func TestPairCacheBypassesNoise(t *testing.T) {
	cache, err := NewPairCache(newEngine(t, 0.1))
	if err != nil {
		t.Fatal(err)
	}
	tft, alld := strategy.TFT(1), strategy.AllD(1)
	if cache.Cacheable(tft, alld) {
		t.Fatal("noisy games must not be cacheable")
	}
	src := rng.New(1)
	for i := 0; i < 3; i++ {
		if _, err := cache.Play(tft, alld, src); err != nil {
			t.Fatal(err)
		}
	}
	if cache.Plays() != 3 || cache.Hits() != 0 || cache.Len() != 0 {
		t.Fatalf("noisy bypass stored state: plays=%d hits=%d len=%d", cache.Plays(), cache.Hits(), cache.Len())
	}
}

func TestPairCacheBypassesMixedStrategies(t *testing.T) {
	cache, err := NewPairCache(newEngine(t, 0))
	if err != nil {
		t.Fatal(err)
	}
	gtft, err := strategy.MixedFromProbs(1, []float64{1, 0.3, 1, 0.3})
	if err != nil {
		t.Fatal(err)
	}
	if cache.Cacheable(gtft, strategy.TFT(1)) || cache.Cacheable(strategy.TFT(1), gtft) {
		t.Fatal("mixed strategies must not be cacheable")
	}
	src := rng.New(2)
	for i := 0; i < 2; i++ {
		if _, err := cache.Play(gtft, strategy.TFT(1), src); err != nil {
			t.Fatal(err)
		}
	}
	if cache.Len() != 0 || cache.Plays() != 2 {
		t.Fatalf("mixed bypass stored state: plays=%d len=%d", cache.Plays(), cache.Len())
	}
}

func TestPairCacheConcurrentUse(t *testing.T) {
	cache, err := NewPairCache(newEngine(t, 0))
	if err != nil {
		t.Fatal(err)
	}
	all := strategy.AllMemoryOne()
	var wg sync.WaitGroup
	results := make([][]game.Result, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for _, a := range all {
				for _, b := range all {
					res, err := cache.Play(a, b, nil)
					if err != nil {
						t.Error(err)
						return
					}
					results[w] = append(results[w], res)
				}
			}
		}(w)
	}
	wg.Wait()
	for w := 1; w < 8; w++ {
		for i := range results[0] {
			if results[w][i] != results[0][i] {
				t.Fatalf("worker %d observed a different result at game %d", w, i)
			}
		}
	}
	if cache.Len() != 16*16 {
		t.Fatalf("cache holds %d pairs, want 256", cache.Len())
	}
}

func TestNewPairCacheNilEngine(t *testing.T) {
	if _, err := NewPairCache(nil); err == nil {
		t.Fatal("accepted a nil engine")
	}
}

func TestCacheUsable(t *testing.T) {
	pure := []strategy.Strategy{strategy.TFT(1), strategy.WSLS(1)}
	if !CacheUsable(newEngine(t, 0), pure) {
		t.Fatal("noiseless deterministic table should be cache-usable")
	}
	if CacheUsable(newEngine(t, 0.05), pure) {
		t.Fatal("noisy engine must not be cache-usable")
	}
	if CacheUsable(nil, pure) {
		t.Fatal("nil engine must not be cache-usable")
	}
	mixed := append([]strategy.Strategy{strategy.NewMixed(1)}, pure...)
	if CacheUsable(newEngine(t, 0), mixed) {
		t.Fatal("mixed strategies must not be cache-usable")
	}
	if CacheUsable(newEngine(t, 0), []strategy.Strategy{nil}) {
		t.Fatal("nil strategies must not be cache-usable")
	}
}

// bruteFitness computes SSet i's all-pairs fitness directly with the engine.
func bruteFitness(t *testing.T, eng *game.Engine, table []strategy.Strategy, i int) float64 {
	t.Helper()
	total := 0.0
	for j := range table {
		if j == i {
			continue
		}
		res, err := eng.Play(table[i], table[j], nil)
		if err != nil {
			t.Fatal(err)
		}
		total += res.FitnessA
	}
	return total
}

func testTable(n int, seed uint64) []strategy.Strategy {
	src := rng.New(seed)
	table := make([]strategy.Strategy, n)
	for i := range table {
		table[i] = strategy.RandomPure(1, src)
	}
	return table
}

func TestIncrementalMatrixMatchesBruteForce(t *testing.T) {
	eng := newEngine(t, 0)
	cache, err := NewPairCache(eng)
	if err != nil {
		t.Fatal(err)
	}
	table := testTable(12, 5)
	m, err := NewIncrementalMatrix(cache, nil, table, 0, len(table))
	if err != nil {
		t.Fatal(err)
	}
	for i := range table {
		got, err := m.Fitness(i)
		if err != nil {
			t.Fatal(err)
		}
		if want := bruteFitness(t, eng, table, i); got != want {
			t.Fatalf("row %d: matrix %v, brute force %v", i, got, want)
		}
	}
}

func TestIncrementalMatrixUpdateStaysExact(t *testing.T) {
	eng := newEngine(t, 0)
	cache, err := NewPairCache(eng)
	if err != nil {
		t.Fatal(err)
	}
	table := testTable(10, 9)
	m, err := NewIncrementalMatrix(cache, nil, table, 0, len(table))
	if err != nil {
		t.Fatal(err)
	}
	// Materialise every row, then churn the table through a sequence of
	// strategy changes and require the delta-updated sums to equal a fresh
	// brute-force evaluation after every change.
	for i := range table {
		if _, err := m.Fitness(i); err != nil {
			t.Fatal(err)
		}
	}
	src := rng.New(77)
	for step := 0; step < 25; step++ {
		idx := src.Intn(len(table))
		var s strategy.Strategy
		if src.Coin() {
			s = strategy.RandomPure(1, src) // mutation
		} else {
			s = table[src.Intn(len(table))].Clone() // adoption
		}
		table[idx] = s
		if err := m.Update(idx, s); err != nil {
			t.Fatal(err)
		}
		for i := range table {
			got, err := m.Fitness(i)
			if err != nil {
				t.Fatal(err)
			}
			if want := bruteFitness(t, eng, table, i); got != want {
				t.Fatalf("step %d: row %d: matrix %v, brute force %v", step, i, got, want)
			}
		}
	}
}

func TestIncrementalMatrixLazyRows(t *testing.T) {
	cache, err := NewPairCache(newEngine(t, 0))
	if err != nil {
		t.Fatal(err)
	}
	table := []strategy.Strategy{strategy.TFT(1), strategy.AllD(1), strategy.WSLS(1), strategy.AllC(1)}
	m, err := NewIncrementalMatrix(cache, nil, table, 0, len(table))
	if err != nil {
		t.Fatal(err)
	}
	if cache.Plays() != 0 {
		t.Fatal("matrix construction should not play games")
	}
	if _, err := m.Fitness(2); err != nil {
		t.Fatal(err)
	}
	plays := cache.Plays()
	if plays == 0 || plays > 3 {
		t.Fatalf("one row of 3 opponents played %d games", plays)
	}
	// An update before other rows are built must not force them.
	if err := m.Update(1, strategy.TFT(1)); err != nil {
		t.Fatal(err)
	}
	if cache.Plays() > plays+1 {
		t.Fatalf("update of one column played %d extra games", cache.Plays()-plays)
	}
}

func TestIncrementalMatrixBlockRange(t *testing.T) {
	eng := newEngine(t, 0)
	cache, err := NewPairCache(eng)
	if err != nil {
		t.Fatal(err)
	}
	table := testTable(9, 13)
	lo, hi := 3, 7
	m, err := NewIncrementalMatrix(cache, nil, table, lo, hi)
	if err != nil {
		t.Fatal(err)
	}
	if gotLo, gotHi := m.Rows(); gotLo != lo || gotHi != hi {
		t.Fatalf("Rows() = [%d,%d)", gotLo, gotHi)
	}
	for i := lo; i < hi; i++ {
		got, err := m.Fitness(i)
		if err != nil {
			t.Fatal(err)
		}
		if want := bruteFitness(t, eng, table, i); got != want {
			t.Fatalf("row %d: matrix %v, brute force %v", i, got, want)
		}
	}
	if _, err := m.Fitness(0); err == nil {
		t.Fatal("accepted a row outside the materialised block")
	}
	// A change outside the block must still delta-update local columns.
	table[0] = strategy.AllD(1)
	if err := m.Update(0, table[0]); err != nil {
		t.Fatal(err)
	}
	for i := lo; i < hi; i++ {
		got, err := m.Fitness(i)
		if err != nil {
			t.Fatal(err)
		}
		if want := bruteFitness(t, eng, table, i); got != want {
			t.Fatalf("after remote update, row %d: matrix %v, brute force %v", i, got, want)
		}
	}
}

func TestIncrementalMatrixValidation(t *testing.T) {
	cache, err := NewPairCache(newEngine(t, 0))
	if err != nil {
		t.Fatal(err)
	}
	table := testTable(4, 1)
	if _, err := NewIncrementalMatrix(nil, nil, table, 0, 4); err == nil {
		t.Fatal("accepted a nil cache")
	}
	if _, err := NewIncrementalMatrix(cache, nil, table, -1, 4); err == nil {
		t.Fatal("accepted a negative lo")
	}
	if _, err := NewIncrementalMatrix(cache, nil, table, 2, 1); err == nil {
		t.Fatal("accepted hi < lo")
	}
	if _, err := NewIncrementalMatrix(cache, nil, table, 0, 5); err == nil {
		t.Fatal("accepted hi beyond the table")
	}
	if _, err := NewIncrementalMatrix(cache, nil, []strategy.Strategy{nil}, 0, 1); err == nil {
		t.Fatal("accepted a nil strategy")
	}
	m, err := NewIncrementalMatrix(cache, nil, table, 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Update(9, strategy.TFT(1)); err == nil {
		t.Fatal("accepted an out-of-range update index")
	}
	if err := m.Update(0, nil); err == nil {
		t.Fatal("accepted a nil strategy update")
	}
	if m.Len() != 4 {
		t.Fatalf("Len() = %d", m.Len())
	}
}

// TestIncrementalMatrixGraphRestricted covers the degree-indexed graph
// rows: fitness sums only graph neighbors, Update delta-updates only
// adjacent built rows, and both stay equal to a brute-force neighbor sum
// through a churn of strategy changes.
func TestIncrementalMatrixGraphRestricted(t *testing.T) {
	eng := newEngine(t, 0)
	cache, err := NewPairCache(eng)
	if err != nil {
		t.Fatal(err)
	}
	table := testTable(12, 5)
	spec, err := topology.Parse("ring:4")
	if err != nil {
		t.Fatal(err)
	}
	g, err := spec.Build(len(table), 3)
	if err != nil {
		t.Fatal(err)
	}
	bruteNeighbor := func(i int) float64 {
		total := 0.0
		for _, j := range topology.Neighbors(g, i) {
			res, err := eng.Play(table[i], table[j], nil)
			if err != nil {
				t.Fatal(err)
			}
			total += res.FitnessA
		}
		return total
	}
	m, err := NewIncrementalMatrix(cache, g, table, 0, len(table))
	if err != nil {
		t.Fatal(err)
	}
	for i := range table {
		got, err := m.Fitness(i)
		if err != nil {
			t.Fatal(err)
		}
		if want := bruteNeighbor(i); got != want {
			t.Fatalf("row %d: graph matrix %v, brute force %v", i, got, want)
		}
	}
	src := rng.New(77)
	for step := 0; step < 30; step++ {
		idx := src.Intn(len(table))
		table[idx] = strategy.RandomPure(1, src)
		if err := m.Update(idx, table[idx]); err != nil {
			t.Fatal(err)
		}
		for i := range table {
			got, err := m.Fitness(i)
			if err != nil {
				t.Fatal(err)
			}
			if want := bruteNeighbor(i); got != want {
				t.Fatalf("step %d row %d: graph matrix %v, brute force %v", step, i, got, want)
			}
		}
	}
	// The complete graph must collapse to the dense well-mixed path and
	// agree with the all-pairs brute force.
	wm, err := (topology.Spec{}).Build(len(table), 0)
	if err != nil {
		t.Fatal(err)
	}
	dense, err := NewIncrementalMatrix(cache, wm, table, 0, len(table))
	if err != nil {
		t.Fatal(err)
	}
	for i := range table {
		got, err := dense.Fitness(i)
		if err != nil {
			t.Fatal(err)
		}
		if want := bruteFitness(t, eng, table, i); got != want {
			t.Fatalf("complete-graph row %d: %v, want %v", i, got, want)
		}
	}
}
