// Package fitness is the shared incremental-fitness subsystem used by both
// simulation engines (the serial engine in internal/population and the
// distributed engine in internal/parallel).
//
// The observation behind the package is the one that makes the paper's
// all-pairs workload tractable at scale: a noiseless Iterated Prisoner's
// Dilemma game between two deterministic strategies is a pure function of
// the strategy pair.  Replaying it every generation — as the literal
// implementation of the paper's pseudo code does — performs O(S²) games per
// generation even though at most one or two of the S Strategy Sets change
// strategy per generation.  The package provides two layers on top of the
// game kernel:
//
//   - PairCache memoizes game.Result per canonical strategy-pair encoding,
//     so each distinct pair is played at most once for the lifetime of the
//     cache.  Storing a result also stores the mirrored result for the
//     reversed pair, since the opponent's fitness is usually requested next.
//   - IncrementalMatrix maintains the S×S fitness structure across
//     generations: per-SSet fitness row sums are built lazily through the
//     cache and, when the Nature Agent changes the strategy of one SSet,
//     only that SSet's row is invalidated while every other row receives an
//     O(1) delta update to its sum (subtract the stale pair payoff, add the
//     new one).  Per-generation cost therefore drops from O(S²) games to
//     O(D²) distinct-pair kernels amortised over the run plus O(S) updates
//     per adoption/mutation event, where D is the number of distinct
//     strategies present.
//
// # Cache validity conditions
//
// A pair result may be memoized if and only if the game is a pure function
// of the strategy pair:
//
//   - the engine is noiseless (game.Engine.Noise() == 0), and
//   - both strategies are deterministic (pure, not mixed).
//
// When either condition fails, PairCache.Play transparently bypasses the
// cache and plays the game with the supplied randomness source, so callers
// need no mode checks of their own.  The engines additionally fall back to
// their full evaluation paths for noisy or mixed populations so that the
// random-number streams — and therefore the trajectories — are bit-for-bit
// identical to EvalFull.
//
// The delta update of IncrementalMatrix subtracts and re-adds float64 pair
// payoffs.  With the standard Prisoner's Dilemma payoff matrix (and any
// integer-valued matrix) every fitness sum is an exactly-representable
// integer, so the delta-updated sums are bit-identical to freshly computed
// ones; this is what lets the engines guarantee EvalFull, EvalCached and
// EvalIncremental produce identical dynamics for identical seeds.
package fitness

import "fmt"

// EvalMode selects how an engine evaluates Strategy-Set fitness.
type EvalMode int

const (
	// EvalFull replays every game of every evaluation, exactly as the
	// paper's implementation does.  It is the reference mode and the one the
	// scaling studies measure, since the volume of game play is the point.
	EvalFull EvalMode = iota
	// EvalCached memoizes per-pair game results in a PairCache that persists
	// across generations; each distinct strategy pair is played at most once
	// for the lifetime of a run.
	EvalCached
	// EvalIncremental additionally maintains per-SSet fitness sums in an
	// IncrementalMatrix, so generations without strategy changes replay
	// nothing and a strategy change costs one row rebuild plus O(S) delta
	// updates.
	EvalIncremental
)

// String implements fmt.Stringer.
func (m EvalMode) String() string {
	switch m {
	case EvalFull:
		return "full"
	case EvalCached:
		return "cached"
	case EvalIncremental:
		return "incremental"
	default:
		return fmt.Sprintf("EvalMode(%d)", int(m))
	}
}

// Valid reports whether m is one of the defined evaluation modes.
func (m EvalMode) Valid() bool {
	return m >= EvalFull && m <= EvalIncremental
}

// ParseEvalMode maps the names accepted by command-line flags ("full",
// "cached", "incremental") to an EvalMode.
func ParseEvalMode(s string) (EvalMode, error) {
	switch s {
	case "full":
		return EvalFull, nil
	case "cached":
		return EvalCached, nil
	case "incremental":
		return EvalIncremental, nil
	default:
		return EvalFull, fmt.Errorf("fitness: unknown eval mode %q (want full, cached or incremental)", s)
	}
}
