package artifact

// The collector derives per-replicate statistics from the checkpoint
// envelopes the runner writes, then aggregates them per cell.  Every number
// it produces is a deterministic function of the envelope — the final
// strategy table and the Nature Agent's event counters — so rendering from
// re-generated envelopes reproduces the committed tables byte for byte.

import (
	"fmt"
	"hash/fnv"

	"evogame/internal/checkpoint"
	"evogame/internal/stats"
	"evogame/internal/strategy"
)

// RunStats is the deterministic face of one (cell, replicate) run, read
// from its checkpoint envelope.
type RunStats struct {
	Replicate int
	Seed      uint64
	// Cooperation is the mean per-state cooperation probability of the
	// final strategy table (1 means every strategy cooperates in every
	// state).
	Cooperation float64
	// WSLSFraction is the fraction of SSets whose final strategy is
	// exactly Win-Stay Lose-Shift at the run's memory depth.
	WSLSFraction float64
	// Distinct is the number of distinct strategies in the final table.
	Distinct int
	// PCEvents, Adoptions and Mutations are the Nature Agent's cumulative
	// event counters over the whole run.
	PCEvents  int
	Adoptions int
	Mutations int
	// GamesPlayed is the serial engine's cumulative game count; the
	// distributed engine does not aggregate it into checkpoints, so
	// parallel runs report 0 and the renderer omits the column.
	GamesPlayed int64
	// StateHash is an fnv-1a hash of the canonical encoding of the final
	// strategy table; runs that end in the identical population state share
	// it.
	StateHash string
}

// CellStats aggregates every replicate of one cell.
type CellStats struct {
	Key  string
	Runs []RunStats
	// Cooperation and WSLSFraction aggregate the per-replicate values.
	Cooperation  stats.Welford
	WSLSFraction stats.Welford
	// SharedHash is the replicates' common StateHash, or "" when the
	// replicates diverge (they should: each runs a different seed).
	SharedHash string
}

// CollectCell reads every replicate envelope of one cell from the artifact
// tree rooted at dir.  A missing or stale envelope is an error: callers run
// Execute first (verify deliberately does not, so it fails loudly when the
// committed envelopes and grids drift apart).
func CollectCell(dir string, quick bool, artifactName string, cell Cell) (CellStats, error) {
	cs := CellStats{Key: cell.Key}
	for k := 0; k < cell.Replicates; k++ {
		path := EnvelopePath(dir, quick, artifactName, cell, k)
		if st := classify(path, Label(artifactName, cell, k), cell, k); st != StateFresh {
			return cs, fmt.Errorf("artifact: %s/%s replicate %d is %s (run `paperkit run` first): %s",
				artifactName, cell.Key, k, st, path)
		}
		snap, err := checkpoint.Load(path)
		if err != nil {
			return cs, fmt.Errorf("artifact: %s/%s replicate %d: %w", artifactName, cell.Key, k, err)
		}
		rs, err := snapshotStats(snap, k)
		if err != nil {
			return cs, fmt.Errorf("artifact: %s/%s replicate %d: %w", artifactName, cell.Key, k, err)
		}
		cs.Runs = append(cs.Runs, rs)
		cs.Cooperation.Add(rs.Cooperation)
		cs.WSLSFraction.Add(rs.WSLSFraction)
	}
	cs.SharedHash = sharedHash(cs.Runs)
	return cs, nil
}

// snapshotStats derives one replicate's statistics from its envelope.
func snapshotStats(snap checkpoint.Snapshot, replicate int) (RunStats, error) {
	rs := RunStats{
		Replicate:   replicate,
		Seed:        snap.Seed,
		PCEvents:    snap.PCEvents,
		Adoptions:   snap.Adoptions,
		Mutations:   snap.Mutations,
		GamesPlayed: snap.GamesPlayed,
	}
	if len(snap.Strategies) == 0 {
		return rs, fmt.Errorf("envelope has an empty strategy table")
	}
	wsls := strategy.WSLS(snap.MemorySteps)
	h := fnv.New64a()
	var coop float64
	wslsCount, distinct := 0, 0
	for i, s := range snap.Strategies {
		p, ok := s.(*strategy.Pure)
		if !ok {
			return rs, fmt.Errorf("strategy %d is %T, want *strategy.Pure", i, s)
		}
		coop += 1 - float64(p.DefectionCount())/float64(p.NumStates())
		if p.Equal(wsls) {
			wslsCount++
		}
		novel := true
		for _, prev := range snap.Strategies[:i] {
			if p.Equal(prev) {
				novel = false
				break
			}
		}
		if novel {
			distinct++
		}
		enc, err := strategy.Encode(p)
		if err != nil {
			return rs, fmt.Errorf("strategy %d: %w", i, err)
		}
		h.Write(enc)
	}
	n := float64(len(snap.Strategies))
	rs.Cooperation = coop / n
	rs.WSLSFraction = float64(wslsCount) / n
	rs.Distinct = distinct
	rs.StateHash = fmt.Sprintf("%016x", h.Sum64())
	return rs, nil
}

// sharedHash returns the runs' common StateHash, or "" when any differ.
func sharedHash(runs []RunStats) string {
	if len(runs) == 0 {
		return ""
	}
	for _, r := range runs[1:] {
		if r.StateHash != runs[0].StateHash {
			return ""
		}
	}
	return runs[0].StateHash
}
