// Package artifact is the reproducible paper-artifact pipeline: a registry
// describing every figure-backing experiment of the paper (the Figure 5
// memory sweep, the Figure 6 scaling study, the Figure 2 WSLS-emergence
// trajectory and the Figure 3 optimization ablation) as deterministic
// (engine config × sweep axis × replicates) grids, a runner that executes
// the grids through the ensemble tier with one resumable (v4) checkpoint
// envelope per (cell, replicate) run, an incremental collector that derives
// per-cell statistics from whatever envelopes exist on disk, and a renderer
// that turns them into Markdown and CSV tables.
//
// Everything the tables contain is a deterministic function of the run
// seeds — final-table cooperativity, WSLS abundance, distinct-strategy
// counts, the Nature Agent's event counters, game counts and a strategy-
// table hash — never wallclock, so regenerating any run reproduces its
// table rows byte for byte.  That is the property the committed quick-grid
// tables pin in CI: `paperkit verify -quick` re-renders from the committed
// envelopes and fails on any diff, and deleting an envelope then re-running
// `paperkit run -quick && paperkit tables -quick` must restore identical
// bytes.  Each artifact carries a quick grid (small populations, committed
// as golden files) and a full grid (closer to the paper's scales).
package artifact

import (
	"fmt"

	"evogame/internal/game"
	"evogame/internal/parallel"
	"evogame/internal/population"
)

// baseSeed is the base seed of every grid cell; replicate k of a cell runs
// with ensemble.ReplicateSeed(baseSeed, k).
const baseSeed = 2013

// Cell is one grid point of an artifact: a fully resolved engine
// configuration plus a replicate count, executed through the ensemble tier.
// Exactly one of Serial and Parallel is non-nil and carries the per-run
// configuration (its Seed is the cell's base seed; checkpoint fields must
// be empty — the runner owns the envelope destinations).
type Cell struct {
	// Key names the cell inside its artifact ("mem=3", "s=24_ranks=3");
	// it doubles as the envelope filename stem, so it only uses
	// [a-z0-9=_-] characters.
	Key string
	// Replicates is the number of independent runs of this cell.
	Replicates int
	// Generations is the run length (also recorded per envelope, which is
	// how the collector detects a stale run after a grid change).
	Generations int
	// Serial, when non-nil, runs the cell on the serial reference engine.
	Serial *population.Config
	// Parallel, when non-nil, runs the cell on the distributed engine.
	Parallel *parallel.Config
}

// Artifact describes one regenerable paper artifact: a named sweep with a
// quick grid (committed golden tables) and a full grid (closer to the
// paper's scale).
type Artifact struct {
	// Name is the registry key and the table filename stem.
	Name string
	// Title is a short human description.
	Title string
	// Figure names the paper figure or table the artifact backs.
	Figure string
	// Description explains the sweep axis and the claim the table shows.
	Description string
	// Claim is the one-line determinism statement rendered under the table.
	Claim string
	// Grid returns the artifact's cells; quick selects the small committed
	// grid, otherwise the full one.  Grids are rebuilt on every call so
	// callers may mutate the returned configs freely.
	Grid func(quick bool) []Cell
}

// registry holds the built-in artifacts in rendering order.
var registry = []Artifact{memorySweep, scalingStudy, wslsEmergence, figure3Ablation}

// Names returns the registered artifact names in rendering order.
func Names() []string {
	out := make([]string, len(registry))
	for i, a := range registry {
		out[i] = a.Name
	}
	return out
}

// Lookup returns the registered artifact with the given name.
func Lookup(name string) (Artifact, error) {
	for _, a := range registry {
		if a.Name == name {
			return a, nil
		}
	}
	return Artifact{}, fmt.Errorf("artifact: unknown artifact %q (have %v)", name, Names())
}

// memorySweep is the Figure 5 workload: the identical distributed run at
// every memory depth.  The paper's figure reports wallclock, which is not
// reproducible; the committed table pins the deterministic face of the same
// runs — event trace, cooperativity and the final strategy table — while
// examples/memory_sweep times the identical grid.
var memorySweep = Artifact{
	Name:   "memory_sweep",
	Title:  "Memory sweep over strategy depth 1-6",
	Figure: "Figure 5",
	Description: "The identical distributed workload (optimization level 3) run at every " +
		"strategy memory depth 1..6; the paper's figure times these runs, this table pins " +
		"their deterministic outcomes.",
	Claim: "Every row regenerates bit-identically from its seeds; the event trace is " +
		"independent of memory depth only where the dynamics coincide, so the rows below " +
		"are the trajectory fingerprint of the sweep.",
	Grid: func(quick bool) []Cell {
		ssets, agents, ranks, rounds, gens, reps := 48, 4, 5, 200, 10, 3
		if quick {
			ssets, agents, ranks, rounds, gens, reps = 12, 2, 3, 40, 8, 2
		}
		var cells []Cell
		for mem := 1; mem <= game.MaxMemorySteps; mem++ {
			cells = append(cells, Cell{
				Key:         fmt.Sprintf("mem=%d", mem),
				Replicates:  reps,
				Generations: gens,
				Parallel: &parallel.Config{
					Ranks: ranks, NumSSets: ssets, AgentsPerSSet: agents,
					MemorySteps: mem, Rounds: rounds,
					PCRate: 0.1, MutationRate: 0.05,
					Generations: gens, Seed: baseSeed,
					OptLevel: parallel.OptFusedFitness,
				},
			})
		}
		return cells
	},
}

// scalingStudy is the real-rank slice of the Figure 6 scaling study: the
// same population spread over an increasing number of goroutine ranks.  The
// deterministic claim the table pins is rank-count independence — every
// rank count of one population size ends in the identical strategy table.
var scalingStudy = Artifact{
	Name:   "scaling_study",
	Title:  "Strong-scaling grid over population size and rank count",
	Figure: "Figure 6b / Figure 4",
	Description: "Each population size is run at several rank counts (optimization level 3, " +
		"full evaluation, the workload the paper's strong-scaling study times).",
	Claim: "Rows with the same population size share one state_hash: the distributed " +
		"decomposition never changes the dynamics, only who computes them.",
	Grid: func(quick bool) []Cell {
		sizes, rankCounts := []int{64, 128}, []int{2, 4, 8}
		agents, rounds, gens, reps := 4, 200, 10, 3
		if quick {
			sizes, rankCounts = []int{12, 24}, []int{2, 3}
			agents, rounds, gens, reps = 2, 40, 8, 2
		}
		var cells []Cell
		for _, ssets := range sizes {
			for _, ranks := range rankCounts {
				cells = append(cells, Cell{
					Key:         fmt.Sprintf("s=%d_ranks=%d", ssets, ranks),
					Replicates:  reps,
					Generations: gens,
					Parallel: &parallel.Config{
						Ranks: ranks + 1, NumSSets: ssets, AgentsPerSSet: agents,
						MemorySteps: 1, Rounds: rounds,
						PCRate: 0.1, MutationRate: 0.05,
						Generations: gens, Seed: baseSeed,
						OptLevel: parallel.OptFusedFitness,
					},
				})
			}
		}
		return cells
	},
}

// wslsEmergence is the Figure 2 validation trajectory: the same noisy
// memory-one population checkpointed at increasing generation counts, so
// the table reads as a trajectory of WSLS abundance over evolutionary time,
// averaged over replicates.
var wslsEmergence = Artifact{
	Name:   "wsls_emergence",
	Title:  "Win-Stay Lose-Shift emergence trajectory",
	Figure: "Figure 2",
	Description: "A noisy memory-one population (execution errors 0.05, one learning event " +
		"per generation) evolved from random strategies; each row is the same sweep stopped " +
		"at a longer horizon, so reading down the rows replays the emergence trajectory.",
	Claim: "WSLS abundance and cooperativity rise with the horizon as cooperative " +
		"strategies take over (the paper reaches 85% WSLS at 10^7 generations).",
	Grid: func(quick bool) []Cell {
		ssets, agents, rounds, reps := 128, 4, 200, 3
		horizons := []int{5000, 20000, 60000}
		if quick {
			ssets, agents, rounds, reps = 24, 2, 50, 3
			horizons = []int{250, 500, 1000}
		}
		var cells []Cell
		for _, gens := range horizons {
			cells = append(cells, Cell{
				Key:         fmt.Sprintf("gens=%d", gens),
				Replicates:  reps,
				Generations: gens,
				Serial: &population.Config{
					NumSSets: ssets, AgentsPerSSet: agents,
					MemorySteps: 1, Rounds: rounds, Noise: 0.05,
					PCRate: 1, MutationRate: 0.05, Beta: 1,
					Seed: baseSeed,
				},
			})
		}
		return cells
	},
}

// figure3Ablation is the optimization ablation: the identical distributed
// run at every Figure 3 optimization level, plus the kernel-mode ablation
// on top of the fully optimized level.  The deterministic claim is the
// strongest in the registry: every cell ends in the identical state.
var figure3Ablation = Artifact{
	Name:   "figure3_ablation",
	Title:  "Optimization-level and kernel ablation",
	Figure: "Figure 3",
	Description: "The identical distributed workload at optimization levels 0..3, then at " +
		"level 3 with the game kernel forced to full replay and to the bit-sliced batch " +
		"kernel; the paper's figure times the levels, this table pins their equivalence.",
	Claim: "All cells share one state_hash and one event trace: every optimization level " +
		"and kernel mode is bit-identical per seed, so the timed ablation compares equal " +
		"work.",
	Grid: func(quick bool) []Cell {
		ssets, agents, ranks, rounds, gens, reps := 64, 4, 5, 200, 20, 3
		if quick {
			ssets, agents, ranks, rounds, gens, reps = 12, 2, 3, 40, 8, 2
		}
		base := parallel.Config{
			Ranks: ranks, NumSSets: ssets, AgentsPerSSet: agents,
			MemorySteps: 1, Rounds: rounds,
			PCRate: 0.1, MutationRate: 0.05,
			Generations: gens, Seed: baseSeed,
		}
		var cells []Cell
		for lvl := parallel.OptOriginal; lvl <= parallel.OptFusedFitness; lvl++ {
			cfg := base
			cfg.OptLevel = lvl
			cells = append(cells, Cell{
				Key:         fmt.Sprintf("opt=%d", int(lvl)),
				Replicates:  reps,
				Generations: gens,
				Parallel:    &cfg,
			})
		}
		for _, kernel := range []game.KernelMode{game.KernelFullReplay, game.KernelBatch} {
			cfg := base
			cfg.OptLevel = parallel.OptFusedFitness
			cfg.Kernel = kernel
			cells = append(cells, Cell{
				Key:         fmt.Sprintf("opt=3_kernel=%s", kernel),
				Replicates:  reps,
				Generations: gens,
				Parallel:    &cfg,
			})
		}
		return cells
	},
}
