package artifact

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"evogame/internal/checkpoint"
	"evogame/internal/population"
)

// testArtifact returns a tiny single-cell serial artifact for runner tests.
func testArtifact(gens int) Artifact {
	return Artifact{
		Name:   "unit_test",
		Title:  "unit-test artifact",
		Figure: "none",
		Grid: func(bool) []Cell {
			return []Cell{{
				Key:         "only",
				Replicates:  2,
				Generations: gens,
				Serial: &population.Config{
					NumSSets: 6, AgentsPerSSet: 2,
					MemorySteps: 1, Rounds: 16,
					PCRate: 0.5, MutationRate: 0.1,
					Seed: baseSeed,
				},
			}}
		},
	}
}

// withTestRegistry swaps the registry for the test's own artifacts.
func withTestRegistry(t *testing.T, arts ...Artifact) {
	t.Helper()
	saved := registry
	registry = arts
	t.Cleanup(func() { registry = saved })
}

func TestRegistryGridsAreWellFormed(t *testing.T) {
	names := map[string]bool{}
	for _, a := range registry {
		if names[a.Name] {
			t.Errorf("duplicate artifact name %q", a.Name)
		}
		names[a.Name] = true
		for _, quick := range []bool{true, false} {
			keys := map[string]bool{}
			for _, cell := range a.Grid(quick) {
				if keys[cell.Key] {
					t.Errorf("%s: duplicate cell key %q", a.Name, cell.Key)
				}
				keys[cell.Key] = true
				if cell.Replicates < 1 || cell.Generations < 1 {
					t.Errorf("%s/%s: bad replicates/generations %d/%d",
						a.Name, cell.Key, cell.Replicates, cell.Generations)
				}
				if (cell.Serial == nil) == (cell.Parallel == nil) {
					t.Errorf("%s/%s: exactly one engine config must be set", a.Name, cell.Key)
				}
				if strings.ContainsAny(cell.Key, "/\\ ") {
					t.Errorf("%s/%s: key is not filename-safe", a.Name, cell.Key)
				}
			}
		}
	}
	for _, want := range []string{"memory_sweep", "scaling_study", "wsls_emergence", "figure3_ablation"} {
		if _, err := Lookup(want); err != nil {
			t.Errorf("Lookup(%q): %v", want, err)
		}
	}
	if _, err := Lookup("no_such_artifact"); err == nil {
		t.Error("Lookup of unknown artifact succeeded")
	}
}

func TestExecuteIsIncrementalAndDeterministic(t *testing.T) {
	withTestRegistry(t, testArtifact(4))
	dir := t.TempDir()
	ctx := context.Background()

	reports, err := Execute(ctx, dir, ExecuteOptions{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(reports[0].Executed); got != 2 {
		t.Fatalf("first Execute ran %d replicates, want 2", got)
	}

	cell := registry[0].Grid(true)[0]
	path0 := EnvelopePath(dir, true, "unit_test", cell, 0)
	path1 := EnvelopePath(dir, true, "unit_test", cell, 1)
	want0, err := os.ReadFile(path0)
	if err != nil {
		t.Fatal(err)
	}

	// A second Execute must be a no-op.
	reports, err = Execute(ctx, dir, ExecuteOptions{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(reports[0].Executed) != 0 || len(reports[0].Skipped) != 2 {
		t.Fatalf("second Execute = %+v, want all skipped", reports[0])
	}

	// Deleting one envelope re-runs exactly that replicate and regenerates
	// identical bytes; the surviving envelope is untouched.
	want1, err := os.ReadFile(path1)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(path0); err != nil {
		t.Fatal(err)
	}
	reports, err = Execute(ctx, dir, ExecuteOptions{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(reports[0].Executed) != 1 || reports[0].Executed[0] != 0 {
		t.Fatalf("after delete Execute = %+v, want replicate 0 only", reports[0])
	}
	got0, err := os.ReadFile(path0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got0, want0) {
		t.Error("regenerated envelope differs from the original bytes")
	}
	got1, err := os.ReadFile(path1)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got1, want1) {
		t.Error("untouched envelope changed during partial re-run")
	}
}

func TestStalenessDetection(t *testing.T) {
	withTestRegistry(t, testArtifact(4))
	dir := t.TempDir()
	if _, err := Execute(context.Background(), dir, ExecuteOptions{Quick: true}); err != nil {
		t.Fatal(err)
	}
	plan, err := Plan(dir, true, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range plan {
		if r.State != StateFresh {
			t.Fatalf("%s#r%d = %s after Execute, want fresh", r.Cell, r.Replicate, r.State)
		}
	}

	// A grid change (different generation count ⇒ different fingerprint)
	// makes every envelope stale.
	withTestRegistry(t, testArtifact(5))
	plan, err = Plan(dir, true, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range plan {
		if r.State != StateStale {
			t.Errorf("%s#r%d = %s after grid change, want stale", r.Cell, r.Replicate, r.State)
		}
	}

	// Corrupt envelope bytes are stale, not fatal.
	withTestRegistry(t, testArtifact(4))
	cell := registry[0].Grid(true)[0]
	path := EnvelopePath(dir, true, "unit_test", cell, 0)
	if err := os.WriteFile(path, []byte("not a checkpoint"), 0o644); err != nil {
		t.Fatal(err)
	}
	plan, err = Plan(dir, true, nil)
	if err != nil {
		t.Fatal(err)
	}
	if plan[0].State != StateStale {
		t.Errorf("corrupt envelope = %s, want stale", plan[0].State)
	}
	if plan[1].State != StateFresh {
		t.Errorf("sibling envelope = %s, want fresh", plan[1].State)
	}
}

func TestTablesRoundTripAndVerify(t *testing.T) {
	withTestRegistry(t, testArtifact(4))
	dir := t.TempDir()
	ctx := context.Background()
	if _, err := Execute(ctx, dir, ExecuteOptions{Quick: true}); err != nil {
		t.Fatal(err)
	}

	// Verify before tables exist: every file is reported missing.
	problems, err := VerifyTables(dir, true, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(problems) != 3 { // unit_test.md, unit_test.csv, README.md
		t.Fatalf("verify before render: %d problems %v, want 3 missing", len(problems), problems)
	}

	if _, err := WriteTables(dir, true, nil); err != nil {
		t.Fatal(err)
	}
	problems, err = VerifyTables(dir, true, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(problems) != 0 {
		t.Fatalf("verify after render: %v, want clean", problems)
	}

	// Tampering with a committed table is detected.
	path := filepath.Join(TableDir(dir, true), "unit_test.md")
	if err := os.WriteFile(path, []byte("tampered\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	problems, err = VerifyTables(dir, true, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(problems) != 1 || !strings.Contains(problems[0], "unit_test.md") {
		t.Fatalf("verify after tamper: %v, want one diff on unit_test.md", problems)
	}

	// Rendering twice produces identical bytes (no map-order leakage).
	a, err := RenderTables(dir, true, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RenderTables(dir, true, nil)
	if err != nil {
		t.Fatal(err)
	}
	for rel := range a {
		if !bytes.Equal(a[rel], b[rel]) {
			t.Errorf("%s: consecutive renders differ", rel)
		}
	}
}

func TestCollectRejectsMissingEnvelope(t *testing.T) {
	withTestRegistry(t, testArtifact(4))
	cell := registry[0].Grid(true)[0]
	if _, err := CollectCell(t.TempDir(), true, "unit_test", cell); err == nil {
		t.Fatal("CollectCell succeeded with no envelopes on disk")
	}
}

func TestLabelCarriesFingerprint(t *testing.T) {
	a := testArtifact(4)
	cell := a.Grid(true)[0]
	l0 := Label(a.Name, cell, 0)
	if !strings.HasPrefix(l0, "paperkit:unit_test/only#r0 fp=") {
		t.Fatalf("label = %q", l0)
	}
	cell.Generations++
	if Label(a.Name, cell, 0) == l0 {
		t.Error("fingerprint did not change with the generation count")
	}
}

// TestEnvelopeLabelMatchesRunner pins the envelope's recorded label against
// the runner's expectation, the contract the staleness check rests on.
func TestEnvelopeLabelMatchesRunner(t *testing.T) {
	withTestRegistry(t, testArtifact(3))
	dir := t.TempDir()
	if _, err := Execute(context.Background(), dir, ExecuteOptions{Quick: true}); err != nil {
		t.Fatal(err)
	}
	cell := registry[0].Grid(true)[0]
	snap, err := checkpoint.Load(EnvelopePath(dir, true, "unit_test", cell, 1))
	if err != nil {
		t.Fatal(err)
	}
	if want := Label("unit_test", cell, 1); snap.Label != want {
		t.Errorf("envelope label = %q, want %q", snap.Label, want)
	}
}
