package artifact

// The runner executes artifact grids incrementally: every (cell, replicate)
// run owns one checkpoint envelope under <dir>/runs/<grid>/<artifact>/, and
// a run is executed only when its envelope is missing or stale.  Staleness
// is decided by the envelope's free-form label, which records a fingerprint
// of the full run configuration (engine, population shape, rates, kernel,
// optimization level, generations, seed) — so editing a grid invalidates
// exactly the runs it changes — plus the recorded generation count and
// table shape as a sanity net.

import (
	"context"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"sort"

	"evogame/internal/checkpoint"
	"evogame/internal/ensemble"
	"evogame/internal/game"
)

// GridName maps the quick flag onto the on-disk grid directory name.
func GridName(quick bool) string {
	if quick {
		return "quick"
	}
	return "full"
}

// RunDir returns the directory holding the artifact's envelopes inside the
// artifact tree rooted at dir.
func RunDir(dir string, quick bool, artifactName string) string {
	return filepath.Join(dir, "runs", GridName(quick), artifactName)
}

// EnvelopePath returns the checkpoint path of one (cell, replicate) run.
func EnvelopePath(dir string, quick bool, artifactName string, cell Cell, replicate int) string {
	return filepath.Join(RunDir(dir, quick, artifactName), fmt.Sprintf("%s__r%d.ckpt", cell.Key, replicate))
}

// fingerprint hashes every dynamics-relevant field of the cell's engine
// configuration (worker counts are deliberately excluded: results are
// worker-independent and defaults vary by machine).
func fingerprint(cell Cell) string {
	var s string
	switch {
	case cell.Serial != nil:
		c := cell.Serial
		s = fmt.Sprintf("serial|ssets=%d|agents=%d|mem=%d|rounds=%d|noise=%g|pc=%g|mut=%g|beta=%g|seed=%d|eval=%s|kernel=%s|game=%s|payoff=%v|topo=%s|gens=%d",
			c.NumSSets, c.AgentsPerSSet, c.MemorySteps, c.Rounds, c.Noise,
			c.PCRate, c.MutationRate, c.Beta, c.Seed, c.EvalMode, c.Kernel,
			gameName(c.Game), c.Game.Payoff.Table(), c.Topology.String(), cell.Generations)
	case cell.Parallel != nil:
		c := cell.Parallel
		s = fmt.Sprintf("parallel|ranks=%d|ssets=%d|agents=%d|mem=%d|rounds=%d|noise=%g|pc=%g|mut=%g|beta=%g|seed=%d|eval=%s|kernel=%s|opt=%d|skipidle=%v|game=%s|payoff=%v|topo=%s|gens=%d",
			c.Ranks, c.NumSSets, c.AgentsPerSSet, c.MemorySteps, c.Rounds, c.Noise,
			c.PCRate, c.MutationRate, c.Beta, c.Seed, c.EvalMode, c.Kernel,
			int(c.OptLevel), c.SkipFitnessWhenIdle,
			gameName(c.Game), c.Game.Payoff.Table(), c.Topology.String(), cell.Generations)
	}
	h := fnv.New64a()
	h.Write([]byte(s))
	return fmt.Sprintf("%016x", h.Sum64())
}

// gameName names the scenario, mapping the zero-value Spec onto the
// paper's default IPD.
func gameName(spec game.Spec) string {
	if spec.Name == "" {
		return "ipd"
	}
	return spec.Name
}

// Label returns the envelope label of one (cell, replicate) run: it names
// the run and carries the configuration fingerprint the staleness check
// verifies.
func Label(artifactName string, cell Cell, replicate int) string {
	return fmt.Sprintf("paperkit:%s/%s#r%d fp=%s", artifactName, cell.Key, replicate, fingerprint(cell))
}

// RunState classifies one (cell, replicate) run's on-disk envelope.
type RunState string

// The three envelope states Plan reports.
const (
	// StateFresh means the envelope exists and matches the grid.
	StateFresh RunState = "fresh"
	// StateMissing means no envelope exists at the run's path.
	StateMissing RunState = "missing"
	// StateStale means an envelope exists but was produced by a different
	// configuration (or is unreadable) and will be re-run.
	StateStale RunState = "stale"
)

// RunStatus describes one (cell, replicate) run of a plan.
type RunStatus struct {
	Artifact  string
	Cell      string
	Replicate int
	Seed      uint64
	Path      string
	State     RunState
}

// classify decides the run's state from its on-disk envelope.
func classify(path, wantLabel string, cell Cell, replicate int) RunState {
	snap, err := checkpoint.Load(path)
	if os.IsNotExist(underlying(err)) {
		return StateMissing
	}
	if err != nil {
		return StateStale
	}
	if snap.Label != wantLabel {
		return StateStale
	}
	if snap.Generation != cell.Generations {
		return StateStale
	}
	ssets := 0
	if cell.Serial != nil {
		ssets = cell.Serial.NumSSets
	} else if cell.Parallel != nil {
		ssets = cell.Parallel.NumSSets
	}
	if len(snap.Strategies) != ssets {
		return StateStale
	}
	if snap.Seed != ensemble.ReplicateSeed(baseSeed, replicate) {
		return StateStale
	}
	return StateFresh
}

// underlying unwraps the %w chain to the first os error, if any.
func underlying(err error) error {
	for err != nil {
		if os.IsNotExist(err) {
			return err
		}
		type unwrapper interface{ Unwrap() error }
		u, ok := err.(unwrapper)
		if !ok {
			return err
		}
		err = u.Unwrap()
	}
	return err
}

// Plan reports the state of every run of the named artifacts (all when
// names is empty) against the artifact tree rooted at dir.
func Plan(dir string, quick bool, names []string) ([]RunStatus, error) {
	arts, err := resolve(names)
	if err != nil {
		return nil, err
	}
	var out []RunStatus
	for _, a := range arts {
		for _, cell := range a.Grid(quick) {
			for k := 0; k < cell.Replicates; k++ {
				path := EnvelopePath(dir, quick, a.Name, cell, k)
				out = append(out, RunStatus{
					Artifact:  a.Name,
					Cell:      cell.Key,
					Replicate: k,
					Seed:      ensemble.ReplicateSeed(baseSeed, k),
					Path:      path,
					State:     classify(path, Label(a.Name, cell, k), cell, k),
				})
			}
		}
	}
	return out, nil
}

// resolve maps artifact names onto registry entries; empty means all.
func resolve(names []string) ([]Artifact, error) {
	if len(names) == 0 {
		return registry, nil
	}
	sorted := append([]string(nil), names...)
	sort.Strings(sorted)
	var out []Artifact
	for _, a := range registry {
		for _, n := range sorted {
			if a.Name == n {
				out = append(out, a)
				break
			}
		}
	}
	if len(out) != len(sorted) {
		for _, n := range sorted {
			if _, err := Lookup(n); err != nil {
				return nil, err
			}
		}
	}
	return out, nil
}

// CellReport summarises one cell's execution.
type CellReport struct {
	Artifact string
	Cell     string
	// Executed and Skipped are the replicate indices that ran / were fresh.
	Executed []int
	Skipped  []int
}

// ExecuteOptions configures Execute.
type ExecuteOptions struct {
	// Quick selects the quick grid (the committed golden one).
	Quick bool
	// Artifacts names the artifacts to run; empty runs all of them.
	Artifacts []string
	// Force re-runs every run regardless of envelope freshness.
	Force bool
	// EnsembleWorkers bounds concurrent replicates per cell (0 = the
	// ensemble tier's default).
	EnsembleWorkers int
}

// Execute brings the artifact tree rooted at dir up to date: for every cell
// of the selected grids it runs exactly the replicates whose envelopes are
// missing or stale (all of them under opts.Force), through the ensemble
// tier with one checkpoint envelope per replicate.  Fresh runs are never
// re-executed, which is what makes regeneration incremental; because every
// run is a pure function of its derived seed, the envelopes produced by a
// partial re-run are identical to the ones a full run would write.
func Execute(ctx context.Context, dir string, opts ExecuteOptions) ([]CellReport, error) {
	arts, err := resolve(opts.Artifacts)
	if err != nil {
		return nil, err
	}
	var reports []CellReport
	for _, a := range arts {
		for _, cell := range a.Grid(opts.Quick) {
			report := CellReport{Artifact: a.Name, Cell: cell.Key}
			fresh := make(map[int]bool, cell.Replicates)
			for k := 0; k < cell.Replicates; k++ {
				path := EnvelopePath(dir, opts.Quick, a.Name, cell, k)
				if !opts.Force && classify(path, Label(a.Name, cell, k), cell, k) == StateFresh {
					fresh[k] = true
					report.Skipped = append(report.Skipped, k)
				} else {
					report.Executed = append(report.Executed, k)
				}
			}
			reports = append(reports, report)
			if len(report.Executed) == 0 {
				continue
			}
			if err := os.MkdirAll(RunDir(dir, opts.Quick, a.Name), 0o755); err != nil {
				return reports, fmt.Errorf("artifact: %w", err)
			}
			a, cell := a, cell
			ecfg := ensemble.Config{
				Replicates: cell.Replicates,
				Workers:    opts.EnsembleWorkers,
				Skip:       func(k int) bool { return fresh[k] },
				ReplicateCheckpoint: func(k int) (string, string) {
					return EnvelopePath(dir, opts.Quick, a.Name, cell, k), Label(a.Name, cell, k)
				},
			}
			switch {
			case cell.Serial != nil:
				_, err = ensemble.RunSerial(ctx, *cell.Serial, cell.Generations, ecfg)
			case cell.Parallel != nil:
				_, err = ensemble.RunParallel(*cell.Parallel, ecfg)
			default:
				err = fmt.Errorf("cell %s/%s has no engine config", a.Name, cell.Key)
			}
			if err != nil {
				return reports, fmt.Errorf("artifact: %s/%s: %w", a.Name, cell.Key, err)
			}
		}
	}
	return reports, nil
}
