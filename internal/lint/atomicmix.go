package lint

import (
	"go/ast"
	"go/types"
)

// AtomicMix enforces the counter discipline of fitness.PairCache and
// fitness.Metrics: once any code path touches a struct field through
// sync/atomic (atomic.AddInt64(&s.hits, 1), atomic.LoadUint64(&s.n), ...),
// every access to that field anywhere in the module must be atomic too.  A
// single plain read racing an atomic writer is undefined behaviour the race
// detector only catches when the schedule cooperates; this analyzer catches
// it structurally.  Fields of the typed sync/atomic wrappers (atomic.Int64
// and friends) are safe by construction and not this analyzer's concern.
var AtomicMix = &Analyzer{
	Name: "atomicmix",
	Doc:  "a struct field accessed via sync/atomic anywhere must be accessed atomically everywhere",
	Run:  runAtomicMix,
}

func runAtomicMix(ctx *Context) {
	// Pass 1: collect every field object that is the target of a
	// sync/atomic call, and remember those sanctioned selector nodes.
	atomicFields := map[*types.Var]bool{}
	sanctioned := map[*ast.SelectorExpr]bool{}
	for _, pkg := range ctx.Packages {
		if pkg.Info == nil {
			continue
		}
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok || !isAtomicCall(pkg, call) || len(call.Args) == 0 {
					return true
				}
				sel := addressedField(call.Args[0])
				if sel == nil {
					return true
				}
				if fld := fieldObject(pkg, sel); fld != nil {
					atomicFields[fld] = true
					sanctioned[sel] = true
				}
				return true
			})
		}
	}
	if len(atomicFields) == 0 {
		return
	}
	// Pass 2: every other selector access to one of those fields is a
	// mixed plain/atomic access.
	for _, pkg := range ctx.Packages {
		if pkg.Info == nil {
			continue
		}
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok || sanctioned[sel] {
					return true
				}
				fld := fieldObject(pkg, sel)
				if fld != nil && atomicFields[fld] {
					ctx.Reportf(sel.Pos(), "field %s.%s is accessed via sync/atomic elsewhere; this plain access races it (use sync/atomic here too)", fieldOwner(fld), fld.Name())
				}
				return true
			})
		}
	}
}

// isAtomicCall reports whether call invokes a function of the sync/atomic
// package (the free functions taking a pointer; methods on the typed
// wrappers never mix with plain access by construction).
func isAtomicCall(pkg *Package, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	return identIsPackage(pkg, id, "sync/atomic")
}

// addressedField unwraps &x.f (possibly parenthesized) to the selector.
func addressedField(e ast.Expr) *ast.SelectorExpr {
	u, ok := unparen(e).(*ast.UnaryExpr)
	if !ok {
		return nil
	}
	sel, _ := unparen(u.X).(*ast.SelectorExpr)
	return sel
}

// unparen strips any number of enclosing parentheses.
func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// fieldObject resolves a selector to the struct field it names, or nil if
// the selector is not a field access.
func fieldObject(pkg *Package, sel *ast.SelectorExpr) *types.Var {
	if s, ok := pkg.Info.Selections[sel]; ok && s.Kind() == types.FieldVal {
		if v, ok := s.Obj().(*types.Var); ok {
			return v
		}
	}
	return nil
}

// fieldOwner names the struct type a field belongs to, best-effort, for
// readable messages.
func fieldOwner(fld *types.Var) string {
	if p := fld.Pkg(); p != nil {
		return p.Name()
	}
	return "?"
}
