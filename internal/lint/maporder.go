package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// MapOrder flags `range` statements over maps whose body is sensitive to
// iteration order: appending non-key material to a slice, writing to an
// output/hash/builder, or accumulating floats or strings into a single
// accumulator.  Go randomizes map iteration order per run, so any of these
// makes a trajectory, rendered table or hash differ between identical
// invocations.  The one blessed idiom is collect-keys-then-sort: an append
// of only the range variables followed by a sort of the collected slice in
// the same block passes; everything else needs the keys sorted first or a
// //lint:allow maporder with a reason.
var MapOrder = &Analyzer{
	Name: "maporder",
	Doc:  "map iteration feeding output, slices or float/string accumulators must sort keys first",
	Run:  runMapOrder,
}

// outputCallNames are method names treated as order-sensitive sinks when
// called inside a map-range body: stream/builder/hash writes.
var outputCallNames = map[string]bool{
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
}

// fmtPrintNames are fmt-package functions treated as order-sensitive sinks.
var fmtPrintNames = map[string]bool{
	"Fprint": true, "Fprintf": true, "Fprintln": true,
	"Print": true, "Printf": true, "Println": true,
}

func runMapOrder(ctx *Context) {
	for _, pkg := range ctx.Packages {
		for _, f := range pkg.Files {
			blocks := stmtLists(f)
			ast.Inspect(f, func(n ast.Node) bool {
				rng, ok := n.(*ast.RangeStmt)
				if !ok {
					return true
				}
				if !isMapType(pkg, rng.X) {
					return true
				}
				if msg := mapRangeHazard(pkg, rng, blocks); msg != "" {
					ctx.Reportf(rng.Pos(), "range over map %s: iteration order is randomized per run; sort the keys first", msg)
				}
				return true
			})
		}
	}
}

// isMapType reports whether expr's type is (or underlies to) a map.
func isMapType(pkg *Package, expr ast.Expr) bool {
	if pkg.Info == nil {
		return false
	}
	t := pkg.Info.TypeOf(expr)
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// stmtLists indexes every statement list in the file (blocks, case and
// comm clauses) so a range statement can find its trailing siblings.
func stmtLists(f *ast.File) map[ast.Stmt][]ast.Stmt {
	out := map[ast.Stmt][]ast.Stmt{}
	record := func(list []ast.Stmt) {
		for i, s := range list {
			out[s] = list[i+1:]
		}
	}
	ast.Inspect(f, func(n ast.Node) bool {
		switch b := n.(type) {
		case *ast.BlockStmt:
			record(b.List)
		case *ast.CaseClause:
			record(b.Body)
		case *ast.CommClause:
			record(b.Body)
		}
		return true
	})
	return out
}

// mapRangeHazard returns a description of the first order-sensitive
// operation in the range body, or "" if the body is order-safe.
func mapRangeHazard(pkg *Package, rng *ast.RangeStmt, blocks map[ast.Stmt][]ast.Stmt) string {
	rangeVars := map[string]bool{}
	for _, e := range []ast.Expr{rng.Key, rng.Value} {
		if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
			rangeVars[id.Name] = true
		}
	}
	var hazard string
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		if hazard != "" {
			return false
		}
		switch s := n.(type) {
		case *ast.AssignStmt:
			if msg := assignHazard(pkg, rng, s, rangeVars, blocks); msg != "" {
				hazard = msg
				return false
			}
		case *ast.CallExpr:
			if msg := callHazard(pkg, s); msg != "" {
				hazard = msg
				return false
			}
		}
		return true
	})
	return hazard
}

// assignHazard inspects one assignment inside a map-range body.
func assignHazard(pkg *Package, rng *ast.RangeStmt, s *ast.AssignStmt, rangeVars map[string]bool, blocks map[ast.Stmt][]ast.Stmt) string {
	switch s.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
		// Compound accumulation into a single (loop-invariant) accumulator
		// is order-sensitive for floats (rounding) and strings
		// (concatenation order).  Per-key sinks (m[k] += v) are fine, as
		// are integer sums, which are associative and commutative.
		lhs := s.Lhs[0]
		if _, indexed := lhs.(*ast.IndexExpr); indexed {
			return ""
		}
		if pkg.Info == nil {
			return ""
		}
		t := pkg.Info.TypeOf(lhs)
		if t == nil {
			return ""
		}
		switch b, ok := t.Underlying().(*types.Basic); {
		case ok && b.Info()&types.IsFloat != 0:
			return "accumulates floating-point values whose rounding depends on order"
		case ok && b.Info()&types.IsString != 0:
			return "concatenates strings in iteration order"
		}
		return ""
	}
	// x = append(x, ...) — flag unless it only collects the range
	// variables and the collected slice is sorted later in the same block.
	call, ok := s.Rhs[0].(*ast.CallExpr)
	if !ok || len(s.Lhs) != 1 {
		return ""
	}
	if id, ok := call.Fun.(*ast.Ident); !ok || id.Name != "append" || len(call.Args) < 2 {
		return ""
	}
	if !onlyRangeVars(call.Args[1:], rangeVars) {
		return "appends derived values to a slice in iteration order"
	}
	target, ok := s.Lhs[0].(*ast.Ident)
	if !ok {
		return "appends the keys to a non-local target; sort it before use"
	}
	if !sortFollows(rng, target.Name, blocks) {
		return "collects the keys but never sorts them in this block"
	}
	return ""
}

// onlyRangeVars reports whether every expression is built purely from the
// range variables: a bare range var, an address-of, or a composite literal
// whose elements are themselves range-var expressions.
func onlyRangeVars(exprs []ast.Expr, rangeVars map[string]bool) bool {
	for _, e := range exprs {
		if !rangeVarExpr(e, rangeVars) {
			return false
		}
	}
	return true
}

func rangeVarExpr(e ast.Expr, rangeVars map[string]bool) bool {
	switch v := e.(type) {
	case *ast.Ident:
		return rangeVars[v.Name]
	case *ast.UnaryExpr:
		return v.Op == token.AND && rangeVarExpr(v.X, rangeVars)
	case *ast.CompositeLit:
		return onlyRangeVars(v.Elts, rangeVars)
	case *ast.KeyValueExpr:
		return rangeVarExpr(v.Value, rangeVars)
	case *ast.CallExpr:
		// A type conversion of a range var (string(k), Phase(k)) still
		// carries only key material.
		return len(v.Args) == 1 && rangeVarExpr(v.Args[0], rangeVars)
	}
	return false
}

// sortFollows reports whether a statement after rng in its enclosing
// statement list calls into sort/slices (sort.Strings, slices.Sort,
// sort.Slice, ...) mentioning the named slice.
func sortFollows(rng ast.Stmt, name string, blocks map[ast.Stmt][]ast.Stmt) bool {
	rest, ok := blocks[rng]
	if !ok {
		return false
	}
	for _, s := range rest {
		found := false
		ast.Inspect(s, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || found {
				return !found
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			pkgID, ok := sel.X.(*ast.Ident)
			if !ok || (pkgID.Name != "sort" && pkgID.Name != "slices") {
				return true
			}
			for _, arg := range call.Args {
				if mentionsIdent(arg, name) {
					found = true
					return false
				}
			}
			return true
		})
		if found {
			return true
		}
	}
	return false
}

// mentionsIdent reports whether the expression tree contains an identifier
// with the given name.
func mentionsIdent(e ast.Expr, name string) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && id.Name == name {
			found = true
		}
		return !found
	})
	return found
}

// callHazard flags output-sink calls inside a map-range body.
func callHazard(pkg *Package, call *ast.CallExpr) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	name := sel.Sel.Name
	if id, ok := sel.X.(*ast.Ident); ok && identIsPackage(pkg, id, "fmt") {
		if fmtPrintNames[name] {
			return "writes formatted output (fmt." + name + ") in iteration order"
		}
		return ""
	}
	if outputCallNames[name] {
		return "writes to a builder/stream/hash (" + name + ") in iteration order"
	}
	return ""
}
