package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// timingAllowlist names the module-relative packages whose job is
// wall-clock measurement; time.Now there is the point, not a hazard.
// Everywhere else a time.Now call needs a //lint:allow randsource with a
// reason making the not-simulation-state argument explicit.
var timingAllowlist = map[string]bool{
	"internal/trace":     true,
	"internal/perfmodel": true,
	"internal/ensemble":  true,
	"internal/supervise": true,
	"cmd/benchtables":    true,
}

// bannedRandImports are randomness sources that bypass the deterministic
// rng.Source discipline.  They are banned everywhere: even a cmd/ or
// examples/ package drawing from math/rand would print values a rerun
// cannot reproduce.
var bannedRandImports = map[string]string{
	"math/rand":    "non-deterministic unless globally seeded, and global seeding breaks stream independence",
	"math/rand/v2": "auto-seeded; irreproducible by construction",
	"crypto/rand":  "cryptographic randomness is irreproducible by design",
}

// RandSource enforces the repository's reproducibility contract: all
// randomness flows through internal/rng.Source, which is seeded, splittable
// and checkpointable.  math/rand (v1 and v2) and crypto/rand imports are
// errors everywhere; time.Now calls are errors outside the wall-clock
// allowlist (trace, perfmodel, ensemble, supervise, cmd/benchtables),
// because a time-derived value that leaks into simulation state destroys
// bit-identical-per-seed replay.
var RandSource = &Analyzer{
	Name: "randsource",
	Doc:  "all randomness must flow through internal/rng.Source; no math/rand, crypto/rand, or stray time.Now",
	Run:  runRandSource,
}

func runRandSource(ctx *Context) {
	for _, pkg := range ctx.Packages {
		for _, f := range pkg.Files {
			for _, spec := range f.Imports {
				path := strings.Trim(spec.Path.Value, `"`)
				if why, banned := bannedRandImports[path]; banned {
					ctx.Reportf(spec.Pos(), "import of %s: %s; use internal/rng.Source", path, why)
				}
			}
			if timingAllowlist[pkg.Rel] {
				continue
			}
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if isPkgCall(pkg, call, "time", "Now") {
					ctx.Reportf(call.Pos(), "time.Now outside the timing allowlist: wall-clock values must never feed simulation state (route timing through internal/trace, or //lint:allow randsource with a reason)")
				}
				return true
			})
		}
	}
}

// isPkgCall reports whether call is pkgName.funcName(...) where pkgName
// resolves to an import of the given path.
func isPkgCall(pkg *Package, call *ast.CallExpr, path, funcName string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != funcName {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	return identIsPackage(pkg, id, path)
}

// identIsPackage reports whether id names an import of path, using type
// info when available (which honours renamed imports) and the syntactic
// package name otherwise.
func identIsPackage(pkg *Package, id *ast.Ident, path string) bool {
	if pkg.Info != nil {
		if obj, ok := pkg.Info.Uses[id]; ok {
			pn, ok := obj.(*types.PkgName)
			return ok && pn.Imported().Path() == path
		}
	}
	return id.Name == lastPathElement(path)
}

func lastPathElement(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}
