package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Load parses and type-checks every package under root and returns a
// Context ready for Run.  module is the import-path prefix of the tree
// ("evogame" for the repository; fixtures use a bare name).  Test files
// (_test.go) are not loaded: the suite analyzes shipped code, and test
// packages would drag external test deps into the type-check.
//
// Standard-library imports are resolved by the stdlib source importer
// (parsed and type-checked from GOROOT, no compiled export data needed),
// module-internal imports from the packages loaded here, checked in
// dependency order.  Anything else — there is nothing else while go.mod
// stays dependency-free — is a load error.
func Load(root, module string) (*Context, error) {
	root, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	ctx := &Context{Root: root, Module: module, Fset: fset}

	dirs, err := goDirs(root)
	if err != nil {
		return nil, err
	}
	for _, dir := range dirs {
		pkg, err := parseDir(fset, root, module, dir)
		if err != nil {
			return nil, err
		}
		if pkg != nil {
			ctx.Packages = append(ctx.Packages, pkg)
		}
	}
	sort.Slice(ctx.Packages, func(i, j int) bool { return ctx.Packages[i].Rel < ctx.Packages[j].Rel })
	if err := typecheck(ctx); err != nil {
		return nil, err
	}
	return ctx, nil
}

// goDirs returns every directory under root holding at least one non-test
// .go file, skipping hidden trees, testdata and the committed artifact
// store.
func goDirs(root string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
				name == "testdata" || name == "artifacts") {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(d.Name(), ".go") && !strings.HasSuffix(d.Name(), "_test.go") {
			dir := filepath.Dir(path)
			if n := len(dirs); n == 0 || dirs[n-1] != dir {
				dirs = append(dirs, dir)
			}
		}
		return nil
	})
	return dirs, err
}

// parseDir parses the non-test .go files of one directory into a Package
// (without type information; typecheck fills that in).
func parseDir(fset *token.FileSet, root, module, dir string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") || strings.HasSuffix(e.Name(), "_test.go") {
			continue
		}
		names = append(names, e.Name())
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, nil
	}
	rel, err := filepath.Rel(root, dir)
	if err != nil {
		return nil, err
	}
	rel = filepath.ToSlash(rel)
	pkg := &Package{Rel: rel, Dir: dir, ImportPath: importPath(module, rel)}
	for _, name := range names {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: parse %s: %w", filepath.Join(rel, name), err)
		}
		if pkg.Name == "" {
			pkg.Name = f.Name.Name
		} else if pkg.Name != f.Name.Name {
			return nil, fmt.Errorf("lint: %s: conflicting package names %s and %s", rel, pkg.Name, f.Name.Name)
		}
		pkg.Files = append(pkg.Files, f)
	}
	return pkg, nil
}

// importPath joins the module path and a module-relative directory.
func importPath(module, rel string) string {
	if rel == "." {
		return module
	}
	if module == "" {
		return rel
	}
	return module + "/" + rel
}

// moduleImporter resolves module-internal imports from the packages the
// loader has already type-checked and everything else through the stdlib
// source importer, sharing one instance (and therefore one cache of
// type-checked std packages) across the whole load.
type moduleImporter struct {
	std types.ImporterFrom
	mod map[string]*types.Package
}

func (m *moduleImporter) Import(path string) (*types.Package, error) {
	if p, ok := m.mod[path]; ok {
		return p, nil
	}
	return m.std.ImportFrom(path, "", 0)
}

// typecheck runs go/types over every loaded package in dependency order.
func typecheck(ctx *Context) error {
	std, ok := importer.ForCompiler(ctx.Fset, "source", nil).(types.ImporterFrom)
	if !ok {
		return fmt.Errorf("lint: source importer does not implement types.ImporterFrom")
	}
	imp := &moduleImporter{std: std, mod: map[string]*types.Package{}}

	order, err := dependencyOrder(ctx)
	if err != nil {
		return err
	}
	for _, pkg := range order {
		info := &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
		}
		conf := types.Config{
			Importer: imp,
			Error:    func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
		}
		tpkg, _ := conf.Check(pkg.ImportPath, ctx.Fset, pkg.Files, info)
		if tpkg == nil {
			return fmt.Errorf("lint: type-checking %s produced no package", pkg.ImportPath)
		}
		pkg.Types = tpkg
		pkg.Info = info
		imp.mod[pkg.ImportPath] = tpkg
	}
	return nil
}

// dependencyOrder topologically sorts the loaded packages by their
// module-internal imports so each package type-checks after everything it
// imports.
func dependencyOrder(ctx *Context) ([]*Package, error) {
	byPath := map[string]*Package{}
	for _, p := range ctx.Packages {
		byPath[p.ImportPath] = p
	}
	const (
		unvisited = 0
		visiting  = 1
		done      = 2
	)
	state := map[string]int{}
	var order []*Package
	var visit func(p *Package) error
	visit = func(p *Package) error {
		switch state[p.ImportPath] {
		case done:
			return nil
		case visiting:
			return fmt.Errorf("lint: import cycle through %s", p.ImportPath)
		}
		state[p.ImportPath] = visiting
		for _, f := range p.Files {
			for _, spec := range f.Imports {
				path := strings.Trim(spec.Path.Value, `"`)
				if dep, ok := byPath[path]; ok && dep != p {
					if err := visit(dep); err != nil {
						return err
					}
				}
			}
		}
		state[p.ImportPath] = done
		order = append(order, p)
		return nil
	}
	for _, p := range ctx.Packages {
		if err := visit(p); err != nil {
			return nil, err
		}
	}
	return order, nil
}
