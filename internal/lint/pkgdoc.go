package lint

import (
	"go/ast"
	"strings"
)

// PkgDoc is the godoc discipline the old doclint_test.go enforced, folded
// into the analyzer framework: every package under internal/ must carry a
// package-level doc comment, and every exported symbol of the facade
// package at the module root must carry a doc comment (functions, methods
// on exported types, and the individual specs of const/var/type groups —
// a spec inside a documented group is fine).
var PkgDoc = &Analyzer{
	Name: "pkgdoc",
	Doc:  "internal packages need package docs; facade exports need doc comments",
	Run:  runPkgDoc,
}

func runPkgDoc(ctx *Context) {
	for _, pkg := range ctx.Packages {
		switch {
		case strings.HasPrefix(pkg.Rel, "internal/"):
			if !hasPackageDoc(pkg) {
				ctx.Reportf(pkg.Files[0].Name.Pos(), "package %s has no package-level doc comment", pkg.Name)
			}
		case pkg.Rel == "." && pkg.Name != "main":
			if !hasPackageDoc(pkg) {
				ctx.Reportf(pkg.Files[0].Name.Pos(), "package %s has no package-level doc comment", pkg.Name)
			}
			for _, f := range pkg.Files {
				checkExportedDocs(ctx, f)
			}
		}
	}
}

// hasPackageDoc reports whether any file of the package carries a
// non-empty package doc comment.
func hasPackageDoc(pkg *Package) bool {
	for _, f := range pkg.Files {
		if f.Doc != nil && strings.TrimSpace(f.Doc.Text()) != "" {
			return true
		}
	}
	return false
}

// checkExportedDocs reports every exported symbol in f lacking a doc
// comment.
func checkExportedDocs(ctx *Context, f *ast.File) {
	hasDoc := func(groups ...*ast.CommentGroup) bool {
		for _, g := range groups {
			if g != nil && strings.TrimSpace(g.Text()) != "" {
				return true
			}
		}
		return false
	}
	for _, decl := range f.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if !d.Name.IsExported() {
				continue
			}
			if d.Recv != nil && !exportedReceiver(d.Recv) {
				continue
			}
			if !hasDoc(d.Doc) {
				ctx.Reportf(d.Pos(), "exported %s has no doc comment", describeFunc(d))
			}
		case *ast.GenDecl:
			for _, spec := range d.Specs {
				switch s := spec.(type) {
				case *ast.TypeSpec:
					if s.Name.IsExported() && !hasDoc(s.Doc, d.Doc) {
						ctx.Reportf(s.Pos(), "exported type %s has no doc comment", s.Name.Name)
					}
				case *ast.ValueSpec:
					for _, name := range s.Names {
						if name.IsExported() && !hasDoc(s.Doc, s.Comment, d.Doc) {
							ctx.Reportf(name.Pos(), "exported symbol %s has no doc comment", name.Name)
						}
					}
				}
			}
		}
	}
}

// exportedReceiver reports whether a method's receiver type is exported
// (methods on unexported types are not part of the public surface).
func exportedReceiver(recv *ast.FieldList) bool {
	if len(recv.List) == 0 {
		return false
	}
	typ := recv.List[0].Type
	for {
		switch tt := typ.(type) {
		case *ast.StarExpr:
			typ = tt.X
		case *ast.IndexExpr:
			typ = tt.X
		case *ast.Ident:
			return tt.IsExported()
		default:
			return false
		}
	}
}

// describeFunc labels a function or method for a diagnostic.
func describeFunc(d *ast.FuncDecl) string {
	if d.Recv == nil {
		return "func " + d.Name.Name
	}
	return "method " + d.Name.Name
}
