// Package lint is a zero-dependency static-analysis framework guarding the
// repository's determinism and concurrency invariants.  It is built entirely
// on the standard library's go/ast, go/parser and go/types (go.mod stays
// empty) in the same no-external-tooling style the godoc and markdown-link
// lints pioneered — and it now hosts those two checks as analyzers alongside
// the determinism suite.
//
// The framework loads every package of the module (Loader), runs a set of
// Analyzers over the type-checked ASTs, and filters the resulting
// Diagnostics through //lint:allow suppression directives.  A directive
// must name the analyzer it silences and carry a human-readable reason:
//
//	//lint:allow randsource wall-clock timing for the progress line; never feeds simulation state
//
// A directive without a reason (or naming an unknown analyzer) is itself a
// diagnostic, so suppressions stay auditable.  See docs/STATIC_ANALYSIS.md
// for the catalogue of analyzers and the invariant each one guards.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Diagnostic is one finding: an analyzer name, a file position and a
// message.  File paths are relative to the analyzed root so output is
// stable across machines and usable in CI logs.
type Diagnostic struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Message  string `json:"message"`
}

// String renders the diagnostic in the conventional file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.File, d.Line, d.Col, d.Analyzer, d.Message)
}

// Analyzer is one named check.  Run receives the fully loaded Context and
// reports findings through it; the runner applies suppression directives
// afterwards, so analyzers never need to know about //lint:allow.
type Analyzer struct {
	// Name is the identifier used in output and in //lint:allow directives.
	Name string
	// Doc is a one-line description of the invariant the analyzer guards.
	Doc string
	// Run inspects the context and reports findings via ctx.Report*.
	Run func(ctx *Context)
}

// Package is one loaded, type-checked package of the analyzed tree.
type Package struct {
	// Name is the package name from the package clause.
	Name string
	// Rel is the module-relative directory ("." for the module root,
	// "internal/game", "cmd/evolint", ...).  Analyzers scope themselves
	// by Rel so fixtures under testdata can mimic real package paths.
	Rel string
	// ImportPath is the full import path (module prefix + Rel).
	ImportPath string
	// Dir is the absolute filesystem directory.
	Dir string
	// Files holds the parsed non-test sources, sorted by filename.
	Files []*ast.File
	// Types is the type-checked package object (never nil; possibly
	// incomplete if TypeErrors is non-empty).
	Types *types.Package
	// Info carries the type-checker's expression/object tables.
	Info *types.Info
	// TypeErrors collects type-checking problems.  The loader tolerates
	// them (analyzers degrade gracefully) but the self-run test pins the
	// repository to zero so loader regressions cannot silently weaken
	// the type-dependent analyzers.
	TypeErrors []error
}

// Context is the shared state of one lint run: the loaded packages, the
// filesystem root (for repo-level analyzers such as mdlinks), and the
// accumulating diagnostics.
type Context struct {
	// Root is the absolute path of the analyzed tree.
	Root string
	// Module is the module path ("evogame" for the repository).
	Module string
	// Fset is the shared FileSet every package was parsed into.
	Fset *token.FileSet
	// Packages holds the loaded packages sorted by Rel.
	Packages []*Package

	diags []Diagnostic
	cur   string // name of the analyzer currently running
}

// PackageAt returns the package with the given module-relative directory,
// or nil if the tree does not contain it.
func (c *Context) PackageAt(rel string) *Package {
	for _, p := range c.Packages {
		if p.Rel == rel {
			return p
		}
	}
	return nil
}

// relFile converts an absolute filename from the FileSet into a root-
// relative path with forward slashes.
func (c *Context) relFile(name string) string {
	rel := strings.TrimPrefix(name, c.Root)
	rel = strings.TrimPrefix(rel, "/")
	if rel == "" {
		rel = name
	}
	return rel
}

// Reportf records a finding for the currently running analyzer at pos.
func (c *Context) Reportf(pos token.Pos, format string, args ...interface{}) {
	p := c.Fset.Position(pos)
	c.diags = append(c.diags, Diagnostic{
		Analyzer: c.cur,
		File:     c.relFile(p.Filename),
		Line:     p.Line,
		Col:      p.Column,
		Message:  fmt.Sprintf(format, args...),
	})
}

// ReportFile records a finding for the currently running analyzer in a
// non-Go file (markdown, for the mdlinks analyzer) at the given line.
func (c *Context) ReportFile(file string, line int, format string, args ...interface{}) {
	c.diags = append(c.diags, Diagnostic{
		Analyzer: c.cur,
		File:     c.relFile(file),
		Line:     line,
		Col:      1,
		Message:  fmt.Sprintf(format, args...),
	})
}

// DirectiveAnalyzer is the pseudo-analyzer name under which malformed
// //lint:allow directives are reported.  It cannot itself be suppressed.
const DirectiveAnalyzer = "lintdirective"

// directivePrefix introduces a suppression comment.
const directivePrefix = "lint:allow"

// directive is one parsed //lint:allow comment.
type directive struct {
	file     string // root-relative
	line     int
	analyzer string
	reason   string
}

// collectDirectives parses every //lint:allow comment in the loaded
// packages.  Malformed directives (no analyzer, unknown analyzer, missing
// reason) are reported as diagnostics under DirectiveAnalyzer.
func collectDirectives(ctx *Context, known map[string]bool) []directive {
	var dirs []directive
	for _, pkg := range ctx.Packages {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, cm := range cg.List {
					text := strings.TrimPrefix(cm.Text, "//")
					text = strings.TrimSpace(text)
					if !strings.HasPrefix(text, directivePrefix) {
						continue
					}
					p := ctx.Fset.Position(cm.Pos())
					file := ctx.relFile(p.Filename)
					rest := strings.TrimSpace(strings.TrimPrefix(text, directivePrefix))
					name, reason, _ := strings.Cut(rest, " ")
					reason = strings.TrimSpace(reason)
					bad := func(format string, args ...interface{}) {
						ctx.diags = append(ctx.diags, Diagnostic{
							Analyzer: DirectiveAnalyzer,
							File:     file,
							Line:     p.Line,
							Col:      p.Column,
							Message:  fmt.Sprintf(format, args...),
						})
					}
					switch {
					case name == "":
						bad("//lint:allow needs an analyzer name and a reason")
					case !known[name]:
						bad("//lint:allow names unknown analyzer %q", name)
					case reason == "":
						bad("//lint:allow %s needs a reason string explaining the suppression", name)
					default:
						dirs = append(dirs, directive{file: file, line: p.Line, analyzer: name, reason: reason})
					}
				}
			}
		}
	}
	return dirs
}

// suppressed reports whether d is covered by a directive: same file, same
// analyzer, and the directive sits on the finding's own line (trailing
// comment) or the line directly above it.
func suppressed(d Diagnostic, dirs []directive) bool {
	for _, dir := range dirs {
		if dir.analyzer != d.Analyzer || dir.file != d.File {
			continue
		}
		if dir.line == d.Line || dir.line == d.Line-1 {
			return true
		}
	}
	return false
}

// Run executes the analyzers over the context and returns the surviving
// diagnostics sorted by file, line, column and analyzer.
func Run(ctx *Context, analyzers []*Analyzer) []Diagnostic {
	known := map[string]bool{}
	for _, a := range analyzers {
		known[a.Name] = true
	}
	// Directives may name any registered analyzer, including ones not
	// selected for this run (a partial run must not flag the others'
	// suppressions as unknown).
	for _, a := range All() {
		known[a.Name] = true
	}
	for _, a := range analyzers {
		ctx.cur = a.Name
		a.Run(ctx)
	}
	ctx.cur = ""
	dirs := collectDirectives(ctx, known)
	kept := ctx.diags[:0]
	for _, d := range ctx.diags {
		if d.Analyzer != DirectiveAnalyzer && suppressed(d, dirs) {
			continue
		}
		kept = append(kept, d)
	}
	ctx.diags = kept
	sort.Slice(kept, func(i, j int) bool {
		a, b := kept[i], kept[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Analyzer < b.Analyzer
	})
	return kept
}

// All returns the full analyzer suite in stable order.
func All() []*Analyzer {
	return []*Analyzer{
		RandSource,
		MapOrder,
		AtomicMix,
		EnvelopeLock,
		ErrStyle,
		PkgDoc,
		MDLinks,
	}
}

// ByName resolves a comma-separated analyzer list ("maporder,errstyle")
// against the registry, preserving registry order.
func ByName(names string) ([]*Analyzer, error) {
	want := map[string]bool{}
	for _, n := range strings.Split(names, ",") {
		n = strings.TrimSpace(n)
		if n == "" {
			continue
		}
		want[n] = true
	}
	var out []*Analyzer
	for _, a := range All() {
		if want[a.Name] {
			out = append(out, a)
			delete(want, a.Name)
		}
	}
	if len(want) > 0 {
		var unknown []string
		for n := range want {
			unknown = append(unknown, n)
		}
		sort.Strings(unknown)
		return nil, fmt.Errorf("lint: unknown analyzer(s) %s", strings.Join(unknown, ", "))
	}
	return out, nil
}
