package lint

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strings"
	"unicode"
)

// ErrStyle enforces the validation-error convention PRs 6–7 established:
// an error built inside a validate/check function must name the offending
// field, flag or parameter, so the user of a 20-field Config learns *which*
// knob is wrong, not just that one is.  A message passes when one of its
// words overlaps a field name of the receiver/parameter structs or a
// parameter name; pure wrap-and-rethrow errors (%w) pass, since the named
// context arrives from the wrapped error.
var ErrStyle = &Analyzer{
	Name: "errstyle",
	Doc:  "validation errors must name the offending field or flag",
	Run:  runErrStyle,
}

func runErrStyle(ctx *Context) {
	for _, pkg := range ctx.Packages {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil || !isValidationFunc(fd.Name.Name) {
					continue
				}
				vocab := validationVocabulary(pkg, fd)
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					format, ok := errorMessage(pkg, call)
					if !ok || strings.Contains(format, "%w") {
						return true
					}
					if !namesAField(format, vocab) {
						ctx.Reportf(call.Pos(), "validation error %q does not name the offending field/flag (known names: %s)", format, strings.Join(vocab, ", "))
					}
					return true
				})
			}
		}
	}
}

// isValidationFunc reports whether a function name marks a validation
// context: validate*, Validate*, check*, Check*.
func isValidationFunc(name string) bool {
	lower := strings.ToLower(name)
	return strings.HasPrefix(lower, "validate") || strings.HasPrefix(lower, "check")
}

// validationVocabulary collects the names an error message may cite: the
// fields of the receiver and of struct-typed parameters, plus the
// parameter names themselves.
func validationVocabulary(pkg *Package, fd *ast.FuncDecl) []string {
	var vocab []string
	seen := map[string]bool{}
	add := func(name string) {
		l := strings.ToLower(name)
		if len(l) >= 2 && !seen[l] {
			seen[l] = true
			vocab = append(vocab, name)
		}
	}
	addStructFields := func(t types.Type) {
		if t == nil {
			return
		}
		if p, ok := t.Underlying().(*types.Pointer); ok {
			t = p.Elem()
		}
		st, ok := t.Underlying().(*types.Struct)
		if !ok {
			return
		}
		for i := 0; i < st.NumFields(); i++ {
			add(st.Field(i).Name())
		}
	}
	fields := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			for _, name := range field.Names {
				add(name.Name)
			}
			if pkg.Info != nil {
				addStructFields(pkg.Info.TypeOf(field.Type))
			}
		}
	}
	fields(fd.Recv)
	fields(fd.Type.Params)
	return vocab
}

// errorMessage extracts the constant message of a fmt.Errorf or errors.New
// call; ok is false for any other call or a non-literal message.
func errorMessage(pkg *Package, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || len(call.Args) == 0 {
		return "", false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", false
	}
	isErrorf := sel.Sel.Name == "Errorf" && identIsPackage(pkg, id, "fmt")
	isNew := sel.Sel.Name == "New" && identIsPackage(pkg, id, "errors")
	if !isErrorf && !isNew {
		return "", false
	}
	return stringLiteral(pkg, call.Args[0])
}

// stringLiteral resolves an expression to its constant string value when
// the type-checker knows it (handles literals and literal concatenation).
func stringLiteral(pkg *Package, e ast.Expr) (string, bool) {
	if pkg.Info != nil {
		if tv, ok := pkg.Info.Types[e]; ok && tv.Value != nil && tv.Value.Kind() == constant.String {
			return constant.StringVal(tv.Value), true
		}
	}
	return "", false
}

// namesAField reports whether a message token overlaps one of the known
// names (exact, or substring either way, minimum three characters).
func namesAField(format string, vocab []string) bool {
	for _, tok := range messageTokens(format) {
		for _, name := range vocab {
			l := strings.ToLower(name)
			if tok == l {
				return true
			}
			if len(tok) >= 3 && len(l) >= 3 && (strings.Contains(l, tok) || strings.Contains(tok, l)) {
				return true
			}
		}
	}
	return false
}

// messageTokens splits a format string into lowercased alphanumeric runs,
// dropping printf verbs.
func messageTokens(format string) []string {
	var toks []string
	var cur strings.Builder
	flush := func() {
		if cur.Len() > 0 {
			toks = append(toks, strings.ToLower(cur.String()))
			cur.Reset()
		}
	}
	skipVerb := false
	for _, r := range format {
		if skipVerb {
			// Consume one verb character (%d, %q, %v, %s, ...); enough for
			// the simple verbs validation messages use.
			skipVerb = false
			continue
		}
		if r == '%' {
			flush()
			skipVerb = true
			continue
		}
		if unicode.IsLetter(r) || unicode.IsDigit(r) {
			cur.WriteRune(r)
		} else {
			flush()
		}
	}
	flush()
	return toks
}
