// Package v exercises the errstyle analyzer: validation errors must name
// the offending field, flag or parameter.
package v

import (
	"errors"
	"fmt"
)

// Config is a fixture configuration with two knobs.
type Config struct {
	Workers int
	Rounds  int
}

// validate checks the fixture config.
func (c Config) validate() error {
	if c.Workers < 0 {
		return fmt.Errorf("v: Workers must be non-negative, got %d", c.Workers)
	}
	if c.Rounds < 0 {
		return errors.New("v: something went wrong") // want "does not name the offending field"
	}
	if c.Rounds > 100 {
		//lint:allow errstyle fixture: the field name would leak internals here
		return errors.New("v: out of range")
	}
	return nil
}

// checkLimit validates a bare parameter; wrapping with %w passes.
func checkLimit(limit int, err error) error {
	if err != nil {
		return fmt.Errorf("v: limit: %w", err)
	}
	if limit < 0 {
		return fmt.Errorf("v: limit must be non-negative, got %d", limit)
	}
	return nil
}

// Build is not a validation function; generic messages are fine here.
func Build() error {
	return errors.New("v: build failed")
}

// keep the unexported helpers referenced so the fixture type-checks.
var _ = checkLimit
