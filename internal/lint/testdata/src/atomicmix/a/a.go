// Package a exercises the atomicmix analyzer: once a field is touched via
// sync/atomic anywhere, every access must be atomic.
package a

import "sync/atomic"

// Counter mixes atomic and plain access to hits; safe stays disciplined.
type Counter struct {
	hits int64
	safe int64
}

// Inc adds to both counters atomically.
func (c *Counter) Inc() {
	atomic.AddInt64(&c.hits, 1)
	atomic.AddInt64(&c.safe, 1)
}

// Read races Inc: a plain load of an atomically-written field.
func (c *Counter) Read() int64 {
	return c.hits // want "accessed via sync/atomic elsewhere"
}

// SafeRead keeps the atomic discipline.
func (c *Counter) SafeRead() int64 {
	return atomic.LoadInt64(&c.safe)
}

// SuppressedRead documents why a plain read is safe at this call site.
func (c *Counter) SuppressedRead() int64 {
	//lint:allow atomicmix fixture: reader runs after all writer goroutines joined
	return c.hits
}
