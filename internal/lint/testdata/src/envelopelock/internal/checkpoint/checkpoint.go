// Package checkpoint is a fixture replicating the real on-disk envelope
// exactly; the pinned fingerprint must accept it unchanged.
package checkpoint

// Stream mirrors the real named-RNG-stream record.
type Stream struct {
	Name  string
	State [4]uint64
}

// envelope replicates the real gob-encoded representation field for field.
type envelope struct {
	Version     int
	Generation  int
	Seed        uint64
	MemorySteps int
	Game        string
	Payoff      [4]float64
	UpdateRule  string
	Topology    string
	Label       string
	Strategies  [][]byte
	Resume      bool
	Engine      string
	Streams     []Stream
	PCEvents    int
	Adoptions   int
	Mutations   int
	GamesPlayed int64
}

const formatVersion = 4

// keep the declarations referenced so the fixture type-checks cleanly.
var _ = envelope{Version: formatVersion}
