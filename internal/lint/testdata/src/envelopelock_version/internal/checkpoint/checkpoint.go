// Package checkpoint is a fixture whose format version moved past the
// pin; the analyzer demands a deliberate pin update.
package checkpoint

// envelope's shape is irrelevant here: the version gate fires first.
type envelope struct {
	Version int
}

const formatVersion = 5 // want "update pinnedEnvelopeVersion"

// keep the declarations referenced so the fixture type-checks cleanly.
var _ = envelope{Version: formatVersion}
