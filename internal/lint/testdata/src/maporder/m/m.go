// Package m exercises the maporder analyzer: map-range bodies feeding
// slices, output sinks or order-sensitive accumulators are errors unless
// the keys are sorted first.
package m

import (
	"fmt"
	"sort"
	"strings"
)

// BadAppend appends derived values in iteration order.
func BadAppend(m map[string]int) []string {
	var out []string
	for k, v := range m { // want "appends derived values"
		out = append(out, fmt.Sprintf("%s=%d", k, v))
	}
	return out
}

// BadPrint writes formatted output in iteration order.
func BadPrint(m map[string]int) {
	for k := range m { // want "writes formatted output"
		fmt.Println(k)
	}
}

// BadBuilder writes to a strings.Builder in iteration order.
func BadBuilder(m map[string]int) string {
	var sb strings.Builder
	for k := range m { // want "writes to a builder"
		sb.WriteString(k)
	}
	return sb.String()
}

// BadFloat folds floats into one accumulator; rounding depends on order.
func BadFloat(m map[string]float64) float64 {
	var total float64
	for _, v := range m { // want "accumulates floating-point"
		total += v
	}
	return total
}

// BadConcat concatenates strings in iteration order.
func BadConcat(m map[string]string) string {
	s := ""
	for k := range m { // want "concatenates strings"
		s += k
	}
	return s
}

// BadCollect collects the keys but never sorts them in this block.
func BadCollect(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m { // want "collects the keys but never sorts"
		keys = append(keys, k)
	}
	return keys
}

// GoodCollect is the blessed collect-then-sort idiom.
func GoodCollect(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// GoodCollectPairs collects key/value composites, then sorts them.
func GoodCollectPairs(m map[string]int) []struct {
	K string
	V int
} {
	pairs := make([]struct {
		K string
		V int
	}, 0, len(m))
	for k, v := range m {
		pairs = append(pairs, struct {
			K string
			V int
		}{k, v})
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].K < pairs[j].K })
	return pairs
}

// GoodIntSum is associative and commutative; order cannot matter.
func GoodIntSum(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// GoodPerKey writes to per-key sinks; each key is independent.
func GoodPerKey(m map[string]int) map[string]int {
	out := make(map[string]int, len(m))
	for k, v := range m {
		out[k] = v * 2
	}
	return out
}

// Suppressed documents an intentional unordered dump.
func Suppressed(m map[string]int) {
	//lint:allow maporder fixture: order does not matter for this debug dump
	for k := range m {
		fmt.Println(k)
	}
}

// BadDirective carries a reasonless suppression, which suppresses nothing
// and is itself a finding.
func BadDirective(m map[string]int) {
	// want-next "needs a reason string"
	//lint:allow maporder
	for k := range m { // want "writes formatted output"
		fmt.Println(k)
	}
}

// UnknownDirective names an analyzer that does not exist.
func UnknownDirective() {
	// want-next "unknown analyzer"
	//lint:allow frobnicator because reasons
}
