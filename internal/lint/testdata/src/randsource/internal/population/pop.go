// Package population is a fixture mimicking a dynamics-relevant package:
// banned randomness sources and stray wall-clock reads are errors here.
package population

import (
	crand "crypto/rand" // want "import of crypto/rand"
	"math/rand"         // want "import of math/rand"
	"time"
)

// Step draws from banned sources and leaks wall-clock state.
func Step() int64 {
	buf := make([]byte, 8)
	crand.Read(buf)
	n := rand.Int63()
	n += time.Now().UnixNano() // want "time.Now outside the timing allowlist"
	return n
}

// Timed measures a phase with an audited suppression.
func Timed(fn func()) time.Duration {
	//lint:allow randsource fixture: wall-clock phase timing that never feeds simulation state
	start := time.Now()
	fn()
	return time.Since(start)
}
