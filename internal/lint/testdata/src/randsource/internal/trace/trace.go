// Package trace is a fixture standing in for the wall-clock allowlist:
// timing packages may call time.Now freely.
package trace

import "time"

// Elapsed runs fn and returns its wall-clock duration.
func Elapsed(fn func()) time.Duration {
	start := time.Now()
	fn()
	return time.Since(start)
}
