// Package supervise is a fixture standing in for the supervisor's
// allowlist entry: recovery wall-clock and retry backoff are measurement
// and scheduling, so time.Now is legitimate here without a per-site
// suppression.
package supervise

import "time"

// Recover sleeps a backoff and reports how long recovery took.
func Recover(backoff time.Duration, relaunch func()) time.Duration {
	start := time.Now()
	time.Sleep(backoff)
	relaunch()
	return time.Since(start)
}
