// Package facade is the fixture module root; its exported symbols need
// doc comments.
package facade

// Documented carries the required comment.
func Documented() {}

func Undocumented() {} // want "exported func Undocumented has no doc comment"

type Widget struct{} // want "exported type Widget has no doc comment"

// Grouped declarations are covered by the group comment.
const (
	GroupedA = 1
	GroupedB = 2
)

// want+2 "exported symbol Count has no doc comment"

var Count int

type hidden struct{}

// Render is a method on an unexported type; not part of the surface.
func (hidden) Render() {}
