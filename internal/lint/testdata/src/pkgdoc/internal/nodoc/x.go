package nodoc // want "has no package-level doc comment"

// X is documented but the package is not.
func X() {}
