// Package withdoc carries the required package-level doc comment.
package withdoc

// X is exported but lives outside the module root, so only the package
// doc rule applies here.
func X() {}
