// Package checkpoint is a fixture that grew an envelope field without
// bumping the format version; the fingerprint pin must reject it.
package checkpoint

// Stream mirrors the real named-RNG-stream record.
type Stream struct {
	Name  string
	State [4]uint64
}

type envelope struct { // want "without bumping formatVersion"
	Version     int
	Generation  int
	Seed        uint64
	MemorySteps int
	Game        string
	Payoff      [4]float64
	UpdateRule  string
	Topology    string
	Label       string
	Strategies  [][]byte
	Resume      bool
	Engine      string
	Streams     []Stream
	PCEvents    int
	Adoptions   int
	Mutations   int
	GamesPlayed int64
	Extra       string
}

const formatVersion = 4

// keep the declarations referenced so the fixture type-checks cleanly.
var _ = envelope{Version: formatVersion}
