package lint

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

// MDLinks is the markdown link checker the old docs_links_test.go
// enforced, folded into the analyzer framework: every relative link in the
// repository's markdown files — README.md, the docs/ tree, the example
// READMEs — must point at a file or directory that exists, so the
// documentation tree cannot rot silently as the code moves.  External
// (http/https/mailto) links are not fetched; this lint is about
// intra-repository integrity.
var MDLinks = &Analyzer{
	Name: "mdlinks",
	Doc:  "relative markdown links must resolve to files that exist",
	Run:  runMDLinks,
}

// inlineLink matches [text](target) including image links; target may
// carry an optional title, which is stripped below.
var inlineLink = regexp.MustCompile(`\]\(([^)\s]+)(?:\s+"[^"]*")?\)`)

func runMDLinks(ctx *Context) {
	for _, file := range MarkdownFiles(ctx.Root) {
		content, err := os.ReadFile(file)
		if err != nil {
			ctx.ReportFile(file, 1, "unreadable markdown file: %v", err)
			continue
		}
		for i, line := range strings.Split(string(content), "\n") {
			for _, match := range inlineLink.FindAllStringSubmatch(line, -1) {
				target := match[1]
				switch {
				case strings.HasPrefix(target, "http://"),
					strings.HasPrefix(target, "https://"),
					strings.HasPrefix(target, "mailto:"):
					continue // external; not this lint's business
				case strings.HasPrefix(target, "#"):
					continue // intra-document anchor
				}
				// Strip an anchor suffix from a file link (docs/FOO.md#sec).
				stripped := target
				if j := strings.IndexByte(stripped, '#'); j >= 0 {
					stripped = stripped[:j]
				}
				if stripped == "" {
					continue
				}
				resolved := filepath.Join(filepath.Dir(file), filepath.FromSlash(stripped))
				if _, err := os.Stat(resolved); err != nil {
					ctx.ReportFile(file, i+1, "broken relative link %q (resolved to %s)", target, ctx.relFile(resolved))
				}
			}
		}
	}
}

// MarkdownFiles returns every markdown file under root the lint covers,
// skipping hidden trees and lint fixtures.  Exported so the repository
// self-run test can assert the checker is still wired to a non-empty doc
// tree.
func MarkdownFiles(root string) []string {
	var files []string
	filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return nil
		}
		if d.IsDir() {
			name := d.Name()
			if path != root && (strings.HasPrefix(name, ".") || name == "testdata") {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(d.Name(), ".md") {
			files = append(files, path)
		}
		return nil
	})
	return files
}
