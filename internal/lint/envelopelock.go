package lint

import (
	"go/ast"
	"go/printer"
	"go/token"
	"hash/fnv"
	"strconv"
	"strings"
)

// Pinned structural fingerprint of the checkpoint envelope.  The v1–v4
// compatibility matrix in docs/CHECKPOINT.md is only honest while the
// on-disk struct matches what that matrix describes, so any field
// add/remove/rename/retype must come with a formatVersion bump — and a
// deliberate update of this pin (plus the matrix, plus Read's back-compat
// defaults).  Regenerate the fingerprint with:
//
//	go run ./cmd/evolint -envelope-fingerprint
const (
	pinnedEnvelopeVersion     = 4
	pinnedEnvelopeFingerprint = 0xf7eef7ff68e9b1d6
)

// envelopePackage / envelopeStruct / envelopeVersionConst locate the pinned
// declaration inside the tree under analysis.
const (
	envelopePackage      = "internal/checkpoint"
	envelopeStruct       = "envelope"
	envelopeVersionConst = "formatVersion"
)

// EnvelopeLock pins the structural fingerprint of checkpoint's on-disk
// envelope struct: any field add/remove/rename/retype fails until the
// format version constant is bumped and the pin updated, keeping the v1–v4
// compatibility matrix honest.
var EnvelopeLock = &Analyzer{
	Name: "envelopelock",
	Doc:  "the checkpoint envelope struct may only change together with a formatVersion bump",
	Run:  runEnvelopeLock,
}

func runEnvelopeLock(ctx *Context) {
	pkg := ctx.PackageAt(envelopePackage)
	if pkg == nil {
		// Fixture trees without a checkpoint package simply do not
		// exercise this analyzer; the repository always has one, and the
		// self-run test fails on any load that misses it.
		return
	}
	st, pos := FindStruct(pkg, envelopeStruct)
	if st == nil {
		ctx.Reportf(pkg.Files[0].Pos(), "%s no longer declares struct %q: the envelope fingerprint pin has nothing to guard (update internal/lint/envelopelock.go)", envelopePackage, envelopeStruct)
		return
	}
	version, vpos, found := findIntConst(pkg, envelopeVersionConst)
	if !found {
		ctx.Reportf(pkg.Files[0].Pos(), "%s no longer declares const %q: the envelope version pin has nothing to guard (update internal/lint/envelopelock.go)", envelopePackage, envelopeVersionConst)
		return
	}
	if version != pinnedEnvelopeVersion {
		ctx.Reportf(vpos, "%s = %d but the envelopelock pin says %d: after auditing the docs/CHECKPOINT.md compat matrix, update pinnedEnvelopeVersion and pinnedEnvelopeFingerprint in internal/lint/envelopelock.go", envelopeVersionConst, version, pinnedEnvelopeVersion)
		return
	}
	got := EnvelopeFingerprint(ctx.Fset, st)
	if got != pinnedEnvelopeFingerprint {
		ctx.Reportf(pos, "struct %s changed (fingerprint %#x, pinned %#x) without bumping %s: checkpoint format changes need a version bump, Read back-compat defaults, a docs/CHECKPOINT.md row, and a new envelopelock pin", envelopeStruct, got, uint64(pinnedEnvelopeFingerprint), envelopeVersionConst)
	}
}

// EnvelopeFingerprint hashes the ordered field list of a struct type —
// names and printed types — with FNV-64a.  Exported so cmd/evolint can
// print the value to update the pin.
func EnvelopeFingerprint(fset *token.FileSet, st *ast.StructType) uint64 {
	h := fnv.New64a()
	for _, field := range st.Fields.List {
		var buf strings.Builder
		printer.Fprint(&buf, fset, field.Type)
		if len(field.Names) == 0 {
			h.Write([]byte("embedded " + buf.String() + ";"))
			continue
		}
		for _, name := range field.Names {
			h.Write([]byte(name.Name + " " + buf.String() + ";"))
		}
	}
	return h.Sum64()
}

// FindStruct locates a struct type declaration by name.  Exported so
// cmd/evolint can fingerprint the live envelope for pin updates.
func FindStruct(pkg *Package, name string) (*ast.StructType, token.Pos) {
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok || ts.Name.Name != name {
					continue
				}
				if st, ok := ts.Type.(*ast.StructType); ok {
					return st, ts.Pos()
				}
			}
		}
	}
	return nil, token.NoPos
}

// findIntConst locates an integer constant declaration by name and returns
// its literal value.
func findIntConst(pkg *Package, name string) (int, token.Pos, bool) {
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.CONST {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, id := range vs.Names {
					if id.Name != name || i >= len(vs.Values) {
						continue
					}
					if lit, ok := vs.Values[i].(*ast.BasicLit); ok && lit.Kind == token.INT {
						v, err := strconv.Atoi(lit.Value)
						if err == nil {
							return v, id.Pos(), true
						}
					}
				}
			}
		}
	}
	return 0, token.NoPos, false
}
