package lint

// Fixture-driven tests: each directory under testdata/src is an
// independent mini-module loaded with an empty module prefix, so a fixture
// directory named internal/trace mimics the real package's
// module-relative path.  Expectations ride in the fixtures themselves:
//
//	//lint:allow maporder reason   — suppression under test
//	// want "regex"                — a diagnostic on this line
//	// want-next "regex"           — a diagnostic on the next line (used
//	//                               where the flagged line is itself a
//	//                               comment, e.g. a malformed directive)
//
// Every want must be matched by exactly one diagnostic and every
// diagnostic by exactly one want, so fixtures prove both that analyzers
// fire on violations and that they stay quiet on the negative cases.

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// fixtureTrees lists the Go fixture trees and the analyzers the wants in
// each tree belong to (the full suite runs everywhere; scoping the
// comparison keeps unrelated analyzers from needing wants in every tree).
var fixtureTrees = []struct {
	name      string
	analyzers string
}{
	{"randsource", "randsource," + DirectiveAnalyzer},
	{"maporder", "maporder," + DirectiveAnalyzer},
	{"atomicmix", "atomicmix," + DirectiveAnalyzer},
	{"envelopelock", "envelopelock"},
	{"envelopelock_changed", "envelopelock"},
	{"envelopelock_version", "envelopelock"},
	{"errstyle", "errstyle," + DirectiveAnalyzer},
	{"pkgdoc", "pkgdoc"},
}

func TestFixtures(t *testing.T) {
	for _, tree := range fixtureTrees {
		tree := tree
		t.Run(tree.name, func(t *testing.T) {
			root := filepath.Join("testdata", "src", tree.name)
			ctx, err := Load(root, "")
			if err != nil {
				t.Fatal(err)
			}
			scope := map[string]bool{}
			for _, name := range strings.Split(tree.analyzers, ",") {
				scope[name] = true
			}
			var diags []Diagnostic
			for _, d := range Run(ctx, All()) {
				if scope[d.Analyzer] {
					diags = append(diags, d)
				} else {
					t.Errorf("out-of-scope diagnostic (add the analyzer to the tree's scope or fix the fixture): %s", d)
				}
			}
			matchWants(t, root, diags)
		})
	}
}

// wantMarker matches a // want, // want-next or // want+N comment and
// captures the offset and the quoted regex.  want+N markers expect the
// diagnostic N lines below — needed where a marker directly above the
// flagged line would itself become a doc comment and change the verdict.
var wantMarker = regexp.MustCompile(`// want(-next|\+\d+)? "([^"]*)"`)

// matchWants reads every fixture file under root, collects the want
// markers, and verifies a one-to-one match with the diagnostics.
func matchWants(t *testing.T, root string, diags []Diagnostic) {
	t.Helper()
	type want struct {
		file string
		line int
		re   *regexp.Regexp
		hit  bool
	}
	var wants []*want
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(path, ".go") {
			return err
		}
		data, readErr := os.ReadFile(path)
		if readErr != nil {
			return readErr
		}
		rel, relErr := filepath.Rel(root, path)
		if relErr != nil {
			return relErr
		}
		for i, line := range strings.Split(string(data), "\n") {
			m := wantMarker.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			w := &want{file: filepath.ToSlash(rel), line: i + 1, re: regexp.MustCompile(m[2])}
			switch {
			case m[1] == "-next":
				w.line++
			case strings.HasPrefix(m[1], "+"):
				n, convErr := strconv.Atoi(m[1][1:])
				if convErr != nil {
					return convErr
				}
				w.line += n
			}
			wants = append(wants, w)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		matched := false
		for _, w := range wants {
			if !w.hit && w.file == d.File && w.line == d.Line && w.re.MatchString(d.Message) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: want %q matched no diagnostic", w.file, w.line, w.re)
		}
	}
}

// TestMDLinksFixture exercises the markdown analyzer over its own fixture
// tree (markdown files cannot carry Go want markers).
func TestMDLinksFixture(t *testing.T) {
	ctx, err := Load(filepath.Join("testdata", "src", "mdlinks"), "")
	if err != nil {
		t.Fatal(err)
	}
	diags := Run(ctx, []*Analyzer{MDLinks})
	var got []string
	for _, d := range diags {
		got = append(got, fmt.Sprintf("%s:%d", d.File, d.Line))
		if !strings.Contains(d.Message, "broken relative link") {
			t.Errorf("unexpected message: %s", d)
		}
	}
	want := []string{"docs/GUIDE.md:5", "docs/GUIDE.md:9"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("mdlinks diagnostics = %v, want %v", got, want)
	}
}

// TestByName pins the analyzer registry lookup used by cmd/evolint -run.
func TestByName(t *testing.T) {
	got, err := ByName("errstyle, maporder")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].Name != "maporder" || got[1].Name != "errstyle" {
		t.Errorf("ByName returned %v in the wrong shape", got)
	}
	if _, err := ByName("nosuch"); err == nil {
		t.Error("ByName accepted an unknown analyzer")
	}
}
