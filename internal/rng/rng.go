// Package rng provides a deterministic, splittable pseudo-random number
// generator used throughout the evolutionary game dynamics framework.
//
// Reproducibility across ranks is essential for the parallel engine: the
// Nature Agent and every Strategy Set rank must be able to derive independent
// streams from a single experiment seed so that a run is bit-for-bit
// repeatable regardless of scheduling.  The generator is xoshiro256**, seeded
// through SplitMix64, which is the standard recipe recommended by the
// xoshiro authors and has no measurable correlation between streams split
// from distinct SplitMix64 outputs.
//
// The package intentionally does not use math/rand's global state: the
// framework needs many independent generators (one per rank, one per worker
// goroutine) with cheap construction and no locking.
package rng

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"math/bits"
)

// Source is a deterministic xoshiro256** generator.  It is NOT safe for
// concurrent use; each goroutine should own its own Source (use Split to
// derive child streams).
type Source struct {
	s [4]uint64
}

// splitmix64 advances the SplitMix64 state and returns the next output.
// It is used only for seeding xoshiro256** state words.
func splitmix64(state *uint64) uint64 {
	*state += 0x9E3779B97F4A7C15
	z := *state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// New returns a Source seeded from the given 64-bit seed.  Two Sources built
// from the same seed produce identical streams.
func New(seed uint64) *Source {
	s := &Source{}
	s.Reseed(seed)
	return s
}

// Reseed resets the generator to the state derived from seed.
func (s *Source) Reseed(seed uint64) {
	sm := seed
	for i := range s.s {
		s.s[i] = splitmix64(&sm)
	}
	// A state of all zeros is the one invalid xoshiro state; SplitMix64 can
	// only produce it with negligible probability, but guard regardless.
	if s.s[0]|s.s[1]|s.s[2]|s.s[3] == 0 {
		s.s[0] = 0x9E3779B97F4A7C15
	}
}

// Uint64 returns the next 64 uniformly distributed bits.
func (s *Source) Uint64() uint64 {
	result := bits.RotateLeft64(s.s[1]*5, 7) * 9
	t := s.s[1] << 17
	s.s[2] ^= s.s[0]
	s.s[3] ^= s.s[1]
	s.s[1] ^= s.s[2]
	s.s[0] ^= s.s[3]
	s.s[2] ^= t
	s.s[3] = bits.RotateLeft64(s.s[3], 45)
	return result
}

// Split derives a new, statistically independent Source from the current
// stream.  The parent stream is advanced.  Splitting is the supported way to
// hand independent generators to ranks and worker goroutines.
func (s *Source) Split() *Source {
	// Derive the child seed from two parent outputs mixed through SplitMix64
	// so that children of successive Split calls do not share obvious
	// structure with the parent's raw outputs.
	seed := s.Uint64() ^ bits.RotateLeft64(s.Uint64(), 32)
	return New(seed)
}

// SplitN returns n independent child Sources (see Split).
func (s *Source) SplitN(n int) []*Source {
	children := make([]*Source, n)
	for i := range children {
		children[i] = s.Split()
	}
	return children
}

// Float64 returns a uniformly distributed float64 in [0, 1).
func (s *Source) Float64() float64 {
	// 53 high bits -> uniform double in [0,1).
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniformly distributed int in [0, n).  It panics if n <= 0.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn called with non-positive n")
	}
	return int(s.Uint64n(uint64(n)))
}

// Uint64n returns a uniformly distributed uint64 in [0, n) using Lemire's
// nearly-divisionless bounded generation.  It panics if n == 0.
func (s *Source) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("rng: Uint64n called with n == 0")
	}
	hi, lo := bits.Mul64(s.Uint64(), n)
	if lo < n {
		threshold := -n % n
		for lo < threshold {
			hi, lo = bits.Mul64(s.Uint64(), n)
		}
	}
	return hi
}

// Bool returns true with probability p.  Values of p outside [0,1] are
// clamped.
func (s *Source) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return s.Float64() < p
}

// Coin returns true with probability 1/2.
func (s *Source) Coin() bool {
	return s.Uint64()&1 == 1
}

// NormFloat64 returns a normally distributed float64 with mean 0 and
// standard deviation 1, generated with the polar (Marsaglia) method.
func (s *Source) NormFloat64() float64 {
	for {
		u := 2*s.Float64() - 1
		v := 2*s.Float64() - 1
		q := u*u + v*v
		if q == 0 || q >= 1 {
			continue
		}
		return u * math.Sqrt(-2*math.Log(q)/q)
	}
}

// ExpFloat64 returns an exponentially distributed float64 with rate 1.
func (s *Source) ExpFloat64() float64 {
	for {
		u := s.Float64()
		if u > 0 {
			return -math.Log(u)
		}
	}
}

// Perm returns a uniformly random permutation of [0, n) using Fisher-Yates.
func (s *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	s.Shuffle(len(p), func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}

// Shuffle randomises the order of n elements using the provided swap
// function (Fisher-Yates).  It panics if n < 0.
func (s *Source) Shuffle(n int, swap func(i, j int)) {
	if n < 0 {
		panic("rng: Shuffle called with negative n")
	}
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		swap(i, j)
	}
}

// Pair returns two distinct indices drawn uniformly from [0, n).  It returns
// an error if n < 2 since no distinct pair exists.
func (s *Source) Pair(n int) (int, int, error) {
	if n < 2 {
		return 0, 0, errors.New("rng: Pair requires n >= 2")
	}
	a := s.Intn(n)
	b := s.Intn(n - 1)
	if b >= a {
		b++
	}
	return a, b, nil
}

// FillUint64 fills dst with uniformly distributed 64-bit values.
func (s *Source) FillUint64(dst []uint64) {
	for i := range dst {
		dst[i] = s.Uint64()
	}
}

// State returns a copy of the internal state, for checkpointing.
func (s *Source) State() [4]uint64 {
	return s.s
}

// SetState restores a state previously obtained from State.  It returns an
// error if the state is all zeros (invalid for xoshiro256**).
func (s *Source) SetState(state [4]uint64) error {
	if state[0]|state[1]|state[2]|state[3] == 0 {
		return errors.New("rng: all-zero state is invalid")
	}
	s.s = state
	return nil
}

// MarshalBinary implements encoding.BinaryMarshaler: the four state words
// in little-endian order, 32 bytes total.  Together with UnmarshalBinary it
// is the checkpoint subsystem's export/import path for RNG streams.
func (s *Source) MarshalBinary() ([]byte, error) {
	buf := make([]byte, 32)
	for i, w := range s.s {
		binary.LittleEndian.PutUint64(buf[8*i:], w)
	}
	return buf, nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler, restoring a state
// previously produced by MarshalBinary.  It rejects malformed lengths and
// the all-zero state (invalid for xoshiro256**).
func (s *Source) UnmarshalBinary(data []byte) error {
	if len(data) != 32 {
		return fmt.Errorf("rng: state is %d bytes, want 32", len(data))
	}
	var state [4]uint64
	for i := range state {
		state[i] = binary.LittleEndian.Uint64(data[8*i:])
	}
	return s.SetState(state)
}

// Jump advances the generator by 2^128 steps, equivalent to calling Uint64
// 2^128 times.  It can be used to generate non-overlapping subsequences for
// parallel computations as an alternative to Split.
func (s *Source) Jump() {
	jump := [4]uint64{0x180EC6D33CFD0ABA, 0xD5A61266F0C9392C, 0xA9582618E03FC9AA, 0x39ABDC4529B1661C}
	var s0, s1, s2, s3 uint64
	for _, j := range jump {
		for b := 0; b < 64; b++ {
			if j&(1<<uint(b)) != 0 {
				s0 ^= s.s[0]
				s1 ^= s.s[1]
				s2 ^= s.s[2]
				s3 ^= s.s[3]
			}
			s.Uint64()
		}
	}
	s.s[0], s.s[1], s.s[2], s.s[3] = s0, s1, s2, s3
}
