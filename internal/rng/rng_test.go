package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(12345)
	b := New(12345)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams from the same seed diverged at step %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("streams from different seeds agree on %d/100 outputs", same)
	}
}

func TestReseedRestartsStream(t *testing.T) {
	s := New(7)
	first := make([]uint64, 16)
	for i := range first {
		first[i] = s.Uint64()
	}
	s.Reseed(7)
	for i := range first {
		if got := s.Uint64(); got != first[i] {
			t.Fatalf("after Reseed, output %d = %d, want %d", i, got, first[i])
		}
	}
}

func TestFloat64Range(t *testing.T) {
	s := New(42)
	for i := 0; i < 10000; i++ {
		f := s.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	s := New(99)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += s.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("Float64 mean = %v, want ~0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	s := New(3)
	for n := 1; n <= 17; n++ {
		for i := 0; i < 1000; i++ {
			v := s.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) returned %d", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestUint64nPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Uint64n(0) did not panic")
		}
	}()
	New(1).Uint64n(0)
}

func TestIntnUniformity(t *testing.T) {
	s := New(8)
	const buckets = 10
	const draws = 100000
	counts := make([]int, buckets)
	for i := 0; i < draws; i++ {
		counts[s.Intn(buckets)]++
	}
	want := float64(draws) / buckets
	for b, c := range counts {
		if math.Abs(float64(c)-want) > want*0.1 {
			t.Fatalf("bucket %d has %d draws, want ~%.0f", b, c, want)
		}
	}
}

func TestBoolProbabilities(t *testing.T) {
	s := New(5)
	if s.Bool(0) {
		t.Fatal("Bool(0) returned true")
	}
	if !s.Bool(1) {
		t.Fatal("Bool(1) returned false")
	}
	if s.Bool(-0.5) {
		t.Fatal("Bool(-0.5) returned true")
	}
	if !s.Bool(1.5) {
		t.Fatal("Bool(1.5) returned false")
	}
	const n = 100000
	hits := 0
	for i := 0; i < n; i++ {
		if s.Bool(0.3) {
			hits++
		}
	}
	frac := float64(hits) / n
	if math.Abs(frac-0.3) > 0.02 {
		t.Fatalf("Bool(0.3) hit fraction %v, want ~0.3", frac)
	}
}

func TestCoinBalance(t *testing.T) {
	s := New(11)
	const n = 100000
	heads := 0
	for i := 0; i < n; i++ {
		if s.Coin() {
			heads++
		}
	}
	frac := float64(heads) / n
	if math.Abs(frac-0.5) > 0.02 {
		t.Fatalf("Coin fraction %v, want ~0.5", frac)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(1234)
	a := parent.Split()
	b := parent.Split()
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("split streams agree on %d/1000 outputs", same)
	}
}

func TestSplitDeterministic(t *testing.T) {
	p1 := New(77)
	p2 := New(77)
	c1 := p1.Split()
	c2 := p2.Split()
	for i := 0; i < 100; i++ {
		if c1.Uint64() != c2.Uint64() {
			t.Fatalf("split children from identical parents diverged at %d", i)
		}
	}
}

func TestSplitN(t *testing.T) {
	parent := New(55)
	kids := parent.SplitN(8)
	if len(kids) != 8 {
		t.Fatalf("SplitN(8) returned %d children", len(kids))
	}
	// All children should produce distinct first outputs.
	seen := map[uint64]bool{}
	for _, k := range kids {
		v := k.Uint64()
		if seen[v] {
			t.Fatalf("two children produced identical first output %d", v)
		}
		seen[v] = true
	}
}

func TestPerm(t *testing.T) {
	s := New(2)
	for _, n := range []int{0, 1, 5, 64} {
		p := s.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) has length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) = %v is not a permutation", n, p)
			}
			seen[v] = true
		}
	}
}

func TestShuffleNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Shuffle(-1) did not panic")
		}
	}()
	New(1).Shuffle(-1, func(i, j int) {})
}

func TestPair(t *testing.T) {
	s := New(9)
	if _, _, err := s.Pair(1); err == nil {
		t.Fatal("Pair(1) should error")
	}
	for i := 0; i < 10000; i++ {
		a, b, err := s.Pair(10)
		if err != nil {
			t.Fatal(err)
		}
		if a == b {
			t.Fatalf("Pair returned identical indices %d", a)
		}
		if a < 0 || a >= 10 || b < 0 || b >= 10 {
			t.Fatalf("Pair returned out-of-range indices %d, %d", a, b)
		}
	}
}

func TestPairCoversAllPairs(t *testing.T) {
	s := New(10)
	seen := map[[2]int]bool{}
	for i := 0; i < 20000; i++ {
		a, b, _ := s.Pair(4)
		seen[[2]int{a, b}] = true
	}
	// 4*3 ordered distinct pairs.
	if len(seen) != 12 {
		t.Fatalf("Pair(4) covered %d ordered pairs, want 12", len(seen))
	}
}

func TestNormFloat64Moments(t *testing.T) {
	s := New(21)
	const n = 200000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := s.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Fatalf("normal variance = %v, want ~1", variance)
	}
}

func TestExpFloat64Mean(t *testing.T) {
	s := New(22)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		v := s.ExpFloat64()
		if v < 0 {
			t.Fatalf("ExpFloat64 returned negative %v", v)
		}
		sum += v
	}
	mean := sum / n
	if math.Abs(mean-1) > 0.03 {
		t.Fatalf("exponential mean = %v, want ~1", mean)
	}
}

func TestStateRoundTrip(t *testing.T) {
	s := New(31)
	s.Uint64()
	s.Uint64()
	saved := s.State()
	want := make([]uint64, 10)
	for i := range want {
		want[i] = s.Uint64()
	}
	var restored Source
	if err := restored.SetState(saved); err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got := restored.Uint64(); got != want[i] {
			t.Fatalf("restored stream output %d = %d, want %d", i, got, want[i])
		}
	}
}

func TestSetStateRejectsZero(t *testing.T) {
	var s Source
	if err := s.SetState([4]uint64{}); err == nil {
		t.Fatal("SetState accepted the all-zero state")
	}
}

func TestJumpChangesState(t *testing.T) {
	a := New(17)
	b := New(17)
	b.Jump()
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("jumped stream agrees with original on %d/1000 outputs", same)
	}
}

func TestFillUint64(t *testing.T) {
	s := New(13)
	buf := make([]uint64, 64)
	s.FillUint64(buf)
	zero := 0
	for _, v := range buf {
		if v == 0 {
			zero++
		}
	}
	if zero > 1 {
		t.Fatalf("FillUint64 produced %d zero words out of 64", zero)
	}
}

// Property: Intn(n) always lies in [0, n) for any positive n and any seed.
func TestQuickIntnInRange(t *testing.T) {
	f := func(seed uint64, n uint16) bool {
		bound := int(n%1000) + 1
		s := New(seed)
		for i := 0; i < 50; i++ {
			v := s.Intn(bound)
			if v < 0 || v >= bound {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: identical seeds yield identical streams (determinism for any seed).
func TestQuickDeterminism(t *testing.T) {
	f := func(seed uint64) bool {
		a, b := New(seed), New(seed)
		for i := 0; i < 20; i++ {
			if a.Uint64() != b.Uint64() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Pair never returns equal indices.
func TestQuickPairDistinct(t *testing.T) {
	f := func(seed uint64, n uint8) bool {
		bound := int(n%100) + 2
		s := New(seed)
		a, b, err := s.Pair(bound)
		return err == nil && a != b && a >= 0 && a < bound && b >= 0 && b < bound
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkUint64(b *testing.B) {
	s := New(1)
	for i := 0; i < b.N; i++ {
		_ = s.Uint64()
	}
}

func BenchmarkFloat64(b *testing.B) {
	s := New(1)
	for i := 0; i < b.N; i++ {
		_ = s.Float64()
	}
}

func BenchmarkIntn(b *testing.B) {
	s := New(1)
	for i := 0; i < b.N; i++ {
		_ = s.Intn(4096)
	}
}

// TestMarshalBinaryRoundTrip holds the checkpoint export path to its
// contract: a source restored from MarshalBinary bytes continues the
// original stream exactly, and the original is not disturbed by marshaling.
func TestMarshalBinaryRoundTrip(t *testing.T) {
	src := New(2013)
	for i := 0; i < 100; i++ {
		src.Uint64()
	}
	data, err := src.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if len(data) != 32 {
		t.Fatalf("marshaled state is %d bytes, want 32", len(data))
	}
	restored := New(1)
	if err := restored.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if a, b := src.Uint64(), restored.Uint64(); a != b {
			t.Fatalf("restored stream diverged at draw %d: %d vs %d", i, b, a)
		}
	}
}

// TestUnmarshalBinaryRejectsInvalid covers the malformed-input paths: wrong
// length and the all-zero (xoshiro-invalid) state.
func TestUnmarshalBinaryRejectsInvalid(t *testing.T) {
	src := New(1)
	if err := src.UnmarshalBinary(make([]byte, 31)); err == nil {
		t.Error("accepted a 31-byte state")
	}
	if err := src.UnmarshalBinary(make([]byte, 33)); err == nil {
		t.Error("accepted a 33-byte state")
	}
	if err := src.UnmarshalBinary(make([]byte, 32)); err == nil {
		t.Error("accepted the all-zero state")
	}
	// The source must still work after rejected restores.
	src.Uint64()
}
