package bitvec

import (
	"testing"

	"evogame/internal/rng"
)

func TestBroadcast(t *testing.T) {
	if Broadcast(false) != 0 {
		t.Fatal("Broadcast(false) != 0")
	}
	if Broadcast(true) != ^uint64(0) {
		t.Fatal("Broadcast(true) != all-ones")
	}
}

// TestMuxSelect checks the multiplexer tree against a scalar per-lane table
// lookup for every selector width the game kernel uses (memory 1..6 means
// 2..12 planes).
func TestMuxSelect(t *testing.T) {
	src := rng.New(42)
	for planesN := 1; planesN <= 12; planesN++ {
		leavesN := 1 << uint(planesN)
		leaves := make([]uint64, leavesN)
		orig := make([]uint64, leavesN)
		for i := range leaves {
			leaves[i] = src.Uint64()
		}
		copy(orig, leaves)
		planes := make([]uint64, planesN)
		for j := range planes {
			planes[j] = src.Uint64()
		}
		got := MuxSelect(leaves, planes)
		for lane := 0; lane < Lanes; lane++ {
			s := 0
			for j, p := range planes {
				s |= int(p>>uint(lane)&1) << uint(j)
			}
			want := orig[s] >> uint(lane) & 1
			if got>>uint(lane)&1 != want {
				t.Fatalf("planes=%d lane=%d: selected state %d, got bit %d want %d",
					planesN, lane, s, got>>uint(lane)&1, want)
			}
		}
	}
}

func TestVerticalCounter(t *testing.T) {
	const adds = 500
	width := CounterWidth(adds)
	planes := make([]uint64, width)
	want := [Lanes]int{}
	src := rng.New(7)
	for i := 0; i < adds; i++ {
		ones := src.Uint64()
		CounterAdd(planes, ones)
		for lane := 0; lane < Lanes; lane++ {
			want[lane] += int(ones >> uint(lane) & 1)
		}
	}
	for lane := 0; lane < Lanes; lane++ {
		if got := CounterLane(planes, lane); got != want[lane] {
			t.Fatalf("lane %d: counter %d want %d", lane, got, want[lane])
		}
	}
}

func TestCounterWidth(t *testing.T) {
	for _, tc := range []struct{ max, want int }{
		{-1, 0}, {0, 0}, {1, 1}, {2, 2}, {3, 2}, {200, 8}, {255, 8}, {256, 9},
	} {
		if got := CounterWidth(tc.max); got != tc.want {
			t.Fatalf("CounterWidth(%d) = %d, want %d", tc.max, got, tc.want)
		}
	}
}
