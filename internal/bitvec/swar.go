package bitvec

// SWAR ("SIMD within a register") primitives for the bit-sliced batch game
// kernel (internal/game).  The kernel plays up to 64 independent games at
// once by assigning each game one bit position — a "lane" — of a uint64
// word, so a per-game boolean across the whole batch is a single word and a
// per-game small integer is a short array of words (a "vertical" counter:
// word i holds bit i of every lane's value).  These helpers are the word
// arithmetic the kernel's inner loop is made of; they know nothing about
// games and operate on raw []uint64 so the hot loop carries no Vector
// wrappers.

import "math/bits"

// Lanes is the number of independent lanes a single word carries.
const Lanes = 64

// Broadcast returns the word with every lane set to b: all ones when b is
// true, zero otherwise.
func Broadcast(b bool) uint64 {
	if b {
		return ^uint64(0)
	}
	return 0
}

// MuxSelect collapses the 2^len(planes) leaf words down to one word through
// a multiplexer tree: lane L of the result is leaves[s_L][L], where s_L is
// the integer whose bit j is lane L of planes[j].  In the batch kernel the
// leaves are a (broadcast or transposed) move table and the planes are the
// bit-sliced game states, so one call computes every lane's next move with
// no per-lane branching.
//
// The selection combines pairs in place, ascending-bit first, so leaves is
// destroyed; callers copy their table into a scratch slice.  len(leaves)
// must be exactly 1<<len(planes).
func MuxSelect(leaves []uint64, planes []uint64) uint64 {
	size := len(leaves)
	for _, sel := range planes {
		size >>= 1
		for i := 0; i < size; i++ {
			leaves[i] = (leaves[2*i] &^ sel) | (leaves[2*i+1] & sel)
		}
	}
	return leaves[0]
}

// CounterAdd adds the per-lane 0/1 word ones into the vertical counter
// planes with ripple carry: lane L of the counter gains ones' bit L.  Each
// lane's count occupies the same bit position of every plane, so carries
// never cross lanes.  A carry out of the last plane is dropped; callers
// size the counter with CounterWidth so that cannot happen.
func CounterAdd(planes []uint64, ones uint64) {
	for i := range planes {
		if ones == 0 {
			return
		}
		carry := planes[i] & ones
		planes[i] ^= ones
		ones = carry
	}
}

// CounterLane extracts lane L's count from a vertical counter.
func CounterLane(planes []uint64, lane int) int {
	c := 0
	for i, w := range planes {
		c |= int((w>>uint(lane))&1) << uint(i)
	}
	return c
}

// CounterWidth returns the number of planes a vertical counter needs to
// hold counts up to and including max.
func CounterWidth(max int) int {
	if max < 0 {
		return 0
	}
	return bits.Len(uint(max))
}
