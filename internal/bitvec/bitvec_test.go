package bitvec

import (
	"strings"
	"testing"
	"testing/quick"

	"evogame/internal/rng"
)

func TestNewZeroed(t *testing.T) {
	for _, n := range []int{0, 1, 63, 64, 65, 4096} {
		v := New(n)
		if v.Len() != n {
			t.Fatalf("New(%d).Len() = %d", n, v.Len())
		}
		if v.OnesCount() != 0 {
			t.Fatalf("New(%d) has %d set bits", n, v.OnesCount())
		}
	}
}

func TestNewNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(-1) did not panic")
		}
	}()
	New(-1)
}

func TestGetSetFlip(t *testing.T) {
	v := New(130)
	v.Set(0, true)
	v.Set(64, true)
	v.Set(129, true)
	for i := 0; i < 130; i++ {
		want := i == 0 || i == 64 || i == 129
		if v.Get(i) != want {
			t.Fatalf("bit %d = %v, want %v", i, v.Get(i), want)
		}
	}
	v.Flip(64)
	if v.Get(64) {
		t.Fatal("Flip did not clear bit 64")
	}
	v.Flip(64)
	if !v.Get(64) {
		t.Fatal("Flip did not set bit 64")
	}
	v.Set(0, false)
	if v.Get(0) {
		t.Fatal("Set(0,false) did not clear bit 0")
	}
	if v.OnesCount() != 2 {
		t.Fatalf("OnesCount = %d, want 2", v.OnesCount())
	}
}

func TestOutOfRangePanics(t *testing.T) {
	cases := []func(*Vector){
		func(v *Vector) { v.Get(-1) },
		func(v *Vector) { v.Get(10) },
		func(v *Vector) { v.Set(10, true) },
		func(v *Vector) { v.Flip(-2) },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("case %d did not panic", i)
				}
			}()
			fn(New(10))
		}()
	}
}

func TestHamming(t *testing.T) {
	a := New(100)
	b := New(100)
	a.Set(3, true)
	a.Set(70, true)
	b.Set(70, true)
	b.Set(99, true)
	d, err := a.Hamming(b)
	if err != nil {
		t.Fatal(err)
	}
	if d != 2 {
		t.Fatalf("Hamming = %d, want 2", d)
	}
	if _, err := a.Hamming(New(50)); err == nil {
		t.Fatal("Hamming accepted mismatched lengths")
	}
}

func TestEqualClone(t *testing.T) {
	src := rng.New(1)
	a := New(257)
	a.FillRandom(src)
	b := a.Clone()
	if !a.Equal(b) {
		t.Fatal("clone is not equal to original")
	}
	b.Flip(200)
	if a.Equal(b) {
		t.Fatal("Equal true after flipping a bit in the clone")
	}
	if a.Equal(New(256)) {
		t.Fatal("Equal true for different lengths")
	}
}

func TestCopyFrom(t *testing.T) {
	src := rng.New(2)
	a := New(100)
	a.FillRandom(src)
	b := New(100)
	if err := b.CopyFrom(a); err != nil {
		t.Fatal(err)
	}
	if !a.Equal(b) {
		t.Fatal("CopyFrom did not copy bits")
	}
	if err := b.CopyFrom(New(99)); err == nil {
		t.Fatal("CopyFrom accepted mismatched lengths")
	}
}

func TestZero(t *testing.T) {
	src := rng.New(3)
	v := New(500)
	v.FillRandom(src)
	v.Zero()
	if v.OnesCount() != 0 {
		t.Fatalf("Zero left %d set bits", v.OnesCount())
	}
}

func TestFillRandomMasksTail(t *testing.T) {
	src := rng.New(4)
	v := New(70) // 6 bits in the tail word
	v.FillRandom(src)
	if v.OnesCount() > 70 {
		t.Fatalf("OnesCount %d exceeds length 70", v.OnesCount())
	}
	// the tail word must not have bits above position 5
	if v.Word(1)>>6 != 0 {
		t.Fatalf("tail word has bits beyond the vector length: %x", v.Word(1))
	}
}

func TestFillRandomRoughlyBalanced(t *testing.T) {
	src := rng.New(5)
	v := New(4096)
	v.FillRandom(src)
	ones := v.OnesCount()
	if ones < 1800 || ones > 2300 {
		t.Fatalf("random 4096-bit vector has %d ones, expected ~2048", ones)
	}
}

func TestHexRoundTrip(t *testing.T) {
	src := rng.New(6)
	for _, n := range []int{1, 4, 16, 64, 100, 4096} {
		v := New(n)
		v.FillRandom(src)
		s := v.HexString()
		got, err := FromHexString(n, s)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if !v.Equal(got) {
			t.Fatalf("n=%d: hex round trip changed the vector", n)
		}
	}
}

func TestFromHexStringErrors(t *testing.T) {
	if _, err := FromHexString(64, "zz"); err == nil {
		t.Fatal("accepted invalid hex")
	}
	if _, err := FromHexString(64, "ff"); err == nil {
		t.Fatal("accepted wrong-length hex")
	}
	// 4 bits but encoding sets bit 7 -> out-of-range bit.
	if _, err := FromHexString(4, "800000000000000000"[:16]); err == nil {
		t.Fatal("accepted hex with bits beyond length")
	}
}

func TestStringParse(t *testing.T) {
	v, err := Parse("0101")
	if err != nil {
		t.Fatal(err)
	}
	if v.Len() != 4 || v.Get(0) || !v.Get(1) || v.Get(2) || !v.Get(3) {
		t.Fatalf("Parse(0101) produced %s", v.String())
	}
	if v.String() != "0101" {
		t.Fatalf("String() = %q", v.String())
	}
	if _, err := Parse("01x1"); err == nil {
		t.Fatal("Parse accepted an invalid character")
	}
	if got := New(0).String(); got != "" {
		t.Fatalf("empty vector String() = %q", got)
	}
}

func TestBooleanOps(t *testing.T) {
	a, _ := Parse("1100")
	b, _ := Parse("1010")
	and := a.Clone()
	if err := and.And(b); err != nil {
		t.Fatal(err)
	}
	if and.String() != "1000" {
		t.Fatalf("And = %s", and.String())
	}
	or := a.Clone()
	if err := or.Or(b); err != nil {
		t.Fatal(err)
	}
	if or.String() != "1110" {
		t.Fatalf("Or = %s", or.String())
	}
	xor := a.Clone()
	if err := xor.Xor(b); err != nil {
		t.Fatal(err)
	}
	if xor.String() != "0110" {
		t.Fatalf("Xor = %s", xor.String())
	}
	if err := a.And(New(5)); err == nil {
		t.Fatal("And accepted mismatched lengths")
	}
	if err := a.Or(New(5)); err == nil {
		t.Fatal("Or accepted mismatched lengths")
	}
	if err := a.Xor(New(5)); err == nil {
		t.Fatal("Xor accepted mismatched lengths")
	}
}

func TestNot(t *testing.T) {
	v, _ := Parse("0101")
	v.Not()
	if v.String() != "1010" {
		t.Fatalf("Not = %s", v.String())
	}
	// Not must not set bits beyond the length.
	w := New(70)
	w.Not()
	if w.OnesCount() != 70 {
		t.Fatalf("Not on zero vector of 70 bits has %d ones", w.OnesCount())
	}
}

func TestBytesLittleEndian(t *testing.T) {
	v := New(16)
	v.Set(0, true)
	v.Set(9, true)
	b := v.Bytes()
	if len(b) != 8 {
		t.Fatalf("Bytes length %d, want 8", len(b))
	}
	if b[0] != 0x01 || b[1] != 0x02 {
		t.Fatalf("Bytes = % x, want 01 02 ...", b[:2])
	}
}

func TestWordCount(t *testing.T) {
	if New(4096).WordCount() != 64 {
		t.Fatalf("4096-bit vector has %d words, want 64", New(4096).WordCount())
	}
	if New(1).WordCount() != 1 {
		t.Fatal("1-bit vector should have 1 word")
	}
	if New(0).WordCount() != 0 {
		t.Fatal("0-bit vector should have 0 words")
	}
}

// Property: String/Parse round trip is the identity.
func TestQuickStringParseRoundTrip(t *testing.T) {
	f := func(seed uint64, lenSel uint16) bool {
		n := int(lenSel%512) + 1
		v := New(n)
		v.FillRandom(rng.New(seed))
		got, err := Parse(v.String())
		return err == nil && got.Equal(v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Hamming distance equals the popcount of the XOR.
func TestQuickHammingXor(t *testing.T) {
	f := func(seedA, seedB uint64, lenSel uint16) bool {
		n := int(lenSel%512) + 1
		a, b := New(n), New(n)
		a.FillRandom(rng.New(seedA))
		b.FillRandom(rng.New(seedB))
		d, err := a.Hamming(b)
		if err != nil {
			return false
		}
		x := a.Clone()
		if err := x.Xor(b); err != nil {
			return false
		}
		return d == x.OnesCount()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: hex round trip preserves equality for arbitrary random vectors.
func TestQuickHexRoundTrip(t *testing.T) {
	f := func(seed uint64, lenSel uint16) bool {
		n := int(lenSel%1024) + 1
		v := New(n)
		v.FillRandom(rng.New(seed))
		got, err := FromHexString(n, v.HexString())
		return err == nil && got.Equal(v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Hamming distance is a metric on vectors of equal length
// (symmetry and identity of indiscernibles; triangle inequality on a sample).
func TestQuickHammingMetric(t *testing.T) {
	f := func(seedA, seedB, seedC uint64) bool {
		const n = 256
		a, b, c := New(n), New(n), New(n)
		a.FillRandom(rng.New(seedA))
		b.FillRandom(rng.New(seedB))
		c.FillRandom(rng.New(seedC))
		dab, _ := a.Hamming(b)
		dba, _ := b.Hamming(a)
		daa, _ := a.Hamming(a)
		dac, _ := a.Hamming(c)
		dcb, _ := c.Hamming(b)
		return dab == dba && daa == 0 && dab <= dac+dcb
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHexStringIsLowercase(t *testing.T) {
	v := New(64)
	v.Not()
	if s := v.HexString(); s != strings.ToLower(s) {
		t.Fatalf("HexString not lowercase: %q", s)
	}
}

func BenchmarkFillRandom4096(b *testing.B) {
	src := rng.New(1)
	v := New(4096)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		v.FillRandom(src)
	}
}

func BenchmarkHamming4096(b *testing.B) {
	src := rng.New(1)
	x, y := New(4096), New(4096)
	x.FillRandom(src)
	y.FillRandom(src)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, _ = x.Hamming(y)
	}
}
