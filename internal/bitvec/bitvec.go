// Package bitvec implements fixed-length packed bit vectors.
//
// Pure memory-n strategies in the Iterated Prisoner's Dilemma are functions
// from game states to a binary move (cooperate or defect).  For memory-six
// there are 4^6 = 4096 states, so a pure strategy is exactly a 4096-bit
// vector.  This package provides the packed representation that keeps the
// per-SSet memory footprint small enough for the paper's claim that
// memory-six is the largest strategy that fits in node memory, and supplies
// the operations the rest of the framework needs: random fill, Hamming
// distance (used by the k-means clustering of Figure 2), equality, and a
// compact hexadecimal encoding for checkpoints and the Nature Agent's global
// strategy table.
package bitvec

import (
	"encoding/hex"
	"errors"
	"fmt"
	"math/bits"
	"strings"

	"evogame/internal/rng"
)

const wordBits = 64

// Vector is a fixed-length bit vector.  The zero value is an empty vector of
// length 0; use New to create one of a given length.
type Vector struct {
	n     int
	words []uint64
}

// New returns a zeroed Vector of n bits.  It panics if n is negative.
func New(n int) *Vector {
	if n < 0 {
		panic("bitvec: negative length")
	}
	return &Vector{n: n, words: make([]uint64, wordsFor(n))}
}

func wordsFor(n int) int {
	return (n + wordBits - 1) / wordBits
}

// Len returns the number of bits in the vector.
func (v *Vector) Len() int { return v.n }

// Get reports whether bit i is set.  It panics if i is out of range.
func (v *Vector) Get(i int) bool {
	v.check(i)
	return v.words[i/wordBits]&(1<<(uint(i)%wordBits)) != 0
}

// Set sets bit i to b.  It panics if i is out of range.
func (v *Vector) Set(i int, b bool) {
	v.check(i)
	if b {
		v.words[i/wordBits] |= 1 << (uint(i) % wordBits)
	} else {
		v.words[i/wordBits] &^= 1 << (uint(i) % wordBits)
	}
}

// Flip inverts bit i.  It panics if i is out of range.
func (v *Vector) Flip(i int) {
	v.check(i)
	v.words[i/wordBits] ^= 1 << (uint(i) % wordBits)
}

func (v *Vector) check(i int) {
	if i < 0 || i >= v.n {
		panic(fmt.Sprintf("bitvec: index %d out of range [0,%d)", i, v.n))
	}
}

// OnesCount returns the number of set bits.
func (v *Vector) OnesCount() int {
	total := 0
	for _, w := range v.words {
		total += bits.OnesCount64(w)
	}
	return total
}

// Hamming returns the Hamming distance between v and u.  It returns an error
// if the lengths differ.
func (v *Vector) Hamming(u *Vector) (int, error) {
	if v.n != u.n {
		return 0, fmt.Errorf("bitvec: length mismatch %d vs %d", v.n, u.n)
	}
	d := 0
	for i := range v.words {
		d += bits.OnesCount64(v.words[i] ^ u.words[i])
	}
	return d, nil
}

// Equal reports whether v and u have the same length and identical bits.
func (v *Vector) Equal(u *Vector) bool {
	if v.n != u.n {
		return false
	}
	for i := range v.words {
		if v.words[i] != u.words[i] {
			return false
		}
	}
	return true
}

// Clone returns a deep copy of v.
func (v *Vector) Clone() *Vector {
	c := New(v.n)
	copy(c.words, v.words)
	return c
}

// CopyFrom overwrites v's bits with u's.  It returns an error if the lengths
// differ.
func (v *Vector) CopyFrom(u *Vector) error {
	if v.n != u.n {
		return fmt.Errorf("bitvec: length mismatch %d vs %d", v.n, u.n)
	}
	copy(v.words, u.words)
	return nil
}

// Zero clears every bit.
func (v *Vector) Zero() {
	for i := range v.words {
		v.words[i] = 0
	}
}

// FillRandom sets every bit uniformly at random using src.
func (v *Vector) FillRandom(src *rng.Source) {
	src.FillUint64(v.words)
	v.maskTail()
}

// maskTail clears any bits in the final word beyond the vector length so
// that Equal, OnesCount and the hex encoding are canonical.
func (v *Vector) maskTail() {
	rem := v.n % wordBits
	if rem != 0 && len(v.words) > 0 {
		v.words[len(v.words)-1] &= (1 << uint(rem)) - 1
	}
}

// Word returns the i-th 64-bit word of the packed representation.  Bits
// beyond Len are always zero.
func (v *Vector) Word(i int) uint64 {
	return v.words[i]
}

// WordCount returns the number of 64-bit words backing the vector.
func (v *Vector) WordCount() int { return len(v.words) }

// Bytes returns the packed little-endian byte representation.
func (v *Vector) Bytes() []byte {
	out := make([]byte, len(v.words)*8)
	for i, w := range v.words {
		for b := 0; b < 8; b++ {
			out[i*8+b] = byte(w >> (8 * uint(b)))
		}
	}
	return out
}

// HexString returns a canonical lowercase hexadecimal encoding of the packed
// bytes (little-endian word order).
func (v *Vector) HexString() string {
	return hex.EncodeToString(v.Bytes())
}

// FromHexString decodes a vector of n bits from a string previously produced
// by HexString.
func FromHexString(n int, s string) (*Vector, error) {
	raw, err := hex.DecodeString(s)
	if err != nil {
		return nil, fmt.Errorf("bitvec: decoding hex: %w", err)
	}
	v := New(n)
	if len(raw) != len(v.words)*8 {
		return nil, fmt.Errorf("bitvec: hex encodes %d bytes, want %d for %d bits", len(raw), len(v.words)*8, n)
	}
	for i := range v.words {
		var w uint64
		for b := 0; b < 8; b++ {
			w |= uint64(raw[i*8+b]) << (8 * uint(b))
		}
		v.words[i] = w
	}
	// Reject encodings that set bits beyond the declared length; they would
	// break canonical equality.
	tail := v.words[len(v.words)-1]
	v.maskTail()
	if len(v.words) > 0 && tail != v.words[len(v.words)-1] {
		return nil, errors.New("bitvec: hex string sets bits beyond vector length")
	}
	return v, nil
}

// String renders the vector as a string of '0' and '1' characters, index 0
// first.  Intended for debugging and the small strategy tables of the paper.
func (v *Vector) String() string {
	var sb strings.Builder
	sb.Grow(v.n)
	for i := 0; i < v.n; i++ {
		if v.Get(i) {
			sb.WriteByte('1')
		} else {
			sb.WriteByte('0')
		}
	}
	return sb.String()
}

// Parse builds a Vector from a string of '0' and '1' characters (index 0
// first), the inverse of String.
func Parse(s string) (*Vector, error) {
	v := New(len(s))
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '0':
		case '1':
			v.Set(i, true)
		default:
			return nil, fmt.Errorf("bitvec: invalid character %q at position %d", s[i], i)
		}
	}
	return v, nil
}

// And sets v to the bitwise AND of v and u.  It returns an error on length
// mismatch.
func (v *Vector) And(u *Vector) error {
	if v.n != u.n {
		return fmt.Errorf("bitvec: length mismatch %d vs %d", v.n, u.n)
	}
	for i := range v.words {
		v.words[i] &= u.words[i]
	}
	return nil
}

// Or sets v to the bitwise OR of v and u.  It returns an error on length
// mismatch.
func (v *Vector) Or(u *Vector) error {
	if v.n != u.n {
		return fmt.Errorf("bitvec: length mismatch %d vs %d", v.n, u.n)
	}
	for i := range v.words {
		v.words[i] |= u.words[i]
	}
	return nil
}

// Xor sets v to the bitwise XOR of v and u.  It returns an error on length
// mismatch.
func (v *Vector) Xor(u *Vector) error {
	if v.n != u.n {
		return fmt.Errorf("bitvec: length mismatch %d vs %d", v.n, u.n)
	}
	for i := range v.words {
		v.words[i] ^= u.words[i]
	}
	return nil
}

// Not inverts every bit in place.
func (v *Vector) Not() {
	for i := range v.words {
		v.words[i] = ^v.words[i]
	}
	v.maskTail()
}
