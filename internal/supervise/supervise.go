// Package supervise recovers simulation runs from rank failures.  It runs
// an engine in checkpointed segments, catches the typed failures the
// hardened fabric surfaces (mpi.ErrRankFailed, mpi.ErrDeadline,
// mpi.ErrSendFailed) and the injected faults of internal/faults,
// classifies them transient or fatal, and relaunches from the latest
// format-v4 envelope with bounded restarts and capped exponential
// backoff.
//
// Determinism under recovery: the v4 envelope captures the complete
// resume state of a run (strategy table, Nature Agent stream and event
// counters, generation; the serial engine adds its game stream), and
// resuming from it is bit-identical to never having stopped (pinned since
// the checkpoint PR).  Fault events are consumed as they fire, so a crash
// that already killed one attempt is not re-armed on the next.  Together
// these give the supervisor's contract: a run killed at any generation
// and recovered produces the same trajectory, final strategy table and
// event counters as the fault-free run — only the recovery counters
// (restarts, retried sends, recovery wall time) differ.
package supervise

import (
	"context"
	"errors"
	"fmt"
	"os"
	"time"

	"evogame/internal/checkpoint"
	"evogame/internal/faults"
	"evogame/internal/mpi"
	"evogame/internal/parallel"
	"evogame/internal/population"
)

// Default backoff bounds between restart attempts.
const (
	DefaultBackoffBase = 2 * time.Millisecond
	DefaultBackoffCap  = 250 * time.Millisecond
)

// Policy bounds the supervisor's recovery behaviour.
type Policy struct {
	// MaxRestarts is how many times a transiently-failed run is relaunched
	// before the supervisor gives up and returns the failure.  Zero means
	// no recovery: the first failure is final.
	MaxRestarts int
	// SegmentEvery is the checkpoint cadence in generations: the run is
	// segmented by a periodic save every SegmentEvery generations, and
	// recovery resumes from the newest complete segment.  Zero keeps the
	// config's own CheckpointEvery (recovery then restarts from scratch if
	// the run never checkpoints).
	SegmentEvery int
	// BackoffBase is the delay before the first relaunch, doubling per
	// restart; zero selects DefaultBackoffBase.
	BackoffBase time.Duration
	// BackoffCap bounds the exponential backoff; zero selects
	// DefaultBackoffCap.
	BackoffCap time.Duration
}

func (p Policy) validate() error {
	if p.MaxRestarts < 0 {
		return fmt.Errorf("supervise: MaxRestarts must be non-negative, got %d", p.MaxRestarts)
	}
	if p.SegmentEvery < 0 {
		return fmt.Errorf("supervise: SegmentEvery must be non-negative, got %d", p.SegmentEvery)
	}
	if p.BackoffBase < 0 {
		return fmt.Errorf("supervise: BackoffBase must be non-negative, got %v", p.BackoffBase)
	}
	if p.BackoffCap < 0 {
		return fmt.Errorf("supervise: BackoffCap must be non-negative, got %v", p.BackoffCap)
	}
	return nil
}

// backoff returns the capped exponential delay before the given restart
// (1-based).
func (p Policy) backoff(restart int) time.Duration {
	base := p.BackoffBase
	if base <= 0 {
		base = DefaultBackoffBase
	}
	cap := p.BackoffCap
	if cap <= 0 {
		cap = DefaultBackoffCap
	}
	d := base
	for i := 1; i < restart && d < cap; i++ {
		d *= 2
	}
	if d > cap {
		d = cap
	}
	return d
}

// Report describes what the supervisor did to finish (or give up on) a
// run.
type Report struct {
	// Restarts is the number of relaunches performed.
	Restarts int
	// Recovery is the wall time spent recovering: cleaning stale
	// checkpoint temporaries, reloading envelopes and backing off.
	Recovery time.Duration
	// Recovered lists the transient failures that were recovered from, in
	// order.
	Recovered []error
}

// Transient reports whether err is a failure the supervisor may recover
// from by relaunching: a rank death (mpi.ErrRankFailed), a blocking
// deadline (mpi.ErrDeadline), an exhausted send retry budget
// (mpi.ErrSendFailed) or any injected fault (faults.ErrInjected).
// Everything else — validation errors, checkpoint corruption, context
// cancellation — is fatal.
func Transient(err error) bool {
	return errors.Is(err, mpi.ErrRankFailed) ||
		errors.Is(err, mpi.ErrDeadline) ||
		errors.Is(err, mpi.ErrSendFailed) ||
		errors.Is(err, faults.ErrInjected)
}

// scratchCheckpoint creates an empty scratch path for a supervised run
// that did not configure its own checkpoint file, returning the path and
// a cleanup function.
func scratchCheckpoint() (string, func(), error) {
	f, err := os.CreateTemp("", "evogame-supervised-*.ckpt")
	if err != nil {
		return "", nil, fmt.Errorf("supervise: creating scratch checkpoint: %w", err)
	}
	path := f.Name()
	f.Close()
	// Remove the empty placeholder so a pre-first-segment failure sees "no
	// checkpoint yet" instead of a truncated envelope.
	os.Remove(path)
	cleanup := func() {
		os.Remove(path)
		checkpoint.RemoveStaleTemps(path)
	}
	return path, cleanup, nil
}

// RunParallel executes parallel.Run under supervision: the run is
// checkpointed every Policy.SegmentEvery generations, and when it fails
// transiently (see Transient) it is relaunched from the newest complete
// envelope — resumed bit-identically — up to Policy.MaxRestarts times
// with capped exponential backoff.  If the config names no
// CheckpointPath, a scratch file is used and removed afterwards.  The
// returned Result carries the supervisor's recovery counters in its
// Metrics (Restarts, RecoveryNanos).
func RunParallel(cfg parallel.Config, pol Policy) (parallel.Result, Report, error) {
	var rep Report
	if err := pol.validate(); err != nil {
		return parallel.Result{}, rep, err
	}
	run := cfg
	if run.CheckpointPath == "" {
		path, cleanup, err := scratchCheckpoint()
		if err != nil {
			return parallel.Result{}, rep, err
		}
		defer cleanup()
		run.CheckpointPath = path
		if run.CheckpointLabel == "" {
			run.CheckpointLabel = "supervised"
		}
	}
	if pol.SegmentEvery > 0 {
		run.CheckpointEvery = pol.SegmentEvery
	}
	// The absolute generation horizon: recovery always resumes toward it.
	total := cfg.Generations
	if cfg.Resume != nil {
		total += cfg.Resume.Generation
	}
	for {
		res, err := parallel.Run(run)
		if err == nil {
			res.Metrics.Restarts += rep.Restarts
			res.Metrics.RecoveryNanos += int64(rep.Recovery)
			return res, rep, nil
		}
		if !Transient(err) || rep.Restarts >= pol.MaxRestarts {
			return parallel.Result{}, rep, err
		}
		rep.Restarts++
		rep.Recovered = append(rep.Recovered, err)
		//lint:allow randsource wall-clock recovery-time accounting for Report.Recovery; never feeds simulation state
		began := time.Now()
		// An injected crash can strike between checkpoint.Save's temporary
		// write and its rename; drop any stranded partials before resuming.
		if _, rmErr := checkpoint.RemoveStaleTemps(run.CheckpointPath); rmErr != nil {
			return parallel.Result{}, rep, rmErr
		}
		if snap, loadErr := checkpoint.Load(run.CheckpointPath); loadErr == nil {
			run.Resume = &snap
			run.InitialStrategies = nil
			run.Generations = total - snap.Generation
		} else {
			// No complete segment yet: relaunch from the original config.
			run.Resume = cfg.Resume
			run.InitialStrategies = cfg.InitialStrategies
			run.Generations = cfg.Generations
		}
		time.Sleep(pol.backoff(rep.Restarts))
		rep.Recovery += time.Since(began)
	}
}

// RunSerial executes the serial engine under supervision, mirroring
// RunParallel for population.Model runs: segments are checkpointed every
// Policy.SegmentEvery generations, transient failures (injected crashes)
// are recovered by restoring the newest envelope, and the trajectory
// samples of all attempts are stitched into the exact sample sequence an
// uninterrupted run records.
func RunSerial(ctx context.Context, cfg population.Config, generations int, pol Policy) (population.Result, Report, error) {
	var rep Report
	if err := pol.validate(); err != nil {
		return population.Result{}, rep, err
	}
	if generations < 0 {
		return population.Result{}, rep, fmt.Errorf("supervise: negative generation count %d", generations)
	}
	run := cfg
	if run.CheckpointPath == "" {
		path, cleanup, err := scratchCheckpoint()
		if err != nil {
			return population.Result{}, rep, err
		}
		defer cleanup()
		run.CheckpointPath = path
		if run.CheckpointLabel == "" {
			run.CheckpointLabel = "supervised"
		}
	}
	if pol.SegmentEvery > 0 {
		run.CheckpointEvery = pol.SegmentEvery
	}
	model, err := population.New(run)
	if err != nil {
		return population.Result{}, rep, err
	}
	// kept accumulates trajectory samples from failed attempts up to the
	// newest checkpoint; the portion past it is replayed after resume.
	var kept []population.AbundanceSample
	remaining := generations
	for {
		res, err := model.Run(ctx, remaining)
		if err == nil {
			res.Samples = append(kept, res.Samples...)
			res.Metrics.Restarts += rep.Restarts
			res.Metrics.RecoveryNanos += int64(rep.Recovery)
			return res, rep, nil
		}
		if !Transient(err) || rep.Restarts >= pol.MaxRestarts {
			return population.Result{}, rep, err
		}
		rep.Restarts++
		rep.Recovered = append(rep.Recovered, err)
		//lint:allow randsource wall-clock recovery-time accounting for Report.Recovery; never feeds simulation state
		began := time.Now()
		if _, rmErr := checkpoint.RemoveStaleTemps(run.CheckpointPath); rmErr != nil {
			return population.Result{}, rep, rmErr
		}
		if snap, loadErr := checkpoint.Load(run.CheckpointPath); loadErr == nil {
			restored, restErr := population.Restore(run, snap)
			if restErr != nil {
				return population.Result{}, rep, restErr
			}
			for _, s := range res.Samples {
				if s.Generation <= snap.Generation {
					kept = append(kept, s)
				}
			}
			model = restored
			remaining = generations - snap.Generation
		} else {
			// No complete segment yet: restart from scratch.
			fresh, newErr := population.New(run)
			if newErr != nil {
				return population.Result{}, rep, newErr
			}
			kept = nil
			model = fresh
			remaining = generations
		}
		time.Sleep(pol.backoff(rep.Restarts))
		rep.Recovery += time.Since(began)
	}
}
