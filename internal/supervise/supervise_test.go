package supervise

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"evogame/internal/faults"
	"evogame/internal/game"
	"evogame/internal/mpi"
	"evogame/internal/parallel"
	"evogame/internal/population"
	"evogame/internal/topology"
)

func mustKernel(t *testing.T, name string) game.KernelMode {
	t.Helper()
	k, err := game.ParseKernelMode(name)
	if err != nil {
		t.Fatal(err)
	}
	return k
}

func mustTopology(t *testing.T, spec string) topology.Spec {
	t.Helper()
	s, err := topology.Parse(spec)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func parallelCfg(t *testing.T, gens int, noise float64, topoSpec, kernel string) parallel.Config {
	t.Helper()
	return parallel.Config{
		Ranks:         4,
		NumSSets:      12,
		AgentsPerSSet: 2,
		MemorySteps:   1,
		Rounds:        50,
		Noise:         noise,
		PCRate:        1,
		MutationRate:  0.2,
		Beta:          1,
		Generations:   gens,
		Seed:          42,
		OptLevel:      parallel.OptFusedFitness,
		Topology:      mustTopology(t, topoSpec),
		Kernel:        mustKernel(t, kernel),
	}
}

func serialCfg(noise float64) population.Config {
	return population.Config{
		NumSSets:      16,
		AgentsPerSSet: 2,
		MemorySteps:   1,
		Rounds:        50,
		Noise:         noise,
		PCRate:        1,
		MutationRate:  0.2,
		Beta:          1,
		Seed:          42,
		SampleEvery:   5,
		Workers:       2,
	}
}

// compareParallel asserts the recovered run is bit-identical to the
// fault-free golden: same final strategy table, same cumulative event
// counts.
func compareParallel(t *testing.T, golden, recovered parallel.Result) {
	t.Helper()
	if len(golden.FinalStrategies) != len(recovered.FinalStrategies) {
		t.Fatalf("strategy table sizes differ: %d vs %d", len(golden.FinalStrategies), len(recovered.FinalStrategies))
	}
	for i := range golden.FinalStrategies {
		if golden.FinalStrategies[i].String() != recovered.FinalStrategies[i].String() {
			t.Fatalf("strategy %d diverged: %s vs %s", i, golden.FinalStrategies[i], recovered.FinalStrategies[i])
		}
	}
	if golden.NatureStats != recovered.NatureStats {
		t.Fatalf("event counts diverged: %+v vs %+v", golden.NatureStats, recovered.NatureStats)
	}
	if golden.Generations != recovered.Generations {
		t.Fatalf("generations diverged: %d vs %d", golden.Generations, recovered.Generations)
	}
}

// TestChaosMatrixParallelRecoveryBitIdentical is the chaos matrix of the
// fault-tolerant tier: every fault kind, against both the Nature Agent
// (rank 0) and an SSet rank, on both a well-mixed and a ring topology,
// under both deterministic-game kernels.  Each supervised run must finish
// bit-identically to the fault-free golden of the same configuration.
func TestChaosMatrixParallelRecoveryBitIdentical(t *testing.T) {
	const gens = 40
	kinds := []faults.Kind{faults.Crash, faults.Drop, faults.Delay}
	targets := []int{0, 2} // Nature Agent and an SSet rank
	topos := []string{"wellmixed", "ring:4"}
	kernels := []string{"auto", "full-replay"}

	goldens := map[string]parallel.Result{}
	for _, topo := range topos {
		for _, kernel := range kernels {
			g, err := parallel.Run(parallelCfg(t, gens, 0, topo, kernel))
			if err != nil {
				t.Fatalf("golden %s/%s: %v", topo, kernel, err)
			}
			goldens[topo+"/"+kernel] = g
		}
	}

	for _, kind := range kinds {
		for _, target := range targets {
			for _, topo := range topos {
				for _, kernel := range kernels {
					kind, target, topo, kernel := kind, target, topo, kernel
					name := fmt.Sprintf("%s/r%d/%s/%s", kind, target, topo, kernel)
					t.Run(name, func(t *testing.T) {
						ev := faults.Event{Kind: kind, Gen: 17, Rank: target}
						if kind == faults.Drop {
							// Enough consecutive drops to exhaust the default
							// retry budget exactly once, then stay quiet so
							// the relaunched run sails through.
							ev.Count = mpi.DefaultSendRetries + 1
						}
						cfg := parallelCfg(t, gens, 0, topo, kernel)
						cfg.Faults = faults.NewPlan(ev)
						res, rep, err := RunParallel(cfg, Policy{MaxRestarts: 3, SegmentEvery: 8})
						if err != nil {
							t.Fatalf("supervised run failed permanently: %v", err)
						}
						if kind != faults.Delay && rep.Restarts == 0 {
							t.Fatalf("fault %v never fired: 0 restarts", ev)
						}
						compareParallel(t, goldens[topo+"/"+kernel], res)
						if res.Metrics.Restarts != rep.Restarts {
							t.Errorf("Metrics.Restarts = %d, Report.Restarts = %d", res.Metrics.Restarts, rep.Restarts)
						}
						if rep.Restarts > 0 && res.Metrics.RecoveryNanos <= 0 {
							t.Errorf("RecoveryNanos = %d after %d restarts", res.Metrics.RecoveryNanos, rep.Restarts)
						}
					})
				}
			}
		}
	}
}

// TestRandomMidRunCrashRecovery is the acceptance criterion: a rank crash
// at a seed-derived mid-run generation recovers via the supervisor
// bit-identically, for both engines, noiseless and noisy.
func TestRandomMidRunCrashRecovery(t *testing.T) {
	const gens = 40
	for _, noise := range []float64{0, 0.05} {
		noise := noise
		// A seed-derived random mid-run generation and rank (parallel).
		evs := faults.RandomEvents(2013, 1, gens, 4)
		crashGen, crashRank := evs[0].Gen, evs[0].Rank
		t.Run(fmt.Sprintf("parallel/noise=%v", noise), func(t *testing.T) {
			golden, err := parallel.Run(parallelCfg(t, gens, noise, "wellmixed", "auto"))
			if err != nil {
				t.Fatal(err)
			}
			cfg := parallelCfg(t, gens, noise, "wellmixed", "auto")
			cfg.Faults = faults.NewPlan(faults.Event{Kind: faults.Crash, Gen: crashGen, Rank: crashRank})
			res, rep, err := RunParallel(cfg, Policy{MaxRestarts: 2, SegmentEvery: 7})
			if err != nil {
				t.Fatal(err)
			}
			if rep.Restarts != 1 {
				t.Fatalf("Restarts = %d, want 1", rep.Restarts)
			}
			compareParallel(t, golden, res)
		})
		t.Run(fmt.Sprintf("serial/noise=%v", noise), func(t *testing.T) {
			base := serialCfg(noise)
			model, err := population.New(base)
			if err != nil {
				t.Fatal(err)
			}
			golden, err := model.Run(context.Background(), gens)
			if err != nil {
				t.Fatal(err)
			}
			cfg := serialCfg(noise)
			cfg.Faults = faults.NewPlan(faults.Event{Kind: faults.Crash, Gen: crashGen, Rank: 0})
			res, rep, err := RunSerial(context.Background(), cfg, gens, Policy{MaxRestarts: 2, SegmentEvery: 7})
			if err != nil {
				t.Fatal(err)
			}
			if rep.Restarts != 1 {
				t.Fatalf("Restarts = %d, want 1", rep.Restarts)
			}
			compareSerial(t, golden, res)
		})
	}
}

// compareSerial asserts strategy-table, event-count and full
// sample-trajectory equality between a golden and a recovered serial run.
func compareSerial(t *testing.T, golden, recovered population.Result) {
	t.Helper()
	if len(golden.FinalStrategies) != len(recovered.FinalStrategies) {
		t.Fatalf("strategy table sizes differ: %d vs %d", len(golden.FinalStrategies), len(recovered.FinalStrategies))
	}
	for i := range golden.FinalStrategies {
		if golden.FinalStrategies[i].String() != recovered.FinalStrategies[i].String() {
			t.Fatalf("strategy %d diverged: %s vs %s", i, golden.FinalStrategies[i], recovered.FinalStrategies[i])
		}
	}
	if golden.NatureStats != recovered.NatureStats {
		t.Fatalf("event counts diverged: %+v vs %+v", golden.NatureStats, recovered.NatureStats)
	}
	if golden.Generations != recovered.Generations {
		t.Fatalf("generations diverged: %d vs %d", golden.Generations, recovered.Generations)
	}
	if len(golden.Samples) != len(recovered.Samples) {
		t.Fatalf("sample counts diverged: %d vs %d", len(golden.Samples), len(recovered.Samples))
	}
	for i := range golden.Samples {
		if golden.Samples[i] != recovered.Samples[i] {
			t.Fatalf("sample %d diverged: %+v vs %+v", i, golden.Samples[i], recovered.Samples[i])
		}
	}
	if golden.TotalGamesPlayed != recovered.TotalGamesPlayed {
		t.Fatalf("games diverged: %d vs %d", golden.TotalGamesPlayed, recovered.TotalGamesPlayed)
	}
}

// TestSerialCrashBeforeFirstCheckpointRestartsFresh pins the no-segment
// path: a crash before any checkpoint exists relaunches from scratch, the
// consumed event does not re-fire, and the result is still bit-identical.
func TestSerialCrashBeforeFirstCheckpointRestartsFresh(t *testing.T) {
	const gens = 30
	base := serialCfg(0)
	model, err := population.New(base)
	if err != nil {
		t.Fatal(err)
	}
	golden, err := model.Run(context.Background(), gens)
	if err != nil {
		t.Fatal(err)
	}
	cfg := serialCfg(0)
	cfg.Faults = faults.NewPlan(faults.Event{Kind: faults.Crash, Gen: 2, Rank: 0})
	res, rep, err := RunSerial(context.Background(), cfg, gens, Policy{MaxRestarts: 1, SegmentEvery: 20})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Restarts != 1 {
		t.Fatalf("Restarts = %d, want 1", rep.Restarts)
	}
	compareSerial(t, golden, res)
}

// TestSupervisorGivesUpAfterMaxRestarts pins the bounded-retry contract: a
// permanent fault exhausts MaxRestarts and surfaces the transient error.
func TestSupervisorGivesUpAfterMaxRestarts(t *testing.T) {
	cfg := serialCfg(0)
	cfg.Faults = faults.NewPlan(faults.Event{Kind: faults.Crash, Gen: 1, Rank: 0, Count: -1})
	_, rep, err := RunSerial(context.Background(), cfg, 30, Policy{MaxRestarts: 2, SegmentEvery: 5, BackoffBase: time.Microsecond})
	if err == nil {
		t.Fatal("permanent crash recovered; want failure")
	}
	if !errors.Is(err, faults.ErrInjected) {
		t.Fatalf("error %v, want faults.ErrInjected", err)
	}
	if rep.Restarts != 2 {
		t.Fatalf("Restarts = %d, want MaxRestarts=2", rep.Restarts)
	}
	if len(rep.Recovered) != 2 {
		t.Fatalf("Recovered records %d failures, want 2", len(rep.Recovered))
	}
}

// TestFatalErrorsAreNotRetried pins the transient/fatal classification on
// the run path: context cancellation is fatal and performs no restarts.
func TestFatalErrorsAreNotRetried(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cfg := serialCfg(0)
	_, rep, err := RunSerial(ctx, cfg, 30, Policy{MaxRestarts: 5, SegmentEvery: 5})
	if err == nil {
		t.Fatal("cancelled run succeeded")
	}
	if rep.Restarts != 0 {
		t.Fatalf("fatal error was retried %d times", rep.Restarts)
	}
}

func TestTransientClassification(t *testing.T) {
	transient := []error{
		mpi.ErrRankFailed,
		mpi.ErrDeadline,
		mpi.ErrSendFailed,
		faults.ErrInjected,
		&faults.CrashError{Rank: 1, Gen: 3},
		&mpi.RankError{Rank: 2, Gen: 5, Err: errors.New("x")},
		fmt.Errorf("wrapped: %w", mpi.ErrDeadline),
	}
	for _, err := range transient {
		if !Transient(err) {
			t.Errorf("Transient(%v) = false, want true", err)
		}
	}
	fatal := []error{
		nil,
		errors.New("validation: NumSSets must be at least 2"),
		context.Canceled,
		os.ErrNotExist,
	}
	for _, err := range fatal {
		if Transient(err) {
			t.Errorf("Transient(%v) = true, want false", err)
		}
	}
}

func TestPolicyValidation(t *testing.T) {
	bad := []Policy{
		{MaxRestarts: -1},
		{SegmentEvery: -1},
		{BackoffBase: -time.Second},
		{BackoffCap: -time.Second},
	}
	for i, pol := range bad {
		if _, _, err := RunSerial(context.Background(), serialCfg(0), 5, pol); err == nil {
			t.Errorf("case %d: invalid policy accepted", i)
		}
		if _, _, err := RunParallel(parallelCfg(t, 5, 0, "wellmixed", "auto"), pol); err == nil {
			t.Errorf("case %d: invalid policy accepted by RunParallel", i)
		}
	}
	if _, _, err := RunSerial(context.Background(), serialCfg(0), -1, Policy{}); err == nil {
		t.Error("negative generation count accepted")
	}
}

func TestBackoffDoublesAndCaps(t *testing.T) {
	pol := Policy{BackoffBase: time.Millisecond, BackoffCap: 4 * time.Millisecond}
	want := []time.Duration{
		1: time.Millisecond,
		2: 2 * time.Millisecond,
		3: 4 * time.Millisecond,
		4: 4 * time.Millisecond, // capped
	}
	for restart := 1; restart < len(want); restart++ {
		if got := pol.backoff(restart); got != want[restart] {
			t.Errorf("backoff(%d) = %v, want %v", restart, got, want[restart])
		}
	}
	if d := (Policy{}).backoff(1); d != DefaultBackoffBase {
		t.Errorf("zero-policy backoff(1) = %v, want %v", d, DefaultBackoffBase)
	}
}

// TestRecoverySweepsStaleCheckpointTemps is the integration side of the
// stale-temporary satellite: a partial envelope stranded next to the
// checkpoint (as an injected crash between temp-write and rename would
// leave) is removed by the supervisor's recovery sweep, and the checkpoint
// itself stays usable.
func TestRecoverySweepsStaleCheckpointTemps(t *testing.T) {
	const gens = 30
	dir := t.TempDir()
	path := filepath.Join(dir, "run.ckpt")
	stale := path + ".tmp-314159"
	if err := os.WriteFile(stale, []byte("partial envelope"), 0o644); err != nil {
		t.Fatal(err)
	}
	base := serialCfg(0)
	model, err := population.New(base)
	if err != nil {
		t.Fatal(err)
	}
	golden, err := model.Run(context.Background(), gens)
	if err != nil {
		t.Fatal(err)
	}
	cfg := serialCfg(0)
	cfg.CheckpointPath = path
	cfg.Faults = faults.NewPlan(faults.Event{Kind: faults.Crash, Gen: 12, Rank: 0})
	res, rep, err := RunSerial(context.Background(), cfg, gens, Policy{MaxRestarts: 2, SegmentEvery: 5})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Restarts != 1 {
		t.Fatalf("Restarts = %d, want 1", rep.Restarts)
	}
	if _, err := os.Stat(stale); !os.IsNotExist(err) {
		t.Error("stale checkpoint temporary survived supervised recovery")
	}
	compareSerial(t, golden, res)
}
