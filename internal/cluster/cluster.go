// Package cluster models the supercomputers the paper's experiments ran on —
// IBM Blue Gene/P and Blue Gene/Q — at the level of detail the performance
// model needs: node counts and core counts, memory per node, torus topology
// and link parameters for point-to-point traffic, and the dedicated
// collective network used for broadcasts.
//
// None of that hardware is available to this reproduction, so the machine
// models serve two purposes.  First, they let internal/perfmodel extrapolate
// measured per-game compute costs and per-message communication costs to the
// paper's processor counts (up to 294,912 cores) and regenerate the shape of
// the weak- and strong-scaling curves of Figure 6 and Table VI.  Second,
// they reproduce the paper's memory-capacity argument that memory-six is the
// largest strategy depth that fits in node memory (Section V-C).
package cluster

import (
	"fmt"
	"math"

	"evogame/internal/strategy"
)

// Network describes the communication fabric of a machine.
type Network struct {
	// PointToPointLatency is the zero-byte one-way latency of a
	// point-to-point message between neighbouring nodes.
	PointToPointLatency float64 // seconds
	// PerHopLatency is the additional latency per torus hop.
	PerHopLatency float64 // seconds
	// LinkBandwidth is the per-link bandwidth available to a point-to-point
	// message.
	LinkBandwidth float64 // bytes per second
	// CollectiveLatency is the base latency of an operation on the
	// collective network (broadcast / reduction tree).
	CollectiveLatency float64 // seconds
	// CollectivePerStage is the additional latency per tree stage
	// (log2 of the node count).
	CollectivePerStage float64 // seconds
	// CollectiveBandwidth is the payload bandwidth of the collective
	// network.
	CollectiveBandwidth float64 // bytes per second
	// TorusDimensions is the dimensionality of the torus (3 for Blue
	// Gene/P, 5 for Blue Gene/Q).
	TorusDimensions int
}

// Machine describes one supercomputer configuration.
type Machine struct {
	Name           string
	CoresPerNode   int
	ThreadsPerCore int
	MemoryPerNode  int64 // bytes
	MaxNodes       int
	// CoreGFlops is the nominal per-core peak in GFlop/s; only used for
	// descriptive output, never for time estimates.
	CoreGFlops float64
	Network    Network
}

// MaxProcessors returns the machine's maximum number of MPI tasks when one
// task is placed per core (virtual-node mode on Blue Gene/P, 16 tasks per
// node on Blue Gene/Q as in the paper's runs).
func (m Machine) MaxProcessors() int { return m.MaxNodes * m.CoresPerNode }

// BlueGeneP returns the Blue Gene/P model used for the paper's large-scale
// runs: 72 racks, 73,728 nodes, 4 cores per node (294,912 cores), 2 GB per
// node (the Intrepid/JUGENE configuration), 3D torus at 425 MB/s per link
// and a dedicated collective network.
func BlueGeneP() Machine {
	return Machine{
		Name:           "BlueGene/P",
		CoresPerNode:   4,
		ThreadsPerCore: 1,
		MemoryPerNode:  2 << 30,
		MaxNodes:       73728,
		CoreGFlops:     3.4,
		Network: Network{
			PointToPointLatency: 3.0e-6,
			PerHopLatency:       0.1e-6,
			LinkBandwidth:       425e6,
			CollectiveLatency:   2.5e-6,
			CollectivePerStage:  0.1e-6,
			CollectiveBandwidth: 850e6,
			TorusDimensions:     3,
		},
	}
}

// BlueGeneQ returns the Blue Gene/Q model used for the paper's runs up to
// 16,384 tasks: 16 cores per node with 4 hardware threads each, 16 GB per
// node, 5D torus at 2 GB/s per link (32 GB/s aggregate per node as cited in
// the paper), 204.8 GFlop/s per node.
func BlueGeneQ() Machine {
	return Machine{
		Name:           "BlueGene/Q",
		CoresPerNode:   16,
		ThreadsPerCore: 4,
		MemoryPerNode:  16 << 30,
		MaxNodes:       1024 * 48, // up to 48 racks (Sequoia-class); the paper used up to 512 nodes
		CoreGFlops:     12.8,
		Network: Network{
			PointToPointLatency: 2.5e-6,
			PerHopLatency:       0.04e-6,
			LinkBandwidth:       2e9,
			CollectiveLatency:   2.0e-6,
			CollectivePerStage:  0.05e-6,
			CollectiveBandwidth: 4e9,
			TorusDimensions:     5,
		},
	}
}

// Nodes returns the number of nodes needed to host the given number of MPI
// tasks at tasksPerNode density, and an error if it exceeds the machine.
func (m Machine) Nodes(tasks, tasksPerNode int) (int, error) {
	if tasks <= 0 {
		return 0, fmt.Errorf("cluster: tasks must be positive, got %d", tasks)
	}
	if tasksPerNode <= 0 {
		return 0, fmt.Errorf("cluster: tasksPerNode must be positive, got %d", tasksPerNode)
	}
	maxTasksPerNode := m.CoresPerNode * m.ThreadsPerCore
	if tasksPerNode > maxTasksPerNode {
		return 0, fmt.Errorf("cluster: %d tasks per node exceeds %s's %d hardware threads",
			tasksPerNode, m.Name, maxTasksPerNode)
	}
	nodes := (tasks + tasksPerNode - 1) / tasksPerNode
	if nodes > m.MaxNodes {
		return 0, fmt.Errorf("cluster: %d nodes exceed %s's %d nodes", nodes, m.Name, m.MaxNodes)
	}
	return nodes, nil
}

// TorusDims returns a near-cubic factorisation of nodeCount into the
// machine's torus dimensionality; it is used to estimate hop counts.
func TorusDims(nodeCount, dims int) []int {
	if nodeCount < 1 || dims < 1 {
		return nil
	}
	out := make([]int, dims)
	for i := range out {
		out[i] = 1
	}
	remaining := nodeCount
	for i := 0; i < dims; i++ {
		// Ideal extent of the remaining dimensions.
		ideal := math.Pow(float64(remaining), 1/float64(dims-i))
		extent := int(math.Round(ideal))
		if extent < 1 {
			extent = 1
		}
		// Choose the divisor of remaining closest to the ideal extent so the
		// product always equals nodeCount.
		best := 1
		bestDelta := math.MaxFloat64
		for d := 1; d <= remaining; d++ {
			if remaining%d != 0 {
				continue
			}
			delta := math.Abs(float64(d) - float64(extent))
			if delta < bestDelta {
				best, bestDelta = d, delta
			}
		}
		out[i] = best
		remaining /= best
	}
	// Any residue goes into the last dimension (can only happen if nodeCount
	// had large prime factors, in which case the product is still exact).
	out[dims-1] *= remaining
	return out
}

// AverageHops returns the expected number of torus hops between two
// uniformly random nodes of a torus with the given extents (sum over
// dimensions of extent/4, the standard torus average distance).
func AverageHops(dims []int) float64 {
	total := 0.0
	for _, extent := range dims {
		if extent > 1 {
			total += float64(extent) / 4
		}
	}
	return total
}

// PointToPointTime estimates the time to deliver a point-to-point message of
// the given size between two random nodes of a partition with nodeCount
// nodes.
func (n Network) PointToPointTime(nodeCount int, bytes int) float64 {
	if nodeCount < 1 {
		nodeCount = 1
	}
	hops := AverageHops(TorusDims(nodeCount, n.TorusDimensions))
	return n.PointToPointLatency + hops*n.PerHopLatency + float64(bytes)/n.LinkBandwidth
}

// BroadcastTime estimates the time for a broadcast of the given payload from
// one rank to all tasks of a partition with nodeCount nodes, using the
// dedicated collective network (latency grows with the tree depth, i.e.
// logarithmically in the node count).
func (n Network) BroadcastTime(nodeCount int, bytes int) float64 {
	if nodeCount < 1 {
		nodeCount = 1
	}
	stages := math.Ceil(math.Log2(float64(nodeCount)))
	if stages < 1 {
		stages = 1
	}
	return n.CollectiveLatency + stages*n.CollectivePerStage + float64(bytes)/n.CollectiveBandwidth
}

// ReduceTime estimates the time for a reduction of a payload of the given
// size across a partition with nodeCount nodes; the collective network
// performs reductions at broadcast-like cost.
func (n Network) ReduceTime(nodeCount int, bytes int) float64 {
	return n.BroadcastTime(nodeCount, bytes)
}

// MemoryFootprint returns the per-task memory footprint, in bytes, of the
// strategy-space bookkeeping when the task hosts localSSets Strategy Sets
// out of a population of totalSSets, at the given memory depth.  Following
// Section V of the paper, memory "is used mainly to store the local view of
// the strategy space at each SSet": every locally hosted SSet keeps the
// strategies currently held by all SSets of the population, plus the global
// state table of the game kernel and per-SSet bookkeeping.
// The footprint counts only the dominant term — the strategy views — and
// ignores the kilobyte-scale state table and per-SSet bookkeeping, which are
// negligible at every population size of interest.
func MemoryFootprint(localSSets, totalSSets, memSteps int) int64 {
	if localSSets < 0 || totalSSets < 0 {
		return 0
	}
	perStrategy := int64(strategy.StrategyBytes(memSteps))
	return int64(localSSets) * int64(totalSSets) * perStrategy
}

// FitsInMemory reports whether hosting localSSets of a totalSSets population
// at the given memory depth fits in the machine's per-task memory when
// tasksPerNode tasks share a node's memory.
func (m Machine) FitsInMemory(localSSets, totalSSets, memSteps, tasksPerNode int) bool {
	if tasksPerNode < 1 {
		tasksPerNode = 1
	}
	perTaskBudget := m.MemoryPerNode / int64(tasksPerNode)
	return MemoryFootprint(localSSets, totalSSets, memSteps) <= perTaskBudget
}

// MaxMemorySteps returns the largest memory depth whose strategy-space
// bookkeeping fits in the per-task memory budget, or 0 if none fits.  For
// the paper's strong-scaling configuration (32 SSets per task out of 32,768
// on Blue Gene/P in virtual-node mode) this returns 6, reproducing the
// paper's observation that memory-six is the largest depth that can be
// modelled.
func (m Machine) MaxMemorySteps(localSSets, totalSSets, tasksPerNode int) int {
	best := 0
	for mem := 1; mem <= 6; mem++ {
		if m.FitsInMemory(localSSets, totalSSets, mem, tasksPerNode) {
			best = mem
		}
	}
	return best
}

// MaxTotalSSets returns the largest population (in SSets) that fits in
// memory when it is divided evenly across the given number of tasks, at the
// given memory depth and task density.  It reproduces the paper's statement
// that 32,768 strategies were the most that fit on 1,024 Blue Gene/P
// processors.  The search is over powers of two, matching how the paper
// sizes its populations.
func (m Machine) MaxTotalSSets(tasks, memSteps, tasksPerNode int) int {
	if tasks <= 0 {
		return 0
	}
	best := 0
	for total := 2; total <= 1<<30; total *= 2 {
		local := (total + tasks - 1) / tasks
		if local < 1 {
			local = 1
		}
		if m.FitsInMemory(local, total, memSteps, tasksPerNode) {
			best = total
		} else {
			break
		}
	}
	return best
}
