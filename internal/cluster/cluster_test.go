package cluster

import (
	"testing"
	"testing/quick"
)

func TestBlueGenePParameters(t *testing.T) {
	m := BlueGeneP()
	if m.MaxProcessors() != 294912 {
		t.Fatalf("BG/P max processors = %d, want 294912 (the paper's full machine)", m.MaxProcessors())
	}
	if m.CoresPerNode != 4 || m.Network.TorusDimensions != 3 {
		t.Fatalf("BG/P node/network shape wrong: %+v", m)
	}
	if m.MemoryPerNode != 2<<30 {
		t.Fatalf("BG/P memory per node = %d", m.MemoryPerNode)
	}
}

func TestBlueGeneQParameters(t *testing.T) {
	m := BlueGeneQ()
	if m.CoresPerNode != 16 || m.ThreadsPerCore != 4 {
		t.Fatalf("BG/Q cores/threads = %d/%d", m.CoresPerNode, m.ThreadsPerCore)
	}
	if m.MemoryPerNode != 16<<30 {
		t.Fatalf("BG/Q memory per node = %d", m.MemoryPerNode)
	}
	if m.Network.TorusDimensions != 5 {
		t.Fatalf("BG/Q torus dimensions = %d", m.Network.TorusDimensions)
	}
	// The paper's BG/Q runs use 512 nodes x 32 tasks = 16384 tasks; that must
	// be a valid placement.
	nodes, err := m.Nodes(16384, 32)
	if err != nil {
		t.Fatal(err)
	}
	if nodes != 512 {
		t.Fatalf("16384 tasks at 32 per node need %d nodes, want 512", nodes)
	}
}

func TestNodesValidation(t *testing.T) {
	m := BlueGeneP()
	if _, err := m.Nodes(0, 4); err == nil {
		t.Fatal("accepted zero tasks")
	}
	if _, err := m.Nodes(100, 0); err == nil {
		t.Fatal("accepted zero tasks per node")
	}
	if _, err := m.Nodes(100, 100); err == nil {
		t.Fatal("accepted more tasks per node than hardware threads")
	}
	if _, err := m.Nodes(10_000_000, 4); err == nil {
		t.Fatal("accepted more nodes than the machine has")
	}
	nodes, err := m.Nodes(294912, 4)
	if err != nil {
		t.Fatal(err)
	}
	if nodes != 73728 {
		t.Fatalf("294912 tasks in virtual-node mode need %d nodes", nodes)
	}
}

func TestTorusDimsProduct(t *testing.T) {
	for _, tc := range []struct{ nodes, dims int }{
		{1, 3}, {8, 3}, {64, 3}, {512, 3}, {73728, 3}, {48, 5}, {1024, 5}, {49152, 5},
	} {
		dims := TorusDims(tc.nodes, tc.dims)
		if len(dims) != tc.dims {
			t.Fatalf("TorusDims(%d,%d) has %d entries", tc.nodes, tc.dims, len(dims))
		}
		product := 1
		for _, d := range dims {
			if d < 1 {
				t.Fatalf("TorusDims(%d,%d) contains %d", tc.nodes, tc.dims, d)
			}
			product *= d
		}
		if product != tc.nodes {
			t.Fatalf("TorusDims(%d,%d) = %v multiplies to %d", tc.nodes, tc.dims, dims, product)
		}
	}
	if TorusDims(0, 3) != nil || TorusDims(5, 0) != nil {
		t.Fatal("invalid inputs should return nil")
	}
}

func TestAverageHopsGrowsWithMachine(t *testing.T) {
	small := AverageHops(TorusDims(64, 3))
	large := AverageHops(TorusDims(73728, 3))
	if small <= 0 || large <= small {
		t.Fatalf("average hops: small=%v large=%v", small, large)
	}
	if AverageHops(TorusDims(1, 3)) != 0 {
		t.Fatal("a single node should have zero average hops")
	}
}

func TestPointToPointTimeMonotone(t *testing.T) {
	n := BlueGeneP().Network
	small := n.PointToPointTime(64, 8)
	large := n.PointToPointTime(73728, 8)
	if large <= small {
		t.Fatalf("p2p time should grow with machine size: %v vs %v", small, large)
	}
	tiny := n.PointToPointTime(64, 8)
	big := n.PointToPointTime(64, 1<<20)
	if big <= tiny {
		t.Fatalf("p2p time should grow with message size: %v vs %v", tiny, big)
	}
	if n.PointToPointTime(0, 8) <= 0 {
		t.Fatal("p2p time must stay positive for degenerate node counts")
	}
}

func TestBroadcastTimeScalesLogarithmically(t *testing.T) {
	n := BlueGeneQ().Network
	t1k := n.BroadcastTime(1024, 512)
	t64k := n.BroadcastTime(65536, 512)
	if t64k <= t1k {
		t.Fatal("broadcast time should grow with node count")
	}
	// Logarithmic growth: going from 2^10 to 2^16 nodes adds 6 stages, so
	// the increase must be far smaller than a linear 64x.
	if t64k > t1k*4 {
		t.Fatalf("broadcast cost grew more than expected for a tree network: %v -> %v", t1k, t64k)
	}
	if n.BroadcastTime(1, 0) <= 0 {
		t.Fatal("broadcast time must stay positive")
	}
	if n.ReduceTime(1024, 8) != n.BroadcastTime(1024, 8) {
		t.Fatal("reduce is modelled at broadcast cost")
	}
}

func TestMemoryFootprint(t *testing.T) {
	// 32 local SSets, 32,768 total, memory-six: 32 * 32768 * 512 B = 512 MiB.
	got := MemoryFootprint(32, 32768, 6)
	if got != 512<<20 {
		t.Fatalf("footprint = %d, want %d", got, 512<<20)
	}
	if MemoryFootprint(-1, 10, 1) != 0 || MemoryFootprint(10, -1, 1) != 0 {
		t.Fatal("negative inputs should give zero footprint")
	}
}

func TestStrongScalingMemoryLimitReproduced(t *testing.T) {
	// The paper: "The strong scaling tests were conducted with 32,768
	// strategies as that was the limit we could fit in memory for the small
	// scale run on 1024 processors of BG/P."  1,024 processors in
	// virtual-node mode means 4 tasks per node sharing 2 GB.
	m := BlueGeneP()
	if got := m.MaxTotalSSets(1024, 6, 4); got != 32768 {
		t.Fatalf("max population on 1024 BG/P tasks = %d SSets, want 32768", got)
	}
	if !m.FitsInMemory(32, 32768, 6, 4) {
		t.Fatal("32,768 SSets over 1,024 tasks should fit")
	}
	if m.FitsInMemory(64, 65536, 6, 4) {
		t.Fatal("65,536 SSets over 1,024 tasks should not fit")
	}
}

func TestMemorySixIsLargestDepth(t *testing.T) {
	// For the strong-scaling population, memory-six fits exactly and is the
	// maximum supported depth (the paper's claim in Sections I and V-C).
	m := BlueGeneP()
	if got := m.MaxMemorySteps(32, 32768, 4); got != 6 {
		t.Fatalf("max memory steps = %d, want 6", got)
	}
	// A Blue Gene/Q node has 8x the memory, so the same population fits
	// comfortably at 32 tasks per node too.
	q := BlueGeneQ()
	if got := q.MaxMemorySteps(2, 32768, 32); got != 6 {
		t.Fatalf("BG/Q max memory steps = %d, want 6", got)
	}
}

func TestMaxTotalSSetsEdgeCases(t *testing.T) {
	m := BlueGeneP()
	if m.MaxTotalSSets(0, 6, 4) != 0 {
		t.Fatal("zero tasks should give zero capacity")
	}
	// More tasks means more aggregate memory, so capacity must not shrink.
	small := m.MaxTotalSSets(1024, 6, 4)
	large := m.MaxTotalSSets(4096, 6, 4)
	if large < small {
		t.Fatalf("capacity shrank with more tasks: %d -> %d", small, large)
	}
	// Lower memory depth means smaller strategies, so capacity must not
	// shrink either.
	mem1 := m.MaxTotalSSets(1024, 1, 4)
	if mem1 < small {
		t.Fatalf("memory-one capacity %d smaller than memory-six %d", mem1, small)
	}
}

// Property: TorusDims always returns a factorisation whose product is the
// node count, for any positive inputs.
func TestQuickTorusDimsProduct(t *testing.T) {
	f := func(nodeSel uint16, dimSel uint8) bool {
		nodes := int(nodeSel%8192) + 1
		dims := int(dimSel%5) + 1
		out := TorusDims(nodes, dims)
		if len(out) != dims {
			return false
		}
		product := 1
		for _, d := range out {
			if d < 1 {
				return false
			}
			product *= d
		}
		return product == nodes
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: communication time estimates are always positive and increase
// with payload size.
func TestQuickCommTimesPositive(t *testing.T) {
	n := BlueGeneP().Network
	f := func(nodeSel uint16, sizeSel uint16) bool {
		nodes := int(nodeSel) + 1
		bytes := int(sizeSel)
		return n.BroadcastTime(nodes, bytes) > 0 &&
			n.PointToPointTime(nodes, bytes) > 0 &&
			n.BroadcastTime(nodes, bytes+1024) >= n.BroadcastTime(nodes, bytes) &&
			n.PointToPointTime(nodes, bytes+1024) >= n.PointToPointTime(nodes, bytes)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkTorusDims(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = TorusDims(73728, 3)
	}
}
