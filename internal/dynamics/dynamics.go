// Package dynamics provides the pluggable update-rule layer of the
// evolutionary dynamics: the rule the Nature Agent applies when a selected
// learner compares fitness with a selected teacher.
//
// The paper hardwires one rule — pairwise comparison with the Fermi
// adoption probability (its Equation 1) — into the Nature Agent.  This
// package generalizes that single point: every rule consumes the same
// inputs (the two reported fitness values, the selection intensity and the
// Nature Agent's random source) and produces the same output (adopt or
// not), so the event protocol of both engines — select a (teacher, learner)
// pair, collect their fitness from the owning ranks, broadcast the
// strategy-table update — is identical for every rule, and the fitness
// subsystem's row/column invalidation hooks work unchanged.
//
// Built-in rules:
//
//   - "fermi" (default): adopt with probability 1/(1+exp(-β(πT-πL))).
//     Bit-identical to the pre-registry Nature Agent for a given seed.
//   - "imitation": best-takes-over — adopt exactly when the teacher's
//     fitness is strictly higher.  Deterministic; consumes no randomness.
//   - "moran": pairwise Moran death-birth — the learner (death) is replaced
//     by the teacher's strategy with probability πT/(πT+πL), the
//     fitness-proportional birth rule restricted to the sampled pair.
package dynamics

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"evogame/internal/rng"
)

// Rule decides whether a learner adopts a teacher's strategy.  A Rule must
// be stateless and safe for concurrent use; all randomness comes from the
// supplied source so trajectories stay reproducible per seed.
type Rule interface {
	// Name is the registry key and the identity recorded in checkpoints.
	Name() string
	// Adopt reports whether the learner adopts the teacher's strategy, given
	// the two reported fitness values and the selection intensity beta, and
	// returns the adoption probability that was applied (0 or 1 for
	// deterministic rules).  Rules that need randomness draw it from src.
	Adopt(src *rng.Source, beta, fitnessTeacher, fitnessLearner float64) (adopted bool, prob float64)
}

// FermiProb returns the Fermi adoption probability
// p = 1 / (1 + exp(-β (πT - πL))) (Equation 1 of the paper).  β = 0 gives
// 1/2 (random drift); β → ∞ approaches a step function that always adopts
// the better strategy.
func FermiProb(beta, payoffTeacher, payoffLearner float64) float64 {
	return 1 / (1 + math.Exp(-beta*(payoffTeacher-payoffLearner)))
}

// fermiRule is the paper's pairwise-comparison process.
type fermiRule struct{}

func (fermiRule) Name() string { return "fermi" }

func (fermiRule) Adopt(src *rng.Source, beta, fitT, fitL float64) (bool, float64) {
	prob := FermiProb(beta, fitT, fitL)
	return src.Bool(prob), prob
}

// imitationRule is deterministic best-takes-over imitation: the learner
// copies the teacher exactly when the teacher did strictly better.  It is
// the β → ∞ limit of the Fermi rule and consumes no randomness, so runs are
// reproducible trivially.
type imitationRule struct{}

func (imitationRule) Name() string { return "imitation" }

func (imitationRule) Adopt(_ *rng.Source, _ float64, fitT, fitL float64) (bool, float64) {
	if fitT > fitL {
		return true, 1
	}
	return false, 0
}

// moranRule is the pairwise Moran death-birth process: the learner (the
// death event) is replaced by the teacher's strategy with probability
// proportional to the teacher's share of the pair's total fitness.
// Negative fitness values (possible under the generic 2x2 spec) are clamped
// to zero; when both clamp to zero the rule falls back to random drift.
type moranRule struct{}

func (moranRule) Name() string { return "moran" }

func (moranRule) Adopt(src *rng.Source, _ float64, fitT, fitL float64) (bool, float64) {
	wT, wL := math.Max(fitT, 0), math.Max(fitL, 0)
	prob := 0.5
	if wT+wL > 0 {
		prob = wT / (wT + wL)
	}
	return src.Bool(prob), prob
}

// Fermi returns the default update rule, the paper's Fermi
// pairwise-comparison process.
func Fermi() Rule { return fermiRule{} }

// Imitation returns the deterministic best-takes-over rule.
func Imitation() Rule { return imitationRule{} }

// Moran returns the pairwise Moran death-birth rule.
func Moran() Rule { return moranRule{} }

var (
	ruleMu      sync.RWMutex
	rulesByName = map[string]Rule{
		"fermi":     Fermi(),
		"imitation": Imitation(),
		"moran":     Moran(),
	}
)

// Register adds an update rule to the registry so it becomes addressable by
// name from the facade, the CLI and checkpoints.  The name must be unused.
func Register(r Rule) error {
	if r == nil || r.Name() == "" {
		return fmt.Errorf("dynamics: cannot register a nil or unnamed rule")
	}
	ruleMu.Lock()
	defer ruleMu.Unlock()
	if _, ok := rulesByName[r.Name()]; ok {
		return fmt.Errorf("dynamics: rule %q already registered", r.Name())
	}
	rulesByName[r.Name()] = r
	return nil
}

// Lookup returns the registered update rule with the given name.
func Lookup(name string) (Rule, error) {
	ruleMu.RLock()
	r, ok := rulesByName[name]
	ruleMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("dynamics: unknown update rule %q (want one of %v)", name, Names())
	}
	return r, nil
}

// Names returns the sorted names of all registered update rules.
func Names() []string {
	ruleMu.RLock()
	defer ruleMu.RUnlock()
	names := make([]string, 0, len(rulesByName))
	for name := range rulesByName {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
