package dynamics

import (
	"math"
	"testing"

	"evogame/internal/rng"
)

func TestRegistryNames(t *testing.T) {
	names := Names()
	for _, want := range []string{"fermi", "imitation", "moran"} {
		r, err := Lookup(want)
		if err != nil {
			t.Fatalf("Lookup(%q): %v", want, err)
		}
		if r.Name() != want {
			t.Errorf("Lookup(%q).Name() = %q", want, r.Name())
		}
		found := false
		for _, n := range names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Errorf("Names() = %v, missing %q", names, want)
		}
	}
	if _, err := Lookup("replicator"); err == nil {
		t.Error("Lookup accepted an unknown rule")
	}
	if err := Register(Fermi()); err == nil {
		t.Error("Register accepted a duplicate rule")
	}
	if err := Register(nil); err == nil {
		t.Error("Register accepted a nil rule")
	}
}

func TestFermiProb(t *testing.T) {
	if p := FermiProb(0, 5, 1); p != 0.5 {
		t.Errorf("FermiProb(beta=0) = %v, want 0.5", p)
	}
	if p := FermiProb(1, 1000, 0); p < 0.999 {
		t.Errorf("FermiProb(strong teacher) = %v, want ~1", p)
	}
	if p := FermiProb(1, 0, 1000); p > 0.001 {
		t.Errorf("FermiProb(strong learner) = %v, want ~0", p)
	}
	want := 1 / (1 + math.Exp(-0.5*2))
	if p := FermiProb(0.5, 3, 1); math.Abs(p-want) > 1e-15 {
		t.Errorf("FermiProb(0.5, 3, 1) = %v, want %v", p, want)
	}
}

// TestFermiRuleMatchesLegacyStream verifies the bit-identity contract: the
// fermi rule draws exactly one Bool(prob) from the source with the same
// probability the pre-registry Nature Agent used, so the downstream random
// stream is unchanged.
func TestFermiRuleMatchesLegacyStream(t *testing.T) {
	ruleSrc := rng.New(42)
	legacySrc := rng.New(42)
	rule := Fermi()
	for i := 0; i < 200; i++ {
		fitT, fitL := float64(i%13), float64(i%7)
		prob := FermiProb(1, fitT, fitL)
		wantAdopt := legacySrc.Bool(prob)
		gotAdopt, gotProb := rule.Adopt(ruleSrc, 1, fitT, fitL)
		if gotAdopt != wantAdopt || gotProb != prob {
			t.Fatalf("step %d: fermi rule (adopt=%v prob=%v) diverges from legacy (adopt=%v prob=%v)",
				i, gotAdopt, gotProb, wantAdopt, prob)
		}
	}
	// The two sources must remain in lockstep afterwards.
	if ruleSrc.Intn(1<<30) != legacySrc.Intn(1<<30) {
		t.Fatal("fermi rule consumed a different amount of randomness than the legacy path")
	}
}

func TestImitationDeterministic(t *testing.T) {
	rule := Imitation()
	if adopted, prob := rule.Adopt(nil, 1, 2, 1); !adopted || prob != 1 {
		t.Errorf("imitation(teacher better) = %v, %v; want true, 1", adopted, prob)
	}
	if adopted, prob := rule.Adopt(nil, 1, 1, 1); adopted || prob != 0 {
		t.Errorf("imitation(tie) = %v, %v; want false, 0", adopted, prob)
	}
	if adopted, _ := rule.Adopt(nil, 1, 0, 5); adopted {
		t.Error("imitation adopted from a worse teacher")
	}
}

func TestMoranProportional(t *testing.T) {
	src := rng.New(7)
	rule := Moran()
	// Empirical adoption frequency ~ fitT/(fitT+fitL) = 0.75.
	adoptions := 0
	const trials = 20000
	for i := 0; i < trials; i++ {
		adopted, prob := rule.Adopt(src, 1, 3, 1)
		if prob != 0.75 {
			t.Fatalf("moran prob = %v, want 0.75", prob)
		}
		if adopted {
			adoptions++
		}
	}
	freq := float64(adoptions) / trials
	if math.Abs(freq-0.75) > 0.02 {
		t.Errorf("moran adoption frequency %v, want ~0.75", freq)
	}
	// Degenerate and negative fitness cases.
	if _, prob := rule.Adopt(src, 1, 0, 0); prob != 0.5 {
		t.Errorf("moran(0,0) prob = %v, want drift 0.5", prob)
	}
	if _, prob := rule.Adopt(src, 1, -3, -1); prob != 0.5 {
		t.Errorf("moran(all negative) prob = %v, want drift 0.5", prob)
	}
	if _, prob := rule.Adopt(src, 1, 2, -1); prob != 1 {
		t.Errorf("moran(negative learner) prob = %v, want 1", prob)
	}
}
