// Package baseline implements the "traditional" algorithm the paper uses as
// its point of comparison (Section IV-A): every strategy in the population
// is assigned to a single agent, that agent plays all other agents' strategies
// serially, and the selection and mutation steps run at the end of each
// generation.  Parallelising this layout caps the useful processor count at
// the number of agents and forgoes the game-level parallelism that the SSet
// abstraction exposes; the ablation benchmark compares the two.
package baseline

import (
	"fmt"

	"evogame/internal/game"
	"evogame/internal/nature"
	"evogame/internal/rng"
	"evogame/internal/strategy"
)

// Config describes a baseline simulation.  The dynamics parameters mirror
// population.Config so results are comparable.
type Config struct {
	NumAgents    int
	MemorySteps  int
	Rounds       int
	Noise        float64
	PCRate       float64
	MutationRate float64
	Beta         float64
	Seed         uint64
	// InitialStrategies optionally fixes each agent's starting strategy.
	InitialStrategies []strategy.Strategy
}

// Model is the traditional one-agent-per-strategy simulation.
type Model struct {
	cfg    Config
	engine *game.Engine
	nat    *nature.Agent
	agents []strategy.Strategy
	src    *rng.Source
	gen    int
	games  int64
}

// New validates the configuration and builds a baseline model.
func New(cfg Config) (*Model, error) {
	if cfg.NumAgents < 2 {
		return nil, fmt.Errorf("baseline: need at least 2 agents, got %d", cfg.NumAgents)
	}
	if cfg.InitialStrategies != nil && len(cfg.InitialStrategies) != cfg.NumAgents {
		return nil, fmt.Errorf("baseline: %d initial strategies for %d agents", len(cfg.InitialStrategies), cfg.NumAgents)
	}
	engine, err := game.NewEngine(game.EngineConfig{
		Rounds:      cfg.Rounds,
		MemorySteps: cfg.MemorySteps,
		Noise:       cfg.Noise,
		StateMode:   game.StateRolling,
		AccumMode:   game.AccumLookup,
		// The baseline stands in for the traditional implementation the
		// paper improves on, so it must replay every round rather than
		// inherit the cycle-closing fast path.
		Kernel: game.KernelFullReplay,
	})
	if err != nil {
		return nil, err
	}
	root := rng.New(cfg.Seed)
	natSrc := root.Split()
	initSrc := root.Split()
	gameSrc := root.Split()
	nat, err := nature.New(nature.Config{
		PCRate:       cfg.PCRate,
		MutationRate: cfg.MutationRate,
		Beta:         cfg.Beta,
		MemorySteps:  cfg.MemorySteps,
	}, natSrc)
	if err != nil {
		return nil, err
	}
	agents := cfg.InitialStrategies
	if agents == nil {
		agents = make([]strategy.Strategy, cfg.NumAgents)
		for i := range agents {
			agents[i] = strategy.RandomPure(cfg.MemorySteps, initSrc)
		}
	} else {
		agents = append([]strategy.Strategy(nil), agents...)
	}
	return &Model{cfg: cfg, engine: engine, nat: nat, agents: agents, src: gameSrc}, nil
}

// Generation returns the number of generations simulated so far.
func (m *Model) Generation() int { return m.gen }

// GamesPlayed returns the number of IPD games executed so far.
func (m *Model) GamesPlayed() int64 { return m.games }

// Strategies returns a copy of the agents' current strategies.
func (m *Model) Strategies() []strategy.Strategy {
	return append([]strategy.Strategy(nil), m.agents...)
}

// fitness plays agent i serially against every other agent, exactly as the
// traditional algorithm prescribes — no redundancy elimination, no
// thread-level fan-out.
func (m *Model) fitness(i int) (float64, error) {
	total := 0.0
	for j, opp := range m.agents {
		if j == i {
			continue
		}
		var src *rng.Source
		if m.engine.Noise() > 0 || !m.agents[i].Deterministic() || !opp.Deterministic() {
			src = m.src.Split()
		}
		fit, err := m.engine.PlayFitness(m.agents[i], opp, src)
		if err != nil {
			return 0, err
		}
		total += fit
		m.games++
	}
	return total, nil
}

// Step advances the simulation by one generation.
func (m *Model) Step() error {
	if teacher, learner, ok := m.nat.MaybeSelectPC(len(m.agents)); ok {
		fitT, err := m.fitness(teacher)
		if err != nil {
			return err
		}
		fitL, err := m.fitness(learner)
		if err != nil {
			return err
		}
		adopted, _ := m.nat.DecideAdoption(fitT, fitL)
		m.nat.RecordPC(adopted)
		if adopted {
			m.agents[learner] = m.agents[teacher].Clone()
		}
	}
	if target, newStrat, ok := m.nat.MaybeMutation(len(m.agents)); ok {
		m.agents[target] = newStrat
	}
	m.nat.EndGeneration()
	m.gen++
	return nil
}

// Run advances the simulation by the given number of generations.
func (m *Model) Run(generations int) error {
	if generations < 0 {
		return fmt.Errorf("baseline: negative generation count %d", generations)
	}
	for g := 0; g < generations; g++ {
		if err := m.Step(); err != nil {
			return err
		}
	}
	return nil
}

// Stats returns the Nature Agent's event counters.
func (m *Model) Stats() nature.Stats { return m.nat.Stats() }

// FractionOf returns the fraction of agents currently holding a strategy
// equal to s.
func (m *Model) FractionOf(s strategy.Strategy) float64 {
	count := 0
	for _, a := range m.agents {
		if a.Equal(s) {
			count++
		}
	}
	return float64(count) / float64(len(m.agents))
}
