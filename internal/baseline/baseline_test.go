package baseline

import (
	"testing"

	"evogame/internal/strategy"
)

func baseConfig() Config {
	return Config{
		NumAgents:    10,
		MemorySteps:  1,
		Rounds:       50,
		PCRate:       1,
		MutationRate: -1,
		Beta:         1,
		Seed:         42,
	}
}

func TestNewValidation(t *testing.T) {
	cfg := baseConfig()
	cfg.NumAgents = 1
	if _, err := New(cfg); err == nil {
		t.Fatal("accepted a single agent")
	}
	cfg = baseConfig()
	cfg.InitialStrategies = []strategy.Strategy{strategy.AllC(1)}
	if _, err := New(cfg); err == nil {
		t.Fatal("accepted a mismatched initial strategy table")
	}
	cfg = baseConfig()
	cfg.Rounds = 0
	if _, err := New(cfg); err == nil {
		t.Fatal("accepted zero rounds")
	}
	cfg = baseConfig()
	cfg.MemorySteps = 0
	if _, err := New(cfg); err == nil {
		t.Fatal("accepted zero memory steps")
	}
}

func TestRunNegativeGenerations(t *testing.T) {
	m, err := New(baseConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Run(-1); err == nil {
		t.Fatal("accepted a negative generation count")
	}
}

func TestPopulationSizeConserved(t *testing.T) {
	cfg := baseConfig()
	cfg.MutationRate = 0.5
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Run(100); err != nil {
		t.Fatal(err)
	}
	if len(m.Strategies()) != cfg.NumAgents {
		t.Fatal("agent count changed")
	}
	if m.Generation() != 100 {
		t.Fatalf("generation = %d", m.Generation())
	}
}

func TestSelectionFavoursDefectorsWithoutReciprocity(t *testing.T) {
	cfg := baseConfig()
	cfg.NumAgents = 10
	initial := make([]strategy.Strategy, cfg.NumAgents)
	for i := range initial {
		if i < 5 {
			initial[i] = strategy.AllC(1)
		} else {
			initial[i] = strategy.AllD(1)
		}
	}
	cfg.InitialStrategies = initial
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Run(300); err != nil {
		t.Fatal(err)
	}
	if frac := m.FractionOf(strategy.AllD(1)); frac != 1 {
		t.Fatalf("ALLD fraction = %v, want fixation", frac)
	}
}

func TestDeterministicRuns(t *testing.T) {
	run := func() []strategy.Strategy {
		cfg := baseConfig()
		cfg.MutationRate = 0.3
		m, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := m.Run(120); err != nil {
			t.Fatal(err)
		}
		return m.Strategies()
	}
	a, b := run(), run()
	for i := range a {
		if !a[i].Equal(b[i]) {
			t.Fatalf("baseline runs diverge at agent %d", i)
		}
	}
}

func TestGamesPlayedGrowsQuadratically(t *testing.T) {
	// One PC event evaluates two agents against all others: 2*(N-1) games.
	cfg := baseConfig()
	cfg.NumAgents = 8
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Run(10); err != nil {
		t.Fatal(err)
	}
	want := int64(10 * 2 * 7)
	if m.GamesPlayed() != want {
		t.Fatalf("games played = %d, want %d (PC rate 1, 8 agents)", m.GamesPlayed(), want)
	}
	if m.Stats().PCEvents != 10 {
		t.Fatalf("PC events = %d", m.Stats().PCEvents)
	}
}

func TestInitialStrategiesCopied(t *testing.T) {
	cfg := baseConfig()
	cfg.NumAgents = 2
	cfg.PCRate = -1
	initial := []strategy.Strategy{strategy.AllC(1), strategy.AllD(1)}
	cfg.InitialStrategies = initial
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	initial[0] = strategy.WSLS(1) // mutating the caller's slice must not matter
	if !m.Strategies()[0].Equal(strategy.AllC(1)) {
		t.Fatal("model aliases the caller's initial strategy slice")
	}
}
