// Package intern maps strategies to dense uint32 identifiers.
//
// The evaluation hot path of both engines asks the same question millions of
// times per run: "have these two strategies met before?"  Answering it with
// the strategy codec means two heap allocations and a string-map probe per
// lookup (encode both sides, hash the byte strings), which profiling shows
// dominates the pair-cache hit path once the game kernel itself is fast.
// A Registry answers it once per *distinct* strategy instead: the canonical
// codec encoding is interned into a dense uint32 ID at the moments the
// population actually changes (table construction, adoption, mutation —
// O(events), not O(games)), and every subsequent lookup is integer
// arithmetic on a pair of IDs.  Two strategies with identical move tables
// share one ID regardless of which Strategy values hold them, exactly as
// the codec-keyed caches behaved before interning existed.
//
// A Registry is safe for concurrent use; the ID-only accessors take a read
// lock and never allocate, so worker goroutines can resolve IDs without
// serialising on the writer path.
//
// IDs are stable for the registry's lifetime, which means the registry
// itself only grows: one canonical clone plus one encoded key per distinct
// strategy ever seen (about a kilobyte each at memory-six).  The pair
// cache bounds its result store independently; a run whose mutation stream
// generates tens of millions of distinct strategies will see the registry
// dominate memory long before that.  That regime is far beyond the runs
// this framework targets, and evicting registry entries would invalidate
// IDs already stored in tables and caches, so the trade-off is documented
// rather than engineered around.
package intern

import (
	"fmt"
	"math"
	"sync"

	"evogame/internal/strategy"
)

// Registry assigns dense uint32 IDs to strategies by canonical encoding.
// IDs are allocated in interning order starting at 0 and are stable for the
// lifetime of the registry; they are meaningful only within the registry
// that issued them.
type Registry struct {
	mu         sync.RWMutex
	ids        map[string]uint32
	strategies []strategy.Strategy
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{ids: make(map[string]uint32)}
}

// Intern returns the dense ID of s, assigning a fresh one if its canonical
// encoding has never been seen.  Strategies with equal move tables receive
// equal IDs.  It returns an error for strategy implementations the codec
// cannot encode; callers are expected to fall back to their un-interned
// paths in that case.
func (r *Registry) Intern(s strategy.Strategy) (uint32, error) {
	if s == nil {
		return 0, fmt.Errorf("intern: nil strategy")
	}
	buf, err := strategy.Encode(s)
	if err != nil {
		return 0, fmt.Errorf("intern: %w", err)
	}
	key := string(buf)
	r.mu.RLock()
	id, ok := r.ids[key]
	r.mu.RUnlock()
	if ok {
		return id, nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if id, ok := r.ids[key]; ok {
		return id, nil
	}
	if len(r.strategies) >= math.MaxUint32 {
		return 0, fmt.Errorf("intern: registry full (%d strategies)", len(r.strategies))
	}
	id = uint32(len(r.strategies))
	r.ids[key] = id
	// Clone so a caller later mutating its Strategy value in place cannot
	// corrupt the canonical instance the ID resolves to.
	r.strategies = append(r.strategies, s.Clone())
	return id, nil
}

// Strategy returns the canonical strategy instance behind an ID issued by
// this registry.  The returned value must be treated as immutable.
func (r *Registry) Strategy(id uint32) (strategy.Strategy, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if int64(id) >= int64(len(r.strategies)) {
		return nil, fmt.Errorf("intern: unknown strategy id %d (registry holds %d)", id, len(r.strategies))
	}
	return r.strategies[id], nil
}

// Len returns the number of distinct strategies interned so far.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.strategies)
}
