package intern

import (
	"sync"
	"testing"

	"evogame/internal/game"
	"evogame/internal/rng"
	"evogame/internal/strategy"
)

func TestInternDenseAndCanonical(t *testing.T) {
	r := NewRegistry()
	tft := strategy.TFT(1)
	id0, err := r.Intern(tft)
	if err != nil {
		t.Fatal(err)
	}
	if id0 != 0 {
		t.Fatalf("first ID = %d, want 0", id0)
	}
	// Equal move tables share one ID regardless of the holding value.
	tft2, err := strategy.ParsePure(1, tft.String())
	if err != nil {
		t.Fatal(err)
	}
	id1, err := r.Intern(tft2)
	if err != nil {
		t.Fatal(err)
	}
	if id1 != id0 {
		t.Fatalf("equal tables got IDs %d and %d", id0, id1)
	}
	id2, err := r.Intern(strategy.AllD(1))
	if err != nil {
		t.Fatal(err)
	}
	if id2 != 1 {
		t.Fatalf("second distinct strategy got ID %d, want 1", id2)
	}
	if r.Len() != 2 {
		t.Fatalf("Len() = %d, want 2", r.Len())
	}
	got, err := r.Strategy(id0)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(tft) {
		t.Fatalf("Strategy(%d) = %v, want TFT", id0, got)
	}
}

func TestInternCanonicalInstanceIsIsolated(t *testing.T) {
	r := NewRegistry()
	p := strategy.TFT(1)
	id, err := r.Intern(p)
	if err != nil {
		t.Fatal(err)
	}
	p.FlipMove(0) // mutate the caller's value in place
	got, err := r.Strategy(id)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(strategy.TFT(1)) {
		t.Fatal("mutating the interned value corrupted the canonical instance")
	}
}

func TestInternMixedAndErrors(t *testing.T) {
	r := NewRegistry()
	m, err := strategy.MixedFromProbs(1, []float64{1, 0.3, 1, 0.3})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Intern(m); err != nil {
		t.Fatalf("mixed strategies must intern: %v", err)
	}
	if _, err := r.Intern(nil); err == nil {
		t.Fatal("accepted a nil strategy")
	}
	if _, err := r.Intern(unknownStrategy{}); err == nil {
		t.Fatal("accepted a strategy the codec cannot encode")
	}
	if _, err := r.Strategy(42); err == nil {
		t.Fatal("accepted an unknown ID")
	}
}

func TestInternConcurrent(t *testing.T) {
	r := NewRegistry()
	table := make([]strategy.Strategy, 64)
	src := rng.New(7)
	for i := range table {
		table[i] = strategy.RandomPure(2, src)
	}
	ids := make([][]uint32, 8)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			out := make([]uint32, len(table))
			for i, s := range table {
				id, err := r.Intern(s)
				if err != nil {
					t.Error(err)
					return
				}
				out[i] = id
			}
			ids[w] = out
		}(w)
	}
	wg.Wait()
	for w := 1; w < 8; w++ {
		for i := range table {
			if ids[w][i] != ids[0][i] {
				t.Fatalf("worker %d interned strategy %d as %d, worker 0 as %d", w, i, ids[w][i], ids[0][i])
			}
		}
	}
}

// unknownStrategy is a Strategy implementation outside the codec.
type unknownStrategy struct{}

func (unknownStrategy) MemorySteps() int                { return 1 }
func (unknownStrategy) Move(int, *rng.Source) game.Move { return game.Cooperate }
func (unknownStrategy) Deterministic() bool             { return true }
func (u unknownStrategy) Clone() strategy.Strategy      { return u }
func (unknownStrategy) Equal(other strategy.Strategy) bool {
	_, ok := other.(unknownStrategy)
	return ok
}
func (unknownStrategy) String() string { return "unknown" }
