package nature

import (
	"fmt"
	"math"
	"testing"
	"testing/quick"

	"evogame/internal/rng"
	"evogame/internal/strategy"
)

func newAgent(t *testing.T, cfg Config, seed uint64) *Agent {
	t.Helper()
	if cfg.MemorySteps == 0 {
		cfg.MemorySteps = 1
	}
	a, err := New(cfg, rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestFermiValues(t *testing.T) {
	if got := Fermi(1, 10, 10); got != 0.5 {
		t.Fatalf("Fermi with equal payoffs = %v, want 0.5", got)
	}
	if got := Fermi(0, 100, 0); got != 0.5 {
		t.Fatalf("Fermi with beta 0 = %v, want 0.5", got)
	}
	if got := Fermi(10, 100, 0); got < 0.999 {
		t.Fatalf("Fermi with large advantage = %v, want ~1", got)
	}
	if got := Fermi(10, 0, 100); got > 0.001 {
		t.Fatalf("Fermi with large disadvantage = %v, want ~0", got)
	}
}

func TestFermiMonotoneInDifference(t *testing.T) {
	prev := -1.0
	for d := -50.0; d <= 50; d += 5 {
		p := Fermi(0.5, d, 0)
		if p <= prev {
			t.Fatalf("Fermi not strictly increasing at difference %v", d)
		}
		if p < 0 || p > 1 {
			t.Fatalf("Fermi out of [0,1]: %v", p)
		}
		prev = p
	}
}

func TestFermiSymmetry(t *testing.T) {
	// p(teacher,learner) + p(learner,teacher) == 1.
	for _, d := range []float64{0, 1, 3.5, 100} {
		sum := Fermi(1, d, 0) + Fermi(1, 0, d)
		if math.Abs(sum-1) > 1e-12 {
			t.Fatalf("Fermi(β,d,0)+Fermi(β,0,d) = %v, want 1", sum)
		}
	}
}

func TestConfigDefaults(t *testing.T) {
	a := newAgent(t, Config{MemorySteps: 2}, 1)
	cfg := a.Config()
	if cfg.PCRate != DefaultPCRate || cfg.MutationRate != DefaultMutationRate || cfg.Beta != DefaultBeta {
		t.Fatalf("defaults not applied: %+v", cfg)
	}
	if cfg.NewStrategy == nil {
		t.Fatal("default NewStrategy not installed")
	}
	s := cfg.NewStrategy(rng.New(3))
	if s.MemorySteps() != 2 {
		t.Fatalf("default mutation generator produced memory-%d strategy", s.MemorySteps())
	}
}

func TestConfigNegativeRatesDisable(t *testing.T) {
	a := newAgent(t, Config{PCRate: -1, MutationRate: -1, MemorySteps: 1}, 1)
	for i := 0; i < 1000; i++ {
		if _, _, ok := a.MaybeSelectPC(10); ok {
			t.Fatal("PC occurred with negative (disabled) rate")
		}
		if _, _, ok := a.MaybeMutation(10); ok {
			t.Fatal("mutation occurred with negative (disabled) rate")
		}
	}
}

func TestConfigValidation(t *testing.T) {
	cases := []Config{
		{MemorySteps: 0},
		{MemorySteps: 7},
		{MemorySteps: 1, PCRate: 1.5},
		{MemorySteps: 1, MutationRate: 1.2},
		{MemorySteps: 1, Beta: -2},
	}
	for i, cfg := range cases {
		if _, err := New(cfg, rng.New(1)); err == nil {
			t.Errorf("case %d: accepted invalid config %+v", i, cfg)
		}
	}
	if _, err := New(Config{MemorySteps: 1}, nil); err == nil {
		t.Fatal("accepted nil rng source")
	}
}

func TestMaybeSelectPCRate(t *testing.T) {
	a := newAgent(t, Config{PCRate: 0.25, MemorySteps: 1}, 7)
	const gens = 100000
	events := 0
	for i := 0; i < gens; i++ {
		if _, _, ok := a.MaybeSelectPC(50); ok {
			events++
		}
	}
	rate := float64(events) / gens
	if math.Abs(rate-0.25) > 0.01 {
		t.Fatalf("PC event rate %v, want ~0.25", rate)
	}
}

func TestMaybeSelectPCDistinctAndInRange(t *testing.T) {
	a := newAgent(t, Config{PCRate: 1, MemorySteps: 1}, 9)
	for i := 0; i < 10000; i++ {
		teacher, learner, ok := a.MaybeSelectPC(8)
		if !ok {
			t.Fatal("PC rate 1 must always trigger an event")
		}
		if teacher == learner {
			t.Fatal("teacher and learner must be distinct")
		}
		if teacher < 0 || teacher >= 8 || learner < 0 || learner >= 8 {
			t.Fatalf("selected indices out of range: %d, %d", teacher, learner)
		}
	}
}

func TestMaybeSelectPCNeedsTwoSSets(t *testing.T) {
	a := newAgent(t, Config{PCRate: 1, MemorySteps: 1}, 3)
	if _, _, ok := a.MaybeSelectPC(1); ok {
		t.Fatal("PC event with a single SSet")
	}
	if _, _, ok := a.MaybeSelectPC(0); ok {
		t.Fatal("PC event with no SSets")
	}
}

func TestDecideAdoptionExtremes(t *testing.T) {
	a := newAgent(t, Config{Beta: 10, MemorySteps: 1}, 11)
	adoptedCount := 0
	for i := 0; i < 100; i++ {
		adopted, prob := a.DecideAdoption(1000, 0)
		if prob < 0.999 {
			t.Fatalf("probability for a much better teacher = %v", prob)
		}
		if adopted {
			adoptedCount++
		}
	}
	if adoptedCount < 99 {
		t.Fatalf("only %d/100 adoptions of a much better teacher", adoptedCount)
	}
	for i := 0; i < 100; i++ {
		adopted, _ := a.DecideAdoption(0, 1000)
		if adopted {
			t.Fatal("adopted a much worse teacher under strong selection")
		}
	}
}

func TestDecideAdoptionFrequencyMatchesFermi(t *testing.T) {
	a := newAgent(t, Config{Beta: 0.5, MemorySteps: 1}, 13)
	const trials = 200000
	adopted := 0
	for i := 0; i < trials; i++ {
		ok, _ := a.DecideAdoption(2, 0) // Fermi(0.5, 2) = 1/(1+e^-1) ≈ 0.731
		if ok {
			adopted++
		}
	}
	want := 1 / (1 + math.Exp(-1))
	got := float64(adopted) / trials
	if math.Abs(got-want) > 0.01 {
		t.Fatalf("adoption frequency %v, want ~%v", got, want)
	}
}

func TestMaybeMutationRateAndRange(t *testing.T) {
	a := newAgent(t, Config{MutationRate: 0.05, MemorySteps: 1}, 17)
	const gens = 200000
	events := 0
	for i := 0; i < gens; i++ {
		target, strat, ok := a.MaybeMutation(30)
		if !ok {
			continue
		}
		events++
		if target < 0 || target >= 30 {
			t.Fatalf("mutation target %d out of range", target)
		}
		if strat == nil || strat.MemorySteps() != 1 {
			t.Fatal("mutation produced an invalid strategy")
		}
	}
	rate := float64(events) / gens
	if math.Abs(rate-0.05) > 0.005 {
		t.Fatalf("mutation rate %v, want ~0.05", rate)
	}
}

func TestMaybeMutationEmptyPopulation(t *testing.T) {
	a := newAgent(t, Config{MutationRate: 1, MemorySteps: 1}, 19)
	if _, _, ok := a.MaybeMutation(0); ok {
		t.Fatal("mutation with zero SSets")
	}
}

func TestCustomNewStrategy(t *testing.T) {
	called := 0
	cfg := Config{
		MemorySteps:  1,
		MutationRate: 1,
		NewStrategy: func(src *rng.Source) strategy.Strategy {
			called++
			return strategy.WSLS(1)
		},
	}
	a := newAgent(t, cfg, 23)
	_, strat, ok := a.MaybeMutation(5)
	if !ok || called != 1 {
		t.Fatal("custom NewStrategy not invoked")
	}
	if strat.String() != "0110" {
		t.Fatal("custom NewStrategy result not returned")
	}
}

func TestAgentDeterminism(t *testing.T) {
	run := func() []int {
		a := newAgent(t, Config{PCRate: 0.5, MutationRate: 0.3, MemorySteps: 1}, 99)
		var trace []int
		for g := 0; g < 500; g++ {
			if teacher, learner, ok := a.MaybeSelectPC(64); ok {
				trace = append(trace, teacher, learner)
				adopted, _ := a.DecideAdoption(float64(g), float64(g%7))
				if adopted {
					trace = append(trace, 1)
				} else {
					trace = append(trace, 0)
				}
			}
			if target, _, ok := a.MaybeMutation(64); ok {
				trace = append(trace, target)
			}
			a.EndGeneration()
		}
		return trace
	}
	t1, t2 := run(), run()
	if len(t1) != len(t2) {
		t.Fatalf("traces differ in length: %d vs %d", len(t1), len(t2))
	}
	for i := range t1 {
		if t1[i] != t2[i] {
			t.Fatalf("traces diverge at %d", i)
		}
	}
}

func TestStatsCounters(t *testing.T) {
	a := newAgent(t, Config{PCRate: 1, MutationRate: 1, MemorySteps: 1}, 5)
	for g := 0; g < 10; g++ {
		if _, _, ok := a.MaybeSelectPC(4); ok {
			adopted, _ := a.DecideAdoption(10, 0)
			a.RecordPC(adopted)
		}
		a.MaybeMutation(4)
		a.EndGeneration()
	}
	st := a.Stats()
	if st.Generations != 10 {
		t.Fatalf("generations = %d", st.Generations)
	}
	if st.PCEvents != 10 {
		t.Fatalf("PC events = %d", st.PCEvents)
	}
	if st.Mutations != 10 {
		t.Fatalf("mutations = %d", st.Mutations)
	}
	if st.Adoptions < 8 {
		t.Fatalf("adoptions = %d, expected nearly all with a large fitness gap", st.Adoptions)
	}
}

func TestTableBasics(t *testing.T) {
	strats := []strategy.Strategy{strategy.AllC(1), strategy.AllD(1), strategy.AllC(1)}
	tab, err := NewTable(strats)
	if err != nil {
		t.Fatal(err)
	}
	if tab.Len() != 3 {
		t.Fatalf("Len = %d", tab.Len())
	}
	if tab.Get(1).String() != "1111" {
		t.Fatal("Get returned the wrong strategy")
	}
	if err := tab.Set(2, strategy.WSLS(1)); err != nil {
		t.Fatal(err)
	}
	if tab.Get(2).String() != "0110" {
		t.Fatal("Set did not take effect")
	}
	if err := tab.Set(5, strategy.WSLS(1)); err == nil {
		t.Fatal("Set accepted an out-of-range index")
	}
	if err := tab.Set(-1, strategy.WSLS(1)); err == nil {
		t.Fatal("Set accepted a negative index")
	}
	if err := tab.Set(0, nil); err == nil {
		t.Fatal("Set accepted a nil strategy")
	}
}

func TestTableValidation(t *testing.T) {
	if _, err := NewTable(nil); err == nil {
		t.Fatal("NewTable accepted an empty slice")
	}
	if _, err := NewTable([]strategy.Strategy{strategy.AllC(1), nil}); err == nil {
		t.Fatal("NewTable accepted a nil entry")
	}
}

func TestTableSnapshotIsACopy(t *testing.T) {
	tab, _ := NewTable([]strategy.Strategy{strategy.AllC(1), strategy.AllD(1)})
	snap := tab.Snapshot()
	snap[0] = strategy.WSLS(1)
	if tab.Get(0).String() != "0000" {
		t.Fatal("mutating the snapshot changed the table")
	}
}

func TestTableCountsAndMostAbundant(t *testing.T) {
	tab, _ := NewTable([]strategy.Strategy{
		strategy.WSLS(1), strategy.WSLS(1), strategy.WSLS(1), strategy.AllD(1),
	})
	counts := tab.Counts()
	if counts["0110"] != 3 || counts["1111"] != 1 {
		t.Fatalf("counts = %v", counts)
	}
	key, frac := tab.MostAbundant()
	if key != "0110" || frac != 0.75 {
		t.Fatalf("MostAbundant = %q %v", key, frac)
	}
}

// Property: Fermi output is always a probability, and swapping teacher and
// learner payoffs gives complementary probabilities.
func TestQuickFermiProbability(t *testing.T) {
	f := func(beta, a, b float64) bool {
		beta = math.Abs(math.Mod(beta, 100))
		a = math.Mod(a, 1e6)
		b = math.Mod(b, 1e6)
		if math.IsNaN(a) || math.IsNaN(b) || math.IsNaN(beta) {
			return true
		}
		p := Fermi(beta, a, b)
		q := Fermi(beta, b, a)
		return p >= 0 && p <= 1 && math.Abs(p+q-1) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: MaybeSelectPC never returns equal indices and never exceeds the
// population size, for any seed and population size >= 2.
func TestQuickSelectPCBounds(t *testing.T) {
	f := func(seed uint64, sizeSel uint8) bool {
		size := int(sizeSel%100) + 2
		a, err := New(Config{PCRate: 1, MemorySteps: 1}, rng.New(seed))
		if err != nil {
			return false
		}
		teacher, learner, ok := a.MaybeSelectPC(size)
		return ok && teacher != learner &&
			teacher >= 0 && teacher < size && learner >= 0 && learner < size
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkFermi(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = Fermi(1, float64(i%100), float64((i*7)%100))
	}
}

func BenchmarkMaybeMutationMemorySix(b *testing.B) {
	a, _ := New(Config{MutationRate: 1, MemorySteps: 6}, rng.New(1))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, _, _ = a.MaybeMutation(4096)
	}
}

// TestExportRestoreStateReplays is the Nature-Agent half of the resume
// guarantee: an agent restored from ExportState into a fresh instance with
// the same configuration must replay exactly the event sequence the
// original produces from that point on, counters included.
func TestExportRestoreStateReplays(t *testing.T) {
	cfg := Config{PCRate: 0.8, MutationRate: 0.3, Beta: 1, MemorySteps: 1}
	original, err := New(cfg, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	const ssets = 10
	drive := func(a *Agent, gens int) []string {
		var events []string
		for g := 0; g < gens; g++ {
			if tch, lrn, ok := a.MaybeSelectPC(ssets); ok {
				adopted, _ := a.DecideAdoption(float64(tch), float64(lrn))
				a.RecordPC(adopted)
				events = append(events, fmt.Sprintf("pc %d %d %v", tch, lrn, adopted))
			}
			if target, strat, ok := a.MaybeMutation(ssets); ok {
				events = append(events, fmt.Sprintf("mut %d %s", target, strat.String()))
			}
			a.EndGeneration()
		}
		return events
	}
	drive(original, 50)

	st := original.ExportState()
	restored, err := New(cfg, rng.New(12345)) // different seed: must be overwritten
	if err != nil {
		t.Fatal(err)
	}
	if err := restored.RestoreState(st); err != nil {
		t.Fatal(err)
	}
	if restored.Stats() != original.Stats() {
		t.Fatalf("counters not restored: %+v vs %+v", restored.Stats(), original.Stats())
	}

	want := drive(original, 50)
	got := drive(restored, 50)
	if len(want) != len(got) {
		t.Fatalf("event counts diverged: %d vs %d", len(got), len(want))
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("event %d diverged: %q vs %q", i, got[i], want[i])
		}
	}
	if restored.Stats() != original.Stats() {
		t.Fatalf("final counters diverged: %+v vs %+v", restored.Stats(), original.Stats())
	}
}

// TestRestoreStateRejectsZeroRNG ensures a corrupt (all-zero) stream state
// cannot be installed.
func TestRestoreStateRejectsZeroRNG(t *testing.T) {
	a, err := New(Config{MemorySteps: 1}, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if err := a.RestoreState(State{}); err == nil {
		t.Fatal("accepted an all-zero RNG state")
	}
}
