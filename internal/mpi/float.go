package mpi

import "math"

func float64bits(v float64) uint64     { return math.Float64bits(v) }
func float64frombits(b uint64) float64 { return math.Float64frombits(b) }
