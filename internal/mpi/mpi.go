// Package mpi provides an in-process message-passing runtime with the small
// subset of MPI semantics the evolutionary game dynamics framework needs:
// SPMD rank launch, point-to-point sends and receives with tag matching
// (blocking and non-blocking), and the collective operations the Nature
// Agent uses (broadcast, barrier, gather, reduce, all-reduce).
//
// The paper's implementation runs on Blue Gene/P and Blue Gene/Q with MPI
// over the torus and collective networks.  This package substitutes
// goroutines for MPI processes and channels/queues for the network: the
// communication pattern of the algorithm — who sends what to whom and when —
// is preserved exactly, and the per-rank traffic statistics the runtime
// collects feed the analytic performance model of internal/perfmodel that
// extrapolates to Blue Gene scale.
//
// Semantics:
//
//   - Sends are asynchronous and buffered (eager protocol): Send never blocks
//     waiting for the receiver.
//   - Messages between a fixed (source, destination) pair are delivered in
//     the order they were sent when matched with the same tag.
//   - Recv blocks until a matching message arrives.
//   - Collectives must be called by every rank of the communicator; they are
//     implemented on top of point-to-point messages using a reserved tag
//     space (tags >= 1<<30 are reserved).
package mpi

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// AnyTag matches a message with any tag in Recv and Irecv.
const AnyTag = -1

// reservedTagBase is the start of the tag space used internally by the
// collective operations.
const reservedTagBase = 1 << 30

// ErrInvalidRank is returned when a rank argument is outside [0, Size).
var ErrInvalidRank = errors.New("mpi: invalid rank")

// ErrInvalidTag is returned when a user-supplied tag falls in the reserved
// collective tag space or is negative (other than AnyTag for receives).
var ErrInvalidTag = errors.New("mpi: invalid tag")

type message struct {
	src, tag int
	data     []byte
}

// mailbox is the per-destination queue of undelivered messages from all
// sources, protected by a mutex and condition variable so receivers can wait
// for a match.
type mailbox struct {
	mu    sync.Mutex
	cond  *sync.Cond
	queue []message
}

func newMailbox() *mailbox {
	m := &mailbox{}
	m.cond = sync.NewCond(&m.mu)
	return m
}

func (m *mailbox) put(msg message) {
	m.mu.Lock()
	m.queue = append(m.queue, msg)
	m.mu.Unlock()
	m.cond.Broadcast()
}

// take removes and returns the first message matching (src, tag); src < 0
// matches any source, tag == AnyTag matches any tag.
func (m *mailbox) take(src, tag int) message {
	m.mu.Lock()
	defer m.mu.Unlock()
	for {
		for i, msg := range m.queue {
			if (src < 0 || msg.src == src) && (tag == AnyTag || msg.tag == tag) {
				m.queue = append(m.queue[:i], m.queue[i+1:]...)
				return msg
			}
		}
		m.cond.Wait()
	}
}

// fabric is the shared state of one communicator: one mailbox per rank.
type fabric struct {
	size      int
	mailboxes []*mailbox
}

// Stats aggregates per-rank communication counters; the scaling studies use
// them to report communication volume per generation.
type Stats struct {
	SendCount   int64
	RecvCount   int64
	BytesSent   int64
	BytesRecv   int64
	Collectives int64
	// TimeBlocked is the cumulative wall-clock time the rank spent waiting
	// inside Recv and collective calls.
	TimeBlocked time.Duration
}

// Comm is one rank's handle on the communicator.  A Comm is owned by a
// single goroutine (its rank); it must not be shared.
type Comm struct {
	rank   int
	fabric *fabric

	sendCount   atomic.Int64
	recvCount   atomic.Int64
	bytesSent   atomic.Int64
	bytesRecv   atomic.Int64
	collectives atomic.Int64
	blockedNs   atomic.Int64
}

// Rank returns this rank's index in [0, Size).
func (c *Comm) Rank() int { return c.rank }

// Size returns the number of ranks in the communicator.
func (c *Comm) Size() int { return c.fabric.size }

// Stats returns a snapshot of this rank's communication counters.
func (c *Comm) Stats() Stats {
	return Stats{
		SendCount:   c.sendCount.Load(),
		RecvCount:   c.recvCount.Load(),
		BytesSent:   c.bytesSent.Load(),
		BytesRecv:   c.bytesRecv.Load(),
		Collectives: c.collectives.Load(),
		TimeBlocked: time.Duration(c.blockedNs.Load()),
	}
}

func (c *Comm) checkRank(rank int) error {
	if rank < 0 || rank >= c.fabric.size {
		return fmt.Errorf("%w: %d not in [0,%d)", ErrInvalidRank, rank, c.fabric.size)
	}
	return nil
}

func checkUserTag(tag int) error {
	if tag < 0 || tag >= reservedTagBase {
		return fmt.Errorf("%w: %d", ErrInvalidTag, tag)
	}
	return nil
}

// send delivers data to the destination mailbox; the payload is copied so
// the caller may reuse its buffer immediately.
func (c *Comm) send(to, tag int, data []byte) error {
	if err := c.checkRank(to); err != nil {
		return err
	}
	cp := make([]byte, len(data))
	copy(cp, data)
	c.fabric.mailboxes[to].put(message{src: c.rank, tag: tag, data: cp})
	c.sendCount.Add(1)
	c.bytesSent.Add(int64(len(data)))
	return nil
}

func (c *Comm) recv(from, tag int) ([]byte, int, error) {
	if from >= c.fabric.size {
		return nil, 0, fmt.Errorf("%w: %d not in [0,%d)", ErrInvalidRank, from, c.fabric.size)
	}
	//lint:allow randsource wall-clock measurement of receive-blocked time for RankReport comm stats; never feeds simulation state
	start := time.Now()
	msg := c.fabric.mailboxes[c.rank].take(from, tag)
	c.blockedNs.Add(int64(time.Since(start)))
	c.recvCount.Add(1)
	c.bytesRecv.Add(int64(len(msg.data)))
	return msg.data, msg.src, nil
}

// Send transmits data to rank `to` with the given tag.  It does not block
// waiting for a matching receive.
func (c *Comm) Send(to, tag int, data []byte) error {
	if err := checkUserTag(tag); err != nil {
		return err
	}
	return c.send(to, tag, data)
}

// Recv blocks until a message with the given tag arrives from rank `from`
// (AnySource is not supported; pass the concrete rank).  Tag may be AnyTag.
func (c *Comm) Recv(from, tag int) ([]byte, error) {
	if tag != AnyTag {
		if err := checkUserTag(tag); err != nil {
			return nil, err
		}
	}
	if from < 0 {
		return nil, fmt.Errorf("%w: %d", ErrInvalidRank, from)
	}
	data, _, err := c.recv(from, tag)
	return data, err
}

// Request represents an in-flight non-blocking operation.
type Request struct {
	done chan struct{}
	data []byte
	err  error
}

// Wait blocks until the operation completes and returns the received data
// (nil for sends) and any error.
func (r *Request) Wait() ([]byte, error) {
	<-r.done
	return r.data, r.err
}

// Isend starts a non-blocking send.  Because sends are eager the operation
// completes immediately; the Request exists for symmetry with MPI code.
func (c *Comm) Isend(to, tag int, data []byte) *Request {
	req := &Request{done: make(chan struct{})}
	req.err = c.Send(to, tag, data)
	close(req.done)
	return req
}

// Irecv starts a non-blocking receive; Wait returns the payload.
func (c *Comm) Irecv(from, tag int) *Request {
	req := &Request{done: make(chan struct{})}
	go func() {
		req.data, req.err = c.Recv(from, tag)
		close(req.done)
	}()
	return req
}

// Bcast broadcasts data from root to every rank.  Every rank must call it;
// the root passes the payload, other ranks pass nil and receive the payload
// as the return value.
func (c *Comm) Bcast(root int, data []byte) ([]byte, error) {
	if err := c.checkRank(root); err != nil {
		return nil, err
	}
	c.collectives.Add(1)
	tag := reservedTagBase + 1
	if c.rank == root {
		for r := 0; r < c.fabric.size; r++ {
			if r == root {
				continue
			}
			if err := c.send(r, tag, data); err != nil {
				return nil, err
			}
		}
		return data, nil
	}
	//lint:allow randsource wall-clock measurement of broadcast-blocked time for RankReport comm stats; never feeds simulation state
	start := time.Now()
	out, _, err := c.recv(root, tag)
	c.blockedNs.Add(int64(time.Since(start)))
	return out, err
}

// Gather collects each rank's payload at root.  At root the result has Size
// entries indexed by rank (root's own contribution included); other ranks
// receive nil.
func (c *Comm) Gather(root int, data []byte) ([][]byte, error) {
	if err := c.checkRank(root); err != nil {
		return nil, err
	}
	c.collectives.Add(1)
	tag := reservedTagBase + 2
	if c.rank != root {
		return nil, c.send(root, tag, data)
	}
	out := make([][]byte, c.fabric.size)
	cp := make([]byte, len(data))
	copy(cp, data)
	out[root] = cp
	for r := 0; r < c.fabric.size; r++ {
		if r == root {
			continue
		}
		payload, _, err := c.recv(r, tag)
		if err != nil {
			return nil, err
		}
		out[r] = payload
	}
	return out, nil
}

// Barrier blocks until every rank has entered it.
func (c *Comm) Barrier() error {
	c.collectives.Add(1)
	const root = 0
	tagIn := reservedTagBase + 3
	tagOut := reservedTagBase + 4
	if c.rank == root {
		for r := 1; r < c.fabric.size; r++ {
			if _, _, err := c.recv(-1, tagIn); err != nil {
				return err
			}
		}
		for r := 1; r < c.fabric.size; r++ {
			if err := c.send(r, tagOut, nil); err != nil {
				return err
			}
		}
		return nil
	}
	if err := c.send(root, tagIn, nil); err != nil {
		return err
	}
	_, _, err := c.recv(root, tagOut)
	return err
}

// ReduceOp is a binary reduction operator over float64.
type ReduceOp func(a, b float64) float64

// Common reduction operators.
var (
	OpSum ReduceOp = func(a, b float64) float64 { return a + b }
	OpMax ReduceOp = func(a, b float64) float64 {
		if a > b {
			return a
		}
		return b
	}
	OpMin ReduceOp = func(a, b float64) float64 {
		if a < b {
			return a
		}
		return b
	}
)

// Reduce combines each rank's value with op; the result is returned at root
// (other ranks receive 0 and should ignore the value).
func (c *Comm) Reduce(root int, value float64, op ReduceOp) (float64, error) {
	if err := c.checkRank(root); err != nil {
		return 0, err
	}
	if op == nil {
		return 0, errors.New("mpi: nil reduce operator")
	}
	c.collectives.Add(1)
	tag := reservedTagBase + 5
	buf := encodeFloat64(value)
	if c.rank != root {
		return 0, c.send(root, tag, buf)
	}
	acc := value
	for r := 0; r < c.fabric.size; r++ {
		if r == root {
			continue
		}
		payload, _, err := c.recv(r, tag)
		if err != nil {
			return 0, err
		}
		v, err := decodeFloat64(payload)
		if err != nil {
			return 0, err
		}
		acc = op(acc, v)
	}
	return acc, nil
}

// Allreduce combines each rank's value with op and returns the result on
// every rank.
func (c *Comm) Allreduce(value float64, op ReduceOp) (float64, error) {
	total, err := c.Reduce(0, value, op)
	if err != nil {
		return 0, err
	}
	out, err := c.Bcast(0, encodeFloat64(total))
	if err != nil {
		return 0, err
	}
	return decodeFloat64(out)
}

// AllgatherFloat64 gathers one float64 from every rank and returns the full
// vector (indexed by rank) on every rank.
func (c *Comm) AllgatherFloat64(value float64) ([]float64, error) {
	gathered, err := c.Gather(0, encodeFloat64(value))
	if err != nil {
		return nil, err
	}
	var packed []byte
	if c.rank == 0 {
		packed = make([]byte, 0, 8*c.fabric.size)
		for _, g := range gathered {
			packed = append(packed, g...)
		}
	}
	packed, err = c.Bcast(0, packed)
	if err != nil {
		return nil, err
	}
	if len(packed) != 8*c.fabric.size {
		return nil, fmt.Errorf("mpi: allgather payload has %d bytes, want %d", len(packed), 8*c.fabric.size)
	}
	out := make([]float64, c.fabric.size)
	for i := range out {
		v, err := decodeFloat64(packed[8*i : 8*i+8])
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}

// Run launches size ranks, each executing fn with its own Comm, and waits
// for all of them to finish.  The first non-nil error is returned (all ranks
// still run to completion).  Run panics propagate to the caller as errors.
func Run(size int, fn func(c *Comm) error) error {
	if size <= 0 {
		return fmt.Errorf("mpi: communicator size must be positive, got %d", size)
	}
	if fn == nil {
		return errors.New("mpi: nil rank function")
	}
	f := &fabric{size: size, mailboxes: make([]*mailbox, size)}
	for i := range f.mailboxes {
		f.mailboxes[i] = newMailbox()
	}
	errs := make([]error, size)
	var wg sync.WaitGroup
	for r := 0; r < size; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					errs[rank] = fmt.Errorf("mpi: rank %d panicked: %v", rank, p)
				}
			}()
			errs[rank] = fn(&Comm{rank: rank, fabric: f})
		}(r)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// RunCollect behaves like Run but also collects a per-rank result value.
func RunCollect[T any](size int, fn func(c *Comm) (T, error)) ([]T, error) {
	results := make([]T, size)
	err := Run(size, func(c *Comm) error {
		v, err := fn(c)
		results[c.Rank()] = v
		return err
	})
	return results, err
}

func encodeFloat64(v float64) []byte {
	bits := float64bits(v)
	buf := make([]byte, 8)
	for i := 0; i < 8; i++ {
		buf[i] = byte(bits >> (8 * uint(i)))
	}
	return buf
}

func decodeFloat64(buf []byte) (float64, error) {
	if len(buf) != 8 {
		return 0, fmt.Errorf("mpi: float64 payload has %d bytes", len(buf))
	}
	var bits uint64
	for i := 0; i < 8; i++ {
		bits |= uint64(buf[i]) << (8 * uint(i))
	}
	return float64frombits(bits), nil
}
