// Package mpi provides an in-process message-passing runtime with the small
// subset of MPI semantics the evolutionary game dynamics framework needs:
// SPMD rank launch, point-to-point sends and receives with tag matching
// (blocking and non-blocking), and the collective operations the Nature
// Agent uses (broadcast, barrier, gather, reduce, all-reduce).
//
// The paper's implementation runs on Blue Gene/P and Blue Gene/Q with MPI
// over the torus and collective networks.  This package substitutes
// goroutines for MPI processes and channels/queues for the network: the
// communication pattern of the algorithm — who sends what to whom and when —
// is preserved exactly, and the per-rank traffic statistics the runtime
// collects feed the analytic performance model of internal/perfmodel that
// extrapolates to Blue Gene scale.
//
// Semantics:
//
//   - Sends are asynchronous and buffered (eager protocol): Send never blocks
//     waiting for the receiver.
//   - Messages between a fixed (source, destination) pair are delivered in
//     the order they were sent when matched with the same tag.
//   - Recv blocks until a matching message arrives.
//   - Collectives must be called by every rank of the communicator; they are
//     implemented on top of point-to-point messages using a reserved tag
//     space (tags >= 1<<30 are reserved).
package mpi

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// AnyTag matches a message with any tag in Recv and Irecv.
const AnyTag = -1

// reservedTagBase is the start of the tag space used internally by the
// collective operations.
const reservedTagBase = 1 << 30

// ErrInvalidRank is returned when a rank argument is outside [0, Size).
var ErrInvalidRank = errors.New("mpi: invalid rank")

// ErrInvalidTag is returned when a user-supplied tag falls in the reserved
// collective tag space or is negative (other than AnyTag for receives).
var ErrInvalidTag = errors.New("mpi: invalid tag")

// ErrRankFailed is the sentinel matched (via errors.Is) by every error a
// blocking primitive returns because a peer rank exited with an error or
// panic.  The concrete error is always a *RankError carrying the failed
// rank and the epoch (generation) it had reached.
var ErrRankFailed = errors.New("mpi: rank failed")

// ErrDeadline is returned by a blocking primitive that waited longer than
// the communicator's Options.Deadline without a matching message or a
// detected rank failure.
var ErrDeadline = errors.New("mpi: deadline exceeded")

// ErrSendFailed is returned by Send when the fault injector dropped the
// message more times than the communicator's retry budget allows.
var ErrSendFailed = errors.New("mpi: send failed after retries")

// RankError reports the first rank failure observed on a communicator.  It
// is returned both by Run (as the run's overall error) and by any blocking
// primitive on a surviving rank once the failure has been recorded, so no
// peer ever hangs waiting on a dead rank.  errors.Is(err, ErrRankFailed)
// matches it; Unwrap exposes the failed rank's own error.
type RankError struct {
	Rank int   // the rank that failed
	Gen  int   // the epoch (generation) the rank had reached, via FaultPoint
	Err  error // the rank's own error (or panic, wrapped)
}

func (e *RankError) Error() string {
	return fmt.Sprintf("mpi: rank %d failed at generation %d: %v", e.Rank, e.Gen, e.Err)
}

// Unwrap exposes the failed rank's underlying error.
func (e *RankError) Unwrap() error { return e.Err }

// Is matches the ErrRankFailed sentinel.
func (e *RankError) Is(target error) bool { return target == ErrRankFailed }

// FaultInjector is the hook through which a deterministic fault plan
// (internal/faults) perturbs a communicator.  All methods must be safe for
// concurrent use by every rank.  The zero configuration (nil injector) is a
// strict no-op: the fabric consults it only when non-nil.
type FaultInjector interface {
	// Crash returns a non-nil error when the given rank must exit at the
	// given epoch; the rank returns the error from its function, which the
	// fabric then propagates to all peers as a *RankError.
	Crash(rank, epoch int) error
	// Drop reports whether the next message from src to dst at the given
	// epoch is lost in transit.  The sender retries with capped exponential
	// backoff, consuming one Drop decision per attempt.
	Drop(src, dst, epoch int) bool
	// Delay returns extra in-transit latency for the next message from src
	// to dst at the given epoch (0 = none).
	Delay(src, dst, epoch int) time.Duration
}

// Options configures the failure semantics of a communicator launched by
// RunWithOptions.  The zero value reproduces the historical behavior
// exactly: no injector, no deadline, and the default retry budget.
type Options struct {
	// Injector perturbs the fabric; nil disables injection entirely.
	Injector FaultInjector
	// Deadline bounds every blocking primitive: a rank blocked longer than
	// this without a matching message or a recorded peer failure returns
	// ErrDeadline.  Zero disables the deadline.
	Deadline time.Duration
	// SendRetries is the number of times a send is retried after the
	// injector drops it before Send gives up with ErrSendFailed.
	// Zero selects DefaultSendRetries.
	SendRetries int
	// RetryBackoff is the initial backoff between send retries, doubling
	// per attempt up to 32x.  Zero selects DefaultRetryBackoff.
	RetryBackoff time.Duration
}

// Default retry budget for injected-transient send failures.
const (
	DefaultSendRetries  = 5
	DefaultRetryBackoff = 100 * time.Microsecond
)

func (o Options) sendRetries() int {
	if o.SendRetries <= 0 {
		return DefaultSendRetries
	}
	return o.SendRetries
}

func (o Options) retryBackoff(attempt int) time.Duration {
	base := o.RetryBackoff
	if base <= 0 {
		base = DefaultRetryBackoff
	}
	d := base
	for i := 1; i < attempt && d < 32*base; i++ {
		d *= 2
	}
	if d > 32*base {
		d = 32 * base
	}
	return d
}

type message struct {
	src, tag int
	data     []byte
}

// mailbox is the per-destination queue of undelivered messages from all
// sources, protected by a mutex and condition variable so receivers can wait
// for a match.
type mailbox struct {
	mu    sync.Mutex
	cond  *sync.Cond
	queue []message
	rank  int
	fab   *fabric
}

func newMailbox(rank int, fab *fabric) *mailbox {
	m := &mailbox{rank: rank, fab: fab}
	m.cond = sync.NewCond(&m.mu)
	return m
}

func (m *mailbox) put(msg message) {
	m.mu.Lock()
	m.queue = append(m.queue, msg)
	m.mu.Unlock()
	m.cond.Broadcast()
}

// take removes and returns the first message matching (src, tag); src < 0
// matches any source, tag == AnyTag matches any tag.  Queued matches are
// delivered even after a peer failure; once no match is queued, take
// returns a *RankError if any rank has failed, or ErrDeadline if the
// communicator's deadline elapses first.
func (m *mailbox) take(src, tag int) (message, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	expired := false
	if d := m.fab.opts.Deadline; d > 0 {
		timer := time.AfterFunc(d, func() {
			m.mu.Lock()
			expired = true
			m.mu.Unlock()
			m.cond.Broadcast()
		})
		defer timer.Stop()
	}
	for {
		for i, msg := range m.queue {
			if (src < 0 || msg.src == src) && (tag == AnyTag || msg.tag == tag) {
				m.queue = append(m.queue[:i], m.queue[i+1:]...)
				return msg, nil
			}
		}
		if err := m.fab.failure(); err != nil {
			return message{}, err
		}
		if expired {
			return message{}, fmt.Errorf("mpi: rank %d: no message matching (src=%d, tag=%d) within the %v deadline: %w",
				m.rank, src, tag, m.fab.opts.Deadline, ErrDeadline)
		}
		m.cond.Wait()
	}
}

// fabric is the shared state of one communicator: one mailbox per rank,
// the failure-semantics options, and the liveness ledger.
type fabric struct {
	size      int
	mailboxes []*mailbox
	opts      Options

	mu         sync.Mutex
	exited     []bool // liveness accounting: rank goroutines that returned
	liveCount  int
	failedRank int
	failedGen  int
	failedErr  error
}

func newFabric(size int, opts Options) *fabric {
	f := &fabric{
		size:      size,
		opts:      opts,
		mailboxes: make([]*mailbox, size),
		exited:    make([]bool, size),
		liveCount: size,
	}
	for i := range f.mailboxes {
		f.mailboxes[i] = newMailbox(i, f)
	}
	return f
}

// fail records the first rank failure and wakes every blocked receiver so
// no peer hangs waiting on the dead rank.  Later failures (typically peers
// dying of the propagated *RankError) keep the root cause.
func (f *fabric) fail(rank, gen int, err error) {
	f.mu.Lock()
	if f.failedErr == nil {
		f.failedRank, f.failedGen, f.failedErr = rank, gen, err
	}
	f.mu.Unlock()
	for _, mb := range f.mailboxes {
		mb.mu.Lock()
		mb.cond.Broadcast()
		mb.mu.Unlock()
	}
}

// failure returns a *RankError describing the first recorded failure, or
// nil while all ranks are healthy.
func (f *fabric) failure() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.failedErr == nil {
		return nil
	}
	return &RankError{Rank: f.failedRank, Gen: f.failedGen, Err: f.failedErr}
}

// markExited flips the liveness ledger when a rank goroutine returns,
// whether it succeeded or failed.
func (f *fabric) markExited(rank int) {
	f.mu.Lock()
	if !f.exited[rank] {
		f.exited[rank] = true
		f.liveCount--
	}
	f.mu.Unlock()
}

// aliveCount returns the number of rank goroutines still running.
func (f *fabric) aliveCount() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.liveCount
}

// Stats aggregates per-rank communication counters; the scaling studies use
// them to report communication volume per generation.
type Stats struct {
	SendCount   int64
	RecvCount   int64
	BytesSent   int64
	BytesRecv   int64
	Collectives int64
	// TimeBlocked is the cumulative wall-clock time the rank spent waiting
	// inside Recv and collective calls.
	TimeBlocked time.Duration
	// RetriedSends counts send attempts repeated after the fault injector
	// dropped the message (always zero with no injector).
	RetriedSends int64
	// DroppedMessages counts messages the fault injector dropped in
	// transit, including drops later recovered by a retry.
	DroppedMessages int64
	// DelayedMessages counts messages the fault injector held back with
	// extra in-transit latency.
	DelayedMessages int64
}

// Comm is one rank's handle on the communicator.  A Comm is owned by a
// single goroutine (its rank); it must not be shared.
type Comm struct {
	rank   int
	fabric *fabric

	// epoch is the generation this rank has reached, advanced by
	// FaultPoint; it timestamps failures and scopes injected faults.
	epoch atomic.Int64

	sendCount    atomic.Int64
	recvCount    atomic.Int64
	bytesSent    atomic.Int64
	bytesRecv    atomic.Int64
	collectives  atomic.Int64
	blockedNs    atomic.Int64
	retriedSends atomic.Int64
	droppedMsgs  atomic.Int64
	delayedMsgs  atomic.Int64
}

// Rank returns this rank's index in [0, Size).
func (c *Comm) Rank() int { return c.rank }

// Size returns the number of ranks in the communicator.
func (c *Comm) Size() int { return c.fabric.size }

// Stats returns a snapshot of this rank's communication counters.
func (c *Comm) Stats() Stats {
	return Stats{
		SendCount:       c.sendCount.Load(),
		RecvCount:       c.recvCount.Load(),
		BytesSent:       c.bytesSent.Load(),
		BytesRecv:       c.bytesRecv.Load(),
		Collectives:     c.collectives.Load(),
		TimeBlocked:     time.Duration(c.blockedNs.Load()),
		RetriedSends:    c.retriedSends.Load(),
		DroppedMessages: c.droppedMsgs.Load(),
		DelayedMessages: c.delayedMsgs.Load(),
	}
}

// AliveRanks returns the number of rank goroutines on this communicator
// that have not yet returned (liveness accounting).
func (c *Comm) AliveRanks() int { return c.fabric.aliveCount() }

// FaultPoint marks this rank's entry into the given epoch (generation).
// The epoch timestamps any later failure of this rank and scopes the fault
// injector's decisions.  When an injector is installed and schedules a
// crash for (rank, epoch), FaultPoint returns the injector's error; the
// rank must return it so the fabric propagates the failure to its peers.
func (c *Comm) FaultPoint(epoch int) error {
	c.epoch.Store(int64(epoch))
	if inj := c.fabric.opts.Injector; inj != nil {
		if err := inj.Crash(c.rank, epoch); err != nil {
			return err
		}
	}
	return nil
}

func (c *Comm) checkRank(rank int) error {
	if rank < 0 || rank >= c.fabric.size {
		return fmt.Errorf("%w: %d not in [0,%d)", ErrInvalidRank, rank, c.fabric.size)
	}
	return nil
}

func checkUserTag(tag int) error {
	if tag < 0 || tag >= reservedTagBase {
		return fmt.Errorf("%w: %d", ErrInvalidTag, tag)
	}
	return nil
}

// send delivers data to the destination mailbox; the payload is copied so
// the caller may reuse its buffer immediately.  With a fault injector
// installed, the message may be delayed (extra latency) or dropped; drops
// are retried with capped exponential backoff up to the communicator's
// retry budget, and a send issued after a peer failure has been recorded
// fails fast with the propagated *RankError.
func (c *Comm) send(to, tag int, data []byte) error {
	if err := c.checkRank(to); err != nil {
		return err
	}
	if inj := c.fabric.opts.Injector; inj != nil {
		if err := c.fabric.failure(); err != nil {
			return err
		}
		epoch := int(c.epoch.Load())
		if d := inj.Delay(c.rank, to, epoch); d > 0 {
			c.delayedMsgs.Add(1)
			time.Sleep(d)
		}
		attempt := 0
		for inj.Drop(c.rank, to, epoch) {
			c.droppedMsgs.Add(1)
			if attempt >= c.fabric.opts.sendRetries() {
				return fmt.Errorf("mpi: rank %d: send to rank %d (tag %d) dropped %d times at generation %d: %w",
					c.rank, to, tag, attempt+1, epoch, ErrSendFailed)
			}
			attempt++
			c.retriedSends.Add(1)
			time.Sleep(c.fabric.opts.retryBackoff(attempt))
		}
	}
	cp := make([]byte, len(data))
	copy(cp, data)
	c.fabric.mailboxes[to].put(message{src: c.rank, tag: tag, data: cp})
	c.sendCount.Add(1)
	c.bytesSent.Add(int64(len(data)))
	return nil
}

func (c *Comm) recv(from, tag int) ([]byte, int, error) {
	if from >= c.fabric.size {
		return nil, 0, fmt.Errorf("%w: %d not in [0,%d)", ErrInvalidRank, from, c.fabric.size)
	}
	//lint:allow randsource wall-clock measurement of receive-blocked time for RankReport comm stats; never feeds simulation state
	start := time.Now()
	msg, err := c.fabric.mailboxes[c.rank].take(from, tag)
	c.blockedNs.Add(int64(time.Since(start)))
	if err != nil {
		return nil, 0, err
	}
	c.recvCount.Add(1)
	c.bytesRecv.Add(int64(len(msg.data)))
	return msg.data, msg.src, nil
}

// Send transmits data to rank `to` with the given tag.  It does not block
// waiting for a matching receive.
func (c *Comm) Send(to, tag int, data []byte) error {
	if err := checkUserTag(tag); err != nil {
		return err
	}
	return c.send(to, tag, data)
}

// Recv blocks until a message with the given tag arrives from rank `from`
// (AnySource is not supported; pass the concrete rank).  Tag may be AnyTag.
func (c *Comm) Recv(from, tag int) ([]byte, error) {
	if tag != AnyTag {
		if err := checkUserTag(tag); err != nil {
			return nil, err
		}
	}
	if from < 0 {
		return nil, fmt.Errorf("%w: %d", ErrInvalidRank, from)
	}
	data, _, err := c.recv(from, tag)
	return data, err
}

// Request represents an in-flight non-blocking operation.
type Request struct {
	done chan struct{}
	data []byte
	err  error
}

// Wait blocks until the operation completes and returns the received data
// (nil for sends) and any error.
func (r *Request) Wait() ([]byte, error) {
	<-r.done
	return r.data, r.err
}

// Isend starts a non-blocking send.  Because sends are eager the operation
// completes immediately; the Request exists for symmetry with MPI code.
func (c *Comm) Isend(to, tag int, data []byte) *Request {
	req := &Request{done: make(chan struct{})}
	req.err = c.Send(to, tag, data)
	close(req.done)
	return req
}

// Irecv starts a non-blocking receive; Wait returns the payload.
func (c *Comm) Irecv(from, tag int) *Request {
	req := &Request{done: make(chan struct{})}
	go func() {
		req.data, req.err = c.Recv(from, tag)
		close(req.done)
	}()
	return req
}

// Bcast broadcasts data from root to every rank.  Every rank must call it;
// the root passes the payload, other ranks pass nil and receive the payload
// as the return value.
func (c *Comm) Bcast(root int, data []byte) ([]byte, error) {
	if err := c.checkRank(root); err != nil {
		return nil, err
	}
	c.collectives.Add(1)
	tag := reservedTagBase + 1
	if c.rank == root {
		for r := 0; r < c.fabric.size; r++ {
			if r == root {
				continue
			}
			if err := c.send(r, tag, data); err != nil {
				return nil, err
			}
		}
		return data, nil
	}
	//lint:allow randsource wall-clock measurement of broadcast-blocked time for RankReport comm stats; never feeds simulation state
	start := time.Now()
	out, _, err := c.recv(root, tag)
	c.blockedNs.Add(int64(time.Since(start)))
	return out, err
}

// Gather collects each rank's payload at root.  At root the result has Size
// entries indexed by rank (root's own contribution included); other ranks
// receive nil.
func (c *Comm) Gather(root int, data []byte) ([][]byte, error) {
	if err := c.checkRank(root); err != nil {
		return nil, err
	}
	c.collectives.Add(1)
	tag := reservedTagBase + 2
	if c.rank != root {
		return nil, c.send(root, tag, data)
	}
	out := make([][]byte, c.fabric.size)
	cp := make([]byte, len(data))
	copy(cp, data)
	out[root] = cp
	for r := 0; r < c.fabric.size; r++ {
		if r == root {
			continue
		}
		payload, _, err := c.recv(r, tag)
		if err != nil {
			return nil, err
		}
		out[r] = payload
	}
	return out, nil
}

// Barrier blocks until every rank has entered it.
func (c *Comm) Barrier() error {
	c.collectives.Add(1)
	const root = 0
	tagIn := reservedTagBase + 3
	tagOut := reservedTagBase + 4
	if c.rank == root {
		for r := 1; r < c.fabric.size; r++ {
			if _, _, err := c.recv(-1, tagIn); err != nil {
				return err
			}
		}
		for r := 1; r < c.fabric.size; r++ {
			if err := c.send(r, tagOut, nil); err != nil {
				return err
			}
		}
		return nil
	}
	if err := c.send(root, tagIn, nil); err != nil {
		return err
	}
	_, _, err := c.recv(root, tagOut)
	return err
}

// ReduceOp is a binary reduction operator over float64.
type ReduceOp func(a, b float64) float64

// Common reduction operators.
var (
	OpSum ReduceOp = func(a, b float64) float64 { return a + b }
	OpMax ReduceOp = func(a, b float64) float64 {
		if a > b {
			return a
		}
		return b
	}
	OpMin ReduceOp = func(a, b float64) float64 {
		if a < b {
			return a
		}
		return b
	}
)

// Reduce combines each rank's value with op; the result is returned at root
// (other ranks receive 0 and should ignore the value).
func (c *Comm) Reduce(root int, value float64, op ReduceOp) (float64, error) {
	if err := c.checkRank(root); err != nil {
		return 0, err
	}
	if op == nil {
		return 0, errors.New("mpi: nil reduce operator")
	}
	c.collectives.Add(1)
	tag := reservedTagBase + 5
	buf := encodeFloat64(value)
	if c.rank != root {
		return 0, c.send(root, tag, buf)
	}
	acc := value
	for r := 0; r < c.fabric.size; r++ {
		if r == root {
			continue
		}
		payload, _, err := c.recv(r, tag)
		if err != nil {
			return 0, err
		}
		v, err := decodeFloat64(payload)
		if err != nil {
			return 0, err
		}
		acc = op(acc, v)
	}
	return acc, nil
}

// Allreduce combines each rank's value with op and returns the result on
// every rank.
func (c *Comm) Allreduce(value float64, op ReduceOp) (float64, error) {
	total, err := c.Reduce(0, value, op)
	if err != nil {
		return 0, err
	}
	out, err := c.Bcast(0, encodeFloat64(total))
	if err != nil {
		return 0, err
	}
	return decodeFloat64(out)
}

// AllgatherFloat64 gathers one float64 from every rank and returns the full
// vector (indexed by rank) on every rank.
func (c *Comm) AllgatherFloat64(value float64) ([]float64, error) {
	gathered, err := c.Gather(0, encodeFloat64(value))
	if err != nil {
		return nil, err
	}
	var packed []byte
	if c.rank == 0 {
		packed = make([]byte, 0, 8*c.fabric.size)
		for _, g := range gathered {
			packed = append(packed, g...)
		}
	}
	packed, err = c.Bcast(0, packed)
	if err != nil {
		return nil, err
	}
	if len(packed) != 8*c.fabric.size {
		return nil, fmt.Errorf("mpi: allgather payload has %d bytes, want %d", len(packed), 8*c.fabric.size)
	}
	out := make([]float64, c.fabric.size)
	for i := range out {
		v, err := decodeFloat64(packed[8*i : 8*i+8])
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}

// Run launches size ranks, each executing fn with its own Comm, and waits
// for all of them to finish.  Run panics propagate to the caller as errors.
// The first rank failure is returned as a *RankError wrapping the rank's
// own error, and is propagated immediately to every peer blocked in a
// receive or collective, so an early rank death can never deadlock the
// survivors.
func Run(size int, fn func(c *Comm) error) error {
	return RunWithOptions(size, Options{}, fn)
}

// RunWithOptions behaves like Run with explicit failure semantics: a fault
// injector, a blocking deadline, and the send retry budget (see Options).
func RunWithOptions(size int, opts Options, fn func(c *Comm) error) error {
	if size <= 0 {
		return fmt.Errorf("mpi: communicator size must be positive, got %d", size)
	}
	if fn == nil {
		return errors.New("mpi: nil rank function")
	}
	f := newFabric(size, opts)
	errs := make([]error, size)
	var wg sync.WaitGroup
	for r := 0; r < size; r++ {
		wg.Add(1)
		go func(rank int) {
			c := &Comm{rank: rank, fabric: f}
			defer wg.Done()
			defer f.markExited(rank)
			defer func() {
				if p := recover(); p != nil {
					errs[rank] = fmt.Errorf("mpi: rank %d panicked: %v", rank, p)
				}
				if errs[rank] != nil {
					f.fail(rank, int(c.epoch.Load()), errs[rank])
				}
			}()
			errs[rank] = fn(c)
		}(r)
	}
	wg.Wait()
	// Prefer the recorded first failure: it carries the root cause, where
	// errs[0] may only hold a propagated *RankError.
	if err := f.failure(); err != nil {
		return err
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// RunCollect behaves like Run but also collects a per-rank result value.
func RunCollect[T any](size int, fn func(c *Comm) (T, error)) ([]T, error) {
	results := make([]T, size)
	err := Run(size, func(c *Comm) error {
		v, err := fn(c)
		results[c.Rank()] = v
		return err
	})
	return results, err
}

func encodeFloat64(v float64) []byte {
	bits := float64bits(v)
	buf := make([]byte, 8)
	for i := 0; i < 8; i++ {
		buf[i] = byte(bits >> (8 * uint(i)))
	}
	return buf
}

func decodeFloat64(buf []byte) (float64, error) {
	if len(buf) != 8 {
		return 0, fmt.Errorf("mpi: float64 payload has %d bytes", len(buf))
	}
	var bits uint64
	for i := 0; i < 8; i++ {
		bits |= uint64(buf[i]) << (8 * uint(i))
	}
	return float64frombits(bits), nil
}
