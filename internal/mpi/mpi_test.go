package mpi

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
	"testing/quick"
)

func TestRunValidation(t *testing.T) {
	if err := Run(0, func(c *Comm) error { return nil }); err == nil {
		t.Fatal("Run accepted size 0")
	}
	if err := Run(-3, func(c *Comm) error { return nil }); err == nil {
		t.Fatal("Run accepted a negative size")
	}
	if err := Run(2, nil); err == nil {
		t.Fatal("Run accepted a nil function")
	}
}

func TestRunRankAndSize(t *testing.T) {
	const size = 7
	var mu sync.Mutex
	seen := map[int]bool{}
	err := Run(size, func(c *Comm) error {
		if c.Size() != size {
			return fmt.Errorf("size = %d", c.Size())
		}
		mu.Lock()
		defer mu.Unlock()
		if seen[c.Rank()] {
			return fmt.Errorf("rank %d launched twice", c.Rank())
		}
		seen[c.Rank()] = true
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != size {
		t.Fatalf("launched %d distinct ranks, want %d", len(seen), size)
	}
}

func TestRunPropagatesErrors(t *testing.T) {
	wantErr := errors.New("boom")
	err := Run(4, func(c *Comm) error {
		if c.Rank() == 2 {
			return wantErr
		}
		return nil
	})
	if !errors.Is(err, wantErr) {
		t.Fatalf("Run returned %v, want the rank error", err)
	}
}

func TestRunRecoversPanics(t *testing.T) {
	err := Run(3, func(c *Comm) error {
		if c.Rank() == 1 {
			panic("bad rank")
		}
		return nil
	})
	if err == nil {
		t.Fatal("panic in a rank was not reported")
	}
}

func TestSendRecvBasic(t *testing.T) {
	err := Run(2, func(c *Comm) error {
		if c.Rank() == 0 {
			return c.Send(1, 5, []byte("hello"))
		}
		data, err := c.Recv(0, 5)
		if err != nil {
			return err
		}
		if string(data) != "hello" {
			return fmt.Errorf("received %q", data)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSendRecvOrderingPerPair(t *testing.T) {
	const n = 100
	err := Run(2, func(c *Comm) error {
		if c.Rank() == 0 {
			for i := 0; i < n; i++ {
				if err := c.Send(1, 1, []byte{byte(i)}); err != nil {
					return err
				}
			}
			return nil
		}
		for i := 0; i < n; i++ {
			data, err := c.Recv(0, 1)
			if err != nil {
				return err
			}
			if data[0] != byte(i) {
				return fmt.Errorf("message %d arrived out of order (got %d)", i, data[0])
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTagMatching(t *testing.T) {
	err := Run(2, func(c *Comm) error {
		if c.Rank() == 0 {
			if err := c.Send(1, 10, []byte("ten")); err != nil {
				return err
			}
			return c.Send(1, 20, []byte("twenty"))
		}
		// Receive the later tag first: the tag-10 message must stay queued.
		d20, err := c.Recv(0, 20)
		if err != nil {
			return err
		}
		d10, err := c.Recv(0, 10)
		if err != nil {
			return err
		}
		if string(d20) != "twenty" || string(d10) != "ten" {
			return fmt.Errorf("tag matching failed: %q %q", d20, d10)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAnyTagReceive(t *testing.T) {
	err := Run(2, func(c *Comm) error {
		if c.Rank() == 0 {
			return c.Send(1, 42, []byte("x"))
		}
		data, err := c.Recv(0, AnyTag)
		if err != nil {
			return err
		}
		if string(data) != "x" {
			return fmt.Errorf("got %q", data)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSendBufferReuseSafe(t *testing.T) {
	err := Run(2, func(c *Comm) error {
		if c.Rank() == 0 {
			buf := []byte{1, 2, 3}
			if err := c.Send(1, 1, buf); err != nil {
				return err
			}
			buf[0] = 99 // mutate after send; receiver must still see 1,2,3
			return nil
		}
		data, err := c.Recv(0, 1)
		if err != nil {
			return err
		}
		if !bytes.Equal(data, []byte{1, 2, 3}) {
			return fmt.Errorf("send did not copy the payload: %v", data)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestInvalidRanksAndTags(t *testing.T) {
	err := Run(2, func(c *Comm) error {
		if err := c.Send(5, 1, nil); !errors.Is(err, ErrInvalidRank) {
			return fmt.Errorf("Send to invalid rank: %v", err)
		}
		if err := c.Send(-1, 1, nil); !errors.Is(err, ErrInvalidRank) {
			return fmt.Errorf("Send to negative rank: %v", err)
		}
		if err := c.Send(0, -5, nil); !errors.Is(err, ErrInvalidTag) {
			return fmt.Errorf("Send with negative tag: %v", err)
		}
		if err := c.Send(0, reservedTagBase, nil); !errors.Is(err, ErrInvalidTag) {
			return fmt.Errorf("Send with reserved tag: %v", err)
		}
		if _, err := c.Recv(9, 1); !errors.Is(err, ErrInvalidRank) {
			return fmt.Errorf("Recv from invalid rank: %v", err)
		}
		if _, err := c.Recv(-1, 1); !errors.Is(err, ErrInvalidRank) {
			return fmt.Errorf("Recv from negative rank: %v", err)
		}
		if _, err := c.Recv(0, reservedTagBase+7); !errors.Is(err, ErrInvalidTag) {
			return fmt.Errorf("Recv with reserved tag: %v", err)
		}
		if _, err := c.Bcast(17, nil); !errors.Is(err, ErrInvalidRank) {
			return fmt.Errorf("Bcast with invalid root: %v", err)
		}
		if _, err := c.Reduce(0, 1, nil); err == nil {
			return errors.New("Reduce accepted a nil operator")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestIsendIrecv(t *testing.T) {
	err := Run(2, func(c *Comm) error {
		if c.Rank() == 0 {
			req := c.Isend(1, 3, []byte("async"))
			_, err := req.Wait()
			return err
		}
		req := c.Irecv(0, 3)
		data, err := req.Wait()
		if err != nil {
			return err
		}
		if string(data) != "async" {
			return fmt.Errorf("got %q", data)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBcastDeliversToAllRanks(t *testing.T) {
	const size = 9
	payload := []byte("strategy-table-update")
	results, err := RunCollect(size, func(c *Comm) ([]byte, error) {
		if c.Rank() == 3 {
			return c.Bcast(3, payload)
		}
		return c.Bcast(3, nil)
	})
	if err != nil {
		t.Fatal(err)
	}
	for r, got := range results {
		if !bytes.Equal(got, payload) {
			t.Fatalf("rank %d received %q", r, got)
		}
	}
}

func TestGather(t *testing.T) {
	const size = 6
	err := Run(size, func(c *Comm) error {
		data := []byte{byte(c.Rank() * 10)}
		got, err := c.Gather(2, data)
		if err != nil {
			return err
		}
		if c.Rank() != 2 {
			if got != nil {
				return fmt.Errorf("non-root rank %d received gather data", c.Rank())
			}
			return nil
		}
		if len(got) != size {
			return fmt.Errorf("root gathered %d entries", len(got))
		}
		for r, payload := range got {
			if len(payload) != 1 || payload[0] != byte(r*10) {
				return fmt.Errorf("rank %d contribution = %v", r, payload)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBarrierEstablishesOrdering(t *testing.T) {
	// Every rank increments a counter before the barrier; after the barrier
	// every rank must observe the full count.  Run several rounds to give a
	// broken barrier a chance to interleave.
	const size = 8
	const rounds = 20
	var counter [rounds]int64
	var mu sync.Mutex
	err := Run(size, func(c *Comm) error {
		for round := 0; round < rounds; round++ {
			mu.Lock()
			counter[round]++
			mu.Unlock()
			if err := c.Barrier(); err != nil {
				return err
			}
			mu.Lock()
			v := counter[round]
			mu.Unlock()
			if v != size {
				return fmt.Errorf("round %d: rank %d observed %d increments after the barrier", round, c.Rank(), v)
			}
			if err := c.Barrier(); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestReduceSum(t *testing.T) {
	const size = 5
	err := Run(size, func(c *Comm) error {
		v, err := c.Reduce(0, float64(c.Rank()+1), OpSum)
		if err != nil {
			return err
		}
		if c.Rank() == 0 && v != 15 {
			return fmt.Errorf("reduce sum = %v, want 15", v)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllreduceMaxMin(t *testing.T) {
	const size = 6
	err := Run(size, func(c *Comm) error {
		max, err := c.Allreduce(float64(c.Rank()), OpMax)
		if err != nil {
			return err
		}
		if max != float64(size-1) {
			return fmt.Errorf("allreduce max = %v on rank %d", max, c.Rank())
		}
		min, err := c.Allreduce(float64(c.Rank()), OpMin)
		if err != nil {
			return err
		}
		if min != 0 {
			return fmt.Errorf("allreduce min = %v on rank %d", min, c.Rank())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllgatherFloat64(t *testing.T) {
	const size = 5
	err := Run(size, func(c *Comm) error {
		vec, err := c.AllgatherFloat64(float64(c.Rank()) * 2)
		if err != nil {
			return err
		}
		if len(vec) != size {
			return fmt.Errorf("allgather length %d", len(vec))
		}
		for r, v := range vec {
			if v != float64(r)*2 {
				return fmt.Errorf("rank %d entry %d = %v", c.Rank(), r, v)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestStatsCounters(t *testing.T) {
	err := Run(2, func(c *Comm) error {
		if c.Rank() == 0 {
			if err := c.Send(1, 1, make([]byte, 100)); err != nil {
				return err
			}
			st := c.Stats()
			if st.SendCount != 1 || st.BytesSent != 100 {
				return fmt.Errorf("sender stats %+v", st)
			}
			return nil
		}
		if _, err := c.Recv(0, 1); err != nil {
			return err
		}
		st := c.Stats()
		if st.RecvCount != 1 || st.BytesRecv != 100 {
			return fmt.Errorf("receiver stats %+v", st)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCollectiveStatsCount(t *testing.T) {
	err := Run(3, func(c *Comm) error {
		if _, err := c.Bcast(0, []byte("x")); err != nil {
			return err
		}
		if err := c.Barrier(); err != nil {
			return err
		}
		if c.Stats().Collectives != 2 {
			return fmt.Errorf("collective count = %d", c.Stats().Collectives)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunCollect(t *testing.T) {
	vals, err := RunCollect(4, func(c *Comm) (int, error) {
		return c.Rank() * c.Rank(), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for r, v := range vals {
		if v != r*r {
			t.Fatalf("rank %d collected %d", r, v)
		}
	}
}

func TestManyToOneFitnessReturnPattern(t *testing.T) {
	// Reproduces the paper's pairwise-comparison exchange: rank 0 (Nature)
	// broadcasts a pair of selected SSets, the owning ranks send their
	// fitness back point-to-point, and rank 0 broadcasts the update.
	const size = 16
	err := Run(size, func(c *Comm) error {
		const tagFitness = 7
		selected := []byte{3, 11}
		pair, err := c.Bcast(0, selected)
		if err != nil {
			return err
		}
		if c.Rank() == int(pair[0]) || c.Rank() == int(pair[1]) {
			if err := c.Send(0, tagFitness, encodeFloat64(float64(c.Rank())*100)); err != nil {
				return err
			}
		}
		if c.Rank() == 0 {
			got := map[int]float64{}
			for i := 0; i < 2; i++ {
				data, src, err := c.recv(-1, tagFitness)
				if err != nil {
					return err
				}
				v, err := decodeFloat64(data)
				if err != nil {
					return err
				}
				got[src] = v
			}
			if got[3] != 300 || got[11] != 1100 {
				return fmt.Errorf("fitness returns wrong: %v", got)
			}
		}
		// Everyone syncs on the resulting update.
		if _, err := c.Bcast(0, []byte("update")); err != nil {
			return err
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// Property: float64 encode/decode round-trips.
func TestQuickFloatRoundTrip(t *testing.T) {
	f := func(v float64) bool {
		got, err := decodeFloat64(encodeFloat64(v))
		if err != nil {
			return false
		}
		return got == v || (v != v && got != got) // NaN compares unequal
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Bcast delivers identical bytes to every rank for arbitrary
// payloads and communicator sizes.
func TestQuickBcastIdentical(t *testing.T) {
	f := func(payload []byte, sizeSel uint8) bool {
		size := int(sizeSel%6) + 2
		results, err := RunCollect(size, func(c *Comm) ([]byte, error) {
			if c.Rank() == 0 {
				return c.Bcast(0, payload)
			}
			return c.Bcast(0, nil)
		})
		if err != nil {
			return false
		}
		for _, r := range results {
			if !bytes.Equal(r, payload) {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 25}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSendRecvSmall(b *testing.B) {
	b.ReportAllocs()
	err := Run(2, func(c *Comm) error {
		payload := make([]byte, 64)
		if c.Rank() == 0 {
			for i := 0; i < b.N; i++ {
				if err := c.Send(1, 1, payload); err != nil {
					return err
				}
			}
			return nil
		}
		for i := 0; i < b.N; i++ {
			if _, err := c.Recv(0, 1); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		b.Fatal(err)
	}
}

func BenchmarkBcast16Ranks(b *testing.B) {
	payload := make([]byte, 512)
	b.ReportAllocs()
	err := Run(16, func(c *Comm) error {
		for i := 0; i < b.N; i++ {
			var err error
			if c.Rank() == 0 {
				_, err = c.Bcast(0, payload)
			} else {
				_, err = c.Bcast(0, nil)
			}
			if err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		b.Fatal(err)
	}
}
