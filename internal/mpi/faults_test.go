package mpi

import (
	"errors"
	"testing"
	"time"

	"evogame/internal/faults"
)

// watchdog runs fn and fails the test if it has not returned within d:
// the whole point of the fault-hardened fabric is that no blocking
// primitive can hang forever once a peer rank dies.
func watchdog(t *testing.T, d time.Duration, fn func() error) error {
	t.Helper()
	done := make(chan error, 1)
	go func() { done <- fn() }()
	select {
	case err := <-done:
		return err
	case <-time.After(d):
		t.Fatalf("watchdog: still blocked after %v (deadlock)", d)
		return nil
	}
}

// TestRankErrorMidCollectiveDoesNotDeadlock is the regression test for the
// pre-existing hang: a rank erroring out in the middle of a collective
// left its peers blocked forever in their mailbox waits.  The fabric now
// propagates the first failure to every blocked mailbox immediately.
func TestRankErrorMidCollectiveDoesNotDeadlock(t *testing.T) {
	wantErr := errors.New("boom")
	err := watchdog(t, 5*time.Second, func() error {
		return Run(4, func(c *Comm) error {
			if c.Rank() == 2 {
				return wantErr // dies before joining the collective
			}
			// The other ranks enter a barrier that can never complete.
			if err := c.Barrier(); err != nil {
				return err
			}
			_, err := c.Bcast(0, []byte("x"))
			return err
		})
	})
	if err == nil {
		t.Fatal("Run returned nil; want the rank-2 failure")
	}
	if !errors.Is(err, wantErr) {
		t.Fatalf("Run error %v does not wrap the root cause", err)
	}
	var re *RankError
	if !errors.As(err, &re) || re.Rank != 2 {
		t.Fatalf("Run error %v, want *RankError for rank 2", err)
	}
}

// TestRankDeathUnblocksPendingRecv pins the point-to-point side: a Recv
// posted against a rank that later dies returns ErrRankFailed instead of
// waiting forever.
func TestRankDeathUnblocksPendingRecv(t *testing.T) {
	wantErr := errors.New("rank 1 gave up")
	err := watchdog(t, 5*time.Second, func() error {
		return Run(3, func(c *Comm) error {
			switch c.Rank() {
			case 1:
				return wantErr
			case 2:
				_, err := c.Recv(1, 7) // rank 1 never sends
				if !errors.Is(err, ErrRankFailed) {
					t.Errorf("Recv after peer death: %v, want ErrRankFailed", err)
				}
				return err
			default:
				return nil
			}
		})
	})
	if !errors.Is(err, ErrRankFailed) || !errors.Is(err, wantErr) {
		t.Fatalf("Run error %v, want ErrRankFailed wrapping %v", err, wantErr)
	}
}

// TestQueuedMessageDeliveredBeforeFailure pins the ordering contract: a
// message that was already delivered to the mailbox is still received
// after its sender dies; only the next (unsatisfiable) wait fails.
func TestQueuedMessageDeliveredBeforeFailure(t *testing.T) {
	watchdog(t, 5*time.Second, func() error {
		return Run(2, func(c *Comm) error {
			if c.Rank() == 0 {
				if err := c.Send(1, 7, []byte("last words")); err != nil {
					return err
				}
				return errors.New("rank 0 dies after sending")
			}
			data, err := c.Recv(0, 7)
			if err != nil {
				t.Errorf("Recv of a queued message failed: %v", err)
				return err
			}
			if string(data) != "last words" {
				t.Errorf("Recv = %q, want %q", data, "last words")
			}
			_, err = c.Recv(0, 8) // nothing more is coming
			if !errors.Is(err, ErrRankFailed) {
				t.Errorf("Recv after sender death: %v, want ErrRankFailed", err)
			}
			return nil
		})
	})
}

// TestDeadlineExpires pins the deadline backstop: two ranks in a mutual
// Recv deadlock both fail with ErrDeadline instead of hanging.
func TestDeadlineExpires(t *testing.T) {
	err := watchdog(t, 5*time.Second, func() error {
		return RunWithOptions(2, Options{Deadline: 50 * time.Millisecond}, func(c *Comm) error {
			_, err := c.Recv(1-c.Rank(), 3) // neither rank ever sends
			if !errors.Is(err, ErrDeadline) {
				t.Errorf("rank %d Recv error %v, want ErrDeadline", c.Rank(), err)
			}
			return err
		})
	})
	if !errors.Is(err, ErrDeadline) {
		t.Fatalf("Run error %v, want ErrDeadline", err)
	}
}

// TestDeadlineDoesNotFireOnTimelyTraffic guards against false positives:
// normal traffic under a generous deadline completes without error.
func TestDeadlineDoesNotFireOnTimelyTraffic(t *testing.T) {
	err := watchdog(t, 5*time.Second, func() error {
		return RunWithOptions(3, Options{Deadline: 2 * time.Second}, func(c *Comm) error {
			for i := 0; i < 10; i++ {
				if _, err := c.Bcast(0, []byte{byte(i)}); err != nil {
					return err
				}
				if err := c.Barrier(); err != nil {
					return err
				}
			}
			return nil
		})
	})
	if err != nil {
		t.Fatalf("timely run failed: %v", err)
	}
}

// TestInjectedDropsRecoverWithinRetryBudget pins the drop-retry interplay:
// a bounded transient drop burst below the retry budget is invisible to
// the protocol (the message arrives) and visible only in the counters.
func TestInjectedDropsRecoverWithinRetryBudget(t *testing.T) {
	plan := faults.NewPlan(faults.Event{Kind: faults.Drop, Gen: 0, Rank: 0, Count: 3})
	var stats Stats
	err := watchdog(t, 5*time.Second, func() error {
		return RunWithOptions(2, Options{Injector: plan}, func(c *Comm) error {
			if c.Rank() == 0 {
				if err := c.Send(1, 7, []byte("through the storm")); err != nil {
					return err
				}
				stats = c.Stats()
				return nil
			}
			data, err := c.Recv(0, 7)
			if err != nil {
				return err
			}
			if string(data) != "through the storm" {
				t.Errorf("Recv = %q", data)
			}
			return nil
		})
	})
	if err != nil {
		t.Fatalf("run with recoverable drops failed: %v", err)
	}
	if stats.DroppedMessages != 3 || stats.RetriedSends != 3 {
		t.Fatalf("stats = %d dropped / %d retried, want 3 / 3", stats.DroppedMessages, stats.RetriedSends)
	}
}

// TestSendFailsAfterRetriesExhausted pins the other side: a permanent drop
// exhausts the budget and surfaces as ErrSendFailed, which also matches
// ErrRankFailed at the Run level (the sender dies of it).
func TestSendFailsAfterRetriesExhausted(t *testing.T) {
	plan := faults.NewPlan(faults.Event{Kind: faults.Drop, Gen: 0, Rank: 0, Count: -1})
	err := watchdog(t, 5*time.Second, func() error {
		return RunWithOptions(2, Options{Injector: plan, SendRetries: 2, RetryBackoff: time.Microsecond}, func(c *Comm) error {
			if c.Rank() == 0 {
				return c.Send(1, 7, []byte("never arrives"))
			}
			_, err := c.Recv(0, 7)
			return err
		})
	})
	if !errors.Is(err, ErrSendFailed) {
		t.Fatalf("Run error %v, want ErrSendFailed", err)
	}
	if !errors.Is(err, ErrRankFailed) {
		t.Fatalf("Run error %v should also match ErrRankFailed", err)
	}
}

// TestInjectedDelayCountsAndDelivers pins delay injection: the message
// still arrives and the delay is counted.
func TestInjectedDelayCountsAndDelivers(t *testing.T) {
	plan := faults.NewPlan(faults.Event{Kind: faults.Delay, Gen: 0, Rank: 0, Delay: time.Millisecond})
	var stats Stats
	err := watchdog(t, 5*time.Second, func() error {
		return RunWithOptions(2, Options{Injector: plan}, func(c *Comm) error {
			if c.Rank() == 0 {
				if err := c.Send(1, 7, []byte("late")); err != nil {
					return err
				}
				stats = c.Stats()
				return nil
			}
			_, err := c.Recv(0, 7)
			return err
		})
	})
	if err != nil {
		t.Fatalf("run with injected delay failed: %v", err)
	}
	if stats.DelayedMessages != 1 {
		t.Fatalf("DelayedMessages = %d, want 1", stats.DelayedMessages)
	}
}

// TestFaultPointInjectsCrash pins the generation-loop crash hook: the
// injected CrashError propagates through Run and unblocks the peers.
func TestFaultPointInjectsCrash(t *testing.T) {
	plan := faults.NewPlan(faults.Event{Kind: faults.Crash, Gen: 3, Rank: 1})
	err := watchdog(t, 5*time.Second, func() error {
		return Run(3, func(c *Comm) error {
			for gen := 0; gen < 10; gen++ {
				if err := c.FaultPoint(gen); err != nil {
					return err
				}
				if err := c.Barrier(); err != nil {
					return err
				}
			}
			return nil
		})
	})
	if err != nil {
		t.Fatal("Run without injector must ignore FaultPoint; separate run below")
	}
	err = watchdog(t, 5*time.Second, func() error {
		return RunWithOptions(3, Options{Injector: plan}, func(c *Comm) error {
			for gen := 0; gen < 10; gen++ {
				if err := c.FaultPoint(gen); err != nil {
					return err
				}
				if err := c.Barrier(); err != nil {
					return err
				}
			}
			return nil
		})
	})
	if !errors.Is(err, faults.ErrInjected) {
		t.Fatalf("Run error %v, want faults.ErrInjected", err)
	}
	var re *RankError
	if !errors.As(err, &re) || re.Rank != 1 || re.Gen < 3 {
		t.Fatalf("Run error %v, want *RankError{Rank:1, Gen>=3}", err)
	}
	var ce *faults.CrashError
	if !errors.As(err, &ce) || ce.Rank != 1 || ce.Gen != 3 {
		t.Fatalf("Run error %v, want wrapped CrashError{Rank:1, Gen:3}", err)
	}
}

// TestAliveRanks pins the liveness accounting.
func TestAliveRanks(t *testing.T) {
	var mid int
	err := Run(3, func(c *Comm) error {
		if c.Rank() == 0 {
			if err := c.Barrier(); err != nil {
				return err
			}
			mid = c.AliveRanks()
		} else if err := c.Barrier(); err != nil {
			return err
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if mid < 1 || mid > 3 {
		t.Fatalf("AliveRanks mid-run = %d, want within [1,3]", mid)
	}
}
