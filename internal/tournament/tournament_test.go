package tournament

import (
	"testing"

	"evogame/internal/strategy"
)

func TestRunValidation(t *testing.T) {
	if _, err := Run(nil, Config{}); err == nil {
		t.Fatal("accepted no entrants")
	}
	one := []Entrant{{Name: "solo", Strategy: strategy.TFT(1)}}
	if _, err := Run(one, Config{}); err == nil {
		t.Fatal("accepted a single entrant")
	}
	bad := []Entrant{{Name: "a", Strategy: strategy.TFT(1)}, {Name: "b", Strategy: nil}}
	if _, err := Run(bad, Config{}); err == nil {
		t.Fatal("accepted a nil strategy")
	}
	unnamed := []Entrant{{Name: "", Strategy: strategy.TFT(1)}, {Name: "b", Strategy: strategy.AllC(1)}}
	if _, err := Run(unnamed, Config{}); err == nil {
		t.Fatal("accepted an unnamed entrant")
	}
	dup := []Entrant{{Name: "x", Strategy: strategy.TFT(1)}, {Name: "x", Strategy: strategy.AllC(1)}}
	if _, err := Run(dup, Config{}); err == nil {
		t.Fatal("accepted duplicate names")
	}
	mixedMem := []Entrant{{Name: "a", Strategy: strategy.TFT(1)}, {Name: "b", Strategy: strategy.AllC(2)}}
	if _, err := Run(mixedMem, Config{MemorySteps: 1}); err == nil {
		t.Fatal("accepted mismatched memory depths")
	}
}

func TestTFTAndGRIMTopTheClassicNoiselessField(t *testing.T) {
	// With the paper's payoff values and no errors, the retaliating
	// cooperators (TFT and memory-one GRIM, which coincide) top the classic
	// field, and the unconditional cooperator is never the winner.
	res, err := Run(ClassicField(1), Config{Rounds: 200, MemorySteps: 1})
	if err != nil {
		t.Fatal(err)
	}
	winner := res.Winner()
	if winner != "TFT" && winner != "GRIM" {
		t.Fatalf("winner = %q, want TFT or GRIM; standings: %+v", winner, res.Standings)
	}
	byName := map[string]Standing{}
	for _, s := range res.Standings {
		byName[s.Name] = s
	}
	if byName["TFT"].TotalScore < byName["ALLD"].TotalScore {
		t.Fatal("TFT should out-score ALLD in the classic field")
	}
	if byName["WSLS"].TotalScore < byName["ALLD"].TotalScore {
		t.Fatal("WSLS should out-score ALLD in the classic field")
	}
	if winner == "ALLC" {
		t.Fatal("the unconditional cooperator should not win")
	}
}

func TestWSLSBeatsTFTUnderNoise(t *testing.T) {
	// The WSLS result the paper validates against: with execution errors,
	// WSLS out-earns TFT in a cooperative field because it recovers mutual
	// cooperation after an error instead of echoing retaliation.
	entrants := []Entrant{
		{Name: "TFT", Strategy: strategy.TFT(1)},
		{Name: "WSLS", Strategy: strategy.WSLS(1)},
		{Name: "ALLC", Strategy: strategy.AllC(1)},
		{Name: "GRIM", Strategy: strategy.GRIM(1)},
	}
	res, err := Run(entrants, Config{Rounds: 200, Repetitions: 20, Noise: 0.03, IncludeSelfPlay: true, MemorySteps: 1, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]Standing{}
	for _, s := range res.Standings {
		byName[s.Name] = s
	}
	if byName["WSLS"].TotalScore <= byName["TFT"].TotalScore {
		t.Fatalf("WSLS (%v) should out-score TFT (%v) under noise",
			byName["WSLS"].TotalScore, byName["TFT"].TotalScore)
	}
}

func TestScoresMatrixConsistency(t *testing.T) {
	res, err := Run(ClassicField(1), Config{Rounds: 100, MemorySteps: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Scores) != 6 {
		t.Fatalf("score matrix has %d rows", len(res.Scores))
	}
	// Row sums must equal the entrant totals.
	nameToIdx := map[string]int{}
	for i, e := range ClassicField(1) {
		nameToIdx[e.Name] = i
	}
	for _, s := range res.Standings {
		i := nameToIdx[s.Name]
		sum := 0.0
		for j := range res.Scores[i] {
			sum += res.Scores[i][j]
		}
		if sum != s.TotalScore {
			t.Fatalf("%s: row sum %v != total %v", s.Name, sum, s.TotalScore)
		}
		if s.Games != 5 {
			t.Fatalf("%s played %d games, want 5 (no self-play, 1 repetition)", s.Name, s.Games)
		}
	}
	// Diagonal must be zero without self-play.
	for i := range res.Scores {
		if res.Scores[i][i] != 0 {
			t.Fatal("diagonal non-zero without self-play")
		}
	}
}

func TestSelfPlayAndRepetitions(t *testing.T) {
	entrants := []Entrant{
		{Name: "A", Strategy: strategy.AllC(1)},
		{Name: "B", Strategy: strategy.AllD(1)},
	}
	res, err := Run(entrants, Config{Rounds: 10, Repetitions: 3, IncludeSelfPlay: true, MemorySteps: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range res.Standings {
		// Each entrant plays the other 3 times and itself 3 times.
		if s.Games != 6 {
			t.Fatalf("%s played %d games, want 6", s.Name, s.Games)
		}
	}
	byName := map[string]Standing{}
	for _, s := range res.Standings {
		byName[s.Name] = s
	}
	// AllD: 3*(10*4) vs AllC + 3*(10*1) self = 150; AllC: 3*0 + 3*30 = 90.
	if byName["B"].TotalScore != 150 || byName["A"].TotalScore != 90 {
		t.Fatalf("scores = %+v", byName)
	}
	if byName["B"].Wins != 3 {
		t.Fatalf("AllD should win its 3 games against AllC, got %d", byName["B"].Wins)
	}
	if byName["B"].Draws != 3 || byName["A"].Draws != 3 {
		t.Fatal("self-play games should be draws")
	}
}

func TestDeterministicGivenSeed(t *testing.T) {
	run := func() Result {
		res, err := Run(ClassicField(1), Config{Rounds: 100, Repetitions: 5, Noise: 0.05, MemorySteps: 1, Seed: 11})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	for i := range a.Standings {
		if a.Standings[i] != b.Standings[i] {
			t.Fatalf("noisy tournaments with the same seed diverge at rank %d", i)
		}
	}
}

func TestMemoryTwoField(t *testing.T) {
	entrants := append(ClassicField(2), Entrant{Name: "TF2T", Strategy: mustTF2T(t)})
	res, err := Run(entrants, Config{Rounds: 100, MemorySteps: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Standings) != 7 {
		t.Fatalf("standings has %d rows", len(res.Standings))
	}
	if res.Winner() == "ALLC" {
		t.Fatal("ALLC should not win the memory-two field")
	}
}

func mustTF2T(t *testing.T) *strategy.Pure {
	t.Helper()
	p, err := strategy.TF2T(2)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestClassicFieldShape(t *testing.T) {
	field := ClassicField(3)
	if len(field) != 6 {
		t.Fatalf("classic field has %d entrants", len(field))
	}
	for _, e := range field {
		if e.Strategy.MemorySteps() != 3 {
			t.Fatalf("%s has memory %d", e.Name, e.Strategy.MemorySteps())
		}
	}
}

func BenchmarkClassicTournament(b *testing.B) {
	field := ClassicField(1)
	for i := 0; i < b.N; i++ {
		if _, err := Run(field, Config{Rounds: 200, Repetitions: 5, MemorySteps: 1}); err != nil {
			b.Fatal(err)
		}
	}
}
