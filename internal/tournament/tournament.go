// Package tournament implements Axelrod-style round-robin tournaments of
// Iterated Prisoner's Dilemma strategies.  The paper motivates the study of
// memory-n strategies with Axelrod's tournaments (Section III-B, where
// Tit-For-Tat repeatedly emerged as the winner); this package provides that
// experimental setting as a library feature: every entrant plays every other
// entrant (optionally itself) for a configurable number of repetitions, and
// the accumulated scores produce a ranking.
package tournament

import (
	"fmt"
	"sort"

	"evogame/internal/game"
	"evogame/internal/rng"
	"evogame/internal/strategy"
)

// Entrant is one tournament participant.
type Entrant struct {
	Name     string
	Strategy strategy.Strategy
}

// Config controls a round-robin tournament.
type Config struct {
	// Rounds is the number of IPD rounds per game (the paper and Axelrod's
	// tournaments use 200).  Zero selects 200.
	Rounds int
	// Repetitions is the number of times each pairing is played (Axelrod
	// used five).  Zero selects 1.
	Repetitions int
	// Noise is the per-move execution error probability.
	Noise float64
	// IncludeSelfPlay also plays each entrant against a copy of itself.
	IncludeSelfPlay bool
	// MemorySteps is the memory depth shared by all entrants.
	MemorySteps int
	// Seed drives noisy and mixed-strategy games.
	Seed uint64
}

// Standing is one row of the final ranking.
type Standing struct {
	Name string
	// TotalScore is the summed payoff across all games.
	TotalScore float64
	// MeanPerGame is the mean payoff per game played.
	MeanPerGame float64
	// Games is the number of games the entrant played.
	Games int
	// Wins counts games in which the entrant strictly out-scored its
	// opponent; Draws counts equal scores.
	Wins, Draws int
}

// Result is the outcome of a tournament.
type Result struct {
	// Standings is sorted from highest to lowest total score (ties broken by
	// name for determinism).
	Standings []Standing
	// Scores[i][j] is the total payoff entrant i earned against entrant j
	// across all repetitions; the diagonal is zero unless self-play is
	// enabled.
	Scores [][]float64
}

// Winner returns the name of the top-ranked entrant.
func (r Result) Winner() string {
	if len(r.Standings) == 0 {
		return ""
	}
	return r.Standings[0].Name
}

// Run plays the round-robin tournament.
func Run(entrants []Entrant, cfg Config) (Result, error) {
	if len(entrants) < 2 {
		return Result{}, fmt.Errorf("tournament: need at least 2 entrants, got %d", len(entrants))
	}
	if cfg.Rounds == 0 {
		cfg.Rounds = game.DefaultRounds
	}
	if cfg.Repetitions == 0 {
		cfg.Repetitions = 1
	}
	if cfg.Repetitions < 0 || cfg.Rounds < 0 {
		return Result{}, fmt.Errorf("tournament: rounds and repetitions must be positive")
	}
	if cfg.MemorySteps == 0 {
		cfg.MemorySteps = 1
	}
	names := map[string]bool{}
	for i, e := range entrants {
		if e.Strategy == nil {
			return Result{}, fmt.Errorf("tournament: entrant %d has a nil strategy", i)
		}
		if e.Name == "" {
			return Result{}, fmt.Errorf("tournament: entrant %d has no name", i)
		}
		if names[e.Name] {
			return Result{}, fmt.Errorf("tournament: duplicate entrant name %q", e.Name)
		}
		names[e.Name] = true
		if e.Strategy.MemorySteps() != cfg.MemorySteps {
			return Result{}, fmt.Errorf("tournament: entrant %q has memory %d, tournament uses %d",
				e.Name, e.Strategy.MemorySteps(), cfg.MemorySteps)
		}
	}
	eng, err := game.NewEngine(game.EngineConfig{
		Rounds:      cfg.Rounds,
		MemorySteps: cfg.MemorySteps,
		Noise:       cfg.Noise,
		StateMode:   game.StateRolling,
		AccumMode:   game.AccumLookup,
	})
	if err != nil {
		return Result{}, err
	}
	src := rng.New(cfg.Seed)

	n := len(entrants)
	scores := make([][]float64, n)
	for i := range scores {
		scores[i] = make([]float64, n)
	}
	standings := make([]Standing, n)
	for i := range standings {
		standings[i].Name = entrants[i].Name
	}

	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			if i == j && !cfg.IncludeSelfPlay {
				continue
			}
			for rep := 0; rep < cfg.Repetitions; rep++ {
				var gameSrc *rng.Source
				if cfg.Noise > 0 || !entrants[i].Strategy.Deterministic() || !entrants[j].Strategy.Deterministic() {
					gameSrc = src.Split()
				}
				res, err := eng.Play(entrants[i].Strategy, entrants[j].Strategy, gameSrc)
				if err != nil {
					return Result{}, fmt.Errorf("tournament: %q vs %q: %w", entrants[i].Name, entrants[j].Name, err)
				}
				scores[i][j] += res.FitnessA
				standings[i].TotalScore += res.FitnessA
				standings[i].Games++
				if i != j {
					scores[j][i] += res.FitnessB
					standings[j].TotalScore += res.FitnessB
					standings[j].Games++
				}
				switch {
				case res.FitnessA > res.FitnessB:
					standings[i].Wins++
				case res.FitnessB > res.FitnessA:
					if i != j {
						standings[j].Wins++
					}
				default:
					standings[i].Draws++
					if i != j {
						standings[j].Draws++
					}
				}
			}
		}
	}
	for i := range standings {
		if standings[i].Games > 0 {
			standings[i].MeanPerGame = standings[i].TotalScore / float64(standings[i].Games)
		}
	}
	sort.Slice(standings, func(a, b int) bool {
		if standings[a].TotalScore != standings[b].TotalScore {
			return standings[a].TotalScore > standings[b].TotalScore
		}
		return standings[a].Name < standings[b].Name
	})
	return Result{Standings: standings, Scores: scores}, nil
}

// ClassicField returns the classic memory-n entrants used by the examples
// and tests: ALLC, ALLD, TFT, GRIM, WSLS and the Alternator.
func ClassicField(memSteps int) []Entrant {
	return []Entrant{
		{Name: "ALLC", Strategy: strategy.AllC(memSteps)},
		{Name: "ALLD", Strategy: strategy.AllD(memSteps)},
		{Name: "TFT", Strategy: strategy.TFT(memSteps)},
		{Name: "GRIM", Strategy: strategy.GRIM(memSteps)},
		{Name: "WSLS", Strategy: strategy.WSLS(memSteps)},
		{Name: "ALT", Strategy: strategy.Alternator(memSteps)},
	}
}
