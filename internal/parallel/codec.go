package parallel

import (
	"encoding/binary"
	"fmt"
	"math"

	"evogame/internal/strategy"
)

// This file defines the wire formats exchanged between the Nature Agent and
// the SSet ranks.  Every message is a flat little-endian byte slice so the
// traffic volume reported by the mpi stats matches what a real MPI
// implementation would move.

func floatBits(v float64) uint64 { return math.Float64bits(v) }

func decodeFitness(buf []byte) float64 {
	if len(buf) != 8 {
		return 0
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(buf))
}

// encodeTable packs the full strategy table: a uint32 count followed by
// length-prefixed strategy encodings.
func encodeTable(table []strategy.Strategy) ([]byte, error) {
	out := make([]byte, 4, 4+len(table)*16)
	binary.LittleEndian.PutUint32(out, uint32(len(table)))
	for i, s := range table {
		enc, err := strategy.Encode(s)
		if err != nil {
			return nil, fmt.Errorf("parallel: encoding strategy %d: %w", i, err)
		}
		var lenBuf [4]byte
		binary.LittleEndian.PutUint32(lenBuf[:], uint32(len(enc)))
		out = append(out, lenBuf[:]...)
		out = append(out, enc...)
	}
	return out, nil
}

// decodeTable reverses encodeTable.
func decodeTable(buf []byte) ([]strategy.Strategy, error) {
	if len(buf) < 4 {
		return nil, fmt.Errorf("parallel: table payload too short (%d bytes)", len(buf))
	}
	count := int(binary.LittleEndian.Uint32(buf))
	buf = buf[4:]
	out := make([]strategy.Strategy, 0, count)
	for i := 0; i < count; i++ {
		if len(buf) < 4 {
			return nil, fmt.Errorf("parallel: table payload truncated at strategy %d", i)
		}
		n := int(binary.LittleEndian.Uint32(buf))
		buf = buf[4:]
		if len(buf) < n {
			return nil, fmt.Errorf("parallel: table payload truncated inside strategy %d", i)
		}
		s, err := strategy.Decode(buf[:n])
		if err != nil {
			return nil, fmt.Errorf("parallel: decoding strategy %d: %w", i, err)
		}
		out = append(out, s)
		buf = buf[n:]
	}
	if len(buf) != 0 {
		return nil, fmt.Errorf("parallel: %d trailing bytes after table payload", len(buf))
	}
	return out, nil
}

// encodeSelection packs the pairwise-comparison selection broadcast: a flag
// byte followed by the teacher and learner SSet indices.
func encodeSelection(ok bool, teacher, learner int) []byte {
	out := make([]byte, 9)
	if ok {
		out[0] = 1
		binary.LittleEndian.PutUint32(out[1:], uint32(teacher))
		binary.LittleEndian.PutUint32(out[5:], uint32(learner))
	}
	return out
}

// decodeSelection reverses encodeSelection; malformed payloads are treated
// as "no event" since the Nature Agent is the only sender.
func decodeSelection(buf []byte) (ok bool, teacher, learner int) {
	if len(buf) != 9 || buf[0] == 0 {
		return false, 0, 0
	}
	return true, int(binary.LittleEndian.Uint32(buf[1:])), int(binary.LittleEndian.Uint32(buf[5:]))
}

// updateMessage is the per-generation strategy-table update broadcast after
// the learning and mutation phases.
type updateMessage struct {
	learning        bool
	learner         int
	learnerStrategy strategy.Strategy
	mutation        bool
	target          int
	targetStrategy  strategy.Strategy
}

// encodeUpdate packs an updateMessage: a flag byte (bit 0 learning, bit 1
// mutation) followed by, for each present component, a uint32 SSet index and
// a length-prefixed strategy encoding.
func encodeUpdate(u updateMessage) ([]byte, error) {
	flags := byte(0)
	if u.learning {
		flags |= 1
	}
	if u.mutation {
		flags |= 2
	}
	out := []byte{flags}
	appendStrat := func(id int, s strategy.Strategy) error {
		enc, err := strategy.Encode(s)
		if err != nil {
			return err
		}
		var idBuf [4]byte
		binary.LittleEndian.PutUint32(idBuf[:], uint32(id))
		out = append(out, idBuf[:]...)
		var lenBuf [4]byte
		binary.LittleEndian.PutUint32(lenBuf[:], uint32(len(enc)))
		out = append(out, lenBuf[:]...)
		out = append(out, enc...)
		return nil
	}
	if u.learning {
		if err := appendStrat(u.learner, u.learnerStrategy); err != nil {
			return nil, err
		}
	}
	if u.mutation {
		if err := appendStrat(u.target, u.targetStrategy); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// decodeUpdate reverses encodeUpdate.
func decodeUpdate(buf []byte) (updateMessage, error) {
	var u updateMessage
	if len(buf) < 1 {
		return u, fmt.Errorf("parallel: empty update payload")
	}
	flags := buf[0]
	buf = buf[1:]
	readStrat := func() (int, strategy.Strategy, error) {
		if len(buf) < 8 {
			return 0, nil, fmt.Errorf("parallel: update payload truncated")
		}
		id := int(binary.LittleEndian.Uint32(buf))
		n := int(binary.LittleEndian.Uint32(buf[4:]))
		buf = buf[8:]
		if len(buf) < n {
			return 0, nil, fmt.Errorf("parallel: update payload truncated inside strategy")
		}
		s, err := strategy.Decode(buf[:n])
		if err != nil {
			return 0, nil, err
		}
		buf = buf[n:]
		return id, s, nil
	}
	if flags&1 != 0 {
		id, s, err := readStrat()
		if err != nil {
			return u, err
		}
		u.learning = true
		u.learner = id
		u.learnerStrategy = s
	}
	if flags&2 != 0 {
		id, s, err := readStrat()
		if err != nil {
			return u, err
		}
		u.mutation = true
		u.target = id
		u.targetStrategy = s
	}
	if len(buf) != 0 {
		return u, fmt.Errorf("parallel: %d trailing bytes after update payload", len(buf))
	}
	return u, nil
}
