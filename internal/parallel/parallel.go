// Package parallel implements the paper's primary contribution: the
// multi-level decomposition of evolutionary game dynamics across a
// distributed machine.
//
// Rank 0 is the Nature Agent; every other rank owns a contiguous block of
// Strategy Sets.  Within one generation each SSet rank plays the Iterated
// Prisoner's Dilemma games of its local SSets against the strategies of
// every other SSet in the population, fanning the games across worker
// goroutines (the "OpenMP thread" tier of the paper's hybrid model).  The
// Nature Agent then drives the population dynamics: it broadcasts the pair
// of SSets selected for pairwise-comparison learning, the owning ranks
// return their relative fitness with point-to-point messages, and the Nature
// Agent broadcasts the resulting strategy-table update together with any
// mutation (Figure 1(b) of the paper).
//
// The engine is deterministic: for a given Config (including Seed) the
// sequence of evolutionary events, and therefore the final strategy table,
// is identical regardless of the number of ranks or worker goroutines, and —
// for noiseless games — identical to the serial reference engine in
// internal/population.  Tests rely on this equivalence.
package parallel

import (
	"encoding/binary"
	"fmt"
	"time"

	"evogame/internal/checkpoint"
	"evogame/internal/dynamics"
	"evogame/internal/fitness"
	"evogame/internal/game"
	"evogame/internal/mpi"
	"evogame/internal/nature"
	"evogame/internal/rng"
	"evogame/internal/sset"
	"evogame/internal/strategy"
	"evogame/internal/topology"
	"evogame/internal/trace"
)

// OptLevel selects the cumulative optimization levels of the paper's
// Figure 3.  Each level includes all previous ones.
type OptLevel int

const (
	// OptOriginal is the unoptimized baseline: blocking fitness returns,
	// linear-search state identification and branching fitness accumulation.
	OptOriginal OptLevel = iota
	// OptNonBlockingComm switches the fitness returns to non-blocking sends
	// (the paper's "Comm" level).
	OptNonBlockingComm
	// OptStateLookup replaces the linear state search with the O(1) rolling
	// state code (the paper's "Compiler" level).
	OptStateLookup
	// OptFusedFitness accumulates payoffs through the fused look-up table
	// (the paper's "Instruction" level, standing in for the hand-coded
	// fused multiply-add kernel).
	OptFusedFitness
)

// String implements fmt.Stringer.
func (o OptLevel) String() string {
	switch o {
	case OptOriginal:
		return "original"
	case OptNonBlockingComm:
		return "comm"
	case OptStateLookup:
		return "compiler"
	case OptFusedFitness:
		return "instruction"
	default:
		return fmt.Sprintf("OptLevel(%d)", int(o))
	}
}

// stateMode returns the game kernel state mode for the optimization level.
func (o OptLevel) stateMode() game.StateMode {
	if o >= OptStateLookup {
		return game.StateRolling
	}
	return game.StateLinearSearch
}

// accumMode returns the fitness accumulation mode for the optimization
// level.
func (o OptLevel) accumMode() game.AccumMode {
	if o >= OptFusedFitness {
		return game.AccumLookup
	}
	return game.AccumBranching
}

// nonBlocking reports whether fitness returns use non-blocking sends.
func (o OptLevel) nonBlocking() bool { return o >= OptNonBlockingComm }

// kernelMode resolves the game-kernel mode for the optimization level: the
// levels below the paper's "Compiler" tier reproduce the original
// round-by-round kernel faithfully (that is what the Figure 3 ablation
// measures), so the cycle-closing fast path only engages from OptStateLookup
// upward, and even there the requested mode can force a full replay.
func (o OptLevel) kernelMode(requested game.KernelMode) game.KernelMode {
	if o < OptStateLookup {
		return game.KernelFullReplay
	}
	return requested
}

// Config describes a distributed run.
type Config struct {
	// Ranks is the total number of ranks including the Nature Agent at rank
	// 0; it must be at least 2.
	Ranks int
	// WorkersPerRank bounds the worker goroutines each SSet rank uses for
	// game play.  Zero selects GOMAXPROCS (the default resolves in
	// sset.FitnessOptions.Workers); negative values are rejected.
	WorkersPerRank int

	// NumSSets, AgentsPerSSet, MemorySteps, Rounds and Noise describe the
	// population and the game, exactly as in population.Config.
	NumSSets      int
	AgentsPerSSet int
	MemorySteps   int
	Rounds        int
	Noise         float64

	// Game selects the scenario played; the zero value is the paper's IPD
	// spec (see game.LookupSpec).  Every rank plays the same game.
	Game game.Spec
	// UpdateRule selects the Nature Agent's adoption rule; nil is the
	// paper's Fermi pairwise-comparison rule (see dynamics.Lookup).  Only
	// rank 0 applies it, so the choreography is identical for every rule.
	UpdateRule dynamics.Rule
	// Topology selects the interaction graph (see topology.Parse); the zero
	// value is the paper's well-mixed population, bit-identical per seed to
	// the pre-topology engine.  Every rank rebuilds the identical graph
	// deterministically from Seed, so no adjacency data crosses the wire:
	// the Nature Agent draws learning pairs from it and the SSet ranks
	// restrict their game play to its edges.
	Topology topology.Spec

	// PCRate, MutationRate and Beta configure the Nature Agent (zero values
	// select the paper's defaults).
	PCRate       float64
	MutationRate float64
	Beta         float64

	// Generations is the number of generations to simulate.
	Generations int
	// Seed drives all randomness.
	Seed uint64
	// OptLevel selects the Figure 3 optimization level; the zero value is
	// OptOriginal.  Use OptFusedFitness for production runs.
	OptLevel OptLevel
	// Kernel selects the deterministic-game inner loop (the zero value,
	// game.KernelAuto, closes the joint-state cycle in closed form whenever
	// that is bit-exact).  Levels below OptStateLookup always replay in
	// full, preserving the Figure 3 ablation's original kernel.  All kernel
	// modes produce identical trajectories per seed.
	Kernel game.KernelMode
	// InitialStrategies optionally fixes the initial strategy table (length
	// NumSSets); when nil the table is drawn uniformly at random, matching
	// the serial engine's initialisation for the same Seed.
	InitialStrategies []strategy.Strategy
	// SkipFitnessWhenIdle, when true, evaluates fitness only on generations
	// with a pairwise-comparison event instead of every generation.  The
	// paper's implementation computes every generation (that is the work the
	// scaling studies measure), which is the default here; the flag exists
	// for long scientific runs where only the dynamics matter.
	SkipFitnessWhenIdle bool
	// EvalMode routes each SSet rank's fitness evaluation through the
	// shared internal/fitness subsystem.  The zero value, fitness.EvalFull,
	// replays every game every generation exactly as the paper's
	// implementation does (the workload the scaling studies measure).
	// EvalCached keeps a rank-local pair cache across generations, and
	// EvalIncremental additionally maintains the rank's block of the
	// fitness matrix, invalidated by the Nature Agent's broadcast
	// strategy-table updates.  Noisy or mixed populations fall back to the
	// EvalFull path, keeping all modes bit-for-bit identical per seed.
	EvalMode fitness.EvalMode

	// CheckpointPath, when non-empty, makes the Nature Agent write a
	// resumable (format v4) checkpoint of the final state; combined with
	// CheckpointEvery it also receives the periodic mid-run checkpoints.
	// Only rank 0 touches the file — it owns the authoritative table and
	// the event stream, which together with the recorded generation are the
	// complete resume state of a distributed run (the SSet ranks' noise
	// streams are re-derived per (Seed, generation, SSet id)).
	CheckpointPath string
	// CheckpointEvery writes a mid-run checkpoint to CheckpointPath every
	// this many generations of simulated time (0 disables periodic
	// checkpointing).  Each write atomically replaces the previous one.
	CheckpointEvery int
	// CheckpointLabel is recorded as the checkpoint's free-form Label.
	CheckpointLabel string
	// Resume, when non-nil, continues the run captured by the snapshot
	// instead of starting fresh: the strategy table comes from the
	// checkpoint, the generation counter continues from the recorded value
	// (Generations then counts *additional* generations), and — for a
	// resumable parallel-engine snapshot — the Nature Agent's RNG stream
	// and event counters are restored, making the continuation
	// bit-identical to an uninterrupted run.  A final-only snapshot warm
	// starts from its table with fresh streams.  The snapshot's identity
	// (shape, seed, game, rule, topology) must match the Config.
	Resume *checkpoint.Snapshot
	// SharedCache, when non-nil, makes every SSet rank evaluate fitness
	// through a view over the given cache's store instead of a rank-private
	// PairCache, so independent runs of the same configuration (ensemble
	// replicates) — and the ranks within each — share one interning
	// registry and one memoized pair table.  It only takes effect when a
	// rank would build a cache anyway (EvalMode != EvalFull and the
	// noiseless/deterministic gate holds); the noise and mixed-strategy
	// bypasses ignore it, so RNG streams never move and every run stays
	// bit-identical per seed to the same run with private caches.  The
	// cache must be bound to the identical game (same spec, payoff, rounds
	// and memory depth) or the run fails.
	SharedCache *fitness.PairCache

	// Faults installs a deterministic fault injector on the communicator
	// (typically a *faults.Plan): rank crashes fire at the per-generation
	// fault points, message drops and delays perturb sends.  Nil (the
	// default) runs entirely fault-free — the fabric never consults the
	// hook.  Injected failures surface as mpi.ErrRankFailed /
	// mpi.ErrSendFailed errors that internal/supervise classifies as
	// transient and recovers from checkpoints.
	Faults mpi.FaultInjector
	// CommDeadline bounds every blocking mpi primitive: a rank blocked
	// longer than this returns mpi.ErrDeadline instead of hanging.  Zero
	// (the default) disables the deadline.
	CommDeadline time.Duration
}

// startGeneration returns the absolute generation the run begins at: zero
// for a fresh run, the checkpointed generation for a resumed one.  The
// absolute index matters beyond bookkeeping — the per-(generation, SSet)
// noise streams are derived from it, so a resumed noisy run replays the
// exact streams an uninterrupted run would use.
func (c Config) startGeneration() int {
	if c.Resume != nil {
		return c.Resume.Generation
	}
	return 0
}

func (c Config) validate() error {
	if c.Ranks < 2 {
		return fmt.Errorf("parallel: need at least 2 ranks (Nature + 1 SSet rank), got %d", c.Ranks)
	}
	if c.NumSSets < 2 {
		return fmt.Errorf("parallel: need at least 2 SSets, got %d", c.NumSSets)
	}
	if c.NumSSets < c.Ranks-1 {
		return fmt.Errorf("parallel: %d SSets cannot occupy %d SSet ranks", c.NumSSets, c.Ranks-1)
	}
	if c.AgentsPerSSet < 1 {
		return fmt.Errorf("parallel: agents per SSet must be positive, got %d", c.AgentsPerSSet)
	}
	if c.MemorySteps < 1 || c.MemorySteps > game.MaxMemorySteps {
		return fmt.Errorf("parallel: memory steps %d out of range [1,%d]", c.MemorySteps, game.MaxMemorySteps)
	}
	if c.Rounds <= 0 {
		return fmt.Errorf("parallel: rounds must be positive, got %d", c.Rounds)
	}
	if c.WorkersPerRank < 0 {
		return fmt.Errorf("parallel: WorkersPerRank must be non-negative, got %d (0 selects GOMAXPROCS)", c.WorkersPerRank)
	}
	if c.Generations < 0 {
		return fmt.Errorf("parallel: negative generation count %d", c.Generations)
	}
	if c.InitialStrategies != nil && len(c.InitialStrategies) != c.NumSSets {
		return fmt.Errorf("parallel: %d initial strategies for %d SSets", len(c.InitialStrategies), c.NumSSets)
	}
	if !c.EvalMode.Valid() {
		return fmt.Errorf("parallel: invalid eval mode %v", c.EvalMode)
	}
	if !c.Kernel.Valid() {
		return fmt.Errorf("parallel: invalid kernel mode %v", c.Kernel)
	}
	if c.CheckpointEvery < 0 {
		return fmt.Errorf("parallel: CheckpointEvery must be non-negative, got %d", c.CheckpointEvery)
	}
	if c.CommDeadline < 0 {
		return fmt.Errorf("parallel: CommDeadline must be non-negative, got %v", c.CommDeadline)
	}
	if c.CheckpointEvery > 0 && c.CheckpointPath == "" {
		return fmt.Errorf("parallel: CheckpointEvery requires CheckpointPath")
	}
	if c.Resume != nil {
		if c.InitialStrategies != nil {
			return fmt.Errorf("parallel: Resume takes the strategy table from the checkpoint; InitialStrategies must be nil")
		}
		if err := c.checkResumeIdentity(); err != nil {
			return err
		}
	}
	return nil
}

// checkResumeIdentity verifies that the Resume snapshot was produced by a
// run with the same identity as the Config, via the shared
// checkpoint.Identity comparison, plus the engine match for resumable
// snapshots.
func (c Config) checkResumeIdentity() error {
	snap := c.Resume
	spec, rule, topo := c.effectiveIdentity()
	if err := snap.CheckIdentity("parallel", checkpoint.Identity{
		NumSSets:    c.NumSSets,
		MemorySteps: c.MemorySteps,
		Seed:        c.Seed,
		Game:        spec.Name,
		Payoff:      spec.Payoff.Table(),
		UpdateRule:  rule,
		Topology:    topo,
	}); err != nil {
		return err
	}
	if snap.Resume && snap.Engine != checkpoint.EngineParallel {
		return fmt.Errorf("parallel: checkpoint carries %q-engine resume state; the parallel engine cannot restore it", snap.Engine)
	}
	return nil
}

// effectiveIdentity resolves the scenario identity strings the Config
// records in checkpoints, mapping the zero-value Game and nil UpdateRule to
// the paper's defaults exactly as the engines resolve them.
func (c Config) effectiveIdentity() (spec game.Spec, rule string, topo string) {
	spec = c.Game
	if spec.Name == "" {
		spec = game.IPD()
	}
	rule = "fermi"
	if c.UpdateRule != nil {
		rule = c.UpdateRule.Name()
	}
	return spec, rule, c.Topology.String()
}

// RankReport summarises one rank's work and communication.
type RankReport struct {
	Rank        int
	LocalSSets  int
	GamesPlayed int64
	Compute     time.Duration
	Comm        time.Duration
	CommStats   mpi.Stats
	// Metrics holds the rank's cache and kernel-mix counters (zero for the
	// Nature Agent, which plays no games).
	Metrics fitness.Metrics
}

// Result summarises a completed distributed run.
type Result struct {
	// FinalStrategies is the strategy table after the last generation, as
	// recorded by the Nature Agent.
	FinalStrategies []strategy.Strategy
	// Generations is the number of generations simulated.
	Generations int
	// WallClock is the end-to-end run time.
	WallClock time.Duration
	// Ranks holds the per-rank reports, indexed by rank.
	Ranks []RankReport
	// NatureStats counts evolutionary events.
	NatureStats nature.Stats
	// TotalGames is the number of IPD games played across all ranks.
	TotalGames int64
	// Metrics is the run's flat observability export: the rank-summed cache
	// and kernel-mix counters plus the Nature Agent's event counts.
	Metrics fitness.Metrics
}

// ComputeTime returns the mean per-rank compute time over the SSet ranks.
func (r Result) ComputeTime() time.Duration {
	return r.meanOverSSetRanks(func(rep RankReport) time.Duration { return rep.Compute })
}

// CommTime returns the mean per-rank communication time over the SSet ranks.
func (r Result) CommTime() time.Duration {
	return r.meanOverSSetRanks(func(rep RankReport) time.Duration { return rep.Comm })
}

func (r Result) meanOverSSetRanks(f func(RankReport) time.Duration) time.Duration {
	if len(r.Ranks) <= 1 {
		return 0
	}
	var total time.Duration
	n := 0
	for _, rep := range r.Ranks {
		if rep.Rank == 0 {
			continue
		}
		total += f(rep)
		n++
	}
	if n == 0 {
		return 0
	}
	return total / time.Duration(n)
}

// Tags for the point-to-point fitness returns.
const (
	tagFitnessTeacher = 1
	tagFitnessLearner = 2
)

// blockOwner maps an SSet index to the rank that owns it (block
// distribution across ranks 1..Ranks-1) and the local index within the
// block.
func blockOwner(ssetID, numSSets, ranks int) (owner, local int) {
	ssetRanks := ranks - 1
	per := numSSets / ssetRanks
	extra := numSSets % ssetRanks
	// The first `extra` ranks hold per+1 SSets.
	cut := extra * (per + 1)
	if ssetID < cut {
		owner = ssetID / (per + 1)
		local = ssetID % (per + 1)
	} else {
		owner = extra + (ssetID-cut)/per
		local = (ssetID - cut) % per
	}
	return owner + 1, local
}

// blockRange returns the half-open range of SSet indices owned by the given
// SSet rank (rank >= 1).
func blockRange(rank, numSSets, ranks int) (lo, hi int) {
	ssetRanks := ranks - 1
	per := numSSets / ssetRanks
	extra := numSSets % ssetRanks
	idx := rank - 1
	if idx < extra {
		lo = idx * (per + 1)
		hi = lo + per + 1
		return lo, hi
	}
	lo = extra*(per+1) + (idx-extra)*per
	hi = lo + per
	return lo, hi
}

// mixSeed derives a deterministic per-(generation, SSet) seed for noisy game
// play so that results do not depend on rank layout or scheduling.
func mixSeed(seed uint64, gen, ssetID int) uint64 {
	x := seed ^ 0x9E3779B97F4A7C15
	x ^= uint64(gen+1) * 0xBF58476D1CE4E5B9
	x ^= uint64(ssetID+1) * 0x94D049BB133111EB
	x ^= x >> 29
	x *= 0xFF51AFD7ED558CCD
	x ^= x >> 33
	return x
}

// Run executes the distributed simulation and returns the result.  All
// ranks run as goroutines inside the calling process, communicating through
// the in-process message-passing runtime.
func Run(cfg Config) (Result, error) {
	if err := cfg.validate(); err != nil {
		return Result{}, err
	}
	//lint:allow randsource wall-clock run duration for Result.WallClock reporting; never feeds simulation state
	start := time.Now()

	reports := make([]RankReport, cfg.Ranks)
	var finalTable []strategy.Strategy
	var natStats nature.Stats

	err := mpi.RunWithOptions(cfg.Ranks, mpi.Options{
		Injector: cfg.Faults,
		Deadline: cfg.CommDeadline,
	}, func(c *mpi.Comm) error {
		if c.Rank() == 0 {
			table, stats, rep, err := natureRank(c, cfg)
			if err != nil {
				return err
			}
			finalTable = table
			natStats = stats
			reports[0] = rep
			return nil
		}
		rep, err := ssetRank(c, cfg)
		if err != nil {
			return err
		}
		reports[c.Rank()] = rep
		return nil
	})
	if err != nil {
		return Result{}, err
	}

	res := Result{
		FinalStrategies: finalTable,
		Generations:     cfg.startGeneration() + cfg.Generations,
		WallClock:       time.Since(start),
		Ranks:           reports,
		NatureStats:     natStats,
	}
	for _, rep := range reports {
		res.TotalGames += rep.GamesPlayed
		res.Metrics.Merge(rep.Metrics)
		res.Metrics.RetriedSends += rep.CommStats.RetriedSends
		res.Metrics.DroppedMessages += rep.CommStats.DroppedMessages
		res.Metrics.DelayedMessages += rep.CommStats.DelayedMessages
	}
	res.Metrics.Generations = res.Generations
	res.Metrics.PCEvents = natStats.PCEvents
	res.Metrics.Adoptions = natStats.Adoptions
	res.Metrics.Mutations = natStats.Mutations
	return res, nil
}

// natureRank runs the Nature Agent on rank 0: it owns the authoritative
// strategy table, selects the evolutionary events, and broadcasts updates.
func natureRank(c *mpi.Comm, cfg Config) ([]strategy.Strategy, nature.Stats, RankReport, error) {
	rec := trace.NewRecorder()
	// Built from the seed directly (not from the root stream), so the
	// topology layer leaves the nature/init streams — and therefore every
	// pre-topology trajectory — untouched.
	graph, err := cfg.Topology.Build(cfg.NumSSets, cfg.Seed)
	if err != nil {
		return nil, nature.Stats{}, RankReport{}, err
	}
	root := rng.New(cfg.Seed)
	natSrc := root.Split()
	initSrc := root.Split()

	nat, err := nature.New(nature.Config{
		PCRate:       cfg.PCRate,
		MutationRate: cfg.MutationRate,
		Beta:         cfg.Beta,
		MemorySteps:  cfg.MemorySteps,
		Rule:         cfg.UpdateRule,
		Topology:     graph,
	}, natSrc)
	if err != nil {
		return nil, nature.Stats{}, RankReport{}, err
	}

	start := cfg.startGeneration()
	var ckptErr error
	lastSaved := -1
	initial := cfg.InitialStrategies
	switch {
	case cfg.Resume != nil:
		// The table continues from the checkpoint.  For a resumable
		// parallel-engine snapshot the Nature Agent's stream and counters are
		// restored too, making the continuation bit-identical; a final-only
		// snapshot warm starts with the fresh streams built above.
		initial = cfg.Resume.Strategies
		if cfg.Resume.Resume {
			natState, ok := cfg.Resume.Stream(checkpoint.StreamNature)
			if !ok {
				return nil, nature.Stats{}, RankReport{}, fmt.Errorf("parallel: resume checkpoint is missing the %q stream", checkpoint.StreamNature)
			}
			if err := nat.RestoreState(nature.State{
				RNG:         natState,
				Generations: cfg.Resume.Generation,
				PCEvents:    cfg.Resume.PCEvents,
				Adoptions:   cfg.Resume.Adoptions,
				Mutations:   cfg.Resume.Mutations,
			}); err != nil {
				return nil, nature.Stats{}, RankReport{}, fmt.Errorf("parallel: %w", err)
			}
		}
	case initial == nil:
		initial = make([]strategy.Strategy, cfg.NumSSets)
		for i := range initial {
			initial[i] = strategy.RandomPure(cfg.MemorySteps, initSrc)
		}
	}
	table, err := nature.NewTable(initial)
	if err != nil {
		return nil, nature.Stats{}, RankReport{}, err
	}

	// Setup phase: broadcast the initial strategy table to all SSet ranks.
	payload, err := encodeTable(table.Snapshot())
	if err != nil {
		return nil, nature.Stats{}, RankReport{}, err
	}
	if err := rec.TimeErr(trace.PhaseComm, func() error {
		_, err := c.Bcast(0, payload)
		return err
	}); err != nil {
		return nil, nature.Stats{}, RankReport{}, err
	}

	for gen := 0; gen < cfg.Generations; gen++ {
		// Mark the epoch (and give an installed fault plan its per-generation
		// crash point) before any choreography of the generation runs.
		if err := c.FaultPoint(start + gen); err != nil {
			return nil, nature.Stats{}, RankReport{}, err
		}

		// Phase 1: pairwise-comparison selection broadcast.
		teacher, learner, pcOK := nat.MaybeSelectPC(cfg.NumSSets)
		sel := encodeSelection(pcOK, teacher, learner)
		if err := rec.TimeErr(trace.PhaseComm, func() error {
			_, err := c.Bcast(0, sel)
			return err
		}); err != nil {
			return nil, nature.Stats{}, RankReport{}, err
		}

		// Phase 2: collect fitness from the owners of the selected SSets and
		// decide adoption.
		var update updateMessage
		if pcOK {
			teacherOwner, _ := blockOwner(teacher, cfg.NumSSets, cfg.Ranks)
			learnerOwner, _ := blockOwner(learner, cfg.NumSSets, cfg.Ranks)
			var fitTeacher, fitLearner float64
			if err := rec.TimeErr(trace.PhaseComm, func() error {
				tBuf, err := c.Recv(teacherOwner, tagFitnessTeacher)
				if err != nil {
					return err
				}
				lBuf, err := c.Recv(learnerOwner, tagFitnessLearner)
				if err != nil {
					return err
				}
				fitTeacher = decodeFitness(tBuf)
				fitLearner = decodeFitness(lBuf)
				return nil
			}); err != nil {
				return nil, nature.Stats{}, RankReport{}, err
			}
			adopted, _ := nat.DecideAdoption(fitTeacher, fitLearner)
			nat.RecordPC(adopted)
			if adopted {
				newStrat := table.Get(teacher).Clone()
				if err := table.Set(learner, newStrat); err != nil {
					return nil, nature.Stats{}, RankReport{}, err
				}
				update.learning = true
				update.learner = learner
				update.learnerStrategy = newStrat
			}
		}

		// Phase 3: mutation.
		if target, newStrat, ok := nat.MaybeMutation(cfg.NumSSets); ok {
			if err := table.Set(target, newStrat); err != nil {
				return nil, nature.Stats{}, RankReport{}, err
			}
			update.mutation = true
			update.target = target
			update.targetStrategy = newStrat
		}

		// Phase 4: broadcast the strategy-table update.
		buf, err := encodeUpdate(update)
		if err != nil {
			return nil, nature.Stats{}, RankReport{}, err
		}
		if err := rec.TimeErr(trace.PhaseComm, func() error {
			_, err := c.Bcast(0, buf)
			return err
		}); err != nil {
			return nil, nature.Stats{}, RankReport{}, err
		}
		nat.EndGeneration()

		// A failed periodic save must NOT abort the loop: the SSet ranks are
		// blocked on the next phase-1 broadcast, and rank 0 returning early
		// would deadlock the whole fabric.  Record the first failure, stop
		// checkpointing, keep driving the protocol, and surface the error
		// after the choreography completes.
		if absGen := start + gen + 1; ckptErr == nil && cfg.CheckpointEvery > 0 && absGen%cfg.CheckpointEvery == 0 {
			if err := checkpoint.Save(cfg.CheckpointPath, natureSnapshot(cfg, nat, table, absGen)); err != nil {
				ckptErr = fmt.Errorf("parallel: generation %d: %w", absGen, err)
			} else {
				lastSaved = absGen
			}
		}
	}

	if ckptErr != nil {
		return nil, nature.Stats{}, RankReport{}, ckptErr
	}
	// Skip the final save when the last periodic write already captured the
	// final generation — the snapshot would be byte-identical.
	if final := start + cfg.Generations; cfg.CheckpointPath != "" && lastSaved != final {
		if err := checkpoint.Save(cfg.CheckpointPath, natureSnapshot(cfg, nat, table, final)); err != nil {
			return nil, nature.Stats{}, RankReport{}, err
		}
	}

	rep := RankReport{
		Rank:      0,
		Compute:   rec.Total(trace.PhaseCompute),
		Comm:      rec.Total(trace.PhaseComm),
		CommStats: c.Stats(),
	}
	return table.Snapshot(), nat.Stats(), rep, nil
}

// natureSnapshot exports the Nature Agent's mid-run state at the given
// absolute generation as a resumable (format v4) checkpoint.  The table and
// the agent's stream are the complete resume state of a distributed run:
// the SSet ranks hold no persistent RNG streams — their noise sources are
// derived per (Seed, generation, SSet id) — so the recorded generation
// re-derives them exactly on resume.
func natureSnapshot(cfg Config, nat *nature.Agent, table *nature.Table, absGen int) checkpoint.Snapshot {
	spec, rule, topo := cfg.effectiveIdentity()
	st := nat.ExportState()
	return checkpoint.Snapshot{
		Generation:  absGen,
		Seed:        cfg.Seed,
		MemorySteps: cfg.MemorySteps,
		Game:        spec.Name,
		Payoff:      spec.Payoff.Table(),
		UpdateRule:  rule,
		Topology:    topo,
		Strategies:  table.Snapshot(),
		Label:       cfg.CheckpointLabel,
		Resume:      true,
		Engine:      checkpoint.EngineParallel,
		Streams: []checkpoint.Stream{
			{Name: checkpoint.StreamNature, State: st.RNG},
		},
		PCEvents:  st.PCEvents,
		Adoptions: st.Adoptions,
		Mutations: st.Mutations,
	}
}

// ssetRank runs one Strategy-Set-owning rank: it plays the local games each
// generation, answers the Nature Agent's fitness requests, and applies the
// broadcast strategy-table updates.
func ssetRank(c *mpi.Comm, cfg Config) (RankReport, error) {
	rec := trace.NewRecorder()
	lo, hi := blockRange(c.Rank(), cfg.NumSSets, cfg.Ranks)

	// Each rank rebuilds the interaction graph deterministically from the
	// seed; it is identical on every rank and on the Nature Agent.
	graph, err := cfg.Topology.Build(cfg.NumSSets, cfg.Seed)
	if err != nil {
		return RankReport{}, err
	}

	engine, err := game.NewEngine(game.EngineConfig{
		Game:        cfg.Game,
		Rounds:      cfg.Rounds,
		MemorySteps: cfg.MemorySteps,
		Noise:       cfg.Noise,
		StateMode:   cfg.OptLevel.stateMode(),
		AccumMode:   cfg.OptLevel.accumMode(),
		Kernel:      cfg.OptLevel.kernelMode(cfg.Kernel),
	})
	if err != nil {
		return RankReport{}, err
	}

	// Setup phase: receive the initial strategy table.
	var tableBytes []byte
	if err := rec.TimeErr(trace.PhaseComm, func() error {
		var err error
		tableBytes, err = c.Bcast(0, nil)
		return err
	}); err != nil {
		return RankReport{}, err
	}
	table, err := decodeTable(tableBytes)
	if err != nil {
		return RankReport{}, err
	}
	if len(table) != cfg.NumSSets {
		return RankReport{}, fmt.Errorf("parallel: rank %d received a table of %d strategies, want %d",
			c.Rank(), len(table), cfg.NumSSets)
	}

	// Build the local SSets.
	locals := make([]*sset.SSet, 0, hi-lo)
	for id := lo; id < hi; id++ {
		s, err := sset.New(id, cfg.AgentsPerSSet, table[id])
		if err != nil {
			return RankReport{}, err
		}
		locals = append(locals, s)
	}

	games := int64(0)
	fit := make([]float64, hi-lo)

	// The cached evaluation modes route all game play through a rank-local
	// pair cache so each distinct strategy pair is played at most once per
	// rank; the incremental mode additionally maintains this rank's block of
	// rows of the fitness matrix, kept coherent by applying the Nature
	// Agent's broadcast strategy-table updates as row/column invalidations.
	// Noisy or mixed populations fall back to the full evaluation path so
	// the trajectory is bit-identical to EvalFull.
	//
	// In EvalCached mode the rank also keeps the interned ID of every table
	// entry (ids), re-interning only on broadcast strategy-table updates, so
	// the per-generation game loop looks pairs up by ID with no strategy
	// encoding and no allocations.  EvalIncremental reads the matrix's
	// maintained row sums instead, and the matrix tracks its own IDs, so
	// neither the mirror nor the opponent buffers below are built for it.
	var cache *fitness.PairCache
	var matrix *fitness.IncrementalMatrix
	var ids []uint32
	evalMode := fitness.EffectiveMode(engine, cfg.EvalMode)
	if evalMode != fitness.EvalFull && fitness.CacheUsable(engine, table) {
		if cfg.SharedCache != nil {
			// A rank-local view over the shared store: lookups are served
			// from (and misses warm) the cross-run table while the rank's
			// counters stay attributed to this rank's own engine.
			cache, err = cfg.SharedCache.NewView(engine)
			if err != nil {
				return RankReport{}, fmt.Errorf("parallel: rank %d SharedCache: %w", c.Rank(), err)
			}
		} else {
			cache, err = fitness.NewPairCache(engine)
			if err != nil {
				return RankReport{}, err
			}
		}
		if evalMode == fitness.EvalIncremental {
			matrix, err = fitness.NewIncrementalMatrix(cache, graph, table, lo, hi)
			if err != nil {
				return RankReport{}, err
			}
		} else {
			ids = make([]uint32, len(table))
			for i, s := range table {
				// CacheUsable guarantees every entry is encodable.
				if ids[i], err = cache.Interner().Intern(s); err != nil {
					return RankReport{}, fmt.Errorf("parallel: rank %d interning table: %w", c.Rank(), err)
				}
			}
		}
	}

	// Per-local-SSet opponent buffers, allocated once and refilled per
	// generation: the neighbor lists are static, only the strategies (and
	// their IDs) behind them change.  The matrix path never walks
	// opponents, so EvalIncremental skips the buffers entirely.
	var oppStrats [][]strategy.Strategy
	var oppIDs [][]uint32
	if matrix == nil {
		oppStrats = make([][]strategy.Strategy, len(locals))
		if cache != nil {
			oppIDs = make([][]uint32, len(locals))
		}
		for li, s := range locals {
			deg := graph.Degree(s.ID())
			oppStrats[li] = make([]strategy.Strategy, deg)
			if cache != nil {
				oppIDs[li] = make([]uint32, deg)
			}
		}
	}

	// Resumed runs continue at the checkpointed absolute generation; the
	// offset keeps the per-(generation, SSet) noise streams aligned with
	// what an uninterrupted run would draw.
	start := cfg.startGeneration()
	for gen := 0; gen < cfg.Generations; gen++ {
		// Mark the epoch (and give an installed fault plan its per-generation
		// crash point) before any choreography of the generation runs.
		if err := c.FaultPoint(start + gen); err != nil {
			return RankReport{}, err
		}

		// Phase 1: receive the pairwise-comparison selection first so the
		// rank can skip the game play on idle generations when configured to.
		var sel []byte
		if err := rec.TimeErr(trace.PhaseComm, func() error {
			var err error
			sel, err = c.Bcast(0, nil)
			return err
		}); err != nil {
			return RankReport{}, err
		}
		pcOK, teacher, learner := decodeSelection(sel)

		// Phase 2: local game play (the dominant compute).  The incremental
		// mode reads the maintained row sums instead of replaying games; the
		// cached mode replays only pairs the rank has never seen.
		if !cfg.SkipFitnessWhenIdle || pcOK {
			err := rec.TimeErr(trace.PhaseCompute, func() error {
				if matrix != nil {
					for li := range locals {
						f, err := matrix.Fitness(lo + li)
						if err != nil {
							return err
						}
						fit[li] = f
					}
					return nil
				}
				for li, s := range locals {
					opponents := oppStrats[li]
					var selfID uint32
					var idList []uint32
					for k := range opponents {
						j := graph.Neighbor(s.ID(), k)
						opponents[k] = table[j]
						if cache != nil {
							oppIDs[li][k] = ids[j]
						}
					}
					if cache != nil {
						selfID = ids[s.ID()]
						idList = oppIDs[li]
					}
					var src *rng.Source
					if cfg.Noise > 0 {
						src = rng.New(mixSeed(cfg.Seed, start+gen, s.ID()))
					}
					f, err := s.Fitness(engine, opponents, sset.FitnessOptions{
						Workers:     cfg.WorkersPerRank,
						Source:      src,
						Cache:       cache,
						SelfID:      selfID,
						OpponentIDs: idList,
					})
					if err != nil {
						return err
					}
					fit[li] = f
					if cache == nil {
						games += int64(len(opponents))
					}
				}
				return nil
			})
			if err != nil {
				return RankReport{}, err
			}
		}

		// Phase 3: return fitness for selected SSets.
		if pcOK {
			if err := rec.TimeErr(trace.PhaseComm, func() error {
				if teacher >= lo && teacher < hi {
					if err := sendFitness(c, cfg.OptLevel, tagFitnessTeacher, fit[teacher-lo]); err != nil {
						return err
					}
				}
				if learner >= lo && learner < hi {
					if err := sendFitness(c, cfg.OptLevel, tagFitnessLearner, fit[learner-lo]); err != nil {
						return err
					}
				}
				return nil
			}); err != nil {
				return RankReport{}, err
			}
		}

		// Phase 4: receive and apply the strategy-table update.
		var upBuf []byte
		if err := rec.TimeErr(trace.PhaseComm, func() error {
			var err error
			upBuf, err = c.Bcast(0, nil)
			return err
		}); err != nil {
			return RankReport{}, err
		}
		update, err := decodeUpdate(upBuf)
		if err != nil {
			return RankReport{}, err
		}
		if update.learning {
			if err := applyTableChange(table, ids, cache, locals, matrix, lo, hi, update.learner, update.learnerStrategy); err != nil {
				return RankReport{}, err
			}
		}
		if update.mutation {
			if err := applyTableChange(table, ids, cache, locals, matrix, lo, hi, update.target, update.targetStrategy); err != nil {
				return RankReport{}, err
			}
		}
	}

	if cache != nil {
		games = cache.Plays()
	}
	rep := RankReport{
		Rank:        c.Rank(),
		LocalSSets:  hi - lo,
		GamesPlayed: games,
		Compute:     rec.Total(trace.PhaseCompute),
		Comm:        rec.Total(trace.PhaseComm),
		CommStats:   c.Stats(),
	}
	rep.Metrics.AddEngine(engine.KernelStats())
	rep.Metrics.AddCache(cache)
	return rep, nil
}

// applyTableChange installs a broadcast strategy-table update on an SSet
// rank: the rank's copy of the global table, the interned ID mirror when
// the rank keeps one (EvalCached; one Intern call per event — the only
// place that mode touches the codec after setup), the local SSet if this
// rank owns the changed index, and — in EvalIncremental mode — the rank's
// block of the fitness matrix, where the change invalidates row idx and
// delta-updates column idx of every other local row.
func applyTableChange(table []strategy.Strategy, ids []uint32, cache *fitness.PairCache, locals []*sset.SSet, matrix *fitness.IncrementalMatrix, lo, hi, idx int, s strategy.Strategy) error {
	table[idx] = s
	if ids != nil {
		id, err := cache.Interner().Intern(s)
		if err != nil {
			return fmt.Errorf("parallel: interning table update: %w", err)
		}
		ids[idx] = id
	}
	if idx >= lo && idx < hi {
		if err := locals[idx-lo].SetStrategy(s); err != nil {
			return err
		}
	}
	if matrix != nil {
		return matrix.Update(idx, s)
	}
	return nil
}

// sendFitness returns the relative fitness of a selected SSet to the Nature
// Agent, using a non-blocking send above the "Comm" optimization level.
func sendFitness(c *mpi.Comm, opt OptLevel, tag int, fitness float64) error {
	buf := make([]byte, 8)
	binary.LittleEndian.PutUint64(buf, uint64(floatBits(fitness)))
	if opt.nonBlocking() {
		req := c.Isend(0, tag, buf)
		_, err := req.Wait()
		return err
	}
	return c.Send(0, tag, buf)
}
