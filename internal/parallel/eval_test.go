package parallel

import (
	"context"
	"testing"

	"evogame/internal/fitness"
	"evogame/internal/population"
	"evogame/internal/strategy"
)

func runMode(t *testing.T, mutate func(*Config), mode fitness.EvalMode) Result {
	t.Helper()
	cfg := baseConfig()
	cfg.EvalMode = mode
	if mutate != nil {
		mutate(&cfg)
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("%v: %v", mode, err)
	}
	return res
}

func assertSameTable(t *testing.T, label string, want, got []strategy.Strategy) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: table sizes differ", label)
	}
	for i := range want {
		if !want[i].Equal(got[i]) {
			t.Fatalf("%s: final table differs at SSet %d", label, i)
		}
	}
}

func TestEvalModesIdenticalDynamics(t *testing.T) {
	want := runMode(t, nil, fitness.EvalFull)
	for _, mode := range []fitness.EvalMode{fitness.EvalCached, fitness.EvalIncremental} {
		got := runMode(t, nil, mode)
		assertSameTable(t, mode.String(), want.FinalStrategies, got.FinalStrategies)
		if want.NatureStats != got.NatureStats {
			t.Fatalf("%v: nature stats differ: %+v vs %+v", mode, got.NatureStats, want.NatureStats)
		}
	}
}

func TestEvalModesIdenticalAcrossRankCounts(t *testing.T) {
	var want []strategy.Strategy
	for _, ranks := range []int{2, 3, 5} {
		for _, mode := range []fitness.EvalMode{fitness.EvalCached, fitness.EvalIncremental} {
			res := runMode(t, func(c *Config) {
				c.Ranks = ranks
				c.Generations = 40
			}, mode)
			if want == nil {
				want = res.FinalStrategies
				continue
			}
			assertSameTable(t, mode.String(), want, res.FinalStrategies)
		}
	}
}

func TestEvalModesMatchSerialEngine(t *testing.T) {
	cfg := baseConfig()
	cfg.Generations = 80
	cfg.MutationRate = 0.3

	serial, err := population.New(population.Config{
		NumSSets:      cfg.NumSSets,
		AgentsPerSSet: cfg.AgentsPerSSet,
		MemorySteps:   cfg.MemorySteps,
		Rounds:        cfg.Rounds,
		PCRate:        cfg.PCRate,
		MutationRate:  cfg.MutationRate,
		Beta:          cfg.Beta,
		Seed:          cfg.Seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	serialRes, err := serial.Run(context.Background(), cfg.Generations)
	if err != nil {
		t.Fatal(err)
	}

	for _, mode := range []fitness.EvalMode{fitness.EvalFull, fitness.EvalCached, fitness.EvalIncremental} {
		par := runMode(t, func(c *Config) {
			c.Generations = cfg.Generations
			c.MutationRate = cfg.MutationRate
		}, mode)
		assertSameTable(t, mode.String(), serialRes.FinalStrategies, par.FinalStrategies)
		if par.NatureStats != serialRes.NatureStats {
			t.Fatalf("%v: nature stats differ from serial: %+v vs %+v", mode, par.NatureStats, serialRes.NatureStats)
		}
	}
}

func TestEvalModesReduceTotalGames(t *testing.T) {
	full := runMode(t, nil, fitness.EvalFull)
	cached := runMode(t, nil, fitness.EvalCached)
	incr := runMode(t, nil, fitness.EvalIncremental)
	if full.TotalGames == 0 || cached.TotalGames == 0 || incr.TotalGames == 0 {
		t.Fatal("expected games in every mode")
	}
	if cached.TotalGames >= full.TotalGames {
		t.Fatalf("cached mode played %d games, full mode %d", cached.TotalGames, full.TotalGames)
	}
	if incr.TotalGames > cached.TotalGames {
		t.Fatalf("incremental mode played %d games, cached mode %d", incr.TotalGames, cached.TotalGames)
	}
}

func TestEvalModesNoiseBypassIdentical(t *testing.T) {
	mutate := func(c *Config) {
		c.Noise = 0.05
		c.Generations = 30
	}
	full := runMode(t, mutate, fitness.EvalFull)
	for _, mode := range []fitness.EvalMode{fitness.EvalCached, fitness.EvalIncremental} {
		got := runMode(t, mutate, mode)
		assertSameTable(t, mode.String(), full.FinalStrategies, got.FinalStrategies)
		if got.TotalGames != full.TotalGames {
			t.Fatalf("%v: bypass played %d games, full played %d", mode, got.TotalGames, full.TotalGames)
		}
	}
}

func TestEvalModeWorkersAndOptLevelsInvariant(t *testing.T) {
	// The cached modes must stay deterministic under worker fan-out (the
	// pair cache is shared by a rank's workers) and across kernel
	// optimization levels.
	var want []strategy.Strategy
	for _, workers := range []int{1, 4} {
		for _, lvl := range []OptLevel{OptOriginal, OptFusedFitness} {
			res := runMode(t, func(c *Config) {
				c.WorkersPerRank = workers
				c.OptLevel = lvl
				c.Generations = 25
			}, fitness.EvalCached)
			if want == nil {
				want = res.FinalStrategies
				continue
			}
			assertSameTable(t, "cached", want, res.FinalStrategies)
		}
	}
}

func TestEvalModeSkipFitnessWhenIdleCompatible(t *testing.T) {
	mutate := func(c *Config) {
		c.PCRate = 0.2
		c.Generations = 50
	}
	want := runMode(t, mutate, fitness.EvalFull)
	for _, mode := range []fitness.EvalMode{fitness.EvalCached, fitness.EvalIncremental} {
		res := runMode(t, func(c *Config) {
			mutate(c)
			c.SkipFitnessWhenIdle = true
		}, mode)
		assertSameTable(t, mode.String(), want.FinalStrategies, res.FinalStrategies)
	}
}

func TestEvalModeInvalidRejected(t *testing.T) {
	cfg := baseConfig()
	cfg.EvalMode = fitness.EvalMode(5)
	if _, err := Run(cfg); err == nil {
		t.Fatal("accepted an invalid eval mode")
	}
}
