package parallel

import (
	"context"
	"testing"
	"testing/quick"

	"evogame/internal/population"
	"evogame/internal/strategy"
)

func baseConfig() Config {
	return Config{
		Ranks:         4,
		NumSSets:      12,
		AgentsPerSSet: 2,
		MemorySteps:   1,
		Rounds:        50,
		PCRate:        1,
		MutationRate:  0.2,
		Beta:          1,
		Generations:   60,
		Seed:          42,
		OptLevel:      OptFusedFitness,
	}
}

func TestConfigValidation(t *testing.T) {
	cases := []func(*Config){
		func(c *Config) { c.Ranks = 1 },
		func(c *Config) { c.NumSSets = 1 },
		func(c *Config) { c.NumSSets = 2; c.Ranks = 8 },
		func(c *Config) { c.AgentsPerSSet = 0 },
		func(c *Config) { c.MemorySteps = 0 },
		func(c *Config) { c.MemorySteps = 9 },
		func(c *Config) { c.Rounds = 0 },
		func(c *Config) { c.Generations = -1 },
		func(c *Config) { c.InitialStrategies = []strategy.Strategy{strategy.AllC(1)} },
	}
	for i, mutate := range cases {
		cfg := baseConfig()
		mutate(&cfg)
		if _, err := Run(cfg); err == nil {
			t.Errorf("case %d: Run accepted invalid config", i)
		}
	}
}

func TestBlockOwnerAndRangeConsistent(t *testing.T) {
	for _, tc := range []struct{ numSSets, ranks int }{
		{12, 4}, {13, 4}, {7, 3}, {100, 9}, {5, 6}, {64, 2},
	} {
		covered := make([]bool, tc.numSSets)
		for rank := 1; rank < tc.ranks; rank++ {
			lo, hi := blockRange(rank, tc.numSSets, tc.ranks)
			if lo > hi || lo < 0 || hi > tc.numSSets {
				t.Fatalf("blockRange(%d,%d,%d) = [%d,%d)", rank, tc.numSSets, tc.ranks, lo, hi)
			}
			for id := lo; id < hi; id++ {
				if covered[id] {
					t.Fatalf("SSet %d covered twice (%d SSets, %d ranks)", id, tc.numSSets, tc.ranks)
				}
				covered[id] = true
				owner, local := blockOwner(id, tc.numSSets, tc.ranks)
				if owner != rank || local != id-lo {
					t.Fatalf("blockOwner(%d) = (%d,%d), want (%d,%d)", id, owner, local, rank, id-lo)
				}
			}
		}
		for id, ok := range covered {
			if !ok {
				t.Fatalf("SSet %d not owned by any rank (%d SSets, %d ranks)", id, tc.numSSets, tc.ranks)
			}
		}
	}
}

func TestBlockDistributionBalanced(t *testing.T) {
	// Load imbalance across SSet ranks must never exceed one SSet.
	for _, tc := range []struct{ numSSets, ranks int }{{100, 9}, {4097, 17}, {31, 5}} {
		min, max := 1<<30, 0
		for rank := 1; rank < tc.ranks; rank++ {
			lo, hi := blockRange(rank, tc.numSSets, tc.ranks)
			n := hi - lo
			if n < min {
				min = n
			}
			if n > max {
				max = n
			}
		}
		if max-min > 1 {
			t.Fatalf("imbalance %d for %d SSets over %d ranks", max-min, tc.numSSets, tc.ranks)
		}
	}
}

func TestOptLevelMapping(t *testing.T) {
	if OptOriginal.nonBlocking() || !OptNonBlockingComm.nonBlocking() {
		t.Fatal("non-blocking threshold wrong")
	}
	if OptOriginal.stateMode().String() != "linear-search" || OptStateLookup.stateMode().String() != "rolling" {
		t.Fatal("state mode mapping wrong")
	}
	if OptStateLookup.accumMode().String() != "branching" || OptFusedFitness.accumMode().String() != "lookup" {
		t.Fatal("accumulation mode mapping wrong")
	}
	names := map[OptLevel]string{
		OptOriginal: "original", OptNonBlockingComm: "comm",
		OptStateLookup: "compiler", OptFusedFitness: "instruction",
	}
	for lvl, want := range names {
		if lvl.String() != want {
			t.Fatalf("OptLevel(%d).String() = %q, want %q", lvl, lvl.String(), want)
		}
	}
	if OptLevel(99).String() == "" {
		t.Fatal("unknown OptLevel should still render")
	}
}

func TestSelectionCodecRoundTrip(t *testing.T) {
	ok, teacher, learner := decodeSelection(encodeSelection(true, 17, 391))
	if !ok || teacher != 17 || learner != 391 {
		t.Fatalf("selection round trip: %v %d %d", ok, teacher, learner)
	}
	ok, _, _ = decodeSelection(encodeSelection(false, 0, 0))
	if ok {
		t.Fatal("no-event selection decoded as an event")
	}
	if ok, _, _ := decodeSelection([]byte{1, 2}); ok {
		t.Fatal("malformed selection decoded as an event")
	}
}

func TestTableCodecRoundTrip(t *testing.T) {
	table := []strategy.Strategy{strategy.WSLS(1), strategy.AllD(1), strategy.TFT(1)}
	buf, err := encodeTable(table)
	if err != nil {
		t.Fatal(err)
	}
	got, err := decodeTable(buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("decoded %d strategies", len(got))
	}
	for i := range table {
		if !table[i].Equal(got[i]) {
			t.Fatalf("strategy %d did not round trip", i)
		}
	}
	if _, err := decodeTable(buf[:5]); err == nil {
		t.Fatal("accepted truncated table")
	}
	if _, err := decodeTable(append(buf, 0)); err == nil {
		t.Fatal("accepted trailing bytes")
	}
	if _, err := decodeTable(nil); err == nil {
		t.Fatal("accepted empty table payload")
	}
}

func TestUpdateCodecRoundTrip(t *testing.T) {
	u := updateMessage{
		learning: true, learner: 5, learnerStrategy: strategy.WSLS(1),
		mutation: true, target: 9, targetStrategy: strategy.AllD(1),
	}
	buf, err := encodeUpdate(u)
	if err != nil {
		t.Fatal(err)
	}
	got, err := decodeUpdate(buf)
	if err != nil {
		t.Fatal(err)
	}
	if !got.learning || got.learner != 5 || !got.learnerStrategy.Equal(strategy.WSLS(1)) {
		t.Fatalf("learning part wrong: %+v", got)
	}
	if !got.mutation || got.target != 9 || !got.targetStrategy.Equal(strategy.AllD(1)) {
		t.Fatalf("mutation part wrong: %+v", got)
	}

	empty, err := encodeUpdate(updateMessage{})
	if err != nil {
		t.Fatal(err)
	}
	gotEmpty, err := decodeUpdate(empty)
	if err != nil {
		t.Fatal(err)
	}
	if gotEmpty.learning || gotEmpty.mutation {
		t.Fatal("empty update decoded as containing events")
	}

	if _, err := decodeUpdate(nil); err == nil {
		t.Fatal("accepted empty update payload")
	}
	if _, err := decodeUpdate(buf[:4]); err == nil {
		t.Fatal("accepted truncated update payload")
	}
	if _, err := decodeUpdate(append(buf, 1, 2, 3)); err == nil {
		t.Fatal("accepted trailing bytes")
	}
}

func TestRunBasic(t *testing.T) {
	cfg := baseConfig()
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.FinalStrategies) != cfg.NumSSets {
		t.Fatalf("final table has %d strategies", len(res.FinalStrategies))
	}
	if res.Generations != cfg.Generations {
		t.Fatalf("generations = %d", res.Generations)
	}
	if len(res.Ranks) != cfg.Ranks {
		t.Fatalf("rank reports = %d", len(res.Ranks))
	}
	if res.TotalGames == 0 {
		t.Fatal("no games were played")
	}
	if res.NatureStats.Generations != cfg.Generations {
		t.Fatalf("nature generations = %d", res.NatureStats.Generations)
	}
	// Every SSet rank plays (local SSets) * (NumSSets-1) games per generation.
	wantGames := int64(cfg.NumSSets) * int64(cfg.NumSSets-1) * int64(cfg.Generations)
	if res.TotalGames != wantGames {
		t.Fatalf("total games = %d, want %d", res.TotalGames, wantGames)
	}
	if res.WallClock <= 0 {
		t.Fatal("wall clock not recorded")
	}
	if res.ComputeTime() <= 0 {
		t.Fatal("compute time not recorded")
	}
	if res.CommTime() <= 0 {
		t.Fatal("comm time not recorded")
	}
}

func TestRunDeterministicAcrossRankCounts(t *testing.T) {
	// The same configuration must produce the same final strategy table no
	// matter how many ranks the population is spread over.
	var want []strategy.Strategy
	for _, ranks := range []int{2, 3, 5, 7} {
		cfg := baseConfig()
		cfg.Ranks = ranks
		cfg.Generations = 40
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("ranks=%d: %v", ranks, err)
		}
		if want == nil {
			want = res.FinalStrategies
			continue
		}
		for i := range want {
			if !want[i].Equal(res.FinalStrategies[i]) {
				t.Fatalf("ranks=%d: final table differs at SSet %d", ranks, i)
			}
		}
	}
}

func TestRunMatchesSerialEngine(t *testing.T) {
	// The distributed engine must reproduce the serial reference engine's
	// dynamics exactly for noiseless games: same seed, same events, same
	// final strategy table.
	cfg := baseConfig()
	cfg.Generations = 80
	cfg.MutationRate = 0.3

	par, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}

	serial, err := population.New(population.Config{
		NumSSets:      cfg.NumSSets,
		AgentsPerSSet: cfg.AgentsPerSSet,
		MemorySteps:   cfg.MemorySteps,
		Rounds:        cfg.Rounds,
		PCRate:        cfg.PCRate,
		MutationRate:  cfg.MutationRate,
		Beta:          cfg.Beta,
		Seed:          cfg.Seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	serialRes, err := serial.Run(context.Background(), cfg.Generations)
	if err != nil {
		t.Fatal(err)
	}

	if par.NatureStats != serialRes.NatureStats {
		t.Fatalf("nature stats differ: parallel %+v vs serial %+v", par.NatureStats, serialRes.NatureStats)
	}
	for i := range par.FinalStrategies {
		if !par.FinalStrategies[i].Equal(serialRes.FinalStrategies[i]) {
			t.Fatalf("final tables differ at SSet %d:\n parallel %s\n serial   %s",
				i, par.FinalStrategies[i], serialRes.FinalStrategies[i])
		}
	}
}

func TestOptLevelsProduceIdenticalDynamics(t *testing.T) {
	// The optimization levels change how fast the games run, never their
	// outcome.
	var want []strategy.Strategy
	for _, lvl := range []OptLevel{OptOriginal, OptNonBlockingComm, OptStateLookup, OptFusedFitness} {
		cfg := baseConfig()
		cfg.Generations = 30
		cfg.OptLevel = lvl
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("%v: %v", lvl, err)
		}
		if want == nil {
			want = res.FinalStrategies
			continue
		}
		for i := range want {
			if !want[i].Equal(res.FinalStrategies[i]) {
				t.Fatalf("%v: final table differs at SSet %d", lvl, i)
			}
		}
	}
}

func TestNoisyRunDeterministicAcrossRankCounts(t *testing.T) {
	var want []strategy.Strategy
	for _, ranks := range []int{2, 4} {
		cfg := baseConfig()
		cfg.Noise = 0.05
		cfg.Ranks = ranks
		cfg.Generations = 30
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if want == nil {
			want = res.FinalStrategies
			continue
		}
		for i := range want {
			if !want[i].Equal(res.FinalStrategies[i]) {
				t.Fatalf("noisy run differs across rank counts at SSet %d", i)
			}
		}
	}
}

func TestInitialStrategiesRespectedAndConserved(t *testing.T) {
	cfg := baseConfig()
	cfg.NumSSets = 6
	cfg.MutationRate = -1
	cfg.PCRate = -1
	cfg.Generations = 10
	cfg.InitialStrategies = []strategy.Strategy{
		strategy.AllC(1), strategy.AllD(1), strategy.WSLS(1),
		strategy.TFT(1), strategy.GRIM(1), strategy.Alternator(1),
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range cfg.InitialStrategies {
		if !res.FinalStrategies[i].Equal(want) {
			t.Fatalf("strategy %d changed despite all dynamics being disabled", i)
		}
	}
}

func TestSkipFitnessWhenIdleReducesGames(t *testing.T) {
	full := baseConfig()
	full.PCRate = 0.2
	full.Generations = 50
	fullRes, err := Run(full)
	if err != nil {
		t.Fatal(err)
	}
	lazy := full
	lazy.SkipFitnessWhenIdle = true
	lazyRes, err := Run(lazy)
	if err != nil {
		t.Fatal(err)
	}
	if lazyRes.TotalGames >= fullRes.TotalGames {
		t.Fatalf("lazy evaluation played %d games, full played %d", lazyRes.TotalGames, fullRes.TotalGames)
	}
	// The dynamics must be unchanged.
	for i := range fullRes.FinalStrategies {
		if !fullRes.FinalStrategies[i].Equal(lazyRes.FinalStrategies[i]) {
			t.Fatalf("lazy evaluation changed the dynamics at SSet %d", i)
		}
	}
}

func TestMemoryTwoRun(t *testing.T) {
	cfg := baseConfig()
	cfg.MemorySteps = 2
	cfg.Generations = 20
	cfg.NumSSets = 9
	cfg.Ranks = 3
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range res.FinalStrategies {
		if s.MemorySteps() != 2 {
			t.Fatalf("SSet %d holds a memory-%d strategy", i, s.MemorySteps())
		}
	}
}

func TestWorkerCountDoesNotChangeResults(t *testing.T) {
	var want []strategy.Strategy
	for _, workers := range []int{1, 2, 8} {
		cfg := baseConfig()
		cfg.WorkersPerRank = workers
		cfg.Generations = 25
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if want == nil {
			want = res.FinalStrategies
			continue
		}
		for i := range want {
			if !want[i].Equal(res.FinalStrategies[i]) {
				t.Fatalf("workers=%d: results differ at SSet %d", workers, i)
			}
		}
	}
}

func TestRankReportsAccountForAllSSets(t *testing.T) {
	cfg := baseConfig()
	cfg.NumSSets = 13
	cfg.Ranks = 5
	cfg.Generations = 5
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, rep := range res.Ranks {
		if rep.Rank == 0 {
			if rep.LocalSSets != 0 {
				t.Fatal("the Nature rank should not own SSets")
			}
			continue
		}
		total += rep.LocalSSets
		if rep.CommStats.Collectives == 0 {
			t.Fatalf("rank %d recorded no collectives", rep.Rank)
		}
	}
	if total != cfg.NumSSets {
		t.Fatalf("rank reports cover %d SSets, want %d", total, cfg.NumSSets)
	}
}

// Property: the block distribution covers every SSet exactly once for any
// valid (numSSets, ranks) combination.
func TestQuickBlockDistribution(t *testing.T) {
	f := func(ssetSel, rankSel uint16) bool {
		ranks := int(rankSel%30) + 2
		numSSets := int(ssetSel%500) + ranks - 1
		seen := make([]int, numSSets)
		for rank := 1; rank < ranks; rank++ {
			lo, hi := blockRange(rank, numSSets, ranks)
			for id := lo; id < hi; id++ {
				if id < 0 || id >= numSSets {
					return false
				}
				seen[id]++
				owner, _ := blockOwner(id, numSSets, ranks)
				if owner != rank {
					return false
				}
			}
		}
		for _, c := range seen {
			if c != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkRunGeneration64SSets4Ranks(b *testing.B) {
	cfg := Config{
		Ranks:         4,
		NumSSets:      64,
		AgentsPerSSet: 4,
		MemorySteps:   1,
		Rounds:        200,
		PCRate:        0.1,
		MutationRate:  0.05,
		Generations:   1,
		Seed:          1,
		OptLevel:      OptFusedFitness,
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}
