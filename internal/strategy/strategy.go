// Package strategy defines the strategy types used by the evolutionary game
// dynamics framework: pure memory-n strategies backed by packed bit vectors
// and mixed (probabilistic) strategies, together with the classic named
// strategies of the literature (ALLC, ALLD, TFT, WSLS, …) generalised to
// arbitrary memory depth, uniform random strategy generation for the
// mutation operator, a compact binary codec used by the message-passing
// layer and checkpoints, and the strategy-space accounting of Table IV.
//
// A strategy is a function from game states to moves (pure) or to a
// cooperation probability (mixed).  States are encoded as in the game
// package: the most recent round occupies the two low bits, with the
// player's own move in the high bit of each round pair.
package strategy

import (
	"fmt"
	"math/big"

	"evogame/internal/game"
	"evogame/internal/rng"
)

// Strategy is the framework-wide strategy abstraction.  It extends
// game.Player with the operations the population dynamics need: cloning
// (learning copies a teacher's strategy), equality (abundance statistics and
// fixation detection), and a stable rendering used in reports.
type Strategy interface {
	game.Player
	// Clone returns a deep copy that can be mutated independently.
	Clone() Strategy
	// Equal reports whether the receiver and other define the same mapping
	// from states to (distributions over) moves.
	Equal(other Strategy) bool
	// String returns a compact human-readable rendering.
	String() string
}

// Pure is a deterministic memory-n strategy: one fixed move per state.
// Internally the move table is a packed bit vector where a set bit means
// Defect, matching the paper's 0=cooperate / 1=defect convention.
type Pure struct {
	mem  int
	bits []uint64 // packed moves, bit i = move in state i (1 = Defect)
	n    int      // number of states
}

// NewPure returns the all-cooperate pure strategy of the given memory depth.
func NewPure(memSteps int) *Pure {
	game.CheckMemorySteps(memSteps)
	n := game.NumStates(memSteps)
	return &Pure{mem: memSteps, n: n, bits: make([]uint64, (n+63)/64)}
}

// RandomPure returns a uniformly random pure strategy of the given memory
// depth: each state's move is an independent fair coin.  This is the
// mutation operator's new-strategy generator (gen_new_strat in the paper).
func RandomPure(memSteps int, src *rng.Source) *Pure {
	p := NewPure(memSteps)
	src.FillUint64(p.bits)
	p.maskTail()
	return p
}

// PureFromMoves builds a pure strategy from an explicit move table indexed
// by state.  It returns an error if the table length does not match the
// number of states for the memory depth.
func PureFromMoves(memSteps int, moves []game.Move) (*Pure, error) {
	p := NewPure(memSteps)
	if len(moves) != p.n {
		return nil, fmt.Errorf("strategy: %d moves supplied, memory-%d needs %d", len(moves), memSteps, p.n)
	}
	for s, m := range moves {
		p.SetMove(s, m)
	}
	return p, nil
}

// ParsePure builds a pure strategy from a string of '0' (cooperate) and '1'
// (defect) characters, one per state, state 0 first — the format used in the
// paper's strategy tables.
func ParsePure(memSteps int, s string) (*Pure, error) {
	p := NewPure(memSteps)
	if len(s) != p.n {
		return nil, fmt.Errorf("strategy: string has %d characters, memory-%d needs %d", len(s), memSteps, p.n)
	}
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '0':
		case '1':
			p.SetMove(i, game.Defect)
		default:
			return nil, fmt.Errorf("strategy: invalid character %q at position %d", s[i], i)
		}
	}
	return p, nil
}

func (p *Pure) maskTail() {
	rem := p.n % 64
	if rem != 0 {
		p.bits[len(p.bits)-1] &= (1 << uint(rem)) - 1
	}
}

// MemorySteps implements game.Player.
func (p *Pure) MemorySteps() int { return p.mem }

// NumStates returns the number of states in the strategy's domain.
func (p *Pure) NumStates() int { return p.n }

// Deterministic implements game.Player; pure strategies never need
// randomness.
func (p *Pure) Deterministic() bool { return true }

// Move implements game.Player.
func (p *Pure) Move(state int, _ *rng.Source) game.Move {
	if p.bits[state>>6]&(1<<(uint(state)&63)) != 0 {
		return game.Defect
	}
	return game.Cooperate
}

// SetMove sets the move played in the given state.
func (p *Pure) SetMove(state int, m game.Move) {
	if state < 0 || state >= p.n {
		panic(fmt.Sprintf("strategy: state %d out of range [0,%d)", state, p.n))
	}
	if m == game.Defect {
		p.bits[state>>6] |= 1 << (uint(state) & 63)
	} else {
		p.bits[state>>6] &^= 1 << (uint(state) & 63)
	}
}

// FlipMove inverts the move played in the given state; used by
// point-mutation operators and tests.
func (p *Pure) FlipMove(state int) {
	if state < 0 || state >= p.n {
		panic(fmt.Sprintf("strategy: state %d out of range [0,%d)", state, p.n))
	}
	p.bits[state>>6] ^= 1 << (uint(state) & 63)
}

// Clone implements Strategy.
func (p *Pure) Clone() Strategy {
	c := NewPure(p.mem)
	copy(c.bits, p.bits)
	return c
}

// Equal implements Strategy.  A Pure strategy is never equal to a Mixed one,
// even if the Mixed strategy happens to be degenerate.
func (p *Pure) Equal(other Strategy) bool {
	q, ok := other.(*Pure)
	if !ok || q.mem != p.mem {
		return false
	}
	for i := range p.bits {
		if p.bits[i] != q.bits[i] {
			return false
		}
	}
	return true
}

// DefectionCount returns the number of states in which the strategy defects.
func (p *Pure) DefectionCount() int {
	count := 0
	for s := 0; s < p.n; s++ {
		if p.Move(s, nil) == game.Defect {
			count++
		}
	}
	return count
}

// Hamming returns the number of states in which p and q prescribe different
// moves.  It returns an error if the memory depths differ.
func (p *Pure) Hamming(q *Pure) (int, error) {
	if p.mem != q.mem {
		return 0, fmt.Errorf("strategy: memory mismatch %d vs %d", p.mem, q.mem)
	}
	d := 0
	for i := range p.bits {
		d += popcount(p.bits[i] ^ q.bits[i])
	}
	return d, nil
}

func popcount(x uint64) int {
	// math/bits is not imported elsewhere in this file; keep the dependency
	// local to the one call site via a tiny loop-free implementation.
	x = x - ((x >> 1) & 0x5555555555555555)
	x = (x & 0x3333333333333333) + ((x >> 2) & 0x3333333333333333)
	x = (x + (x >> 4)) & 0x0f0f0f0f0f0f0f0f
	return int((x * 0x0101010101010101) >> 56)
}

// String renders the full move table as '0'/'1' characters, state 0 first.
// For memory-one this matches the rows of the paper's Table III.
func (p *Pure) String() string {
	buf := make([]byte, p.n)
	for s := 0; s < p.n; s++ {
		if p.Move(s, nil) == game.Defect {
			buf[s] = '1'
		} else {
			buf[s] = '0'
		}
	}
	return string(buf)
}

// Words returns the packed move table; used by the codec and the k-means
// feature extraction.  The returned slice must not be modified.
func (p *Pure) Words() []uint64 { return p.bits }

// Bit reports whether the strategy defects in the given state, as a raw bit.
func (p *Pure) Bit(state int) bool { return p.Move(state, nil) == game.Defect }

// Mixed is a probabilistic memory-n strategy: for every state it cooperates
// with probability Probs[state] and defects otherwise (Section III-D).
type Mixed struct {
	mem   int
	probs []float64
}

// NewMixed returns a mixed strategy with cooperation probability 0.5 in
// every state.
func NewMixed(memSteps int) *Mixed {
	game.CheckMemorySteps(memSteps)
	n := game.NumStates(memSteps)
	probs := make([]float64, n)
	for i := range probs {
		probs[i] = 0.5
	}
	return &Mixed{mem: memSteps, probs: probs}
}

// MixedFromProbs builds a mixed strategy from explicit per-state cooperation
// probabilities.  Probabilities must lie in [0,1].
func MixedFromProbs(memSteps int, probs []float64) (*Mixed, error) {
	game.CheckMemorySteps(memSteps)
	n := game.NumStates(memSteps)
	if len(probs) != n {
		return nil, fmt.Errorf("strategy: %d probabilities supplied, memory-%d needs %d", len(probs), memSteps, n)
	}
	cp := make([]float64, n)
	for i, p := range probs {
		if p < 0 || p > 1 {
			return nil, fmt.Errorf("strategy: probability %v at state %d outside [0,1]", p, i)
		}
		cp[i] = p
	}
	return &Mixed{mem: memSteps, probs: cp}, nil
}

// RandomMixed returns a mixed strategy whose per-state cooperation
// probabilities are independent uniform draws from [0,1).
func RandomMixed(memSteps int, src *rng.Source) *Mixed {
	game.CheckMemorySteps(memSteps)
	n := game.NumStates(memSteps)
	probs := make([]float64, n)
	for i := range probs {
		probs[i] = src.Float64()
	}
	return &Mixed{mem: memSteps, probs: probs}
}

// Soften returns the mixed strategy obtained from a pure strategy by playing
// the prescribed move with probability 1-epsilon and the opposite move with
// probability epsilon ("trembling hand" version of the pure strategy).
func Soften(p *Pure, epsilon float64) (*Mixed, error) {
	if epsilon < 0 || epsilon > 1 {
		return nil, fmt.Errorf("strategy: epsilon %v outside [0,1]", epsilon)
	}
	probs := make([]float64, p.NumStates())
	for s := range probs {
		if p.Move(s, nil) == game.Cooperate {
			probs[s] = 1 - epsilon
		} else {
			probs[s] = epsilon
		}
	}
	return &Mixed{mem: p.MemorySteps(), probs: probs}, nil
}

// MemorySteps implements game.Player.
func (m *Mixed) MemorySteps() int { return m.mem }

// NumStates returns the number of states in the strategy's domain.
func (m *Mixed) NumStates() int { return len(m.probs) }

// Deterministic implements game.Player; mixed strategies require a random
// source.
func (m *Mixed) Deterministic() bool { return false }

// Move implements game.Player.
func (m *Mixed) Move(state int, src *rng.Source) game.Move {
	if src.Bool(m.probs[state]) {
		return game.Cooperate
	}
	return game.Defect
}

// Prob returns the cooperation probability in the given state.
func (m *Mixed) Prob(state int) float64 { return m.probs[state] }

// SetProb sets the cooperation probability in the given state; values are
// clamped to [0,1].
func (m *Mixed) SetProb(state int, p float64) {
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	m.probs[state] = p
}

// Clone implements Strategy.
func (m *Mixed) Clone() Strategy {
	cp := make([]float64, len(m.probs))
	copy(cp, m.probs)
	return &Mixed{mem: m.mem, probs: cp}
}

// Equal implements Strategy.
func (m *Mixed) Equal(other Strategy) bool {
	q, ok := other.(*Mixed)
	if !ok || q.mem != m.mem {
		return false
	}
	for i := range m.probs {
		if m.probs[i] != q.probs[i] {
			return false
		}
	}
	return true
}

// String renders the first few probabilities; full tables are too large to
// print for high memory depths.
func (m *Mixed) String() string {
	limit := len(m.probs)
	if limit > 8 {
		limit = 8
	}
	s := fmt.Sprintf("mixed(mem=%d)[", m.mem)
	for i := 0; i < limit; i++ {
		if i > 0 {
			s += " "
		}
		s += fmt.Sprintf("%.2f", m.probs[i])
	}
	if limit < len(m.probs) {
		s += " …"
	}
	return s + "]"
}

// NumPureStrategies returns the number of pure strategies for the given
// memory depth, 2^(4^n) — the quantity tabulated in the paper's Table IV.
// The result does not fit in any machine integer for n ≥ 3, so it is
// returned as a big.Int.
func NumPureStrategies(memSteps int) *big.Int {
	game.CheckMemorySteps(memSteps)
	exp := game.NumStates(memSteps)
	return new(big.Int).Lsh(big.NewInt(1), uint(exp))
}

// NumPureStrategiesLog2 returns log2 of the pure strategy count, i.e. the
// number of states 4^n; this is the exponent shown in Table IV (2^4096 for
// memory six).
func NumPureStrategiesLog2(memSteps int) int {
	return game.NumStates(memSteps)
}

// AllMemoryOne enumerates all 16 pure memory-one strategies (the set shown
// in the paper's Table III): every possible move table over the four
// memory-one states.
func AllMemoryOne() []*Pure {
	out := make([]*Pure, 16)
	for code := 0; code < 16; code++ {
		p := NewPure(1)
		for s := 0; s < 4; s++ {
			if code&(1<<uint(s)) != 0 {
				p.SetMove(s, game.Defect)
			}
		}
		out[code] = p
	}
	return out
}

// StrategyBytes returns the per-strategy memory footprint in bytes of the
// packed pure-strategy representation for the given memory depth; used by
// the cluster memory-capacity model (the paper's argument that memory-six is
// the largest depth that fits on a node).
func StrategyBytes(memSteps int) int {
	game.CheckMemorySteps(memSteps)
	return ((game.NumStates(memSteps) + 63) / 64) * 8
}
