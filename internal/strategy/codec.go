package strategy

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// The codec packs strategies into self-describing byte slices so that the
// Nature Agent can broadcast strategy-table updates over the message-passing
// substrate and so that checkpoints can persist a population.  The format is
// deliberately simple and versioned:
//
//	byte 0      format version (currently 1)
//	byte 1      kind (1 = pure, 2 = mixed)
//	byte 2      memory steps
//	bytes 3..   payload
//
// Pure payload:  ceil(numStates/64) little-endian uint64 words.
// Mixed payload: numStates little-endian float64 values.

const (
	codecVersion = 1
	kindPure     = 1
	kindMixed    = 2
)

// ErrCorrupt is returned by Decode when the byte slice is not a valid
// strategy encoding.
var ErrCorrupt = errors.New("strategy: corrupt encoding")

// Encodable reports whether Encode supports the strategy's implementation
// (the codec covers the package's own Pure and Mixed types).  The fitness
// subsystem uses it as a cheap pre-check before committing to interned
// evaluation.
func Encodable(s Strategy) bool {
	switch s.(type) {
	case *Pure, *Mixed:
		return true
	default:
		return false
	}
}

// Encode serialises a strategy.  It returns an error for strategy
// implementations outside this package.
func Encode(s Strategy) ([]byte, error) {
	switch v := s.(type) {
	case *Pure:
		words := v.Words()
		buf := make([]byte, 3+8*len(words))
		buf[0] = codecVersion
		buf[1] = kindPure
		buf[2] = byte(v.MemorySteps())
		for i, w := range words {
			binary.LittleEndian.PutUint64(buf[3+8*i:], w)
		}
		return buf, nil
	case *Mixed:
		buf := make([]byte, 3+8*len(v.probs))
		buf[0] = codecVersion
		buf[1] = kindMixed
		buf[2] = byte(v.MemorySteps())
		for i, p := range v.probs {
			binary.LittleEndian.PutUint64(buf[3+8*i:], math.Float64bits(p))
		}
		return buf, nil
	default:
		return nil, fmt.Errorf("strategy: cannot encode %T", s)
	}
}

// Decode reverses Encode.
func Decode(buf []byte) (Strategy, error) {
	if len(buf) < 3 {
		return nil, fmt.Errorf("%w: too short (%d bytes)", ErrCorrupt, len(buf))
	}
	if buf[0] != codecVersion {
		return nil, fmt.Errorf("%w: unknown version %d", ErrCorrupt, buf[0])
	}
	mem := int(buf[2])
	if mem < 1 || mem > 6 {
		return nil, fmt.Errorf("%w: memory steps %d out of range", ErrCorrupt, mem)
	}
	payload := buf[3:]
	switch buf[1] {
	case kindPure:
		p := NewPure(mem)
		want := len(p.bits) * 8
		if len(payload) != want {
			return nil, fmt.Errorf("%w: pure payload %d bytes, want %d", ErrCorrupt, len(payload), want)
		}
		for i := range p.bits {
			p.bits[i] = binary.LittleEndian.Uint64(payload[8*i:])
		}
		// Canonicalise: reject encodings that set bits beyond the state count,
		// which would make Equal unreliable.
		tail := p.bits[len(p.bits)-1]
		p.maskTail()
		if tail != p.bits[len(p.bits)-1] {
			return nil, fmt.Errorf("%w: pure payload sets bits beyond the state count", ErrCorrupt)
		}
		return p, nil
	case kindMixed:
		m := NewMixed(mem)
		want := len(m.probs) * 8
		if len(payload) != want {
			return nil, fmt.Errorf("%w: mixed payload %d bytes, want %d", ErrCorrupt, len(payload), want)
		}
		for i := range m.probs {
			v := math.Float64frombits(binary.LittleEndian.Uint64(payload[8*i:]))
			if v < 0 || v > 1 || math.IsNaN(v) {
				return nil, fmt.Errorf("%w: probability %v at state %d outside [0,1]", ErrCorrupt, v, i)
			}
			m.probs[i] = v
		}
		return m, nil
	default:
		return nil, fmt.Errorf("%w: unknown kind %d", ErrCorrupt, buf[1])
	}
}

// EncodedSize returns the number of bytes Encode produces for a pure
// strategy of the given memory depth; the message-passing layer uses it to
// size broadcast buffers without materialising a strategy first.
func EncodedSize(memSteps int) int {
	p := NewPure(memSteps)
	return 3 + 8*len(p.bits)
}
