package strategy

import (
	"math/big"
	"testing"
	"testing/quick"

	"evogame/internal/game"
	"evogame/internal/rng"
)

func TestNewPureIsAllCooperate(t *testing.T) {
	for mem := 1; mem <= 6; mem++ {
		p := NewPure(mem)
		if p.MemorySteps() != mem {
			t.Fatalf("MemorySteps = %d", p.MemorySteps())
		}
		if p.NumStates() != game.NumStates(mem) {
			t.Fatalf("NumStates = %d", p.NumStates())
		}
		if p.DefectionCount() != 0 {
			t.Fatalf("new memory-%d strategy defects in %d states", mem, p.DefectionCount())
		}
		if !p.Deterministic() {
			t.Fatal("pure strategy must be deterministic")
		}
	}
}

func TestPureSetMoveAndMove(t *testing.T) {
	p := NewPure(2)
	p.SetMove(5, game.Defect)
	p.SetMove(15, game.Defect)
	for s := 0; s < 16; s++ {
		want := game.Cooperate
		if s == 5 || s == 15 {
			want = game.Defect
		}
		if got := p.Move(s, nil); got != want {
			t.Fatalf("Move(%d) = %s, want %s", s, got, want)
		}
	}
	p.SetMove(5, game.Cooperate)
	if p.Move(5, nil) != game.Cooperate {
		t.Fatal("SetMove back to Cooperate failed")
	}
	if p.DefectionCount() != 1 {
		t.Fatalf("DefectionCount = %d, want 1", p.DefectionCount())
	}
}

func TestPureSetMovePanicsOutOfRange(t *testing.T) {
	for _, state := range []int{-1, 4} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("SetMove(%d) did not panic", state)
				}
			}()
			NewPure(1).SetMove(state, game.Defect)
		}()
	}
}

func TestFlipMove(t *testing.T) {
	p := NewPure(1)
	p.FlipMove(2)
	if p.Move(2, nil) != game.Defect {
		t.Fatal("FlipMove did not set defect")
	}
	p.FlipMove(2)
	if p.Move(2, nil) != game.Cooperate {
		t.Fatal("FlipMove did not restore cooperate")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("FlipMove(-1) did not panic")
			}
		}()
		p.FlipMove(-1)
	}()
}

func TestPureFromMovesAndParse(t *testing.T) {
	moves := []game.Move{game.Cooperate, game.Defect, game.Defect, game.Cooperate}
	p, err := PureFromMoves(1, moves)
	if err != nil {
		t.Fatal(err)
	}
	if p.String() != "0110" {
		t.Fatalf("String = %q, want 0110", p.String())
	}
	q, err := ParsePure(1, "0110")
	if err != nil {
		t.Fatal(err)
	}
	if !p.Equal(q) {
		t.Fatal("ParsePure(0110) differs from PureFromMoves")
	}
	if _, err := PureFromMoves(1, moves[:3]); err == nil {
		t.Fatal("PureFromMoves accepted a short move table")
	}
	if _, err := ParsePure(1, "01"); err == nil {
		t.Fatal("ParsePure accepted a short string")
	}
	if _, err := ParsePure(1, "01x0"); err == nil {
		t.Fatal("ParsePure accepted an invalid character")
	}
}

func TestPureCloneIndependent(t *testing.T) {
	p := RandomPure(3, rng.New(1))
	c := p.Clone().(*Pure)
	if !p.Equal(c) {
		t.Fatal("clone not equal to original")
	}
	c.FlipMove(10)
	if p.Equal(c) {
		t.Fatal("mutating the clone changed the original")
	}
}

func TestPureEqualDifferentTypes(t *testing.T) {
	p := NewPure(1)
	m := NewMixed(1)
	if p.Equal(m) {
		t.Fatal("a pure strategy reported equality with a mixed strategy")
	}
	if p.Equal(NewPure(2)) {
		t.Fatal("strategies with different memory reported equal")
	}
}

func TestRandomPureIsBalanced(t *testing.T) {
	p := RandomPure(6, rng.New(2))
	d := p.DefectionCount()
	if d < 1800 || d > 2300 {
		t.Fatalf("random memory-six strategy defects in %d/4096 states, expected ~2048", d)
	}
}

func TestRandomPureTailMasked(t *testing.T) {
	// memory-one uses only 4 bits of the first word; the rest must stay 0 so
	// Equal and Encode are canonical.
	p := RandomPure(1, rng.New(3))
	if p.Words()[0]>>4 != 0 {
		t.Fatalf("random memory-one strategy has bits beyond state 3: %x", p.Words()[0])
	}
}

func TestHammingDistance(t *testing.T) {
	a := AllC(2)
	b := AllD(2)
	d, err := a.Hamming(b)
	if err != nil {
		t.Fatal(err)
	}
	if d != 16 {
		t.Fatalf("Hamming(AllC, AllD) memory-2 = %d, want 16", d)
	}
	if _, err := a.Hamming(AllC(3)); err == nil {
		t.Fatal("Hamming accepted mismatched memory")
	}
}

func TestClassicsMemoryOneTables(t *testing.T) {
	// In the packed encoding (state = my<<1|opp for the most recent round):
	// state 0 = CC, 1 = CD, 2 = DC, 3 = DD.
	cases := []struct {
		name string
		p    *Pure
		want string
	}{
		{"AllC", AllC(1), "0000"},
		{"AllD", AllD(1), "1111"},
		{"TFT", TFT(1), "0101"},
		{"WSLS", WSLS(1), "0110"},
		{"GRIM", GRIM(1), "0101"}, // with one round of memory GRIM == TFT
		// States 0,1 have my-previous-move = C so Alternator defects; states
		// 2,3 have my-previous-move = D so it cooperates.
		{"Alternator", Alternator(1), "1100"},
	}
	for _, tc := range cases {
		if got := tc.p.String(); got != tc.want {
			t.Errorf("%s memory-one = %q, want %q", tc.name, got, tc.want)
		}
	}
}

func TestWSLSProperties(t *testing.T) {
	// WSLS must repeat its move after R or T and switch after S or P, for
	// every memory depth (only the most recent round matters).
	for mem := 1; mem <= 4; mem++ {
		w := WSLS(mem)
		for s := 0; s < w.NumStates(); s++ {
			my := game.Move((s >> 1) & 1)
			opp := game.Move(s & 1)
			got := w.Move(s, nil)
			if opp == game.Cooperate && got != my {
				t.Fatalf("memory-%d WSLS state %d: won but switched", mem, s)
			}
			if opp == game.Defect && got != my.Flip() {
				t.Fatalf("memory-%d WSLS state %d: lost but stayed", mem, s)
			}
		}
	}
}

func TestTFTProperties(t *testing.T) {
	for mem := 1; mem <= 4; mem++ {
		p := TFT(mem)
		for s := 0; s < p.NumStates(); s++ {
			if p.Move(s, nil) != game.Move(s&1) {
				t.Fatalf("memory-%d TFT state %d does not copy the opponent's last move", mem, s)
			}
		}
	}
}

func TestGRIMMemoryTwo(t *testing.T) {
	g := GRIM(2)
	for s := 0; s < 16; s++ {
		oppDefectedRecently := (s&1) == 1 || ((s>>2)&1) == 1
		want := game.Cooperate
		if oppDefectedRecently {
			want = game.Defect
		}
		if got := g.Move(s, nil); got != want {
			t.Fatalf("GRIM(2) state %d = %s, want %s", s, got, want)
		}
	}
}

func TestTF2T(t *testing.T) {
	if _, err := TF2T(1); err == nil {
		t.Fatal("TF2T(1) should fail")
	}
	p, err := TF2T(2)
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < 16; s++ {
		both := (s&1) == 1 && ((s>>2)&1) == 1
		want := game.Cooperate
		if both {
			want = game.Defect
		}
		if got := p.Move(s, nil); got != want {
			t.Fatalf("TF2T state %d = %s, want %s", s, got, want)
		}
	}
}

func TestGTFT(t *testing.T) {
	if _, err := GTFT(1, -0.1); err == nil {
		t.Fatal("GTFT accepted negative generosity")
	}
	if _, err := GTFT(1, 1.1); err == nil {
		t.Fatal("GTFT accepted generosity > 1")
	}
	g, err := GTFT(1, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if g.Prob(0) != 1 || g.Prob(2) != 1 {
		t.Fatal("GTFT must always cooperate after opponent cooperation")
	}
	if g.Prob(1) != 0.25 || g.Prob(3) != 0.25 {
		t.Fatal("GTFT must forgive with the requested probability")
	}
	if g.Deterministic() {
		t.Fatal("GTFT is a mixed strategy")
	}
}

func TestMixedBasics(t *testing.T) {
	m := NewMixed(1)
	for s := 0; s < 4; s++ {
		if m.Prob(s) != 0.5 {
			t.Fatalf("NewMixed prob(%d) = %v", s, m.Prob(s))
		}
	}
	m.SetProb(2, 0.9)
	if m.Prob(2) != 0.9 {
		t.Fatal("SetProb failed")
	}
	m.SetProb(1, -4)
	m.SetProb(3, 7)
	if m.Prob(1) != 0 || m.Prob(3) != 1 {
		t.Fatal("SetProb did not clamp")
	}
	if m.NumStates() != 4 || m.MemorySteps() != 1 {
		t.Fatal("mixed dimensions wrong")
	}
	if m.String() == "" {
		t.Fatal("empty String()")
	}
}

func TestMixedFromProbsValidation(t *testing.T) {
	if _, err := MixedFromProbs(1, []float64{0.1, 0.2}); err == nil {
		t.Fatal("accepted wrong length")
	}
	if _, err := MixedFromProbs(1, []float64{0.1, 0.2, 0.3, 1.5}); err == nil {
		t.Fatal("accepted probability > 1")
	}
	m, err := MixedFromProbs(1, []float64{0, 0.5, 0.75, 1})
	if err != nil {
		t.Fatal(err)
	}
	if m.Prob(2) != 0.75 {
		t.Fatal("probabilities not copied")
	}
}

func TestMixedCloneEqual(t *testing.T) {
	m := RandomMixed(2, rng.New(5))
	c := m.Clone().(*Mixed)
	if !m.Equal(c) {
		t.Fatal("clone not equal")
	}
	c.SetProb(3, 0.123)
	if m.Equal(c) && m.Prob(3) != 0.123 {
		t.Fatal("clone shares storage with original")
	}
	if m.Equal(NewMixed(1)) {
		t.Fatal("mixed strategies of different memory reported equal")
	}
	if m.Equal(NewPure(2)) {
		t.Fatal("mixed strategy equal to pure strategy")
	}
}

func TestMixedMoveFrequencies(t *testing.T) {
	src := rng.New(6)
	m, _ := MixedFromProbs(1, []float64{1, 0, 0.5, 0.5})
	for i := 0; i < 100; i++ {
		if m.Move(0, src) != game.Cooperate {
			t.Fatal("prob-1 state produced a defection")
		}
		if m.Move(1, src) != game.Defect {
			t.Fatal("prob-0 state produced a cooperation")
		}
	}
	coop := 0
	const n = 20000
	for i := 0; i < n; i++ {
		if m.Move(2, src) == game.Cooperate {
			coop++
		}
	}
	frac := float64(coop) / n
	if frac < 0.45 || frac > 0.55 {
		t.Fatalf("prob-0.5 state cooperated %v of the time", frac)
	}
}

func TestSoften(t *testing.T) {
	w := WSLS(1)
	m, err := Soften(w, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < 4; s++ {
		want := 0.1
		if w.Move(s, nil) == game.Cooperate {
			want = 0.9
		}
		if m.Prob(s) != want {
			t.Fatalf("Soften prob(%d) = %v, want %v", s, m.Prob(s), want)
		}
	}
	if _, err := Soften(w, -1); err == nil {
		t.Fatal("Soften accepted invalid epsilon")
	}
}

func TestNumPureStrategies(t *testing.T) {
	// Table IV of the paper.
	want := map[int]int{1: 4, 2: 16, 3: 64, 4: 1024, 5: 2048, 6: 4096}
	// Note: the paper's Table IV lists 2^4, 2^16, 2^64, 2^1024, 2^2048,
	// 2^4096; the exponent is the number of states except for the rows where
	// the paper's own table is internally inconsistent with 4^n (memory 4
	// and 5).  We follow the 2^(4^n) definition from the text for the count
	// and expose the exponent separately.
	_ = want
	if NumPureStrategiesLog2(1) != 4 || NumPureStrategiesLog2(3) != 64 || NumPureStrategiesLog2(6) != 4096 {
		t.Fatal("NumPureStrategiesLog2 does not match 4^n")
	}
	if NumPureStrategies(1).Cmp(big.NewInt(16)) != 0 {
		t.Fatalf("NumPureStrategies(1) = %v, want 16", NumPureStrategies(1))
	}
	if NumPureStrategies(2).Cmp(new(big.Int).Lsh(big.NewInt(1), 16)) != 0 {
		t.Fatal("NumPureStrategies(2) != 2^16")
	}
	if NumPureStrategies(6).BitLen() != 4097 {
		t.Fatalf("NumPureStrategies(6) has bit length %d, want 4097 (== 2^4096)", NumPureStrategies(6).BitLen())
	}
}

func TestAllMemoryOne(t *testing.T) {
	all := AllMemoryOne()
	if len(all) != 16 {
		t.Fatalf("AllMemoryOne returned %d strategies, want 16", len(all))
	}
	seen := map[string]bool{}
	for _, p := range all {
		if p.MemorySteps() != 1 {
			t.Fatal("non memory-one strategy in AllMemoryOne")
		}
		s := p.String()
		if seen[s] {
			t.Fatalf("duplicate strategy %s", s)
		}
		seen[s] = true
	}
	if !seen["0110"] || !seen["0101"] || !seen["0000"] || !seen["1111"] {
		t.Fatal("AllMemoryOne is missing a classic strategy")
	}
}

func TestStrategyBytes(t *testing.T) {
	if StrategyBytes(1) != 8 {
		t.Fatalf("StrategyBytes(1) = %d, want 8", StrategyBytes(1))
	}
	if StrategyBytes(6) != 512 {
		t.Fatalf("StrategyBytes(6) = %d, want 512 (4096 bits)", StrategyBytes(6))
	}
}

func TestCatalogueAndByName(t *testing.T) {
	for _, n := range Catalogue() {
		mem := 2
		s, err := n.Build(mem)
		if err != nil {
			t.Fatalf("%s: %v", n.Name, err)
		}
		if s.MemorySteps() != mem {
			t.Fatalf("%s built with memory %d", n.Name, s.MemorySteps())
		}
	}
	if _, err := ByName("wsls", 1); err != nil {
		t.Fatal(err)
	}
	if _, err := ByName("nope", 1); err == nil {
		t.Fatal("ByName accepted an unknown name")
	}
}

func TestEncodeDecodePure(t *testing.T) {
	for mem := 1; mem <= 6; mem++ {
		p := RandomPure(mem, rng.New(uint64(mem)))
		buf, err := Encode(p)
		if err != nil {
			t.Fatal(err)
		}
		if len(buf) != EncodedSize(mem) {
			t.Fatalf("memory-%d encoding is %d bytes, EncodedSize says %d", mem, len(buf), EncodedSize(mem))
		}
		got, err := Decode(buf)
		if err != nil {
			t.Fatal(err)
		}
		if !p.Equal(got) {
			t.Fatalf("memory-%d pure strategy did not round-trip", mem)
		}
	}
}

func TestEncodeDecodeMixed(t *testing.T) {
	m := RandomMixed(2, rng.New(9))
	buf, err := Encode(m)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(buf)
	if err != nil {
		t.Fatal(err)
	}
	if !m.Equal(got) {
		t.Fatal("mixed strategy did not round-trip")
	}
}

func TestDecodeRejectsCorrupt(t *testing.T) {
	valid, _ := Encode(WSLS(1))
	cases := [][]byte{
		nil,
		{},
		{1, 1},
		append([]byte{9}, valid[1:]...),          // bad version
		append([]byte{1, 7}, valid[2:]...),       // bad kind
		append([]byte{1, 1, 9}, valid[3:]...),    // bad memory
		valid[:len(valid)-1],                     // truncated payload
		append(append([]byte{}, valid...), 0xFF), // oversized payload
	}
	for i, buf := range cases {
		if _, err := Decode(buf); err == nil {
			t.Errorf("case %d: Decode accepted corrupt input", i)
		}
	}
	// Pure payload with bits beyond the state count.
	bad, _ := Encode(NewPure(1))
	bad[3+1] = 0xFF
	if _, err := Decode(bad); err == nil {
		t.Error("Decode accepted a pure payload with out-of-range bits")
	}
}

func TestEncodeUnknownTypeFails(t *testing.T) {
	if _, err := Encode(nil); err == nil {
		t.Fatal("Encode accepted nil")
	}
}

// Property: Encode/Decode round-trips arbitrary random pure strategies.
func TestQuickEncodeDecodeRoundTrip(t *testing.T) {
	f := func(seed uint64, memSel uint8) bool {
		mem := int(memSel%6) + 1
		p := RandomPure(mem, rng.New(seed))
		buf, err := Encode(p)
		if err != nil {
			return false
		}
		got, err := Decode(buf)
		return err == nil && p.Equal(got)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: ParsePure(String()) is the identity.
func TestQuickStringParseRoundTrip(t *testing.T) {
	f := func(seed uint64, memSel uint8) bool {
		mem := int(memSel%4) + 1
		p := RandomPure(mem, rng.New(seed))
		q, err := ParsePure(mem, p.String())
		return err == nil && p.Equal(q)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Hamming distance between random strategies equals the number of
// states where their moves differ.
func TestQuickHammingMatchesMoves(t *testing.T) {
	f := func(seedA, seedB uint64, memSel uint8) bool {
		mem := int(memSel%3) + 1
		a := RandomPure(mem, rng.New(seedA))
		b := RandomPure(mem, rng.New(seedB))
		d, err := a.Hamming(b)
		if err != nil {
			return false
		}
		count := 0
		for s := 0; s < a.NumStates(); s++ {
			if a.Move(s, nil) != b.Move(s, nil) {
				count++
			}
		}
		return d == count
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkRandomPureMemorySix(b *testing.B) {
	src := rng.New(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = RandomPure(6, src)
	}
}

func BenchmarkEncodeDecodeMemorySix(b *testing.B) {
	p := RandomPure(6, rng.New(1))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf, _ := Encode(p)
		_, _ = Decode(buf)
	}
}
