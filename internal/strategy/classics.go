package strategy

import (
	"fmt"

	"evogame/internal/game"
)

// This file defines the classic strategies of the repeated Prisoner's
// Dilemma literature, generalised to arbitrary memory depth.  The
// generalisations condition only on the rounds a memory-n player can see;
// for memory-one they reduce to the textbook definitions used in the paper
// (Tables III and V).

// mostRecentRound extracts the 2-bit code of the most recent round from a
// packed state.
func mostRecentRound(state int) (my, opp game.Move) {
	return game.Move((state >> 1) & 1), game.Move(state & 1)
}

// AllC returns the strategy that cooperates in every state.
func AllC(memSteps int) *Pure {
	return NewPure(memSteps)
}

// AllD returns the strategy that defects in every state.
func AllD(memSteps int) *Pure {
	p := NewPure(memSteps)
	for s := 0; s < p.NumStates(); s++ {
		p.SetMove(s, game.Defect)
	}
	return p
}

// TFT returns Tit-For-Tat generalised to memory-n: copy the opponent's move
// from the most recent round.  The initial all-cooperate history makes the
// first move cooperative, as in the paper.
func TFT(memSteps int) *Pure {
	p := NewPure(memSteps)
	for s := 0; s < p.NumStates(); s++ {
		_, opp := mostRecentRound(s)
		p.SetMove(s, opp)
	}
	return p
}

// WSLS returns Win-Stay Lose-Shift generalised to memory-n: repeat your own
// previous move after a "win" (the opponent cooperated, so you received R or
// T) and switch after a "loss" (the opponent defected, so you received S or
// P).  For memory-one this is the [C,D,D,C] strategy of the paper's
// Table V and the Nowak–Sigmund 1993 study reproduced in Figure 2.
func WSLS(memSteps int) *Pure {
	p := NewPure(memSteps)
	for s := 0; s < p.NumStates(); s++ {
		my, opp := mostRecentRound(s)
		if opp == game.Cooperate {
			p.SetMove(s, my)
		} else {
			p.SetMove(s, my.Flip())
		}
	}
	return p
}

// GRIM returns the Grim Trigger strategy generalised to memory-n: defect if
// the opponent defected in any round the player can remember, otherwise
// cooperate.  (A true Grim Trigger never forgives; with a finite memory
// window it forgives once the defection scrolls out of view, which is the
// standard finite-memory approximation.)
func GRIM(memSteps int) *Pure {
	p := NewPure(memSteps)
	for s := 0; s < p.NumStates(); s++ {
		defected := false
		for r := 0; r < memSteps; r++ {
			if (s>>(2*uint(r)))&1 == 1 {
				defected = true
				break
			}
		}
		if defected {
			p.SetMove(s, game.Defect)
		}
	}
	return p
}

// TF2T returns Tit-For-Two-Tats: defect only if the opponent defected in
// both of the two most recent rounds.  It requires memory of at least two
// rounds and returns an error otherwise.
func TF2T(memSteps int) (*Pure, error) {
	if memSteps < 2 {
		return nil, fmt.Errorf("strategy: TF2T requires memory >= 2, got %d", memSteps)
	}
	p := NewPure(memSteps)
	for s := 0; s < p.NumStates(); s++ {
		oppLast := s & 1
		oppPrev := (s >> 2) & 1
		if oppLast == 1 && oppPrev == 1 {
			p.SetMove(s, game.Defect)
		}
	}
	return p, nil
}

// Alternator returns the strategy that plays the opposite of its own
// previous move, producing a C,D,C,D,… sequence against any opponent; it is
// useful as a pathological test strategy.
func Alternator(memSteps int) *Pure {
	p := NewPure(memSteps)
	for s := 0; s < p.NumStates(); s++ {
		my, _ := mostRecentRound(s)
		p.SetMove(s, my.Flip())
	}
	return p
}

// GTFT returns Generous Tit-For-Tat as a mixed strategy: cooperate after the
// opponent cooperates, and after a defection cooperate with the forgiveness
// probability g (0 gives plain TFT, 1 gives ALLC).
func GTFT(memSteps int, generosity float64) (*Mixed, error) {
	if generosity < 0 || generosity > 1 {
		return nil, fmt.Errorf("strategy: generosity %v outside [0,1]", generosity)
	}
	game.CheckMemorySteps(memSteps)
	n := game.NumStates(memSteps)
	probs := make([]float64, n)
	for s := 0; s < n; s++ {
		_, opp := mostRecentRound(s)
		if opp == game.Cooperate {
			probs[s] = 1
		} else {
			probs[s] = generosity
		}
	}
	return &Mixed{mem: memSteps, probs: probs}, nil
}

// Named is a catalogue entry mapping a strategy name to its constructor;
// used by the CLI and the benchmarks.
type Named struct {
	Name        string
	Description string
	Build       func(memSteps int) (Strategy, error)
}

// Catalogue returns the built-in named strategies.
func Catalogue() []Named {
	return []Named{
		{"allc", "always cooperate", func(m int) (Strategy, error) { return AllC(m), nil }},
		{"alld", "always defect", func(m int) (Strategy, error) { return AllD(m), nil }},
		{"tft", "tit-for-tat", func(m int) (Strategy, error) { return TFT(m), nil }},
		{"wsls", "win-stay lose-shift", func(m int) (Strategy, error) { return WSLS(m), nil }},
		{"grim", "grim trigger (within the memory window)", func(m int) (Strategy, error) { return GRIM(m), nil }},
		{"tf2t", "tit-for-two-tats", func(m int) (Strategy, error) { return TF2T(m) }},
		{"alternator", "alternate own previous move", func(m int) (Strategy, error) { return Alternator(m), nil }},
		{"gtft", "generous tit-for-tat (g=0.3)", func(m int) (Strategy, error) { return GTFT(m, 0.3) }},
	}
}

// ByName looks up a catalogue strategy by name and builds it for the given
// memory depth.
func ByName(name string, memSteps int) (Strategy, error) {
	for _, n := range Catalogue() {
		if n.Name == name {
			return n.Build(memSteps)
		}
	}
	return nil, fmt.Errorf("strategy: unknown strategy %q", name)
}
