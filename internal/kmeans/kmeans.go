// Package kmeans implements Lloyd's k-means clustering over binary vectors.
//
// The paper's Figure 2 visualises the final population by clustering the
// strategy bit-vectors with Lloyd k-means so that prevalent strategies stand
// out.  This package provides that clustering: points are strategy move
// tables (0 = cooperate, 1 = defect per state), centroids live in [0,1]^d,
// and assignment uses squared Euclidean distance, which for binary data
// orders identically to Hamming distance.
package kmeans

import (
	"errors"
	"fmt"
	"math"

	"evogame/internal/rng"
)

// Result holds the outcome of one clustering run.
type Result struct {
	// Assignments maps each point index to its cluster index in [0, K).
	Assignments []int
	// Centroids are the final cluster centres.
	Centroids [][]float64
	// Sizes is the number of points in each cluster.
	Sizes []int
	// Inertia is the total within-cluster sum of squared distances.
	Inertia float64
	// Iterations is the number of Lloyd iterations executed.
	Iterations int
	// Converged reports whether assignments stopped changing before the
	// iteration cap.
	Converged bool
}

// Config controls the clustering.
type Config struct {
	// K is the number of clusters.
	K int
	// MaxIterations caps the number of Lloyd iterations (default 100).
	MaxIterations int
	// Seed drives the initial centroid selection and empty-cluster
	// reseeding.
	Seed uint64
}

// Cluster runs Lloyd k-means on the points (all of equal dimension).
func Cluster(points [][]float64, cfg Config) (Result, error) {
	if len(points) == 0 {
		return Result{}, errors.New("kmeans: no points")
	}
	dim := len(points[0])
	if dim == 0 {
		return Result{}, errors.New("kmeans: zero-dimensional points")
	}
	for i, p := range points {
		if len(p) != dim {
			return Result{}, fmt.Errorf("kmeans: point %d has dimension %d, want %d", i, len(p), dim)
		}
	}
	if cfg.K <= 0 {
		return Result{}, fmt.Errorf("kmeans: K must be positive, got %d", cfg.K)
	}
	if cfg.K > len(points) {
		return Result{}, fmt.Errorf("kmeans: K=%d exceeds the number of points (%d)", cfg.K, len(points))
	}
	maxIter := cfg.MaxIterations
	if maxIter <= 0 {
		maxIter = 100
	}
	src := rng.New(cfg.Seed)

	// k-means++ style seeding: the first centroid is a random point, each
	// subsequent centroid is chosen with probability proportional to its
	// squared distance from the nearest existing centroid.
	centroids := make([][]float64, 0, cfg.K)
	first := points[src.Intn(len(points))]
	centroids = append(centroids, append([]float64(nil), first...))
	dist2 := make([]float64, len(points))
	for len(centroids) < cfg.K {
		total := 0.0
		for i, p := range points {
			d := math.MaxFloat64
			for _, c := range centroids {
				if v := sqDist(p, c); v < d {
					d = v
				}
			}
			dist2[i] = d
			total += d
		}
		var idx int
		if total == 0 {
			idx = src.Intn(len(points))
		} else {
			target := src.Float64() * total
			acc := 0.0
			idx = len(points) - 1
			for i, d := range dist2 {
				acc += d
				if acc >= target {
					idx = i
					break
				}
			}
		}
		centroids = append(centroids, append([]float64(nil), points[idx]...))
	}

	assignments := make([]int, len(points))
	for i := range assignments {
		assignments[i] = -1
	}
	sizes := make([]int, cfg.K)
	res := Result{}

	for iter := 0; iter < maxIter; iter++ {
		res.Iterations = iter + 1
		changed := false
		for i := range sizes {
			sizes[i] = 0
		}
		inertia := 0.0
		for i, p := range points {
			best, bestDist := 0, math.MaxFloat64
			for k, c := range centroids {
				if d := sqDist(p, c); d < bestDist {
					best, bestDist = k, d
				}
			}
			if assignments[i] != best {
				assignments[i] = best
				changed = true
			}
			sizes[best]++
			inertia += bestDist
		}
		res.Inertia = inertia

		// Recompute centroids; reseed any empty cluster with the point
		// farthest from its centroid so no cluster stays empty.
		sums := make([][]float64, cfg.K)
		for k := range sums {
			sums[k] = make([]float64, dim)
		}
		for i, p := range points {
			c := sums[assignments[i]]
			for d, v := range p {
				c[d] += v
			}
		}
		for k := range centroids {
			if sizes[k] == 0 {
				// Reseed with the point farthest from its centroid, chosen
				// only from clusters that can spare a member so no donor
				// cluster is emptied in turn (pigeonhole guarantees such a
				// point exists whenever K <= len(points)).
				far, farDist := -1, -1.0
				for i, p := range points {
					if sizes[assignments[i]] < 2 {
						continue
					}
					if d := sqDist(p, centroids[assignments[i]]); d > farDist {
						far, farDist = i, d
					}
				}
				if far < 0 {
					continue
				}
				copy(centroids[k], points[far])
				sizes[assignments[far]]--
				assignments[far] = k
				sizes[k] = 1
				changed = true
				continue
			}
			for d := range centroids[k] {
				centroids[k][d] = sums[k][d] / float64(sizes[k])
			}
		}
		if !changed {
			res.Converged = true
			break
		}
	}

	res.Assignments = assignments
	res.Centroids = centroids
	res.Sizes = sizes
	return res, nil
}

func sqDist(a, b []float64) float64 {
	total := 0.0
	for i := range a {
		d := a[i] - b[i]
		total += d * d
	}
	return total
}

// BinaryPoints converts strategy move tables (one bool per state, true =
// defect) into the float vectors Cluster consumes.
func BinaryPoints(rows [][]bool) [][]float64 {
	out := make([][]float64, len(rows))
	for i, row := range rows {
		v := make([]float64, len(row))
		for j, b := range row {
			if b {
				v[j] = 1
			}
		}
		out[i] = v
	}
	return out
}

// DominantCluster returns the index and relative size of the largest
// cluster.
func (r Result) DominantCluster() (index int, fraction float64) {
	total := 0
	best, bestSize := 0, -1
	for k, s := range r.Sizes {
		total += s
		if s > bestSize {
			best, bestSize = k, s
		}
	}
	if total == 0 {
		return 0, 0
	}
	return best, float64(bestSize) / float64(total)
}
