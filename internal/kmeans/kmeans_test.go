package kmeans

import (
	"testing"
	"testing/quick"

	"evogame/internal/rng"
)

func TestClusterValidation(t *testing.T) {
	if _, err := Cluster(nil, Config{K: 2}); err == nil {
		t.Fatal("accepted no points")
	}
	if _, err := Cluster([][]float64{{}}, Config{K: 1}); err == nil {
		t.Fatal("accepted zero-dimensional points")
	}
	if _, err := Cluster([][]float64{{1, 0}, {0}}, Config{K: 1}); err == nil {
		t.Fatal("accepted ragged points")
	}
	if _, err := Cluster([][]float64{{1}, {0}}, Config{K: 0}); err == nil {
		t.Fatal("accepted K=0")
	}
	if _, err := Cluster([][]float64{{1}, {0}}, Config{K: 5}); err == nil {
		t.Fatal("accepted K greater than the number of points")
	}
}

func TestTwoWellSeparatedClusters(t *testing.T) {
	// 20 copies of the WSLS pattern and 10 copies of ALLD: k=2 must separate
	// them perfectly.
	var points [][]float64
	for i := 0; i < 20; i++ {
		points = append(points, []float64{0, 1, 1, 0})
	}
	for i := 0; i < 10; i++ {
		points = append(points, []float64{1, 1, 1, 1})
	}
	res, err := Cluster(points, Config{K: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("did not converge on trivially separable data")
	}
	first := res.Assignments[0]
	for i := 0; i < 20; i++ {
		if res.Assignments[i] != first {
			t.Fatalf("WSLS point %d assigned to a different cluster", i)
		}
	}
	second := res.Assignments[20]
	if second == first {
		t.Fatal("the two groups were merged")
	}
	for i := 20; i < 30; i++ {
		if res.Assignments[i] != second {
			t.Fatalf("ALLD point %d assigned to a different cluster", i)
		}
	}
	if res.Inertia != 0 {
		t.Fatalf("perfectly separable data should have zero inertia, got %v", res.Inertia)
	}
	idx, frac := res.DominantCluster()
	if idx != first || frac != 20.0/30.0 {
		t.Fatalf("dominant cluster = %d (%.2f), want %d (0.67)", idx, frac, first)
	}
}

func TestSingleCluster(t *testing.T) {
	points := [][]float64{{1, 0}, {1, 0}, {0.9, 0.1}}
	res, err := Cluster(points, Config{K: 1, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range res.Assignments {
		if a != 0 {
			t.Fatal("K=1 must assign everything to cluster 0")
		}
	}
	if res.Sizes[0] != 3 {
		t.Fatalf("cluster size = %d", res.Sizes[0])
	}
}

func TestNoEmptyClusters(t *testing.T) {
	// Fewer distinct points than clusters would naively leave empty
	// clusters; the reseeding policy must prevent that.
	src := rng.New(7)
	var points [][]float64
	for i := 0; i < 40; i++ {
		p := make([]float64, 8)
		for j := range p {
			p[j] = float64(src.Intn(2))
		}
		points = append(points, p)
	}
	res, err := Cluster(points, Config{K: 6, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for k, s := range res.Sizes {
		if s == 0 {
			t.Fatalf("cluster %d is empty", k)
		}
		total += s
	}
	if total != len(points) {
		t.Fatalf("cluster sizes sum to %d, want %d", total, len(points))
	}
}

func TestDeterministicGivenSeed(t *testing.T) {
	src := rng.New(9)
	var points [][]float64
	for i := 0; i < 50; i++ {
		p := make([]float64, 4)
		for j := range p {
			p[j] = float64(src.Intn(2))
		}
		points = append(points, p)
	}
	a, err := Cluster(points, Config{K: 4, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Cluster(points, Config{K: 4, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Assignments {
		if a.Assignments[i] != b.Assignments[i] {
			t.Fatalf("assignments differ at point %d for identical seeds", i)
		}
	}
	if a.Inertia != b.Inertia {
		t.Fatal("inertia differs for identical seeds")
	}
}

func TestBinaryPoints(t *testing.T) {
	rows := [][]bool{{true, false}, {false, true}}
	pts := BinaryPoints(rows)
	if pts[0][0] != 1 || pts[0][1] != 0 || pts[1][0] != 0 || pts[1][1] != 1 {
		t.Fatalf("BinaryPoints = %v", pts)
	}
	if len(BinaryPoints(nil)) != 0 {
		t.Fatal("nil rows should give no points")
	}
}

func TestDominantClusterEmptyResult(t *testing.T) {
	var r Result
	if _, frac := r.DominantCluster(); frac != 0 {
		t.Fatal("empty result should have zero dominant fraction")
	}
}

// Property: every point is assigned to a cluster in range, sizes sum to the
// number of points, and the centroid entries of binary data stay in [0,1].
func TestQuickClusterInvariants(t *testing.T) {
	f := func(seed uint64, nSel, kSel, dimSel uint8) bool {
		n := int(nSel%60) + 2
		k := int(kSel)%n + 1
		dim := int(dimSel%16) + 1
		src := rng.New(seed)
		points := make([][]float64, n)
		for i := range points {
			p := make([]float64, dim)
			for j := range p {
				p[j] = float64(src.Intn(2))
			}
			points[i] = p
		}
		res, err := Cluster(points, Config{K: k, Seed: seed})
		if err != nil {
			return false
		}
		total := 0
		for _, s := range res.Sizes {
			total += s
		}
		if total != n {
			return false
		}
		for _, a := range res.Assignments {
			if a < 0 || a >= k {
				return false
			}
		}
		for _, c := range res.Centroids {
			for _, v := range c {
				if v < -1e-9 || v > 1+1e-9 {
					return false
				}
			}
		}
		return res.Inertia >= 0
	}
	cfg := &quick.Config{MaxCount: 40}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkCluster4096x16(b *testing.B) {
	src := rng.New(1)
	points := make([][]float64, 4096)
	for i := range points {
		p := make([]float64, 16)
		for j := range p {
			p[j] = float64(src.Intn(2))
		}
		points[i] = p
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Cluster(points, Config{K: 8, Seed: uint64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}
