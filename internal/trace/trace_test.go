package trace

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestAddAndTotals(t *testing.T) {
	r := NewRecorder()
	r.Add(PhaseCompute, 100*time.Millisecond)
	r.Add(PhaseCompute, 50*time.Millisecond)
	r.Add(PhaseComm, 25*time.Millisecond)
	if r.Total(PhaseCompute) != 150*time.Millisecond {
		t.Fatalf("compute total = %v", r.Total(PhaseCompute))
	}
	if r.Total(PhaseComm) != 25*time.Millisecond {
		t.Fatalf("comm total = %v", r.Total(PhaseComm))
	}
	if r.Count(PhaseCompute) != 2 || r.Count(PhaseComm) != 1 {
		t.Fatal("counts wrong")
	}
	if r.Sum() != 175*time.Millisecond {
		t.Fatalf("sum = %v", r.Sum())
	}
	if r.Total(PhaseIdle) != 0 {
		t.Fatal("unrecorded phase should be zero")
	}
}

func TestNegativeDurationsClamped(t *testing.T) {
	r := NewRecorder()
	r.Add(PhaseComm, -time.Second)
	if r.Total(PhaseComm) != 0 {
		t.Fatal("negative duration was not clamped")
	}
	if r.Count(PhaseComm) != 1 {
		t.Fatal("clamped interval should still be counted")
	}
}

func TestTimeHelpers(t *testing.T) {
	r := NewRecorder()
	r.Time(PhaseCompute, func() { time.Sleep(2 * time.Millisecond) })
	if r.Total(PhaseCompute) < time.Millisecond {
		t.Fatalf("Time recorded %v", r.Total(PhaseCompute))
	}
	err := r.TimeErr(PhaseComm, func() error { time.Sleep(time.Millisecond); return nil })
	if err != nil {
		t.Fatal(err)
	}
	if r.Total(PhaseComm) <= 0 {
		t.Fatal("TimeErr did not record")
	}
}

func TestFraction(t *testing.T) {
	r := NewRecorder()
	if r.Fraction(PhaseCompute) != 0 {
		t.Fatal("empty recorder fraction should be 0")
	}
	r.Add(PhaseCompute, 300*time.Millisecond)
	r.Add(PhaseComm, 100*time.Millisecond)
	if got := r.Fraction(PhaseCompute); got != 0.75 {
		t.Fatalf("compute fraction = %v", got)
	}
	if got := r.Fraction(PhaseComm); got != 0.25 {
		t.Fatalf("comm fraction = %v", got)
	}
}

func TestSnapshotIsACopy(t *testing.T) {
	r := NewRecorder()
	r.Add(PhaseCompute, time.Second)
	snap := r.Snapshot()
	snap[PhaseCompute] = 5 * time.Second
	if r.Total(PhaseCompute) != time.Second {
		t.Fatal("mutating the snapshot changed the recorder")
	}
}

func TestReset(t *testing.T) {
	r := NewRecorder()
	r.Add(PhaseCompute, time.Second)
	r.Reset()
	if r.Sum() != 0 || r.Count(PhaseCompute) != 0 {
		t.Fatal("Reset did not clear the recorder")
	}
}

func TestMerge(t *testing.T) {
	a := NewRecorder()
	b := NewRecorder()
	a.Add(PhaseCompute, time.Second)
	b.Add(PhaseCompute, 2*time.Second)
	b.Add(PhaseComm, 500*time.Millisecond)
	a.Merge(b)
	if a.Total(PhaseCompute) != 3*time.Second {
		t.Fatalf("merged compute = %v", a.Total(PhaseCompute))
	}
	if a.Total(PhaseComm) != 500*time.Millisecond {
		t.Fatalf("merged comm = %v", a.Total(PhaseComm))
	}
	if a.Count(PhaseCompute) != 2 {
		t.Fatalf("merged count = %d", a.Count(PhaseCompute))
	}
	a.Merge(nil) // must not panic
}

func TestStringRendering(t *testing.T) {
	r := NewRecorder()
	r.Add(PhaseCompute, time.Second)
	r.Add(PhaseComm, time.Millisecond)
	s := r.String()
	if !strings.Contains(s, "compute") || !strings.Contains(s, "comm") {
		t.Fatalf("String() = %q", s)
	}
}

func TestConcurrentUse(t *testing.T) {
	r := NewRecorder()
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				r.Add(PhaseCompute, time.Microsecond)
			}
		}()
	}
	wg.Wait()
	if r.Count(PhaseCompute) != 16000 {
		t.Fatalf("concurrent count = %d, want 16000", r.Count(PhaseCompute))
	}
	if r.Total(PhaseCompute) != 16000*time.Microsecond {
		t.Fatalf("concurrent total = %v", r.Total(PhaseCompute))
	}
}
