// Package trace records how a rank's wall-clock time is split between
// phases — game-play computation, communication, and bookkeeping — so the
// scaling studies can report the compute/communication breakdown of the
// paper's Figure 5 and diagnose the efficiency cliffs of Figure 4 and
// Table VI.
package trace

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Phase identifies what a rank is spending time on.
type Phase string

// The phases used by the parallel engine.
const (
	PhaseCompute   Phase = "compute"
	PhaseComm      Phase = "comm"
	PhaseBookkeep  Phase = "bookkeeping"
	PhaseIdle      Phase = "idle"
	PhaseReduction Phase = "reduction"
)

// Recorder accumulates per-phase durations.  It is safe for concurrent use;
// each rank typically owns one Recorder but the aggregation helpers merge
// them across ranks.
type Recorder struct {
	mu     sync.Mutex
	totals map[Phase]time.Duration
	counts map[Phase]int64
}

// NewRecorder returns an empty Recorder.
func NewRecorder() *Recorder {
	return &Recorder{
		totals: make(map[Phase]time.Duration),
		counts: make(map[Phase]int64),
	}
}

// Add records d spent in phase p.
func (r *Recorder) Add(p Phase, d time.Duration) {
	if d < 0 {
		d = 0
	}
	r.mu.Lock()
	r.totals[p] += d
	r.counts[p]++
	r.mu.Unlock()
}

// Time runs fn and records its duration under phase p.
func (r *Recorder) Time(p Phase, fn func()) {
	start := time.Now()
	fn()
	r.Add(p, time.Since(start))
}

// TimeErr runs fn and records its duration under phase p, returning fn's
// error.
func (r *Recorder) TimeErr(p Phase, fn func() error) error {
	start := time.Now()
	err := fn()
	r.Add(p, time.Since(start))
	return err
}

// Total returns the accumulated duration of phase p.
func (r *Recorder) Total(p Phase) time.Duration {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.totals[p]
}

// Count returns the number of intervals recorded for phase p.
func (r *Recorder) Count(p Phase) int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.counts[p]
}

// Sum returns the accumulated duration across all phases.
func (r *Recorder) Sum() time.Duration {
	r.mu.Lock()
	defer r.mu.Unlock()
	var total time.Duration
	for _, d := range r.totals {
		total += d
	}
	return total
}

// Snapshot returns a copy of the per-phase totals.
func (r *Recorder) Snapshot() map[Phase]time.Duration {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[Phase]time.Duration, len(r.totals))
	for p, d := range r.totals {
		out[p] = d
	}
	return out
}

// Reset clears all recorded data.
func (r *Recorder) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.totals = make(map[Phase]time.Duration)
	r.counts = make(map[Phase]int64)
}

// Merge adds other's totals into r.
func (r *Recorder) Merge(other *Recorder) {
	if other == nil {
		return
	}
	snap := other.Snapshot()
	other.mu.Lock()
	counts := make(map[Phase]int64, len(other.counts))
	for p, c := range other.counts {
		counts[p] = c
	}
	other.mu.Unlock()
	r.mu.Lock()
	defer r.mu.Unlock()
	for p, d := range snap {
		r.totals[p] += d
	}
	for p, c := range counts {
		r.counts[p] += c
	}
}

// Fraction returns the share of total recorded time spent in phase p, in
// [0,1]; it returns 0 when nothing has been recorded.
func (r *Recorder) Fraction(p Phase) float64 {
	total := r.Sum()
	if total == 0 {
		return 0
	}
	return float64(r.Total(p)) / float64(total)
}

// String renders the recorder's totals sorted by phase name.
func (r *Recorder) String() string {
	snap := r.Snapshot()
	phases := make([]string, 0, len(snap))
	for p := range snap {
		phases = append(phases, string(p))
	}
	sort.Strings(phases)
	var sb strings.Builder
	for i, p := range phases {
		if i > 0 {
			sb.WriteString(", ")
		}
		fmt.Fprintf(&sb, "%s=%s", p, snap[Phase(p)].Round(time.Microsecond))
	}
	return sb.String()
}
