// Package population implements the serial (single-process) evolutionary
// game dynamics engine: a population of Strategy Sets evolving under
// pairwise-comparison learning and mutation driven by the Nature Agent.
//
// The serial engine is the scientific reference implementation: the parallel
// engine of internal/parallel reproduces exactly the same dynamics (same
// seed, same sequence of events, same strategy-table history) while
// distributing the game play across ranks and worker goroutines.  It is also
// the engine behind the Figure 2 validation study (emergence of Win-Stay
// Lose-Shift).
package population

import (
	"context"
	"fmt"

	"evogame/internal/checkpoint"
	"evogame/internal/dynamics"
	"evogame/internal/faults"
	"evogame/internal/fitness"
	"evogame/internal/game"
	"evogame/internal/intern"
	"evogame/internal/nature"
	"evogame/internal/rng"
	"evogame/internal/sset"
	"evogame/internal/strategy"
	"evogame/internal/topology"
)

// FitnessMode selects how the engine computes SSet fitness.
type FitnessMode int

const (
	// FitnessCachedDistinct exploits the fact that all agents of an SSet
	// share one deterministic strategy: each distinct strategy pair present
	// in the population is played once per evaluation and the result is
	// reused for every SSet holding that strategy.  This is the redundancy
	// reduction the paper describes in Section IV-A and makes long
	// validation runs tractable.
	FitnessCachedDistinct FitnessMode = iota
	// FitnessExactAllPairs plays every SSet against every other SSet's
	// strategy explicitly, exactly as the distributed implementation does.
	// It is O(S^2) games per evaluation and is used by tests to check that
	// the cached mode is equivalent, and by the scaling benchmarks where the
	// volume of game play is the point.
	FitnessExactAllPairs
)

// String implements fmt.Stringer.
func (m FitnessMode) String() string {
	switch m {
	case FitnessCachedDistinct:
		return "cached-distinct"
	case FitnessExactAllPairs:
		return "exact-all-pairs"
	default:
		return fmt.Sprintf("FitnessMode(%d)", int(m))
	}
}

// Config describes a population simulation.
type Config struct {
	// NumSSets is the number of Strategy Sets (the paper's validation run
	// uses 5,000).
	NumSSets int
	// AgentsPerSSet is the number of agents per Strategy Set (the paper's
	// validation run uses 4 agents per SSet: 20,000 agents / 5,000 SSets).
	AgentsPerSSet int
	// MemorySteps is the memory depth of the strategies (1..6).
	MemorySteps int
	// Rounds is the number of IPD rounds per game (paper: 200).
	Rounds int
	// Noise is the per-move error probability (Section III-F).
	Noise float64
	// Game selects the scenario played (payoff matrix + validity
	// constraints); the zero value is the paper's IPD spec, which keeps
	// legacy configurations bit-identical.  See game.LookupSpec for the
	// registry of built-in scenarios.
	Game game.Spec
	// UpdateRule selects how a learner decides to adopt a teacher's
	// strategy; nil is the paper's Fermi pairwise-comparison rule.  See
	// dynamics.Lookup for the registry of built-in rules.
	UpdateRule dynamics.Rule
	// Topology selects the interaction graph: which SSets meet in game play
	// (fitness is the summed payoff against graph neighbors only) and which
	// pairs the Nature Agent can select for learning.  The zero value is the
	// paper's well-mixed population, bit-identical per seed to the
	// pre-topology engine.  The graph is built deterministically from Seed;
	// see topology.Parse for the registry of built-in families.
	Topology topology.Spec
	// PCRate, MutationRate and Beta configure the Nature Agent; zero values
	// select the paper's defaults (0.1, 0.05, β=1).
	PCRate       float64
	MutationRate float64
	Beta         float64
	// Seed seeds all randomness; runs with the same Config are identical.
	Seed uint64
	// Workers bounds the worker goroutines used for game play inside a
	// fitness evaluation (the thread-level tier).  Zero selects GOMAXPROCS
	// (the default resolves in sset.FitnessOptions.Workers); negative values
	// are rejected.
	Workers int
	// FitnessMode selects cached-distinct or exact-all-pairs evaluation for
	// the EvalFull mode (the per-event evaluation styles that predate the
	// shared fitness subsystem).
	FitnessMode FitnessMode
	// EvalMode routes fitness evaluation through the shared
	// internal/fitness subsystem.  The zero value, fitness.EvalFull,
	// preserves the FitnessMode behaviour above; EvalCached memoizes each
	// distinct strategy pair across generations, and EvalIncremental
	// additionally maintains per-SSet fitness sums with row/column
	// invalidation.  Noisy or mixed populations transparently fall back to
	// the EvalFull path so that all three modes stay bit-for-bit identical
	// for a given seed.
	EvalMode fitness.EvalMode
	// StateMode and AccumMode select the kernel optimization levels
	// (Figure 3); the zero values are the optimized settings.
	StateMode game.StateMode
	AccumMode game.AccumMode
	// Kernel selects the deterministic-game inner loop; the zero value,
	// game.KernelAuto, closes the joint-state cycle in closed form whenever
	// that is bit-exact, and game.KernelFullReplay forces the
	// round-by-round reference loop.  All kernel modes produce identical
	// trajectories per seed.
	Kernel game.KernelMode
	// InitialStrategies optionally fixes the initial strategy of each SSet;
	// it must have exactly NumSSets entries.  When nil, every SSet starts
	// with an independent uniformly random pure strategy, as in the paper's
	// validation study.
	InitialStrategies []strategy.Strategy
	// SampleEvery controls how often abundance samples are recorded (in
	// generations).  Zero disables periodic sampling; a sample is always
	// taken at the end of the run.
	SampleEvery int
	// CheckpointPath, when non-empty, makes Run write a resumable (format
	// v4) checkpoint of the final state; combined with CheckpointEvery it
	// also receives the periodic mid-run checkpoints.  Restore resumes a
	// run from such a file bit-identically.
	CheckpointPath string
	// CheckpointEvery writes a mid-run checkpoint to CheckpointPath every
	// this many generations (0 disables periodic checkpointing).  Each
	// write atomically replaces the previous one.
	CheckpointEvery int
	// CheckpointLabel is recorded as the checkpoint's free-form Label.
	CheckpointLabel string
	// SharedCache, when non-nil, makes the run evaluate fitness through a
	// view over the given cache's store instead of a private PairCache, so
	// independent runs of the same configuration (ensemble replicates) share
	// one interning registry and one memoized pair table.  It only takes
	// effect when the run would build a cache anyway (EvalMode != EvalFull
	// and the noiseless/deterministic gate holds); the noise and mixed-
	// strategy bypasses ignore it, so RNG streams never move and every run
	// stays bit-identical per seed to the same run with a private cache.
	// The cache must be bound to the identical game (same spec, payoff,
	// rounds and memory depth) or New fails.
	SharedCache *fitness.PairCache
	// Faults optionally installs a deterministic fault plan on the run:
	// the serial engine is the fault model's rank 0, so crash events
	// scheduled for rank 0 fire at the matching generation and abort Run
	// with a *faults.CrashError (drop/delay events are meaningless without
	// a fabric and never fire here).  Nil runs fault-free.  The supervisor
	// (internal/supervise) classifies injected crashes as transient and
	// resumes from the latest checkpoint.
	Faults *faults.Plan
}

func (c Config) validate() error {
	if c.NumSSets < 2 {
		return fmt.Errorf("population: need at least 2 SSets, got %d", c.NumSSets)
	}
	if c.AgentsPerSSet < 1 {
		return fmt.Errorf("population: agents per SSet must be positive, got %d", c.AgentsPerSSet)
	}
	if c.MemorySteps < 1 || c.MemorySteps > game.MaxMemorySteps {
		return fmt.Errorf("population: memory steps %d out of range [1,%d]", c.MemorySteps, game.MaxMemorySteps)
	}
	if c.Rounds <= 0 {
		return fmt.Errorf("population: rounds must be positive, got %d", c.Rounds)
	}
	if c.Workers < 0 {
		return fmt.Errorf("population: Workers must be non-negative, got %d (0 selects GOMAXPROCS)", c.Workers)
	}
	if c.InitialStrategies != nil && len(c.InitialStrategies) != c.NumSSets {
		return fmt.Errorf("population: %d initial strategies for %d SSets", len(c.InitialStrategies), c.NumSSets)
	}
	if c.SampleEvery < 0 {
		return fmt.Errorf("population: SampleEvery must be non-negative, got %d", c.SampleEvery)
	}
	if c.CheckpointEvery < 0 {
		return fmt.Errorf("population: CheckpointEvery must be non-negative, got %d", c.CheckpointEvery)
	}
	if c.CheckpointEvery > 0 && c.CheckpointPath == "" {
		return fmt.Errorf("population: CheckpointEvery requires CheckpointPath")
	}
	if !c.EvalMode.Valid() {
		return fmt.Errorf("population: invalid eval mode %v", c.EvalMode)
	}
	return nil
}

// AbundanceSample records the composition of the population at one
// generation.
type AbundanceSample struct {
	Generation int
	// Distinct is the number of distinct strategies present.
	Distinct int
	// TopStrategy is the String rendering of the most abundant strategy and
	// TopFraction the fraction of SSets holding it.
	TopStrategy string
	TopFraction float64
	// WSLSFraction and TFTFraction are the fractions of SSets holding the
	// canonical WSLS / TFT strategy for the configured memory depth;
	// AllDFraction likewise for always-defect.
	WSLSFraction float64
	TFTFraction  float64
	AllDFraction float64
	// MeanDefectingStates is the mean fraction of states in which the
	// population's strategies prescribe defection (a coarse cooperativity
	// measure over the whole strategy table).
	MeanDefectingStates float64
}

// Result summarises a completed run.
type Result struct {
	// Generations is the number of generations simulated.
	Generations int
	// FinalStrategies is the strategy table at the end of the run.
	FinalStrategies []strategy.Strategy
	// Samples holds the periodic abundance samples (the last entry is always
	// the final generation).
	Samples []AbundanceSample
	// NatureStats counts the evolutionary events that occurred.
	NatureStats nature.Stats
	// TotalGamesPlayed counts two-player IPD games executed by the fitness
	// evaluations.
	TotalGamesPlayed int64
	// Metrics is the run's flat observability export: cache counters,
	// kernel-mode mix and nature events (see fitness.Metrics).
	Metrics fitness.Metrics
}

// Model is an in-progress population simulation.  It is not safe for
// concurrent use; the parallelism lives inside the fitness evaluations.
type Model struct {
	cfg    Config
	engine *game.Engine
	graph  topology.Graph
	nat    *nature.Agent
	table  *nature.Table
	ssets  []*sset.SSet
	src    *rng.Source
	gen    int
	games  int64
	// cache and matrix implement the EvalCached / EvalIncremental modes of
	// the shared fitness subsystem; both are nil when the model runs on the
	// EvalFull path (including the noise/mixed-strategy bypass).
	cache  *fitness.PairCache
	matrix *fitness.IncrementalMatrix
}

// New validates the configuration and builds a Model ready to run.
func New(cfg Config) (*Model, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	engine, err := game.NewEngine(game.EngineConfig{
		Game:        cfg.Game,
		Rounds:      cfg.Rounds,
		MemorySteps: cfg.MemorySteps,
		Noise:       cfg.Noise,
		StateMode:   cfg.StateMode,
		AccumMode:   cfg.AccumMode,
		Kernel:      cfg.Kernel,
	})
	if err != nil {
		return nil, err
	}
	// The graph is built from the seed directly (not from the root stream)
	// so adding the topology layer leaves the nature/init/game streams — and
	// therefore every pre-topology trajectory — untouched.
	graph, err := cfg.Topology.Build(cfg.NumSSets, cfg.Seed)
	if err != nil {
		return nil, err
	}
	root := rng.New(cfg.Seed)
	natSrc := root.Split()
	initSrc := root.Split()
	gameSrc := root.Split()

	nat, err := nature.New(nature.Config{
		PCRate:       cfg.PCRate,
		MutationRate: cfg.MutationRate,
		Beta:         cfg.Beta,
		MemorySteps:  cfg.MemorySteps,
		Rule:         cfg.UpdateRule,
		Topology:     graph,
	}, natSrc)
	if err != nil {
		return nil, err
	}

	initial := cfg.InitialStrategies
	if initial == nil {
		initial = make([]strategy.Strategy, cfg.NumSSets)
		for i := range initial {
			initial[i] = strategy.RandomPure(cfg.MemorySteps, initSrc)
		}
	}
	table, err := nature.NewTable(initial)
	if err != nil {
		return nil, err
	}
	ssets := make([]*sset.SSet, cfg.NumSSets)
	for i := range ssets {
		s, err := sset.New(i, cfg.AgentsPerSSet, table.Get(i))
		if err != nil {
			return nil, err
		}
		ssets[i] = s
	}
	m := &Model{cfg: cfg, engine: engine, graph: graph, nat: nat, table: table, ssets: ssets, src: gameSrc}
	evalMode := fitness.EffectiveMode(engine, cfg.EvalMode)
	if evalMode != fitness.EvalFull && fitness.CacheUsable(engine, initial) {
		var cache *fitness.PairCache
		if cfg.SharedCache != nil {
			// A view over the shared store: lookups are served from (and
			// misses warm) the cross-run table, while this run's counters and
			// kernel statistics stay attributed to this run's own engine.
			cache, err = cfg.SharedCache.NewView(engine)
			if err != nil {
				return nil, fmt.Errorf("population: SharedCache: %w", err)
			}
		} else {
			cache, err = fitness.NewPairCache(engine)
			if err != nil {
				return nil, err
			}
		}
		m.cache = cache
		// CacheUsable guarantees every entry is encodable, so binding the
		// table to the cache's registry cannot fail; from here on fitness
		// lookups are ID pairs, never strategy encodings.
		if err := table.Bind(cache.Interner()); err != nil {
			return nil, fmt.Errorf("population: %w", err)
		}
		if evalMode == fitness.EvalIncremental {
			mat, err := fitness.NewIncrementalMatrix(cache, graph, initial, 0, cfg.NumSSets)
			if err != nil {
				return nil, err
			}
			m.matrix = mat
		}
	} else {
		// EvalFull (or the noise/mixed bypass): interning still pays off for
		// the per-event distinct-pair cache of fitnessCached, which becomes
		// an ID-pair map instead of a string-pair map.  A table holding
		// strategies outside the codec simply stays unbound and the legacy
		// string-keyed path takes over.
		_ = table.Bind(intern.NewRegistry())
	}
	return m, nil
}

// effectiveIdentity resolves the scenario identity strings a Config records
// in checkpoints: the zero-value Game and nil UpdateRule map to the paper's
// defaults exactly as the engines resolve them.
func effectiveIdentity(cfg Config) (spec game.Spec, rule string, topo string) {
	spec = cfg.Game
	if spec.Name == "" {
		spec = game.IPD()
	}
	rule = "fermi"
	if cfg.UpdateRule != nil {
		rule = cfg.UpdateRule.Name()
	}
	return spec, rule, cfg.Topology.String()
}

// Snapshot exports the model's mid-run state as a resumable (format v4)
// checkpoint: the typed strategy table, the Nature Agent's RNG stream and
// event counters, and the game-play stream.  Restore rebuilds a Model from
// it that continues the run bit-identically.
func (m *Model) Snapshot() checkpoint.Snapshot {
	spec, rule, topo := effectiveIdentity(m.cfg)
	st := m.nat.ExportState()
	return checkpoint.Snapshot{
		Generation:  m.gen,
		Seed:        m.cfg.Seed,
		MemorySteps: m.cfg.MemorySteps,
		Game:        spec.Name,
		Payoff:      spec.Payoff.Table(),
		UpdateRule:  rule,
		Topology:    topo,
		Strategies:  m.Strategies(),
		Label:       m.cfg.CheckpointLabel,
		Resume:      true,
		Engine:      checkpoint.EngineSerial,
		Streams: []checkpoint.Stream{
			{Name: checkpoint.StreamNature, State: st.RNG},
			{Name: checkpoint.StreamGame, State: m.src.State()},
		},
		PCEvents:    st.PCEvents,
		Adoptions:   st.Adoptions,
		Mutations:   st.Mutations,
		GamesPlayed: m.games,
	}
}

// checkIdentity verifies that a snapshot was produced by a run with the
// same identity as cfg, via the shared checkpoint.Identity comparison.
func checkIdentity(cfg Config, snap checkpoint.Snapshot) error {
	spec, rule, topo := effectiveIdentity(cfg)
	return snap.CheckIdentity("population", checkpoint.Identity{
		NumSSets:    cfg.NumSSets,
		MemorySteps: cfg.MemorySteps,
		Seed:        cfg.Seed,
		Game:        spec.Name,
		Payoff:      spec.Payoff.Table(),
		UpdateRule:  rule,
		Topology:    topo,
	})
}

// Restore rebuilds a Model from a checkpoint so the run continues where the
// snapshot was taken.  For a resumable (format v4, serial-engine) snapshot
// the continuation is bit-identical: the strategy table, generation
// counter, event counters and both RNG streams are restored, so running N
// more generations produces exactly what an uninterrupted run would have.
// For a final-only snapshot (pre-v4, or written without resume state) the
// restore is a warm start: the typed strategy table and generation counter
// carry over but the RNG streams restart from cfg.Seed, so the continuation
// is a valid run from that population, not a replay.  The config must
// describe the original run (same shape, seed and scenario identity);
// Config.InitialStrategies must be nil — the table comes from the snapshot.
func Restore(cfg Config, snap checkpoint.Snapshot) (*Model, error) {
	if cfg.InitialStrategies != nil {
		return nil, fmt.Errorf("population: Restore takes the strategy table from the checkpoint; InitialStrategies must be nil")
	}
	if err := checkIdentity(cfg, snap); err != nil {
		return nil, err
	}
	cfg.InitialStrategies = snap.Strategies
	m, err := New(cfg)
	if err != nil {
		return nil, err
	}
	m.gen = snap.Generation
	if !snap.Resume {
		return m, nil
	}
	if snap.Engine != checkpoint.EngineSerial {
		return nil, fmt.Errorf("population: checkpoint carries %q-engine resume state; the serial engine cannot restore it", snap.Engine)
	}
	natState, ok := snap.Stream(checkpoint.StreamNature)
	if !ok {
		return nil, fmt.Errorf("population: resume checkpoint is missing the %q stream", checkpoint.StreamNature)
	}
	gameState, ok := snap.Stream(checkpoint.StreamGame)
	if !ok {
		return nil, fmt.Errorf("population: resume checkpoint is missing the %q stream", checkpoint.StreamGame)
	}
	if err := m.nat.RestoreState(nature.State{
		RNG:         natState,
		Generations: snap.Generation,
		PCEvents:    snap.PCEvents,
		Adoptions:   snap.Adoptions,
		Mutations:   snap.Mutations,
	}); err != nil {
		return nil, fmt.Errorf("population: %w", err)
	}
	if err := m.src.SetState(gameState); err != nil {
		return nil, fmt.Errorf("population: restoring game stream: %w", err)
	}
	m.games = snap.GamesPlayed
	return m, nil
}

// Topology returns the interaction graph the model runs on (the complete
// graph for a well-mixed population).
func (m *Model) Topology() topology.Graph { return m.graph }

// Config returns the model's configuration.
func (m *Model) Config() Config { return m.cfg }

// Generation returns the number of generations simulated so far.
func (m *Model) Generation() int { return m.gen }

// PopulationSize returns the total number of agents (SSets × agents per
// SSet); it is constant across generations.
func (m *Model) PopulationSize() int { return m.cfg.NumSSets * m.cfg.AgentsPerSSet }

// Strategies returns a snapshot of the current strategy table.
func (m *Model) Strategies() []strategy.Strategy { return m.table.Snapshot() }

// GamesPlayed returns the number of IPD games executed so far.  In the
// cached evaluation modes every game runs through the pair cache, so the
// count is the cache's play counter (misses plus bypassed games).
func (m *Model) GamesPlayed() int64 {
	if m.cache != nil {
		return m.cache.Plays()
	}
	return m.games
}

// FractionOf returns the fraction of SSets currently holding a strategy
// equal to s.
func (m *Model) FractionOf(s strategy.Strategy) float64 {
	count := 0
	for i := 0; i < m.table.Len(); i++ {
		if m.table.Get(i).Equal(s) {
			count++
		}
	}
	return float64(count) / float64(m.table.Len())
}

// fitnessPair evaluates the relative fitness of the two SSets selected for a
// pairwise comparison.  Each SSet's fitness is the summed payoff of its
// strategy against the strategies of its topology neighbors (every other
// SSet in the population for the default well-mixed graph).
func (m *Model) fitnessPair(a, b int) (float64, float64, error) {
	if m.matrix != nil {
		fa, err := m.matrix.Fitness(a)
		if err != nil {
			return 0, 0, err
		}
		fb, err := m.matrix.Fitness(b)
		if err != nil {
			return 0, 0, err
		}
		return fa, fb, nil
	}
	if m.cache != nil {
		fa, err := m.fitnessViaPairCache(a)
		if err != nil {
			return 0, 0, err
		}
		fb, err := m.fitnessViaPairCache(b)
		if err != nil {
			return 0, 0, err
		}
		return fa, fb, nil
	}
	switch m.cfg.FitnessMode {
	case FitnessExactAllPairs:
		fa, err := m.fitnessExact(a)
		if err != nil {
			return 0, 0, err
		}
		fb, err := m.fitnessExact(b)
		if err != nil {
			return 0, 0, err
		}
		return fa, fb, nil
	default:
		if m.table.Bound() {
			// Distinct pairs are identified by interned ID, so the per-event
			// cache is an integer-keyed map with no string building.
			cache := make(map[uint64]float64)
			fa, err := m.fitnessCachedID(a, cache)
			if err != nil {
				return 0, 0, err
			}
			fb, err := m.fitnessCachedID(b, cache)
			if err != nil {
				return 0, 0, err
			}
			return fa, fb, nil
		}
		cache := make(map[[2]string]float64)
		fa, err := m.fitnessCached(a, cache)
		if err != nil {
			return 0, 0, err
		}
		fb, err := m.fitnessCached(b, cache)
		if err != nil {
			return 0, 0, err
		}
		return fa, fb, nil
	}
}

// opponents returns the strategies of SSet i's topology neighbors in
// ascending index order — for the well-mixed graph, every other SSet,
// exactly the pre-topology opponent list.
func (m *Model) opponents(i int) []strategy.Strategy {
	deg := m.graph.Degree(i)
	opps := make([]strategy.Strategy, deg)
	for k := 0; k < deg; k++ {
		opps[k] = m.table.Get(m.graph.Neighbor(i, k))
	}
	return opps
}

// fitnessViaPairCache sums SSet i's payoff against each of its neighbors
// through the persistent pair cache (EvalCached): each distinct strategy
// pair is played at most once per run.  Lookups go by the table's interned
// IDs one 64-lane block at a time, so steady-state evaluation allocates
// nothing and never re-encodes a strategy, while misses fill through the
// bit-sliced batch kernel.
func (m *Model) fitnessViaPairCache(i int) (float64, error) {
	my := m.table.ID(i)
	var (
		ids [game.BatchLanes]uint32
		res [game.BatchLanes]game.Result
	)
	total := 0.0
	deg := m.graph.Degree(i)
	for lo := 0; lo < deg; lo += game.BatchLanes {
		n := game.BatchLanes
		if lo+n > deg {
			n = deg - lo
		}
		for k := 0; k < n; k++ {
			ids[k] = m.table.ID(m.graph.Neighbor(i, lo+k))
		}
		if err := m.cache.PlayIDBatch(my, ids[:n], res[:n]); err != nil {
			return 0, err
		}
		for k := 0; k < n; k++ {
			total += res[k].FitnessA
		}
	}
	return total, nil
}

// fitnessExact plays SSet i against each neighbor's strategy explicitly.
func (m *Model) fitnessExact(i int) (float64, error) {
	opponents := m.opponents(i)
	m.games += int64(len(opponents))
	return m.ssets[i].Fitness(m.engine, opponents, sset.FitnessOptions{
		Workers: m.cfg.Workers,
		Source:  m.src.Split(),
	})
}

// fitnessCachedID is fitnessCached on interned IDs: the per-event
// distinct-pair cache is keyed by packed ID pairs, so identifying a repeat
// pair costs an integer map probe instead of building two string keys.  For
// pure strategies the distinct-pair structure, the per-miss randomness
// splits and therefore the trajectory are identical to the string-keyed
// path.  For mixed strategies the ID keys are exact where String() was
// lossy (it truncates to eight states at two decimals), so two nearly-equal
// mixed strategies that used to collide — silently reusing the wrong
// pair's payoff — are now evaluated separately.
func (m *Model) fitnessCachedID(i int, cache map[uint64]float64) (float64, error) {
	my := m.table.Get(i)
	myID := m.table.ID(i)
	deg := m.graph.Degree(i)
	// Pass 1: collect the distinct pairs missing from the per-event cache,
	// in first-encounter order, splitting each miss's randomness in exactly
	// the order the one-game-at-a-time loop used to — the split order is
	// what keeps the trajectory bit-identical.
	var (
		queued   map[uint64]int
		missOpps []game.Player
		missSrcs []*rng.Source
		needSrcs bool
	)
	for k := 0; k < deg; k++ {
		j := m.graph.Neighbor(i, k)
		oppID := m.table.ID(j)
		key := uint64(myID)<<32 | uint64(oppID)
		if _, ok := cache[key]; ok {
			continue
		}
		if _, ok := queued[key]; ok {
			continue
		}
		opp := m.table.Get(j)
		var src *rng.Source
		if m.engine.Noise() > 0 || !my.Deterministic() || !opp.Deterministic() {
			src = m.src.Split()
			needSrcs = true
		}
		if queued == nil {
			queued = make(map[uint64]int)
		}
		queued[key] = len(missOpps)
		missOpps = append(missOpps, opp)
		missSrcs = append(missSrcs, src)
	}
	// Play the misses through the bit-sliced batch kernel.
	var results []game.Result
	if len(missOpps) > 0 {
		results = make([]game.Result, len(missOpps))
		var srcs []*rng.Source
		if needSrcs {
			srcs = missSrcs
		}
		if err := m.engine.PlayBatch(my, missOpps, srcs, results); err != nil {
			return 0, err
		}
		m.games += int64(len(missOpps))
	}
	// Pass 2: replay the one-game-at-a-time loop's probe/fill order with the
	// plays precomputed.  Filling forward then reverse at the first
	// encounter — not up front — matters for the noisy self-pair (another
	// SSet holding the focal strategy): its key is its own reverse, so the
	// first occurrence must see FitnessA while later occurrences see the
	// FitnessB overwrite, exactly as the serial loop did.
	total := 0.0
	for k := 0; k < deg; k++ {
		oppID := m.table.ID(m.graph.Neighbor(i, k))
		key := uint64(myID)<<32 | uint64(oppID)
		payoff, ok := cache[key]
		if !ok {
			res := results[queued[key]]
			payoff = res.FitnessA
			cache[key] = payoff
			// The reverse pairing gives the opponent's payoff; cache it too
			// since the partner SSet is usually evaluated next.
			cache[uint64(oppID)<<32|uint64(myID)] = res.FitnessB
		}
		total += payoff
	}
	return total, nil
}

// fitnessCached computes the same sum but plays each distinct strategy pair
// only once, reusing the result across SSets that hold identical strategies.
// It is the fallback for tables holding strategies outside the codec (which
// cannot be interned); fitnessCachedID is the normal path.
func (m *Model) fitnessCached(i int, cache map[[2]string]float64) (float64, error) {
	my := m.table.Get(i)
	myKey := my.String()
	total := 0.0
	deg := m.graph.Degree(i)
	for k := 0; k < deg; k++ {
		opp := m.table.Get(m.graph.Neighbor(i, k))
		key := [2]string{myKey, opp.String()}
		payoff, ok := cache[key]
		if !ok {
			var src *rng.Source
			if m.engine.Noise() > 0 || !my.Deterministic() || !opp.Deterministic() {
				src = m.src.Split()
			}
			res, err := m.engine.Play(my, opp, src)
			if err != nil {
				return 0, err
			}
			m.games++
			payoff = res.FitnessA
			cache[key] = payoff
			// The reverse pairing gives the opponent's payoff; cache it too
			// since the partner SSet is usually evaluated next.
			cache[[2]string{opp.String(), myKey}] = res.FitnessB
		}
		total += payoff
	}
	return total, nil
}

// applyStrategyChange installs a new strategy for SSet idx everywhere the
// engine tracks it: the authoritative table, the SSet itself, and — in
// EvalIncremental mode — the fitness matrix, which invalidates row idx and
// delta-updates every other row's column idx.
func (m *Model) applyStrategyChange(idx int, s strategy.Strategy) error {
	if err := m.table.Set(idx, s); err != nil {
		return err
	}
	if err := m.ssets[idx].SetStrategy(s); err != nil {
		return err
	}
	if m.matrix != nil {
		return m.matrix.Update(idx, s)
	}
	return nil
}

// Step advances the simulation by one generation: a possible
// pairwise-comparison learning event followed by a possible mutation, with
// strategy-table updates applied immediately, as in the paper's Nature Agent
// loop.
func (m *Model) Step() error {
	// Pairwise comparison learning.
	if teacher, learner, ok := m.nat.MaybeSelectPC(m.cfg.NumSSets); ok {
		fitT, fitL, err := m.fitnessPair(teacher, learner)
		if err != nil {
			return fmt.Errorf("population: generation %d: %w", m.gen, err)
		}
		adopted, _ := m.nat.DecideAdoption(fitT, fitL)
		m.nat.RecordPC(adopted)
		if adopted {
			newStrat := m.table.Get(teacher).Clone()
			if err := m.applyStrategyChange(learner, newStrat); err != nil {
				return err
			}
		}
	}
	// Mutation.
	if target, newStrat, ok := m.nat.MaybeMutation(m.cfg.NumSSets); ok {
		if err := m.applyStrategyChange(target, newStrat); err != nil {
			return err
		}
	}
	m.nat.EndGeneration()
	m.gen++
	return nil
}

// Sample computes an abundance sample for the current generation.
func (m *Model) Sample() AbundanceSample {
	counts := m.table.Counts()
	top, topFrac := m.tableMostAbundant(counts)
	s := AbundanceSample{
		Generation:   m.gen,
		Distinct:     len(counts),
		TopStrategy:  top,
		TopFraction:  topFrac,
		WSLSFraction: m.FractionOf(strategy.WSLS(m.cfg.MemorySteps)),
		TFTFraction:  m.FractionOf(strategy.TFT(m.cfg.MemorySteps)),
		AllDFraction: m.FractionOf(strategy.AllD(m.cfg.MemorySteps)),
	}
	totalStates := 0
	defecting := 0
	for i := 0; i < m.table.Len(); i++ {
		if p, ok := m.table.Get(i).(*strategy.Pure); ok {
			totalStates += p.NumStates()
			defecting += p.DefectionCount()
		}
	}
	if totalStates > 0 {
		s.MeanDefectingStates = float64(defecting) / float64(totalStates)
	}
	return s
}

func (m *Model) tableMostAbundant(counts map[string]int) (string, float64) {
	best, bestCount := "", -1
	for k, c := range counts {
		if c > bestCount || (c == bestCount && k < best) {
			best, bestCount = k, c
		}
	}
	return best, float64(bestCount) / float64(m.table.Len())
}

// Run advances the simulation by generations generations (or until ctx is
// cancelled) and returns the result.  Run may be called repeatedly; each
// call continues from the current state.  On error the Result still
// carries the samples recorded so far (with Generations at the reached
// value), so a supervisor can stitch the trajectory across a recovered
// failure; all other Result fields are left zero.
func (m *Model) Run(ctx context.Context, generations int) (Result, error) {
	if generations < 0 {
		return Result{}, fmt.Errorf("population: negative generation count %d", generations)
	}
	var samples []AbundanceSample
	partial := func() Result {
		return Result{Generations: m.gen, Samples: samples}
	}
	lastSaved := -1
	for g := 0; g < generations; g++ {
		select {
		case <-ctx.Done():
			return partial(), ctx.Err()
		default:
		}
		// The serial engine is the fault model's rank 0: a crash event
		// scheduled for (rank 0, generation m.gen) fires here, before the
		// generation runs, exactly like the distributed fault points.
		if err := m.cfg.Faults.Crash(0, m.gen); err != nil {
			return partial(), err
		}
		if err := m.Step(); err != nil {
			return partial(), err
		}
		if m.cfg.SampleEvery > 0 && m.gen%m.cfg.SampleEvery == 0 {
			samples = append(samples, m.Sample())
		}
		if m.cfg.CheckpointEvery > 0 && m.gen%m.cfg.CheckpointEvery == 0 {
			if err := checkpoint.Save(m.cfg.CheckpointPath, m.Snapshot()); err != nil {
				return partial(), fmt.Errorf("population: generation %d: %w", m.gen, err)
			}
			lastSaved = m.gen
		}
	}
	if len(samples) == 0 || samples[len(samples)-1].Generation != m.gen {
		samples = append(samples, m.Sample())
	}
	// Skip the final save when the last periodic write already captured this
	// generation — the snapshot would be byte-identical.
	if m.cfg.CheckpointPath != "" && lastSaved != m.gen {
		if err := checkpoint.Save(m.cfg.CheckpointPath, m.Snapshot()); err != nil {
			return partial(), err
		}
	}
	return Result{
		Generations:      m.gen,
		FinalStrategies:  m.Strategies(),
		Samples:          samples,
		NatureStats:      m.nat.Stats(),
		TotalGamesPlayed: m.GamesPlayed(),
		Metrics:          m.Metrics(),
	}, nil
}

// NatureStats exposes the Nature Agent's event counters for callers that
// drive the model step by step.
func (m *Model) NatureStats() nature.Stats { return m.nat.Stats() }

// Metrics returns the run's flat observability counters: pair-cache
// traffic, the kernel-mode mix (including batch-lane occupancy) and the
// Nature Agent's event counts.
func (m *Model) Metrics() fitness.Metrics {
	st := m.nat.Stats()
	met := fitness.Metrics{
		Generations: m.gen,
		PCEvents:    st.PCEvents,
		Adoptions:   st.Adoptions,
		Mutations:   st.Mutations,
	}
	met.AddEngine(m.engine.KernelStats())
	met.AddCache(m.cache)
	return met
}
