package population

import (
	"context"
	"testing"

	"evogame/internal/strategy"
)

func baseConfig() Config {
	return Config{
		NumSSets:      16,
		AgentsPerSSet: 2,
		MemorySteps:   1,
		Rounds:        50,
		PCRate:        1,  // learn every generation so short tests converge
		MutationRate:  -1, // disabled unless a test overrides it
		Beta:          1,
		Seed:          42,
		Workers:       2,
	}
}

func mustModel(t *testing.T, cfg Config) *Model {
	t.Helper()
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestNewValidation(t *testing.T) {
	cases := []func(*Config){
		func(c *Config) { c.NumSSets = 1 },
		func(c *Config) { c.AgentsPerSSet = 0 },
		func(c *Config) { c.MemorySteps = 0 },
		func(c *Config) { c.MemorySteps = 7 },
		func(c *Config) { c.Rounds = 0 },
		func(c *Config) { c.SampleEvery = -1 },
		func(c *Config) { c.InitialStrategies = []strategy.Strategy{strategy.AllC(1)} },
		func(c *Config) { c.Noise = 2 },
		func(c *Config) { c.Beta = -1 },
		func(c *Config) { c.PCRate = 3 },
	}
	for i, mutate := range cases {
		cfg := baseConfig()
		mutate(&cfg)
		if _, err := New(cfg); err == nil {
			t.Errorf("case %d: New accepted invalid config", i)
		}
	}
}

func TestInitialPopulation(t *testing.T) {
	cfg := baseConfig()
	m := mustModel(t, cfg)
	if m.PopulationSize() != 32 {
		t.Fatalf("population size = %d, want 32", m.PopulationSize())
	}
	strats := m.Strategies()
	if len(strats) != 16 {
		t.Fatalf("strategy table has %d entries", len(strats))
	}
	for i, s := range strats {
		if s == nil || s.MemorySteps() != 1 {
			t.Fatalf("initial strategy %d invalid", i)
		}
	}
	if m.Generation() != 0 {
		t.Fatal("new model should start at generation 0")
	}
}

func TestInitialStrategiesRespected(t *testing.T) {
	cfg := baseConfig()
	cfg.NumSSets = 4
	cfg.InitialStrategies = []strategy.Strategy{
		strategy.AllC(1), strategy.AllD(1), strategy.WSLS(1), strategy.TFT(1),
	}
	m := mustModel(t, cfg)
	got := m.Strategies()
	for i, want := range cfg.InitialStrategies {
		if !got[i].Equal(want) {
			t.Fatalf("initial strategy %d not respected", i)
		}
	}
}

func TestPopulationSizeConservedAcrossGenerations(t *testing.T) {
	cfg := baseConfig()
	cfg.MutationRate = 0.5
	m := mustModel(t, cfg)
	for g := 0; g < 200; g++ {
		if err := m.Step(); err != nil {
			t.Fatal(err)
		}
		if len(m.Strategies()) != cfg.NumSSets {
			t.Fatalf("generation %d: strategy table changed size", g)
		}
		if m.PopulationSize() != cfg.NumSSets*cfg.AgentsPerSSet {
			t.Fatalf("generation %d: population size changed", g)
		}
	}
	if m.Generation() != 200 {
		t.Fatalf("generation counter = %d", m.Generation())
	}
}

func TestDeterministicRuns(t *testing.T) {
	run := func() Result {
		cfg := baseConfig()
		cfg.MutationRate = 0.2
		cfg.SampleEvery = 25
		m := mustModel(t, cfg)
		res, err := m.Run(context.Background(), 150)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if len(a.FinalStrategies) != len(b.FinalStrategies) {
		t.Fatal("runs differ in table size")
	}
	for i := range a.FinalStrategies {
		if !a.FinalStrategies[i].Equal(b.FinalStrategies[i]) {
			t.Fatalf("runs diverge at SSet %d", i)
		}
	}
	if a.NatureStats != b.NatureStats {
		t.Fatalf("nature stats differ: %+v vs %+v", a.NatureStats, b.NatureStats)
	}
	if len(a.Samples) != len(b.Samples) {
		t.Fatal("sample counts differ")
	}
}

func TestAllDDefeatsAllC(t *testing.T) {
	// A population of only ALLC and ALLD with selection and no mutation must
	// fixate on ALLD: defectors strictly dominate cooperators in a well-mixed
	// population without reciprocity.
	cfg := baseConfig()
	cfg.NumSSets = 12
	initial := make([]strategy.Strategy, cfg.NumSSets)
	for i := range initial {
		if i%2 == 0 {
			initial[i] = strategy.AllC(1)
		} else {
			initial[i] = strategy.AllD(1)
		}
	}
	cfg.InitialStrategies = initial
	m := mustModel(t, cfg)
	if _, err := m.Run(context.Background(), 400); err != nil {
		t.Fatal(err)
	}
	if frac := m.FractionOf(strategy.AllD(1)); frac != 1 {
		t.Fatalf("ALLD fraction after selection = %v, want fixation at 1", frac)
	}
}

func TestWSLSMajorityResistsAllD(t *testing.T) {
	// With a WSLS majority, the cooperative cluster out-earns the defectors,
	// so selection should not let ALLD take over (and typically eliminates
	// it).  This is the stability property behind the paper's Figure 2.
	cfg := baseConfig()
	cfg.NumSSets = 16
	cfg.Noise = 0.01
	initial := make([]strategy.Strategy, cfg.NumSSets)
	for i := range initial {
		if i < 12 {
			initial[i] = strategy.WSLS(1)
		} else {
			initial[i] = strategy.AllD(1)
		}
	}
	cfg.InitialStrategies = initial
	m := mustModel(t, cfg)
	if _, err := m.Run(context.Background(), 300); err != nil {
		t.Fatal(err)
	}
	if frac := m.FractionOf(strategy.WSLS(1)); frac < 0.75 {
		t.Fatalf("WSLS fraction dropped to %v; the cooperative majority should persist", frac)
	}
}

func TestMutationIntroducesNewStrategies(t *testing.T) {
	cfg := baseConfig()
	cfg.PCRate = -1 // selection off: only mutation acts
	cfg.MutationRate = 1
	initial := make([]strategy.Strategy, cfg.NumSSets)
	for i := range initial {
		initial[i] = strategy.AllC(1)
	}
	cfg.InitialStrategies = initial
	m := mustModel(t, cfg)
	if _, err := m.Run(context.Background(), 50); err != nil {
		t.Fatal(err)
	}
	sample := m.Sample()
	if sample.Distinct < 2 {
		t.Fatalf("after 50 forced mutations the population still has %d distinct strategies", sample.Distinct)
	}
	if m.NatureStats().Mutations != 50 {
		t.Fatalf("mutation count = %d, want 50", m.NatureStats().Mutations)
	}
}

func TestNoEventsWhenRatesDisabled(t *testing.T) {
	cfg := baseConfig()
	cfg.PCRate = -1
	cfg.MutationRate = -1
	m := mustModel(t, cfg)
	before := m.Strategies()
	if _, err := m.Run(context.Background(), 100); err != nil {
		t.Fatal(err)
	}
	after := m.Strategies()
	for i := range before {
		if !before[i].Equal(after[i]) {
			t.Fatalf("strategy table changed with all dynamics disabled (SSet %d)", i)
		}
	}
	if m.GamesPlayed() != 0 {
		t.Fatalf("games were played with dynamics disabled: %d", m.GamesPlayed())
	}
}

func TestFitnessModesAgreeOnDynamics(t *testing.T) {
	// With no noise the cached-distinct evaluation must produce exactly the
	// same fitness values, hence the same adoption decisions and the same
	// final table, as the exact all-pairs evaluation.
	run := func(mode FitnessMode) []strategy.Strategy {
		cfg := baseConfig()
		cfg.NumSSets = 10
		cfg.MutationRate = 0.3
		cfg.FitnessMode = mode
		cfg.Seed = 7
		m := mustModel(t, cfg)
		if _, err := m.Run(context.Background(), 120); err != nil {
			t.Fatal(err)
		}
		return m.Strategies()
	}
	cached := run(FitnessCachedDistinct)
	exact := run(FitnessExactAllPairs)
	for i := range cached {
		if !cached[i].Equal(exact[i]) {
			t.Fatalf("fitness modes diverge at SSet %d", i)
		}
	}
}

func TestCachedModePlaysFewerGames(t *testing.T) {
	cfg := baseConfig()
	cfg.NumSSets = 24
	cfg.Seed = 3
	cached := mustModel(t, cfg)
	if _, err := cached.Run(context.Background(), 40); err != nil {
		t.Fatal(err)
	}
	cfg.FitnessMode = FitnessExactAllPairs
	exact := mustModel(t, cfg)
	if _, err := exact.Run(context.Background(), 40); err != nil {
		t.Fatal(err)
	}
	if cached.GamesPlayed() == 0 || exact.GamesPlayed() == 0 {
		t.Fatal("expected games to be played in both modes")
	}
	if cached.GamesPlayed() >= exact.GamesPlayed() {
		t.Fatalf("cached mode played %d games, exact mode %d; caching should reduce work",
			cached.GamesPlayed(), exact.GamesPlayed())
	}
}

func TestSampleContents(t *testing.T) {
	cfg := baseConfig()
	cfg.NumSSets = 8
	cfg.InitialStrategies = []strategy.Strategy{
		strategy.WSLS(1), strategy.WSLS(1), strategy.WSLS(1), strategy.WSLS(1),
		strategy.WSLS(1), strategy.WSLS(1), strategy.AllD(1), strategy.TFT(1),
	}
	m := mustModel(t, cfg)
	s := m.Sample()
	if s.Distinct != 3 {
		t.Fatalf("distinct = %d, want 3", s.Distinct)
	}
	if s.TopStrategy != strategy.WSLS(1).String() || s.TopFraction != 0.75 {
		t.Fatalf("top strategy %q fraction %v", s.TopStrategy, s.TopFraction)
	}
	if s.WSLSFraction != 0.75 || s.AllDFraction != 0.125 || s.TFTFraction != 0.125 {
		t.Fatalf("fractions wrong: %+v", s)
	}
	// WSLS defects in 2/4 states, AllD in 4/4, TFT in 2/4:
	// (6*2 + 4 + 2) / (8*4) = 18/32.
	if s.MeanDefectingStates != 18.0/32.0 {
		t.Fatalf("MeanDefectingStates = %v, want %v", s.MeanDefectingStates, 18.0/32.0)
	}
}

func TestRunSampling(t *testing.T) {
	cfg := baseConfig()
	cfg.SampleEvery = 10
	cfg.MutationRate = 0.1
	m := mustModel(t, cfg)
	res, err := m.Run(context.Background(), 55)
	if err != nil {
		t.Fatal(err)
	}
	// Samples at generations 10..50 plus the final sample at 55.
	if len(res.Samples) != 6 {
		t.Fatalf("got %d samples, want 6", len(res.Samples))
	}
	if res.Samples[len(res.Samples)-1].Generation != 55 {
		t.Fatal("final sample not taken at the last generation")
	}
	if res.Generations != 55 {
		t.Fatalf("result generations = %d", res.Generations)
	}
}

func TestRunNegativeGenerations(t *testing.T) {
	m := mustModel(t, baseConfig())
	if _, err := m.Run(context.Background(), -1); err == nil {
		t.Fatal("Run accepted a negative generation count")
	}
}

func TestRunHonoursContextCancellation(t *testing.T) {
	cfg := baseConfig()
	cfg.NumSSets = 64
	cfg.FitnessMode = FitnessExactAllPairs
	m := mustModel(t, cfg)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := m.Run(ctx, 1000); err == nil {
		t.Fatal("Run ignored a cancelled context")
	}
}

func TestNoisyRunIsDeterministic(t *testing.T) {
	run := func() []strategy.Strategy {
		cfg := baseConfig()
		cfg.Noise = 0.05
		cfg.MutationRate = 0.2
		cfg.Seed = 11
		m := mustModel(t, cfg)
		if _, err := m.Run(context.Background(), 80); err != nil {
			t.Fatal(err)
		}
		return m.Strategies()
	}
	a, b := run(), run()
	for i := range a {
		if !a[i].Equal(b[i]) {
			t.Fatalf("noisy runs diverge at SSet %d", i)
		}
	}
}

func TestLearningOnlyCopiesExistingStrategies(t *testing.T) {
	// With mutation disabled, every strategy in the final table must have
	// been present initially (learning only copies, never invents).
	cfg := baseConfig()
	cfg.NumSSets = 10
	cfg.MutationRate = -1
	m := mustModel(t, cfg)
	initial := map[string]bool{}
	for _, s := range m.Strategies() {
		initial[s.String()] = true
	}
	if _, err := m.Run(context.Background(), 200); err != nil {
		t.Fatal(err)
	}
	for i, s := range m.Strategies() {
		if !initial[s.String()] {
			t.Fatalf("SSet %d holds strategy %q that never existed initially", i, s.String())
		}
	}
}

func BenchmarkStepCachedMemoryOne(b *testing.B) {
	cfg := baseConfig()
	cfg.NumSSets = 64
	cfg.Rounds = 200
	m, err := New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := m.Step(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStepExactMemoryOne(b *testing.B) {
	cfg := baseConfig()
	cfg.NumSSets = 64
	cfg.Rounds = 200
	cfg.FitnessMode = FitnessExactAllPairs
	m, err := New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := m.Step(); err != nil {
			b.Fatal(err)
		}
	}
}
