package population

import (
	"context"
	"testing"

	"evogame/internal/fitness"
	"evogame/internal/strategy"
)

// runWithEvalMode runs the base scenario under one evaluation mode and
// returns the model for inspection.
func runWithEvalMode(t *testing.T, mutate func(*Config), mode fitness.EvalMode, generations int) (*Model, Result) {
	t.Helper()
	cfg := baseConfig()
	cfg.EvalMode = mode
	if mutate != nil {
		mutate(&cfg)
	}
	m := mustModel(t, cfg)
	res, err := m.Run(context.Background(), generations)
	if err != nil {
		t.Fatal(err)
	}
	return m, res
}

func assertSameDynamics(t *testing.T, mode fitness.EvalMode, want, got Result) {
	t.Helper()
	if want.NatureStats != got.NatureStats {
		t.Fatalf("%v: nature stats differ: %+v vs %+v", mode, got.NatureStats, want.NatureStats)
	}
	for i := range want.FinalStrategies {
		if !want.FinalStrategies[i].Equal(got.FinalStrategies[i]) {
			t.Fatalf("%v: final table differs at SSet %d", mode, i)
		}
	}
	if len(want.Samples) != len(got.Samples) {
		t.Fatalf("%v: sample counts differ", mode)
	}
	for i := range want.Samples {
		if want.Samples[i] != got.Samples[i] {
			t.Fatalf("%v: sample %d differs: %+v vs %+v", mode, i, got.Samples[i], want.Samples[i])
		}
	}
}

func TestEvalModesIdenticalDynamics(t *testing.T) {
	mutate := func(c *Config) {
		c.NumSSets = 14
		c.MutationRate = 0.3
		c.SampleEvery = 20
		c.Seed = 19
	}
	_, want := runWithEvalMode(t, mutate, fitness.EvalFull, 150)
	for _, mode := range []fitness.EvalMode{fitness.EvalCached, fitness.EvalIncremental} {
		_, got := runWithEvalMode(t, mutate, mode, 150)
		assertSameDynamics(t, mode, want, got)
	}
}

func TestEvalModesIdenticalAgainstExactAllPairs(t *testing.T) {
	// The cached modes must also agree with the explicit all-pairs replay,
	// not just with the default per-event evaluation.
	mutate := func(c *Config) {
		c.NumSSets = 10
		c.MutationRate = 0.25
		c.Seed = 31
		c.FitnessMode = FitnessExactAllPairs
	}
	_, want := runWithEvalMode(t, mutate, fitness.EvalFull, 100)
	for _, mode := range []fitness.EvalMode{fitness.EvalCached, fitness.EvalIncremental} {
		_, got := runWithEvalMode(t, mutate, mode, 100)
		assertSameDynamics(t, mode, want, got)
	}
}

func TestEvalModesNoiseBypassIdentical(t *testing.T) {
	// With noise the pair cache is invalid; the cached modes must fall back
	// to the full path so that even the games-played count matches.
	mutate := func(c *Config) {
		c.Noise = 0.05
		c.MutationRate = 0.2
		c.Seed = 23
	}
	full, want := runWithEvalMode(t, mutate, fitness.EvalFull, 80)
	for _, mode := range []fitness.EvalMode{fitness.EvalCached, fitness.EvalIncremental} {
		m, got := runWithEvalMode(t, mutate, mode, 80)
		assertSameDynamics(t, mode, want, got)
		if m.GamesPlayed() != full.GamesPlayed() {
			t.Fatalf("%v: bypass played %d games, full played %d", mode, m.GamesPlayed(), full.GamesPlayed())
		}
	}
}

func TestEvalModesMixedStrategyBypassIdentical(t *testing.T) {
	gtft, err := strategy.MixedFromProbs(1, []float64{1, 0.3, 1, 0.3})
	if err != nil {
		t.Fatal(err)
	}
	mutate := func(c *Config) {
		c.NumSSets = 6
		c.MutationRate = 0.2
		c.Seed = 29
		c.InitialStrategies = []strategy.Strategy{
			gtft, strategy.TFT(1), strategy.WSLS(1),
			strategy.AllD(1), strategy.AllC(1), strategy.GRIM(1),
		}
	}
	full, want := runWithEvalMode(t, mutate, fitness.EvalFull, 60)
	for _, mode := range []fitness.EvalMode{fitness.EvalCached, fitness.EvalIncremental} {
		m, got := runWithEvalMode(t, mutate, mode, 60)
		assertSameDynamics(t, mode, want, got)
		if m.GamesPlayed() != full.GamesPlayed() {
			t.Fatalf("%v: bypass played %d games, full played %d", mode, m.GamesPlayed(), full.GamesPlayed())
		}
	}
}

func TestEvalModesReduceGamesPlayed(t *testing.T) {
	mutate := func(c *Config) {
		c.NumSSets = 48
		c.MutationRate = 0.1
		c.Seed = 41
	}
	full, _ := runWithEvalMode(t, mutate, fitness.EvalFull, 120)
	cached, _ := runWithEvalMode(t, mutate, fitness.EvalCached, 120)
	incr, _ := runWithEvalMode(t, mutate, fitness.EvalIncremental, 120)
	if full.GamesPlayed() == 0 || cached.GamesPlayed() == 0 || incr.GamesPlayed() == 0 {
		t.Fatal("expected games in every mode")
	}
	if cached.GamesPlayed() >= full.GamesPlayed() {
		t.Fatalf("cached mode played %d games, full mode %d", cached.GamesPlayed(), full.GamesPlayed())
	}
	if incr.GamesPlayed() > cached.GamesPlayed() {
		t.Fatalf("incremental mode played %d games, cached mode %d", incr.GamesPlayed(), cached.GamesPlayed())
	}
}

func TestEvalModeInvalidRejected(t *testing.T) {
	cfg := baseConfig()
	cfg.EvalMode = fitness.EvalMode(9)
	if _, err := New(cfg); err == nil {
		t.Fatal("accepted an invalid eval mode")
	}
}
