package population

// Engine-level tests of the checkpoint/resume state: Snapshot/Restore must
// round-trip a mid-run model bit-identically — including populations with
// mixed (probabilistic) strategies, which the old CLI snapshot path lost by
// re-parsing rendered move-table strings — and Run's periodic cadence must
// leave a resumable file behind.

import (
	"context"
	"os"
	"path/filepath"
	"testing"

	"evogame/internal/checkpoint"
	"evogame/internal/strategy"
)

// mixedResumeConfig is a noisy run whose table starts with a mixed (GTFT)
// strategy, forcing the full evaluation path and keeping the game stream
// busy: the hardest case for a bit-identical resume.
func mixedResumeConfig(t *testing.T) Config {
	t.Helper()
	gtft, err := strategy.GTFT(1, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	initial := make([]strategy.Strategy, 8)
	initial[0] = gtft
	for i := 1; i < len(initial); i++ {
		initial[i] = strategy.WSLS(1)
	}
	return Config{
		NumSSets: 8, AgentsPerSSet: 2, MemorySteps: 1, Rounds: 10,
		Noise: 0.05, PCRate: 1, MutationRate: 0.3, Beta: 1, Seed: 99,
		InitialStrategies: initial,
	}
}

func stepN(t *testing.T, m *Model, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		if err := m.Step(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestSnapshotRestoreMidRunMixed drives a noisy mixed-strategy model to
// generation 15, checkpoints it through a real file, and verifies that the
// restored model's next 15 generations match the uninterrupted model's —
// and that the mixed strategy survived the file round trip typed, not as a
// lossy display string.
func TestSnapshotRestoreMidRunMixed(t *testing.T) {
	cfg := mixedResumeConfig(t)
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	stepN(t, m, 15)

	path := filepath.Join(t.TempDir(), "mid.ckpt")
	if err := checkpoint.Save(path, m.Snapshot()); err != nil {
		t.Fatal(err)
	}
	snap, err := checkpoint.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	foundMixed := false
	for _, s := range snap.Strategies {
		if _, ok := s.(*strategy.Mixed); ok {
			foundMixed = true
		}
	}
	if !foundMixed && !snap.Strategies[0].Equal(m.Strategies()[0]) {
		t.Fatal("checkpoint lost the typed strategy table")
	}

	// Reference: the uninterrupted model continues.
	stepN(t, m, 15)

	restoreCfg := mixedResumeConfig(t)
	restoreCfg.InitialStrategies = nil
	restored, err := Restore(restoreCfg, snap)
	if err != nil {
		t.Fatal(err)
	}
	if restored.Generation() != 15 {
		t.Fatalf("restored generation = %d, want 15", restored.Generation())
	}
	stepN(t, restored, 15)

	if restored.Generation() != m.Generation() {
		t.Fatalf("generation diverged: %d vs %d", restored.Generation(), m.Generation())
	}
	want, got := m.Strategies(), restored.Strategies()
	for i := range want {
		if !want[i].Equal(got[i]) {
			t.Fatalf("strategy %d diverged after resume: %v vs %v", i, got[i], want[i])
		}
	}
	if m.NatureStats() != restored.NatureStats() {
		t.Fatalf("event trace diverged: %+v vs %+v", restored.NatureStats(), m.NatureStats())
	}
	if m.GamesPlayed() != restored.GamesPlayed() {
		t.Fatalf("game counter diverged: %d vs %d", restored.GamesPlayed(), m.GamesPlayed())
	}
}

// TestRunFinalCheckpoint verifies the end-of-run write: Run leaves a
// resumable serial-engine snapshot at the configured path, recording the
// engine-reported generation (not a configured count) and both streams.
func TestRunFinalCheckpoint(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.ckpt")
	cfg := Config{
		NumSSets: 6, AgentsPerSSet: 1, MemorySteps: 1, Rounds: 10,
		PCRate: 1, MutationRate: 0.3, Seed: 5,
		CheckpointPath: path, CheckpointEvery: 7,
	}
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(context.Background(), 10); err != nil {
		t.Fatal(err)
	}
	snap, err := checkpoint.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Generation != 10 {
		t.Fatalf("checkpoint records generation %d, want the engine-reported 10", snap.Generation)
	}
	if !snap.Resume || snap.Engine != checkpoint.EngineSerial {
		t.Fatalf("checkpoint not resumable: Resume=%v Engine=%q", snap.Resume, snap.Engine)
	}
	if _, ok := snap.Stream(checkpoint.StreamNature); !ok {
		t.Fatal("checkpoint missing the nature stream")
	}
	if _, ok := snap.Stream(checkpoint.StreamGame); !ok {
		t.Fatal("checkpoint missing the game stream")
	}
}

// TestInterruptedRunResumes is the crash-recovery scenario end to end: a
// long Run with a periodic cadence is cancelled as soon as the first
// checkpoint hits disk — at an arbitrary, scheduling-dependent generation —
// and the run restored from whatever the file holds must finish with a
// state bit-identical to an uninterrupted run's.  The cancellation point is
// deliberately racy; the resume guarantee is exactly that it does not
// matter where the interruption lands.
func TestInterruptedRunResumes(t *testing.T) {
	const total = 4000
	path := filepath.Join(t.TempDir(), "kill.ckpt")
	cfg := Config{
		NumSSets: 8, AgentsPerSSet: 1, MemorySteps: 1, Rounds: 10,
		Noise: 0.05, PCRate: 1, MutationRate: 0.3, Seed: 31,
		CheckpointPath: path, CheckpointEvery: 5,
	}
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			if _, err := os.Stat(path); err == nil {
				cancel()
				return
			}
			select {
			case <-ctx.Done():
				return
			default:
			}
		}
	}()
	_, runErr := m.Run(ctx, total)
	cancel()
	<-done
	if runErr == nil {
		t.Log("run completed before the kill landed; resume degenerates to a no-op continuation")
	} else if runErr != context.Canceled {
		t.Fatal(runErr)
	}

	snap, err := checkpoint.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Generation == 0 || snap.Generation%cfg.CheckpointEvery != 0 && snap.Generation != total {
		t.Fatalf("checkpoint at generation %d does not match the cadence", snap.Generation)
	}

	refCfg := cfg
	refCfg.CheckpointPath, refCfg.CheckpointEvery = "", 0
	ref, err := New(refCfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ref.Run(context.Background(), total); err != nil {
		t.Fatal(err)
	}

	restored, err := Restore(refCfg, snap)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := restored.Run(context.Background(), total-snap.Generation); err != nil {
		t.Fatal(err)
	}
	want, got := ref.Strategies(), restored.Strategies()
	for i := range want {
		if !want[i].Equal(got[i]) {
			t.Fatalf("strategy %d diverged after the kill/resume (checkpoint was at generation %d)", i, snap.Generation)
		}
	}
	if ref.NatureStats() != restored.NatureStats() {
		t.Fatalf("event trace diverged after the kill/resume: %+v vs %+v", restored.NatureStats(), ref.NatureStats())
	}
}

// TestCheckpointConfigValidation covers the new Config invariants.
func TestCheckpointConfigValidation(t *testing.T) {
	base := Config{NumSSets: 4, AgentsPerSSet: 1, MemorySteps: 1, Rounds: 10}
	bad := base
	bad.CheckpointEvery = -1
	if _, err := New(bad); err == nil {
		t.Error("accepted a negative CheckpointEvery")
	}
	bad = base
	bad.CheckpointEvery = 5
	if _, err := New(bad); err == nil {
		t.Error("accepted CheckpointEvery without CheckpointPath")
	}
}
