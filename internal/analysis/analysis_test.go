package analysis

import (
	"math"
	"testing"
	"testing/quick"

	"evogame/internal/game"
	"evogame/internal/rng"
	"evogame/internal/strategy"
)

func TestExpectedPayoffsValidation(t *testing.T) {
	wsls := strategy.WSLS(1)
	if _, _, err := ExpectedPayoffs(nil, wsls, game.Standard(), 10, 0); err == nil {
		t.Fatal("accepted nil strategy")
	}
	if _, _, err := ExpectedPayoffs(wsls, strategy.WSLS(2), game.Standard(), 10, 0); err == nil {
		t.Fatal("accepted mismatched memory")
	}
	if _, _, err := ExpectedPayoffs(wsls, wsls, game.Standard(), 0, 0); err == nil {
		t.Fatal("accepted zero rounds")
	}
	if _, _, err := ExpectedPayoffs(wsls, wsls, game.Standard(), 10, -0.1); err == nil {
		t.Fatal("accepted negative noise")
	}
	if _, _, err := ExpectedPayoffs(wsls, wsls, game.Matrix{}, 10, 0); err == nil {
		t.Fatal("accepted an invalid payoff matrix")
	}
}

func TestExpectedPayoffsNoiselessMatchesSimulation(t *testing.T) {
	// Without noise the expected payoff must equal the deterministic game
	// exactly, for every pair of classic strategies and several memory
	// depths.
	for mem := 1; mem <= 3; mem++ {
		eng, err := game.NewEngine(game.EngineConfig{Rounds: 100, MemorySteps: mem})
		if err != nil {
			t.Fatal(err)
		}
		pool := []*strategy.Pure{
			strategy.AllC(mem), strategy.AllD(mem), strategy.TFT(mem),
			strategy.WSLS(mem), strategy.GRIM(mem), strategy.Alternator(mem),
		}
		for _, a := range pool {
			for _, b := range pool {
				exactA, exactB, err := ExpectedPayoffs(a, b, game.Standard(), 100, 0)
				if err != nil {
					t.Fatal(err)
				}
				res, err := eng.Play(a, b, nil)
				if err != nil {
					t.Fatal(err)
				}
				if !Equalish(exactA, res.FitnessA, 1e-9) || !Equalish(exactB, res.FitnessB, 1e-9) {
					t.Fatalf("memory-%d %s vs %s: exact (%v,%v) != simulated (%v,%v)",
						mem, a, b, exactA, exactB, res.FitnessA, res.FitnessB)
				}
			}
		}
	}
}

func TestExpectedPayoffsNoisyMatchesSimulationMean(t *testing.T) {
	// With noise the exact expectation must match the empirical mean of many
	// simulated games within a few standard errors.
	cases := []struct{ a, b *strategy.Pure }{
		{strategy.WSLS(1), strategy.WSLS(1)},
		{strategy.TFT(1), strategy.AllD(1)},
		{strategy.GRIM(1), strategy.WSLS(1)},
	}
	const rounds = 100
	const noise = 0.05
	const trials = 3000
	eng, err := game.NewEngine(game.EngineConfig{Rounds: rounds, MemorySteps: 1, Noise: noise})
	if err != nil {
		t.Fatal(err)
	}
	src := rng.New(7)
	for _, tc := range cases {
		exactA, _, err := ExpectedPayoffs(tc.a, tc.b, game.Standard(), rounds, noise)
		if err != nil {
			t.Fatal(err)
		}
		sum, sumSq := 0.0, 0.0
		for i := 0; i < trials; i++ {
			res, err := eng.Play(tc.a, tc.b, src)
			if err != nil {
				t.Fatal(err)
			}
			sum += res.FitnessA
			sumSq += res.FitnessA * res.FitnessA
		}
		mean := sum / trials
		variance := sumSq/trials - mean*mean
		stderr := math.Sqrt(variance / trials)
		if math.Abs(mean-exactA) > 5*stderr+1e-6 {
			t.Fatalf("%s vs %s: exact %v, simulated mean %v (stderr %v)", tc.a, tc.b, exactA, mean, stderr)
		}
	}
}

func TestExpectedPayoffsKnownValues(t *testing.T) {
	// AllD vs AllC: T per round for the defector, S for the cooperator.
	a, b := strategy.AllD(1), strategy.AllC(1)
	pa, pb, err := ExpectedPayoffs(a, b, game.Standard(), 200, 0)
	if err != nil {
		t.Fatal(err)
	}
	if pa != 800 || pb != 0 {
		t.Fatalf("AllD vs AllC = (%v,%v), want (800,0)", pa, pb)
	}
	// WSLS vs WSLS with full noise 0.5 behaves like random play: mean payoff
	// (3+0+4+1)/4 = 2 per round for both.
	pa, pb, err = ExpectedPayoffs(strategy.WSLS(1), strategy.WSLS(1), game.Standard(), 200, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(pa-400) > 1e-6 || math.Abs(pb-400) > 1e-6 {
		t.Fatalf("fully random WSLS game = (%v,%v), want (400,400)", pa, pb)
	}
}

func TestExpectedPayoffsSymmetry(t *testing.T) {
	// Swapping the players must swap the payoffs.
	a, b := strategy.TFT(2), strategy.GRIM(2)
	pa, pb, err := ExpectedPayoffs(a, b, game.Standard(), 64, 0.03)
	if err != nil {
		t.Fatal(err)
	}
	qb, qa, err := ExpectedPayoffs(b, a, game.Standard(), 64, 0.03)
	if err != nil {
		t.Fatal(err)
	}
	if !Equalish(pa, qa, 1e-9) || !Equalish(pb, qb, 1e-9) {
		t.Fatalf("payoffs not symmetric: (%v,%v) vs (%v,%v)", pa, pb, qa, qb)
	}
}

func TestGrimCollapsesUnderNoiseWSLSDoesNot(t *testing.T) {
	// The quantitative heart of the WSLS story: under execution errors,
	// mutual WSLS play retains most of the cooperative payoff while mutual
	// GRIM play collapses toward mutual defection.
	const rounds = 200
	const noise = 0.05
	wsls, _, err := ExpectedPayoffs(strategy.WSLS(1), strategy.WSLS(1), game.Standard(), rounds, noise)
	if err != nil {
		t.Fatal(err)
	}
	grim, _, err := ExpectedPayoffs(strategy.GRIM(1), strategy.GRIM(1), game.Standard(), rounds, noise)
	if err != nil {
		t.Fatal(err)
	}
	if wsls <= grim {
		t.Fatalf("WSLS self-play (%v) should out-earn GRIM self-play (%v) under noise", wsls, grim)
	}
	if wsls < 0.8*3*rounds {
		t.Fatalf("noisy WSLS self-play (%v) lost too much of the cooperative payoff", wsls)
	}
	// Memory-one GRIM reduces to TFT, whose mutual play under errors falls
	// into alternating retaliation (about 2 points per round instead of 3).
	if grim > 0.75*3*rounds {
		t.Fatalf("noisy GRIM self-play (%v) should collapse well below full cooperation", grim)
	}
}

func TestPayoffMatrix(t *testing.T) {
	pool := []*strategy.Pure{strategy.AllC(1), strategy.AllD(1), strategy.TFT(1)}
	m, err := PayoffMatrix(pool, game.Standard(), 200, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(m) != 3 || len(m[0]) != 3 {
		t.Fatalf("matrix shape %dx%d", len(m), len(m[0]))
	}
	if m[1][0] != 800 || m[0][1] != 0 {
		t.Fatalf("AllD/AllC entries wrong: %v, %v", m[1][0], m[0][1])
	}
	if m[2][2] != 600 {
		t.Fatalf("TFT self-play = %v, want 600", m[2][2])
	}
	if _, err := PayoffMatrix(nil, game.Standard(), 10, 0); err == nil {
		t.Fatal("accepted an empty pool")
	}
}

func TestInvasionAllDIntoCooperators(t *testing.T) {
	// ALLD invades ALLC trivially.
	rep, err := Invasion(strategy.AllC(1), strategy.AllD(1), game.Standard(), 200, 50, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.CanInvade {
		t.Fatalf("ALLD should invade ALLC: %+v", rep)
	}
	// ALLD cannot invade a WSLS population under modest noise: the
	// cooperative cluster out-earns the lone defector.
	rep, err = Invasion(strategy.WSLS(1), strategy.AllD(1), game.Standard(), 200, 50, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if rep.CanInvade {
		t.Fatalf("ALLD should not invade a WSLS population: %+v", rep)
	}
	if _, err := Invasion(strategy.AllC(1), strategy.AllD(1), game.Standard(), 200, 1, 0); err == nil {
		t.Fatal("accepted a population of one")
	}
}

func TestClassify(t *testing.T) {
	cases := []struct {
		name string
		p    *strategy.Pure
		want Traits
	}{
		{"AllC", strategy.AllC(1), Traits{Nice: true, Retaliatory: false, Forgiving: true, DefectionRate: 0}},
		{"AllD", strategy.AllD(1), Traits{Nice: false, Retaliatory: true, Forgiving: false, DefectionRate: 1}},
		{"TFT", strategy.TFT(1), Traits{Nice: true, Retaliatory: true, Forgiving: false, DefectionRate: 0.5}},
		// WSLS is structurally "not nice" under the state-based definition:
		// in state DC (its own unilateral defection against a cooperator) it
		// repeats the defection, even though it never defects first when
		// play starts from mutual cooperation.
		{"WSLS", strategy.WSLS(1), Traits{Nice: false, Retaliatory: true, Forgiving: true, DefectionRate: 0.5}},
		{"GRIM", strategy.GRIM(1), Traits{Nice: true, Retaliatory: true, Forgiving: false, DefectionRate: 0.5}},
	}
	for _, tc := range cases {
		got := Classify(tc.p)
		if got != tc.want {
			t.Errorf("%s: Classify = %+v, want %+v", tc.name, got, tc.want)
		}
	}
	// TF2T forgives a single defection: nice, retaliatory (after two
	// defections) and forgiving.
	tf2t, err := strategy.TF2T(2)
	if err != nil {
		t.Fatal(err)
	}
	got := Classify(tf2t)
	if !got.Nice || !got.Forgiving || !got.Retaliatory {
		t.Fatalf("TF2T traits = %+v", got)
	}
}

func TestCooperationIndex(t *testing.T) {
	// Two ALLC players always cooperate.
	idx, err := CooperationIndex(strategy.AllC(1), strategy.AllC(1), 100, 0)
	if err != nil {
		t.Fatal(err)
	}
	if idx != 1 {
		t.Fatalf("AllC cooperation index = %v", idx)
	}
	// ALLD never cooperates.
	idx, err = CooperationIndex(strategy.AllD(1), strategy.AllC(1), 100, 0)
	if err != nil {
		t.Fatal(err)
	}
	if idx != 0 {
		t.Fatalf("AllD cooperation index = %v", idx)
	}
	// Under noise, WSLS pairs stay highly cooperative while GRIM pairs do
	// not.
	wsls, err := CooperationIndex(strategy.WSLS(1), strategy.WSLS(1), 200, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	grim, err := CooperationIndex(strategy.GRIM(1), strategy.GRIM(1), 200, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if wsls <= grim {
		t.Fatalf("WSLS cooperation (%v) should exceed GRIM cooperation (%v) under noise", wsls, grim)
	}
	if _, err := CooperationIndex(nil, strategy.AllC(1), 10, 0); err == nil {
		t.Fatal("accepted nil strategy")
	}
	if _, err := CooperationIndex(strategy.AllC(1), strategy.AllC(2), 10, 0); err == nil {
		t.Fatal("accepted mismatched memory")
	}
	if _, err := CooperationIndex(strategy.AllC(1), strategy.AllC(1), 0, 0); err == nil {
		t.Fatal("accepted zero rounds")
	}
	if _, err := CooperationIndex(strategy.AllC(1), strategy.AllC(1), 10, 2); err == nil {
		t.Fatal("accepted invalid noise")
	}
}

// Property: exact expected payoffs are always within the per-round bounds of
// the payoff matrix, and total probability mass is conserved (payoffs scale
// linearly with rounds for ALLC/ALLD pairs).
func TestQuickExpectedPayoffBounds(t *testing.T) {
	f := func(seedA, seedB uint64, noiseSel uint8, roundSel uint8) bool {
		rounds := int(roundSel%50) + 1
		noise := float64(noiseSel%100) / 100
		a := strategy.RandomPure(1, rng.New(seedA))
		b := strategy.RandomPure(1, rng.New(seedB))
		pa, pb, err := ExpectedPayoffs(a, b, game.Standard(), rounds, noise)
		if err != nil {
			return false
		}
		maxTotal := float64(rounds) * game.Standard().MaxPerRound()
		minTotal := float64(rounds) * game.Standard().MinPerRound()
		return pa >= minTotal-1e-9 && pa <= maxTotal+1e-9 && pb >= minTotal-1e-9 && pb <= maxTotal+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: noiseless exact payoffs equal the simulated deterministic game
// for random memory-one and memory-two strategies.
func TestQuickExactMatchesDeterministicSimulation(t *testing.T) {
	engines := map[int]*game.Engine{}
	for mem := 1; mem <= 2; mem++ {
		e, err := game.NewEngine(game.EngineConfig{Rounds: 60, MemorySteps: mem})
		if err != nil {
			t.Fatal(err)
		}
		engines[mem] = e
	}
	f := func(seedA, seedB uint64, memSel uint8) bool {
		mem := int(memSel%2) + 1
		a := strategy.RandomPure(mem, rng.New(seedA))
		b := strategy.RandomPure(mem, rng.New(seedB))
		pa, pb, err := ExpectedPayoffs(a, b, game.Standard(), 60, 0)
		if err != nil {
			return false
		}
		res, err := engines[mem].Play(a, b, nil)
		if err != nil {
			return false
		}
		return Equalish(pa, res.FitnessA, 1e-9) && Equalish(pb, res.FitnessB, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkExpectedPayoffsMemoryOne(b *testing.B) {
	a, c := strategy.WSLS(1), strategy.GRIM(1)
	for i := 0; i < b.N; i++ {
		if _, _, err := ExpectedPayoffs(a, c, game.Standard(), 200, 0.05); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExpectedPayoffsMemoryFour(b *testing.B) {
	a, c := strategy.WSLS(4), strategy.GRIM(4)
	for i := 0; i < b.N; i++ {
		if _, _, err := ExpectedPayoffs(a, c, game.Standard(), 200, 0.05); err != nil {
			b.Fatal(err)
		}
	}
}
