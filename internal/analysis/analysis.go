// Package analysis provides closed-form tools for studying memory-n
// Iterated Prisoner's Dilemma strategies: exact expected payoffs of a
// strategy pair under execution errors (computed by iterating the joint
// Markov chain over game states rather than by sampling), pairwise payoff
// matrices over a strategy set, invasion analysis between a resident and a
// mutant strategy, and structural classification of strategies (nice,
// retaliatory, forgiving).
//
// The exact payoff computation serves two purposes.  Scientifically it is
// the standard analytical companion to the simulations the paper runs (the
// "classical analysis" that becomes impossible only once the memory depth
// and population size grow).  Practically it is a correctness oracle: the
// simulation engine's sampled payoffs must converge to these exact values,
// which the test suite verifies.
package analysis

import (
	"fmt"
	"math"

	"evogame/internal/game"
	"evogame/internal/strategy"
)

// maxExactMemory bounds the memory depth for which the joint-chain
// computation is performed: the chain has 4^n states and the transition
// step touches each one, so memory-four (256 states) is still instant while
// memory-six (4,096 states) remains perfectly tractable but is rarely
// needed analytically.
const maxExactMemory = 6

// ExpectedPayoffs returns the exact expected total payoffs of strategies a
// and b over the given number of rounds, when every move is flipped
// independently with probability noise (the execution errors of the paper's
// Section III-F).  Both strategies must be pure and share the same memory
// depth.
//
// The computation iterates the probability distribution over the joint game
// state (the last n rounds as seen by player a); each round the intended
// moves are determined by the strategies and the four flip outcomes branch
// the distribution.  Cost is O(rounds * 4^n).
func ExpectedPayoffs(a, b *strategy.Pure, payoff game.Matrix, rounds int, noise float64) (float64, float64, error) {
	if a == nil || b == nil {
		return 0, 0, fmt.Errorf("analysis: nil strategy")
	}
	if a.MemorySteps() != b.MemorySteps() {
		return 0, 0, fmt.Errorf("analysis: memory mismatch %d vs %d", a.MemorySteps(), b.MemorySteps())
	}
	mem := a.MemorySteps()
	if mem > maxExactMemory {
		return 0, 0, fmt.Errorf("analysis: memory-%d exceeds the exact-computation limit %d", mem, maxExactMemory)
	}
	if rounds <= 0 {
		return 0, 0, fmt.Errorf("analysis: rounds must be positive, got %d", rounds)
	}
	if noise < 0 || noise > 1 {
		return 0, 0, fmt.Errorf("analysis: noise %v outside [0,1]", noise)
	}
	if err := payoff.Validate(); err != nil {
		return 0, 0, err
	}

	n := game.NumStates(mem)
	mask := n - 1
	dist := make([]float64, n)
	next := make([]float64, n)
	dist[game.InitialState] = 1

	// Pre-compute each state's intended moves for both players.
	intendA := make([]game.Move, n)
	intendB := make([]game.Move, n)
	for s := 0; s < n; s++ {
		intendA[s] = a.Move(s, nil)
		intendB[s] = b.Move(game.OpponentState(s, mem), nil)
	}

	flip := [2]float64{1 - noise, noise}
	var totalA, totalB float64
	for r := 0; r < rounds; r++ {
		for i := range next {
			next[i] = 0
		}
		for s, p := range dist {
			if p == 0 {
				continue
			}
			ia, ib := intendA[s], intendB[s]
			for fa := 0; fa < 2; fa++ {
				for fb := 0; fb < 2; fb++ {
					prob := p * flip[fa] * flip[fb]
					if prob == 0 {
						continue
					}
					moveA := ia
					if fa == 1 {
						moveA = moveA.Flip()
					}
					moveB := ib
					if fb == 1 {
						moveB = moveB.Flip()
					}
					totalA += prob * payoff.Payoff(moveA, moveB)
					totalB += prob * payoff.Payoff(moveB, moveA)
					ns := ((s << 2) | game.RoundCode(moveA, moveB)) & mask
					next[ns] += prob
				}
			}
		}
		dist, next = next, dist
	}
	return totalA, totalB, nil
}

// PayoffMatrix returns the exact expected payoff of every ordered strategy
// pair: entry [i][j] is the total payoff strategy i earns against strategy j
// over the given number of rounds.
func PayoffMatrix(strategies []*strategy.Pure, payoff game.Matrix, rounds int, noise float64) ([][]float64, error) {
	if len(strategies) == 0 {
		return nil, fmt.Errorf("analysis: no strategies")
	}
	out := make([][]float64, len(strategies))
	for i := range out {
		out[i] = make([]float64, len(strategies))
	}
	for i, a := range strategies {
		for j, b := range strategies {
			if j < i {
				continue // fill both directions from one computation
			}
			pa, pb, err := ExpectedPayoffs(a, b, payoff, rounds, noise)
			if err != nil {
				return nil, fmt.Errorf("analysis: pair (%d,%d): %w", i, j, err)
			}
			out[i][j] = pa
			out[j][i] = pb
		}
	}
	return out, nil
}

// InvasionReport describes whether a rare mutant strategy can invade a
// resident population under the framework's fitness definition (every SSet
// plays every other SSet's strategy).
type InvasionReport struct {
	// ResidentFitness is the payoff a resident earns in a population of
	// residents with a single mutant present (per opposing SSet pair, scaled
	// to populationSize-1 opponents).
	ResidentFitness float64
	// MutantFitness is the payoff the single mutant earns against the
	// resident population.
	MutantFitness float64
	// CanInvade reports whether the mutant's fitness strictly exceeds the
	// residents'.
	CanInvade bool
}

// Invasion computes whether a single mutant SSet can invade a population of
// populationSize-1 resident SSets, using exact expected payoffs.
func Invasion(resident, mutant *strategy.Pure, payoff game.Matrix, rounds, populationSize int, noise float64) (InvasionReport, error) {
	if populationSize < 2 {
		return InvasionReport{}, fmt.Errorf("analysis: population must have at least 2 SSets, got %d", populationSize)
	}
	rr, _, err := ExpectedPayoffs(resident, resident, payoff, rounds, noise)
	if err != nil {
		return InvasionReport{}, err
	}
	rm, mr, err := ExpectedPayoffs(resident, mutant, payoff, rounds, noise)
	if err != nil {
		return InvasionReport{}, err
	}
	residents := float64(populationSize - 1)
	// A resident plays (residents-1) other residents and the single mutant;
	// the mutant plays all residents.
	resFit := (residents-1)*rr + rm
	mutFit := residents * mr
	return InvasionReport{
		ResidentFitness: resFit,
		MutantFitness:   mutFit,
		CanInvade:       mutFit > resFit,
	}, nil
}

// Traits describes the classic structural properties of a strategy.
type Traits struct {
	// Nice strategies never defect first: they cooperate in every state
	// whose history contains no opponent defection.
	Nice bool
	// Retaliatory strategies defect with positive probability immediately
	// after the opponent defects (here: defect in at least one state whose
	// most recent opponent move is a defection).
	Retaliatory bool
	// Forgiving strategies return to cooperation in at least one state whose
	// history contains an opponent defection.
	Forgiving bool
	// DefectionRate is the fraction of states in which the strategy defects.
	DefectionRate float64
}

// Classify computes the structural traits of a pure strategy.
func Classify(p *strategy.Pure) Traits {
	mem := p.MemorySteps()
	n := p.NumStates()
	var t Traits
	t.Nice = true
	defections := 0
	for s := 0; s < n; s++ {
		move := p.Move(s, nil)
		if move == game.Defect {
			defections++
		}
		oppDefected := false
		for r := 0; r < mem; r++ {
			if (s>>(2*uint(r)))&1 == 1 {
				oppDefected = true
				break
			}
		}
		if !oppDefected && move == game.Defect {
			t.Nice = false
		}
		if (s&1) == 1 && move == game.Defect {
			t.Retaliatory = true
		}
		if oppDefected && move == game.Cooperate {
			t.Forgiving = true
		}
	}
	t.DefectionRate = float64(defections) / float64(n)
	return t
}

// CooperationIndex returns the long-run probability that strategy a
// cooperates when playing strategy b under the given noise, estimated from
// the exact joint-chain distribution after `rounds` rounds (the average
// cooperation frequency over the whole game).
func CooperationIndex(a, b *strategy.Pure, rounds int, noise float64) (float64, error) {
	if a == nil || b == nil {
		return 0, fmt.Errorf("analysis: nil strategy")
	}
	if a.MemorySteps() != b.MemorySteps() {
		return 0, fmt.Errorf("analysis: memory mismatch")
	}
	if rounds <= 0 {
		return 0, fmt.Errorf("analysis: rounds must be positive")
	}
	if noise < 0 || noise > 1 {
		return 0, fmt.Errorf("analysis: noise outside [0,1]")
	}
	mem := a.MemorySteps()
	n := game.NumStates(mem)
	mask := n - 1
	dist := make([]float64, n)
	next := make([]float64, n)
	dist[game.InitialState] = 1
	flip := [2]float64{1 - noise, noise}
	cooperation := 0.0
	for r := 0; r < rounds; r++ {
		for i := range next {
			next[i] = 0
		}
		for s, p := range dist {
			if p == 0 {
				continue
			}
			ia := a.Move(s, nil)
			ib := b.Move(game.OpponentState(s, mem), nil)
			for fa := 0; fa < 2; fa++ {
				for fb := 0; fb < 2; fb++ {
					prob := p * flip[fa] * flip[fb]
					if prob == 0 {
						continue
					}
					moveA := ia
					if fa == 1 {
						moveA = moveA.Flip()
					}
					moveB := ib
					if fb == 1 {
						moveB = moveB.Flip()
					}
					if moveA == game.Cooperate {
						cooperation += prob
					}
					ns := ((s << 2) | game.RoundCode(moveA, moveB)) & mask
					next[ns] += prob
				}
			}
		}
		dist, next = next, dist
	}
	return cooperation / float64(rounds), nil
}

// Equalish reports whether two floats are within tol of each other; exported
// for reuse by tests that compare simulated and exact payoffs.
func Equalish(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}
