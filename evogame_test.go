package evogame

import (
	"context"
	"testing"
)

func TestSimulateBasic(t *testing.T) {
	res, err := Simulate(context.Background(), SimulationConfig{
		NumSSets:      16,
		AgentsPerSSet: 2,
		MemorySteps:   1,
		Rounds:        50,
		PCRate:        1,
		MutationRate:  0.2,
		Beta:          1,
		Generations:   100,
		Seed:          7,
		SampleEvery:   25,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Generations != 100 {
		t.Fatalf("generations = %d", res.Generations)
	}
	if len(res.FinalStrategies) != 16 {
		t.Fatalf("final table has %d strategies", len(res.FinalStrategies))
	}
	for i, s := range res.FinalStrategies {
		if len(s) != 4 {
			t.Fatalf("strategy %d has %d states, want 4 for memory-one", i, len(s))
		}
	}
	if len(res.Samples) == 0 {
		t.Fatal("no samples recorded")
	}
	if res.PCEvents == 0 {
		t.Fatal("no PC events with rate 1")
	}
	if res.GamesPlayed == 0 {
		t.Fatal("no games played")
	}
}

func TestSimulateRejectsBadConfig(t *testing.T) {
	if _, err := Simulate(context.Background(), SimulationConfig{NumSSets: 1, AgentsPerSSet: 1, MemorySteps: 1, Generations: 1}); err == nil {
		t.Fatal("accepted a single SSet")
	}
	if _, err := Simulate(context.Background(), SimulationConfig{
		NumSSets: 4, AgentsPerSSet: 1, MemorySteps: 1, Generations: 1,
		InitialStrategies: []string{"0101"},
	}); err == nil {
		t.Fatal("accepted a short initial strategy list")
	}
	if _, err := Simulate(context.Background(), SimulationConfig{
		NumSSets: 2, AgentsPerSSet: 1, MemorySteps: 1, Generations: 1,
		InitialStrategies: []string{"01x1", "0000"},
	}); err == nil {
		t.Fatal("accepted an invalid strategy string")
	}
}

func TestSimulateInitialStrategiesAndWSLSFraction(t *testing.T) {
	wsls, err := NamedStrategy("wsls", 1)
	if err != nil {
		t.Fatal(err)
	}
	alld, err := NamedStrategy("alld", 1)
	if err != nil {
		t.Fatal(err)
	}
	initial := make([]string, 8)
	for i := range initial {
		if i < 6 {
			initial[i] = wsls
		} else {
			initial[i] = alld
		}
	}
	res, err := Simulate(context.Background(), SimulationConfig{
		NumSSets:          8,
		AgentsPerSSet:     1,
		MemorySteps:       1,
		Rounds:            50,
		PCRate:            -1,
		MutationRate:      -1,
		Generations:       10,
		InitialStrategies: initial,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.WSLSFraction() != 0.75 {
		t.Fatalf("WSLS fraction = %v, want 0.75", res.WSLSFraction())
	}
	if res.Samples[len(res.Samples)-1].AllDFraction != 0.25 {
		t.Fatal("AllD fraction wrong")
	}
}

func TestSimulateParallelMatchesSerial(t *testing.T) {
	common := SimulationConfig{
		NumSSets:      10,
		AgentsPerSSet: 2,
		MemorySteps:   1,
		Rounds:        50,
		PCRate:        1,
		MutationRate:  0.3,
		Beta:          1,
		Generations:   50,
		Seed:          11,
	}
	serial, err := Simulate(context.Background(), common)
	if err != nil {
		t.Fatal(err)
	}
	par, err := SimulateParallel(ParallelConfig{
		Ranks:             4,
		NumSSets:          common.NumSSets,
		AgentsPerSSet:     common.AgentsPerSSet,
		MemorySteps:       common.MemorySteps,
		Rounds:            common.Rounds,
		PCRate:            common.PCRate,
		MutationRate:      common.MutationRate,
		Beta:              common.Beta,
		Generations:       common.Generations,
		Seed:              common.Seed,
		OptimizationLevel: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(par.FinalStrategies) != len(serial.FinalStrategies) {
		t.Fatal("table sizes differ")
	}
	for i := range par.FinalStrategies {
		if par.FinalStrategies[i] != serial.FinalStrategies[i] {
			t.Fatalf("parallel and serial diverge at SSet %d", i)
		}
	}
	if par.PCEvents != serial.PCEvents || par.Mutations != serial.Mutations || par.Adoptions != serial.Adoptions {
		t.Fatal("event counts differ between engines")
	}
	if par.TotalGames == 0 || par.WallClockSeconds <= 0 {
		t.Fatal("parallel run did not report work")
	}
	if len(par.Ranks) != 4 {
		t.Fatalf("rank summaries = %d", len(par.Ranks))
	}
}

func TestSimulateParallelValidation(t *testing.T) {
	if _, err := SimulateParallel(ParallelConfig{Ranks: 1, NumSSets: 4, AgentsPerSSet: 1, MemorySteps: 1, Generations: 1}); err == nil {
		t.Fatal("accepted one rank")
	}
	if _, err := SimulateParallel(ParallelConfig{
		Ranks: 3, NumSSets: 4, AgentsPerSSet: 1, MemorySteps: 1, Generations: 1, OptimizationLevel: 7,
	}); err == nil {
		t.Fatal("accepted an invalid optimization level")
	}
	if _, err := SimulateParallel(ParallelConfig{
		Ranks: 3, NumSSets: 4, AgentsPerSSet: 1, MemorySteps: 1, Generations: 1,
		InitialStrategies: []string{"0101"},
	}); err == nil {
		t.Fatal("accepted a short initial strategy list")
	}
}

func TestNamedStrategy(t *testing.T) {
	wsls, err := NamedStrategy("wsls", 1)
	if err != nil {
		t.Fatal(err)
	}
	if wsls != "0110" {
		t.Fatalf("WSLS = %q", wsls)
	}
	tft, err := NamedStrategy("tft", 1)
	if err != nil {
		t.Fatal(err)
	}
	if tft != "0101" {
		t.Fatalf("TFT = %q", tft)
	}
	if _, err := NamedStrategy("unknown", 1); err == nil {
		t.Fatal("accepted an unknown strategy")
	}
	if _, err := NamedStrategy("gtft", 1); err == nil {
		t.Fatal("GTFT is mixed and cannot be a move table")
	}
}

func TestStrategySpaceSize(t *testing.T) {
	states, log2, err := StrategySpaceSize(6)
	if err != nil {
		t.Fatal(err)
	}
	if states != 4096 || log2 != 4096 {
		t.Fatalf("memory-six space = (%d states, 2^%d strategies)", states, log2)
	}
	if _, _, err := StrategySpaceSize(0); err == nil {
		t.Fatal("accepted memory 0")
	}
	if _, _, err := StrategySpaceSize(7); err == nil {
		t.Fatal("accepted memory 7")
	}
}

func TestStrategyBytes(t *testing.T) {
	n, err := StrategyBytes(6)
	if err != nil {
		t.Fatal(err)
	}
	if n != 512 {
		t.Fatalf("memory-six strategy = %d bytes", n)
	}
	if _, err := StrategyBytes(0); err == nil {
		t.Fatal("accepted memory 0")
	}
}

func TestClusterStrategies(t *testing.T) {
	var strategies []string
	for i := 0; i < 30; i++ {
		strategies = append(strategies, "0110")
	}
	for i := 0; i < 10; i++ {
		strategies = append(strategies, "1111")
	}
	clusters, err := ClusterStrategies(strategies, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(clusters) != 2 {
		t.Fatalf("got %d clusters", len(clusters))
	}
	if clusters[0].Size < clusters[1].Size {
		t.Fatal("clusters not sorted largest first")
	}
	if clusters[0].Representative != "0110" || clusters[0].Fraction != 0.75 {
		t.Fatalf("dominant cluster = %+v", clusters[0])
	}
	if clusters[1].Representative != "1111" {
		t.Fatalf("minor cluster = %+v", clusters[1])
	}
}

func TestClusterStrategiesValidation(t *testing.T) {
	if _, err := ClusterStrategies(nil, 2, 1); err == nil {
		t.Fatal("accepted no strategies")
	}
	if _, err := ClusterStrategies([]string{"0101", "01"}, 1, 1); err == nil {
		t.Fatal("accepted ragged strategies")
	}
	if _, err := ClusterStrategies([]string{"01x1"}, 1, 1); err == nil {
		t.Fatal("accepted invalid characters")
	}
}

func TestPredictStrongScalingFacade(t *testing.T) {
	points, err := PredictStrongScaling(ScalingOptions{}, 32768, 6, []int{1024, 16384, 262144})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 3 {
		t.Fatalf("got %d points", len(points))
	}
	if points[0].EfficiencyPercent != 100 {
		t.Fatal("baseline efficiency must be 100")
	}
	if points[1].EfficiencyPercent < 98 {
		t.Fatalf("16K efficiency = %v", points[1].EfficiencyPercent)
	}
	if points[2].EfficiencyPercent >= points[1].EfficiencyPercent {
		t.Fatal("largest scale should dip below the mid-range efficiency")
	}
}

func TestPredictWeakScalingFacade(t *testing.T) {
	points, err := PredictWeakScaling(ScalingOptions{Machine: MachineBlueGeneQ}, 4096, 4096, 6, []int{1024, 16384})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range points {
		if p.EfficiencyPercent < 99 {
			t.Fatalf("weak scaling efficiency = %v", p.EfficiencyPercent)
		}
	}
}

func TestScalingFacadeErrors(t *testing.T) {
	if _, err := PredictStrongScaling(ScalingOptions{Machine: "cray"}, 100, 1, []int{16}); err == nil {
		t.Fatal("accepted an unknown machine")
	}
	if _, err := PredictWeakScaling(ScalingOptions{}, 0, 10, 1, []int{16}); err == nil {
		t.Fatal("accepted zero SSets per processor")
	}
	if _, err := RatioTable(ScalingOptions{}, []float64{-1}, 10, 1, 16); err == nil {
		t.Fatal("accepted a negative ratio")
	}
	if _, err := MemorySweep(ScalingOptions{}, 0, 1, 16); err == nil {
		t.Fatal("accepted an empty population")
	}
}

func TestRatioTableFacade(t *testing.T) {
	rows, err := RatioTable(ScalingOptions{}, []float64{0.5, 1, 2, 4, 8}, 2048, 6, 2048)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("got %d rows", len(rows))
	}
	if rows[0].EfficiencyPercent >= rows[2].EfficiencyPercent {
		t.Fatal("R=0.5 should be less efficient than R=2")
	}
}

func TestMemorySweepFacade(t *testing.T) {
	points, err := MemorySweep(ScalingOptions{}, 2048, 20, 2048)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 6 {
		t.Fatalf("got %d points", len(points))
	}
	if points[5].ComputeSeconds <= points[0].ComputeSeconds {
		t.Fatal("memory-six should cost more than memory-one")
	}
}

func TestCheckMemoryCapacity(t *testing.T) {
	cap6, err := CheckMemoryCapacity(MachineBlueGeneP, 32768, 1024)
	if err != nil {
		t.Fatal(err)
	}
	if cap6.MaxMemorySteps != 6 || !cap6.FitsAtMemorySix {
		t.Fatalf("BG/P capacity for the paper's strong-scaling population: %+v", cap6)
	}
	if cap6.MaxTotalSSets != 32768 {
		t.Fatalf("max population on 1024 BG/P processors = %d", cap6.MaxTotalSSets)
	}
	if _, err := CheckMemoryCapacity("cray", 100, 10); err == nil {
		t.Fatal("accepted an unknown machine")
	}
	if _, err := CheckMemoryCapacity(MachineBlueGeneP, 0, 10); err == nil {
		t.Fatal("accepted an empty population")
	}
}
