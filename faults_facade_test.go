package evogame

import (
	"context"
	"strings"
	"testing"
)

// TestSimulateFaultPlanRecovery pins the facade wiring of the
// fault-tolerant tier on the serial engine: an injected crash recovers
// under the supervisor and the result is bit-identical to the fault-free
// run, with the recovery visible only in the fault counters.
func TestSimulateFaultPlanRecovery(t *testing.T) {
	base := SimulationConfig{
		NumSSets:      16,
		AgentsPerSSet: 2,
		MemorySteps:   1,
		Rounds:        50,
		PCRate:        1,
		MutationRate:  0.2,
		Beta:          1,
		Generations:   40,
		Seed:          7,
		SampleEvery:   10,
	}
	golden, err := Simulate(context.Background(), base)
	if err != nil {
		t.Fatal(err)
	}
	faulty := base
	faulty.FaultPlan = "crash@15:r0"
	faulty.MaxRestarts = 2
	faulty.SegmentEvery = 8
	res, err := Simulate(context.Background(), faulty)
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.Restarts != 1 {
		t.Fatalf("Metrics.Restarts = %d, want 1", res.Metrics.Restarts)
	}
	if res.Metrics.RecoveryNanos <= 0 {
		t.Fatalf("Metrics.RecoveryNanos = %d after a restart", res.Metrics.RecoveryNanos)
	}
	for i := range golden.FinalStrategies {
		if golden.FinalStrategies[i] != res.FinalStrategies[i] {
			t.Fatalf("strategy %d diverged after recovery", i)
		}
	}
	if golden.PCEvents != res.PCEvents || golden.Adoptions != res.Adoptions || golden.Mutations != res.Mutations {
		t.Fatal("event counts diverged after recovery")
	}
	if len(golden.Samples) != len(res.Samples) {
		t.Fatalf("sample counts diverged: %d vs %d", len(golden.Samples), len(res.Samples))
	}
	for i := range golden.Samples {
		if golden.Samples[i] != res.Samples[i] {
			t.Fatalf("sample %d diverged after recovery", i)
		}
	}
}

// TestSimulateParallelFaultPlanRecovery mirrors the recovery pin on the
// distributed engine, crashing an SSet rank mid-run.
func TestSimulateParallelFaultPlanRecovery(t *testing.T) {
	base := ParallelConfig{
		Ranks:         4,
		NumSSets:      12,
		AgentsPerSSet: 2,
		MemorySteps:   1,
		Rounds:        50,
		PCRate:        1,
		MutationRate:  0.2,
		Beta:          1,
		Generations:   40,
		Seed:          11,
	}
	golden, err := SimulateParallel(base)
	if err != nil {
		t.Fatal(err)
	}
	faulty := base
	faulty.FaultPlan = "crash@17:r2"
	faulty.MaxRestarts = 3
	faulty.SegmentEvery = 8
	res, err := SimulateParallel(faulty)
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.Restarts != 1 {
		t.Fatalf("Metrics.Restarts = %d, want 1", res.Metrics.Restarts)
	}
	for i := range golden.FinalStrategies {
		if golden.FinalStrategies[i] != res.FinalStrategies[i] {
			t.Fatalf("strategy %d diverged after recovery", i)
		}
	}
	if golden.PCEvents != res.PCEvents || golden.Adoptions != res.Adoptions || golden.Mutations != res.Mutations {
		t.Fatal("event counts diverged after recovery")
	}
}

// TestSimulateParallelTransientDropsAreCounted pins the retry path: a
// bounded drop burst below the send-retry budget never surfaces as an
// error, only as counters, and the result is untouched.
func TestSimulateParallelTransientDropsAreCounted(t *testing.T) {
	base := ParallelConfig{
		Ranks:         4,
		NumSSets:      12,
		AgentsPerSSet: 2,
		MemorySteps:   1,
		Rounds:        50,
		PCRate:        1,
		MutationRate:  0.2,
		Beta:          1,
		Generations:   30,
		Seed:          11,
	}
	golden, err := SimulateParallel(base)
	if err != nil {
		t.Fatal(err)
	}
	faulty := base
	faulty.FaultPlan = "drop@10:r1:x3"
	res, err := SimulateParallel(faulty)
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.Restarts != 0 {
		t.Fatalf("Restarts = %d for a retry-recoverable drop", res.Metrics.Restarts)
	}
	if res.Metrics.DroppedMessages != 3 || res.Metrics.RetriedSends != 3 {
		t.Fatalf("counters = %d dropped / %d retried, want 3 / 3",
			res.Metrics.DroppedMessages, res.Metrics.RetriedSends)
	}
	for i := range golden.FinalStrategies {
		if golden.FinalStrategies[i] != res.FinalStrategies[i] {
			t.Fatalf("strategy %d diverged under transient drops", i)
		}
	}
}

// TestFaultPlanValidation covers the facade's fault-spec error paths.
func TestFaultPlanValidation(t *testing.T) {
	base := SimulationConfig{
		NumSSets: 4, AgentsPerSSet: 1, MemorySteps: 1, Generations: 5,
	}
	bad := base
	bad.FaultPlan = "boom@1:r0"
	if _, err := Simulate(context.Background(), bad); err == nil {
		t.Fatal("unknown fault kind accepted")
	}
	// The serial engine is rank 0 of a one-rank world: r1 is out of range.
	bad = base
	bad.FaultPlan = "crash@1:r1"
	if _, err := Simulate(context.Background(), bad); err == nil {
		t.Fatal("out-of-range serial rank accepted")
	}
	pbad := ParallelConfig{
		Ranks: 3, NumSSets: 6, AgentsPerSSet: 1, MemorySteps: 1, Generations: 5,
		FaultPlan: "crash@1:r3",
	}
	if _, err := SimulateParallel(pbad); err == nil {
		t.Fatal("out-of-range parallel rank accepted")
	}
	pbad.FaultPlan = ""
	pbad.CommDeadlineSeconds = -1
	if _, err := SimulateParallel(pbad); err == nil {
		t.Fatal("negative CommDeadlineSeconds accepted")
	}
}

// TestEnsembleFaultPlanDegradation pins the facade's ensemble-level
// degradation: a permanent per-replicate fault surfaces in Errors while
// the survivors complete, and engine-level fault knobs are rejected.
func TestEnsembleFaultPlanDegradation(t *testing.T) {
	sim := SimulationConfig{
		NumSSets:      16,
		AgentsPerSSet: 2,
		MemorySteps:   1,
		Rounds:        20,
		PCRate:        1,
		MutationRate:  0.25,
		Beta:          1,
		Generations:   20,
		Seed:          7,
	}
	// Engine-level knobs are ensemble-level here.
	bad := sim
	bad.FaultPlan = "crash@1:r0"
	if _, err := RunEnsemble(context.Background(), EnsembleConfig{Replicates: 2, Simulation: &bad}); err == nil {
		t.Fatal("engine-level FaultPlan accepted inside an ensemble")
	}
	bad = sim
	bad.MaxRestarts = 1
	if _, err := RunEnsemble(context.Background(), EnsembleConfig{Replicates: 2, Simulation: &bad}); err == nil {
		t.Fatal("engine-level MaxRestarts accepted inside an ensemble")
	}
	// A permanent crash in every replicate with supervision disabled: all
	// replicates fail, the partial result still has one error per slot.
	res, err := RunEnsemble(context.Background(), EnsembleConfig{
		Replicates: 3,
		Simulation: &sim,
		FaultPlan:  "crash@5:r0:x*",
	})
	if err == nil {
		t.Fatal("all-replicates-crashed ensemble returned nil error")
	}
	if !strings.Contains(err.Error(), "replicate 0") {
		t.Fatalf("error %q does not report the lowest-index failure", err)
	}
	if len(res.Errors) != 3 {
		t.Fatalf("Errors has %d slots, want 3", len(res.Errors))
	}
	for k, rerr := range res.Errors {
		if rerr == nil {
			t.Fatalf("Errors[%d] = nil for a crashed replicate", k)
		}
	}
}

// TestEnsembleFaultPlanSupervisedRecovery pins the happy path: with
// supervision enabled, per-replicate one-shot crashes all recover and the
// ensemble matches its fault-free twin bit-identically.
func TestEnsembleFaultPlanSupervisedRecovery(t *testing.T) {
	sim := SimulationConfig{
		NumSSets:      16,
		AgentsPerSSet: 2,
		MemorySteps:   1,
		Rounds:        20,
		PCRate:        1,
		MutationRate:  0.25,
		Beta:          1,
		Generations:   30,
		Seed:          7,
	}
	golden, err := RunEnsemble(context.Background(), EnsembleConfig{Replicates: 3, Simulation: &sim})
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunEnsemble(context.Background(), EnsembleConfig{
		Replicates:   3,
		Simulation:   &sim,
		FaultPlan:    "crash@11:r0",
		MaxRestarts:  2,
		SegmentEvery: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	for k, rerr := range res.Errors {
		if rerr != nil {
			t.Fatalf("replicate %d failed permanently: %v", k, rerr)
		}
	}
	if res.Metrics.Restarts != 3 {
		t.Fatalf("merged Restarts = %d, want 3 (one per replicate)", res.Metrics.Restarts)
	}
	for k := range res.Serial {
		g, r := golden.Serial[k], res.Serial[k]
		for i := range g.FinalStrategies {
			if g.FinalStrategies[i] != r.FinalStrategies[i] {
				t.Fatalf("replicate %d strategy %d diverged after recovery", k, i)
			}
		}
		if g.PCEvents != r.PCEvents || g.Adoptions != r.Adoptions || g.Mutations != r.Mutations {
			t.Fatalf("replicate %d event counts diverged after recovery", k)
		}
	}
}
