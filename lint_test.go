package evogame

// The repository's own static-analysis gate: the full internal/lint suite
// (randsource, maporder, atomicmix, envelopelock, errstyle, plus the
// folded-in godoc and markdown-link disciplines) must come back clean over
// the whole tree, so `go test ./...` enforces every determinism invariant
// the analyzers encode.  cmd/evolint is the same suite as a CLI; CI runs
// both.  See docs/STATIC_ANALYSIS.md for the catalogue.

import (
	"strings"
	"testing"

	"evogame/internal/lint"
)

// loadRepo loads and type-checks the whole module once per test run.
func loadRepo(t *testing.T) *lint.Context {
	t.Helper()
	ctx, err := lint.Load(".", "evogame")
	if err != nil {
		t.Fatal(err)
	}
	return ctx
}

// TestRepositoryLintClean runs every analyzer over the repository and
// fails on any finding.  Violations are either real bugs (fix them) or
// justified exceptions (//lint:allow <analyzer> <reason> — the reason is
// mandatory and itself linted).
func TestRepositoryLintClean(t *testing.T) {
	ctx := loadRepo(t)
	for _, d := range lint.Run(ctx, lint.All()) {
		t.Errorf("%s", d)
	}
}

// TestRepositoryLintCoverage pins the suite to the tree it is supposed to
// guard: a loader regression that silently dropped packages, type
// information or the markdown corpus would otherwise turn every analyzer
// into a vacuous pass.
func TestRepositoryLintCoverage(t *testing.T) {
	ctx := loadRepo(t)
	if n := len(ctx.Packages); n < 25 {
		t.Errorf("loader found only %d packages; the module has far more — loader regression?", n)
	}
	for _, want := range []string{".", "internal/checkpoint", "internal/fitness", "internal/parallel", "cmd/evolint"} {
		if ctx.PackageAt(want) == nil {
			t.Errorf("loader did not load %q", want)
		}
	}
	for _, pkg := range ctx.Packages {
		for _, err := range pkg.TypeErrors {
			t.Errorf("type-checking %s: %v", pkg.ImportPath, err)
		}
	}
	if mds := lint.MarkdownFiles("."); len(mds) < 5 {
		t.Errorf("markdown corpus has shrunk to %d files (%s); the mdlinks analyzer is miswired", len(mds), strings.Join(mds, ", "))
	}
}
