package evogame

// The flat Metrics export (satellite of the batch-kernel PR) must be
// populated by both engines, agree with the result's own event counters,
// and attribute games to the kernel that actually ran them.

import (
	"context"
	"testing"
)

func TestSerialMetricsPopulated(t *testing.T) {
	cfg := SimulationConfig{
		NumSSets: 24, AgentsPerSSet: 2, MemorySteps: 1, Rounds: 40,
		PCRate: 1, MutationRate: 0.25, Beta: 1, Generations: 60, Seed: 11,
		Kernel: "batch",
	}
	res, err := Simulate(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	m := res.Metrics
	if m.Generations != cfg.Generations {
		t.Errorf("Metrics.Generations = %d, want %d", m.Generations, cfg.Generations)
	}
	if m.PCEvents != res.PCEvents || m.Adoptions != res.Adoptions || m.Mutations != res.Mutations {
		t.Errorf("Metrics events %d/%d/%d disagree with result %d/%d/%d",
			m.PCEvents, m.Adoptions, m.Mutations, res.PCEvents, res.Adoptions, res.Mutations)
	}
	if got := m.ScalarGames + m.CycleGames + m.BatchGames; got != res.GamesPlayed {
		t.Errorf("kernel mix sums to %d games, result played %d", got, res.GamesPlayed)
	}
	if m.BatchGames <= 0 || m.BatchCalls <= 0 {
		t.Errorf("forced batch kernel recorded no batch work: %+v", m)
	}
	if occ := m.BatchLaneOccupancy(); occ <= 0 || occ > 1 {
		t.Errorf("BatchLaneOccupancy = %v, want in (0, 1]", occ)
	}
	// The serial engine's per-event cache is a plain map, not the
	// persistent fitness.PairCache, so its cache counters stay zero.
	if m.CachePlays != 0 || m.CacheHits != 0 {
		t.Errorf("serial run unexpectedly recorded PairCache traffic: %+v", m)
	}
}

func TestParallelMetricsPopulated(t *testing.T) {
	cfg := ParallelConfig{
		Ranks: 4, OptimizationLevel: 3, NumSSets: 24, AgentsPerSSet: 2,
		MemorySteps: 1, Rounds: 40, PCRate: 1, MutationRate: 0.25, Beta: 1,
		Generations: 60, Seed: 777, Kernel: "batch",
	}
	res, err := SimulateParallel(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m := res.Metrics
	if m.Generations != cfg.Generations {
		t.Errorf("Metrics.Generations = %d, want %d", m.Generations, cfg.Generations)
	}
	if m.PCEvents != res.PCEvents || m.Adoptions != res.Adoptions || m.Mutations != res.Mutations {
		t.Errorf("Metrics events %d/%d/%d disagree with result %d/%d/%d",
			m.PCEvents, m.Adoptions, m.Mutations, res.PCEvents, res.Adoptions, res.Mutations)
	}
	if m.BatchGames <= 0 || m.BatchCalls <= 0 {
		t.Errorf("forced batch kernel recorded no batch work: %+v", m)
	}
	if occ := m.BatchLaneOccupancy(); occ <= 0 || occ > 1 {
		t.Errorf("BatchLaneOccupancy = %v, want in (0, 1]", occ)
	}
}

// TestMetricsMergeEdgeCases pins Merge's semantics field family by family:
// counters sum, Generations takes the maximum (merging the ranks of one run
// keeps its generation count), and the derived batch-lane occupancy
// re-weights itself from the combined BatchGames/BatchCalls.
func TestMetricsMergeEdgeCases(t *testing.T) {
	full := Metrics{
		Generations: 10,
		CachePlays:  100, CacheHits: 60, CacheMisses: 40, CacheBypassed: 5, CacheEvicted: 2,
		ScalarGames: 7, CycleGames: 11, BatchGames: 128, BatchCalls: 2,
		PCEvents: 9, Adoptions: 4, Mutations: 3,
		Restarts: 1, RetriedSends: 5, DroppedMessages: 5, DelayedMessages: 2, RecoveryNanos: 1e6,
	}
	cases := []struct {
		name string
		into Metrics
		from Metrics
		want Metrics
	}{
		{
			name: "zero value is the identity on the right",
			into: full,
			from: Metrics{},
			want: full,
		},
		{
			name: "zero value is the identity on the left",
			into: Metrics{},
			from: full,
			want: full,
		},
		{
			name: "cache-only counters sum without touching the kernel mix",
			into: Metrics{Generations: 5, CacheHits: 10, CacheMisses: 2},
			from: Metrics{Generations: 5, CachePlays: 8, CacheHits: 1, CacheEvicted: 4},
			want: Metrics{Generations: 5, CachePlays: 8, CacheHits: 11, CacheMisses: 2, CacheEvicted: 4},
		},
		{
			name: "kernel-only counters sum without touching the cache",
			into: Metrics{ScalarGames: 3, BatchGames: 64, BatchCalls: 1},
			from: Metrics{CycleGames: 9, BatchGames: 32, BatchCalls: 1},
			want: Metrics{ScalarGames: 3, CycleGames: 9, BatchGames: 96, BatchCalls: 2},
		},
		{
			name: "generations take the maximum, not the sum",
			into: Metrics{Generations: 60, PCEvents: 1},
			from: Metrics{Generations: 60, Adoptions: 2},
			want: Metrics{Generations: 60, PCEvents: 1, Adoptions: 2},
		},
		{
			name: "shorter run folded into longer keeps the longer horizon",
			into: Metrics{Generations: 100},
			from: Metrics{Generations: 40, Mutations: 7},
			want: Metrics{Generations: 100, Mutations: 7},
		},
		{
			name: "fault counters sum without touching the rest",
			into: Metrics{Restarts: 1, RetriedSends: 3, RecoveryNanos: 2e6},
			from: Metrics{Restarts: 2, DroppedMessages: 4, DelayedMessages: 1, RecoveryNanos: 1e6},
			want: Metrics{Restarts: 3, RetriedSends: 3, DroppedMessages: 4, DelayedMessages: 1, RecoveryNanos: 3e6},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := tc.into
			got.Merge(tc.from)
			if got != tc.want {
				t.Errorf("Merge result:\n got  %+v\n want %+v", got, tc.want)
			}
		})
	}
}

// TestMetricsMergeOccupancyReweighting covers the derived-quantity edge
// cases: merging metrics with zero batch calls must neither panic nor
// disturb the other side's occupancy, and merging two batch runs yields the
// occupancy of the combined counters rather than any average of the two.
func TestMetricsMergeOccupancyReweighting(t *testing.T) {
	if occ := (Metrics{}).BatchLaneOccupancy(); occ != 0 {
		t.Fatalf("zero-value occupancy = %v, want 0 (batch kernel never ran)", occ)
	}

	batch := Metrics{BatchGames: 64, BatchCalls: 1} // one full SWAR call
	noBatch := Metrics{ScalarGames: 500}            // zero calls: occupancy undefined
	merged := batch
	merged.Merge(noBatch)
	if occ := merged.BatchLaneOccupancy(); occ != 1 {
		t.Errorf("occupancy after folding a zero-call run = %v, want 1 (unchanged)", occ)
	}

	half := Metrics{BatchGames: 32, BatchCalls: 1} // one half-full call
	combined := batch
	combined.Merge(half)
	// (64+32)/(2*64) = 0.75: the occupancy of the pooled counters, not the
	// mean of the per-run occupancies weighted equally.
	if occ := combined.BatchLaneOccupancy(); occ != 0.75 {
		t.Errorf("pooled occupancy = %v, want 0.75", occ)
	}
}

// TestMetricsMergeCommutativeAssociative checks the algebraic property the
// ensemble tier relies on: folding per-replicate metrics must not depend on
// replicate completion order.
func TestMetricsMergeCommutativeAssociative(t *testing.T) {
	samples := []Metrics{
		{},
		{Generations: 10, CacheHits: 3, ScalarGames: 5, PCEvents: 1},
		{Generations: 60, CacheMisses: 8, BatchGames: 96, BatchCalls: 2, Adoptions: 4},
		{Generations: 25, CachePlays: 40, CycleGames: 13, BatchGames: 64, BatchCalls: 1, Mutations: 6},
	}
	merge := func(a, b Metrics) Metrics {
		a.Merge(b)
		return a
	}
	for i, a := range samples {
		for j, b := range samples {
			if merge(a, b) != merge(b, a) {
				t.Errorf("Merge is not commutative for samples %d and %d", i, j)
			}
			for k, c := range samples {
				left := merge(merge(a, b), c)
				right := merge(a, merge(b, c))
				if left != right {
					t.Errorf("Merge is not associative for samples %d, %d, %d:\n (a+b)+c = %+v\n a+(b+c) = %+v",
						i, j, k, left, right)
				}
			}
		}
	}
}
